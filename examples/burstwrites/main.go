// Burst writes (paper case study A): a workload with periodic write
// bursts drives the stock Algorithm 1 throttling into near-stop
// windows on a 3D XPoint device; two-stage throttling removes them.
//
// The whole experiment runs on the simulated device in virtual time,
// so it completes in seconds of wall clock regardless of the simulated
// duration.
package main

import (
	"fmt"
	"log"
	"time"

	"xpointdb"
	"xpointdb/internal/workload"
)

func run(twoStage bool) (*workload.Result, time.Duration) {
	sim := xpointdb.NewSimulation(xpointdb.XPoint())
	if twoStage {
		sim.Options.ThrottleMode = xpointdb.ThrottleTwoStage
		sim.Options.TwoStageFloorRate = sim.Options.DelayedWriteRate / 2
	}

	var res *workload.Result
	sim.Kernel.Run(func() {
		db, err := xpointdb.Open(sim.Options)
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		defer db.Close()
		if err := workload.Preload(db, 20000, 1024); err != nil {
			log.Fatalf("preload: %v", err)
		}
		res = workload.Run(sim.Kernel, db, workload.Config{
			Workers:   4,
			ReadRatio: 0.5,
			Duration:  2 * time.Minute,
			KeySpace:  20000,
			ValueSize: 1024,
			Seed:      1,
			// The paper's "flash of crowd": 25 s of write-heavy
			// traffic per minute.
			Burst: &workload.BurstConfig{
				Period:         time.Minute,
				BurstLen:       25 * time.Second,
				BurstReadRatio: 0.1,
			},
		})
	})
	return res, sim.Kernel.Elapsed()
}

func main() {
	for _, twoStage := range []bool{false, true} {
		name := "algorithm-1 "
		if twoStage {
			name = "two-stage  "
		}
		res, virtual := run(twoStage)

		// Find the worst per-second throughput after warm-up: the
		// near-stop metric from Figure 18.
		min := res.Series.MinRate(2*time.Second, virtual)
		fmt.Printf("%s  overall %6.1f kop/s   worst second %6.1f kop/s\n",
			name, res.Throughput()/1000, min/1000)
	}
	fmt.Println("\nThe two-stage controller should show a far higher worst-second rate:")
	fmt.Println("stage 1 caps the slowdown at a floor rate instead of collapsing to the")
	fmt.Println("token-bucket minimum the moment Level-0 crosses the slowdown threshold.")
}
