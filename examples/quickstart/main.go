// Quickstart: use xpointdb as an ordinary durable key-value store on
// the local filesystem (real clock, real disk).
package main

import (
	"fmt"
	"log"
	"os"

	"xpointdb"
)

func main() {
	dir, err := os.MkdirTemp("", "xpointdb-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := xpointdb.OpenPath(dir)
	if err != nil {
		log.Fatalf("open: %v", err)
	}

	// Point writes and reads.
	if err := db.Put([]byte("greeting"), []byte("hello, xpoint")); err != nil {
		log.Fatalf("put: %v", err)
	}
	v, err := db.Get([]byte("greeting"))
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("greeting = %s\n", v)

	// Atomic batches.
	var b xpointdb.Batch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("user:%04d", i)), []byte(fmt.Sprintf("profile-%d", i)))
	}
	b.Delete([]byte("greeting"))
	if err := db.Apply(&b, true); err != nil {
		log.Fatalf("apply: %v", err)
	}
	if _, err := db.Get([]byte("greeting")); err != xpointdb.ErrNotFound {
		log.Fatalf("tombstone not applied: %v", err)
	}

	// Ordered scans over a consistent snapshot — forward and reverse.
	it, err := db.NewIter()
	if err != nil {
		log.Fatalf("iter: %v", err)
	}
	n := 0
	it.SeekGE([]byte("user:0090"))
	for ; it.Valid(); it.Next() {
		if n < 3 {
			fmt.Printf("  %s = %s\n", it.Key(), it.Value())
		}
		n++
	}
	fmt.Printf("scanned %d keys from user:0090\n", n)
	it.SeekToLast()
	fmt.Printf("last key: %s\n", it.Key())
	it.Close()

	// Pinned point-in-time snapshots.
	snap := db.NewSnapshot()
	if err := db.Put([]byte("user:0001"), []byte("rewritten")); err != nil {
		log.Fatal(err)
	}
	old, _ := snap.Get([]byte("user:0001"))
	cur, _ := db.Get([]byte("user:0001"))
	fmt.Printf("snapshot sees %q, live sees %q\n", old, cur)
	snap.Release()

	// Reopen to show recovery.
	if err := db.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	db2, err := xpointdb.OpenPath(dir)
	if err != nil {
		log.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	v, err = db2.Get([]byte("user:0042"))
	if err != nil {
		log.Fatalf("get after reopen: %v", err)
	}
	fmt.Printf("after reopen, user:0042 = %s\n", v)

	m := db2.Metrics()
	fmt.Printf("engine: %d flushes, %d compactions\n", m.Flushes.Load(), m.Compactions.Load())
}
