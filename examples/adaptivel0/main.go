// Adaptive Level-0 management (paper case study B): the engine watches
// the live read/write mix and retunes the memtable (and therefore the
// Level-0 file) size — many small files under write-heavy load, few
// large files under read-heavy load.
package main

import (
	"fmt"
	"log"
	"time"

	"xpointdb"
	"xpointdb/internal/workload"
)

func run(adaptive bool, readRatio float64) float64 {
	sim := xpointdb.NewSimulation(xpointdb.XPoint())
	sim.Options.AdaptiveL0 = adaptive
	sim.Options.L0SlowdownTrigger = 24
	sim.Options.L0StopTrigger = 36
	sim.Options.AdaptiveL0Aggregate = 24 * sim.Options.MemtableSize

	var tp float64
	sim.Kernel.Run(func() {
		db, err := xpointdb.Open(sim.Options)
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		defer db.Close()
		if err := workload.Preload(db, 20000, 1024); err != nil {
			log.Fatalf("preload: %v", err)
		}
		res := workload.Run(sim.Kernel, db, workload.Config{
			Workers:   4,
			ReadRatio: readRatio,
			Duration:  15 * time.Second,
			KeySpace:  20000,
			ValueSize: 1024,
			Seed:      1,
		})
		tp = res.Throughput()
		fmt.Printf("    memtable budget converged to %d KiB\n", db.MemtableBudget()>>10)
	})
	return tp
}

func main() {
	for _, readPct := range []int{10, 50, 90} {
		fmt.Printf("read ratio %d%%:\n", readPct)
		base := run(false, float64(readPct)/100)
		fmt.Printf("  default : %6.1f kop/s\n", base/1000)
		adpt := run(true, float64(readPct)/100)
		fmt.Printf("  adaptive: %6.1f kop/s (%+.1f%%)\n\n", adpt/1000, (adpt/base-1)*100)
	}
	fmt.Println("Read-heavy mixes benefit from fewer, larger Level-0 files (fewer")
	fmt.Println("tables probed per Get); write-heavy mixes prefer small memtables")
	fmt.Println("(cheaper skiplist inserts), which is where the curves converge.")
}
