// NVM logging (paper case study C): move the write-ahead log from the
// data device to byte-addressable NVM and measure the write tail
// latency against WAL-on-data-device and WAL-off configurations.
package main

import (
	"fmt"
	"log"
	"time"

	"xpointdb"
	"xpointdb/internal/workload"
)

func run(configure func(*xpointdb.Simulation)) *workload.Result {
	sim := xpointdb.NewSimulation(xpointdb.XPoint())
	configure(sim)

	var res *workload.Result
	sim.Kernel.Run(func() {
		db, err := xpointdb.Open(sim.Options)
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		defer db.Close()
		if err := workload.Preload(db, 20000, 1024); err != nil {
			log.Fatalf("preload: %v", err)
		}
		res = workload.Run(sim.Kernel, db, workload.Config{
			Workers:   4,
			ReadRatio: 0.5, // the paper's 50% insertion ratio
			Duration:  10 * time.Second,
			KeySpace:  20000,
			ValueSize: 1024,
			Seed:      1,
		})
	})
	return res
}

func main() {
	configs := []struct {
		name string
		fn   func(*xpointdb.Simulation)
	}{
		{"wal on data device", func(s *xpointdb.Simulation) {}},
		{"wal on NVM        ", func(s *xpointdb.Simulation) { s.WithWALDevice(xpointdb.NVM()) }},
		{"wal disabled      ", func(s *xpointdb.Simulation) { s.Options.DisableWAL = true }},
	}
	fmt.Println("write latency at 50% inserts on a 3D XPoint data device:")
	var base time.Duration
	for i, c := range configs {
		res := run(c.fn)
		p90 := res.WriteLat.Percentile(90)
		if i == 0 {
			base = p90
		}
		fmt.Printf("  %s  p50=%-8v p90=%-8v p99=%-8v (%+.1f%% vs baseline p90)\n",
			c.name, res.WriteLat.Percentile(50).Round(time.Microsecond),
			p90.Round(time.Microsecond), res.WriteLat.Percentile(99).Round(time.Microsecond),
			(float64(p90)/float64(base)-1)*100)
	}
	fmt.Println("\nThe paper's finding: NVM logging removes a sizable slice of the WAL")
	fmt.Println("cost (−18.8% p90 in the paper) but not all of it — only disabling")
	fmt.Println("the log entirely gets the rest, at the price of crash safety.")
}
