// Observability tour: run a bursty write workload on a simulated 3D
// XPoint device with every instrumentation surface enabled — the
// structured event stream, per-operation PerfContext aggregation and
// the periodic stats reporter — then replay what the engine saw:
// flush/compaction activity, every write-stall episode with its cause,
// and the Algorithm 1 rate trajectory (×0.8 when compaction falls
// behind, ×1.25 as it catches up).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"xpointdb"
	"xpointdb/internal/workload"
)

func main() {
	sim := xpointdb.NewSimulation(xpointdb.XPoint())

	// A small memtable plus a write-heavy burst phase forces Level-0
	// to pile up, so the write controller has something to do.
	sim.Options.MemtableSize = 256 << 10
	sim.Options.TargetFileSize = 256 << 10
	sim.Options.BaseLevelBytes = 1 << 20
	sim.Options.ThrottleMode = xpointdb.ThrottleAlgorithm1

	// Instrumentation: an in-memory event buffer (use NewEventLog with
	// a file to persist the stream for xpdump -events), per-op stage
	// timings, and a periodic dump every 30 s of virtual time.
	var evs xpointdb.EventBuffer
	sim.Options.EventListener = &evs
	sim.Options.CollectPerf = true
	sim.Options.StatsDumpInterval = 30 * time.Second
	sim.Options.StatsWriter = os.Stderr

	var report string
	sim.Kernel.Run(func() {
		db, err := xpointdb.Open(sim.Options)
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		defer db.Close()
		if err := workload.Preload(db, 10000, 1024); err != nil {
			log.Fatalf("preload: %v", err)
		}
		workload.Run(sim.Kernel, db, workload.Config{
			Workers:   4,
			ReadRatio: 0.5,
			Duration:  90 * time.Second,
			KeySpace:  10000,
			ValueSize: 1024,
			Seed:      1,
			Burst: &workload.BurstConfig{
				Period:         time.Minute,
				BurstLen:       25 * time.Second,
				BurstReadRatio: 0.05,
			},
		})
		report = db.StatsReport()
	})

	fmt.Println("=== final stats report ===")
	fmt.Print(report)

	counts := map[string]int{}
	var stalls, rates []xpointdb.Event
	for _, e := range evs.Events() {
		counts[string(e.Kind)]++
		switch {
		case e.Stall != nil:
			stalls = append(stalls, e)
		case e.Rate != nil:
			rates = append(rates, e)
		}
	}
	fmt.Printf("\n=== event stream: %d events ===\n", evs.Len())
	for kind, n := range counts {
		fmt.Printf("  %-17s %d\n", kind, n)
	}

	fmt.Printf("\n=== stall episodes (%d transitions) ===\n", len(stalls))
	for i, e := range stalls {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(stalls)-10)
			break
		}
		fmt.Printf("  %s\n", e)
	}

	dec, inc := 0, 0
	for _, e := range rates {
		if e.Rate.Behind {
			dec++
		} else {
			inc++
		}
	}
	fmt.Printf("\n=== Algorithm 1 rate steps: %d down (×0.8), %d up (×1.25) ===\n", dec, inc)
	for i, e := range rates {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(rates)-10)
			break
		}
		fmt.Printf("  %s\n", e)
	}
}
