// Dashboard: run a live mixed workload on a real directory and serve
// the HTTP ops plane — open http://127.0.0.1:8080/ in a browser for
// the built-in dashboard (live SSE event stream, key metrics, stats
// report), or curl the endpoints directly:
//
//	curl -s localhost:8080/metrics   # Prometheus text exposition
//	curl -s localhost:8080/stats     # human-readable stats report
//	curl -s localhost:8080/healthz   # {"ok":true,"status":"healthy"}
//	curl -sN localhost:8080/events   # live SSE event stream
//
// The memtable is kept deliberately small so flushes, compactions and
// the occasional write stall show up within seconds.
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"xpointdb"
	"xpointdb/internal/clock"
	"xpointdb/internal/vfs"
	"xpointdb/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "ops plane listen address")
		dir      = flag.String("dir", "", "database directory (default: a fresh temp dir, removed on exit)")
		duration = flag.Duration("duration", 5*time.Minute, "workload duration")
		threads  = flag.Int("threads", 4, "workload threads")
		slowOp   = flag.Duration("slowop", 2*time.Millisecond, "slow-op tracing threshold (0 disables)")
	)
	flag.Parse()

	d := *dir
	if d == "" {
		tmp, err := os.MkdirTemp("", "xpointdb-dashboard")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		d = tmp
	}
	fs, err := vfs.NewOS(d)
	if err != nil {
		log.Fatalf("open dir: %v", err)
	}

	opts := xpointdb.DefaultOptions(fs)
	// Small memtable and files: plenty of flush/compaction churn to watch.
	opts.MemtableSize = 1 << 20
	opts.TargetFileSize = 1 << 20
	opts.BaseLevelBytes = 4 << 20
	opts.ObsAddr = *addr
	opts.SlowOpThreshold = *slowOp

	db, err := xpointdb.Open(opts)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()

	log.Printf("dashboard:  http://%s/", db.ObsAddr())
	log.Printf("metrics:    curl -s %s/metrics", db.ObsAddr())
	log.Printf("events:     curl -sN %s/events", db.ObsAddr())
	log.Printf("running %d threads for %v in %s ...", *threads, *duration, d)

	res := workload.Run(clock.Real{}, db, workload.Config{
		Workers:   *threads,
		ReadRatio: 0.5,
		Duration:  *duration,
		KeySpace:  50000,
		ValueSize: 512,
		Seed:      1,
	})
	log.Printf("done: %.1f kop/s over %v", res.Throughput()/1000, res.Duration.Round(time.Millisecond))
}
