// Storage evolution: the paper's core narrative in one run. The same
// mixed workload executes on all three device generations — SATA NAND
// flash, PCIe NAND flash, 3D XPoint — and the output shows both the
// expected part (reads ride the hardware) and the surprise the paper
// documents (the write path doesn't: throttling, queueing and
// compaction erase the device gap).
package main

import (
	"fmt"
	"log"
	"time"

	"xpointdb"
	"xpointdb/internal/workload"
)

func run(profile xpointdb.DeviceProfile, writeHeavy bool) (*workload.Result, string) {
	sim := xpointdb.NewSimulation(profile)
	var res *workload.Result
	var stats string
	sim.Kernel.Run(func() {
		db, err := xpointdb.Open(sim.Options)
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		defer db.Close()
		if err := workload.Preload(db, 24000, 1024); err != nil {
			log.Fatalf("preload: %v", err)
		}
		readRatio := 0.95
		if writeHeavy {
			readRatio = 0.10
		}
		res = workload.Run(sim.Kernel, db, workload.Config{
			Workers:   4,
			ReadRatio: readRatio,
			Duration:  8 * time.Second,
			KeySpace:  24000,
			ValueSize: 1024,
			Seed:      2020,
		})
		stats = db.Stats()
	})
	return res, stats
}

func main() {
	profiles := []xpointdb.DeviceProfile{
		xpointdb.SATAFlash(), xpointdb.PCIeFlash(), xpointdb.XPoint(),
	}

	fmt.Println("read-heavy (95% reads): hardware evolution pays off")
	var first float64
	for _, p := range profiles {
		res, _ := run(p, false)
		if first == 0 {
			first = res.Throughput()
		}
		fmt.Printf("  %-11s %8.1f kop/s (%.1f× vs SATA)   read p90 %v\n",
			p.Name, res.Throughput()/1000, res.Throughput()/first,
			res.ReadLat.Percentile(90).Round(time.Microsecond))
	}

	fmt.Println("\nwrite-heavy (90% writes): software bottlenecks take over")
	first = 0
	for _, p := range profiles {
		res, stats := run(p, true)
		if first == 0 {
			first = res.Throughput()
		}
		fmt.Printf("  %-11s %8.1f kop/s (%.1f× vs SATA)   write p99 %v\n",
			p.Name, res.Throughput()/1000, res.Throughput()/first,
			res.WriteLat.Percentile(99).Round(time.Microsecond))
		if p.Name == "3dxpoint" {
			fmt.Println("\n  3D XPoint engine report (note the stall time):")
			fmt.Println(indent(stats, "  | "))
		}
	}
	fmt.Println("The read-heavy speedup tracks the raw device gap; the write-heavy")
	fmt.Println("one collapses — the paper's Findings #1–#4 in one table.")
}

func indent(s, prefix string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += prefix + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
