// Command genfuzzcorpus regenerates the committed fuzz seed corpora
// under internal/*/testdata/fuzz/. The corpora give `go test -fuzz`
// structurally valid starting points (real WAL logs, SST images,
// batch reprs) plus known-nasty near-valid mutants, so the fuzzers
// reach deep decoder states immediately instead of re-discovering the
// formats. Run from the repo root:
//
//	go run ./cmd/genfuzzcorpus
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"xpointdb/internal/batch"
	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
	"xpointdb/internal/sstable"
	"xpointdb/internal/wal"
)

// memFile is an in-memory vfs.File for building corpus inputs.
type memFile struct {
	buf []byte
}

func (f *memFile) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

// writeCorpus writes one seed file in "go test fuzz v1" format; each
// value must already be rendered as a Go literal line.
func writeCorpus(dir, name string, values ...string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	var b bytes.Buffer
	b.WriteString("go test fuzz v1\n")
	for _, v := range values {
		b.WriteString(v)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, name), b.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
}

func lit(data []byte) string { return fmt.Sprintf("[]byte(%q)", data) }

func walLog(payloads ...[]byte) []byte {
	f := &memFile{}
	w := wal.NewWriter(f)
	for _, p := range payloads {
		if err := w.AddRecord(p); err != nil {
			log.Fatal(err)
		}
	}
	return f.buf
}

func sstTable(opts sstable.BuilderOptions, n int) []byte {
	f := &memFile{}
	b := sstable.NewBuilder(f, opts)
	for i := 0; i < n; i++ {
		k := keys.Make([]byte(fmt.Sprintf("key%04d", i)), uint64(i+1), keys.KindSet)
		if err := b.Add(k, bytes.Repeat([]byte{byte('a' + i%26)}, 20)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := b.Finish(); err != nil {
		log.Fatal(err)
	}
	return f.buf
}

func main() {
	// WAL record decoding.
	dir := "internal/wal/testdata/fuzz/FuzzReadRecord"
	small := walLog([]byte("alpha"), []byte("beta"), []byte(""))
	big := walLog(bytes.Repeat([]byte("spanning"), 3*wal.BlockSize/8))
	writeCorpus(dir, "valid_small", lit(small))
	writeCorpus(dir, "valid_fragmented", lit(big))
	writeCorpus(dir, "torn_tail", lit(big[:len(big)-wal.BlockSize/2]))
	flipped := append([]byte(nil), small...)
	flipped[len(flipped)-2] ^= 0x40
	writeCorpus(dir, "bitflip_tail", lit(flipped))

	dir = "internal/wal/testdata/fuzz/FuzzWriterReaderRoundTrip"
	writeCorpus(dir, "block_boundary",
		lit(bytes.Repeat([]byte("z"), wal.BlockSize-7)), "byte('\\x02')")
	writeCorpus(dir, "empty_payload", lit(nil), "byte('\\x07')")

	// SST block and table parsing.
	dir = "internal/sstable/testdata/fuzz/FuzzTableReader"
	plain := sstTable(sstable.BuilderOptions{BlockSize: 256, BloomBitsPerKey: 10}, 64)
	writeCorpus(dir, "valid_plain", lit(plain))
	writeCorpus(dir, "valid_flate",
		lit(sstTable(sstable.BuilderOptions{BlockSize: 4096, Compression: sstable.FlateCompression}, 200)))
	trunc := append([]byte(nil), plain[:len(plain)/2]...)
	trunc = append(trunc, plain[len(plain)-48:]...) // body cut, footer kept
	writeCorpus(dir, "truncated_body", lit(trunc))
	handles := append([]byte(nil), plain...)
	for i := 0; i < 8; i++ {
		handles[len(handles)-48+i] = 0xff // garbage filter handle, magic intact
	}
	writeCorpus(dir, "bad_handles", lit(handles))

	dir = "internal/sstable/testdata/fuzz/FuzzBlockIter"
	// A raw block image: decode one out of a table by hand — the first
	// data block of a one-block table starts at offset 0 and its length
	// sits in the index, but for corpus purposes an independently built
	// entry stream with a restart array is enough.
	var blk []byte
	var restarts []uint32
	prev := []byte{}
	for i := 0; i < 40; i++ {
		k := keys.Make([]byte(fmt.Sprintf("key%04d", i)), uint64(i+1), keys.KindSet)
		shared := 0
		if i%16 != 0 {
			for shared < len(prev) && shared < len(k) && prev[shared] == k[shared] {
				shared++
			}
		} else {
			restarts = append(restarts, uint32(len(blk)))
		}
		v := []byte("val")
		blk = binary.AppendUvarint(blk, uint64(shared))
		blk = binary.AppendUvarint(blk, uint64(len(k)-shared))
		blk = binary.AppendUvarint(blk, uint64(len(v)))
		blk = append(blk, k[shared:]...)
		blk = append(blk, v...)
		prev = k
	}
	for _, r := range restarts {
		blk = binary.LittleEndian.AppendUint32(blk, r)
	}
	blk = binary.LittleEndian.AppendUint32(blk, uint32(len(restarts)))
	writeCorpus(dir, "valid_block", lit(blk))
	overflow := append([]byte(nil), blk...)
	overflow[0] = 0xff // huge varint prefix on the first entry
	writeCorpus(dir, "varint_overflow", lit(overflow))

	// MANIFEST version-edit records.
	dir = "internal/manifest/testdata/fuzz/FuzzDecodeEdit"
	ln, nf, ls := uint64(7), uint64(42), uint64(1<<40)
	full := &manifest.Edit{
		LogNum: &ln, NextFileNum: &nf, LastSeq: &ls,
		Added: []manifest.AddedFile{{Level: 1, Meta: &manifest.FileMeta{
			Num: 9, Size: 4096, Checksum: 0xdeadbeef,
			Smallest: []byte("aaa"), Largest: []byte("zzz"),
		}}},
		Deleted:     []manifest.DeletedFile{{Level: 2, Num: 5}},
		Quarantined: []manifest.QuarantinedFile{{Level: 3, Num: 6}},
	}
	enc := full.Encode()
	writeCorpus(dir, "valid_full", lit(enc))
	// Legacy added-file record (tag 4, no file checksum): the encoder
	// no longer emits it, so build one by hand to pin decoder compat.
	var legacy []byte
	legacy = binary.AppendUvarint(legacy, 4) // tagAddedFile
	legacy = binary.AppendUvarint(legacy, 1) // level
	legacy = binary.AppendUvarint(legacy, 9) // num
	legacy = binary.AppendUvarint(legacy, 4096)
	legacy = binary.AppendUvarint(legacy, 3)
	legacy = append(legacy, "aaa"...)
	legacy = binary.AppendUvarint(legacy, 3)
	legacy = append(legacy, "zzz"...)
	writeCorpus(dir, "legacy_tag4_added", lit(legacy))
	writeCorpus(dir, "truncated_varint", lit(enc[:len(enc)-2]))
	badLevel := append([]byte(nil), enc...)
	writeCorpus(dir, "bit_damage", lit(append(badLevel[:1], badLevel[2:]...)))
	writeCorpus(dir, "unknown_tag", lit([]byte{0xf0, 0x01, 0x02}))

	// Batch wire format.
	dir = "internal/batch/testdata/fuzz/FuzzFromRepr"
	var b batch.Batch
	b.Put([]byte("user0001"), bytes.Repeat([]byte("v"), 100))
	b.Delete([]byte("user0002"))
	b.Put([]byte(""), []byte(""))
	b.SetSequence(777)
	rep := b.Repr()
	writeCorpus(dir, "valid_mixed", lit(rep))
	short := append([]byte(nil), rep...)
	writeCorpus(dir, "count_mismatch", lit(short[:len(short)-3]))

	fmt.Println("fuzz corpora regenerated")
}
