// Command xpdump inspects database files — the sst_dump / ldb
// equivalent. It understands all three on-disk formats:
//
//	xpdump -db /path/to/db                    # directory overview
//	xpdump -db /path/to/db -file 000007.sst   # dump one SST
//	xpdump -db /path/to/db -file 000003.log   # dump one WAL
//	xpdump -db /path/to/db -file MANIFEST-000001
//	xpdump -db /path/to/db -file 000007.sst -keys   # include every key
//	xpdump -db /path/to/db -file 000007.sst -verify # checksum-verify it
//	xpdump -events run.events                 # summarize an event log
//	xpdump -events run.events -keys           # ...printing every event
//
// -verify re-reads the named SST end to end: the whole-file CRC-32C is
// checked against the checksum recorded in the live MANIFEST (when the
// file is live there), then every block CRC — footer, filter, index,
// and all data blocks. Exit status is non-zero on any mismatch.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/events"
	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
	"xpointdb/internal/sstable"
	"xpointdb/internal/vfs"
	"xpointdb/internal/wal"
)

func main() {
	log.SetFlags(0)
	var (
		dbDir    = flag.String("db", "", "database directory (required unless -events)")
		file     = flag.String("file", "", "file to dump; empty = directory overview")
		showKeys = flag.Bool("keys", false, "list every key (SSTs and WALs) / every event (-events)")
		verify   = flag.Bool("verify", false, "checksum-verify -file (SSTs): whole-file CRC vs the MANIFEST plus every block CRC")
		evFile   = flag.String("events", "", "engine event-log file (JSON lines) to summarize")
	)
	flag.Parse()
	if *evFile != "" {
		dumpEvents(*evFile, *showKeys)
		return
	}
	if *dbDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	fs, err := vfs.NewOS(*dbDir)
	if err != nil {
		log.Fatal(err)
	}
	if *file == "" {
		overview(fs)
		return
	}
	typ, _ := manifest.ParseName(*file)
	switch typ {
	case manifest.TypeSST:
		if *verify {
			verifySST(fs, *file)
			return
		}
		dumpSST(fs, *file, *showKeys)
	case manifest.TypeWAL:
		dumpWAL(fs, *file, *showKeys)
	case manifest.TypeManifest:
		dumpManifest(fs, *file)
	case manifest.TypeCurrent:
		dumpCurrent(fs)
	default:
		log.Fatalf("don't know how to dump %q", *file)
	}
}

func overview(fs vfs.FS) {
	names, err := fs.List()
	if err != nil {
		log.Fatal(err)
	}
	var totalSST, nSST int64
	for _, n := range names {
		size, _ := fs.Size(n)
		typ, num := manifest.ParseName(n)
		var kind string
		switch typ {
		case manifest.TypeSST:
			kind = "sst"
			totalSST += size
			nSST++
		case manifest.TypeWAL:
			kind = "wal"
		case manifest.TypeManifest:
			kind = "manifest"
		case manifest.TypeCurrent:
			kind = "current"
		default:
			kind = "?"
		}
		fmt.Printf("%-20s %-9s num=%-6d %10d bytes\n", n, kind, num, size)
	}
	fmt.Printf("\n%d SSTs, %d bytes total\n", nSST, totalSST)

	// Show the live version per CURRENT, if parseable.
	set, err := manifest.Recover(fs)
	if err != nil {
		fmt.Printf("(manifest not readable: %v)\n", err)
		return
	}
	defer set.Close()
	fmt.Printf("\nlive version (next file %d, last seq %d, log %d):\n%s",
		set.NextFileNum, set.LastSeq, set.LogNum, set.Current().DebugString())
}

func dumpSST(fs vfs.FS, name string, showKeys bool) {
	size, err := fs.Size(name)
	if err != nil {
		log.Fatal(err)
	}
	f, err := fs.Open(name)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	_, num := manifest.ParseName(name)
	r, err := sstable.NewReader(f, size, num, nil)
	if err != nil {
		log.Fatalf("open table: %v", err)
	}
	it := r.NewIter()
	var n, sets, dels int
	var firstKey, lastKey []byte
	var keyBytes, valBytes int64
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if n == 0 {
			firstKey = append([]byte(nil), it.Key()...)
		}
		lastKey = append(lastKey[:0], it.Key()...)
		if _, kind := keys.Trailer(it.Key()); kind == keys.KindDelete {
			dels++
		} else {
			sets++
		}
		keyBytes += int64(len(it.Key()))
		valBytes += int64(len(it.Value()))
		if showKeys {
			fmt.Printf("  %s = %d bytes\n", keys.String(it.Key()), len(it.Value()))
		}
		n++
	}
	if err := it.Error(); err != nil {
		log.Fatalf("scan: %v", err)
	}
	fmt.Printf("%s: %d bytes, %d entries (%d sets, %d tombstones)\n", name, size, n, sets, dels)
	fmt.Printf("keys %d bytes, values %d bytes\n", keyBytes, valBytes)
	if n > 0 {
		fmt.Printf("range: %s .. %s\n", keys.String(firstKey), keys.String(lastKey))
	}
}

// verifySST re-reads name end to end and exits non-zero on any
// checksum mismatch: the whole-file CRC-32C against the MANIFEST's
// recorded value (when the file is live), then every block CRC.
func verifySST(fs vfs.FS, name string) {
	size, err := fs.Size(name)
	if err != nil {
		log.Fatal(err)
	}
	f, err := fs.Open(name)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	_, num := manifest.ParseName(name)
	sum, live := recordedChecksum(fs, num)
	r, err := sstable.NewReader(f, size, num, nil)
	if err != nil {
		log.Fatalf("CORRUPT: %v", err)
	}
	st, err := r.Verify(sum, nil)
	if err != nil {
		log.Fatalf("CORRUPT: %v", err)
	}
	switch {
	case live && sum != 0:
		fmt.Printf("%s: OK — file CRC %#08x matches MANIFEST; %d blocks, %d bytes verified\n",
			name, sum, st.Blocks, st.Bytes)
	case live:
		fmt.Printf("%s: OK — %d blocks, %d bytes verified (MANIFEST predates file checksums)\n",
			name, st.Blocks, st.Bytes)
	default:
		fmt.Printf("%s: OK — %d blocks, %d bytes verified (file not in the live MANIFEST; no file CRC on record)\n",
			name, st.Blocks, st.Bytes)
	}
}

// recordedChecksum replays the live MANIFEST read-only and returns the
// whole-file checksum recorded for SST num, plus whether the file is
// live at all. Unlike manifest.Recover this never opens a new manifest
// or takes ownership of the directory — it is a pure reader, safe to
// run against a directory another process has open.
func recordedChecksum(fs vfs.FS, num uint64) (uint32, bool) {
	cf, err := fs.Open(manifest.CurrentName)
	if err != nil {
		return 0, false
	}
	buf := make([]byte, 64)
	n, _ := cf.ReadAt(buf, 0)
	cf.Close()
	mname := strings.TrimSpace(string(buf[:n]))
	if typ, _ := manifest.ParseName(mname); typ != manifest.TypeManifest {
		return 0, false
	}
	mf, err := fs.Open(mname)
	if err != nil {
		return 0, false
	}
	defer mf.Close()
	r := wal.NewReader(mf)
	sums := map[uint64]uint32{}
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) || errors.Is(err, wal.ErrCorrupt) {
			break // torn tail: stop at the last good edit, like recovery
		}
		if err != nil {
			return 0, false
		}
		edit, err := manifest.DecodeEdit(rec)
		if err != nil {
			return 0, false
		}
		for _, a := range edit.Added {
			sums[a.Meta.Num] = a.Meta.Checksum
		}
		for _, d := range edit.Deleted {
			delete(sums, d.Num)
		}
	}
	sum, live := sums[num]
	return sum, live
}

func dumpWAL(fs vfs.FS, name string, showKeys bool) {
	f, err := fs.Open(name)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r := wal.NewReader(f)
	var recs, ops int
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, wal.ErrCorrupt) {
			fmt.Printf("(torn tail after %d records)\n", recs)
			break
		}
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		b, err := batch.FromRepr(rec)
		if err != nil {
			log.Fatalf("record %d: %v", recs, err)
		}
		if showKeys {
			fmt.Printf("batch seq=%d count=%d\n", b.Sequence(), b.Count())
			b.Iterate(func(kind keys.Kind, key, value []byte) error {
				op := "SET"
				if kind == keys.KindDelete {
					op = "DEL"
				}
				fmt.Printf("  %s %q (%d bytes)\n", op, key, len(value))
				return nil
			})
		}
		ops += int(b.Count())
		recs++
	}
	fmt.Printf("%s: %d batches, %d operations\n", name, recs, ops)
}

func dumpManifest(fs vfs.FS, name string) {
	f, err := fs.Open(name)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	r := wal.NewReader(f)
	v := &manifest.Version{}
	n := 0
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) || errors.Is(err, wal.ErrCorrupt) {
			break
		}
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		edit, err := manifest.DecodeEdit(rec)
		if err != nil {
			log.Fatalf("edit %d: %v", n, err)
		}
		fmt.Printf("edit %d:", n)
		if edit.LogNum != nil {
			fmt.Printf(" log=%d", *edit.LogNum)
		}
		if edit.NextFileNum != nil {
			fmt.Printf(" next=%d", *edit.NextFileNum)
		}
		if edit.LastSeq != nil {
			fmt.Printf(" seq=%d", *edit.LastSeq)
		}
		for _, a := range edit.Added {
			fmt.Printf(" +L%d:%d(%dB)", a.Level, a.Meta.Num, a.Meta.Size)
		}
		for _, d := range edit.Deleted {
			fmt.Printf(" -L%d:%d", d.Level, d.Num)
		}
		fmt.Println()
		if nv, err := v.Apply(edit); err == nil {
			v = nv
		} else {
			fmt.Printf("  (apply failed: %v)\n", err)
		}
		n++
	}
	fmt.Printf("\nfinal version after %d edits:\n%s", n, v.DebugString())
}

// dumpEvents summarizes a JSON-lines engine event stream: per-kind
// counts, background I/O totals, the stall-episode transition log and
// the Algorithm 1 rate trajectory.
func dumpEvents(path string, verbose bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	evs, err := events.Decode(f)
	if err != nil {
		log.Fatalf("decode: %v (after %d events)", err, len(evs))
	}

	counts := map[events.Kind]int{}
	var flushBytes, flushUS int64
	var compRead, compWritten, compUS int64
	var walBytes, walUS int64
	var zombies int
	var stalls []events.Event
	var rateSteps, decSteps int
	minRate, maxRate := 0.0, 0.0
	for _, e := range evs {
		counts[e.Kind]++
		if verbose {
			fmt.Println(e)
		}
		switch e.Kind {
		case events.KindFlushEnd:
			flushBytes += e.Flush.Bytes
			flushUS += e.Flush.DurationUS
		case events.KindCompactionEnd:
			compRead += e.Compaction.BytesRead
			compWritten += e.Compaction.BytesWritten
			compUS += e.Compaction.DurationUS
		case events.KindWALSync:
			walBytes += e.WALSync.Bytes
			walUS += e.WALSync.DurationUS
		case events.KindObsoleteGC:
			zombies += e.ObsoleteGC.Count
		case events.KindStallChange:
			stalls = append(stalls, e)
		case events.KindRateChange:
			rateSteps++
			if e.Rate.Behind {
				decSteps++
			}
			if minRate == 0 || e.Rate.NewRate < minRate {
				minRate = e.Rate.NewRate
			}
			if e.Rate.NewRate > maxRate {
				maxRate = e.Rate.NewRate
			}
		}
	}
	if verbose && len(evs) > 0 {
		fmt.Println()
	}

	fmt.Printf("%s: %d events", path, len(evs))
	if len(evs) > 0 {
		fmt.Printf(" over %v", evs[len(evs)-1].TS.Sub(evs[0].TS).Round(time.Millisecond))
	}
	fmt.Println()
	for _, k := range []events.Kind{
		events.KindFlushBegin, events.KindFlushEnd,
		events.KindCompactionBegin, events.KindCompactionEnd,
		events.KindStallChange, events.KindRateChange, events.KindWALSync,
		events.KindSuperVersionInstall, events.KindObsoleteGC,
	} {
		if counts[k] > 0 {
			fmt.Printf("  %-17s %d\n", k, counts[k])
		}
	}
	if counts[events.KindFlushEnd] > 0 {
		fmt.Printf("flush      : %d B to L0 in %v\n", flushBytes, time.Duration(flushUS)*time.Microsecond)
	}
	if counts[events.KindCompactionEnd] > 0 {
		fmt.Printf("compaction : read %d B, wrote %d B in %v\n",
			compRead, compWritten, time.Duration(compUS)*time.Microsecond)
	}
	if counts[events.KindWALSync] > 0 {
		fmt.Printf("wal syncs  : %d B in %v\n", walBytes, time.Duration(walUS)*time.Microsecond)
	}
	if zombies > 0 {
		fmt.Printf("zombie gc  : %d SST(s) deleted in %d sweeps\n", zombies, counts[events.KindObsoleteGC])
	}
	if rateSteps > 0 {
		fmt.Printf("rate steps : %d (%d dec ×0.8, %d inc ×1.25), range %.1f–%.1f MB/s\n",
			rateSteps, decSteps, rateSteps-decSteps, minRate/(1<<20), maxRate/(1<<20))
	}
	if len(stalls) > 0 {
		fmt.Printf("stall transitions:\n")
		for _, e := range stalls {
			fmt.Printf("  %s\n", e)
		}
	}
}

func dumpCurrent(fs vfs.FS) {
	f, err := fs.Open(manifest.CurrentName)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64)
	n, _ := f.ReadAt(buf, 0)
	fmt.Printf("CURRENT -> %s", buf[:n])
}
