// Command torture runs the crash-consistency torture harness from the
// command line — the same seeded iterations as `make tier3`, for
// reproducing a failing seed exactly or soaking many iterations:
//
//	go run ./cmd/torture -seed 1234            # reproduce one seed
//	go run ./cmd/torture -iters 500 -v         # long soak
//
// Exit status is non-zero if any iteration violates the durability
// contract; the failing seed is printed for repro.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"xpointdb/internal/torture"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "base seed; iteration i runs with seed+i")
		iters     = flag.Int("iters", 1, "number of seeded iterations")
		ops       = flag.Int("ops", 0, "workload ops per iteration (0 = default)")
		keys      = flag.Int("keys", 0, "key-universe size (0 = default)")
		transient = flag.Bool("transient", false,
			"transient-fault mode: faults heal and the engine must auto-recover on the same handle (no crash/reopen)")
		bitrot = flag.Bool("bitrot", false,
			"silent-corruption mode: bit flips on SST reads; every corruption must be detected and repaired or reported, never served")
		enospc = flag.Bool("enospc", false,
			"full-disk mode: the disk-space quota squeezes below usage and releases; wait-for-space recovery must heal the same handle with zero acked loss")
		shards = flag.Int("shards", 0,
			"sharded mode: run the workload against a range-sharded store with this many shards and check the cross-shard atomic-batch contract")
		verbose = flag.Bool("v", false, "log per-iteration progress")
	)
	flag.Parse()

	log.SetFlags(0)
	failed := 0
	for i := 0; i < *iters; i++ {
		s := *seed + int64(i)
		cfg := torture.Config{Seed: s, Ops: *ops, Keys: *keys, Transient: *transient, Bitrot: *bitrot, Enospc: *enospc, Shards: *shards}
		if *verbose {
			cfg.Logf = func(format string, args ...interface{}) {
				log.Printf("  seed %d: "+format, append([]interface{}{s}, args...)...)
			}
		}
		if err := torture.Run(cfg); err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "FAIL: %v\n", err)
			repro := fmt.Sprintf("go run ./cmd/torture -seed %d", s)
			if *transient {
				repro += " -transient"
			}
			if *bitrot {
				repro += " -bitrot"
			}
			if *enospc {
				repro += " -enospc"
			}
			if *shards > 1 {
				repro += fmt.Sprintf(" -shards %d", *shards)
			}
			fmt.Fprintf(os.Stderr, "reproduce with: %s\n", repro)
		} else if *verbose {
			log.Printf("seed %d: ok", s)
		}
	}
	fmt.Printf("torture: %d iterations, %d failures\n", *iters, failed)
	if failed > 0 {
		os.Exit(1)
	}
}
