// Command dbbench is the db_bench equivalent: it drives the store with
// configurable workloads either on a simulated device (virtual time,
// deterministic) or on a real directory with the real clock.
//
// Examples:
//
//	dbbench -device xpoint -threads 8 -write_ratio 0.5 -duration 10s
//	dbbench -device sata -benchmarks fillrandom -num 50000
//	dbbench -path /tmp/bench -threads 4 -duration 5s   # real disk
//	dbbench -device xpoint -faultprob 0.001 -faultheal 2s  # recovery under load
//	dbbench -device xpoint -shards 4 -benchmarks mixed     # range-sharded store
//	dbbench -device xpoint -shards 8 -hot_shard_skew 1.2   # zipfian hot shard
//	dbbench -device xpoint -disk_quota 256000000 -quota_cycle 2s  # full-disk cycling
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/costmodel"
	"xpointdb/internal/engine"
	"xpointdb/internal/events"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/shardeddb"
	"xpointdb/internal/sim"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
	"xpointdb/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		device     = flag.String("device", "xpoint", "simulated device: sata | pcie | xpoint | nvm | null")
		path       = flag.String("path", "", "run on a real directory with the real clock instead of a simulated device")
		benchmarks = flag.String("benchmarks", "readrandomwriterandom", "comma-free single benchmark: fillrandom | readrandom | readrandomwriterandom | mixed")
		threads    = flag.Int("threads", 4, "concurrent client threads")
		duration   = flag.Duration("duration", 10*time.Second, "measured duration")
		num        = flag.Int("num", 24000, "distinct keys")
		valueSize  = flag.Int("value_size", 1024, "value size in bytes")
		writeRatio = flag.Float64("write_ratio", 0.5, "write fraction for readrandomwriterandom")
		memtable   = flag.Int64("memtable_size", 2<<20, "memtable bytes")
		disableWAL = flag.Bool("disable_wal", false, "run without the write-ahead log")
		walDevice  = flag.String("wal_device", "", "place the WAL on a separate simulated device (e.g. nvm)")
		pipelined  = flag.Bool("pipelined", true, "pipelined writes (paper Algorithm 2)")
		throttleM  = flag.String("throttle", "algo1", "write controller: none | algo1 | twostage")
		seed       = flag.Int64("seed", 42, "workload seed")
		stats      = flag.Bool("stats", false, "print the full engine stats report at the end")
		statsIntv  = flag.Duration("statsinterval", 0, "periodic stats dump interval in engine-clock time (0 disables); dumps go to stderr")
		eventLog   = flag.String("eventlog", "", "write the structured engine event stream (JSON lines) to this file")
		perf       = flag.Bool("perf", false, "collect per-operation stage timings (PerfContext histograms)")
		scrub      = flag.Bool("scrub", true, "run the background checksum scrubber during the benchmark (-scrub=false disables; rate via -scrub_rate)")
		scrubRate  = flag.Int64("scrub_rate", 0, "scrubber budget in bytes/sec (0 = engine default)")
		faultProb  = flag.Float64("faultprob", 0, "inject WAL sync failures with this probability (simulated device only); exercises error recovery under load")
		faultHeal  = flag.Duration("faultheal", 0, "heal the injected fault this long (engine-clock time) after it first matches (0 = faults persist for the whole run)")
		serveAddr  = flag.String("serve", "", "serve the HTTP ops plane on this address during the run (e.g. :8080 or 127.0.0.1:0); /metrics, /events, /stats, /healthz, /debug/pprof and a dashboard at /")
		slowOp     = flag.Duration("slowop", 0, "trace operations slower than this as slow_op events with a stage breakdown (0 disables)")
		shards     = flag.Int("shards", 0, "range-shard the store across this many engine instances with shared cache/pool/controller (0 or 1 = the bare single engine); boundaries split -num keys evenly")
		hotSkew    = flag.Float64("hot_shard_skew", 0, "with -shards > 1: draw keys zipfian-hot toward shard 0 with this skew parameter (> 1; 0 = uniform)")
		diskQuota  = flag.Int64("disk_quota", 0, "model a disk of this many bytes (simulated device only): the filesystem fails with ENOSPC past it, and the engine's space budget (MaxAllowedSpace) defends the same cap; armed after preload")
		quotaCycle = flag.Duration("quota_cycle", 0, "with -disk_quota: periodically squeeze the quota below current usage for 10%% of each cycle and release it — the full-disk squeeze/release cadence wait-for-space recovery is judged on")
		maxSub     = flag.Int("max_subcompactions", 1, "split each merging compaction into up to K concurrent key-range sub-compactions (1 = single merge loop)")
		compRate   = flag.Int64("compaction_rate", 0, "compaction I/O rate limit in bytes/sec shared by all sub-compactions (0 = unlimited)")
		resultJSON = flag.String("result_json", "", "append a one-line JSON result record (throughput, stalls, L0 drain, compaction mix) to this file")
	)
	flag.Parse()

	if *faultProb > 0 && *path != "" {
		log.Fatalf("-faultprob requires the simulated device path (fault injection wraps the in-memory filesystem, not a real directory)")
	}
	if *diskQuota > 0 && *path != "" {
		log.Fatalf("-disk_quota requires the simulated device path (the capacity quota wraps the in-memory filesystem, not a real directory)")
	}
	if *quotaCycle > 0 && *diskQuota <= 0 {
		log.Fatalf("-quota_cycle requires -disk_quota")
	}
	if *hotSkew != 0 && *hotSkew <= 1 {
		log.Fatalf("-hot_shard_skew must be > 1 (zipf s parameter), got %g", *hotSkew)
	}
	if *hotSkew > 1 && *shards < 2 {
		log.Fatalf("-hot_shard_skew requires -shards > 1")
	}

	var evLog *events.EventLog
	if *eventLog != "" {
		f, err := os.Create(*eventLog)
		if err != nil {
			log.Fatalf("create -eventlog: %v", err)
		}
		evLog = events.NewEventLog(f)
		defer func() {
			if err := evLog.Close(); err != nil {
				log.Printf("eventlog: %v", err)
			}
		}()
	}

	mode := throttle.ModeAlgorithm1
	switch *throttleM {
	case "none":
		mode = throttle.ModeNone
	case "algo1":
	case "twostage":
		mode = throttle.ModeTwoStage
	default:
		log.Fatalf("unknown -throttle %q", *throttleM)
	}

	tweak := func(o *engine.Options) {
		o.MemtableSize = *memtable
		o.TargetFileSize = *memtable
		o.BaseLevelBytes = 4 * *memtable
		o.MaxSubcompactions = *maxSub
		o.CompactionRateBytesPerSec = *compRate
		o.DisableWAL = *disableWAL
		o.PipelinedWrites = *pipelined
		o.ThrottleMode = mode
		o.CollectPerf = *perf
		o.DisableScrub = !*scrub
		if *scrubRate > 0 {
			o.ScrubBytesPerSec = *scrubRate
		}
		if evLog != nil {
			o.EventListener = evLog
		}
		o.ObsAddr = *serveAddr
		o.SlowOpThreshold = *slowOp
		if *statsIntv > 0 {
			o.StatsDumpInterval = *statsIntv
			o.StatsWriter = os.Stderr
		}
	}

	if *path != "" {
		runReal(*path, tweak, *benchmarks, *threads, *duration, *num, *valueSize, *writeRatio, *seed, *stats, *shards, *hotSkew)
		return
	}

	prof, ok := storage.ProfileByName(*device)
	if !ok {
		log.Fatalf("unknown -device %q", *device)
	}
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	dev := storage.New(k, prof)
	var fs vfs.FS = vfs.NewMem(dev)
	var ffs *faultfs.FS
	if *faultProb > 0 || *diskQuota > 0 {
		var err error
		ffs, err = faultfs.New(fs, *seed)
		if err != nil {
			log.Fatalf("faultfs: %v", err)
		}
		ffs.SetClock(k)
		fs = ffs
	}
	opts := engine.DefaultOptions(fs)
	opts.Clock = k
	opts.CostModel = costmodel.Default()
	tweak(&opts)
	if *diskQuota > 0 {
		// The engine budget defends the same cap the quota enforces, so
		// the degradation ladder and job deferral engage before ENOSPC;
		// the cycle's squeeze below usage is what forces the latch.
		opts.MaxAllowedSpace = *diskQuota
	}

	var walDev *storage.Device
	if *walDevice != "" {
		wprof, ok := storage.ProfileByName(*walDevice)
		if !ok {
			log.Fatalf("unknown -wal_device %q", *walDevice)
		}
		walDev = storage.New(k, wprof)
		opts.WALFS = vfs.NewMem(walDev)
	}

	wall := time.Now()
	var res *workload.Result
	var m *engine.Metrics
	var ssum *shardedSummary
	var finalStats string
	var health engine.Health
	var cyc *quotaCycler
	var l0Drain time.Duration
	k.Run(func() {
		armFaults := func() {}
		if ffs != nil && *faultProb > 0 {
			// Armed only after open and preload: the benchmark
			// measures recovery under load, not a DB that cannot
			// start or fill. Sharded WALs live under "shard-NNN/", so
			// the glob needs the extra path element (path.Match
			// wildcards do not cross '/').
			pat := "*.log"
			if *shards > 1 {
				pat = "*/*.log"
			}
			armFaults = func() {
				ffs.AddRule(faultfs.Rule{
					Ops:       []faultfs.Op{faultfs.OpSync},
					Path:      pat,
					Prob:      *faultProb,
					HealAfter: *faultHeal,
				})
			}
		}
		arm := func() {
			armFaults()
			if *diskQuota > 0 {
				// Like the fault rules, the quota arms after preload:
				// the measured window starts on a full-but-working disk.
				ffs.SetQuota(*diskQuota)
				if *quotaCycle > 0 {
					cyc = startQuotaCycler(k, ffs, *diskQuota, *quotaCycle, *duration)
				}
			}
		}
		if *shards > 1 {
			sdb, err := shardeddb.Open(shardedOptions(opts, *shards, *num))
			if err != nil {
				log.Fatalf("open sharded: %v", err)
			}
			if addr := sdb.ObsAddr(); addr != "" {
				log.Printf("ops plane on http://%s (note: engine time is virtual here; prefer -path mode for interactive browsing)", addr)
			}
			res = runBenchmark(k, sdb, *benchmarks, *threads, *duration, *num, *valueSize, *writeRatio, *seed, *shards, *hotSkew, arm)
			if cyc != nil {
				cyc.wait()
				for i := 0; i < sdb.NumShards(); i++ {
					sh := sdb.Shard(i)
					settleSpace(k, sh.Health, sh.Resume)
				}
			}
			l0Drain = drainL0(k, func() int {
				worst := 0
				for i := 0; i < sdb.NumShards(); i++ {
					if n := sdb.Shard(i).NumLevelFiles(0); n > worst {
						worst = n
					}
				}
				return worst
			}, opts.L0CompactionTrigger)
			ssum = summarizeSharded(sdb)
			health = sdb.Health()
			if *stats {
				finalStats = sdb.StatsReport()
			}
			if err := sdb.Close(); err != nil {
				log.Fatalf("close: %v", err)
			}
		} else {
			db, err := engine.Open(opts)
			if err != nil {
				log.Fatalf("open: %v", err)
			}
			if addr := db.ObsAddr(); addr != "" {
				log.Printf("ops plane on http://%s (note: engine time is virtual here; prefer -path mode for interactive browsing)", addr)
			}
			res = runBenchmark(k, db, *benchmarks, *threads, *duration, *num, *valueSize, *writeRatio, *seed, 0, 0, arm)
			if cyc != nil {
				cyc.wait()
				settleSpace(k, db.Health, db.Resume)
			}
			l0Drain = drainL0(k, func() int { return db.NumLevelFiles(0) }, opts.L0CompactionTrigger)
			m = db.Metrics()
			health = db.Health()
			if *stats {
				finalStats = db.StatsReport()
			}
			if err := db.Close(); err != nil {
				log.Fatalf("close: %v", err)
			}
		}
	})

	label := prof.Name
	if *shards > 1 {
		label = fmt.Sprintf("%s, %d shards", prof.Name, *shards)
	}
	fmt.Printf("benchmark      : %s on %s (simulated, virtual time)\n", *benchmarks, label)
	if ssum != nil {
		printShardedResult(res, ssum)
	} else {
		printResult(res, m)
	}
	fmt.Printf("l0 drain       : %v after the measured window (max_subcompactions %d, compaction_rate %d B/s)\n",
		l0Drain.Round(time.Millisecond), *maxSub, *compRate)
	if *faultProb > 0 {
		fmt.Printf("fault injection: WAL sync prob %.3g heal %v; %d faults injected; final health %v\n",
			*faultProb, *faultHeal, ffs.InjectedCount(), health)
	}
	if *diskQuota > 0 {
		var enospc, deferrals, waits, recoveries int64
		if m != nil {
			s := m.Snapshot()
			enospc, deferrals = s.EnospcErrors, s.SpaceDeferrals
			waits, recoveries = s.SpaceWaits, s.SpaceRecoveries
		} else if ssum != nil {
			for _, s := range ssum.snaps {
				enospc += s.EnospcErrors
				deferrals += s.SpaceDeferrals
				waits += s.SpaceWaits
				recoveries += s.SpaceRecoveries
			}
		}
		squeezes := int64(0)
		if cyc != nil {
			squeezes = cyc.squeezes
		}
		fmt.Printf("space          : disk quota %d B cycle %v (%d squeezes); fs refused %d ops; engine: %d ENOSPC, %d deferred jobs, %d space waits, %d recoveries; final health %v\n",
			*diskQuota, *quotaCycle, squeezes, ffs.EnospcCount(),
			enospc, deferrals, waits, recoveries, health)
	}
	if finalStats != "" {
		fmt.Print(finalStats)
	}
	fmt.Printf("device         : %v (queue waits sampled at end: %d)\n", dev.Stats(), dev.QueueDepth())
	if walDev != nil {
		fmt.Printf("wal device     : %v\n", walDev.Stats())
	}
	fmt.Fprintf(os.Stderr, "[%v virtual simulated in %v wall]\n", res.Duration.Round(time.Millisecond), time.Since(wall).Round(time.Millisecond))

	if *resultJSON != "" {
		rec := benchRecord{
			Benchmark:           *benchmarks,
			Device:              prof.Name,
			Shards:              *shards,
			Threads:             *threads,
			MaxSubcompactions:   *maxSub,
			CompactionRateBps:   *compRate,
			DurationSeconds:     res.Duration.Seconds(),
			Ops:                 res.Ops(),
			ThroughputOpsPerSec: res.Throughput(),
			L0DrainSeconds:      l0Drain.Seconds(),
		}
		var snaps []engine.MetricsSnapshot
		if m != nil {
			snaps = []engine.MetricsSnapshot{m.Snapshot()}
		} else if ssum != nil {
			snaps = ssum.snaps
		}
		for _, s := range snaps {
			rec.StallDelaySeconds += s.StallDelayTotal.Seconds()
			rec.StallStopSeconds += s.StallStopTotal.Seconds()
			rec.StallStops += s.StallStops
			rec.Compactions += s.Compactions
			rec.TrivialMoves += s.TrivialMoves
			rec.Subcompactions += s.Subcompactions
			rec.CompactionReadBytes += s.CompactionBytesRead
			rec.CompactionWrittenBytes += s.CompactionBytesWritten
		}
		if err := appendResultJSON(*resultJSON, rec); err != nil {
			log.Fatalf("write -result_json: %v", err)
		}
	}
}

// benchRecord is the one-line JSON summary -result_json appends; the
// compaction bench script collects these into BENCH_compaction.json.
type benchRecord struct {
	Benchmark              string  `json:"benchmark"`
	Device                 string  `json:"device"`
	Shards                 int     `json:"shards,omitempty"`
	Threads                int     `json:"threads"`
	MaxSubcompactions      int     `json:"max_subcompactions"`
	CompactionRateBps      int64   `json:"compaction_rate_bytes_per_sec,omitempty"`
	DurationSeconds        float64 `json:"duration_seconds"`
	Ops                    int64   `json:"ops"`
	ThroughputOpsPerSec    float64 `json:"throughput_ops_per_sec"`
	StallDelaySeconds      float64 `json:"stall_delay_seconds"`
	StallStopSeconds       float64 `json:"stall_stop_seconds"`
	StallStops             int64   `json:"stall_stops"`
	L0DrainSeconds         float64 `json:"l0_drain_seconds"`
	Compactions            int64   `json:"compactions"`
	TrivialMoves           int64   `json:"trivial_moves"`
	Subcompactions         int64   `json:"subcompactions"`
	CompactionReadBytes    int64   `json:"compaction_read_bytes"`
	CompactionWrittenBytes int64   `json:"compaction_written_bytes"`
}

func appendResultJSON(path string, rec benchRecord) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// drainL0 measures how long background compaction needs to bring
// Level 0 back under the compaction trigger once the measured workload
// stops — the post-burst catch-up the paper's write stalls hinge on.
// Capped at 10 virtual minutes (a wedged engine must not hang the run).
func drainL0(clk clock.Clock, l0 func() int, trigger int) time.Duration {
	start := clk.Now()
	for l0() >= trigger && clk.Now().Sub(start) < 10*time.Minute {
		clk.Sleep(5 * time.Millisecond)
	}
	return clk.Now().Sub(start)
}

func runReal(path string, tweak func(*engine.Options), bench string, threads int, duration time.Duration, num, valueSize int, writeRatio float64, seed int64, stats bool, shards int, hotSkew float64) {
	fs, err := vfs.NewOS(path)
	if err != nil {
		log.Fatalf("open dir: %v", err)
	}
	opts := engine.DefaultOptions(fs)
	tweak(&opts)
	if shards > 1 {
		sdb, err := shardeddb.Open(shardedOptions(opts, shards, num))
		if err != nil {
			log.Fatalf("open sharded: %v", err)
		}
		if addr := sdb.ObsAddr(); addr != "" {
			log.Printf("ops plane on http://%s", addr)
		}
		res := runBenchmark(clock.Real{}, sdb, bench, threads, duration, num, valueSize, writeRatio, seed, shards, hotSkew, func() {})
		ssum := summarizeSharded(sdb)
		var finalStats string
		if stats {
			finalStats = sdb.StatsReport()
		}
		if err := sdb.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
		fmt.Printf("benchmark      : %s on %s (real clock, %d shards)\n", bench, path, shards)
		printShardedResult(res, ssum)
		if finalStats != "" {
			fmt.Print(finalStats)
		}
		return
	}
	db, err := engine.Open(opts)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	if addr := db.ObsAddr(); addr != "" {
		log.Printf("ops plane on http://%s", addr)
	}
	res := runBenchmark(clock.Real{}, db, bench, threads, duration, num, valueSize, writeRatio, seed, 0, 0, func() {})
	m := db.Metrics()
	var finalStats string
	if stats {
		finalStats = db.StatsReport()
	}
	if err := db.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	fmt.Printf("benchmark      : %s on %s (real clock)\n", bench, path)
	printResult(res, m)
	if finalStats != "" {
		fmt.Print(finalStats)
	}
}

// shardedOptions splits the benchmark keyspace evenly: shard i gets
// keys [num*i/shards, num*(i+1)/shards). With -hot_shard_skew the
// workload then concentrates on the low shards while the boundaries
// stay even — the hot-shard scenario the shared stall budget and
// L0-pressure pool scheduling exist for.
func shardedOptions(eng engine.Options, shards, num int) shardeddb.Options {
	b := make([][]byte, 0, shards-1)
	for i := 1; i < shards; i++ {
		b = append(b, workload.Key(num*i/shards))
	}
	return shardeddb.Options{Shards: shards, Boundaries: b, Engine: eng}
}

func runBenchmark(clk clock.Clock, db workload.KV, bench string, threads int, duration time.Duration, num, valueSize int, writeRatio float64, seed int64, shards int, hotSkew float64, armFaults func()) *workload.Result {
	cfg := workload.Config{
		Workers:      threads,
		Duration:     duration,
		KeySpace:     num,
		ValueSize:    valueSize,
		Seed:         seed,
		Shards:       shards,
		HotShardSkew: hotSkew,
	}
	switch bench {
	case "fillrandom":
		cfg.ReadRatio = 0
	case "readrandom":
		if err := workload.Preload(db, num, valueSize); err != nil {
			log.Fatalf("preload: %v", err)
		}
		cfg.ReadRatio = 1
	case "readrandomwriterandom":
		if err := workload.Preload(db, num, valueSize); err != nil {
			log.Fatalf("preload: %v", err)
		}
		cfg.ReadRatio = 1 - writeRatio
	case "mixed":
		// Dedicated reader and writer pools: read latency here is the
		// pure Get path under concurrent write pressure, the mix the
		// SuperVersion read path is judged on (Get p50/p99 while
		// flushes and compactions churn the version state).
		if err := workload.Preload(db, num, valueSize); err != nil {
			log.Fatalf("preload: %v", err)
		}
		cfg.ReadWorkers = (threads + 1) / 2
		cfg.WriteWorkers = threads - cfg.ReadWorkers
		if cfg.WriteWorkers == 0 {
			cfg.WriteWorkers = 1
		}
	default:
		log.Fatalf("unknown -benchmarks %q", bench)
	}
	armFaults()
	return workload.Run(clk, db, cfg)
}

func printResult(res *workload.Result, m *engine.Metrics) {
	fmt.Printf("throughput     : %.1f kop/s (%d ops in %v)\n", res.Throughput()/1000, res.Ops(), res.Duration.Round(time.Millisecond))
	if res.Reads > 0 {
		fmt.Printf("read latency   : %s\n", res.ReadLat)
	}
	if res.Writes > 0 {
		fmt.Printf("write latency  : %s\n", res.WriteLat)
	}
	fmt.Printf("read misses    : %d   errors: %d\n", res.ReadMisses, res.Errors)
	fmt.Printf("flushes        : %d (%d B)   compactions: %d (read %d B, wrote %d B)\n",
		m.Flushes.Load(), m.FlushBytes.Load(), m.Compactions.Load(),
		m.CompactionBytesRead.Load(), m.CompactionBytesWritten.Load())
	fmt.Printf("stalls         : delay %v, stop %v in %d episodes\n",
		time.Duration(m.StallDelayTotal.Load()).Round(time.Microsecond),
		time.Duration(m.StallStopTotal.Load()).Round(time.Microsecond),
		m.StallStops.Load())
	fmt.Printf("waiting writers: mean %.2f, max %d\n", m.WaitingWriters.Mean(), m.WaitingWriters.Max())
	if m.SoftErrors.Load()+m.HardErrors.Load()+m.RecoveryAttempts.Load() > 0 {
		fmt.Printf("bg errors      : %d soft, %d hard; recovery %d attempts, %d recovered, %d gave up\n",
			m.SoftErrors.Load(), m.HardErrors.Load(), m.RecoveryAttempts.Load(),
			m.RecoverySuccesses.Load(), m.RecoveryGiveups.Load())
	}
	fmt.Printf("read path      : mem %d, imm %d, L0 %d, deep %d, miss %d; L0 probes %d, bloom skips %d\n",
		m.GetHitMemtable.Load(), m.GetHitImmutable.Load(), m.GetHitL0.Load(),
		m.GetHitDeep.Load(), m.GetMisses.Load(), m.L0TablesProbed.Load(), m.BloomSkips.Load())
	if m.ScrubPasses.Load()+m.ScrubbedBytes.Load() > 0 {
		fmt.Printf("scrub          : %d passes, %d B verified, %d corruptions detected\n",
			m.ScrubPasses.Load(), m.ScrubbedBytes.Load(), m.CorruptionsDetected.Load())
	}
}

// quotaCycler periodically squeezes the filesystem quota below current
// usage and releases it back to the configured disk size — the
// squeeze/release cadence the wait-for-space recovery path is judged
// on. It runs on the engine clock (virtual in sim mode) alongside the
// workload; wait() blocks until the final release.
type quotaCycler struct {
	done     chan struct{}
	squeezes int64
}

func startQuotaCycler(clk clock.Clock, ffs *faultfs.FS, quota int64, cycle, total time.Duration) *quotaCycler {
	c := &quotaCycler{done: make(chan struct{})}
	n := int(total / cycle)
	clk.Go("quota-cycler", func() {
		defer close(c.done)
		hold := cycle / 10
		if hold <= 0 {
			hold = cycle / 2
		}
		for i := 0; i < n; i++ {
			clk.Sleep(cycle - hold)
			// Squeeze to half of current usage: every write-path byte
			// now hits ENOSPC, exactly like a disk filled by a
			// neighbor — and deep enough that reclaiming obsolete
			// files alone cannot quietly lift the pressure before the
			// workload feels it.
			q := ffs.DiskUsed() / 2
			if q < 1 {
				q = 1
			}
			ffs.SetQuota(q)
			c.squeezes++
			clk.Sleep(hold)
			ffs.SetQuota(quota)
		}
	})
	return c
}

func (c *quotaCycler) wait() { <-c.done }

// settleSpace polls (in engine-clock time) until the store heals after
// the final quota release, nudging with a manual Resume when automatic
// recovery already gave up mid-squeeze. Bounded: a store that cannot
// heal is reported via the final-health field, not a hang.
func settleSpace(clk clock.Clock, health func() engine.Health, resume func() error) {
	for i := 0; i < 2000; i++ {
		if health() == engine.Healthy {
			return
		}
		if i%100 == 99 {
			_ = resume()
		}
		clk.Sleep(5 * time.Millisecond)
	}
}

// shardedSummary captures everything printShardedResult needs before
// the store is closed (the sim path prints outside k.Run).
type shardedSummary struct {
	snaps                              []engine.MetricsSnapshot
	cacheUsed, cacheHits, cacheMisses  int64
	poolGrants                         int64
	cross, aborts, rolledFwd, abortedO int64
}

func summarizeSharded(sdb *shardeddb.DB) *shardedSummary {
	s := &shardedSummary{}
	for i := 0; i < sdb.NumShards(); i++ {
		s.snaps = append(s.snaps, sdb.Shard(i).Metrics().Snapshot())
	}
	s.cacheUsed, s.cacheHits, s.cacheMisses = sdb.CacheStats()
	_, _, s.poolGrants = sdb.Pool().Stats()
	s.cross, s.aborts, s.rolledFwd, s.abortedO = sdb.TxnStats()
	return s
}

func printShardedResult(res *workload.Result, s *shardedSummary) {
	fmt.Printf("throughput     : %.1f kop/s (%d ops in %v)\n", res.Throughput()/1000, res.Ops(), res.Duration.Round(time.Millisecond))
	if res.Reads > 0 {
		fmt.Printf("read latency   : %s\n", res.ReadLat)
	}
	if res.Writes > 0 {
		fmt.Printf("write latency  : %s\n", res.WriteLat)
	}
	fmt.Printf("read misses    : %d   errors: %d\n", res.ReadMisses, res.Errors)
	var flushes, flushB, compactions, compR, compW, stops, soft, hard int64
	var delay, stop time.Duration
	for _, m := range s.snaps {
		flushes += m.Flushes
		flushB += m.FlushBytes
		compactions += m.Compactions
		compR += m.CompactionBytesRead
		compW += m.CompactionBytesWritten
		delay += m.StallDelayTotal
		stop += m.StallStopTotal
		stops += m.StallStops
		soft += m.SoftErrors
		hard += m.HardErrors
	}
	fmt.Printf("flushes        : %d (%d B)   compactions: %d (read %d B, wrote %d B)\n",
		flushes, flushB, compactions, compR, compW)
	fmt.Printf("stalls         : delay %v, stop %v in %d episodes (shared budget)\n",
		delay.Round(time.Microsecond), stop.Round(time.Microsecond), stops)
	fmt.Printf("shared cache   : %d B used, %d hits, %d misses; pool grants: %d\n",
		s.cacheUsed, s.cacheHits, s.cacheMisses, s.poolGrants)
	if s.cross+s.aborts+s.rolledFwd+s.abortedO > 0 {
		fmt.Printf("cross-shard txn: %d committed, %d aborted, %d rolled forward, %d aborted at open\n",
			s.cross, s.aborts, s.rolledFwd, s.abortedO)
	}
	if soft+hard > 0 {
		fmt.Printf("bg errors      : %d soft, %d hard\n", soft, hard)
	}
	for i, m := range s.snaps {
		fmt.Printf("  shard %-3d    : %d writes, %d gets, %d flushes, %d compactions, stall %v, write p99 %v\n",
			i, m.Writes, m.Gets, m.Flushes, m.Compactions,
			(m.StallDelayTotal + m.StallStopTotal).Round(time.Microsecond), m.WriteP99)
	}
}
