// Command figures regenerates the paper's figures on the simulated
// storage substrate.
//
// Usage:
//
//	figures -fig 5            # one figure, quick scale
//	figures -all              # every figure
//	figures -fig 18 -full     # paper-scale durations
//	figures -fig 3 -v         # with per-cell progress
//
// Output is one text table per figure with the paper's observed shape
// quoted alongside for comparison.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"xpointdb/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		fig     = flag.String("fig", "", "figure to regenerate (e.g. 5 or fig5)")
		all     = flag.Bool("all", false, "regenerate every figure")
		full    = flag.Bool("full", false, "paper-scale durations (slower)")
		verbose = flag.Bool("v", false, "per-cell progress on stderr")
	)
	flag.Parse()

	runner := &experiments.Runner{Scale: experiments.Quick()}
	if *full {
		runner.Scale = experiments.Full()
	}
	if *verbose {
		runner.Verbose = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.All()
	case *fig != "":
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if id[0] >= '0' && id[0] <= '9' {
				id = "fig" + id
			}
			ids = append(ids, id)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: figures -fig N | -all [-full] [-v]")
		fmt.Fprintln(os.Stderr, "figures:", experiments.All())
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		rep, err := runner.Run(id)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(rep.Table())
		fmt.Fprintf(os.Stderr, "[%s took %v wall-clock]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
