package xpointdb

import (
	"fmt"
	"testing"
	"time"

	"xpointdb/internal/workload"
)

func TestOpenPathDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatalf("OpenPath: %v", err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Put(workload.Key(i), workload.Value(i, 256)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := OpenPath(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	for i := 0; i < 500; i++ {
		v, err := db2.Get(workload.Key(i))
		if err != nil {
			t.Fatalf("Get %d after reopen: %v", i, err)
		}
		want := workload.Value(i, 256)
		if string(v) != string(want) {
			t.Fatalf("value %d corrupted after reopen", i)
		}
	}
}

func TestBatchAndIterOnRealFS(t *testing.T) {
	db, err := OpenPath(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var b Batch
	b.Put([]byte("x"), []byte("1"))
	b.Put([]byte("y"), []byte("2"))
	if err := db.Apply(&b, true); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, fmt.Sprintf("%s=%s", it.Key(), it.Value()))
	}
	if len(got) != 2 || got[0] != "x=1" || got[1] != "y=2" {
		t.Fatalf("scan = %v", got)
	}
}

func TestSimulationEndToEnd(t *testing.T) {
	sim := NewSimulation(XPoint())
	var res *workload.Result
	sim.Kernel.Run(func() {
		db, err := Open(sim.Options)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		defer db.Close()
		if err := workload.Preload(db, 5000, 1024); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		res = workload.Run(sim.Kernel, db, workload.Config{
			Workers:   4,
			ReadRatio: 0.5,
			Duration:  2 * time.Second,
			KeySpace:  5000,
			ValueSize: 1024,
			Seed:      3,
		})
	})
	if res == nil || res.Ops() == 0 {
		t.Fatal("simulation did no work")
	}
	if res.Errors != 0 {
		t.Fatalf("workload errors: %d", res.Errors)
	}
	if sim.Kernel.Elapsed() < 2*time.Second {
		t.Fatalf("virtual time %v < workload duration", sim.Kernel.Elapsed())
	}
	if sim.Device.Stats().Reads == 0 {
		t.Fatal("no device reads charged")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	run := func() (int64, time.Duration) {
		sim := NewSimulation(SATAFlash())
		var ops int64
		sim.Kernel.Run(func() {
			db, err := Open(sim.Options)
			if err != nil {
				t.Errorf("Open: %v", err)
				return
			}
			defer db.Close()
			// Single-threaded: fully deterministic event order.
			for i := 0; i < 2000; i++ {
				if err := db.Put(workload.Key(i), workload.Value(i, 512)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				ops++
			}
		})
		return ops, sim.Kernel.Elapsed()
	}
	ops1, t1 := run()
	ops2, t2 := run()
	if ops1 != ops2 || t1 != t2 {
		t.Fatalf("single-threaded simulation not deterministic: (%d, %v) vs (%d, %v)", ops1, t1, ops2, t2)
	}
}

func TestWALDeviceSimulation(t *testing.T) {
	sim := NewSimulation(XPoint()).WithWALDevice(NVM())
	sim.Kernel.Run(func() {
		db, err := Open(sim.Options)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		defer db.Close()
		for i := 0; i < 200; i++ {
			if err := db.Put(workload.Key(i), workload.Value(i, 1024)); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	})
	if sim.WALDevice.Stats().Writes == 0 {
		t.Fatal("WAL device saw no writes")
	}
}

func TestSnapshotPublicAPI(t *testing.T) {
	db, err := OpenPath(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("before"))
	var snap *Snapshot = db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("after"))

	v, err := snap.Get([]byte("k"))
	if err != nil || string(v) != "before" {
		t.Fatalf("snapshot = %q, %v", v, err)
	}
	it, err := snap.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.SeekToLast()
	if !it.Valid() || string(it.Value()) != "before" {
		t.Fatalf("snapshot iter = %q", it.Value())
	}
	it.Prev()
	if it.Valid() {
		t.Fatal("only one key expected")
	}
}

func TestNewSimulationNull(t *testing.T) {
	sim := NewSimulationNull()
	db, err := Open(sim.Options)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}
