#!/usr/bin/env bash
# Ops-plane smoke test: start dbbench in real-clock mode with the HTTP
# ops server enabled, then exercise every endpoint with curl while the
# benchmark runs — /healthz must report ok, /metrics must expose the
# engine families, /stats must render the per-level table, /events
# must stream SSE frames, and the dashboard page must be served.
# Exits non-zero on the first failure. (Checks use plain grep
# >/dev/null rather than grep -q: -q exits at the first match, the
# feeding echo/curl then dies of SIGPIPE, and pipefail would turn a
# successful match into a flaky failure.)
set -euo pipefail

workdir="$(mktemp -d)"
dblog="$workdir/dbbench.log"
trap 'kill "$benchpid" 2>/dev/null || true; wait "$benchpid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== building dbbench =="
go build -o "$workdir/dbbench" ./cmd/dbbench

echo "== starting benchmark with -serve =="
"$workdir/dbbench" -path "$workdir/db" -threads 4 -duration 20s \
    -serve 127.0.0.1:0 -slowop 2ms -eventlog "$workdir/events.jsonl" \
    >"$dblog" 2>&1 &
benchpid=$!

# The ephemeral port is printed as "ops plane on http://ADDR".
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/.*ops plane on http:\/\/\([0-9.:]*\).*/\1/p' "$dblog" | head -1)"
    [ -n "$addr" ] && break
    kill -0 "$benchpid" 2>/dev/null || { echo "dbbench died:"; cat "$dblog"; exit 1; }
    sleep 0.2
done
[ -n "$addr" ] && echo "ops plane at $addr" || { echo "no ops-plane address in log"; cat "$dblog"; exit 1; }

echo "== /healthz =="
health="$(curl -sf "http://$addr/healthz")"
echo "$health"
echo "$health" | grep '"ok":true' >/dev/null || { echo "FAIL: not healthy"; exit 1; }

echo "== /metrics =="
metrics="$(curl -sf "http://$addr/metrics")"
for family in xpointdb_ops_total xpointdb_get_latency_seconds_bucket \
              xpointdb_level_files xpointdb_flushes_total \
              xpointdb_scrub_passes_total xpointdb_events_dropped_total; do
    echo "$metrics" | grep "^$family" >/dev/null || { echo "FAIL: $family missing"; exit 1; }
done
echo "$(echo "$metrics" | grep -c '^xpointdb') xpointdb samples exposed"

echo "== /stats =="
stats="$(curl -sf "http://$addr/stats")"
echo "$stats" | grep 'Per-level compaction stats' >/dev/null || { echo "FAIL: no per-level table"; exit 1; }
echo "$stats" | sed -n '/Per-level/,$p' | head -8

echo "== /events (3s of SSE) =="
frames="$(curl -sN -m 3 "http://$addr/events" || true)"
echo "$frames" | grep '^event: ' >/dev/null || { echo "FAIL: no SSE frames"; exit 1; }
echo "$frames" | grep '^event: ' | sort | uniq -c | sort -rn | head -5

echo "== / (dashboard) =="
curl -sf "http://$addr/" | grep -i '<html' >/dev/null || { echo "FAIL: no dashboard page"; exit 1; }

echo "== waiting for benchmark to finish =="
wait "$benchpid"
tail -3 "$dblog"
echo "OK: ops plane smoke passed"
