#!/usr/bin/env bash
# Compaction mechanism benchmark: sweep -max_subcompactions over the
# simulated device profiles and record throughput, write-stall time and
# post-window L0 drain for fillrandom and the mixed workload. Each
# dbbench run appends one JSON record via -result_json; this script
# wraps them into BENCH_compaction.json (full mode) or just prints a
# summary line and sanity-checks the records (--smoke, used by CI).
#
#   scripts/bench_compaction.sh          # full matrix -> BENCH_compaction.json
#   scripts/bench_compaction.sh --smoke  # xpoint only, maxsub {1,4}, short
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"
workdir="$(mktemp -d)"
records="$workdir/records.jsonl"
trap 'rm -rf "$workdir"' EXIT

echo "== building dbbench =="
go build -o "$workdir/dbbench" ./cmd/dbbench

run() { # device benchmark maxsub duration num
    local dev="$1" bench="$2" sub="$3" dur="$4" num="$5"
    echo "-- $dev/$bench max_subcompactions=$sub"
    "$workdir/dbbench" -device "$dev" -benchmarks "$bench" -threads 8 \
        -duration "$dur" -num "$num" -seed 42 \
        -max_subcompactions "$sub" -result_json "$records" \
        | grep -E 'ops/sec|l0 drain|stall' || true
}

if [ "$mode" = "--smoke" ]; then
    for sub in 1 4; do
        run xpoint fillrandom "$sub" 2s 12000
    done
    # Sanity: both records landed, and the maxsub=4 run actually split
    # work into sub-compactions.
    [ "$(wc -l <"$records")" -eq 2 ] || { echo "FAIL: expected 2 records"; cat "$records"; exit 1; }
    grep '"max_subcompactions":4' "$records" | grep -E '"subcompactions":[1-9]' >/dev/null \
        || { echo "FAIL: maxsub=4 run did no sub-compactions"; cat "$records"; exit 1; }
    echo "BENCH_compaction summary:"
    while IFS= read -r line; do
        sub="$(echo "$line" | sed -n 's/.*"max_subcompactions":\([0-9]*\).*/\1/p')"
        ops="$(echo "$line" | sed -n 's/.*"throughput_ops_per_sec":\([0-9.]*\).*/\1/p')"
        drain="$(echo "$line" | sed -n 's/.*"l0_drain_seconds":\([0-9.e+-]*\).*/\1/p')"
        stall="$(echo "$line" | sed -n 's/.*"stall_delay_seconds":\([0-9.e+-]*\).*/\1/p')"
        echo "BENCH_compaction: xpoint fillrandom maxsub=$sub ops/s=$ops l0_drain_s=$drain stall_delay_s=$stall"
    done <"$records"
    echo "OK: compaction smoke passed"
    exit 0
fi

# Full matrix: three device generations x fillrandom+mixed x fan-out.
for dev in sata pcie xpoint; do
    for bench in fillrandom mixed; do
        for sub in 1 2 4 8; do
            run "$dev" "$bench" "$sub" 4s 60000
        done
    done
done

out="BENCH_compaction.json"
{
    printf '{\n'
    printf '  "description": "Compaction policy/mechanism split: each merging compaction is divided into up to K disjoint user-key sub-ranges executed concurrently (Options.MaxSubcompactions), with trivial moves re-linking files at zero data I/O and fan-out tokens drawn non-blockingly from the shared background pool. Sweep of K over the three device generations for fillrandom and the mixed workload; l0_drain_seconds is the virtual time after the measured window until L0 falls below the compaction trigger. Reproduce with scripts/bench_compaction.sh (full) or make bench-compaction-smoke (short).",\n'
    printf '  "date": "%s",\n' "$(date +%F)"
    printf '  "command": "dbbench -device {sata|pcie|xpoint} -benchmarks {fillrandom|mixed} -threads 8 -duration 4s -num 60000 -seed 42 -max_subcompactions {1|2|4|8}",\n'
    printf '  "environment": "simulated device models, virtual time, deterministic (seed 42)",\n'
    printf '  "results": [\n'
    sed 's/^/    /; $!s/$/,/' "$records"
    printf '  ]\n'
    printf '}\n'
} >"$out"
echo "wrote $out ($(grep -c '"benchmark"' "$out") records)"
