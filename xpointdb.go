// Package xpointdb is an LSM-tree key-value store with a simulated
// storage substrate, built as a full reproduction of "From Flash to 3D
// XPoint: Performance Bottlenecks and Potentials in RocksDB with
// Storage Evolution" (Jia & Chen, ISPASS 2020).
//
// The engine implements the RocksDB mechanisms the paper analyzes —
// write batch groups and pipelined writes (Algorithm 2), the Algorithm
// 1 write controller with Level-0 slowdown/stop thresholds, background
// flush and leveled compaction, Bloom filters, a block cache and a
// write-ahead log — plus the paper's three case-study optimizations:
// two-stage throttling, dynamic Level-0 management, and an NVM-resident
// WAL.
//
// Two execution modes share all engine code:
//
//   - Real mode: OpenPath opens a database on the local filesystem
//     with the real clock — a normal, durable key-value store.
//
//   - Simulation mode: Open with a MemFS bound to a simulated device
//     (SATA flash, PCIe flash, 3D XPoint, NVM) and a sim.Kernel clock
//     reproduces the paper's measurements in fast, deterministic
//     virtual time. See NewSimulation and the examples/ directory.
//
// Quickstart:
//
//	db, err := xpointdb.OpenPath("/tmp/mydb")
//	if err != nil { ... }
//	defer db.Close()
//	_ = db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
package xpointdb

import (
	"io"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/costmodel"
	"xpointdb/internal/engine"
	"xpointdb/internal/events"
	"xpointdb/internal/shardeddb"
	"xpointdb/internal/sim"
	"xpointdb/internal/sstable"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// DB is the key-value store. See engine.DB for the method set: Put,
// Get, Delete, Apply, NewIter, Metrics, Close, and the inspection
// helpers used by the experiment harness.
type DB = engine.DB

// Options configures Open.
type Options = engine.Options

// Batch is an atomic group of writes, applied with DB.Apply.
type Batch = batch.Batch

// Iter is a bidirectional snapshot iterator returned by DB.NewIter.
type Iter = engine.Iter

// Snapshot is a pinned point-in-time view returned by DB.NewSnapshot;
// release it when done.
type Snapshot = engine.Snapshot

// Metrics is the engine's live instrumentation; MetricsSnapshot is a
// consistent plain-value copy taken with Metrics.Snapshot.
type (
	Metrics         = engine.Metrics
	MetricsSnapshot = engine.MetricsSnapshot
)

// PerfContext is a per-operation stage breakdown filled by
// DB.GetWithPerf and DB.ApplyWithPerf (or internally when
// Options.CollectPerf is set).
type PerfContext = engine.PerfContext

// Structured event log (Options.EventListener): Event is the envelope,
// EventListener the sink interface, EventLog the JSON-lines file sink,
// and EventBuffer an in-memory sink for tests and demos.
type (
	Event         = events.Event
	EventListener = events.Listener
	EventLog      = events.EventLog
	EventBuffer   = events.Buffer
)

// NewEventLog returns a JSON-lines event sink writing to w.
func NewEventLog(w io.Writer) *EventLog { return events.NewEventLog(w) }

// DecodeEvents reads back a JSON-lines event stream written by an
// EventLog.
func DecodeEvents(r io.Reader) ([]Event, error) { return events.Decode(r) }

// Sentinel errors.
var (
	ErrNotFound = engine.ErrNotFound
	ErrClosed   = engine.ErrClosed
)

// Throttle modes (Options.ThrottleMode).
const (
	ThrottleNone       = throttle.ModeNone
	ThrottleAlgorithm1 = throttle.ModeAlgorithm1
	ThrottleTwoStage   = throttle.ModeTwoStage
)

// SST block compression codecs (Options.Compression).
const (
	NoCompression    = sstable.NoCompression
	FlateCompression = sstable.FlateCompression
)

// FS is the filesystem abstraction databases run on.
type FS = vfs.FS

// MemFS is the in-memory filesystem charged to a simulated device.
type MemFS = vfs.MemFS

// Device is a simulated storage device.
type Device = storage.Device

// DeviceProfile describes a device's performance characteristics.
type DeviceProfile = storage.Profile

// Clock abstracts time; SimKernel is the virtual-time implementation.
type (
	Clock     = clock.Clock
	SimKernel = sim.Kernel
)

// CostModel charges virtual CPU time under simulation.
type CostModel = costmodel.Model

// Device profiles calibrated against the paper's three SSDs plus NVM.
var (
	SATAFlash = storage.SATAFlash
	PCIeFlash = storage.PCIeFlash
	XPoint    = storage.XPoint
	NVM       = storage.NVM
)

// Open opens (creating if necessary) a database with opts.
func Open(opts Options) (*DB, error) { return engine.Open(opts) }

// DefaultOptions returns RocksDB-like defaults on fs (see
// engine.DefaultOptions).
func DefaultOptions(fs FS) Options { return engine.DefaultOptions(fs) }

// OpenPath opens a durable database in dir on the local filesystem
// with default options and the real clock.
func OpenPath(dir string) (*DB, error) {
	fs, err := vfs.NewOS(dir)
	if err != nil {
		return nil, err
	}
	return Open(DefaultOptions(fs))
}

// ShardedDB partitions the keyspace by range across independent
// engine instances that share one block cache, one background worker
// pool, one write controller and one event stream, with cross-shard
// atomic batches via two-phase commit. See internal/shardeddb.
type ShardedDB = shardeddb.DB

// ShardedOptions configures OpenSharded.
type ShardedOptions = shardeddb.Options

// ShardedIter iterates the whole sharded keyspace in key order.
type ShardedIter = shardeddb.Iter

// ShardedSnapshot pins a per-shard point-in-time view vector.
type ShardedSnapshot = shardeddb.Snapshot

// ErrReservedKey rejects user keys in the sharded store's internal
// 0x00-prefixed namespace.
var ErrReservedKey = shardeddb.ErrReservedKey

// OpenSharded opens (creating if necessary) a sharded store.
func OpenSharded(opts ShardedOptions) (*ShardedDB, error) { return shardeddb.Open(opts) }

// OpenShardedPath opens a durable sharded store with n shards in dir
// on the local filesystem, with default engine options and the real
// clock.
func OpenShardedPath(dir string, n int) (*ShardedDB, error) {
	fs, err := vfs.NewOS(dir)
	if err != nil {
		return nil, err
	}
	opts := shardeddb.Options{Shards: n, Engine: DefaultOptions(nil)}
	opts.Engine.FS = fs
	return shardeddb.Open(opts)
}

// Simulation bundles the pieces of a virtual-time experiment: drive
// all activity from Kernel.Run, and read device counters from Device.
type Simulation struct {
	Kernel *sim.Kernel
	Device *storage.Device
	FS     *vfs.MemFS
	// WALDevice and WALFS are set when the WAL lives on its own
	// device (case study C).
	WALDevice *storage.Device
	WALFS     *vfs.MemFS
	// Options are the DB options, pre-wired to the clock, FS and
	// calibrated cost model; adjust and pass to Open inside Run.
	Options Options
}

// NewSimulation builds a simulated environment on the given device
// profile. Open the DB and run the workload inside sim.Kernel.Run.
func NewSimulation(profile DeviceProfile) *Simulation {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	dev := storage.New(k, profile)
	fs := vfs.NewMem(dev)
	opts := DefaultOptions(fs)
	opts.Clock = k
	opts.CostModel = costmodel.Default()
	return &Simulation{Kernel: k, Device: dev, FS: fs, Options: opts}
}

// NewSimulationNull returns an environment on a zero-latency in-memory
// device with the real clock: the store as plain Go code, useful for
// software-only benchmarks and tests. Kernel is nil; just call Open
// with s.Options directly.
func NewSimulationNull() *Simulation {
	dev := storage.New(clock.Real{}, storage.Null())
	fs := vfs.NewMem(dev)
	return &Simulation{Device: dev, FS: fs, Options: DefaultOptions(fs)}
}

// WithWALDevice places the WAL on a separate simulated device (case
// study C's NVM logging). Returns s for chaining.
func (s *Simulation) WithWALDevice(profile DeviceProfile) *Simulation {
	s.WALDevice = storage.New(s.Kernel, profile)
	s.WALFS = vfs.NewMem(s.WALDevice)
	s.Options.WALFS = s.WALFS
	return s
}
