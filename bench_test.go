// Package xpointdb's benchmark suite: one testing.B benchmark per
// figure of the paper (the same experiments cmd/figures runs, at a
// reduced scale suitable for `go test -bench`), plus ablation benches
// for the design choices DESIGN.md calls out.
//
// These benches report custom metrics instead of ns/op being the
// headline: kops/s of simulated throughput and µs latency percentiles,
// measured in virtual time. Wall-clock ns/op reflects simulation cost,
// not store performance.
package xpointdb

import (
	"fmt"
	"testing"
	"time"

	"xpointdb/internal/engine"
	"xpointdb/internal/experiments"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/workload"
)

// benchScale is smaller than the experiments' Quick scale so the whole
// bench suite stays tractable.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Duration:     1 * time.Second,
		KeySpace:     6000,
		MemtableSize: 1 << 20,
		SizeScale:    1,
	}
}

// runFigure executes one figure experiment b.N times (the run itself
// aggregates many operations; b.N loops re-run it).
func runFigure(b *testing.B, id string) {
	b.Helper()
	r := &experiments.Runner{Scale: benchScale()}
	for i := 0; i < b.N; i++ {
		rep, err := r.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + rep.Table())
		}
	}
}

func BenchmarkFig01_RawVsKV(b *testing.B)             { runFigure(b, "fig1") }
func BenchmarkFig03_InsertionRatio(b *testing.B)      { runFigure(b, "fig3") }
func BenchmarkFig04_Timeline5pcWrites(b *testing.B)   { runFigure(b, "fig4") }
func BenchmarkFig05_Timeline90pcWrites(b *testing.B)  { runFigure(b, "fig5") }
func BenchmarkFig06_ReadLatency90pc(b *testing.B)     { runFigure(b, "fig6") }
func BenchmarkFig07_WriteLatency90pc(b *testing.B)    { runFigure(b, "fig7") }
func BenchmarkFig08_L0CountVsFileSize(b *testing.B)   { runFigure(b, "fig8") }
func BenchmarkFig09_ThroughputVsL0Files(b *testing.B) { runFigure(b, "fig9") }
func BenchmarkFig10_ReadLatVsL0Files(b *testing.B)    { runFigure(b, "fig10") }
func BenchmarkFig12_WriteLatVsFileSize(b *testing.B)  { runFigure(b, "fig12") }
func BenchmarkFig13_Parallelism(b *testing.B)         { runFigure(b, "fig13") }
func BenchmarkFig14_ReadLat32Threads(b *testing.B)    { runFigure(b, "fig14") }
func BenchmarkFig15_WriteLat32Threads(b *testing.B)   { runFigure(b, "fig15") }
func BenchmarkFig16_WaitingWriters(b *testing.B)      { runFigure(b, "fig16") }
func BenchmarkFig17_WALOnOff(b *testing.B)            { runFigure(b, "fig17") }
func BenchmarkFig18_TwoStageThrottle(b *testing.B)    { runFigure(b, "fig18") }
func BenchmarkFig19_DynamicL0(b *testing.B)           { runFigure(b, "fig19") }
func BenchmarkFig20_NVMLogging(b *testing.B)          { runFigure(b, "fig20") }

// ---------------------------------------------------------------------
// Ablations: isolate the design choices DESIGN.md calls out. Each
// reports virtual kops/s via b.ReportMetric.

// ablationRun measures one simulated mixed workload and reports its
// virtual-time throughput and write p90.
func ablationRun(b *testing.B, profile storage.Profile, readRatio float64, tweak func(*engine.Options)) {
	b.Helper()
	sc := benchScale()
	var tp, wp90 float64
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(profile, sc, tweak)
		res, _, err := env.RunKV(func(db *engine.DB) *workload.Result {
			return env.Mixed(db, 4, readRatio, nil)
		})
		if err != nil {
			b.Fatal(err)
		}
		tp = res.Throughput()
		wp90 = float64(res.WriteLat.Percentile(90).Microseconds())
	}
	b.ReportMetric(tp/1000, "virt-kops/s")
	b.ReportMetric(wp90, "write-p90-µs")
}

func BenchmarkAblationPipelinedWrites(b *testing.B) {
	for _, pipelined := range []bool{true, false} {
		pipelined := pipelined
		b.Run(fmt.Sprintf("pipelined=%v", pipelined), func(b *testing.B) {
			ablationRun(b, storage.XPoint(), 0.5, func(o *engine.Options) {
				o.PipelinedWrites = pipelined
			})
		})
	}
}

func BenchmarkAblationBloomFilters(b *testing.B) {
	for _, bits := range []int{0, 10} {
		bits := bits
		b.Run(fmt.Sprintf("bloomBits=%d", bits), func(b *testing.B) {
			ablationRun(b, storage.XPoint(), 0.9, func(o *engine.Options) {
				o.BloomBitsPerKey = bits
			})
		})
	}
}

func BenchmarkAblationBlockCache(b *testing.B) {
	for _, mb := range []int64{0, 2, 8} {
		mb := mb
		b.Run(fmt.Sprintf("cacheMB=%d", mb), func(b *testing.B) {
			ablationRun(b, storage.XPoint(), 0.9, func(o *engine.Options) {
				o.BlockCacheSize = mb << 20
			})
		})
	}
}

func BenchmarkAblationThrottleMode(b *testing.B) {
	modes := map[string]throttle.Mode{
		"none":       throttle.ModeNone,
		"algorithm1": throttle.ModeAlgorithm1,
		"twostage":   throttle.ModeTwoStage,
	}
	for name, mode := range modes {
		mode := mode
		b.Run(name, func(b *testing.B) {
			ablationRun(b, storage.XPoint(), 0.1, func(o *engine.Options) {
				o.ThrottleMode = mode
			})
		})
	}
}

func BenchmarkAblationWriteGroupSize(b *testing.B) {
	for _, kb := range []int64{1, 64, 1024} {
		kb := kb
		b.Run(fmt.Sprintf("groupKB=%d", kb), func(b *testing.B) {
			ablationRun(b, storage.XPoint(), 0.5, func(o *engine.Options) {
				o.MaxBatchGroupBytes = kb << 10
			})
		})
	}
}

// BenchmarkEngineRealClock measures the store as plain Go code (real
// clock, zero-latency device): the software-only cost of Put and Get.
func BenchmarkEngineRealClock(b *testing.B) {
	sim := NewSimulationNull()
	db, err := Open(sim.Options)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := workload.Value(1, 1024)
	b.Run("put", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := db.Put(workload.Key(i%100000), val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := db.Get(workload.Key(i % 100000))
			if err != nil && err != ErrNotFound {
				b.Fatal(err)
			}
		}
	})
}
