package costmodel

import (
	"sync"
	"time"

	"xpointdb/internal/clock"
)

// Pacer is a byte-rate limiter for background I/O, built on virtual
// time: each charge computes how long the bytes take at the configured
// rate and sleeps the caller until its reserved slot arrives. It is the
// compaction I/O governor — every sub-compaction charges its reads and
// writes here, so however many merge loops run concurrently, their
// aggregate device traffic stays bounded against foreground ops
// (RocksDB's rate_limiter, reduced to the pacing essence).
//
// A nil *Pacer charges nothing. One Pacer may be shared across engines
// (shards): the reservation window is protected by a plain mutex that
// is never held across the sleep.
type Pacer struct {
	mu sync.Mutex
	// nextFree is when the next charge may start, in nanoseconds of
	// engine-clock time; lazily initialized from the first charge.
	nextFree time.Time
	started  bool
	rate     float64 // bytes per second
}

// NewPacer returns a pacer admitting bytesPerSec of charged I/O.
// Non-positive rates return nil (unlimited).
func NewPacer(bytesPerSec int64) *Pacer {
	if bytesPerSec <= 0 {
		return nil
	}
	return &Pacer{rate: float64(bytesPerSec)}
}

// Wait charges n bytes and sleeps until the pacer admits them. The
// sleep happens on clk with no locks held, so concurrent chargers
// queue in virtual time, not on the mutex.
func (p *Pacer) Wait(clk clock.Clock, n int64) {
	if p == nil || n <= 0 {
		return
	}
	now := clk.Now()
	cost := time.Duration(float64(n) / p.rate * float64(time.Second))

	p.mu.Lock()
	if !p.started || p.nextFree.Before(now) {
		// Idle pacer: unused capacity does not accumulate (no burst
		// debt), the charge starts now.
		p.nextFree = now
		p.started = true
	}
	start := p.nextFree
	p.nextFree = start.Add(cost)
	p.mu.Unlock()

	if d := start.Add(cost).Sub(now); d > 0 {
		clk.Sleep(d)
	}
}

// Rate reports the configured bytes/second (0 for a nil pacer).
func (p *Pacer) Rate() int64 {
	if p == nil {
		return 0
	}
	return int64(p.rate)
}
