// Package costmodel charges virtual CPU time for the engine's
// in-memory work. Under the simulation kernel, Go code executes in
// zero virtual time, so software costs that the paper measures — the
// skiplist search in each Level-0 table, memtable insertion depth,
// Bloom probes — must be charged explicitly. The constants are
// calibrated against the paper's micro-numbers: a lookup inside one
// Level-0 file costs ≈8.5 µs for a 32 MB file and ≈9.7 µs for 256 MB
// (Finding #2), i.e. a few hundred nanoseconds per key comparison plus
// a fixed per-table overhead.
//
// A nil *Model charges nothing (the right choice under the real clock,
// where CPU time is genuinely spent).
package costmodel

import (
	"time"

	"xpointdb/internal/clock"
)

// Model holds per-operation virtual CPU costs.
type Model struct {
	// PerCompare is charged per key comparison in skiplists, block
	// binary searches and file-range searches.
	PerCompare time.Duration
	// PerBloomProbe is charged per Bloom filter MayContain call.
	PerBloomProbe time.Duration
	// PerTableProbe is the fixed overhead of consulting one SST
	// (index lookup setup, block parse).
	PerTableProbe time.Duration
	// PerMemInsert is the fixed overhead of one memtable insert on
	// top of its comparison costs.
	PerMemInsert time.Duration
	// PerEntryCompact is charged per entry processed by flush or
	// compaction merges. The default models a single compaction
	// thread sustaining ~160 MB/s on 1 KB entries (merge, CRC,
	// block building) — the CPU ceiling that, in RocksDB, lets
	// Level-0 backlogs build even on devices with bandwidth to
	// spare, which is what arms the paper's throttling findings.
	PerEntryCompact time.Duration
	// PerWALAppend and PerWALByte model the unsynced WAL append
	// (write syscall + page-cache copy). RocksDB's benchmarks — and
	// the paper's — run with WAL enabled but not fsynced per write:
	// "the WAL and memtable are flushed to disk asynchronously".
	PerWALAppend time.Duration
	PerWALByte   time.Duration
}

// Default returns the calibrated model used by the experiments.
func Default() *Model {
	return &Model{
		PerCompare:      180 * time.Nanosecond,
		PerBloomProbe:   250 * time.Nanosecond,
		PerTableProbe:   2500 * time.Nanosecond,
		PerMemInsert:    600 * time.Nanosecond,
		PerEntryCompact: 6 * time.Microsecond,
		PerWALAppend:    3 * time.Microsecond,
		PerWALByte:      1 * time.Nanosecond,
	}
}

// ChargeCompares sleeps n comparisons' worth of virtual CPU time.
func (m *Model) ChargeCompares(clk clock.Clock, n int) {
	if m == nil || n <= 0 {
		return
	}
	clk.Sleep(time.Duration(n) * m.PerCompare)
}

// ChargeBloom charges n Bloom probes.
func (m *Model) ChargeBloom(clk clock.Clock, n int) {
	if m == nil || n <= 0 {
		return
	}
	clk.Sleep(time.Duration(n) * m.PerBloomProbe)
}

// ChargeTableProbe charges the fixed cost of consulting one table.
func (m *Model) ChargeTableProbe(clk clock.Clock) {
	if m == nil {
		return
	}
	clk.Sleep(m.PerTableProbe)
}

// ChargeMemInsert charges one memtable insertion with cmps comparisons.
func (m *Model) ChargeMemInsert(clk clock.Clock, cmps int) {
	if m == nil {
		return
	}
	clk.Sleep(m.PerMemInsert + time.Duration(cmps)*m.PerCompare)
}

// ChargeCompactEntries charges n merged entries of compaction CPU.
func (m *Model) ChargeCompactEntries(clk clock.Clock, n int) {
	if m == nil || n <= 0 {
		return
	}
	clk.Sleep(time.Duration(n) * m.PerEntryCompact)
}

// ChargeWALAppend charges one buffered log append of n bytes.
func (m *Model) ChargeWALAppend(clk clock.Clock, n int) {
	if m == nil {
		return
	}
	clk.Sleep(m.PerWALAppend + time.Duration(n)*m.PerWALByte)
}
