package costmodel

import (
	"testing"
	"time"

	"xpointdb/internal/sim"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNilModelChargesNothing(t *testing.T) {
	k := sim.New(t0)
	var m *Model
	k.Run(func() {
		m.ChargeCompares(k, 100)
		m.ChargeBloom(k, 5)
		m.ChargeTableProbe(k)
		m.ChargeMemInsert(k, 10)
		m.ChargeCompactEntries(k, 1000)
		m.ChargeWALAppend(k, 4096)
	})
	if k.Elapsed() != 0 {
		t.Fatalf("nil model charged %v", k.Elapsed())
	}
}

func TestChargesScaleWithCounts(t *testing.T) {
	m := Default()
	k := sim.New(t0)
	k.Run(func() {
		m.ChargeCompares(k, 10)
	})
	ten := k.Elapsed()
	if ten != 10*m.PerCompare {
		t.Fatalf("10 compares charged %v", ten)
	}

	k2 := sim.New(t0)
	k2.Run(func() {
		m.ChargeCompares(k2, 20)
	})
	if k2.Elapsed() != 2*ten {
		t.Fatalf("20 compares charged %v, want %v", k2.Elapsed(), 2*ten)
	}
}

func TestZeroAndNegativeCountsFree(t *testing.T) {
	m := Default()
	k := sim.New(t0)
	k.Run(func() {
		m.ChargeCompares(k, 0)
		m.ChargeBloom(k, -5)
		m.ChargeCompactEntries(k, 0)
	})
	if k.Elapsed() != 0 {
		t.Fatalf("zero-count charges took %v", k.Elapsed())
	}
}

func TestL0SearchCalibration(t *testing.T) {
	// Finding #2 micro-numbers: a lookup inside one Level-0 table
	// costs ≈8.5 µs for a 32 MB file (≈32k entries ⇒ ~30 binary
	// search comparisons) and ≈9.7 µs for 256 MB. Check the default
	// model lands in that range.
	m := Default()
	cost := func(entries int) time.Duration {
		cmps := 0
		for n := entries; n > 1; n /= 2 {
			cmps++
		}
		return m.PerTableProbe + time.Duration(cmps)*m.PerCompare + m.PerBloomProbe
	}
	c32 := cost(32 * 1024)
	c256 := cost(256 * 1024)
	if c32 < 4*time.Microsecond || c32 > 14*time.Microsecond {
		t.Fatalf("32MB-table search cost %v, want ≈8.5µs", c32)
	}
	if c256 <= c32 {
		t.Fatal("larger table must cost more")
	}
	if c256 > 16*time.Microsecond {
		t.Fatalf("256MB-table search cost %v, want ≈9.7µs", c256)
	}
}

func TestCompactionThroughputCeiling(t *testing.T) {
	// PerEntryCompact must correspond to a ~100-300 MB/s single
	// thread ceiling on 1 KB entries.
	m := Default()
	bytesPerSec := float64(1024) / m.PerEntryCompact.Seconds()
	if bytesPerSec < 100e6 || bytesPerSec > 300e6 {
		t.Fatalf("compaction ceiling %.0f MB/s outside [100,300]", bytesPerSec/1e6)
	}
}

func TestWALAppendCost(t *testing.T) {
	m := Default()
	k := sim.New(t0)
	k.Run(func() {
		m.ChargeWALAppend(k, 1024)
	})
	got := k.Elapsed()
	want := m.PerWALAppend + 1024*m.PerWALByte
	if got != want {
		t.Fatalf("WAL append charged %v, want %v", got, want)
	}
	if got < 2*time.Microsecond || got > 20*time.Microsecond {
		t.Fatalf("1KB WAL append %v outside syscall-ish range", got)
	}
}
