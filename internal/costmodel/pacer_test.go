package costmodel

import (
	"sync"
	"testing"
	"time"

	"xpointdb/internal/sim"
)

func TestNilPacerIsUnlimited(t *testing.T) {
	if p := NewPacer(0); p != nil {
		t.Fatal("NewPacer(0) should be nil (unlimited)")
	}
	if p := NewPacer(-5); p != nil {
		t.Fatal("NewPacer(-5) should be nil (unlimited)")
	}
	var p *Pacer
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	k.Run(func() {
		p.Wait(k, 1<<30) // must not sleep or panic
	})
	if k.Elapsed() != 0 {
		t.Fatalf("nil pacer slept %v", k.Elapsed())
	}
	if p.Rate() != 0 {
		t.Fatalf("nil pacer rate = %d, want 0", p.Rate())
	}
}

// TestPacerRate charges bytes at a known rate under the sim kernel and
// checks the virtual wall clock matches bytes/rate.
func TestPacerRate(t *testing.T) {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	p := NewPacer(1 << 20) // 1 MiB/s
	k.Run(func() {
		for i := 0; i < 4; i++ {
			p.Wait(k, 1<<18) // 256 KiB per charge
		}
	})
	// 1 MiB at 1 MiB/s: the first charge reserves [0, 250ms) and sleeps
	// to its end, so total elapsed is the full 1 second.
	if got, want := k.Elapsed(), time.Second; got != want {
		t.Fatalf("elapsed %v, want %v", got, want)
	}
}

// TestPacerNoBurstDebt checks idle capacity is forgiven: a charge after
// a long idle period pays only its own cost, it does not get a free
// pass from the accumulated idle time.
func TestPacerNoBurstDebt(t *testing.T) {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	p := NewPacer(1 << 20)
	k.Run(func() {
		p.Wait(k, 1<<20) // 1s
		k.Sleep(10 * time.Second)
		start := k.Elapsed()
		p.Wait(k, 1<<20) // must still take 1s, not be free
		if got := k.Elapsed() - start; got != time.Second {
			t.Errorf("post-idle charge took %v, want 1s", got)
		}
	})
}

// TestPacerSharedAcrossChargers checks concurrent chargers queue in
// virtual time: N goroutines charging the same pacer finish no earlier
// than total/rate.
func TestPacerSharedAcrossChargers(t *testing.T) {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	p := NewPacer(1 << 20)
	var mu sync.Mutex
	done := 0
	var finish time.Duration
	k.Run(func() {
		for i := 0; i < 4; i++ {
			k.Go("charger", func() {
				p.Wait(k, 1<<20)
				mu.Lock()
				done++
				if e := k.Elapsed(); e > finish {
					finish = e
				}
				mu.Unlock()
			})
		}
		// Poll in virtual time (a raw channel receive would block the
		// kernel's time advance).
		for {
			mu.Lock()
			d := done
			mu.Unlock()
			if d == 4 {
				break
			}
			k.Sleep(10 * time.Millisecond)
		}
	})
	if finish != 4*time.Second {
		t.Fatalf("4 MiB at 1 MiB/s finished at %v, want 4s", finish)
	}
}
