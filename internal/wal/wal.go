// Package wal implements the write-ahead log in the LevelDB/RocksDB
// record format: the log is a sequence of 32 KiB blocks, each holding
// physical records of the form
//
//	checksum uint32 (CRC-32C of type+payload, LE)
//	length   uint16 (LE)
//	type     byte   (full=1, first=2, middle=3, last=4)
//	payload  [length]byte
//
// A logical record (one encoded write batch) may be split across
// blocks as first/middle.../last fragments. Blocks with fewer than 7
// trailing bytes are zero-padded.
//
// The paper's Finding #4 and case study C revolve around this log:
// every committed write pays a WAL append + sync before it is
// acknowledged, and moving that cost to a faster device (or dropping
// it) is what Figures 17 and 20 measure.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"xpointdb/internal/vfs"
)

// BlockSize is the physical block size of the log.
const BlockSize = 32 * 1024

const headerSize = 7 // checksum(4) + length(2) + type(1)

const (
	fullType   = 1
	firstType  = 2
	middleType = 3
	lastType   = 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned by Reader when a record fails its checksum or
// framing checks. Recovery treats it as the end of the usable log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Writer appends logical records to a log file. It is not safe for
// concurrent use; the engine serializes access at the write-queue head.
type Writer struct {
	f           vfs.File
	blockOffset int // offset within the current block
	buf         []byte

	// Sync accounting for the event stream and stats reporter:
	// appended counts every byte written (payload + framing + padding),
	// synced the bytes made durable by completed Syncs.
	appended int64
	synced   int64
	syncs    int64
}

// NewWriter returns a Writer appending to f, which must be empty or
// positioned at a block boundary (a fresh log file).
func NewWriter(f vfs.File) *Writer {
	return &Writer{f: f}
}

// AddRecord appends one logical record. The data is buffered in the
// file layer; call Sync to persist.
func (w *Writer) AddRecord(payload []byte) error {
	begin := true
	for {
		leftover := BlockSize - w.blockOffset
		if leftover < headerSize {
			// Pad the rest of the block with zeros.
			if leftover > 0 {
				if _, err := w.f.Write(zeros[:leftover]); err != nil {
					return fmt.Errorf("wal: pad block: %w", err)
				}
				w.appended += int64(leftover)
			}
			w.blockOffset = 0
			leftover = BlockSize
		}
		avail := leftover - headerSize
		frag := payload
		if len(frag) > avail {
			frag = frag[:avail]
		}
		end := len(frag) == len(payload)

		var t byte
		switch {
		case begin && end:
			t = fullType
		case begin:
			t = firstType
		case end:
			t = lastType
		default:
			t = middleType
		}
		if err := w.emit(t, frag); err != nil {
			return err
		}
		payload = payload[len(frag):]
		begin = false
		if end {
			return nil
		}
	}
}

var zeros [headerSize]byte

func (w *Writer) emit(t byte, payload []byte) error {
	w.buf = w.buf[:0]
	var hdr [headerSize]byte
	crc := crc32.Update(0, castagnoli, []byte{t})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[0:4], crc)
	binary.LittleEndian.PutUint16(hdr[4:6], uint16(len(payload)))
	hdr[6] = t
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.blockOffset += headerSize + len(payload)
	w.appended += int64(headerSize + len(payload))
	return nil
}

// Sync persists all appended records to the device.
func (w *Writer) Sync() error {
	err := w.f.Sync()
	if err == nil {
		w.synced = w.appended
		w.syncs++
	}
	return err
}

// Appended returns the total bytes written to the log (including
// framing and padding).
func (w *Writer) Appended() int64 { return w.appended }

// Pending returns the bytes appended since the last successful Sync —
// what the next Sync will make durable.
func (w *Writer) Pending() int64 { return w.appended - w.synced }

// Syncs returns the number of completed Syncs.
func (w *Writer) Syncs() int64 { return w.syncs }

// Reader reads logical records back from a log file.
type Reader struct {
	f      vfs.File
	off    int64
	block  [BlockSize]byte
	blockN int // valid bytes in block
	blockI int // read cursor within block
	eof    bool
}

// NewReader returns a Reader over f from the beginning.
func NewReader(f vfs.File) *Reader {
	return &Reader{f: f}
}

// Offset returns the file offset up to which blocks have been
// consumed. After reading to EOF it equals the file size, which lets a
// caller pad the file to a block boundary before appending with a
// fresh Writer.
func (r *Reader) Offset() int64 { return r.off }

// ReadRecord returns the next logical record. It returns io.EOF at the
// clean end of the log and ErrCorrupt if a record fails validation
// (typically a torn tail write).
func (r *Reader) ReadRecord() ([]byte, error) {
	var record []byte
	inFragmented := false
	for {
		t, payload, err := r.readPhysical()
		if err != nil {
			if err == io.EOF && inFragmented {
				// Log ended mid-record: torn tail.
				return nil, ErrCorrupt
			}
			return nil, err
		}
		switch t {
		case fullType:
			if inFragmented {
				return nil, ErrCorrupt
			}
			return payload, nil
		case firstType:
			if inFragmented {
				return nil, ErrCorrupt
			}
			record = append(record[:0], payload...)
			inFragmented = true
		case middleType:
			if !inFragmented {
				return nil, ErrCorrupt
			}
			record = append(record, payload...)
		case lastType:
			if !inFragmented {
				return nil, ErrCorrupt
			}
			return append(record, payload...), nil
		default:
			return nil, ErrCorrupt
		}
	}
}

func (r *Reader) readPhysical() (byte, []byte, error) {
	for {
		if r.blockN-r.blockI < headerSize {
			// Rest of block is padding (or block exhausted): load next.
			if r.eof {
				return 0, nil, io.EOF
			}
			n, err := r.f.ReadAt(r.block[:], r.off)
			if n == 0 {
				if err != nil && !errors.Is(err, io.EOF) {
					return 0, nil, fmt.Errorf("wal: read: %w", err)
				}
				return 0, nil, io.EOF
			}
			r.off += int64(n)
			r.blockN, r.blockI = n, 0
			if errors.Is(err, io.EOF) || n < BlockSize {
				r.eof = true
			}
		}
		hdr := r.block[r.blockI : r.blockI+headerSize]
		length := int(binary.LittleEndian.Uint16(hdr[4:6]))
		t := hdr[6]
		if t == 0 && length == 0 {
			// Zero padding: skip to next block.
			r.blockI = r.blockN
			continue
		}
		if r.blockI+headerSize+length > r.blockN {
			return 0, nil, ErrCorrupt
		}
		payload := r.block[r.blockI+headerSize : r.blockI+headerSize+length]
		wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
		crc := crc32.Update(0, castagnoli, []byte{t})
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != wantCRC {
			return 0, nil, ErrCorrupt
		}
		r.blockI += headerSize + length
		out := make([]byte, length)
		copy(out, payload)
		return t, out, nil
	}
}
