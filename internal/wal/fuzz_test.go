package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzFile adapts a byte slice to vfs.File for reading, and collects
// writes for round-trip targets.
type fuzzFile struct {
	buf []byte
}

func (f *fuzzFile) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *fuzzFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *fuzzFile) Sync() error  { return nil }
func (f *fuzzFile) Close() error { return nil }

// FuzzReadRecord feeds arbitrary bytes to the WAL reader: it must
// terminate with io.EOF, ErrCorrupt, or another error — never panic
// and never loop forever.
func FuzzReadRecord(f *testing.F) {
	// Seeds: a valid single-record log, a log with a torn tail, and
	// garbage.
	valid := &fuzzFile{}
	w := NewWriter(valid)
	_ = w.AddRecord([]byte("hello wal"))
	_ = w.AddRecord(bytes.Repeat([]byte("x"), BlockSize)) // fragmented record
	f.Add(append([]byte(nil), valid.buf...))
	f.Add(valid.buf[:len(valid.buf)-3]) // torn mid-record
	f.Add([]byte("not a wal at all"))
	f.Add(make([]byte, BlockSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(&fuzzFile{buf: data})
		// Each iteration consumes at least a header or ends the block,
		// so the record count is bounded by the input size; the cap is
		// just a belt against regressions.
		for i := 0; i <= len(data); i++ {
			rec, err := r.ReadRecord()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			_ = rec
		}
		t.Fatalf("reader did not terminate within %d records", len(data)+1)
	})
}

// FuzzWriterReaderRoundTrip writes arbitrary payloads and requires the
// reader to return them intact.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add([]byte(""), byte(1))
	f.Add([]byte("payload"), byte(3))
	f.Add(bytes.Repeat([]byte("y"), 3*BlockSize), byte(2))

	f.Fuzz(func(t *testing.T, payload []byte, n byte) {
		count := int(n%8) + 1
		file := &fuzzFile{}
		w := NewWriter(file)
		for i := 0; i < count; i++ {
			if err := w.AddRecord(payload); err != nil {
				t.Fatalf("AddRecord: %v", err)
			}
		}
		r := NewReader(file)
		for i := 0; i < count; i++ {
			rec, err := r.ReadRecord()
			if err != nil {
				t.Fatalf("record %d/%d: %v", i, count, err)
			}
			if !bytes.Equal(rec, payload) {
				t.Fatalf("record %d: got %d bytes, want %d", i, len(rec), len(payload))
			}
		}
		if _, err := r.ReadRecord(); err != io.EOF {
			t.Fatalf("after %d records: want io.EOF, got %v", count, err)
		}
	})
}
