package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"testing/quick"

	"xpointdb/internal/clock"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

func newFS() *vfs.MemFS {
	return vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
}

func writeRecords(t *testing.T, recs [][]byte) (*vfs.MemFS, string) {
	t.Helper()
	fs := newFS()
	f, err := fs.Create("test.log")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for _, rec := range recs {
		if err := w.AddRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return fs, "test.log"
}

func readAll(t *testing.T, fs *vfs.MemFS, name string) ([][]byte, error) {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := NewReader(f)
	var out [][]byte
	for {
		rec, err := r.ReadRecord()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func TestRoundTripSmall(t *testing.T) {
	recs := [][]byte{[]byte("hello"), []byte("world"), {}, []byte("x")}
	fs, name := writeRecords(t, recs)
	got, err := readAll(t, fs, name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
}

func TestRoundTripLargeRecordsSpanBlocks(t *testing.T) {
	recs := [][]byte{
		bytes.Repeat([]byte("a"), BlockSize/2),
		bytes.Repeat([]byte("b"), BlockSize),     // spans 2 blocks
		bytes.Repeat([]byte("c"), 3*BlockSize+5), // spans 4 blocks
		[]byte("tail"),
	}
	fs, name := writeRecords(t, recs)
	got, err := readAll(t, fs, name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch (len %d vs %d)", i, len(got[i]), len(recs[i]))
		}
	}
}

func TestBlockBoundaryPadding(t *testing.T) {
	// A record sized to leave <7 bytes in the block forces padding.
	rec1 := bytes.Repeat([]byte("p"), BlockSize-headerSize-3)
	recs := [][]byte{rec1, []byte("next-block")}
	fs, name := writeRecords(t, recs)
	got, err := readAll(t, fs, name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[1], []byte("next-block")) {
		t.Fatalf("padding handling broken: %d records", len(got))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(recs [][]byte) bool {
		fs := newFS()
		fl, _ := fs.Create("p.log")
		w := NewWriter(fl)
		for _, rec := range recs {
			if err := w.AddRecord(rec); err != nil {
				return false
			}
		}
		w.Sync()
		fl.Close()

		rf, _ := fs.Open("p.log")
		r := NewReader(rf)
		for _, want := range recs {
			got, err := r.ReadRecord()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err := r.ReadRecord()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailDetected(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("t.log")
	w := NewWriter(f)
	w.AddRecord([]byte("complete-record"))
	w.Sync()
	// Append a record but only sync part of it by crashing.
	w.AddRecord(bytes.Repeat([]byte("x"), 100))
	// No sync: CrashClone drops it entirely (clean EOF)...
	crashed := fs.CrashClone()
	got, err := readAll(t, crashed, "t.log")
	if err != nil {
		t.Fatalf("clean truncation must read as EOF, got %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d records, want 1", len(got))
	}
}

func TestCorruptRecordStopsRead(t *testing.T) {
	fs, name := writeRecords(t, [][]byte{[]byte("one"), []byte("two")})
	// Flip a payload byte of the first record.
	f, _ := fs.Open(name)
	var buf [1]byte
	f.ReadAt(buf[:], headerSize) // first payload byte
	// MemFS has no WriteAt; corrupt by rebuilding the file.
	raw := make([]byte, 1024)
	n, _ := f.ReadAt(raw, 0)
	raw = raw[:n]
	raw[headerSize] ^= 0xFF
	f.Close()
	fs.Remove(name)
	nf, _ := fs.Create(name)
	nf.Write(raw)
	nf.Sync()
	nf.Close()

	_, err := readAll(t, fs, name)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestManySmallRecords(t *testing.T) {
	var recs [][]byte
	for i := 0; i < 5000; i++ {
		recs = append(recs, []byte(fmt.Sprintf("record-%06d", i)))
	}
	fs, name := writeRecords(t, recs)
	got, err := readAll(t, fs, name)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d of %d", len(got), len(recs))
	}
}

func TestReaderOffsetTracksFileEnd(t *testing.T) {
	fs, name := writeRecords(t, [][]byte{[]byte("abc")})
	f, _ := fs.Open(name)
	r := NewReader(f)
	for {
		if _, err := r.ReadRecord(); err != nil {
			break
		}
	}
	size, _ := fs.Size(name)
	if r.Offset() != size {
		t.Fatalf("Offset = %d, file size %d", r.Offset(), size)
	}
}
