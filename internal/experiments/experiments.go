// Package experiments defines one reproducible experiment per figure
// of the paper's evaluation (Figures 1 and 3–20; Figures 2 and 11 are
// schematic illustrations with no data). Each experiment builds a
// fresh simulated environment per cell — device model, virtual-time
// kernel, engine — runs the paper's workload at the scaled parameters
// from DESIGN.md, and reports the same series the paper plots.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"xpointdb/internal/costmodel"
	"xpointdb/internal/engine"
	"xpointdb/internal/sim"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
	"xpointdb/internal/workload"
)

// Scale selects experiment sizing.
type Scale struct {
	// Duration of the measured phase (paper: 300 s).
	Duration time.Duration
	// KeySpace is the number of distinct 1 KB-value keys (sets the
	// dataset size).
	KeySpace int
	// MemtableSize is the default memtable / L0 file size.
	MemtableSize int64
	// SizeScale is the dataset size reduction factor versus the
	// paper's testbed (100 GB data, 64 MB memtables). Device
	// bandwidths are divided by the same factor so background work
	// (flush/compaction) keeps its real-time cost relative to
	// foreground traffic — see storage.Profile.Scaled.
	SizeScale float64
}

// Quick is the default scale: fast enough for iterating, long enough
// for the LSM dynamics (stalls, compactions) to appear. Memtable 2 MB
// stands in for the paper's 64 MB default. SizeScale stays 1: the CPU
// cost model's compaction ceiling (~160 MB/s/thread), not device
// bandwidth, is what lets backlogs form, as on the paper's testbed.
func Quick() Scale {
	return Scale{Duration: 8 * time.Second, KeySpace: 32000, MemtableSize: 2 << 20, SizeScale: 1}
}

// Full is closer to the paper's configuration (still scaled in bytes).
func Full() Scale {
	return Scale{Duration: 60 * time.Second, KeySpace: 128000, MemtableSize: 4 << 20, SizeScale: 1}
}

// Devices returns the paper's three devices in presentation order.
func Devices() []storage.Profile {
	return []storage.Profile{storage.SATAFlash(), storage.PCIeFlash(), storage.XPoint()}
}

// Env is one simulated database environment.
type Env struct {
	Kernel *sim.Kernel
	Dev    *storage.Device
	WALDev *storage.Device // nil unless split WAL
	FS     *vfs.MemFS
	Opts   engine.Options
	Scale  Scale
}

// NewEnv builds an environment on profile at scale, applying tweak (if
// non-nil) to the options before use.
func NewEnv(profile storage.Profile, sc Scale, tweak func(*engine.Options)) *Env {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	dev := storage.New(k, profile.Scaled(sc.SizeScale))
	fs := vfs.NewMem(dev)
	opts := engine.DefaultOptions(fs)
	opts.Clock = k
	opts.CostModel = costmodel.Default()
	opts.MemtableSize = sc.MemtableSize
	opts.TargetFileSize = sc.MemtableSize
	// A shallow base level deepens the tree at the scaled dataset
	// size, restoring the paper's compaction write amplification.
	opts.BaseLevelBytes = 2 * sc.MemtableSize
	if tweak != nil {
		tweak(&opts)
	}
	return &Env{Kernel: k, Dev: dev, FS: fs, Opts: opts, Scale: sc}
}

// WithWALDevice moves the WAL onto its own device (case study C).
func (e *Env) WithWALDevice(profile storage.Profile) *Env {
	e.WALDev = storage.New(e.Kernel, profile.Scaled(e.Scale.SizeScale))
	e.Opts.WALFS = vfs.NewMem(e.WALDev)
	return e
}

// RunKV opens the DB, preloads the key space, resets device counters,
// runs fn, and closes — all in virtual time. It returns the workload
// result produced by fn.
func (e *Env) RunKV(fn func(db *engine.DB) *workload.Result) (res *workload.Result, m *engine.Metrics, err error) {
	e.Kernel.Run(func() {
		var db *engine.DB
		db, err = engine.Open(e.Opts)
		if err != nil {
			return
		}
		if err = workload.Preload(db, e.Scale.KeySpace, 1024); err != nil {
			db.Close()
			return
		}
		// Let startup compactions settle so the measured phase
		// starts from a steady tree.
		e.settle(db)
		e.Dev.ResetStats()
		res = fn(db)
		m = db.Metrics()
		err = db.Close()
	})
	return res, m, err
}

// settle waits (in virtual time) until Level-0 pressure from the
// preload has drained or a bounded settle window elapses.
func (e *Env) settle(db *engine.DB) {
	deadline := e.Kernel.Now().Add(30 * time.Second)
	for e.Kernel.Now().Before(deadline) {
		if db.NumLevelFiles(0) < e.Opts.L0CompactionTrigger {
			return
		}
		e.Kernel.Sleep(200 * time.Millisecond)
	}
}

// Mixed runs the standard randomreadrandomwrite workload.
func (e *Env) Mixed(db *engine.DB, workers int, readRatio float64, burst *workload.BurstConfig) *workload.Result {
	return workload.Run(e.Kernel, db, workload.Config{
		Workers:   workers,
		ReadRatio: readRatio,
		Duration:  e.Scale.Duration,
		KeySpace:  e.Scale.KeySpace,
		ValueSize: 1024,
		Seed:      42,
		Burst:     burst,
	})
}

// ---------------------------------------------------------------------
// Reports

// Report is one experiment's output.
type Report struct {
	ID      string
	Title   string
	Paper   string // the shape the paper observed
	Columns []string
	Rows    [][]string
	Notes   string
}

// Table renders the report as aligned text.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range r.Rows {
		writeRow(row)
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Notes)
	}
	return b.String()
}

// kops formats an ops/sec value as kop/s.
func kops(v float64) string { return fmt.Sprintf("%.1f", v/1000) }

// us formats a duration in microseconds.
func us(d time.Duration) string { return fmt.Sprintf("%.0f", float64(d.Nanoseconds())/1000) }

// Runner executes experiments by figure ID. Sweeps shared by several
// figures (the L0 size sweep behind Figs 8/12, the parallelism sweep
// behind Figs 13–16) are memoized per Runner.
type Runner struct {
	Scale   Scale
	Verbose func(format string, args ...interface{})

	l0Sweep     map[int64]*l0Cell
	l0Counts    map[string]*workload.Result // key: "<device>/<n>"
	parallel32C map[string]*parallelCell
	parallelAll map[string]map[int]*parallelCell
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Verbose != nil {
		r.Verbose(format, args...)
	}
}

// All returns every experiment ID in paper order.
func All() []string {
	return []string{
		"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20",
	}
}

// Run executes the experiment with the given figure ID.
func (r *Runner) Run(id string) (*Report, error) {
	switch id {
	case "fig1":
		return r.Fig1(), nil
	case "fig3":
		return r.Fig3(), nil
	case "fig4":
		return r.Fig4(), nil
	case "fig5":
		return r.Fig5(), nil
	case "fig6":
		return r.Fig6(), nil
	case "fig7":
		return r.Fig7(), nil
	case "fig8":
		return r.Fig8(), nil
	case "fig9":
		return r.Fig9(), nil
	case "fig10":
		return r.Fig10(), nil
	case "fig12":
		return r.Fig12(), nil
	case "fig13":
		return r.Fig13(), nil
	case "fig14":
		return r.Fig14(), nil
	case "fig15":
		return r.Fig15(), nil
	case "fig16":
		return r.Fig16(), nil
	case "fig17":
		return r.Fig17(), nil
	case "fig18":
		return r.Fig18(), nil
	case "fig19":
		return r.Fig19(), nil
	case "fig20":
		return r.Fig20(), nil
	}
	return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", id, All())
}
