package experiments

import (
	"fmt"
	"time"

	"xpointdb/internal/engine"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/workload"
)

// Case-study experiments (Figures 18–20).

// burstConfig is the paper's "flash of crowd" pattern: a 1:1 baseline
// with a 25-seconds-per-minute burst at read:write 1:9.
func burstConfig() *workload.BurstConfig {
	return &workload.BurstConfig{
		Period:         time.Minute,
		BurstLen:       25 * time.Second,
		BurstReadRatio: 0.1,
	}
}

// Fig18 compares the original Algorithm 1 throttling against the
// two-stage variant under periodic write bursts on 3D XPoint; the
// original shows near-stop windows (<10 kop/s), the two-stage doesn't.
func (r *Runner) Fig18() *Report {
	rep := &Report{
		ID:      "fig18",
		Title:   "Throughput over time with periodic write bursts (1:1 base, 25s/min at 1:9; 3D XPoint)",
		Paper:   "original throttling dips to ~9–12 kop/s near-stop windows; two-stage throttling removes them",
		Columns: []string{"t(s)", "algorithm1 kop/s", "two-stage kop/s"},
	}
	// Bursts need at least one full period to show. At the default
	// scale the paper's 60 s period / 25 s burst pattern runs for 90
	// virtual seconds; tiny scales (the bench suite) use a shrunken
	// burst pattern instead so the experiment stays cheap.
	sc := r.Scale
	burst := burstConfig()
	if sc.Duration < 5*time.Second {
		// Bench/tiny scales: a shrunken burst pattern keeps the
		// experiment cheap while still alternating the mix.
		sc.Duration = 12 * time.Second
		burst = &workload.BurstConfig{
			Period:         6 * time.Second,
			BurstLen:       2500 * time.Millisecond,
			BurstReadRatio: 0.1,
		}
	} else if sc.Duration < 90*time.Second {
		// Quick/full scales run the paper's true pattern (60 s
		// period, 25 s bursts) for at least 1.5 periods.
		sc.Duration = 90 * time.Second
	}
	series := make(map[string][]float64)
	mins := make(map[string]float64)
	for _, mode := range []throttle.Mode{throttle.ModeAlgorithm1, throttle.ModeTwoStage} {
		mode := mode
		env := NewEnv(storage.XPoint(), sc, func(o *engine.Options) {
			o.ThrottleMode = mode
			o.TwoStageFloorRate = o.DelayedWriteRate / 2
			// RocksDB's 20/36 thresholds assume 64 MB files against
			// a 100 GB dataset (0.08 dataset fractions); at the
			// scaled 2 MB files / tens-of-MB dataset they would
			// exceed the whole database. Scale them to the same
			// multiples of the compaction trigger the paper's setup
			// effectively exercises under bursts.
			o.L0SlowdownTrigger = 8
			o.L0StopTrigger = 16
		})
		res, _, err := env.RunKV(func(db *engine.DB) *workload.Result {
			return workload.Run(env.Kernel, db, workload.Config{
				Workers:   4,
				ReadRatio: 0.5,
				Duration:  sc.Duration,
				KeySpace:  sc.KeySpace,
				ValueSize: 1024,
				Seed:      42,
				Burst:     burst,
			})
		})
		if err != nil {
			rep.Notes = "error: " + err.Error()
			return rep
		}
		name := modeName(mode)
		pts := res.Series.Points()
		if len(pts) > 0 {
			pts = pts[:len(pts)-1] // drop the final partial bucket
		}
		rates := make([]float64, len(pts))
		min := -1.0
		for i, p := range pts {
			rates[i] = p.Rate
			// Ignore the first ramp-up second when hunting the min.
			if i >= 1 && (min < 0 || p.Rate < min) {
				min = p.Rate
			}
		}
		series[name] = rates
		mins[name] = min
		r.logf("fig18 %s: %s (min rate %.1f kop/s)", name, res, min/1000)
	}
	a, b := series["algorithm1"], series["two-stage"]
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for t := 0; t < n; t++ {
		row := []string{fmt.Sprintf("%d", t)}
		for _, s := range [][]float64{a, b} {
			if t < len(s) {
				row = append(row, kops(s[t]))
			} else {
				row = append(row, "-")
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = fmt.Sprintf("min per-second rate: algorithm1=%.1f kop/s, two-stage=%.1f kop/s",
		mins["algorithm1"]/1000, mins["two-stage"]/1000)
	return rep
}

func modeName(m throttle.Mode) string {
	switch m {
	case throttle.ModeTwoStage:
		return "two-stage"
	case throttle.ModeAlgorithm1:
		return "algorithm1"
	}
	return "none"
}

// Fig19 compares default Level-0 management against case study B's
// dynamic management across read ratios on 3D XPoint.
func (r *Runner) Fig19() *Report {
	rep := &Report{
		ID:      "fig19",
		Title:   "Throughput vs read ratio: default vs dynamic Level-0 management (3D XPoint, 4 workers)",
		Paper:   "dynamic L0 wins in most cases; +13% at 90% reads (77→87 kop/s); parity at 5% reads",
		Columns: []string{"read%", "default kop/s", "dynamic kop/s", "gain"},
	}
	ratios := []int{5, 25, 50, 75, 90}
	for _, pct := range ratios {
		var tp [2]float64
		for i, adaptive := range []bool{false, true} {
			adaptive := adaptive
			env := NewEnv(storage.XPoint(), r.Scale, func(o *engine.Options) {
				o.AdaptiveL0 = adaptive
				// The paper's configuration: throttle at 24 L0 files;
				// aggregate L0 volume constant.
				o.L0SlowdownTrigger = 24
				o.L0StopTrigger = 36
				o.AdaptiveL0Aggregate = 24 * o.MemtableSize
				o.AdaptiveL0ManyFiles = 24
				o.AdaptiveL0FewFiles = 6
			})
			res, _, err := env.RunKV(func(db *engine.DB) *workload.Result {
				return env.Mixed(db, 4, float64(pct)/100, nil)
			})
			if err != nil {
				rep.Notes = "error: " + err.Error()
				return rep
			}
			tp[i] = res.Throughput()
			r.logf("fig19 read=%d%% adaptive=%v: %s", pct, adaptive, res)
		}
		gain := "-"
		if tp[0] > 0 {
			gain = fmt.Sprintf("%+.1f%%", (tp[1]/tp[0]-1)*100)
		}
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%d", pct), kops(tp[0]), kops(tp[1]), gain})
	}
	return rep
}

// Fig20 compares WAL placement at 50% inserts on 3D XPoint: WAL on the
// data device, WAL on NVM (case study C), and WAL disabled.
func (r *Runner) Fig20() *Report {
	rep := &Report{
		ID:      "fig20",
		Title:   "WRITE latency vs logging configuration (50% writes, 4 workers, 3D XPoint data device)",
		Paper:   "NVM logging cuts p90 write latency ~18.8% (16→13 µs); disabling WAL is still faster — logging overhead is not fully removable by placement",
		Columns: []string{"wal", "p50(us)", "p90(us)", "p99(us)", "kop/s"},
	}
	type cfg struct {
		name    string
		disable bool
		nvm     bool
	}
	for _, c := range []cfg{
		{"data-device", false, false},
		{"nvm", false, true},
		{"off", true, false},
	} {
		c := c
		env := NewEnv(storage.XPoint(), r.Scale, func(o *engine.Options) {
			o.DisableWAL = c.disable
			// Case study C presumes commits reach the log device
			// (that is what makes its placement matter); run the
			// comparison in the durable-WAL configuration.
			o.SyncWAL = true
		})
		if c.nvm {
			env.WithWALDevice(storage.NVM())
		}
		res, _, err := env.RunKV(func(db *engine.DB) *workload.Result {
			return env.Mixed(db, 4, 0.5, nil)
		})
		if err != nil {
			rep.Notes = "error: " + err.Error()
			return rep
		}
		rep.Rows = append(rep.Rows, []string{
			c.name,
			us(res.WriteLat.Percentile(50)),
			us(res.WriteLat.Percentile(90)),
			us(res.WriteLat.Percentile(99)),
			kops(res.Throughput()),
		})
		r.logf("fig20 wal=%s: %s", c.name, res)
	}
	return rep
}
