package experiments

import (
	"fmt"
	"time"

	"xpointdb/internal/engine"
	"xpointdb/internal/workload"
)

// Figures 13–16: parallelism and read/write interference. One sweep of
// worker counts per device feeds Figure 13; the 32-worker cells feed
// Figures 14, 15 and 16.

type parallelCell struct {
	res            *workload.Result
	waitingWriters float64
	maxWaiting     int64
}

// runParallelCell runs the 1:1 workload at a given worker count.
func (r *Runner) runParallelCell(profIdx, workers int) (*parallelCell, error) {
	sc := r.Scale
	if sc.Duration > 8*time.Second {
		sc.Duration = 8 * time.Second
	}
	env := NewEnv(Devices()[profIdx], sc, nil)
	cell := &parallelCell{}
	res, m, err := env.RunKV(func(db *engine.DB) *workload.Result {
		return env.Mixed(db, workers, 0.5, nil)
	})
	if err != nil {
		return nil, err
	}
	cell.res = res
	cell.waitingWriters = m.WaitingWriters.Mean()
	cell.maxWaiting = m.WaitingWriters.Max()
	return cell, nil
}

// parallelSweep runs the full worker sweep, memoized per Runner.
func (r *Runner) parallelSweep() (map[string]map[int]*parallelCell, []int, error) {
	workers := []int{1, 2, 4, 8, 16, 32}
	if r.parallelAll != nil {
		return r.parallelAll, workers, nil
	}
	out := make(map[string]map[int]*parallelCell)
	for pi, p := range Devices() {
		out[p.Name] = make(map[int]*parallelCell)
		for _, w := range workers {
			cell, err := r.runParallelCell(pi, w)
			if err != nil {
				return nil, nil, err
			}
			out[p.Name][w] = cell
			r.logf("parallel %s w=%d: %s (waiting mean %.1f)", p.Name, w, cell.res, cell.waitingWriters)
		}
	}
	r.parallelAll = out
	// The 32-worker cells double as the Figure 14–16 inputs.
	c32 := make(map[string]*parallelCell)
	for name, cells := range out {
		c32[name] = cells[32]
	}
	r.parallel32C = c32
	return out, workers, nil
}

// parallel32 runs only the 32-worker cells (Figures 14–16), memoized.
func (r *Runner) parallel32() (map[string]*parallelCell, error) {
	if r.parallel32C != nil {
		return r.parallel32C, nil
	}
	out := make(map[string]*parallelCell)
	for pi, p := range Devices() {
		cell, err := r.runParallelCell(pi, 32)
		if err != nil {
			return nil, err
		}
		out[p.Name] = cell
		r.logf("parallel32 %s: %s (waiting mean %.1f max %d)", p.Name, cell.res, cell.waitingWriters, cell.maxWaiting)
	}
	r.parallel32C = out
	return out, nil
}

// Fig13: throughput vs parallelism.
func (r *Runner) Fig13() *Report {
	rep := &Report{
		ID:      "fig13",
		Title:   "Throughput (kop/s) vs number of client threads (1:1)",
		Paper:   "throughput rises with threads on all devices (3D XPoint: 35.4→79.5 kop/s from 1→32)",
		Columns: []string{"threads"},
	}
	sweep, workers, err := r.parallelSweep()
	if err != nil {
		rep.Notes = "error: " + err.Error()
		return rep
	}
	for _, p := range Devices() {
		rep.Columns = append(rep.Columns, p.Name)
	}
	for _, w := range workers {
		row := []string{fmt.Sprintf("%d", w)}
		for _, p := range Devices() {
			row = append(row, kops(sweep[p.Name][w].res.Throughput()))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Fig14: read latency at 32 threads.
func (r *Runner) Fig14() *Report {
	rep := &Report{
		ID:      "fig14",
		Title:   "READ latency at 32 threads (1:1)",
		Paper:   "p90 read 335 µs on 3D XPoint vs 1.4 ms on SATA flash (−76%)",
		Columns: []string{"device", "p50(us)", "p90(us)", "p99(us)"},
	}
	cells, err := r.parallel32()
	if err != nil {
		rep.Notes = "error: " + err.Error()
		return rep
	}
	for _, p := range Devices() {
		h := cells[p.Name].res.ReadLat
		rep.Rows = append(rep.Rows, []string{p.Name, us(h.Percentile(50)), us(h.Percentile(90)), us(h.Percentile(99))})
	}
	return rep
}

// Fig15: write latency at 32 threads — the reversal: XPoint's fast
// reads accumulate more waiting writers, so its write tail is WORSE
// than SATA flash.
func (r *Runner) Fig15() *Report {
	rep := &Report{
		ID:      "fig15",
		Title:   "WRITE latency at 32 threads (1:1)",
		Paper:   "p90 write 440 µs on 3D XPoint vs 47 µs on SATA flash — the fast device loses on write tails under interference",
		Columns: []string{"device", "p50(us)", "p90(us)", "p99(us)"},
	}
	cells, err := r.parallel32()
	if err != nil {
		rep.Notes = "error: " + err.Error()
		return rep
	}
	for _, p := range Devices() {
		h := cells[p.Name].res.WriteLat
		rep.Rows = append(rep.Rows, []string{p.Name, us(h.Percentile(50)), us(h.Percentile(90)), us(h.Percentile(99))})
	}
	return rep
}

// Fig16: mean number of waiting writer threads per device at 32
// threads.
func (r *Runner) Fig16() *Report {
	rep := &Report{
		ID:      "fig16",
		Title:   "Mean waiting writer threads at 32 threads (1:1)",
		Paper:   "more writers queue on 3D XPoint than on either flash SSD: fast reads → higher write arrival pressure → deeper write queue",
		Columns: []string{"device", "mean waiting", "max waiting"},
	}
	cells, err := r.parallel32()
	if err != nil {
		rep.Notes = "error: " + err.Error()
		return rep
	}
	for _, p := range Devices() {
		c := cells[p.Name]
		rep.Rows = append(rep.Rows, []string{p.Name, fmt.Sprintf("%.2f", c.waitingWriters), fmt.Sprintf("%d", c.maxWaiting)})
	}
	return rep
}
