package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"xpointdb/internal/engine"
	"xpointdb/internal/storage"
	"xpointdb/internal/workload"
)

// The Level-0 experiments (Figures 8–12) sweep the memtable size —
// which is the L0 file size, since one flush produces one L0 file —
// and the L0 file-count operating point. Per the paper's setup the
// aggregate Level-0 volume is held constant while its division into
// files varies.

// l0SizeSweep returns the scaled memtable/L0-file sizes standing in
// for the paper's 32–512 MB sweep (scaled 1:32 per DESIGN.md).
func (r *Runner) l0SizeSweep() []int64 {
	return []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20}
}

// l0SizeLabel renders a scaled size with its paper-scale equivalent.
func l0SizeLabel(sz int64) string {
	return fmt.Sprintf("%dMB(≈%dMB)", sz>>20, (sz>>20)*32)
}

// l0Cell is one memoized point of the size sweep, shared by Figures 8
// and 12.
type l0Cell struct {
	res    *workload.Result
	meanL0 float64
}

// runL0SizeCell runs (once per Runner) the standard 1:1 workload with
// a given memtable/L0 file size and returns the result plus the mean
// observed L0 file count.
func (r *Runner) runL0SizeCell(sz int64) (*workload.Result, float64, error) {
	if c, ok := r.l0Sweep[sz]; ok {
		return c.res, c.meanL0, nil
	}
	sc := r.Scale
	// Big-memtable cells simulate enormous op counts (most ops never
	// touch the device); a shorter window measures the same shape.
	if sc.Duration > 8*time.Second {
		sc.Duration = 8 * time.Second
	}
	env := NewEnv(Devices()[2], sc, func(o *engine.Options) {
		o.MemtableSize = sz
		o.TargetFileSize = sz
		o.BaseLevelBytes = 4 * sz
	})
	var meanL0 float64
	res, _, err := env.RunKV(func(db *engine.DB) *workload.Result {
		// Sample the L0 file count during the run.
		var stop atomic.Bool
		var sum, samples atomic.Int64
		env.Kernel.Go("l0-sampler", func() {
			for !stop.Load() {
				sum.Add(int64(db.NumLevelFiles(0)))
				samples.Add(1)
				env.Kernel.Sleep(100 * time.Millisecond)
			}
		})
		out := env.Mixed(db, 4, 0.5, nil)
		stop.Store(true)
		if n := samples.Load(); n > 0 {
			meanL0 = float64(sum.Load()) / float64(n)
		}
		return out
	})
	if err == nil {
		if r.l0Sweep == nil {
			r.l0Sweep = make(map[int64]*l0Cell)
		}
		r.l0Sweep[sz] = &l0Cell{res: res, meanL0: meanL0}
	}
	return res, meanL0, err
}

// Fig8 establishes the control relationship: number of Level-0 files
// vs Level-0 file size (32→512 MB, scaled) at 1:1 read/write.
func (r *Runner) Fig8() *Report {
	rep := &Report{
		ID:      "fig8",
		Title:   "Number of Level-0 files vs L0 file size (1:1, 4 workers, 3D XPoint)",
		Paper:   "larger files ⇒ fewer L0 files: file size is the knob that controls the L0 file count",
		Columns: []string{"file size", "mean L0 files"},
	}
	for _, sz := range r.l0SizeSweep() {
		_, meanL0, err := r.runL0SizeCell(sz)
		if err != nil {
			rep.Notes = "error: " + err.Error()
			return rep
		}
		rep.Rows = append(rep.Rows, []string{l0SizeLabel(sz), fmt.Sprintf("%.1f", meanL0)})
		r.logf("fig8 size=%s meanL0=%.1f", l0SizeLabel(sz), meanL0)
	}
	return rep
}

// l0CountCell pins the steady-state L0 file count near n by setting
// the compaction trigger to n while holding the aggregate L0 volume
// constant (file size = aggregate / n). Memoized per Runner: Figures 9
// and 10 share the sweep. bloom=false reproduces the paper's db_bench
// configuration (bloom_bits defaults off there), where every covering
// Level-0 file pays a real search — the regime behind the paper's
// sharper XPoint sensitivity.
func (r *Runner) l0CountCell(prof storage.Profile, bloom bool, n int, aggregate int64) (*workload.Result, error) {
	key := fmt.Sprintf("%s/%v/%d", prof.Name, bloom, n)
	if res, ok := r.l0Counts[key]; ok {
		return res, nil
	}
	size := aggregate / int64(n)
	env := NewEnv(prof, r.Scale, func(o *engine.Options) {
		o.MemtableSize = size
		o.TargetFileSize = size
		o.BaseLevelBytes = 4 * size
		o.L0CompactionTrigger = n
		o.L0SlowdownTrigger = n * 4
		o.L0StopTrigger = n * 8
		if !bloom {
			o.BloomBitsPerKey = 0
		}
	})
	res, _, err := env.RunKV(func(db *engine.DB) *workload.Result {
		return env.Mixed(db, 4, 0.5, nil)
	})
	if err == nil {
		if r.l0Counts == nil {
			r.l0Counts = make(map[string]*workload.Result)
		}
		r.l0Counts[key] = res
	}
	return res, err
}

// fig910 runs the L0 file-count sweep once and feeds both Figure 9
// (throughput) and Figure 10 (read latency). Besides the three devices
// it includes a bloom-off XPoint column matching the paper's db_bench
// configuration (see l0CountCell).
func (r *Runner) fig910(id, title, paper string, render func(*workload.Result) string) *Report {
	rep := &Report{
		ID:      id,
		Title:   title,
		Paper:   paper,
		Columns: []string{"L0 files"},
	}
	type variant struct {
		name  string
		prof  storage.Profile
		bloom bool
	}
	variants := []variant{
		{"sata-flash", storage.SATAFlash(), true},
		{"pcie-flash", storage.PCIeFlash(), true},
		{"3dxpoint", storage.XPoint(), true},
		{"3dxpoint-nobloom", storage.XPoint(), false},
	}
	counts := []int{2, 4, 6, 8}
	const aggregate = 16 << 20
	cells := make(map[string][]string)
	for _, v := range variants {
		rep.Columns = append(rep.Columns, v.name)
		for _, n := range counts {
			res, err := r.l0CountCell(v.prof, v.bloom, n, aggregate)
			if err != nil {
				cells[v.name] = append(cells[v.name], "err")
				continue
			}
			cells[v.name] = append(cells[v.name], render(res))
			r.logf("%s %s n=%d: %s", id, v.name, n, res)
		}
	}
	for i, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, v := range variants {
			row = append(row, cells[v.name][i])
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = "3dxpoint-nobloom matches the paper's db_bench setup (bloom filters off): every covering L0 file pays a real search"
	return rep
}

// Fig9: throughput vs number of L0 files.
func (r *Runner) Fig9() *Report {
	return r.fig910("fig9",
		"Throughput (kop/s) vs number of Level-0 files (1:1, 4 workers)",
		"throughput falls as L0 files grow — and falls *more* on 3D XPoint (−19.9% from 2→8 files) than on PCIe flash (−12.3%)",
		func(res *workload.Result) string { return kops(res.Throughput()) })
}

// Fig10: read tail latency vs number of L0 files.
func (r *Runner) Fig10() *Report {
	return r.fig910("fig10",
		"READ p90 (µs) vs number of Level-0 files (1:1, 4 workers)",
		"on 3D XPoint p90 read drops from 134 µs at 8 files to 101 µs at 2 — every extra L0 file is another table to probe",
		func(res *workload.Result) string { return us(res.ReadLat.Percentile(90)) })
}

// Fig12 measures write tail latency vs SST/memtable size: a larger
// memtable means a deeper skiplist and costlier inserts.
func (r *Runner) Fig12() *Report {
	rep := &Report{
		ID:      "fig12",
		Title:   "WRITE p90 (µs) vs memtable/SST file size (1:1, 4 workers)",
		Paper:   "p90 write rises with file size (25→31 µs for 64→256 MB on SATA flash): insertion cost grows with skiplist depth",
		Columns: []string{"file size", "write p90(us)", "write p99(us)"},
	}
	for _, sz := range r.l0SizeSweep() {
		res, _, err := r.runL0SizeCell(sz)
		if err != nil {
			rep.Notes = "error: " + err.Error()
			return rep
		}
		rep.Rows = append(rep.Rows, []string{
			l0SizeLabel(sz),
			us(res.WriteLat.Percentile(90)),
			us(res.WriteLat.Percentile(99)),
		})
		r.logf("fig12 size=%s: %s", l0SizeLabel(sz), res)
	}
	return rep
}
