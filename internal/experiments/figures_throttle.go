package experiments

import (
	"fmt"
	"time"

	"xpointdb/internal/engine"
	"xpointdb/internal/storage"
	"xpointdb/internal/workload"
)

// Fig1 reproduces the motivating example: raw-device throughput vs
// RocksDB throughput on the SATA flash SSD and the 3D XPoint SSD
// (4 KB random, 8 threads, read:write 1:1). The paper measured a raw
// speedup of 15.7× collapsing to 1.77× at the KV level.
func (r *Runner) Fig1() *Report {
	rep := &Report{
		ID:      "fig1",
		Title:   "Raw device vs KV-store throughput, SATA flash vs 3D XPoint (8 threads, 1:1)",
		Paper:   "raw 26→408 kop/s (15.7×); RocksDB 13→23 kop/s (+76.9%) — the KV layer squanders most of the hardware gain",
		Columns: []string{"device", "raw kop/s", "kv kop/s"},
	}
	profiles := []storage.Profile{storage.SATAFlash(), storage.XPoint()}
	var rawTP, kvTP []float64
	for _, p := range profiles {
		// Raw baseline: drive the bare device model.
		env := NewEnv(p, r.Scale, nil)
		var raw *workload.Result
		env.Kernel.Run(func() {
			raw = workload.RunRaw(env.Kernel, env.Dev, 8, 0.5, r.Scale.Duration/2, 1)
		})

		// KV: same mix through the engine.
		env2 := NewEnv(p, r.Scale, nil)
		res, _, err := env2.RunKV(func(db *engine.DB) *workload.Result {
			return env2.Mixed(db, 8, 0.5, nil)
		})
		if err != nil {
			rep.Notes = "error: " + err.Error()
			return rep
		}
		rawTP = append(rawTP, raw.Throughput())
		kvTP = append(kvTP, res.Throughput())
		rep.Rows = append(rep.Rows, []string{p.Name, kops(raw.Throughput()), kops(res.Throughput())})
		r.logf("fig1 %s: raw=%s kv=%s", p.Name, raw, res)
	}
	if len(rawTP) == 2 && rawTP[0] > 0 && kvTP[0] > 0 {
		rep.Notes = fmt.Sprintf("raw speedup %.1f×, kv speedup %.2f× — measured here", rawTP[1]/rawTP[0], kvTP[1]/kvTP[0])
	}
	return rep
}

// Fig3 measures throughput vs insertion ratio (0→100%) on all three
// devices with 4 workers. The paper found throughput *rising* with
// insertion ratio on both flash SSDs but *falling* on 3D XPoint, the
// two converging at high insertion ratios because throttling erases
// the hardware difference.
func (r *Runner) Fig3() *Report {
	rep := &Report{
		ID:      "fig3",
		Title:   "Throughput vs insertion ratio (4 workers)",
		Paper:   "flash SSDs rise with insertion ratio (fewer expensive reads); 3D XPoint falls (115→45 kop/s) and converges toward PCIe flash as throttling dominates",
		Columns: []string{"insert%"},
	}
	ratios := []int{0, 10, 25, 50, 75, 90, 100}
	cells := make(map[string][]string)
	for _, p := range Devices() {
		rep.Columns = append(rep.Columns, p.Name+" kop/s")
		for _, ins := range ratios {
			env := NewEnv(p, r.Scale, nil)
			readRatio := 1 - float64(ins)/100
			res, _, err := env.RunKV(func(db *engine.DB) *workload.Result {
				return env.Mixed(db, 4, readRatio, nil)
			})
			if err != nil {
				cells[p.Name] = append(cells[p.Name], "err")
				continue
			}
			cells[p.Name] = append(cells[p.Name], kops(res.Throughput()))
			r.logf("fig3 %s ins=%d%%: %s", p.Name, ins, res)
		}
	}
	for i, ins := range ratios {
		row := []string{fmt.Sprintf("%d", ins)}
		for _, p := range Devices() {
			row = append(row, cells[p.Name][i])
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// timeline runs one device at one write ratio and returns the
// per-second throughput series (Figures 4 and 5).
func (r *Runner) timeline(p storage.Profile, readRatio float64) ([]float64, error) {
	env := NewEnv(p, r.Scale, nil)
	res, _, err := env.RunKV(func(db *engine.DB) *workload.Result {
		return env.Mixed(db, 4, readRatio, nil)
	})
	if err != nil {
		return nil, err
	}
	pts := res.Series.Points()
	if len(pts) > 0 {
		// Drop the final partial bucket (the run ends mid-second).
		pts = pts[:len(pts)-1]
	}
	rates := make([]float64, len(pts))
	for i, pt := range pts {
		rates[i] = pt.Rate
	}
	return rates, nil
}

func (r *Runner) timelineReport(id, title, paper string, readRatio float64) *Report {
	rep := &Report{
		ID:      id,
		Title:   title,
		Paper:   paper,
		Columns: []string{"t(s)"},
	}
	series := make(map[string][]float64)
	maxLen := 0
	for _, p := range Devices() {
		rates, err := r.timeline(p, readRatio)
		if err != nil {
			rep.Notes = "error: " + err.Error()
			return rep
		}
		series[p.Name] = rates
		if len(rates) > maxLen {
			maxLen = len(rates)
		}
		rep.Columns = append(rep.Columns, p.Name+" kop/s")
	}
	for t := 0; t < maxLen; t++ {
		row := []string{fmt.Sprintf("%d", t)}
		for _, p := range Devices() {
			if t < len(series[p.Name]) {
				row = append(row, kops(series[p.Name][t]))
			} else {
				row = append(row, "-")
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	// Summarize variation on the XPoint device.
	x := series["3dxpoint"]
	if len(x) > 2 {
		min, max := x[0], x[0]
		for _, v := range x {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		rep.Notes = fmt.Sprintf("3dxpoint per-second rate min=%.1f kop/s max=%.1f kop/s", min/1000, max/1000)
	}
	return rep
}

// Fig4 is the per-second throughput timeline at 5% writes: smooth and
// device-ordered (XPoint highest).
func (r *Runner) Fig4() *Report {
	return r.timelineReport("fig4",
		"Throughput over time, 5% writes (4 workers)",
		"stable rates; 3D XPoint well above both flash SSDs",
		0.95)
}

// Fig5 is the same at 90% writes: the throttling mechanism periodically
// drags 3D XPoint from ~169 kop/s to a few kop/s.
func (r *Runner) Fig5() *Report {
	return r.timelineReport("fig5",
		"Throughput over time, 90% writes (4 workers)",
		"periodic throttling pulls 3D XPoint from ~169 kop/s to as low as ~3 kop/s; devices converge",
		0.10)
}

// latencyAtHighInsert runs a 90%-write workload per device and reports
// the requested percentile histograms (Figures 6 and 7).
func (r *Runner) latencyAtHighInsert(id, title, paper string, read bool) *Report {
	rep := &Report{
		ID:      id,
		Title:   title,
		Paper:   paper,
		Columns: []string{"device", "p50(us)", "p90(us)", "p99(us)", "mean(us)"},
	}
	for _, p := range Devices() {
		env := NewEnv(p, r.Scale, nil)
		res, _, err := env.RunKV(func(db *engine.DB) *workload.Result {
			return env.Mixed(db, 4, 0.10, nil)
		})
		if err != nil {
			rep.Notes = "error: " + err.Error()
			return rep
		}
		h := res.WriteLat
		if read {
			h = res.ReadLat
		}
		rep.Rows = append(rep.Rows, []string{
			p.Name, us(h.Percentile(50)), us(h.Percentile(90)), us(h.Percentile(99)), us(h.Mean()),
		})
		r.logf("%s %s: %s", id, p.Name, res)
	}
	return rep
}

// Fig6: read latency at 90% writes.
func (r *Runner) Fig6() *Report {
	return r.latencyAtHighInsert("fig6",
		"READ latency at 90% writes (4 workers)",
		"p90 read: 839 µs SATA flash vs 251 µs 3D XPoint — reads stay much faster on XPoint",
		true)
}

// Fig7: write latency at 90% writes.
func (r *Runner) Fig7() *Report {
	return r.latencyAtHighInsert("fig7",
		"WRITE latency at 90% writes (4 workers)",
		"p90 write: 28 µs SATA flash vs 26 µs 3D XPoint — buffered writes mask the device difference",
		false)
}

// Fig17 measures write tail latency with the WAL enabled vs disabled
// at 90% inserts.
func (r *Runner) Fig17() *Report {
	rep := &Report{
		ID:      "fig17",
		Title:   "WRITE latency vs WAL (90% writes, 4 workers)",
		Paper:   "disabling the WAL cuts p90 write latency from ~54 µs to ~22 µs on 3D XPoint; logging hurts on every device",
		Columns: []string{"device", "wal", "p50(us)", "p90(us)", "p99(us)"},
	}
	for _, p := range Devices() {
		for _, disable := range []bool{false, true} {
			env := NewEnv(p, r.Scale, func(o *engine.Options) { o.DisableWAL = disable })
			res, _, err := env.RunKV(func(db *engine.DB) *workload.Result {
				return env.Mixed(db, 4, 0.10, nil)
			})
			if err != nil {
				rep.Notes = "error: " + err.Error()
				return rep
			}
			mode := "on"
			if disable {
				mode = "off"
			}
			rep.Rows = append(rep.Rows, []string{
				p.Name, mode,
				us(res.WriteLat.Percentile(50)), us(res.WriteLat.Percentile(90)), us(res.WriteLat.Percentile(99)),
			})
			r.logf("fig17 %s wal=%s: %s", p.Name, mode, res)
		}
	}
	return rep
}

// stallFloorEstimate documents Analysis #1's model: the throttled
// application throughput λa = t/(refill+t)·λs.
func stallFloorEstimate(lambdaS float64, t time.Duration) float64 {
	refill := 1024 * time.Microsecond
	return float64(t) / float64(refill+t) * lambdaS
}
