package experiments

import (
	"strings"
	"testing"
	"time"

	"xpointdb/internal/engine"
	"xpointdb/internal/storage"
	"xpointdb/internal/workload"
)

// tinyScale keeps experiment tests fast: the point is plumbing, not
// calibration.
func tinyScale() Scale {
	return Scale{Duration: 1 * time.Second, KeySpace: 4000, MemtableSize: 512 << 10, SizeScale: 1}
}

func TestEnvRunKV(t *testing.T) {
	env := NewEnv(storage.XPoint(), tinyScale(), nil)
	res, m, err := env.RunKV(func(db *engine.DB) *workload.Result {
		return env.Mixed(db, 2, 0.5, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops() == 0 {
		t.Fatal("no ops")
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if m.Flushes.Load() == 0 {
		t.Fatal("preload produced no flushes")
	}
	if env.Kernel.Elapsed() < tinyScale().Duration {
		t.Fatal("virtual time shorter than the workload")
	}
}

func TestRunnerUnknownFigure(t *testing.T) {
	r := &Runner{Scale: tinyScale()}
	if _, err := r.Run("fig2"); err == nil {
		t.Fatal("fig2 is an illustration; must be rejected")
	}
	if _, err := r.Run("nonsense"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllIDsResolve(t *testing.T) {
	// Compile-time-ish check that every listed ID has a handler; use
	// reflection-free dispatch by checking the error path only for a
	// fake id, and trusting Run's switch for the rest. Running all
	// figures here would be far too slow; cmd/figures does that.
	ids := All()
	if len(ids) != 18 {
		t.Fatalf("expected 18 data figures, got %d", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
		if !strings.HasPrefix(id, "fig") {
			t.Fatalf("bad id %s", id)
		}
	}
	for _, illustration := range []string{"fig2", "fig11"} {
		if seen[illustration] {
			t.Fatalf("%s is a schematic illustration, not an experiment", illustration)
		}
	}
}

func TestFig20Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	r := &Runner{Scale: tinyScale()}
	rep, err := r.Run("fig20")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("fig20 rows = %d, want 3 (data-device, nvm, off)", len(rep.Rows))
	}
	if rep.Table() == "" || !strings.Contains(rep.Table(), "fig20") {
		t.Fatal("table rendering broken")
	}
}

func TestFig17Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	r := &Runner{Scale: tinyScale()}
	rep, err := r.Run("fig17")
	if err != nil {
		t.Fatal(err)
	}
	// 3 devices × wal on/off.
	if len(rep.Rows) != 6 {
		t.Fatalf("fig17 rows = %d", len(rep.Rows))
	}
}

func TestReportTableAlignment(t *testing.T) {
	rep := &Report{
		ID:      "figX",
		Title:   "test",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333333", "4"}},
	}
	out := rep.Table()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	// Header and data rows must align on the same column offset.
	hdr := lines[1]
	if !strings.HasPrefix(hdr, "a      ") {
		t.Fatalf("header misaligned: %q", hdr)
	}
}

func TestScaledProfilePlumbing(t *testing.T) {
	sc := tinyScale()
	sc.SizeScale = 8
	env := NewEnv(storage.SATAFlash(), sc, nil)
	want := storage.SATAFlash().ReadBandwidth / 8
	if got := env.Dev.Profile().ReadBandwidth; got != want {
		t.Fatalf("bandwidth not scaled: %d want %d", got, want)
	}
}
