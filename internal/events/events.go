// Package events is the engine's structured event log — the RocksDB
// LOG equivalent, machine-readable. Every significant background and
// control-plane episode (flush, compaction, stall-condition change,
// Algorithm 1 rate step, WAL sync) is emitted as one Event to a
// Listener the DB was opened with.
//
// The paper's whole method is this kind of visibility: its findings
// (throttling stalls, Level-0 probe overhead, WAL sync cost) all came
// from instrumenting RocksDB internals. The event stream makes the
// same diagnosis possible here: a benchmark that regresses leaves a
// JSON-lines trail saying which stall state engaged, at what Level-0
// count, and how the delayed_write_rate stepped down and back up.
//
// Events carry timestamps from the engine clock, so a simulated-time
// run produces a deterministic stream that can be archived next to its
// BENCH_*.json results and diffed across commits.
package events

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind discriminates event payloads.
type Kind string

// The event kinds the engine emits.
const (
	KindFlushBegin      Kind = "flush_begin"
	KindFlushEnd        Kind = "flush_end"
	KindCompactionBegin Kind = "compaction_begin"
	KindCompactionEnd   Kind = "compaction_end"
	// KindCompactionDeferred marks a compaction the space budget pushed
	// back (projected output over MaxAllowedSpace); the job retries once
	// reclamation or a budget raise frees headroom.
	KindCompactionDeferred Kind = "compaction_deferred"
	KindStallChange     Kind = "stall_change"
	KindRateChange      Kind = "rate_change"
	KindWALSync         Kind = "wal_sync"
	KindFSOp            Kind = "fs_op"
	KindBackgroundError Kind = "background_error"
	KindRecoveryBegin   Kind = "error_recovery_begin"
	KindRecoveryAttempt Kind = "error_recovery_attempt"
	KindRecoverySuccess Kind = "error_recovery_success"
	KindRecoveryGiveup  Kind = "error_recovery_giveup"

	KindSuperVersionInstall Kind = "superversion_install"
	KindObsoleteGC          Kind = "obsolete_gc"

	KindScrubBegin      Kind = "scrub_begin"
	KindScrubCorruption Kind = "scrub_corruption"
	KindScrubComplete   Kind = "scrub_complete"
	KindQuarantine      Kind = "corruption_quarantine"
	KindRepair          Kind = "corruption_repair"
	KindDataLoss        Kind = "data_loss"

	KindSlowOp Kind = "slow_op"
)

// Event is the envelope written as one JSON line. Exactly one payload
// pointer is non-nil, matching Kind.
type Event struct {
	// Seq is a strictly increasing sequence number assigned by the
	// sink (not the emitter), so the written stream is totally ordered
	// even under concurrent emission.
	Seq uint64 `json:"seq"`
	// TS is the engine-clock timestamp (virtual time under the
	// simulation kernel, so streams are deterministic).
	TS   time.Time `json:"ts"`
	Kind Kind      `json:"event"`
	// Shard attributes the event to one shard of a sharded store
	// (1-based shard number; 0 = unsharded engine).
	Shard int `json:"shard,omitempty"`

	Flush      *Flush      `json:"flush,omitempty"`
	Compaction *Compaction `json:"compaction,omitempty"`
	Stall      *Stall      `json:"stall,omitempty"`
	Rate       *Rate       `json:"rate,omitempty"`
	WALSync    *WALSync    `json:"wal_sync,omitempty"`
	FSOp       *FSOp       `json:"fs_op,omitempty"`
	BGError    *BGError    `json:"background_error,omitempty"`
	Recovery   *Recovery   `json:"recovery,omitempty"`

	SuperVersion *SuperVersion `json:"superversion,omitempty"`
	ObsoleteGC   *ObsoleteGC   `json:"obsolete_gc,omitempty"`

	Scrub     *Scrub     `json:"scrub,omitempty"`
	Integrity *Integrity `json:"integrity,omitempty"`

	SlowOp *SlowOp `json:"slow_op,omitempty"`
}

// Flush describes a memtable flush (begin and end share the struct;
// end fills in the output and duration fields).
type Flush struct {
	// Reason is what triggered the rotation that queued this
	// memtable: "memtable-full", "manual", or "recovery".
	Reason string `json:"reason,omitempty"`
	// WALNum is the log file covering the flushed memtable.
	WALNum uint64 `json:"wal,omitempty"`
	// Immutables is the queue depth when the flush started.
	Immutables int `json:"immutables,omitempty"`
	// Bytes is the memtable size (begin) / output SST size (end).
	Bytes int64 `json:"bytes,omitempty"`
	// OutputFile is the Level-0 SST file number produced.
	OutputFile uint64 `json:"output,omitempty"`
	// L0Files is the Level-0 file count after the flush committed.
	L0Files int `json:"l0_files,omitempty"`
	// DurationUS is the flush wall (or virtual) time in microseconds.
	DurationUS int64  `json:"duration_us,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Compaction describes one compaction (begin/end pair).
type Compaction struct {
	Level       int `json:"level"`
	OutputLevel int `json:"output_level"`
	// Score is the pick-time urgency: L0 file count over the trigger
	// for Level 0, level bytes over target for deeper levels.
	Score        float64 `json:"score,omitempty"`
	InputFiles   int     `json:"input_files,omitempty"`
	OverlapFiles int     `json:"overlap_files,omitempty"`
	OutputFiles  int     `json:"output_files,omitempty"`
	BytesRead    int64   `json:"bytes_read,omitempty"`
	BytesWritten int64   `json:"bytes_written,omitempty"`
	Entries      int64   `json:"entries,omitempty"`
	// Subcompactions is how many disjoint key-range merge loops the job
	// split into (1 = unsplit; 0 for a trivial move).
	Subcompactions int `json:"subcompactions,omitempty"`
	// TrivialMove marks a job executed as a pure manifest edit: the
	// inputs moved to the output level with zero data I/O.
	TrivialMove bool  `json:"trivial_move,omitempty"`
	DurationUS  int64 `json:"duration_us,omitempty"`
	Error       string `json:"error,omitempty"`
}

// Stall records a stall-condition transition with its cause, the
// inputs to the engine's updateStallState decision.
type Stall struct {
	From string `json:"from"`
	To   string `json:"to"`
	// L0Files and Immutables are the pressure sources at the moment
	// of the transition.
	L0Files    int `json:"l0_files"`
	Immutables int `json:"immutables"`
	// Rate is the controller's delayed_write_rate (bytes/s) at the
	// transition.
	Rate float64 `json:"delayed_write_rate"`
}

// Rate records one Algorithm 1 multiplicative rate step.
type Rate struct {
	OldRate float64 `json:"old_rate"`
	NewRate float64 `json:"new_rate"`
	// Factor is the requested multiplier: Dec (0.8) when compaction
	// is behind, Inc (1.25) otherwise. NewRate may differ from
	// OldRate×Factor at the min/max clamps.
	Factor float64 `json:"factor"`
	Behind bool    `json:"behind"`
}

// WALSync records one write-ahead-log fsync.
type WALSync struct {
	WALNum uint64 `json:"wal"`
	// Bytes is the data made durable by this sync (appended since the
	// previous sync).
	Bytes      int64  `json:"bytes"`
	DurationUS int64  `json:"duration_us"`
	Error      string `json:"error,omitempty"`
}

// FSOp records one filesystem operation observed by a tracing
// filesystem wrapper (package faultfs). The trace is the storage-layer
// ground truth a crash-consistency failure is diagnosed against: which
// writes and syncs actually reached each file, in what order, and
// which had faults injected.
type FSOp struct {
	// Op is the operation name (create, open, write, read_at, sync,
	// close, remove, rename, list, size).
	Op string `json:"op"`
	// Path is the file the operation targeted (old name for rename).
	Path string `json:"path,omitempty"`
	// Bytes is the payload size for write/read_at operations.
	Bytes int `json:"bytes,omitempty"`
	// DurationUS is the operation latency, including injected delay.
	DurationUS int64  `json:"duration_us,omitempty"`
	Error      string `json:"error,omitempty"`
	// Injected marks a fault (error, torn write, or latency) applied
	// by the wrapper rather than the underlying filesystem.
	Injected bool `json:"injected,omitempty"`
}

// BGError records the engine latching a background error: a WAL or
// MANIFEST write/sync failure after which the DB refuses new writes
// instead of acknowledging data it can no longer promise is durable.
type BGError struct {
	// Op names the failed path: wal-append, wal-sync,
	// wal-rotate-sync, manifest-append, manifest-install.
	Op    string `json:"op"`
	Error string `json:"error"`
	// Severity is the classified severity the error latched at
	// (soft, hard, fatal, unrecoverable).
	Severity string `json:"severity,omitempty"`
}

// Recovery records one episode of the engine's background-error
// recovery machinery: begin when a retryable error engages the
// recovery worker, attempt per probe (automatic or manual Resume),
// success when the latch clears, giveup when the retry budget is
// exhausted and the error escalates to fatal.
type Recovery struct {
	// Op is the failed path being recovered from (wal-sync,
	// manifest-append, ...).
	Op string `json:"op"`
	// Severity is the latched error's severity at this point.
	Severity string `json:"severity,omitempty"`
	// Attempt numbers the recovery attempts for this latch episode,
	// starting at 1.
	Attempt int `json:"attempt,omitempty"`
	// Manual marks an operator-driven db.Resume() attempt.
	Manual bool `json:"manual,omitempty"`
	// Error carries the attempt's failure (attempt/giveup events).
	Error string `json:"error,omitempty"`
	// Health is the DB health after the event (success/giveup).
	Health string `json:"health,omitempty"`
}

// SuperVersion records one read-path bundle swap: the engine published
// a new {memtable, immutables, version} snapshot for readers to pin.
type SuperVersion struct {
	// Reason names the install trigger: "open", "rotation", "flush",
	// "version-edit", or "recovery".
	Reason string `json:"reason"`
	// Immutables and L0Files describe the published bundle's shape.
	Immutables int `json:"immutables"`
	L0Files    int `json:"l0_files"`
}

// ObsoleteGC records one zombie sweep: SST files whose last version
// reference died were deleted from disk.
type ObsoleteGC struct {
	Count int      `json:"count"`
	Files []uint64 `json:"files,omitempty"`
}

// Scrub describes one background-scrubber pass over the live file set
// (begin/complete pair). Complete fills in the coverage fields.
type Scrub struct {
	// Pass numbers the full cycles since open, starting at 1.
	Pass int `json:"pass"`
	// Files and Bytes are the pass's coverage: files verified and bytes
	// read (whole-file stream plus per-block re-reads).
	Files int   `json:"files,omitempty"`
	Bytes int64 `json:"bytes,omitempty"`
	// Corruptions counts checksum failures this pass surfaced.
	Corruptions int `json:"corruptions,omitempty"`
}

// Integrity describes one corruption-handling step on a specific file:
// a scrub detection (scrub_corruption), the quarantine mark
// (corruption_quarantine), a successful repair compaction
// (corruption_repair), or a data-loss declaration (data_loss) with the
// affected key range.
type Integrity struct {
	// FileNum is the damaged SST.
	FileNum uint64 `json:"file"`
	// Level is the file's level at the time of the event (-1 when the
	// file is no longer in the live tree).
	Level int `json:"level"`
	// Smallest and Largest bound the file's user-key range — for a
	// data_loss event, the precise range whose data may be gone.
	Smallest string `json:"smallest,omitempty"`
	Largest  string `json:"largest,omitempty"`
	// Detail carries the underlying corruption error.
	Detail string `json:"detail,omitempty"`
}

// SlowOp is a threshold-triggered operation trace: an individual Get
// or Apply whose end-to-end latency exceeded Options.SlowOpThreshold,
// promoted out of the aggregate histograms into the event stream with
// its full PerfContext stage breakdown — the "which stage ate the
// time" answer for exactly the outlier operations an operator chases.
type SlowOp struct {
	// Op is the operation path: "get" or "write".
	Op string `json:"op"`
	// LatencyUS is the operation's end-to-end latency.
	LatencyUS int64 `json:"latency_us"`
	// ThresholdUS is the configured promotion threshold.
	ThresholdUS int64 `json:"threshold_us"`
	// Batch is the write-batch entry count (writes only).
	Batch int `json:"batch,omitempty"`
	// Stages maps stage name → time in microseconds, zero stages
	// omitted. Names match PerfContext's String rendering (throttle,
	// queue, stall, wal_append, wal_sync, mem_insert, mem_probe,
	// imm_probe, l0_probe, deep_probe, block_read).
	Stages map[string]int64 `json:"stages,omitempty"`
}

// Listener receives events. Implementations must be safe for
// concurrent use and must not block on the engine clock (they are
// called from engine paths, sometimes with engine locks held).
type Listener interface {
	Emit(e Event)
}

// Func adapts a function to Listener.
type Func func(Event)

// Emit calls f.
func (f Func) Emit(e Event) { f(e) }

// Nop is a Listener that discards everything — the disabled-cost
// baseline for overhead benchmarks.
type Nop struct{}

// Emit discards e.
func (Nop) Emit(Event) {}

// ---------------------------------------------------------------------

// EventLog is the JSON-lines sink: one event per line, in Seq order.
// Writes are buffered; call Flush (or Close) to drain. Safe for
// concurrent use.
type EventLog struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	c    io.Closer // non-nil if the underlying writer should be closed
	enc  *json.Encoder
	seq  uint64
	errs []string
	err  error
}

// NewEventLog returns an event log writing JSON lines to w. If w is
// also an io.Closer, Close closes it.
func NewEventLog(w io.Writer) *EventLog {
	bw := bufio.NewWriter(w)
	l := &EventLog{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// Emit assigns the next sequence number and writes e as one line.
func (l *EventLog) Emit(e Event) {
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if err := l.enc.Encode(&e); err != nil && l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// Flush drains buffered lines to the underlying writer.
func (l *EventLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.bw.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}

// Err returns the first write or encode error, if any.
func (l *EventLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and closes the underlying writer (when closable).
func (l *EventLog) Close() error {
	err := l.Flush()
	if l.c != nil {
		if cerr := l.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// ---------------------------------------------------------------------

// Buffer is an in-memory Listener for tests and examples.
type Buffer struct {
	mu  sync.Mutex
	seq uint64
	evs []Event
}

// Emit appends e with the next sequence number.
func (b *Buffer) Emit(e Event) {
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	b.evs = append(b.evs, e)
	b.mu.Unlock()
}

// Events returns a copy of everything emitted so far, in Seq order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.evs...)
}

// Len returns the number of events emitted so far.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.evs)
}

// ---------------------------------------------------------------------

// Tee fans every event out to each listener in order.
func Tee(ls ...Listener) Listener {
	return Func(func(e Event) {
		for _, l := range ls {
			l.Emit(e)
		}
	})
}

// Decode reads a JSON-lines event stream back (the inverse of
// EventLog). It stops at EOF and fails on the first malformed line.
func Decode(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var evs []Event
	for i := 0; ; i++ {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return evs, nil
			}
			return evs, fmt.Errorf("events: line %d: %w", i+1, err)
		}
		evs = append(evs, e)
	}
}

// String renders e as a short human-readable line (for examples and
// xpdump, not a stable format).
func (e Event) String() string {
	ts := e.TS.Format("15:04:05.000000")
	switch e.Kind {
	case KindFlushBegin:
		return fmt.Sprintf("%s flush begin: wal=%d %dB queued=%d (%s)",
			ts, e.Flush.WALNum, e.Flush.Bytes, e.Flush.Immutables, e.Flush.Reason)
	case KindFlushEnd:
		if e.Flush.Error != "" {
			return fmt.Sprintf("%s flush FAILED: %s", ts, e.Flush.Error)
		}
		return fmt.Sprintf("%s flush end: sst=%d %dB in %dµs, L0=%d",
			ts, e.Flush.OutputFile, e.Flush.Bytes, e.Flush.DurationUS, e.Flush.L0Files)
	case KindCompactionBegin:
		return fmt.Sprintf("%s compaction begin: L%d→L%d score=%.2f inputs=%d+%d (%dB)",
			ts, e.Compaction.Level, e.Compaction.OutputLevel, e.Compaction.Score,
			e.Compaction.InputFiles, e.Compaction.OverlapFiles, e.Compaction.BytesRead)
	case KindCompactionEnd:
		if e.Compaction.Error != "" {
			return fmt.Sprintf("%s compaction L%d→L%d FAILED: %s",
				ts, e.Compaction.Level, e.Compaction.OutputLevel, e.Compaction.Error)
		}
		if e.Compaction.TrivialMove {
			return fmt.Sprintf("%s compaction end: L%d→L%d trivial move (%d files, no I/O) in %dµs",
				ts, e.Compaction.Level, e.Compaction.OutputLevel,
				e.Compaction.OutputFiles, e.Compaction.DurationUS)
		}
		return fmt.Sprintf("%s compaction end: L%d→L%d read %dB wrote %dB (%d files, %d subs) in %dµs",
			ts, e.Compaction.Level, e.Compaction.OutputLevel, e.Compaction.BytesRead,
			e.Compaction.BytesWritten, e.Compaction.OutputFiles,
			e.Compaction.Subcompactions, e.Compaction.DurationUS)
	case KindCompactionDeferred:
		return fmt.Sprintf("%s compaction deferred: L%d→L%d %dB projected over space budget",
			ts, e.Compaction.Level, e.Compaction.OutputLevel, e.Compaction.BytesRead)
	case KindStallChange:
		return fmt.Sprintf("%s stall %s → %s (L0=%d imm=%d rate=%.1fMB/s)",
			ts, e.Stall.From, e.Stall.To, e.Stall.L0Files, e.Stall.Immutables,
			e.Stall.Rate/(1<<20))
	case KindRateChange:
		dir := "inc"
		if e.Rate.Behind {
			dir = "dec"
		}
		return fmt.Sprintf("%s rate %s ×%.2f: %.1f → %.1f MB/s",
			ts, dir, e.Rate.Factor, e.Rate.OldRate/(1<<20), e.Rate.NewRate/(1<<20))
	case KindWALSync:
		return fmt.Sprintf("%s wal sync: log=%d %dB in %dµs",
			ts, e.WALSync.WALNum, e.WALSync.Bytes, e.WALSync.DurationUS)
	case KindBackgroundError:
		return fmt.Sprintf("%s BACKGROUND ERROR (%s, %s): %s",
			ts, e.BGError.Op, e.BGError.Severity, e.BGError.Error)
	case KindRecoveryBegin:
		return fmt.Sprintf("%s recovery begin: op=%s severity=%s",
			ts, e.Recovery.Op, e.Recovery.Severity)
	case KindRecoveryAttempt:
		mode := "auto"
		if e.Recovery.Manual {
			mode = "manual"
		}
		if e.Recovery.Error != "" {
			return fmt.Sprintf("%s recovery attempt %d (%s, op=%s) FAILED: %s",
				ts, e.Recovery.Attempt, mode, e.Recovery.Op, e.Recovery.Error)
		}
		return fmt.Sprintf("%s recovery attempt %d (%s, op=%s)",
			ts, e.Recovery.Attempt, mode, e.Recovery.Op)
	case KindRecoverySuccess:
		return fmt.Sprintf("%s recovery SUCCESS after attempt %d (op=%s): health=%s",
			ts, e.Recovery.Attempt, e.Recovery.Op, e.Recovery.Health)
	case KindRecoveryGiveup:
		return fmt.Sprintf("%s recovery GIVEUP after attempt %d (op=%s): %s",
			ts, e.Recovery.Attempt, e.Recovery.Op, e.Recovery.Error)
	case KindSuperVersionInstall:
		return fmt.Sprintf("%s superversion install (%s): imm=%d L0=%d",
			ts, e.SuperVersion.Reason, e.SuperVersion.Immutables, e.SuperVersion.L0Files)
	case KindObsoleteGC:
		return fmt.Sprintf("%s obsolete gc: %d zombie SST(s) deleted", ts, e.ObsoleteGC.Count)
	case KindScrubBegin:
		return fmt.Sprintf("%s scrub pass %d begin", ts, e.Scrub.Pass)
	case KindScrubComplete:
		return fmt.Sprintf("%s scrub pass %d complete: %d file(s) %dB verified, %d corruption(s)",
			ts, e.Scrub.Pass, e.Scrub.Files, e.Scrub.Bytes, e.Scrub.Corruptions)
	case KindScrubCorruption:
		return fmt.Sprintf("%s scrub CORRUPTION: sst=%d L%d: %s",
			ts, e.Integrity.FileNum, e.Integrity.Level, e.Integrity.Detail)
	case KindQuarantine:
		return fmt.Sprintf("%s quarantine: sst=%d L%d [%s, %s]: %s",
			ts, e.Integrity.FileNum, e.Integrity.Level, e.Integrity.Smallest,
			e.Integrity.Largest, e.Integrity.Detail)
	case KindRepair:
		return fmt.Sprintf("%s repair: sst=%d L%d re-compacted, no loss",
			ts, e.Integrity.FileNum, e.Integrity.Level)
	case KindDataLoss:
		return fmt.Sprintf("%s DATA LOSS: sst=%d L%d dropped, keys [%s, %s] affected: %s",
			ts, e.Integrity.FileNum, e.Integrity.Level, e.Integrity.Smallest,
			e.Integrity.Largest, e.Integrity.Detail)
	case KindSlowOp:
		var stages strings.Builder
		names := make([]string, 0, len(e.SlowOp.Stages))
		for name := range e.SlowOp.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&stages, " %s=%dµs", name, e.SlowOp.Stages[name])
		}
		return fmt.Sprintf("%s SLOW %s: %dµs (threshold %dµs)%s",
			ts, e.SlowOp.Op, e.SlowOp.LatencyUS, e.SlowOp.ThresholdUS, stages.String())
	}
	return fmt.Sprintf("%s %s", ts, e.Kind)
}
