package events

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// sampleEvents returns one fully populated event of every kind.
func sampleEvents() []Event {
	ts := time.Date(2020, 1, 1, 0, 0, 1, 500, time.UTC)
	return []Event{
		{TS: ts, Kind: KindFlushBegin, Flush: &Flush{
			Reason: "memtable-full", WALNum: 7, Immutables: 2, Bytes: 65536,
		}},
		{TS: ts.Add(time.Millisecond), Kind: KindFlushEnd, Flush: &Flush{
			Reason: "memtable-full", WALNum: 7, OutputFile: 9, Bytes: 60000,
			L0Files: 5, DurationUS: 950,
		}},
		{TS: ts.Add(2 * time.Millisecond), Kind: KindCompactionBegin, Compaction: &Compaction{
			Level: 0, OutputLevel: 1, Score: 1.25, InputFiles: 5, OverlapFiles: 2,
			BytesRead: 300000,
		}},
		{TS: ts.Add(9 * time.Millisecond), Kind: KindCompactionEnd, Compaction: &Compaction{
			Level: 0, OutputLevel: 1, Score: 1.25, InputFiles: 5, OverlapFiles: 2,
			OutputFiles: 3, BytesRead: 300000, BytesWritten: 280000, Entries: 4100,
			DurationUS: 7000,
		}},
		{TS: ts.Add(10 * time.Millisecond), Kind: KindStallChange, Stall: &Stall{
			From: "clear", To: "delayed", L0Files: 20, Immutables: 1, Rate: 16 << 20,
		}},
		{TS: ts.Add(11 * time.Millisecond), Kind: KindRateChange, Rate: &Rate{
			OldRate: 16 << 20, NewRate: 0.8 * (16 << 20), Factor: 0.8, Behind: true,
		}},
		{TS: ts.Add(12 * time.Millisecond), Kind: KindWALSync, WALSync: &WALSync{
			WALNum: 7, Bytes: 4096, DurationUS: 42,
		}},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	want := sampleEvents()
	for _, e := range want {
		l.Emit(e)
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		want[i].Seq = uint64(i + 1) // the sink assigns Seq
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("event %d round-trip mismatch:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

func TestEventLogConcurrentOrdering(t *testing.T) {
	const goroutines = 8
	const perG = 200
	var buf bytes.Buffer
	l := NewEventLog(&buf)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Emit(Event{Kind: KindWALSync, WALSync: &WALSync{WALNum: uint64(g), Bytes: int64(i)}})
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	evs, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(evs) != goroutines*perG {
		t.Fatalf("got %d events, want %d", len(evs), goroutines*perG)
	}
	// The written stream must carry sink-assigned Seq in strictly
	// increasing order — the total order the engine relies on.
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
	// Per-emitter order must be preserved (each goroutine's Bytes
	// values appear ascending).
	next := make([]int64, goroutines)
	for _, e := range evs {
		g := int(e.WALSync.WALNum)
		if e.WALSync.Bytes != next[g] {
			t.Fatalf("goroutine %d events reordered: got %d, want %d", g, e.WALSync.Bytes, next[g])
		}
		next[g]++
	}
}

func TestBufferConcurrent(t *testing.T) {
	var b Buffer
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Emit(Event{Kind: KindFlushBegin, Flush: &Flush{}})
			}
		}()
	}
	wg.Wait()
	evs := b.Events()
	if len(evs) != 400 || b.Len() != 400 {
		t.Fatalf("Buffer holds %d/%d events, want 400", len(evs), b.Len())
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

func TestTee(t *testing.T) {
	var a, b Buffer
	l := Tee(&a, &b)
	l.Emit(Event{Kind: KindWALSync, WALSync: &WALSync{Bytes: 1}})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("Tee delivered %d/%d, want 1/1", a.Len(), b.Len())
	}
}

func TestEventString(t *testing.T) {
	for _, e := range sampleEvents() {
		s := e.String()
		if s == "" {
			t.Fatalf("%s: empty String()", e.Kind)
		}
		// Every rendering embeds a recognizable fragment of its kind.
		frag := strings.SplitN(string(e.Kind), "_", 2)[0]
		if !strings.Contains(s, frag) {
			t.Errorf("%s: String %q does not mention %q", e.Kind, s, frag)
		}
	}
}

func TestDecodeMalformed(t *testing.T) {
	r := strings.NewReader(`{"seq":1,"event":"wal_sync"}` + "\n" + `{bogus`)
	evs, err := Decode(r)
	if err == nil {
		t.Fatal("Decode accepted a malformed line")
	}
	if len(evs) != 1 {
		t.Fatalf("Decode kept %d events before the error, want 1", len(evs))
	}
}

// BenchmarkNopEmit is the disabled-listener overhead floor: an engine
// opened without a listener pays only a nil check, and one opened with
// Nop pays this.
func BenchmarkNopEmit(b *testing.B) {
	var l Listener = Nop{}
	e := Event{Kind: KindWALSync, WALSync: &WALSync{Bytes: 4096}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(e)
	}
}

func BenchmarkEventLogEmit(b *testing.B) {
	l := NewEventLog(discard{})
	e := Event{TS: time.Unix(0, 0), Kind: KindWALSync, WALSync: &WALSync{Bytes: 4096}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(e)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
