package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/engine"
	"xpointdb/internal/events"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

// runEnospc is the full-disk half of the robustness story: the
// transient mode proves the engine heals injected I/O faults; this mode
// proves it survives the disk itself running out. A seeded workload
// runs while the faultfs byte quota is squeezed below current usage at
// random points (every write, create and sync fails with
// vfs.ErrNoSpace) and released some ops later — the out-of-band
// operator "freeing space". The engine must ride the wait-for-space
// recovery path back to Healthy on the SAME handle, and at the end a
// squeeze that is never released must produce a bounded, honest giveup
// that a manual Resume clears once space returns.
//
// The contract checked on every run:
//
//  1. Zero acked-write loss. Every mutation whose Apply returned nil
//     reads back exactly, across any number of squeeze episodes.
//  2. Reads never block on a full disk. Point lookups during an active
//     squeeze must serve the acked state — degradation applies to
//     writes only.
//  3. Self-healing. After a squeeze releases, the DB returns to
//     Healthy with no reopen (a giveup after an unluckily slow scrape
//     is tolerated if a single Resume clears it — same handle).
//  4. Honest failures. A failed Apply may only report the injected
//     quota error, the background-error latch, or an injected fault;
//     and a squeeze that never releases must end in a giveup after the
//     bounded attempt budget — not a hang, not a lie.
func runEnospc(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))

	dev := storage.New(clock.Real{}, storage.Null())
	ffs, err := faultfs.New(vfs.NewMem(dev), rng.Int63())
	if err != nil {
		return fmt.Errorf("torture seed %d: faultfs: %w", cfg.Seed, err)
	}
	geo := pickGeometry(rng)
	buf := &events.Buffer{}
	opts := engine.DefaultOptions(ffs)
	geo.apply(&opts)
	opts.EventListener = buf
	opts.EventSinkQueue = -1
	// Tight backoffs keep space polling fast; the attempt budget is
	// sized so a workload squeeze (released within a few milliseconds
	// of ops) never exhausts it, while the never-released squeeze in
	// the final phase gives up in a few hundred milliseconds.
	opts.RecoveryBaseBackoff = time.Millisecond
	opts.RecoveryMaxBackoff = 5 * time.Millisecond
	opts.MaxRecoveryAttempts = 60
	if rng.Intn(2) == 0 {
		// Half the seeds also run the space-budget accounting (ladder
		// thresholds sized well above what the workload writes, so the
		// quota squeeze — not the ladder — is what bites; the ladder's
		// own behavior has dedicated unit tests).
		opts.MaxAllowedSpace = 512 << 20
	}
	db, err := engine.Open(opts)
	if err != nil {
		return fmt.Errorf("torture seed %d: open: %w", cfg.Seed, err)
	}
	defer db.Close()

	// Schedule 1-3 squeeze episodes at random op indices. Each squeezes
	// the quota below the usage at that moment — every byte of forward
	// progress needs space that is not there — and RELEASES ON A TIMER,
	// not an op index: a squeeze can block the workload itself (a full
	// immutable queue parks the write leader while the flush soft-fails
	// in place), so an op-counted release would deadlock the harness.
	// The timer is the out-of-band operator freeing space.
	squeezeAt := map[int]bool{}
	n := 1 + rng.Intn(3)
	span := cfg.Ops / (n + 1)
	for e := 0; e < n; e++ {
		squeezeAt[e*span+20+rng.Intn(span/2)] = true
	}

	key := func() string { return fmt.Sprintf("k%03d", rng.Intn(cfg.Keys)) }
	live := map[string]string{}
	failed := 0
	squeezed := false
	var released chan struct{}
	for i := 0; i < cfg.Ops; i++ {
		if squeezed {
			select {
			case <-released:
				squeezed = false
				cfg.Logf("op %d: quota released", i)
				// The latch (if any) must clear on this same handle. A
				// giveup can slip in when the squeeze outlasted the
				// attempt budget; a single Resume must then finish the
				// job.
				if err := waitHealthyOrResume(cfg, db, 15*time.Second); err != nil {
					return err
				}
			default:
			}
		}
		if squeezeAt[i] && !squeezed {
			used := ffs.DiskUsed()
			q := used - 1
			if q < 1 {
				q = 1
			}
			ffs.SetQuota(q)
			squeezed = true
			hold := time.Duration(2+rng.Intn(30)) * time.Millisecond
			ch := make(chan struct{})
			released = ch
			time.AfterFunc(hold, func() {
				ffs.SetQuota(-1)
				close(ch)
			})
			cfg.Logf("op %d: quota squeezed to %d B (used %d B) for %v", i, q, used, hold)
		}

		var b batch.Batch
		sync := rng.Float64() < 0.25
		b.Put([]byte(cutKey), []byte(strconv.Itoa(i)))
		muts := make([]mut, 0, 4)
		for m, nm := 0, 1+rng.Intn(4); m < nm; m++ {
			k := key()
			if rng.Float64() < 0.2 {
				b.Delete([]byte(k))
				muts = append(muts, mut{key: k, del: true})
			} else {
				v := fmt.Sprintf("v%06d-%s-%04d", i, k, rng.Intn(10000))
				b.Put([]byte(k), []byte(v))
				muts = append(muts, mut{key: k, val: v})
			}
		}
		// Reads must serve the acked state at all times — sampled much
		// harder during a squeeze (and after failed writes), where a
		// blocking or erroring read would be the bug this contract
		// exists to catch.
		spotRead := func() error {
			p := 0.02
			if squeezed {
				p = 0.25
			}
			if rng.Float64() >= p {
				return nil
			}
			k := key()
			v, gerr := db.Get([]byte(k))
			want, ok := live[k]
			switch {
			case !ok && !errors.Is(gerr, engine.ErrNotFound):
				return violation(cfg, "enospc", "Get(%q) = (%q, %v), want ErrNotFound", k, v, gerr)
			case ok && gerr != nil:
				return violation(cfg, "enospc", "Get(%q) during squeeze=%v failed: %v", k, squeezed, gerr)
			case ok && string(v) != want:
				return violation(cfg, "enospc", "Get(%q) = %q, want %q", k, v, want)
			}
			return nil
		}

		if err := db.Apply(&b, sync); err != nil {
			if !errors.Is(err, vfs.ErrNoSpace) && !errors.Is(err, engine.ErrBackground) &&
				!errors.Is(err, faultfs.ErrInjected) {
				return violation(cfg, "enospc", "Apply(op %d) failed with a foreign error: %v", i, err)
			}
			failed++
			if err := spotRead(); err != nil {
				return err
			}
			// Unacknowledged; the scheduled release resolves the latch.
			// Back off like a real client so the squeeze window covers a
			// bounded number of failed ops instead of the whole workload.
			time.Sleep(200 * time.Microsecond)
			continue
		}
		live[cutKey] = strconv.Itoa(i)
		for _, m := range muts {
			if m.del {
				delete(live, m.key)
			} else {
				live[m.key] = m.val
			}
		}
		if err := spotRead(); err != nil {
			return err
		}
	}

	// Workload done. Wait out a still-pending release timer (its late
	// fire must not sabotage the never-released phase below), then
	// settle and verify the full acked state on the same handle.
	if squeezed {
		<-released
	}
	ffs.SetQuota(-1)
	if err := waitHealthyOrResume(cfg, db, 15*time.Second); err != nil {
		return err
	}
	m := db.Metrics()
	cfg.Logf("enospc: %d/%d ops failed; %d ENOSPC, %d space waits, %d space recoveries, %d deferrals; recovery %d attempts %d successes %d giveups",
		failed, cfg.Ops, m.EnospcErrors.Load(), m.SpaceWaits.Load(),
		m.SpaceRecoveries.Load(), m.SpaceDeferrals.Load(),
		m.RecoveryAttempts.Load(), m.RecoverySuccesses.Load(), m.RecoveryGiveups.Load())
	if m.EnospcErrors.Load() == 0 {
		return violation(cfg, "enospc", "quota squeezes fired but no ENOSPC error was ever recorded")
	}
	if err := verify(cfg, "enospc", db, live, rng, cfg.Keys); err != nil {
		return err
	}

	// --------------------------------------------------------------
	// Final phase: squeeze and never release. The engine must not hang:
	// wait-for-space polls burn the bounded attempt budget and recovery
	// gives up honestly. Then space returns, and one manual Resume must
	// finish the recovery on this same handle.

	giveupsBefore := m.RecoveryGiveups.Load()
	used := ffs.DiskUsed()
	q := used - 1
	if q < 1 {
		q = 1
	}
	ffs.SetQuota(q)
	// Force a hard latch even if the workload left nothing in flight:
	// a synced write must hit the quota on the WAL.
	var poison batch.Batch
	poison.Put([]byte("@poison"), []byte("x"))
	if err := db.Apply(&poison, true); err == nil {
		return violation(cfg, "enospc", "synced Apply succeeded under a zero-headroom quota")
	}
	deadline := time.Now().Add(30 * time.Second)
	for m.RecoveryGiveups.Load() == giveupsBefore && time.Now().Before(deadline) {
		if db.Health() == engine.Healthy {
			// The obsolete-file scrape freed enough slack for that
			// round's repair to land. The disk is supposed to stay
			// full: tighten to the new usage and re-poison.
			u := ffs.DiskUsed()
			if u <= 1 {
				u = 2
			}
			ffs.SetQuota(u - 1)
			_ = db.Apply(&poison, true)
		}
		time.Sleep(time.Millisecond)
	}
	if m.RecoveryGiveups.Load() == giveupsBefore {
		return violation(cfg, "enospc",
			"quota never released: recovery neither gave up nor succeeded within 30s (attempts %d, health %v)",
			m.RecoveryAttempts.Load(), db.Health())
	}
	if db.Health() == engine.Healthy {
		return violation(cfg, "enospc", "DB reports Healthy while the disk is still full after a giveup")
	}
	if err := db.Apply(&poison, true); err == nil {
		return violation(cfg, "enospc", "Apply succeeded after giveup with the disk still full")
	} else if !errors.Is(err, engine.ErrBackground) && !errors.Is(err, vfs.ErrNoSpace) {
		return violation(cfg, "enospc", "post-giveup Apply failed with a foreign error: %v", err)
	}
	// Reads still serve while given up.
	for k, want := range live {
		v, gerr := db.Get([]byte(k))
		if gerr != nil || string(v) != want {
			return violation(cfg, "enospc", "post-giveup Get(%q) = (%q, %v), want %q", k, v, gerr, want)
		}
		break
	}

	// Space returns; automatic recovery is spent, so the operator's
	// Resume must clear the latch on this handle.
	ffs.SetQuota(-1)
	if err := db.Resume(); err != nil {
		return violation(cfg, "enospc", "Resume after space release failed: %v", err)
	}
	if err := waitTransientHealthy(cfg, db, 15*time.Second); err != nil {
		return err
	}
	if m.SpaceWaits.Load() == 0 {
		return violation(cfg, "enospc", "a never-released squeeze ran but no failed space probe was recorded")
	}
	if m.SpaceRecoveries.Load() == 0 {
		return violation(cfg, "enospc", "recovered from disk-full latches but SpaceRecoveries is 0")
	}

	// The healed handle must make durable progress — still no reopen.
	for i := 0; i < cfg.PostRecoveryOps; i++ {
		k := key()
		v := fmt.Sprintf("post-space-%d-%d", cfg.Seed, i)
		var b batch.Batch
		b.Put([]byte(k), []byte(v))
		if err := db.Apply(&b, true); err != nil {
			return violation(cfg, "enospc", "healed DB rejected write %d: %v", i, err)
		}
		live[k] = v
	}
	// The poison applies both failed before reaching the memtable, so
	// "@poison" must be absent — the full-scan verify below treats it
	// as a phantom if a rejected write leaked in anyway.
	if err := db.Flush(); err != nil {
		return violation(cfg, "enospc", "healed DB flush failed: %v", err)
	}
	if err := verify(cfg, "enospc", db, live, rng, cfg.Keys); err != nil {
		return err
	}
	if err := db.Close(); err != nil {
		return violation(cfg, "enospc", "close failed: %v", err)
	}
	return nil
}

// waitHealthyOrResume waits for Healthy like waitTransientHealthy, but
// tolerates one automatic-recovery giveup by issuing a single manual
// Resume — the operator action the giveup exists to hand control to.
// Space is already released when this is called, so either path must
// converge.
func waitHealthyOrResume(cfg Config, db *engine.DB, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	resumed := false
	for time.Now().Before(deadline) {
		if db.Health() == engine.Healthy {
			return nil
		}
		if !resumed && db.Metrics().RecoveryGiveups.Load() > 0 {
			resumed = true
			if err := db.Resume(); err != nil {
				return violation(cfg, "enospc", "Resume after release failed: %v", err)
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
	return violation(cfg, "enospc",
		"DB did not return to Healthy within %v of the quota release: health=%v bgErr=%v",
		timeout, db.Health(), db.BackgroundError())
}
