package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/engine"
	"xpointdb/internal/events"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/sstable"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

// runBitrot is the silent-corruption torture mode: a seeded clean
// workload builds an LSM tree, then bitrot arms on SST reads — either
// transient (a few bitrotted device reads, then clean: the disk is
// fine, a bus/firmware hiccup flipped bits in flight) or persistent
// (every read of one chosen file flips a bit: the media is dying).
// The workload continues under rot, and the integrity machinery must
// uphold one absolute and one conditional contract:
//
//  1. NO SILENT WRONG READS, ever. Every Get either returns the
//     oracle's value, a checksum/background error, or — only for keys
//     inside a range a data_loss event has explicitly declared lost —
//     an honest miss. A read returning fabricated bytes outside a
//     declared-lost range fails the run instantly.
//  2. Detection obliges resolution. If any corruption latched a
//     quarantine, recovery must end in a repair or an explicit
//     data_loss declaration — never a giveup — and the DB must return
//     to Healthy on the same handle and accept writes again.
func runBitrot(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))

	dev := storage.New(clock.Real{}, storage.Null())
	ffs, err := faultfs.New(vfs.NewMem(dev), rng.Int63())
	if err != nil {
		return fmt.Errorf("torture seed %d: faultfs: %w", cfg.Seed, err)
	}
	geo := pickGeometry(rng)
	buf := &events.Buffer{}
	opts := engine.DefaultOptions(ffs)
	geo.apply(&opts)
	opts.EventListener = buf
	// Synchronous event delivery: the oracles below assert on the
	// buffer mid-run and must observe each event before the next op.
	opts.EventSinkQueue = -1
	opts.RecoveryBaseBackoff = time.Millisecond
	opts.RecoveryMaxBackoff = 10 * time.Millisecond
	opts.MaxRecoveryAttempts = 100
	opts.ParanoidFileChecks = rng.Intn(2) == 0
	opts.ScrubBytesPerSec = 1 << 30 // unpaced: let the scrubber race the reads
	db, err := engine.Open(opts)
	if err != nil {
		return fmt.Errorf("torture seed %d: open: %w", cfg.Seed, err)
	}
	defer db.Close()

	// ----------------------------------------------------------------
	// Phase 1: clean seeded workload; flushes guarantee live SSTs.

	key := func() string { return fmt.Sprintf("k%03d", rng.Intn(cfg.Keys)) }
	live := map[string]string{}
	applyOp := func(i int) error {
		var b batch.Batch
		sync := rng.Float64() < 0.25
		b.Put([]byte(cutKey), []byte(strconv.Itoa(i)))
		muts := make([]mut, 0, 4)
		for m, n := 0, 1+rng.Intn(4); m < n; m++ {
			k := key()
			if rng.Float64() < 0.2 {
				b.Delete([]byte(k))
				muts = append(muts, mut{key: k, del: true})
			} else {
				v := fmt.Sprintf("v%06d-%s-%04d", i, k, rng.Intn(10000))
				b.Put([]byte(k), []byte(v))
				muts = append(muts, mut{key: k, val: v})
			}
		}
		if err := db.Apply(&b, sync); err != nil {
			return err
		}
		live[cutKey] = strconv.Itoa(i)
		for _, m := range muts {
			if m.del {
				delete(live, m.key)
			} else {
				live[m.key] = m.val
			}
		}
		return nil
	}

	cleanOps := cfg.Ops / 2
	for i := 0; i < cleanOps; i++ {
		if err := applyOp(i); err != nil {
			return violation(cfg, "bitrot", "clean-phase Apply(op %d) failed: %v", i, err)
		}
		if i == cleanOps/2 || i == cleanOps-1 {
			if err := db.Flush(); err != nil {
				return violation(cfg, "bitrot", "clean-phase flush failed: %v", err)
			}
		}
	}

	// ----------------------------------------------------------------
	// Phase 2: arm rot.

	mode := "transient"
	if rng.Float64() < 0.3 {
		// Persistent: one file's media is dying — every read of it
		// flips a bit until the file is repaired away or declared lost.
		names, lerr := ffs.List()
		var ssts []string
		for _, n := range names {
			if strings.HasSuffix(n, ".sst") {
				ssts = append(ssts, n)
			}
		}
		if lerr == nil && len(ssts) > 0 {
			victim := ssts[rng.Intn(len(ssts))]
			ffs.AddRule(faultfs.Rule{
				Ops: []faultfs.Op{faultfs.OpReadAt}, Path: victim,
				Fault: faultfs.Fault{Bitrot: true},
			})
			mode = "persistent"
			cfg.Logf("bitrot: persistent rot armed on %s", victim)
		}
	}
	if mode == "transient" {
		k := 1 + rng.Int63n(3)
		ffs.AddRule(faultfs.Rule{
			Ops: []faultfs.Op{faultfs.OpReadAt}, Path: "*.sst", FailNTimes: k,
			Fault: faultfs.Fault{Bitrot: true},
		})
		cfg.Logf("bitrot: transient rot armed (FailNTimes=%d)", k)
	}

	// lost tracks keys inside a declared data_loss range: the one case
	// where a non-oracle read result is honest. A later successful
	// write to a lost key makes it strict again.
	lost := map[string]bool{}
	evCursor := 0
	absorbLoss := func() {
		evs := buf.Events()
		for ; evCursor < len(evs); evCursor++ {
			e := evs[evCursor]
			if e.Kind != events.KindDataLoss || e.Integrity == nil {
				continue
			}
			mark := func(k string) {
				if k >= e.Integrity.Smallest && k <= e.Integrity.Largest {
					lost[k] = true
				}
			}
			mark(cutKey)
			for i := 0; i < cfg.Keys; i++ {
				mark(fmt.Sprintf("k%03d", i))
			}
		}
	}
	tolerable := func(err error) bool {
		return sstable.IsCorruption(err) || errors.Is(err, faultfs.ErrInjected) ||
			errors.Is(err, engine.ErrBackground)
	}

	// Continue the workload under rot, read-heavily.
	for i := cleanOps; i < cfg.Ops; i++ {
		if err := applyOp(i); err != nil {
			if !tolerable(err) {
				return violation(cfg, "bitrot", "Apply(op %d) failed with a foreign error: %v", i, err)
			}
			if err := waitTransientHealthy(cfg, db, 15*time.Second); err != nil {
				return err
			}
			continue
		}
		// An acked write makes its keys strict again even if a
		// data_loss range covered them.
		absorbLoss()

		if rng.Float64() < 0.30 {
			k := key()
			v, gerr := db.Get([]byte(k))
			want, ok := live[k]
			switch {
			case gerr != nil && tolerable(gerr):
				// Honest detection; recovery resolves it below.
			case lost[k]:
				// Declared lost: an honest miss or a resurfaced older
				// version are both acceptable — a crash is not.
			case !ok && !errors.Is(gerr, engine.ErrNotFound):
				return violation(cfg, "bitrot", "Get(%q) = (%q, %v), want ErrNotFound", k, v, gerr)
			case ok && gerr != nil:
				return violation(cfg, "bitrot", "Get(%q) failed: %v", k, gerr)
			case ok && string(v) != want:
				return violation(cfg, "bitrot", "SILENT WRONG READ: Get(%q) = %q, want %q", k, v, want)
			}
		}
		if rng.Float64() < 0.01 {
			if ferr := db.Flush(); ferr != nil {
				if !tolerable(ferr) {
					return violation(cfg, "bitrot", "flush failed with a foreign error: %v", ferr)
				}
				if err := waitTransientHealthy(cfg, db, 15*time.Second); err != nil {
					return err
				}
			}
		}
	}

	// ----------------------------------------------------------------
	// Phase 3: settle, then verify the contract.

	if err := waitTransientHealthy(cfg, db, 15*time.Second); err != nil {
		return err
	}
	absorbLoss()
	m := db.Metrics()
	cfg.Logf("bitrot(%s): detected=%d quarantined=%d repaired=%d dataloss=%d lostkeys=%d",
		mode, m.CorruptionsDetected.Load(), m.FilesQuarantined.Load(),
		m.CorruptionsRepaired.Load(), m.DataLossEvents.Load(), len(lost))

	if m.RecoveryGiveups.Load() > 0 {
		return violation(cfg, "bitrot", "recovery gave up on corruption (%d giveups)", m.RecoveryGiveups.Load())
	}
	if q := m.FilesQuarantined.Load(); q > 0 {
		if m.CorruptionsRepaired.Load()+m.DataLossEvents.Load() == 0 {
			return violation(cfg, "bitrot",
				"%d files quarantined but neither repaired nor declared lost", q)
		}
		if err := requireRecoveryEvents(cfg, buf); err != nil {
			return err
		}
	}
	if err := verifyBitrot(cfg, db, live, lost); err != nil {
		return err
	}

	// The healed handle must still make durable, verifiable progress.
	for i := 0; i < cfg.PostRecoveryOps; i++ {
		k := key()
		v := fmt.Sprintf("post-rot-%d-%d", cfg.Seed, i)
		var b batch.Batch
		b.Put([]byte(k), []byte(v))
		if err := db.Apply(&b, true); err != nil {
			return violation(cfg, "bitrot", "healed DB rejected write %d: %v", i, err)
		}
		live[k] = v
		delete(lost, k)
	}
	if err := db.Flush(); err != nil {
		return violation(cfg, "bitrot", "healed DB flush failed: %v", err)
	}
	if err := verifyBitrot(cfg, db, live, lost); err != nil {
		return err
	}
	if err := db.Close(); err != nil {
		return violation(cfg, "bitrot", "close failed: %v", err)
	}
	return nil
}

// verifyBitrot checks the full oracle like verify, but keys inside a
// declared data_loss range (and not re-written since) tolerate honest
// misses and resurfaced older versions — bounded, NAMED loss. Wrong
// bytes for any strict key remain an instant violation.
func verifyBitrot(cfg Config, db *engine.DB, model map[string]string, lost map[string]bool) error {
	for k, want := range model {
		if lost[k] {
			continue
		}
		v, err := db.Get([]byte(k))
		if err != nil {
			return violation(cfg, "bitrot", "Get(%q) = %v, want %q\n%s", k, err, want, db.DebugLayout())
		}
		if string(v) != want {
			return violation(cfg, "bitrot", "SILENT WRONG READ: Get(%q) = %q, want %q", k, v, want)
		}
	}
	// Absence checks: a key the oracle lacks may only exist if a
	// data_loss range covers it (an older version resurfacing from a
	// deeper level is honest once the loss is declared).
	for i := 0; i < cfg.Keys; i++ {
		k := fmt.Sprintf("k%03d", i)
		if _, ok := model[k]; ok || lost[k] {
			continue
		}
		if v, err := db.Get([]byte(k)); !errors.Is(err, engine.ErrNotFound) {
			return violation(cfg, "bitrot", "phantom key %q = (%q, %v), want ErrNotFound", k, v, err)
		}
	}

	it, err := db.NewIter()
	if err != nil {
		return violation(cfg, "bitrot", "NewIter: %v", err)
	}
	defer it.Close()
	seen := map[string]bool{}
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := string(it.Key())
		seen[k] = true
		if lost[k] {
			continue
		}
		want, ok := model[k]
		if !ok {
			return violation(cfg, "bitrot", "scan found phantom key %q", k)
		}
		if string(it.Value()) != want {
			return violation(cfg, "bitrot", "SILENT WRONG SCAN: %q = %q, want %q", k, it.Value(), want)
		}
	}
	if err := it.Error(); err != nil {
		return violation(cfg, "bitrot", "scan error: %v", err)
	}
	for k := range model {
		if !seen[k] && !lost[k] {
			return violation(cfg, "bitrot", "scan missed key %q", k)
		}
	}
	return nil
}
