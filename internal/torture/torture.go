// Package torture is the crash-consistency torture harness: it runs a
// seeded random workload against the engine on a fault-injecting
// filesystem (internal/faultfs), crashes the filesystem at a random
// operation boundary — optionally keeping a partial or bit-flipped
// unsynced tail — reopens the database from the crash image, and
// verifies the durability contract against an in-memory oracle.
//
// The contract checked on every run:
//
//  1. Prefix durability. Every workload batch writes a monotone marker
//     key ("@cut" = the op index), so the recovered marker identifies
//     the exact surviving prefix c of the submitted op sequence. The
//     recovered keyspace must equal the oracle's replay of ops[0..c] —
//     no phantom, lost, or corrupted values.
//  2. Sync floor. c must cover every operation whose WAL sync was
//     acknowledged before the crash point (nothing acknowledged-synced
//     may be lost).
//  3. Crash ceiling. c must not exceed the last operation submitted
//     before the crash snapshot froze (nothing from the future).
//  4. Recovery must succeed — torn WAL/MANIFEST tails truncate
//     cleanly — and the reopened DB must accept writes, survive a
//     second reopen, and still verify (MANIFEST roll-forward works).
//
// Given the same seed, every workload, fault, and crash-materialization
// decision is reproduced exactly. The crash point is an exact
// filesystem-operation count; which engine state that op count lands
// on can still vary with goroutine scheduling, so a failing seed is a
// strong — not bit-perfect — reproducer. The contract above is
// interleaving-independent, so any run that fails it is a real bug.
package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/engine"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// cutKey is the monotone marker included in every workload batch.
const cutKey = "@cut"

// Config parameterizes one torture iteration.
type Config struct {
	// Seed drives every random decision (workload, faults, crash
	// point, surviving-tail selection).
	Seed int64
	// Ops is the workload length (default 1200).
	Ops int
	// Keys is the key-universe size (default 240).
	Keys int
	// PostCrashOps continues the workload this many operations past
	// the crash point (default 60), exercising the window where the
	// live DB has diverged from the frozen disk image.
	PostCrashOps int
	// PostRecoveryOps writes after recovery to prove the reopened DB
	// is healthy and its MANIFEST progress survives another reopen
	// (default 20).
	PostRecoveryOps int
	// Transient switches Run to the transient-fault mode: instead of
	// crashing and reopening, every fault heals (FailNTimes/HealAfter
	// rules) and the engine's recovery worker must return the SAME
	// handle to Healthy with zero acked-write loss. See runTransient.
	Transient bool
	// Shards, when > 1, switches Run to the sharded mode: the same
	// crash/recovery machinery pointed at a range-sharded store, with
	// per-shard cut markers and the cross-shard atomic-batch (2PC)
	// contract checked on top. See runSharded in sharded.go.
	Shards int
	// Bitrot switches Run to the silent-corruption mode: seeded bit
	// flips on SST reads, and the integrity machinery (block checksums,
	// scrub, quarantine & repair) must guarantee no silent wrong read
	// ever — every corruption is detected and either repaired or
	// declared as bounded data loss. See runBitrot.
	Bitrot bool
	// Enospc switches Run to the full-disk mode: the faultfs byte
	// quota is squeezed below usage and later released while the
	// workload runs, and the wait-for-space recovery must heal the
	// SAME handle with zero acked-write loss — plus a never-released
	// squeeze must end in a bounded honest giveup that a manual Resume
	// clears once space returns. See runEnospc.
	Enospc bool
	// Logf, when set, receives verbose progress (e.g. t.Logf).
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Ops <= 0 {
		c.Ops = 1200
	}
	if c.Keys <= 0 {
		c.Keys = 240
	}
	if c.PostCrashOps <= 0 {
		c.PostCrashOps = 60
	}
	if c.PostRecoveryOps <= 0 {
		c.PostRecoveryOps = 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// mut is one key mutation inside a workload op.
type mut struct {
	key, val string
	del      bool
}

// op is one submitted workload batch: its mutations plus the cut
// marker value identifying it.
type op struct {
	muts []mut
	sync bool
}

// geometry is the seeded engine configuration of one run.
type geometry struct {
	memtableSize   int64
	targetFileSize int64
	baseLevelBytes int64
	l0Trigger      int
	pipelined      bool
	blockSize      int
	maxSub         int
}

func pickGeometry(rng *rand.Rand) geometry {
	return geometry{
		// Small tables force frequent rotation, flush, and compaction,
		// so crashes land inside interesting machinery.
		memtableSize:   int64(4<<10) + rng.Int63n(28<<10),
		targetFileSize: int64(8<<10) + rng.Int63n(24<<10),
		baseLevelBytes: int64(32<<10) + rng.Int63n(64<<10),
		l0Trigger:      2 + rng.Intn(3),
		pipelined:      rng.Intn(2) == 0,
		blockSize:      1<<10 + rng.Intn(3)<<10,
		// Crashes must land inside multi-range atomic installs too, so
		// the sub-compaction fan-out varies across seeds.
		maxSub: 1 + rng.Intn(4),
	}
}

func (g geometry) apply(o *engine.Options) {
	o.MemtableSize = g.memtableSize
	o.TargetFileSize = g.targetFileSize
	o.BaseLevelBytes = g.baseLevelBytes
	o.L0CompactionTrigger = g.l0Trigger
	o.L0SlowdownTrigger = g.l0Trigger + 6
	o.L0StopTrigger = g.l0Trigger + 12
	o.PipelinedWrites = g.pipelined
	o.BlockSize = g.blockSize
	o.MaxSubcompactions = g.maxSub
	o.ThrottleMode = throttle.ModeNone
	o.SyncWAL = false // per-op sync decided by the workload
}

// violation renders a durability-contract failure with full repro
// context.
func violation(cfg Config, mode string, format string, args ...interface{}) error {
	return fmt.Errorf("torture seed %d (crash mode %s): DURABILITY VIOLATION: %s",
		cfg.Seed, mode, fmt.Sprintf(format, args...))
}

// Run executes one seeded crash/recovery iteration and returns nil if
// the durability contract held, or a detailed violation error.
func Run(cfg Config) error {
	cfg = cfg.withDefaults()
	if cfg.Transient {
		return runTransient(cfg)
	}
	if cfg.Bitrot {
		return runBitrot(cfg)
	}
	if cfg.Enospc {
		return runEnospc(cfg)
	}
	if cfg.Shards > 1 {
		return runSharded(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	dev := storage.New(clock.Real{}, storage.Null())
	ffs, err := faultfs.New(vfs.NewMem(dev), rng.Int63())
	if err != nil {
		return fmt.Errorf("torture seed %d: faultfs: %w", cfg.Seed, err)
	}
	geo := pickGeometry(rng)
	opts := engine.DefaultOptions(ffs)
	geo.apply(&opts)
	db, err := engine.Open(opts)
	if err != nil {
		return fmt.Errorf("torture seed %d: initial open: %w", cfg.Seed, err)
	}

	// Seeded fault rules, armed only after the clean open. Errors they
	// surface through Apply/Flush end the workload early; the
	// background-error latch must then keep the engine honest.
	if rng.Float64() < 0.25 {
		ffs.AddRule(faultfs.Rule{
			Ops: []faultfs.Op{faultfs.OpSync}, Path: "*.log",
			After: rng.Int63n(40), Count: 1,
		})
		cfg.Logf("fault: one WAL sync failure armed")
	}
	if rng.Float64() < 0.15 {
		ffs.AddRule(faultfs.Rule{
			Ops: []faultfs.Op{faultfs.OpCreate}, Path: "*.sst",
			Prob: 0.1, Count: 2,
		})
		cfg.Logf("fault: transient SST create failures armed")
	}
	if rng.Float64() < 0.10 {
		ffs.AddRule(faultfs.Rule{
			Ops: []faultfs.Op{faultfs.OpSync}, Path: "MANIFEST-*",
			After: rng.Int63n(8), Count: 1,
		})
		cfg.Logf("fault: one MANIFEST sync failure armed")
	}
	if rng.Float64() < 0.15 {
		ffs.AddRule(faultfs.Rule{
			Ops:  []faultfs.Op{faultfs.OpWrite, faultfs.OpSync},
			Prob: 0.05, Count: 20,
			Fault: faultfs.Fault{Latency: 200 * time.Microsecond},
		})
		cfg.Logf("fault: write/sync latency armed")
	}

	// Crash at a random filesystem-operation boundary somewhere inside
	// the workload.
	ffs.ArmCrash(50 + rng.Int63n(3000))

	// --------------------------------------------------------------
	// Phase 1: seeded workload against the live oracle.

	key := func() string { return fmt.Sprintf("k%03d", rng.Intn(cfg.Keys)) }
	ops := make([]op, 0, cfg.Ops)
	live := map[string]string{} // oracle of acknowledged state
	lastAcked := -1             // highest op with an acked pre-crash sync
	maxPossible := -1           // last op submitted before the crash froze
	var stopErr error
	postCrash := 0

	for i := 0; i < cfg.Ops; i++ {
		var b batch.Batch
		o := op{sync: rng.Float64() < 0.25}
		b.Put([]byte(cutKey), []byte(strconv.Itoa(i)))
		nmut := 1 + rng.Intn(4)
		for m := 0; m < nmut; m++ {
			k := key()
			if rng.Float64() < 0.2 {
				b.Delete([]byte(k))
				o.muts = append(o.muts, mut{key: k, del: true})
			} else {
				v := fmt.Sprintf("v%06d-%s-%04d", i, k, rng.Intn(10000))
				b.Put([]byte(k), []byte(v))
				o.muts = append(o.muts, mut{key: k, val: v})
			}
		}
		ops = append(ops, o)

		// An op can reach the crash image only if the snapshot was not
		// yet frozen when its Apply began — even one whose Apply then
		// fails (e.g. a failed sync after the record hit the file).
		if !ffs.Crashed() {
			maxPossible = i
		}
		err := db.Apply(&b, o.sync)
		if err != nil {
			// First engine-visible failure: stop submitting. The op's
			// fate is resolved by the recovered cut marker.
			stopErr = err
			break
		}
		for _, m := range o.muts {
			if m.del {
				delete(live, m.key)
			} else {
				live[m.key] = m.val
			}
		}
		if o.sync && !ffs.Crashed() {
			// Conservative: only count the ack if the crash snapshot
			// was not yet frozen when the sync returned.
			lastAcked = i
		}

		// Live spot checks against the oracle.
		if rng.Float64() < 0.02 {
			k := key()
			v, gerr := db.Get([]byte(k))
			want, ok := live[k]
			switch {
			case !ok && !errors.Is(gerr, engine.ErrNotFound):
				return violation(cfg, "live", "Get(%q) pre-crash = (%q, %v), want ErrNotFound", k, v, gerr)
			case ok && gerr != nil:
				return violation(cfg, "live", "Get(%q) pre-crash failed: %v", k, gerr)
			case ok && string(v) != want:
				return violation(cfg, "live", "Get(%q) pre-crash = %q, want %q", k, v, want)
			}
		}
		if rng.Float64() < 0.01 {
			if ferr := db.Flush(); ferr != nil {
				stopErr = ferr
				break
			}
		}
		if ffs.Crashed() {
			postCrash++
			if postCrash > cfg.PostCrashOps {
				break
			}
		}
	}

	// The crash may never have triggered (short runs, early faults):
	// take the snapshot at the current boundary instead.
	snap := ffs.ForceCrash()
	submitted := len(ops)
	if stopErr != nil {
		cfg.Logf("workload stopped at op %d/%d: %v", submitted, cfg.Ops, stopErr)
	}
	_ = db.Close() // may fail under latched background errors; the disk image is the snapshot

	// --------------------------------------------------------------
	// Phase 2: materialize the crash image and recover.

	modes := []struct {
		name string
		opts faultfs.CrashOpts
	}{
		{"clean", faultfs.CrashOpts{}},
		{"partial-sync", faultfs.CrashOpts{KeepUnsynced: true}},
		{"torn", faultfs.CrashOpts{KeepUnsynced: true, Torn: true}},
	}
	mode := modes[rng.Intn(len(modes))]
	dev2 := storage.New(clock.Real{}, storage.Null())
	img, err := snap.Materialize(dev2, rng, mode.opts)
	if err != nil {
		return fmt.Errorf("torture seed %d: materialize %s: %w", cfg.Seed, mode.name, err)
	}

	opts2 := engine.DefaultOptions(img)
	geo.apply(&opts2)
	db2, err := engine.Open(opts2)
	if err != nil {
		return violation(cfg, mode.name, "recovery failed: %v", err)
	}

	// --------------------------------------------------------------
	// Phase 3: determine the surviving prefix and verify it exactly.

	c := -1
	if cutVal, gerr := db2.Get([]byte(cutKey)); gerr == nil {
		c, err = strconv.Atoi(string(cutVal))
		if err != nil {
			return violation(cfg, mode.name, "cut marker corrupted: %q", cutVal)
		}
	} else if !errors.Is(gerr, engine.ErrNotFound) {
		return violation(cfg, mode.name, "reading cut marker: %v", gerr)
	}
	cfg.Logf("mode=%s submitted=%d cut=%d lastAcked=%d maxPossible=%d",
		mode.name, submitted, c, lastAcked, maxPossible)

	if c < lastAcked {
		return violation(cfg, mode.name,
			"acknowledged-synced data lost: recovered prefix ends at op %d, op %d was synced and acked\n%s",
			c, lastAcked, db2.DebugLayout())
	}
	if c > maxPossible {
		return violation(cfg, mode.name,
			"phantom future data: recovered prefix ends at op %d, last op possibly in the image is %d",
			c, maxPossible)
	}

	// Replay the oracle over the surviving prefix.
	model := map[string]string{}
	for i := 0; i <= c; i++ {
		model[cutKey] = strconv.Itoa(i)
		for _, m := range ops[i].muts {
			if m.del {
				delete(model, m.key)
			} else {
				model[m.key] = m.val
			}
		}
	}
	if err := verify(cfg, mode.name, db2, model, rng, cfg.Keys); err != nil {
		return err
	}

	// --------------------------------------------------------------
	// Phase 4: the recovered DB must make durable progress that
	// survives yet another reopen (MANIFEST roll-forward, WAL reuse).

	for i := 0; i < cfg.PostRecoveryOps; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(cfg.Keys))
		v := fmt.Sprintf("post-recovery-%d-%d", cfg.Seed, i)
		var b batch.Batch
		b.Put([]byte(k), []byte(v))
		if err := db2.Apply(&b, true); err != nil {
			return violation(cfg, mode.name, "recovered DB rejected write %d: %v", i, err)
		}
		model[k] = v
	}
	if err := db2.Flush(); err != nil {
		return violation(cfg, mode.name, "recovered DB flush failed: %v", err)
	}
	if err := verify(cfg, mode.name, db2, model, rng, cfg.Keys); err != nil {
		return err
	}
	if err := db2.Close(); err != nil {
		return violation(cfg, mode.name, "recovered DB close failed: %v", err)
	}

	db3, err := engine.Open(opts2)
	if err != nil {
		return violation(cfg, mode.name, "second recovery failed: %v", err)
	}
	if err := verify(cfg, mode.name, db3, model, rng, cfg.Keys); err != nil {
		return fmt.Errorf("%w (after second reopen)", err)
	}
	if err := db3.Close(); err != nil {
		return violation(cfg, mode.name, "final close failed: %v", err)
	}
	return nil
}

// verify checks the DB's keyspace equals the model exactly: point
// reads, absent keys, and a full ordered scan.
func verify(cfg Config, mode string, db *engine.DB, model map[string]string, rng *rand.Rand, keys int) error {
	for k, want := range model {
		v, err := db.Get([]byte(k))
		if err != nil {
			return violation(cfg, mode, "Get(%q) = %v, want %q\n%s", k, err, want, db.DebugLayout())
		}
		if string(v) != want {
			return violation(cfg, mode, "Get(%q) = %q, want %q", k, v, want)
		}
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(keys))
		if _, ok := model[k]; ok {
			continue
		}
		if v, err := db.Get([]byte(k)); !errors.Is(err, engine.ErrNotFound) {
			return violation(cfg, mode, "phantom key %q = (%q, %v), want ErrNotFound", k, v, err)
		}
	}
	if v, err := db.Get([]byte("never-written")); !errors.Is(err, engine.ErrNotFound) {
		return violation(cfg, mode, "phantom key %q = (%q, %v)", "never-written", v, err)
	}

	it, err := db.NewIter()
	if err != nil {
		return violation(cfg, mode, "NewIter: %v", err)
	}
	defer it.Close()
	seen := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := string(it.Key())
		want, ok := model[k]
		if !ok {
			return violation(cfg, mode, "scan found phantom key %q", k)
		}
		if string(it.Value()) != want {
			return violation(cfg, mode, "scan value for %q = %q, want %q", k, it.Value(), want)
		}
		seen++
	}
	if err := it.Error(); err != nil {
		return violation(cfg, mode, "scan error: %v", err)
	}
	if seen != len(model) {
		return violation(cfg, mode, "scan saw %d keys, model has %d", seen, len(model))
	}
	return nil
}
