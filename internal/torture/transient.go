package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/engine"
	"xpointdb/internal/events"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

// runTransient is the auto-recovery half of the robustness story: the
// crash mode (Run) proves a reopen recovers; this mode proves the
// engine heals transient storage faults on the SAME handle. A seeded
// workload runs while transient fault rules (FailNTimes / HealAfter)
// arm at random points; every fault either stays invisible (soft,
// retried in place) or fails the requesting write, after which the
// recovery worker must return the DB to Healthy — no reopen, ever.
//
// The contract checked on every run:
//
//  1. Zero acked-write loss. Every mutation whose Apply returned nil
//     must read back exactly (point reads and a full scan against the
//     oracle), across any number of fault/recovery episodes.
//  2. Self-healing. After the workload ends (all rules transient, so
//     all faults healed), the DB must reach Healthy within a bounded
//     wait and accept writes again — on the original handle.
//  3. Honest failures. A failed Apply may only report the injected
//     fault or the background-error latch; and if any hard error
//     latched, the event stream must record a recovery engagement and
//     a recovery success.
func runTransient(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))

	dev := storage.New(clock.Real{}, storage.Null())
	ffs, err := faultfs.New(vfs.NewMem(dev), rng.Int63())
	if err != nil {
		return fmt.Errorf("torture seed %d: faultfs: %w", cfg.Seed, err)
	}
	geo := pickGeometry(rng)
	buf := &events.Buffer{}
	opts := engine.DefaultOptions(ffs)
	geo.apply(&opts)
	opts.EventListener = buf
	opts.EventSinkQueue = -1 // oracles assert on the buffer mid-run
	// Tight backoffs keep iterations fast; the generous attempt budget
	// means a giveup can only be a real bug (every rule below heals
	// within a few fires or a few milliseconds).
	opts.RecoveryBaseBackoff = time.Millisecond
	opts.RecoveryMaxBackoff = 10 * time.Millisecond
	opts.MaxRecoveryAttempts = 100
	db, err := engine.Open(opts)
	if err != nil {
		return fmt.Errorf("torture seed %d: open: %w", cfg.Seed, err)
	}
	defer db.Close()

	// Schedule 2-5 fault episodes at random op indices. Each arms one
	// transient rule; all heal on their own, so recovery must always
	// win eventually.
	episodes := map[int]func(){}
	for n := 2 + rng.Intn(4); n > 0; n-- {
		at := rng.Intn(cfg.Ops)
		switch rng.Intn(5) {
		case 0: // hard: WAL sync fails 1-2 times
			k := 1 + rng.Int63n(2)
			episodes[at] = func() {
				ffs.AddRule(faultfs.Rule{
					Ops: []faultfs.Op{faultfs.OpSync}, Path: "*.log", FailNTimes: k,
				})
				cfg.Logf("op %d: WAL sync FailNTimes=%d armed", at, k)
			}
		case 1: // hard: MANIFEST sync fails once (forces a manifest roll)
			episodes[at] = func() {
				ffs.AddRule(faultfs.Rule{
					Ops: []faultfs.Op{faultfs.OpSync}, Path: "MANIFEST-*", FailNTimes: 1,
				})
				cfg.Logf("op %d: MANIFEST sync FailNTimes=1 armed", at)
			}
		case 2: // soft-or-probe: WAL create fails once (rotation retry,
			// or a failed first recovery probe)
			episodes[at] = func() {
				ffs.AddRule(faultfs.Rule{
					Ops: []faultfs.Op{faultfs.OpCreate}, Path: "*.log", FailNTimes: 1,
				})
				cfg.Logf("op %d: WAL create FailNTimes=1 armed", at)
			}
		case 3: // soft: SST create fails 1-2 times (flush retries in place)
			k := 1 + rng.Int63n(2)
			episodes[at] = func() {
				ffs.AddRule(faultfs.Rule{
					Ops: []faultfs.Op{faultfs.OpCreate}, Path: "*.sst", FailNTimes: k,
				})
				cfg.Logf("op %d: SST create FailNTimes=%d armed", at, k)
			}
		case 4: // hard, time-bounded: every WAL sync fails for a short window
			w := time.Duration(1+rng.Intn(8)) * time.Millisecond
			episodes[at] = func() {
				ffs.AddRule(faultfs.Rule{
					Ops: []faultfs.Op{faultfs.OpSync}, Path: "*.log", HealAfter: w,
				})
				cfg.Logf("op %d: WAL sync HealAfter=%v armed", at, w)
			}
		}
	}

	// --------------------------------------------------------------
	// Seeded workload against the acked-state oracle. Unlike the crash
	// mode there is no surviving-prefix ambiguity: an op is in the
	// oracle iff its Apply returned nil.

	key := func() string { return fmt.Sprintf("k%03d", rng.Intn(cfg.Keys)) }
	live := map[string]string{}
	failed := 0
	for i := 0; i < cfg.Ops; i++ {
		if arm, ok := episodes[i]; ok {
			arm()
		}
		var b batch.Batch
		sync := rng.Float64() < 0.25
		b.Put([]byte(cutKey), []byte(strconv.Itoa(i)))
		muts := make([]mut, 0, 4)
		for m, n := 0, 1+rng.Intn(4); m < n; m++ {
			k := key()
			if rng.Float64() < 0.2 {
				b.Delete([]byte(k))
				muts = append(muts, mut{key: k, del: true})
			} else {
				v := fmt.Sprintf("v%06d-%s-%04d", i, k, rng.Intn(10000))
				b.Put([]byte(k), []byte(v))
				muts = append(muts, mut{key: k, val: v})
			}
		}
		if err := db.Apply(&b, sync); err != nil {
			if !errors.Is(err, faultfs.ErrInjected) && !errors.Is(err, engine.ErrBackground) {
				return violation(cfg, "transient", "Apply(op %d) failed with a foreign error: %v", i, err)
			}
			failed++
			// The write was not acknowledged; recovery must bring the
			// DB back without a reopen before the workload continues.
			if err := waitTransientHealthy(cfg, db, 15*time.Second); err != nil {
				return err
			}
			continue
		}
		live[cutKey] = strconv.Itoa(i)
		for _, m := range muts {
			if m.del {
				delete(live, m.key)
			} else {
				live[m.key] = m.val
			}
		}

		// Live spot checks: reads must serve acked state even while a
		// fault episode is in flight.
		if rng.Float64() < 0.02 {
			k := key()
			v, gerr := db.Get([]byte(k))
			want, ok := live[k]
			switch {
			case !ok && !errors.Is(gerr, engine.ErrNotFound):
				return violation(cfg, "transient", "Get(%q) = (%q, %v), want ErrNotFound", k, v, gerr)
			case ok && gerr != nil:
				return violation(cfg, "transient", "Get(%q) failed: %v", k, gerr)
			case ok && string(v) != want:
				return violation(cfg, "transient", "Get(%q) = %q, want %q", k, v, want)
			}
		}
		if rng.Float64() < 0.01 {
			if ferr := db.Flush(); ferr != nil {
				// A latched error can fail a manual flush; it must heal.
				if err := waitTransientHealthy(cfg, db, 15*time.Second); err != nil {
					return err
				}
			}
		}
	}

	// --------------------------------------------------------------
	// Every rule has healed; the DB must settle to Healthy and verify
	// the full acked state on the same handle. One wrinkle: a
	// FailNTimes rule armed near the end of the workload may hold
	// charges that never fired (a WAL-sync rule only fires on sync'd
	// applies, ~25% of ops). Such a rule is not self-healing — left in
	// place it would fault the post-heal phase below, which asserts on
	// a clean device. The mode's contract covers faults injected while
	// the workload runs, so drop the leftovers. (Seed 39 arms exactly
	// this: WAL sync FailNTimes=2 with one sync'd apply remaining.)
	ffs.ClearRules()

	if err := waitTransientHealthy(cfg, db, 15*time.Second); err != nil {
		return err
	}
	m := db.Metrics()
	cfg.Logf("transient: %d/%d ops failed; %d soft, %d hard errors; recovery %d attempts %d successes %d giveups",
		failed, cfg.Ops, m.SoftErrors.Load(), m.HardErrors.Load(),
		m.RecoveryAttempts.Load(), m.RecoverySuccesses.Load(), m.RecoveryGiveups.Load())
	if m.RecoveryGiveups.Load() > 0 {
		return violation(cfg, "transient", "recovery gave up on a transient fault (%d giveups)", m.RecoveryGiveups.Load())
	}
	if m.HardErrors.Load() > 0 {
		if m.RecoverySuccesses.Load() < 1 {
			return violation(cfg, "transient", "%d hard errors latched but no recovery success recorded", m.HardErrors.Load())
		}
		if err := requireRecoveryEvents(cfg, buf); err != nil {
			return err
		}
	}
	if err := verify(cfg, "transient", db, live, rng, cfg.Keys); err != nil {
		return err
	}

	// The healed handle must make durable progress that survives a
	// flush — still without any reopen.
	for i := 0; i < cfg.PostRecoveryOps; i++ {
		k := key()
		v := fmt.Sprintf("post-heal-%d-%d", cfg.Seed, i)
		var b batch.Batch
		b.Put([]byte(k), []byte(v))
		if err := db.Apply(&b, true); err != nil {
			return violation(cfg, "transient", "healed DB rejected write %d: %v", i, err)
		}
		live[k] = v
	}
	if err := db.Flush(); err != nil {
		return violation(cfg, "transient", "healed DB flush failed: %v", err)
	}
	if err := verify(cfg, "transient", db, live, rng, cfg.Keys); err != nil {
		return err
	}
	if err := db.Close(); err != nil {
		return violation(cfg, "transient", "close failed: %v", err)
	}
	return nil
}

// waitTransientHealthy polls until the DB reports Healthy or the
// deadline passes; every rule in this mode is transient, so a DB that
// stays unhealthy has a broken recovery path.
func waitTransientHealthy(cfg Config, db *engine.DB, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if db.Health() == engine.Healthy {
			return nil
		}
		time.Sleep(200 * time.Microsecond)
	}
	return violation(cfg, "transient",
		"DB did not return to Healthy within %v: health=%v bgErr=%v",
		timeout, db.Health(), db.BackgroundError())
}

// requireRecoveryEvents asserts the event stream recorded at least one
// recovery engagement and one success, in that order.
func requireRecoveryEvents(cfg Config, buf *events.Buffer) error {
	evs := buf.Events()
	begin, success := -1, -1
	for i, e := range evs {
		if e.Kind == events.KindRecoveryBegin && begin < 0 {
			begin = i
		}
		if e.Kind == events.KindRecoverySuccess && success < 0 {
			success = i
		}
	}
	switch {
	case begin < 0:
		return violation(cfg, "transient", "hard error latched but no error_recovery_begin event")
	case success < 0:
		return violation(cfg, "transient", "hard error latched but no error_recovery_success event")
	case success < begin:
		return violation(cfg, "transient", "error_recovery_success (event %d) precedes error_recovery_begin (event %d)", success, begin)
	}
	return nil
}
