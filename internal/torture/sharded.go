// Sharded torture mode: the crash-consistency harness pointed at the
// range-sharded store. On top of the engine contract (prefix
// durability, sync floor, crash ceiling, recoverability) it checks the
// cross-shard atomic-batch contract: a batch that spans shards commits
// through two-phase commit, so after any crash — at any filesystem-op
// boundary, under any materialization mode — the recovered store must
// show the batch on ALL of its participant shards or on NONE of them,
// and any acknowledged cross-shard batch (regardless of its sync flag;
// the 2PC commit point is always durable) must survive in full.
//
// Each shard gets its own monotone cut marker, placed just inside the
// shard's key range, and every workload batch writes the marker of
// every shard it touches. Because each shard is an engine with its own
// WAL, the surviving ops on one shard always form a prefix of the ops
// that touched it — so the recovered marker c_s identifies that prefix
// exactly, and comparing {c_s} across a batch's participants decides
// atomicity without caring how the crash interleaved with 2PC phases.
package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/engine"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/shardeddb"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

// shardedOp is one submitted workload batch in the sharded run.
type shardedOp struct {
	muts         []mut
	participants []int
	// ackedDurable: Apply returned nil before the crash snapshot froze,
	// through a path that guarantees durability at ack — an explicit
	// sync, or any cross-shard commit (2PC syncs its prepares and
	// commit record regardless of the caller's flag).
	ackedDurable bool
}

// shardedMarker returns shard s's cut-marker key: the shard's range
// start followed by a 0x01 byte, which sorts inside the shard's range,
// below every user key sharing the boundary prefix, and outside the
// reserved 0x00 namespace.
func shardedMarker(db *shardeddb.DB, s int) []byte {
	start, _ := db.ShardRange(s)
	return append(append([]byte{}, start...), 0x01, '@', 'c', 'u', 't')
}

// shardedBoundaries splits the "k%03d" torture key universe evenly.
func shardedBoundaries(shards, keys int) [][]byte {
	b := make([][]byte, 0, shards-1)
	for i := 1; i < shards; i++ {
		b = append(b, []byte(fmt.Sprintf("k%03d", keys*i/shards)))
	}
	return b
}

func shardedOptions(fs vfs.FS, shards int, keys int, geo geometry, slots int) shardeddb.Options {
	opts := shardeddb.Options{
		Shards:     shards,
		Boundaries: shardedBoundaries(shards, keys),
		PoolSlots:  slots,
	}
	opts.Engine = engine.DefaultOptions(fs)
	geo.apply(&opts.Engine)
	return opts
}

// runSharded executes one seeded crash/recovery iteration against a
// sharded store and verifies the per-shard durability contract plus
// cross-shard batch atomicity.
func runSharded(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	shards := cfg.Shards

	dev := storage.New(clock.Real{}, storage.Null())
	ffs, err := faultfs.New(vfs.NewMem(dev), rng.Int63())
	if err != nil {
		return fmt.Errorf("torture seed %d: faultfs: %w", cfg.Seed, err)
	}
	geo := pickGeometry(rng)
	slots := 2 + rng.Intn(shards+1) // undersized pool stresses cross-shard scheduling
	db, err := shardeddb.Open(shardedOptions(ffs, shards, cfg.Keys, geo, slots))
	if err != nil {
		return fmt.Errorf("torture seed %d: initial sharded open: %w", cfg.Seed, err)
	}
	cfg.Logf("sharded: %d shards, %d pool slots", shards, slots)

	// Seeded fault rules. Shard files live under "shard-NNN/" and the
	// coordinator log under "meta/", so the globs carry a directory
	// component (path.Match wildcards do not cross '/').
	if rng.Float64() < 0.25 {
		ffs.AddRule(faultfs.Rule{
			Ops: []faultfs.Op{faultfs.OpSync}, Path: "*/*.log",
			After: rng.Int63n(60), Count: 1,
		})
		cfg.Logf("fault: one WAL sync failure armed")
	}
	if rng.Float64() < 0.15 {
		ffs.AddRule(faultfs.Rule{
			Ops: []faultfs.Op{faultfs.OpCreate}, Path: "*/*.sst",
			Prob: 0.1, Count: 2,
		})
		cfg.Logf("fault: transient SST create failures armed")
	}
	if rng.Float64() < 0.10 {
		ffs.AddRule(faultfs.Rule{
			Ops: []faultfs.Op{faultfs.OpSync}, Path: "*/MANIFEST-*",
			After: rng.Int63n(8), Count: 1,
		})
		cfg.Logf("fault: one MANIFEST sync failure armed")
	}
	if rng.Float64() < 0.10 {
		ffs.AddRule(faultfs.Rule{
			Ops: []faultfs.Op{faultfs.OpSync}, Path: "*/TXN-*",
			After: rng.Int63n(10), Count: 1,
		})
		cfg.Logf("fault: one coordinator-log sync failure armed")
	}
	if rng.Float64() < 0.15 {
		ffs.AddRule(faultfs.Rule{
			Ops:  []faultfs.Op{faultfs.OpWrite, faultfs.OpSync},
			Prob: 0.05, Count: 20,
			Fault: faultfs.Fault{Latency: 200 * time.Microsecond},
		})
		cfg.Logf("fault: write/sync latency armed")
	}

	ffs.ArmCrash(50 + rng.Int63n(4000))

	// --------------------------------------------------------------
	// Phase 1: seeded workload. Mutations spread across the whole key
	// universe, so batches routinely span shards and commit via 2PC.

	key := func() string { return fmt.Sprintf("k%03d", rng.Intn(cfg.Keys)) }
	shardOf := func(k string) int { return db.ShardForKey([]byte(k)) }
	ops := make([]shardedOp, 0, cfg.Ops)
	maxPossible := -1
	var stopErr error
	postCrash := 0
	crossSubmitted := 0

	for i := 0; i < cfg.Ops; i++ {
		var b batch.Batch
		o := shardedOp{}
		sync := rng.Float64() < 0.25
		touched := map[int]bool{}
		nmut := 1 + rng.Intn(5)
		for m := 0; m < nmut; m++ {
			k := key()
			touched[shardOf(k)] = true
			if rng.Float64() < 0.2 {
				b.Delete([]byte(k))
				o.muts = append(o.muts, mut{key: k, del: true})
			} else {
				v := fmt.Sprintf("v%06d-%s-%04d", i, k, rng.Intn(10000))
				b.Put([]byte(k), []byte(v))
				o.muts = append(o.muts, mut{key: k, val: v})
			}
		}
		for s := range touched {
			o.participants = append(o.participants, s)
			b.Put(shardedMarker(db, s), []byte(strconv.Itoa(i)))
		}
		if len(o.participants) > 1 {
			crossSubmitted++
		}
		ops = append(ops, o)

		if !ffs.Crashed() {
			maxPossible = i
		}
		err := db.Apply(&b, sync)
		if err != nil {
			stopErr = err
			break
		}
		if (sync || len(o.participants) > 1) && !ffs.Crashed() {
			ops[i].ackedDurable = true
		}

		if rng.Float64() < 0.01 {
			if ferr := db.Flush(); ferr != nil {
				stopErr = ferr
				break
			}
		}
		if ffs.Crashed() {
			postCrash++
			if postCrash > cfg.PostCrashOps {
				break
			}
		}
	}

	snap := ffs.ForceCrash()
	submitted := len(ops)
	if stopErr != nil {
		cfg.Logf("workload stopped at op %d/%d: %v", submitted, cfg.Ops, stopErr)
	}
	_ = db.Close()

	// --------------------------------------------------------------
	// Phase 2: materialize one crash image and recover the whole store
	// (all shard directories and the coordinator log froze together).

	modes := []struct {
		name string
		opts faultfs.CrashOpts
	}{
		{"clean", faultfs.CrashOpts{}},
		{"partial-sync", faultfs.CrashOpts{KeepUnsynced: true}},
		{"torn", faultfs.CrashOpts{KeepUnsynced: true, Torn: true}},
	}
	mode := modes[rng.Intn(len(modes))]
	dev2 := storage.New(clock.Real{}, storage.Null())
	img, err := snap.Materialize(dev2, rng, mode.opts)
	if err != nil {
		return fmt.Errorf("torture seed %d: materialize %s: %w", cfg.Seed, mode.name, err)
	}

	db2, err := shardeddb.Open(shardedOptions(img, shards, cfg.Keys, geo, slots))
	if err != nil {
		return violation(cfg, mode.name, "sharded recovery failed: %v", err)
	}
	_, _, rolledForward, abortedAtOpen := db2.TxnStats()

	// --------------------------------------------------------------
	// Phase 3: read every shard's cut marker and verify the contract.

	cut := make([]int, shards)
	for s := 0; s < shards; s++ {
		cut[s] = -1
		v, gerr := db2.Get(shardedMarker(db2, s))
		switch {
		case gerr == nil:
			cut[s], err = strconv.Atoi(string(v))
			if err != nil {
				return violation(cfg, mode.name, "shard %d cut marker corrupted: %q", s, v)
			}
		case !errors.Is(gerr, shardeddb.ErrNotFound):
			return violation(cfg, mode.name, "reading shard %d cut marker: %v", s, gerr)
		}
	}
	cfg.Logf("mode=%s submitted=%d cross=%d cuts=%v maxPossible=%d rolledForward=%d abortedAtOpen=%d",
		mode.name, submitted, crossSubmitted, cut, maxPossible, rolledForward, abortedAtOpen)

	for s, c := range cut {
		if c > maxPossible {
			return violation(cfg, mode.name,
				"phantom future data on shard %d: cut %d, last op possibly in the image is %d",
				s, c, maxPossible)
		}
	}
	for i, o := range ops {
		applied := 0
		for _, s := range o.participants {
			if cut[s] >= i {
				applied++
			}
		}
		if len(o.participants) > 1 && applied != 0 && applied != len(o.participants) {
			return violation(cfg, mode.name,
				"TORN CROSS-SHARD BATCH: op %d touched shards %v but survived on only %d of them (cuts %v)",
				i, o.participants, applied, cut)
		}
		if o.ackedDurable && applied != len(o.participants) {
			return violation(cfg, mode.name,
				"acknowledged batch lost: op %d (shards %v) acked durable, cuts %v",
				i, o.participants, cut)
		}
	}

	// Per-shard oracle replay: shard s holds exactly the effects of
	// the ops with index ≤ cut[s] that touched it.
	model := map[string]string{}
	for s := 0; s < shards; s++ {
		for i := 0; i <= cut[s] && i < len(ops); i++ {
			o := ops[i]
			mine := false
			for _, p := range o.participants {
				if p == s {
					mine = true
					break
				}
			}
			if !mine {
				continue
			}
			model[string(shardedMarker(db2, s))] = strconv.Itoa(i)
			for _, m := range o.muts {
				if shardOf(m.key) != s {
					continue
				}
				if m.del {
					delete(model, m.key)
				} else {
					model[m.key] = m.val
				}
			}
		}
	}
	if err := verifySharded(cfg, mode.name, db2, model, rng, cfg.Keys); err != nil {
		return err
	}

	// --------------------------------------------------------------
	// Phase 4: the recovered store must accept new writes — including
	// fresh cross-shard batches through a new coordinator epoch — and
	// keep them across a second reopen.

	for i := 0; i < cfg.PostRecoveryOps; i++ {
		var b batch.Batch
		n := 1 + rng.Intn(3)
		touched := map[int]bool{}
		type kv struct{ k, v string }
		var kvs []kv
		for j := 0; j < n; j++ {
			k := fmt.Sprintf("k%03d", rng.Intn(cfg.Keys))
			v := fmt.Sprintf("post-recovery-%d-%d-%d", cfg.Seed, i, j)
			b.Put([]byte(k), []byte(v))
			touched[shardOf(k)] = true
			kvs = append(kvs, kv{k, v})
		}
		for s := range touched {
			mk := shardedMarker(db2, s)
			b.Put(mk, []byte(strconv.Itoa(len(ops)+i)))
			model[string(mk)] = strconv.Itoa(len(ops) + i)
		}
		if err := db2.Apply(&b, true); err != nil {
			return violation(cfg, mode.name, "recovered store rejected write %d: %v", i, err)
		}
		for _, p := range kvs {
			model[p.k] = p.v
		}
	}
	if err := db2.Flush(); err != nil {
		return violation(cfg, mode.name, "recovered store flush failed: %v", err)
	}
	if err := verifySharded(cfg, mode.name, db2, model, rng, cfg.Keys); err != nil {
		return err
	}
	if err := db2.Close(); err != nil {
		return violation(cfg, mode.name, "recovered store close failed: %v", err)
	}

	db3, err := shardeddb.Open(shardedOptions(img, shards, cfg.Keys, geo, slots))
	if err != nil {
		return violation(cfg, mode.name, "second sharded recovery failed: %v", err)
	}
	if err := verifySharded(cfg, mode.name, db3, model, rng, cfg.Keys); err != nil {
		return fmt.Errorf("%w (after second reopen)", err)
	}
	if err := db3.Close(); err != nil {
		return violation(cfg, mode.name, "final close failed: %v", err)
	}
	return nil
}

// verifySharded checks the sharded store's user-visible keyspace
// equals the model exactly: point reads, absent probes, and one full
// cross-shard ordered scan (which also proves no 2PC bookkeeping key
// ever leaks out of the reserved namespace).
func verifySharded(cfg Config, mode string, db *shardeddb.DB, model map[string]string, rng *rand.Rand, keys int) error {
	for k, want := range model {
		v, err := db.Get([]byte(k))
		if err != nil {
			return violation(cfg, mode, "Get(%q) = %v, want %q", k, err, want)
		}
		if string(v) != want {
			return violation(cfg, mode, "Get(%q) = %q, want %q", k, v, want)
		}
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(keys))
		if _, ok := model[k]; ok {
			continue
		}
		if v, err := db.Get([]byte(k)); !errors.Is(err, shardeddb.ErrNotFound) {
			return violation(cfg, mode, "phantom key %q = (%q, %v), want ErrNotFound", k, v, err)
		}
	}

	it, err := db.NewIter()
	if err != nil {
		return violation(cfg, mode, "NewIter: %v", err)
	}
	defer it.Close()
	seen := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		k := string(it.Key())
		want, ok := model[k]
		if !ok {
			return violation(cfg, mode, "scan found phantom key %q", k)
		}
		if string(it.Value()) != want {
			return violation(cfg, mode, "scan value for %q = %q, want %q", k, it.Value(), want)
		}
		seen++
	}
	if err := it.Error(); err != nil {
		return violation(cfg, mode, "scan error: %v", err)
	}
	if seen != len(model) {
		return violation(cfg, mode, "scan saw %d keys, model has %d", seen, len(model))
	}
	return nil
}
