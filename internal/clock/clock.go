// Package clock abstracts time and blocking synchronization so that the
// same engine code can run either in real time (backed by the time and
// sync packages) or inside a discrete-event simulation with virtual time
// (package sim).
//
// The contract mirrors the standard library: Mutex behaves like
// sync.Mutex, Cond like sync.Cond bound to the Mutex it was created
// with. Code that runs under a Clock must observe one additional rule:
// never hold a Mutex across Sleep. (Cond.Wait releases the mutex, as
// usual.)
package clock

import (
	"sync"
	"time"
)

// Clock is the time and scheduling facility used by the engine.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time

	// Sleep pauses the calling process for d. Sleeping for a
	// non-positive duration returns immediately.
	Sleep(d time.Duration)

	// Go starts fn as a new process tracked by the clock. Engine
	// code must use Go, not the go statement, so that a simulated
	// clock can account for the process. The name is used in
	// diagnostics only.
	Go(name string, fn func())

	// NewMutex returns a mutex whose blocking is visible to the
	// clock.
	NewMutex() Mutex

	// NewCond returns a condition variable bound to m, which must
	// have been created by the same clock's NewMutex.
	NewCond(m Mutex) Cond
}

// Mutex is a mutual-exclusion lock created by a Clock.
type Mutex interface {
	Lock()
	Unlock()
}

// Cond is a condition variable created by a Clock. As with sync.Cond,
// the caller must hold the associated Mutex when calling Wait.
type Cond interface {
	Wait()
	Signal()
	Broadcast()
}

// Real is a Clock backed by the time and sync packages. The zero value
// is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Sleep sleeps in real time. Durations under spinThreshold are refined
// with a short busy-wait to improve precision; longer durations use
// time.Sleep for the bulk and spin for the remainder.
func (Real) Sleep(d time.Duration) { PreciseSleep(d) }

// Go runs fn on a new goroutine.
func (Real) Go(name string, fn func()) { go fn() }

// NewMutex returns a *sync.Mutex.
func (Real) NewMutex() Mutex { return &sync.Mutex{} }

// NewCond returns a sync.Cond bound to m.
func (Real) NewCond(m Mutex) Cond { return sync.NewCond(m) }

// spinThreshold is the sleep remainder below which PreciseSleep busy
// waits. It is a compromise: large enough to absorb typical timer
// overshoot, small enough not to burn meaningful CPU.
const spinThreshold = 50 * time.Microsecond

// PreciseSleep sleeps for d with sub-timer-granularity precision by
// combining time.Sleep with a final busy-wait.
func PreciseSleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > spinThreshold {
		time.Sleep(d - spinThreshold)
	}
	for time.Now().Before(deadline) {
		// Busy-wait the remainder.
	}
}
