package clock

// Semaphore is a counting semaphore built on a Clock's Mutex and Cond,
// so acquiring processes park correctly under both real and simulated
// clocks. It is used to model bounded resources such as a device's
// internal parallelism.
type Semaphore struct {
	m     Mutex
	c     Cond
	avail int
	// waiters counts processes currently blocked in Acquire. It is
	// exposed for instrumentation (e.g. device queue depth).
	waiters int
}

// NewSemaphore returns a semaphore with n available slots on clk.
func NewSemaphore(clk Clock, n int) *Semaphore {
	if n <= 0 {
		panic("clock: semaphore size must be positive")
	}
	m := clk.NewMutex()
	return &Semaphore{m: m, c: clk.NewCond(m), avail: n}
}

// Acquire takes one slot, blocking until one is available.
func (s *Semaphore) Acquire() {
	s.m.Lock()
	for s.avail == 0 {
		s.waiters++
		s.c.Wait()
		s.waiters--
	}
	s.avail--
	s.m.Unlock()
}

// Release returns one slot.
func (s *Semaphore) Release() {
	s.m.Lock()
	s.avail++
	s.c.Signal()
	s.m.Unlock()
}

// Waiters reports how many processes are currently blocked in Acquire.
func (s *Semaphore) Waiters() int {
	s.m.Lock()
	defer s.m.Unlock()
	return s.waiters
}
