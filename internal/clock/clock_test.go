package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	var c Real
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatal("Now is in the past")
	}
	m := c.NewMutex()
	m.Lock()
	m.Unlock()
	cond := c.NewCond(m)

	done := false
	c.Go("worker", func() {
		m.Lock()
		done = true
		cond.Signal()
		m.Unlock()
	})
	m.Lock()
	for !done {
		cond.Wait()
	}
	m.Unlock()
}

func TestPreciseSleepAccuracy(t *testing.T) {
	for _, d := range []time.Duration{0, 10 * time.Microsecond, 200 * time.Microsecond, 2 * time.Millisecond} {
		start := time.Now()
		PreciseSleep(d)
		got := time.Since(start)
		if got < d {
			t.Fatalf("slept %v for request %v (early wake)", got, d)
		}
		// Generous upper bound: loaded CI boxes overshoot.
		if d > 0 && got > d+50*time.Millisecond {
			t.Fatalf("slept %v for request %v", got, d)
		}
	}
}

func TestPreciseSleepNegative(t *testing.T) {
	start := time.Now()
	PreciseSleep(-time.Second)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("negative sleep slept")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	var c Real
	s := NewSemaphore(c, 2)
	var mu sync.Mutex
	cur, max := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Acquire()
			mu.Lock()
			cur++
			if cur > max {
				max = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			s.Release()
		}()
	}
	wg.Wait()
	if max > 2 {
		t.Fatalf("observed %d concurrent holders with capacity 2", max)
	}
	if s.Waiters() != 0 {
		t.Fatalf("waiters leaked: %d", s.Waiters())
	}
}

func TestSemaphorePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSemaphore(Real{}, 0)
}
