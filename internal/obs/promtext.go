package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a minimal parser for the Prometheus text exposition
// format (version 0.0.4) — just enough to validate that /metrics
// output is well formed: HELP/TYPE comments reference the samples that
// follow, label syntax is legal, values parse as floats, and histogram
// families carry consistent cumulative buckets with a +Inf bound plus
// _sum/_count series. It is used by the golden tests (obs and engine)
// and by any tooling that wants to sanity-check an exposition without
// pulling in the real Prometheus client libraries.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family: the samples sharing a name (for
// histograms, the _bucket/_sum/_count series are folded into the base
// family).
type PromFamily struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram", "untyped"
	Samples []PromSample
}

// ParsePromText parses a Prometheus text exposition. It returns the
// families in declaration order and an error describing the first
// malformed line or structural violation it finds.
func ParsePromText(r io.Reader) ([]*PromFamily, error) {
	var (
		fams    []*PromFamily
		byName  = map[string]*PromFamily{}
		lineNum int
	)
	family := func(name string) *PromFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &PromFamily{Name: name, Type: "untyped"}
		byName[name] = f
		fams = append(fams, f)
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lineNum++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parsePromComment(line, family); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNum, err)
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNum, err)
		}
		base := promBaseName(s.Name, byName)
		f := family(base)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := validatePromHistogram(f); err != nil {
				return nil, fmt.Errorf("family %s: %w", f.Name, err)
			}
		}
	}
	return fams, nil
}

func parsePromComment(line string, family func(string) *PromFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP: %q", line)
		}
		f := family(fields[2])
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		f := family(fields[2])
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", fields[2])
		}
		f.Type = fields[3]
	}
	return nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	// Metric name: up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample without value: %q", line)
	}
	s.Name = rest[:end]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := strings.LastIndexByte(rest, '}')
		if close < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		if err := parsePromLabels(rest[1:close], s.Labels); err != nil {
			return s, err
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimLeft(rest, " \t")
	// Value, optionally followed by a timestamp (which we ignore).
	valStr := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		valStr = rest[:i]
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(in string, out map[string]string) error {
	for in != "" {
		eq := strings.IndexByte(in, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=': %q", in)
		}
		name := strings.TrimSpace(in[:eq])
		if !validPromName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		rest := in[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value after %s", name)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return fmt.Errorf("unterminated label value for %s", name)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return fmt.Errorf("dangling escape in label %s", name)
				}
				switch rest[i+1] {
				case '\\', '"':
					val.WriteByte(rest[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %s", rest[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		out[name] = val.String()
		in = strings.TrimLeft(rest[i+1:], " \t")
		in = strings.TrimPrefix(in, ",")
		in = strings.TrimLeft(in, " \t")
	}
	return nil
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// promBaseName folds histogram suffix series into their declared base
// family when one exists.
func promBaseName(name string, known map[string]*PromFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, exists := known[base]; exists && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// validatePromHistogram checks the structural rules for one histogram
// family: every label combination has monotonically non-decreasing
// cumulative buckets ending at le="+Inf", and the +Inf bucket equals
// the _count series.
func validatePromHistogram(f *PromFamily) error {
	type series struct {
		buckets map[float64]float64 // le -> cumulative count
		count   float64
		hasCnt  bool
		hasSum  bool
	}
	bySig := map[string]*series{}
	sig := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := sig(labels)
		s, ok := bySig[k]
		if !ok {
			s = &series{buckets: map[float64]float64{}}
			bySig[k] = s
		}
		return s
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("bad le %q: %v", leStr, err)
			}
			get(s.Labels).buckets[le] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			se := get(s.Labels)
			se.count, se.hasCnt = s.Value, true
		case strings.HasSuffix(s.Name, "_sum"):
			get(s.Labels).hasSum = true
		default:
			return fmt.Errorf("unexpected series %s in histogram family", s.Name)
		}
	}
	for sigKey, se := range bySig {
		if len(se.buckets) == 0 {
			return fmt.Errorf("series %s has no buckets", sigKey)
		}
		les := make([]float64, 0, len(se.buckets))
		for le := range se.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		last := les[len(les)-1]
		if !math.IsInf(last, +1) {
			return fmt.Errorf("series %s missing le=\"+Inf\" bucket", sigKey)
		}
		prev := -1.0
		for _, le := range les {
			if c := se.buckets[le]; c < prev {
				return fmt.Errorf("series %s buckets not cumulative at le=%g", sigKey, le)
			} else {
				prev = c
			}
		}
		if !se.hasCnt || !se.hasSum {
			return fmt.Errorf("series %s missing _sum or _count", sigKey)
		}
		if se.buckets[last] != se.count {
			return fmt.Errorf("series %s +Inf bucket %g != count %g", sigKey, se.buckets[last], se.count)
		}
	}
	return nil
}
