package obs

import "xpointdb/internal/events"

// ring is a fixed-capacity event buffer: appends overwrite the oldest
// entry once full, so a snapshot always returns the most recent
// events in emission order. It is not self-locking — the Hub's mutex
// guards every access, which is what makes subscribe-with-replay
// atomic against concurrent emission.
type ring struct {
	buf   []events.Event
	next  int // index the next append writes to
	total int // lifetime appends (caps at len(buf) for fill tracking)
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]events.Event, capacity)}
}

func (r *ring) append(e events.Event) {
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.total < len(r.buf) {
		r.total++
	}
}

// snapshot returns the buffered events, oldest first.
func (r *ring) snapshot() []events.Event {
	out := make([]events.Event, 0, r.total)
	if r.total < len(r.buf) {
		return append(out, r.buf[:r.total]...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}
