// Package obs is the engine's ops plane: an embeddable HTTP server
// exposing the metrics, stats, health and event-stream surfaces the
// engine already collects in process — Prometheus text exposition on
// /metrics, the structured event log as Server-Sent Events on /events,
// StatsReport on /stats, the error-handler health on /healthz, and
// net/http/pprof on /debug/pprof.
//
// The paper's method is continuous visibility into per-level I/O,
// stalls and stage latency; this package is what makes that visibility
// available to an operator (or a dashboard) while the engine serves
// traffic, instead of only to code holding the *DB handle.
//
// The package deliberately knows nothing about the engine: the server
// is configured with callbacks, and the Hub is an events.Listener. The
// engine wires itself in (Options.ObsAddr), and any future network
// server (cmd/xpointserver) can mount the same Handler unchanged.
package obs

import (
	"sync"
	"sync/atomic"

	"xpointdb/internal/events"
)

// Defaults for HubConfig's sizing knobs.
const (
	// DefaultRingSize is the replay ring capacity: how many recent
	// events a new SSE client receives on connect.
	DefaultRingSize = 512
	// DefaultSinkQueue bounds the queue between engine emitters and
	// the sink drain goroutine.
	DefaultSinkQueue = 4096
	// DefaultClientQueue bounds each SSE subscriber's buffer; a client
	// that falls further behind loses events (slow-client drop).
	DefaultClientQueue = 256
)

// HubConfig configures a Hub. The zero value is usable: defaults are
// applied and there is no sink.
type HubConfig struct {
	// RingSize is the replay ring capacity (default DefaultRingSize).
	RingSize int
	// SinkQueue is the sink drain queue length (default
	// DefaultSinkQueue). Ignored when Sink is nil.
	SinkQueue int
	// ClientQueue is the per-subscriber buffer length (default
	// DefaultClientQueue).
	ClientQueue int
	// Sink, if non-nil, receives every event from a dedicated drain
	// goroutine — never from the emitting goroutine, so a slow or
	// blocking sink (a JSON-lines file on a congested disk) cannot
	// stall the engine. When the queue is full the event is dropped
	// for the sink (counted, reported via OnSinkDrop) but still
	// reaches the ring and subscribers.
	Sink events.Listener
	// OnSinkDrop is called once per event dropped on the sink queue
	// (from the emitting goroutine; must be cheap and non-blocking).
	OnSinkDrop func()
}

// Hub fans the engine's event stream out to any number of SSE
// subscribers and one optional sink, without ever blocking the
// emitter. It implements events.Listener.
//
// Every event is assigned a hub sequence number and appended to a
// bounded in-memory ring; a new subscriber atomically receives the
// ring's contents as replay plus a live channel, so it sees recent
// history and then every subsequent event exactly once (unless it is
// too slow to keep up, in which case events are dropped for that
// subscriber and counted).
type Hub struct {
	cfg HubConfig

	mu     sync.Mutex
	ring   *ring
	seq    uint64
	subs   map[*Subscription]struct{}
	closed bool

	sinkQ   chan events.Event
	drainWG sync.WaitGroup

	// pending counts events handed to the drain goroutine but not yet
	// delivered to the sink; Sync waits for it to reach zero.
	pendingMu   sync.Mutex
	pendingCond *sync.Cond
	pending     int64

	sinkDropped   atomic.Int64
	clientDropped atomic.Int64
}

// NewHub returns a running hub. Call Close to stop the drain goroutine
// and disconnect subscribers.
func NewHub(cfg HubConfig) *Hub {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.SinkQueue <= 0 {
		cfg.SinkQueue = DefaultSinkQueue
	}
	if cfg.ClientQueue <= 0 {
		cfg.ClientQueue = DefaultClientQueue
	}
	h := &Hub{
		cfg:  cfg,
		ring: newRing(cfg.RingSize),
		subs: make(map[*Subscription]struct{}),
	}
	h.pendingCond = sync.NewCond(&h.pendingMu)
	if cfg.Sink != nil {
		h.sinkQ = make(chan events.Event, cfg.SinkQueue)
		h.drainWG.Add(1)
		go h.drain()
	}
	return h
}

// Emit assigns the next hub sequence number, appends the event to the
// replay ring, offers it to the sink queue and to every subscriber.
// It never blocks: full queues drop (with counters) instead.
func (h *Hub) Emit(e events.Event) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.seq++
	e.Seq = h.seq
	h.ring.append(e)
	if h.sinkQ != nil {
		select {
		case h.sinkQ <- e:
			h.pendingMu.Lock()
			h.pending++
			h.pendingMu.Unlock()
		default:
			h.sinkDropped.Add(1)
			if h.cfg.OnSinkDrop != nil {
				h.cfg.OnSinkDrop()
			}
		}
	}
	for sub := range h.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			h.clientDropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// drain delivers queued events to the sink in emission order.
func (h *Hub) drain() {
	defer h.drainWG.Done()
	for e := range h.sinkQ {
		h.cfg.Sink.Emit(e)
		h.pendingMu.Lock()
		h.pending--
		if h.pending == 0 {
			h.pendingCond.Broadcast()
		}
		h.pendingMu.Unlock()
	}
}

// Sync blocks until every event accepted for the sink so far has been
// delivered to it — the barrier tests and Close use to make the
// asynchronous sink observably caught up.
func (h *Hub) Sync() {
	h.pendingMu.Lock()
	for h.pending > 0 {
		h.pendingCond.Wait()
	}
	h.pendingMu.Unlock()
}

// Close stops the hub: subsequent Emits are discarded, every
// subscriber's channel is closed, and the sink drain is flushed to
// completion before Close returns.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for sub := range h.subs {
		close(sub.ch)
		delete(h.subs, sub)
	}
	if h.sinkQ != nil {
		close(h.sinkQ)
	}
	h.mu.Unlock()
	h.drainWG.Wait()
}

// SinkDropped returns the number of events dropped because the sink
// queue was full.
func (h *Hub) SinkDropped() int64 { return h.sinkDropped.Load() }

// ClientDropped returns the total number of events dropped across all
// subscribers because their buffers were full.
func (h *Hub) ClientDropped() int64 { return h.clientDropped.Load() }

// Subscription is one subscriber's view of the stream: Replay holds
// the ring contents at subscribe time (oldest first), and C delivers
// every later event. C is closed when the hub closes or Cancel is
// called; events are silently dropped (and counted) while C's buffer
// is full.
type Subscription struct {
	// Replay is the recent-event history captured atomically with the
	// subscription: the live channel carries only events with Seq
	// greater than the last replay event's.
	Replay []events.Event

	h       *Hub
	ch      chan events.Event
	dropped atomic.Int64
}

// C returns the live event channel.
func (s *Subscription) C() <-chan events.Event { return s.ch }

// Dropped returns how many events this subscriber lost to slow-client
// drop so far.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Cancel unsubscribes and closes C. Safe to call more than once and
// after the hub closed.
func (s *Subscription) Cancel() {
	s.h.mu.Lock()
	if _, ok := s.h.subs[s]; ok {
		delete(s.h.subs, s)
		close(s.ch)
	}
	s.h.mu.Unlock()
}

// Subscribe registers a new subscriber. The replay snapshot and the
// live-channel registration happen atomically, so the subscriber sees
// every event exactly once (ring history first, then live), with no
// gap and no duplicate at the boundary.
func (h *Hub) Subscribe() *Subscription {
	h.mu.Lock()
	sub := &Subscription{
		h:  h,
		ch: make(chan events.Event, h.cfg.ClientQueue),
	}
	sub.Replay = h.ring.snapshot()
	if h.closed {
		close(sub.ch)
	} else {
		h.subs[sub] = struct{}{}
	}
	h.mu.Unlock()
	return sub
}
