package obs

import (
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"xpointdb/internal/events"
)

//go:embed dashboard.html
var dashboardHTML []byte

// Config wires an obs server to its data sources. Everything is a
// callback so this package never imports the engine: the engine (or a
// test) supplies closures over its own state.
type Config struct {
	// MetricsText writes the Prometheus text exposition body.
	MetricsText func(w io.Writer)
	// StatsText returns the human-readable stats report.
	StatsText func() string
	// Health reports liveness: ok=false yields a 503. Detail is a
	// short human-readable status string either way.
	Health func() (ok bool, detail string)
	// Hub feeds /events. May be nil, in which case /events returns 503.
	Hub *Hub
	// PingInterval is the SSE keep-alive comment cadence (default 15s).
	PingInterval time.Duration
}

// NewMux builds the ops-plane route table on a fresh mux:
//
//	/metrics      Prometheus text exposition
//	/events       event stream as SSE (replay + live)
//	/stats        human-readable stats report
//	/healthz      JSON health, 200 or 503
//	/debug/pprof  the standard runtime profiles
//	/             embedded live dashboard (SSE + /metrics consumer)
//
// The mux is returned rather than installed globally so callers can
// mount it wherever they like (own listener, sub-route of a bigger
// server, httptest).
func NewMux(cfg Config) *http.ServeMux {
	if cfg.PingInterval <= 0 {
		cfg.PingInterval = 15 * time.Second
	}
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.MetricsText == nil {
			http.Error(w, "metrics unavailable", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.MetricsText(w)
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if cfg.StatsText == nil {
			http.Error(w, "stats unavailable", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, cfg.StatsText())
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ok, detail := true, "ok"
		if cfg.Health != nil {
			ok, detail = cfg.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]any{"ok": ok, "status": detail})
	})

	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveSSE(cfg, w, r)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(dashboardHTML)
	})

	return mux
}

// serveSSE streams the hub to one client: ring replay first, then live
// events, with periodic comment pings so proxies and clients detect
// dead connections. Event framing is standard SSE — id: is the hub
// sequence number, event: is the engine event kind, data: is the JSON
// envelope (same schema as the JSON-lines sink).
func serveSSE(cfg Config, w http.ResponseWriter, r *http.Request) {
	if cfg.Hub == nil {
		http.Error(w, "event stream unavailable", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	sub := cfg.Hub.Subscribe()
	defer sub.Cancel()

	for _, e := range sub.Replay {
		if err := writeSSEEvent(w, e); err != nil {
			return
		}
	}
	fl.Flush()

	ping := time.NewTicker(cfg.PingInterval)
	defer ping.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ping.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			if err := writeSSEEvent(w, e); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func writeSSEEvent(w io.Writer, e events.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
	return err
}

// Server is a running ops-plane HTTP server bound to its own listener.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve binds addr (e.g. "127.0.0.1:0" for an ephemeral port) and
// serves the ops mux on it in a background goroutine. The returned
// Server reports the bound address and shuts down cleanly on Close.
func Serve(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: NewMux(cfg)},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the server's bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, closing active SSE connections. It
// bounds the shutdown so a wedged handler cannot block DB.Close.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// SSE streams don't finish on their own; force-close them.
		s.srv.Close()
	}
	<-s.done
	return err
}
