package obs

import (
	"strings"
	"testing"
)

func TestParsePromTextValid(t *testing.T) {
	const in = `# HELP db_ops_total Operations served.
# TYPE db_ops_total counter
db_ops_total 1234
# HELP db_cache_bytes Cache usage.
# TYPE db_cache_bytes gauge
db_cache_bytes{pool="block",shard="0"} 4.5e+06
db_cache_bytes{pool="block",shard="1"} 100
# HELP db_get_seconds Get latency.
# TYPE db_get_seconds histogram
db_get_seconds_bucket{le="0.001"} 5
db_get_seconds_bucket{le="0.01"} 9
db_get_seconds_bucket{le="+Inf"} 10
db_get_seconds_sum 0.123
db_get_seconds_count 10
`
	fams, err := ParsePromText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("families = %d, want 3", len(fams))
	}
	if fams[0].Name != "db_ops_total" || fams[0].Type != "counter" ||
		fams[0].Help != "Operations served." || len(fams[0].Samples) != 1 ||
		fams[0].Samples[0].Value != 1234 {
		t.Fatalf("counter family parsed wrong: %+v", fams[0])
	}
	if fams[1].Type != "gauge" || len(fams[1].Samples) != 2 ||
		fams[1].Samples[0].Labels["pool"] != "block" ||
		fams[1].Samples[0].Value != 4.5e6 {
		t.Fatalf("gauge family parsed wrong: %+v", fams[1])
	}
	if fams[2].Type != "histogram" || len(fams[2].Samples) != 5 {
		t.Fatalf("histogram family parsed wrong: %+v", fams[2])
	}
}

func TestParsePromTextLabelEscapes(t *testing.T) {
	in := `m{path="a\"b\\c\nd"} 1` + "\n"
	fams, err := ParsePromText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got := fams[0].Samples[0].Labels["path"]
	if got != "a\"b\\c\nd" {
		t.Fatalf("escaped label = %q", got)
	}
}

func TestParsePromTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":          "9metric 1\n",
		"bad value":         "metric one\n",
		"unquoted label":    "metric{a=b} 1\n",
		"unterminated":      "metric{a=\"b} 1\n",
		"bad type":          "# TYPE m widget\nm 1\n",
		"type after sample": "m 1\n# TYPE m counter\nm 2\n",
		"no value":          "metric\n",
	}
	for name, in := range cases {
		if _, err := ParsePromText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse accepted %q", name, in)
		}
	}
}

func TestParsePromTextRejectsBadHistogram(t *testing.T) {
	cases := map[string]string{
		"missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 5
h_sum 1
h_count 5
`,
		"not cumulative": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"inf != count": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 6
h_sum 1
h_count 5
`,
		"missing sum": `# TYPE h histogram
h_bucket{le="+Inf"} 5
h_count 5
`,
	}
	for name, in := range cases {
		if _, err := ParsePromText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse accepted bad histogram", name)
		}
	}
}

func TestParsePromTextHistogramLabelled(t *testing.T) {
	// Labelled histogram series validate independently per label set.
	const in = `# TYPE h histogram
h_bucket{path="get",le="0.001"} 1
h_bucket{path="get",le="+Inf"} 2
h_sum{path="get"} 0.5
h_count{path="get"} 2
h_bucket{path="write",le="0.001"} 7
h_bucket{path="write",le="+Inf"} 7
h_sum{path="write"} 0.1
h_count{path="write"} 7
`
	if _, err := ParsePromText(strings.NewReader(in)); err != nil {
		t.Fatalf("labelled histogram rejected: %v", err)
	}
}
