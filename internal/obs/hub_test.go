package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"xpointdb/internal/events"
)

func mkEvent(i int) events.Event {
	return events.Event{
		TS:   time.Unix(0, int64(i)),
		Kind: events.KindWALSync,
		WALSync: &events.WALSync{
			Bytes: int64(i),
		},
	}
}

func TestHubSeqAndRingReplay(t *testing.T) {
	h := NewHub(HubConfig{RingSize: 8})
	defer h.Close()
	for i := 1; i <= 20; i++ {
		h.Emit(mkEvent(i))
	}
	sub := h.Subscribe()
	defer sub.Cancel()
	if len(sub.Replay) != 8 {
		t.Fatalf("replay len = %d, want ring size 8", len(sub.Replay))
	}
	// Most recent 8 events, in order, with hub-assigned seqs 13..20.
	for i, e := range sub.Replay {
		want := uint64(13 + i)
		if e.Seq != want {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	// A live event lands on the channel with the next seq, no gap.
	h.Emit(mkEvent(21))
	select {
	case e := <-sub.C():
		if e.Seq != 21 {
			t.Fatalf("live Seq = %d, want 21", e.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("no live event delivered")
	}
}

func TestHubReplayBelowCapacity(t *testing.T) {
	h := NewHub(HubConfig{RingSize: 64})
	defer h.Close()
	for i := 1; i <= 3; i++ {
		h.Emit(mkEvent(i))
	}
	sub := h.Subscribe()
	defer sub.Cancel()
	if len(sub.Replay) != 3 {
		t.Fatalf("replay len = %d, want 3", len(sub.Replay))
	}
	for i, e := range sub.Replay {
		if e.Seq != uint64(i+1) {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}
}

func TestHubSlowClientDrop(t *testing.T) {
	h := NewHub(HubConfig{ClientQueue: 4})
	defer h.Close()
	sub := h.Subscribe()
	defer sub.Cancel()
	for i := 1; i <= 10; i++ {
		h.Emit(mkEvent(i))
	}
	if got := sub.Dropped(); got != 6 {
		t.Fatalf("sub.Dropped = %d, want 6", got)
	}
	if got := h.ClientDropped(); got != 6 {
		t.Fatalf("hub.ClientDropped = %d, want 6", got)
	}
	// The 4 buffered events are the first 4 (drop-newest semantics).
	for want := uint64(1); want <= 4; want++ {
		e := <-sub.C()
		if e.Seq != want {
			t.Fatalf("buffered Seq = %d, want %d", e.Seq, want)
		}
	}
}

func TestHubSinkOrderAndSync(t *testing.T) {
	var (
		mu   sync.Mutex
		seen []uint64
	)
	sink := events.Func(func(e events.Event) {
		mu.Lock()
		seen = append(seen, e.Seq)
		mu.Unlock()
	})
	h := NewHub(HubConfig{Sink: sink})
	for i := 1; i <= 100; i++ {
		h.Emit(mkEvent(i))
	}
	h.Sync()
	mu.Lock()
	if len(seen) != 100 {
		mu.Unlock()
		t.Fatalf("sink saw %d events, want 100", len(seen))
	}
	for i, s := range seen {
		if s != uint64(i+1) {
			mu.Unlock()
			t.Fatalf("sink order broken at %d: seq %d", i, s)
		}
	}
	mu.Unlock()
	h.Close()
}

func TestHubSinkBackpressureDrops(t *testing.T) {
	release := make(chan struct{})
	var delivered int
	sink := events.Func(func(e events.Event) {
		<-release
		delivered++
	})
	drops := 0
	h := NewHub(HubConfig{SinkQueue: 2, Sink: sink, OnSinkDrop: func() { drops++ }})
	// Queue capacity 2 plus one event parked in the drain goroutine:
	// emit enough that some must drop, and verify Emit never blocks.
	done := make(chan struct{})
	go func() {
		for i := 1; i <= 10; i++ {
			h.Emit(mkEvent(i))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Emit blocked on a slow sink")
	}
	if h.SinkDropped() == 0 || drops == 0 {
		t.Fatalf("expected sink drops, got counter=%d callback=%d", h.SinkDropped(), drops)
	}
	close(release)
	h.Close()
	if int64(delivered)+h.SinkDropped() != 10 {
		t.Fatalf("delivered %d + dropped %d != emitted 10", delivered, h.SinkDropped())
	}
}

func TestHubCloseDrainsSink(t *testing.T) {
	var n int
	sink := events.Func(func(e events.Event) {
		time.Sleep(time.Millisecond)
		n++
	})
	h := NewHub(HubConfig{Sink: sink})
	for i := 1; i <= 50; i++ {
		h.Emit(mkEvent(i))
	}
	h.Close()
	if n != 50 {
		t.Fatalf("Close returned before sink drained: %d/50", n)
	}
	// Emit after close is a no-op, subscribe returns a closed channel.
	h.Emit(mkEvent(51))
	sub := h.Subscribe()
	if _, ok := <-sub.C(); ok {
		t.Fatal("subscription channel open after hub close")
	}
	sub.Cancel() // must not panic
}

func TestHubConcurrentChurn(t *testing.T) {
	h := NewHub(HubConfig{RingSize: 32, ClientQueue: 16})
	defer h.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Emit(mkEvent(w*1_000_000 + i))
				}
			}
		}(w)
	}
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sub := h.Subscribe()
				prev := uint64(0)
				for _, e := range sub.Replay {
					if e.Seq <= prev {
						panic(fmt.Sprintf("replay not increasing: %d after %d", e.Seq, prev))
					}
					prev = e.Seq
				}
				// Drain a few live events, then churn.
				for k := 0; k < 5; k++ {
					select {
					case e := <-sub.C():
						if e.Seq <= prev {
							panic(fmt.Sprintf("live seq %d not after replay %d", e.Seq, prev))
						}
						prev = e.Seq
					case <-time.After(10 * time.Millisecond):
					}
				}
				sub.Cancel()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
