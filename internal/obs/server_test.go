package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"xpointdb/internal/events"
)

func testConfig(h *Hub) Config {
	return Config{
		MetricsText: func(w io.Writer) {
			fmt.Fprintln(w, "# HELP test_ops_total test counter")
			fmt.Fprintln(w, "# TYPE test_ops_total counter")
			fmt.Fprintln(w, "test_ops_total 42")
		},
		StatsText: func() string { return "** stats **\nuptime 1s\n" },
		Health:    func() (bool, string) { return true, "healthy" },
		Hub:       h,
	}
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	s := startServer(t, testConfig(h))
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "test_ops_total 42") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	fams, err := ParsePromText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("metrics body does not parse: %v", err)
	}
	if len(fams) != 1 || fams[0].Type != "counter" {
		t.Fatalf("unexpected families: %+v", fams)
	}

	code, body = get(t, base+"/stats")
	if code != 200 || !strings.Contains(body, "uptime 1s") {
		t.Fatalf("/stats = %d %q", code, body)
	}

	code, body = get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/")
	if code != 200 || !strings.Contains(body, "xpointdb ops") {
		t.Fatalf("dashboard = %d", code)
	}

	code, _ = get(t, base+"/no-such-page")
	if code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}

	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServerHealthzUnhealthy(t *testing.T) {
	cfg := testConfig(nil)
	cfg.Health = func() (bool, string) { return false, "read-only: wal device gone" }
	s := startServer(t, cfg)
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz = %d, want 503", code)
	}
	if !strings.Contains(body, "wal device gone") {
		t.Fatalf("missing detail: %q", body)
	}
}

// sseFrame is one parsed SSE event frame.
type sseFrame struct {
	id    string
	event string
	data  string
}

func readSSEFrames(t *testing.T, r *bufio.Reader, n int, timeout time.Duration) []sseFrame {
	t.Helper()
	type res struct {
		frames []sseFrame
		err    error
	}
	ch := make(chan res, 1)
	go func() {
		var frames []sseFrame
		var cur sseFrame
		for len(frames) < n {
			line, err := r.ReadString('\n')
			if err != nil {
				ch <- res{frames, err}
				return
			}
			line = strings.TrimRight(line, "\r\n")
			switch {
			case line == "":
				if cur.data != "" {
					frames = append(frames, cur)
				}
				cur = sseFrame{}
			case strings.HasPrefix(line, "id: "):
				cur.id = line[4:]
			case strings.HasPrefix(line, "event: "):
				cur.event = line[7:]
			case strings.HasPrefix(line, "data: "):
				cur.data = line[6:]
			case strings.HasPrefix(line, ":"):
				// comment / ping — ignore
			}
		}
		ch <- res{frames, nil}
	}()
	select {
	case r := <-ch:
		if r.err != nil && len(r.frames) < n {
			t.Fatalf("SSE read: %v (got %d/%d frames)", r.err, len(r.frames), n)
		}
		return r.frames
	case <-time.After(timeout):
		t.Fatalf("timed out waiting for %d SSE frames", n)
		return nil
	}
}

func TestServerSSEReplayAndLive(t *testing.T) {
	h := NewHub(HubConfig{RingSize: 16})
	defer h.Close()
	for i := 1; i <= 3; i++ {
		h.Emit(mkEvent(i))
	}
	s := startServer(t, testConfig(h))

	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	br := bufio.NewReader(resp.Body)
	replay := readSSEFrames(t, br, 3, 5*time.Second)
	for i, f := range replay {
		if f.id != fmt.Sprint(i+1) {
			t.Fatalf("replay frame %d id = %q", i, f.id)
		}
		if f.event != string(events.KindWALSync) {
			t.Fatalf("replay frame %d event = %q", i, f.event)
		}
		var e events.Event
		if err := json.Unmarshal([]byte(f.data), &e); err != nil {
			t.Fatalf("replay frame %d data: %v", i, err)
		}
		if e.WALSync == nil || e.WALSync.Bytes != int64(i+1) {
			t.Fatalf("replay frame %d payload = %+v", i, e)
		}
	}

	// Live event arrives on the open stream.
	h.Emit(mkEvent(4))
	live := readSSEFrames(t, br, 1, 5*time.Second)
	if live[0].id != "4" {
		t.Fatalf("live frame id = %q, want 4", live[0].id)
	}
}

func TestServerSSEClientDisconnect(t *testing.T) {
	h := NewHub(HubConfig{})
	defer h.Close()
	s := startServer(t, testConfig(h))

	for i := 0; i < 5; i++ {
		resp, err := http.Get("http://" + s.Addr() + "/events")
		if err != nil {
			t.Fatalf("GET /events: %v", err)
		}
		resp.Body.Close()
	}
	// After disconnects the hub must not leak subscriptions: a new
	// emission fans out without blocking and the subscriber count
	// returns to zero once handlers notice the closed connections.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.mu.Lock()
		n := len(h.subs)
		h.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d subscriptions still registered after disconnect", n)
		}
		h.Emit(mkEvent(1)) // keep handlers waking so they observe ctx.Done
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerNoHub(t *testing.T) {
	cfg := testConfig(nil)
	s := startServer(t, cfg)
	code, _ := get(t, "http://"+s.Addr()+"/events")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/events without hub = %d, want 503", code)
	}
}
