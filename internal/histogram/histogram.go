// Package histogram provides the latency histograms and throughput
// time series used by the engine's instrumentation and by the
// experiment harness — the counters behind every latency and
// throughput figure in the paper.
package histogram

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// bucketLimits holds the upper bounds (inclusive) of the histogram
// buckets in nanoseconds, growing geometrically by ~1.5× from 1 µs to
// beyond 10 s. The layout follows RocksDB's HistogramImpl.
var bucketLimits = makeLimits()

func makeLimits() []int64 {
	var limits []int64
	v := int64(1000) // 1 µs
	for v < int64(20*time.Second) {
		limits = append(limits, v)
		next := v + v/2
		if next == v {
			next = v + 1
		}
		v = next
	}
	limits = append(limits, math.MaxInt64)
	return limits
}

// Histogram accumulates duration samples and reports percentiles. It is
// safe for concurrent use. The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	buckets []int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	idx := sort.Search(len(bucketLimits), func(i int) bool { return bucketLimits[i] >= ns })
	h.mu.Lock()
	if h.buckets == nil {
		h.buckets = make([]int64, len(bucketLimits))
	}
	h.buckets[idx]++
	h.count++
	h.sum += ns
	if h.count == 1 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all samples, for stage-attribution checks
// (e.g. comparing per-stage perf totals against end-to-end latency).
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.sum)
}

// Mean returns the mean sample.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Min and Max return the extreme samples.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.min)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Percentile returns the p-th percentile (0 < p ≤ 100), interpolated
// within the containing bucket.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	threshold := float64(h.count) * p / 100
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= threshold {
			lo := int64(0)
			if i > 0 {
				lo = bucketLimits[i-1]
			}
			hi := bucketLimits[i]
			if hi == math.MaxInt64 {
				hi = h.max
			}
			// Interpolate position within the bucket.
			within := 1 - (cum-threshold)/float64(c)
			v := float64(lo) + within*float64(hi-lo)
			if v < float64(h.min) {
				v = float64(h.min)
			}
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Bucket is one cumulative bucket of a histogram snapshot: Count
// samples were ≤ UpperBound. The final bucket's UpperBound is
// math.MaxInt64 (render as +Inf) and its Count equals the total.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper limit in nanoseconds.
	UpperBound int64
	// Count is the cumulative number of samples at or below UpperBound.
	Count int64
}

// Buckets returns the cumulative bucket counts (Prometheus histogram
// convention), skipping leading all-zero buckets but always including
// the terminal +Inf bucket. Returns nil when the histogram is empty.
func (h *Histogram) Buckets() []Bucket {
	bs, _, _ := h.Export()
	return bs
}

// Export returns the cumulative buckets together with the matching
// count and sum, captured under one lock — so an exporter racing
// concurrent Records still renders a consistent histogram (the +Inf
// bucket always equals count, as the Prometheus format requires).
func (h *Histogram) Export() (bs []Bucket, count int64, sum time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return nil, 0, 0
	}
	bs = make([]Bucket, 0, 16)
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum == 0 && bucketLimits[i] != math.MaxInt64 {
			continue
		}
		bs = append(bs, Bucket{UpperBound: bucketLimits[i], Count: cum})
	}
	return bs, h.count, time.Duration(h.sum)
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.buckets = nil
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
	h.mu.Unlock()
}

// Merge adds all of other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	ob := append([]int64(nil), other.buckets...)
	oc, os, omin, omax := other.count, other.sum, other.min, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.buckets == nil {
		h.buckets = make([]int64, len(bucketLimits))
	}
	for i, c := range ob {
		h.buckets[i] += c
	}
	if oc > 0 {
		if h.count == 0 || omin < h.min {
			h.min = omin
		}
		if omax > h.max {
			h.max = omax
		}
	}
	h.count += oc
	h.sum += os
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(90), h.Percentile(99), h.Max())
}

// ---------------------------------------------------------------------

// TimeSeries counts events into fixed-width time buckets, producing the
// per-second throughput timelines of Figures 4, 5 and 18. It is safe
// for concurrent use.
type TimeSeries struct {
	start time.Time
	width time.Duration

	mu      sync.Mutex
	buckets map[int64]int64
}

// NewTimeSeries returns a series whose buckets are width wide, with
// bucket 0 starting at start.
func NewTimeSeries(start time.Time, width time.Duration) *TimeSeries {
	if width <= 0 {
		width = time.Second
	}
	return &TimeSeries{start: start, width: width, buckets: make(map[int64]int64)}
}

// Record adds n events at time t.
func (ts *TimeSeries) Record(t time.Time, n int64) {
	idx := int64(t.Sub(ts.start) / ts.width)
	ts.mu.Lock()
	ts.buckets[idx] += n
	ts.mu.Unlock()
}

// Point is one bucket of a series.
type Point struct {
	// T is the offset of the bucket start from the series start.
	T time.Duration
	// Count is the number of events recorded in the bucket.
	Count int64
	// Rate is Count normalized to events/second.
	Rate float64
}

// Points returns all buckets from offset 0 through the last non-empty
// bucket, including empty intermediate buckets.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var maxIdx int64 = -1
	for i := range ts.buckets {
		if i > maxIdx {
			maxIdx = i
		}
	}
	pts := make([]Point, 0, maxIdx+1)
	for i := int64(0); i <= maxIdx; i++ {
		c := ts.buckets[i]
		pts = append(pts, Point{
			T:     time.Duration(i) * ts.width,
			Count: c,
			Rate:  float64(c) / ts.width.Seconds(),
		})
	}
	return pts
}

// MinRate returns the lowest per-bucket rate within [from, to) (offsets
// from series start), or 0 if the window is empty. Used to detect
// near-stop periods (case study A).
func (ts *TimeSeries) MinRate(from, to time.Duration) float64 {
	min := math.Inf(1)
	any := false
	for _, p := range ts.Points() {
		if p.T >= from && p.T < to {
			any = true
			if p.Rate < min {
				min = p.Rate
			}
		}
	}
	if !any {
		return 0
	}
	return min
}
