package histogram

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestSingleSample(t *testing.T) {
	var h Histogram
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 100*time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	p := h.Percentile(50)
	if p < 60*time.Microsecond || p > 100*time.Microsecond {
		t.Fatalf("p50 of single sample = %v", p)
	}
}

func TestPercentileOrdering(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(rng.Intn(1000000)) * time.Microsecond / 100)
	}
	p50, p90, p99 := h.Percentile(50), h.Percentile(90), h.Percentile(99)
	if !(p50 <= p90 && p90 <= p99 && p99 <= h.Max()) {
		t.Fatalf("percentiles out of order: %v %v %v max=%v", p50, p90, p99, h.Max())
	}
	// Uniform distribution: p50 should be near the middle.
	mid := 5 * time.Millisecond
	if p50 < mid/2 || p50 > mid*2 {
		t.Fatalf("p50 = %v far from %v", p50, mid)
	}
}

func TestPercentileAccuracyUniform(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p90 := h.Percentile(90)
	want := 9 * time.Millisecond
	// Geometric buckets: allow 50% relative error.
	if p90 < want/2 || p90 > want*3/2 {
		t.Fatalf("p90 = %v, want ≈%v", p90, want)
	}
}

func TestMean(t *testing.T) {
	var h Histogram
	h.Record(10 * time.Microsecond)
	h.Record(30 * time.Microsecond)
	if got := h.Mean(); got != 20*time.Microsecond {
		t.Fatalf("Mean = %v", got)
	}
}

func TestNegativeClampedToZero(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Second)
	if h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample mishandled: max=%v", h.Max())
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	b.Record(5 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != 5*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Mean() != 3*time.Millisecond {
		t.Fatalf("merged mean = %v", a.Mean())
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(7 * time.Microsecond)
	a.Merge(&b)
	if a.Count() != 1 || a.Min() != 7*time.Microsecond {
		t.Fatalf("merge into empty: n=%d min=%v", a.Count(), a.Min())
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		for _, s := range samples {
			h.Record(time.Duration(s))
		}
		for _, p := range []float64{1, 50, 90, 99, 100} {
			v := h.Percentile(p)
			if v < h.Min() || v > h.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestTimeSeriesBuckets(t *testing.T) {
	ts := NewTimeSeries(t0, time.Second)
	ts.Record(t0, 1)
	ts.Record(t0.Add(500*time.Millisecond), 2)
	ts.Record(t0.Add(1500*time.Millisecond), 5)
	ts.Record(t0.Add(3100*time.Millisecond), 7)
	pts := ts.Points()
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Count != 3 || pts[1].Count != 5 || pts[2].Count != 0 || pts[3].Count != 7 {
		t.Fatalf("counts = %v", pts)
	}
	if pts[1].Rate != 5 {
		t.Fatalf("rate = %f", pts[1].Rate)
	}
	if pts[2].T != 2*time.Second {
		t.Fatalf("gap bucket offset = %v", pts[2].T)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(t0, time.Second)
	if pts := ts.Points(); len(pts) != 0 {
		t.Fatalf("empty series has %d points", len(pts))
	}
}

func TestTimeSeriesMinRate(t *testing.T) {
	ts := NewTimeSeries(t0, time.Second)
	ts.Record(t0.Add(0*time.Second), 100)
	ts.Record(t0.Add(1*time.Second), 5)
	ts.Record(t0.Add(2*time.Second), 50)
	if got := ts.MinRate(0, 3*time.Second); got != 5 {
		t.Fatalf("MinRate = %f", got)
	}
	if got := ts.MinRate(10*time.Second, 20*time.Second); got != 0 {
		t.Fatalf("MinRate of empty window = %f", got)
	}
}

func TestTimeSeriesConcurrent(t *testing.T) {
	ts := NewTimeSeries(t0, time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ts.Record(t0.Add(time.Duration(i)*time.Millisecond), 1)
			}
		}()
	}
	wg.Wait()
	total := int64(0)
	for _, p := range ts.Points() {
		total += p.Count
	}
	if total != 4000 {
		t.Fatalf("total = %d", total)
	}
}
