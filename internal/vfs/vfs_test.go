package vfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/sim"
	"xpointdb/internal/storage"
)

func newMem() *MemFS {
	return NewMem(storage.New(clock.Real{}, storage.Null()))
}

func TestCreateWriteReadBack(t *testing.T) {
	fs := newMem()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 11)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello world" {
		t.Fatalf("read %q", buf)
	}
	// Partial read at offset.
	buf5 := make([]byte, 5)
	if _, err := f.ReadAt(buf5, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf5) != "world" {
		t.Fatalf("offset read %q", buf5)
	}
}

func TestReadPastEOF(t *testing.T) {
	fs := newMem()
	f, _ := fs.Create("a")
	f.Write([]byte("abc"))
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || !errors.Is(err, io.EOF) {
		t.Fatalf("short read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, 100); !errors.Is(err, io.EOF) {
		t.Fatalf("read past EOF = %v", err)
	}
}

func TestOpenMissing(t *testing.T) {
	fs := newMem()
	if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open missing = %v", err)
	}
	if _, err := fs.Size("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Size missing = %v", err)
	}
	if err := fs.Remove("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Remove missing = %v", err)
	}
	if err := fs.Rename("nope", "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Rename missing = %v", err)
	}
}

func TestRenameReplaces(t *testing.T) {
	fs := newMem()
	f, _ := fs.Create("old")
	f.Write([]byte("data"))
	g, _ := fs.Create("target")
	g.Write([]byte("obsolete"))
	if err := fs.Rename("old", "target"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("old"); err == nil {
		t.Fatal("old name still present")
	}
	h, err := fs.Open("target")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	h.ReadAt(buf, 0)
	if string(buf) != "data" {
		t.Fatalf("rename target holds %q", buf)
	}
}

func TestListSorted(t *testing.T) {
	fs := newMem()
	for _, n := range []string{"c", "a", "b"} {
		fs.Create(n)
	}
	names, _ := fs.List()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("List = %v", names)
	}
}

func TestSharedFileAcrossHandles(t *testing.T) {
	fs := newMem()
	w, _ := fs.Create("f")
	w.Write([]byte("shared"))
	r, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "shared" {
		t.Fatalf("second handle sees %q", buf)
	}
}

func TestClosedHandleErrors(t *testing.T) {
	fs := newMem()
	f, _ := fs.Create("f")
	f.Close()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Fatal("write on closed handle succeeded")
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("read on closed handle succeeded")
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync on closed handle succeeded")
	}
}

func TestCrashCloneDropsUnsynced(t *testing.T) {
	fs := newMem()
	f, _ := fs.Create("f")
	f.Write([]byte("synced"))
	f.Sync()
	f.Write([]byte("-unsynced"))

	g, _ := fs.Create("never-synced")
	g.Write([]byte("gone"))

	crashed := fs.CrashClone()
	size, err := crashed.Size("f")
	if err != nil || size != 6 {
		t.Fatalf("crashed f size = %d, %v", size, err)
	}
	size, err = crashed.Size("never-synced")
	if err != nil || size != 0 {
		t.Fatalf("crashed never-synced size = %d, %v", size, err)
	}
	// Original is untouched.
	if size, _ := fs.Size("f"); size != 15 {
		t.Fatalf("original mutated: %d", size)
	}
}

func TestDeviceChargedOnIO(t *testing.T) {
	dev := storage.New(clock.Real{}, storage.Null())
	fs := NewMem(dev)
	f, _ := fs.Create("f")
	f.Write(bytes.Repeat([]byte("x"), 10000))
	f.Sync()
	st := dev.Stats()
	if st.WriteBytes != 10000 || st.Syncs != 1 {
		t.Fatalf("device write accounting: %+v", st)
	}
	f.ReadAt(make([]byte, 4096), 0)
	if st := dev.Stats(); st.ReadBytes != 4096 || st.Reads != 1 {
		t.Fatalf("device read accounting: %+v", st)
	}
}

func TestSyncOnlyChargesDirtyBytes(t *testing.T) {
	dev := storage.New(clock.Real{}, storage.Null())
	fs := NewMem(dev)
	f, _ := fs.Create("f")
	f.Write(make([]byte, 5000))
	f.Sync()
	f.Sync() // nothing new
	if st := dev.Stats(); st.WriteBytes != 5000 {
		t.Fatalf("re-sync recharged: %+v", st)
	}
	f.Write(make([]byte, 100))
	f.Sync()
	if st := dev.Stats(); st.WriteBytes != 5100 {
		t.Fatalf("incremental sync wrong: %+v", st)
	}
}

func TestLargeSyncIsChunked(t *testing.T) {
	dev := storage.New(clock.Real{}, storage.Null())
	fs := NewMem(dev)
	f, _ := fs.Create("f")
	f.Write(make([]byte, 3*syncChunk+10))
	f.Sync()
	if st := dev.Stats(); st.Writes != 4 {
		t.Fatalf("chunking: %d device writes", st.Writes)
	}
}

func TestVirtualTimeCharged(t *testing.T) {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	dev := storage.New(k, storage.XPoint())
	fs := NewMem(dev)
	k.Run(func() {
		f, _ := fs.Create("f")
		f.Write(make([]byte, 4096))
		f.Sync()
		f.ReadAt(make([]byte, 4096), 0)
	})
	if k.Elapsed() <= 0 {
		t.Fatal("no virtual time charged for I/O")
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	fs := newMem()
	f, _ := fs.Create("f")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			f.Write([]byte("0123456789"))
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, 10)
		for i := 0; i < 1000; i++ {
			f.ReadAt(buf, 0)
		}
	}()
	wg.Wait()
	if size, _ := fs.Size("f"); size != 10000 {
		t.Fatalf("size = %d", size)
	}
}

// ---------------------------------------------------------------------

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewOS(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("persisted"))
	f.Sync()
	f.Close()

	g, err := fs.Open("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "persisted" {
		t.Fatalf("read %q", buf)
	}
	g.Close()

	if size, err := fs.Size("data.bin"); err != nil || size != 9 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	names, err := fs.List()
	if err != nil || len(names) != 1 || names[0] != "data.bin" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := fs.Rename("data.bin", "renamed.bin"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("renamed.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir + "/renamed.bin"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("file not removed")
	}
}

func TestOSFSOpenAppends(t *testing.T) {
	dir := t.TempDir()
	fs, _ := NewOS(dir)
	f, _ := fs.Create("log")
	f.Write([]byte("one"))
	f.Close()
	g, err := fs.Open("log")
	if err != nil {
		t.Fatal(err)
	}
	g.Write([]byte("two"))
	g.Close()
	if size, _ := fs.Size("log"); size != 6 {
		t.Fatalf("append through Open failed: size %d", size)
	}
}
