// Package vfs provides the filesystem abstraction the engine performs
// all I/O through.
//
// Two implementations exist:
//
//   - MemFS: an in-memory filesystem whose operations are charged to a
//     storage.Device model. This is the measurement substrate: data
//     lives in RAM but every read, write-back, and sync costs device
//     time. Reads always hit the device (the simulated setup assumes a
//     dataset much larger than page cache, as in the paper's 100 GB
//     data / 8 GB RAM configuration; caching is modeled explicitly by
//     the engine's block cache). MemFS can also simulate a crash that
//     loses unsynced data, which the recovery tests rely on.
//
//   - OS: a thin wrapper over package os rooted at a directory, so the
//     store runs as a real database on a real disk.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"xpointdb/internal/storage"
)

// FS is a flat-namespace filesystem.
type FS interface {
	// Create creates (truncating) a file open for appending.
	Create(name string) (File, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically renames a file, replacing any target.
	Rename(oldname, newname string) error
	// List returns the names of all files, sorted.
	List() ([]string, error)
	// Size returns the current size of a file.
	Size(name string) (int64, error)
}

// File is a handle supporting appending writes and positional reads.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync persists buffered writes to the device.
	Sync() error
}

// ErrNotExist is returned when a named file does not exist.
var ErrNotExist = os.ErrNotExist

// ErrNoSpace is the portable disk-full sentinel. Injected capacity
// faults (faultfs quota) wrap it, and the engine's error classifier
// treats it like syscall.ENOSPC, so tests exercise the same disk-full
// path a real device takes.
var ErrNoSpace = errors.New("vfs: no space left on device")

// ---------------------------------------------------------------------
// MemFS

// MemFS is an in-memory FS charged to a device model. The zero value is
// not usable; create one with NewMem.
type MemFS struct {
	dev *storage.Device

	mu    sync.Mutex
	files map[string]*memFile
}

// syncChunk is the granularity at which a Sync's dirty bytes are issued
// to the device. Chunking lets reads interleave with a large flush
// instead of queueing behind one monolithic transfer.
const syncChunk = 1 << 20

// NewMem returns an empty MemFS whose I/O is charged to dev.
func NewMem(dev *storage.Device) *MemFS {
	return &MemFS{dev: dev, files: make(map[string]*memFile)}
}

// Device returns the device this filesystem charges.
func (fs *MemFS) Device() *storage.Device { return fs.dev }

type memFile struct {
	fs   *MemFS
	name string

	mu     sync.RWMutex
	data   []byte
	synced int // prefix of data known to be on the device
}

// Create creates or truncates name.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{fs: fs, name: name}
	fs.files[name] = f
	return &memHandle{f: f}, nil
}

// Open opens name for reading (writes through the handle are also
// permitted and append, matching the engine's reopen-for-append use of
// the WAL during recovery).
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("vfs: open %s: %w", name, ErrNotExist)
	}
	return &memHandle{f: f}, nil
}

// Remove deletes name.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("vfs: remove %s: %w", name, ErrNotExist)
	}
	delete(fs.files, name)
	return nil
}

// Rename renames oldname to newname.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("vfs: rename %s: %w", oldname, ErrNotExist)
	}
	delete(fs.files, oldname)
	f.name = newname
	fs.files[newname] = f
	return nil
}

// List returns all file names, sorted.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Size returns the size of name.
func (fs *MemFS) Size(name string) (int64, error) {
	fs.mu.Lock()
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("vfs: size %s: %w", name, ErrNotExist)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data)), nil
}

// CrashClone returns a copy of the filesystem as it would look after a
// crash: every file is truncated to its last synced length. The device
// of the clone is the same device. Files never synced are empty.
func (fs *MemFS) CrashClone() *MemFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	clone := NewMem(fs.dev)
	for name, f := range fs.files {
		f.mu.RLock()
		data := make([]byte, f.synced)
		copy(data, f.data[:f.synced])
		f.mu.RUnlock()
		clone.files[name] = &memFile{fs: clone, name: name, data: data, synced: len(data)}
	}
	return clone
}

// CorruptBit flips one bit of name's stored data in place — silent
// media corruption, invisible to every open handle until the damaged
// byte is next read. A test hook for the integrity machinery (checksum
// verification, scrub, quarantine & repair); no device time is charged
// because nothing issued an I/O.
func (fs *MemFS) CorruptBit(name string, off int64) error {
	fs.mu.Lock()
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return fmt.Errorf("vfs: corrupt %s: %w", name, ErrNotExist)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("vfs: corrupt %s at %d beyond size %d", name, off, len(f.data))
	}
	f.data[off] ^= 1
	return nil
}

// TotalBytes reports the summed size of all files (for tests and space
// accounting).
func (fs *MemFS) TotalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, f := range fs.files {
		f.mu.RLock()
		n += int64(len(f.data))
		f.mu.RUnlock()
	}
	return n
}

// memHandle is an open handle onto a memFile.
type memHandle struct {
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("vfs: write %s: file closed", h.f.name)
	}
	h.f.mu.Lock()
	h.f.data = append(h.f.data, p...)
	h.f.mu.Unlock()
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("vfs: read %s: file closed", h.f.name)
	}
	// Charge the device before touching the data: reads always go to
	// the device in this model (see package comment).
	h.f.fs.dev.Read(len(p))
	h.f.mu.RLock()
	defer h.f.mu.RUnlock()
	if off < 0 || off > int64(len(h.f.data)) {
		return 0, fmt.Errorf("vfs: read %s at %d beyond size %d: %w", h.f.name, off, len(h.f.data), io.EOF)
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	if h.closed {
		return fmt.Errorf("vfs: sync %s: file closed", h.f.name)
	}
	f := h.f
	for {
		f.mu.Lock()
		dirty := len(f.data) - f.synced
		if dirty <= 0 {
			f.mu.Unlock()
			break
		}
		chunk := dirty
		if chunk > syncChunk {
			chunk = syncChunk
		}
		f.synced += chunk
		f.mu.Unlock()
		f.fs.dev.Write(chunk)
	}
	f.fs.dev.Sync()
	return nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}

// ---------------------------------------------------------------------
// Prefix filesystem

// Prefix exposes a sub-namespace of another FS: every name is joined
// with a fixed prefix on the way in and stripped on the way out of
// List. It gives each shard of a sharded DB its own flat namespace
// inside one underlying filesystem (and one crash/fault domain), which
// is what lets a single faultfs snapshot capture a whole multi-shard
// store at one instant.
type Prefix struct {
	fs     FS
	prefix string
}

// NewPrefix returns an FS that prepends prefix to every name. A
// conventional prefix ends in "/" so underlying names read like paths.
func NewPrefix(fs FS, prefix string) *Prefix {
	return &Prefix{fs: fs, prefix: prefix}
}

// Create creates (truncating) prefix+name.
func (p *Prefix) Create(name string) (File, error) { return p.fs.Create(p.prefix + name) }

// Open opens prefix+name for reading.
func (p *Prefix) Open(name string) (File, error) { return p.fs.Open(p.prefix + name) }

// Remove deletes prefix+name.
func (p *Prefix) Remove(name string) error { return p.fs.Remove(p.prefix + name) }

// Rename renames within the prefix namespace.
func (p *Prefix) Rename(oldname, newname string) error {
	return p.fs.Rename(p.prefix+oldname, p.prefix+newname)
}

// List returns the names under the prefix, with the prefix stripped.
func (p *Prefix) List() ([]string, error) {
	all, err := p.fs.List()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, n := range all {
		if strings.HasPrefix(n, p.prefix) {
			names = append(names, n[len(p.prefix):])
		}
	}
	return names, nil
}

// Size returns the size of prefix+name.
func (p *Prefix) Size(name string) (int64, error) { return p.fs.Size(p.prefix + name) }

// ---------------------------------------------------------------------
// OS filesystem

// OS is an FS rooted at a real directory.
type OS struct{ dir string }

// NewOS returns an FS over dir, creating it if needed.
func NewOS(dir string) (*OS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: mkdir %s: %w", dir, err)
	}
	return &OS{dir: dir}, nil
}

func (fs *OS) path(name string) string {
	return fs.dir + string(os.PathSeparator) + name
}

// Create creates (truncating) name under the root directory. Names may
// contain '/' (the Prefix layout shardeddb uses); intermediate
// directories are created on demand so a flat-namespace caller never
// has to know whether the FS maps slashes to real directories.
func (fs *OS) Create(name string) (File, error) {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		if err := os.MkdirAll(fs.path(name[:i]), 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(fs.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return newOSFile(f), nil
}

// Open opens name for read (and append, see MemFS.Open).
func (fs *OS) Open(name string) (File, error) {
	f, err := os.OpenFile(fs.path(name), os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return newOSFile(f), nil
}

// Remove deletes name.
func (fs *OS) Remove(name string) error { return os.Remove(fs.path(name)) }

// Rename renames oldname to newname.
func (fs *OS) Rename(oldname, newname string) error {
	return os.Rename(fs.path(oldname), fs.path(newname))
}

// List returns the names of regular files under the root, sorted.
// Files in subdirectories are reported with '/'-separated relative
// names, mirroring how MemFS stores slash-bearing names flat — so a
// Prefix view over either FS sees the same namespace.
func (fs *OS) List() ([]string, error) {
	var names []string
	err := filepath.WalkDir(fs.dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		rel, rerr := filepath.Rel(fs.dir, p)
		if rerr != nil {
			return rerr
		}
		names = append(names, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Size returns the size of name.
func (fs *OS) Size(name string) (int64, error) {
	fi, err := os.Stat(fs.path(name))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

type osFile struct {
	f  *os.File
	mu sync.Mutex // serialize appends
}

// newOSFile wraps f. os.File already carries a runtime finalizer that
// closes the descriptor when the handle is garbage collected, which is
// what lets the engine's table cache drop evicted readers without an
// explicit Close while concurrent readers drain.
func newOSFile(f *os.File) *osFile { return &osFile{f: f} }

func (f *osFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.f.Write(p)
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *osFile) Sync() error                             { return f.f.Sync() }
func (f *osFile) Close() error                            { return f.f.Close() }

var (
	_ FS = (*MemFS)(nil)
	_ FS = (*OS)(nil)
	_ FS = (*Prefix)(nil)
)
