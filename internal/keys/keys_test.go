package keys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	ik := Make([]byte("hello"), 42, KindSet)
	if got := UserKey(ik); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("UserKey = %q", got)
	}
	seq, kind := Trailer(ik)
	if seq != 42 || kind != KindSet {
		t.Fatalf("Trailer = %d, %d", seq, kind)
	}
}

func TestRoundTripDelete(t *testing.T) {
	ik := Make([]byte("k"), MaxSeq, KindDelete)
	seq, kind := Trailer(ik)
	if seq != MaxSeq || kind != KindDelete {
		t.Fatalf("Trailer = %d, %d", seq, kind)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(user []byte, seq uint64, kindBit bool) bool {
		seq &= MaxSeq
		kind := KindSet
		if kindBit {
			kind = KindDelete
		}
		ik := Make(user, seq, kind)
		gotSeq, gotKind := Trailer(ik)
		return bytes.Equal(UserKey(ik), user) && gotSeq == seq && gotKind == kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareUserKeyOrder(t *testing.T) {
	a := Make([]byte("a"), 1, KindSet)
	b := Make([]byte("b"), 1, KindSet)
	if Compare(a, b) >= 0 {
		t.Fatal("a should sort before b")
	}
	if Compare(b, a) <= 0 {
		t.Fatal("b should sort after a")
	}
	if Compare(a, a) != 0 {
		t.Fatal("a should equal a")
	}
}

func TestCompareSeqDescending(t *testing.T) {
	newer := Make([]byte("k"), 10, KindSet)
	older := Make([]byte("k"), 5, KindSet)
	if Compare(newer, older) >= 0 {
		t.Fatal("newer seq must sort before older for the same user key")
	}
}

func TestCompareKindTieBreak(t *testing.T) {
	set := Make([]byte("k"), 7, KindSet)
	del := Make([]byte("k"), 7, KindDelete)
	// Higher kind value sorts first (descending trailer).
	if Compare(set, del) >= 0 {
		t.Fatal("set (kind 1) must sort before delete (kind 0) at equal seq")
	}
}

func TestCompareOrderProperty(t *testing.T) {
	// For random pairs: user key order dominates; equal user keys
	// order by descending seq.
	f := func(u1, u2 []byte, s1, s2 uint64) bool {
		s1 &= MaxSeq
		s2 &= MaxSeq
		a := Make(u1, s1, KindSet)
		b := Make(u2, s2, KindSet)
		c := Compare(a, b)
		switch bytes.Compare(u1, u2) {
		case -1:
			return c < 0
		case 1:
			return c > 0
		default:
			switch {
			case s1 > s2:
				return c < 0
			case s1 < s2:
				return c > 0
			default:
				return c == 0
			}
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSearchKeyFindsNewestVisible(t *testing.T) {
	// Entries for "k" at seqs 5, 10, 15. SearchKey(k, 12) must sort
	// after seq-15 entries and before seq-10 entries.
	e5 := Make([]byte("k"), 5, KindSet)
	e10 := Make([]byte("k"), 10, KindSet)
	e15 := Make([]byte("k"), 15, KindSet)
	sk := SearchKey([]byte("k"), 12)
	if Compare(e15, sk) >= 0 {
		t.Fatal("entry seq 15 must sort before SearchKey(12)")
	}
	if Compare(sk, e10) >= 0 {
		t.Fatal("SearchKey(12) must sort before entry seq 10")
	}
	if Compare(sk, e5) >= 0 {
		t.Fatal("SearchKey(12) must sort before entry seq 5")
	}
}

func TestValid(t *testing.T) {
	if Valid([]byte("short")) {
		t.Fatal("5 bytes is not a valid internal key")
	}
	if !Valid(Make(nil, 0, KindSet)) {
		t.Fatal("trailer-only key is valid (empty user key)")
	}
}

func TestStringFormat(t *testing.T) {
	s := String(Make([]byte("k"), 3, KindDelete))
	if s != `"k"#3,DEL` {
		t.Fatalf("String = %s", s)
	}
	if String([]byte("x")) == "" {
		t.Fatal("invalid key should still format")
	}
}
