// Package keys defines the internal key encoding shared by the
// memtable, WAL, SSTs and iterators.
//
// An internal key is the user key followed by an 8-byte little-endian
// trailer packing a 56-bit sequence number and an 8-bit kind:
//
//	| user key ... | (seq << 8) | kind, 8 bytes LE |
//
// Internal keys order by user key ascending, then by sequence number
// descending (newer first), then by kind descending. This matches the
// LevelDB/RocksDB internal comparator and is what lets a scan see the
// newest visible version of each user key first.
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Kind discriminates what an entry represents.
type Kind uint8

const (
	// KindDelete is a tombstone.
	KindDelete Kind = 0
	// KindSet is a key/value insertion.
	KindSet Kind = 1
)

// MaxSeq is the largest representable sequence number.
const MaxSeq = uint64(1)<<56 - 1

// TrailerLen is the length of the internal key trailer.
const TrailerLen = 8

// Make builds an internal key from its parts.
func Make(userKey []byte, seq uint64, kind Kind) []byte {
	ik := make([]byte, 0, len(userKey)+TrailerLen)
	ik = append(ik, userKey...)
	return AppendTrailer(ik, seq, kind)
}

// AppendTrailer appends the (seq, kind) trailer to dst.
func AppendTrailer(dst []byte, seq uint64, kind Kind) []byte {
	var t [TrailerLen]byte
	binary.LittleEndian.PutUint64(t[:], seq<<8|uint64(kind))
	return append(dst, t[:]...)
}

// UserKey returns the user-key portion of an internal key.
func UserKey(ik []byte) []byte {
	return ik[:len(ik)-TrailerLen]
}

// Trailer returns the sequence number and kind of an internal key.
func Trailer(ik []byte) (seq uint64, kind Kind) {
	t := binary.LittleEndian.Uint64(ik[len(ik)-TrailerLen:])
	return t >> 8, Kind(t & 0xff)
}

// Valid reports whether ik is long enough to be an internal key.
func Valid(ik []byte) bool { return len(ik) >= TrailerLen }

// Compare orders two internal keys: user key ascending, then trailer
// (seq<<8|kind) descending.
func Compare(a, b []byte) int {
	ua, ub := UserKey(a), UserKey(b)
	if c := bytes.Compare(ua, ub); c != 0 {
		return c
	}
	ta := binary.LittleEndian.Uint64(a[len(a)-TrailerLen:])
	tb := binary.LittleEndian.Uint64(b[len(b)-TrailerLen:])
	switch {
	case ta > tb:
		return -1
	case ta < tb:
		return 1
	}
	return 0
}

// CompareUserKeys orders two user keys (plain byte order).
func CompareUserKeys(a, b []byte) int { return bytes.Compare(a, b) }

// SearchKey returns the internal key that sorts before every entry for
// userKey with sequence ≤ seq — i.e. the seek target that finds the
// newest visible version.
func SearchKey(userKey []byte, seq uint64) []byte {
	return Make(userKey, seq, Kind(0xff))
}

// String formats an internal key for debugging.
func String(ik []byte) string {
	if !Valid(ik) {
		return fmt.Sprintf("invalid(%q)", ik)
	}
	seq, kind := Trailer(ik)
	k := "SET"
	if kind == KindDelete {
		k = "DEL"
	}
	return fmt.Sprintf("%q#%d,%s", UserKey(ik), seq, k)
}
