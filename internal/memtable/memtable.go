// Package memtable implements the in-memory write buffer: a thin
// layer over the concurrent skiplist that speaks (user key, sequence,
// kind) and tracks approximate memory usage against a byte budget.
//
// The paper's Finding #2/Analysis #2 hinge on memtable size: a larger
// memtable yields fewer, larger Level-0 files (good for reads) but a
// deeper skiplist and therefore costlier inserts (bad for writes).
package memtable

import (
	"xpointdb/internal/keys"
	"xpointdb/internal/skiplist"
)

// Memtable buffers recent writes in a skiplist keyed by internal key.
type Memtable struct {
	list *skiplist.SkipList
	// budget is the soft size limit; the engine switches the
	// memtable to immutable once exceeded.
	budget int64
}

// New returns an empty memtable with the given byte budget.
func New(budget int64) *Memtable {
	return &Memtable{list: skiplist.New(), budget: budget}
}

// Add inserts an entry. Safe for concurrent use (CAS skiplist insert).
// It returns the number of skiplist levels touched — a proxy for
// insert work used by the CPU cost model (insert cost grows with
// log(table size), the effect behind paper Figure 12).
func (m *Memtable) Add(seq uint64, kind keys.Kind, userKey, value []byte) {
	m.list.Insert(keys.Make(userKey, seq, kind), value)
}

// Get looks up the newest version of userKey visible at snapshot seq.
// Returns:
//   - value, true, false — found a live value
//   - nil, true, true — found a tombstone (key deleted)
//   - nil, false, _ — key not in this memtable
//
// cmps reports the key comparisons performed, for CPU cost accounting.
func (m *Memtable) Get(userKey []byte, seq uint64) (value []byte, found, deleted bool, cmps int) {
	it := m.list.NewIterator()
	it.SeekGE(keys.SearchKey(userKey, seq))
	cmps = it.Cmps
	if !it.Valid() {
		return nil, false, false, cmps
	}
	ik := it.Key()
	if keys.CompareUserKeys(keys.UserKey(ik), userKey) != 0 {
		return nil, false, false, cmps
	}
	_, kind := keys.Trailer(ik)
	if kind == keys.KindDelete {
		return nil, true, true, cmps
	}
	return it.Value(), true, false, cmps
}

// ApproximateSize returns the approximate memory footprint in bytes.
func (m *Memtable) ApproximateSize() int64 { return m.list.ApproximateSize() }

// Budget returns the configured byte budget.
func (m *Memtable) Budget() int64 { return m.budget }

// Full reports whether the memtable has reached its budget.
func (m *Memtable) Full() bool { return m.list.ApproximateSize() >= m.budget }

// Empty reports whether no entries have been added.
func (m *Memtable) Empty() bool { return m.list.Empty() }

// Count returns the number of entries.
func (m *Memtable) Count() int64 { return m.list.Count() }

// Iter walks the memtable in internal-key order.
type Iter struct {
	it *skiplist.Iterator
}

// NewIter returns an iterator over the memtable.
func (m *Memtable) NewIter() *Iter { return &Iter{it: m.list.NewIterator()} }

// Valid reports whether the iterator is positioned at an entry.
func (i *Iter) Valid() bool { return i.it.Valid() }

// Key returns the current internal key.
func (i *Iter) Key() []byte { return i.it.Key() }

// Value returns the current value.
func (i *Iter) Value() []byte { return i.it.Value() }

// Next advances the iterator.
func (i *Iter) Next() { i.it.Next() }

// SeekToFirst positions at the first entry.
func (i *Iter) SeekToFirst() { i.it.SeekToFirst() }

// SeekGE positions at the first entry with internal key ≥ target.
func (i *Iter) SeekGE(target []byte) { i.it.SeekGE(target) }

// SeekLT positions at the last entry with internal key < target.
func (i *Iter) SeekLT(target []byte) { i.it.SeekLT(target) }

// SeekToLast positions at the last entry.
func (i *Iter) SeekToLast() { i.it.SeekToLast() }

// Prev moves to the previous entry.
func (i *Iter) Prev() { i.it.Prev() }
