package memtable

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"xpointdb/internal/keys"
)

func TestGetNewestVisible(t *testing.T) {
	m := New(1 << 20)
	m.Add(1, keys.KindSet, []byte("k"), []byte("v1"))
	m.Add(5, keys.KindSet, []byte("k"), []byte("v5"))
	m.Add(9, keys.KindSet, []byte("k"), []byte("v9"))

	v, found, deleted, _ := m.Get([]byte("k"), keys.MaxSeq)
	if !found || deleted || string(v) != "v9" {
		t.Fatalf("Get latest = %q %v %v", v, found, deleted)
	}
	v, found, _, _ = m.Get([]byte("k"), 6)
	if !found || string(v) != "v5" {
		t.Fatalf("Get at snapshot 6 = %q", v)
	}
	v, found, _, _ = m.Get([]byte("k"), 1)
	if !found || string(v) != "v1" {
		t.Fatalf("Get at snapshot 1 = %q", v)
	}
	_, found, _, _ = m.Get([]byte("k"), 0)
	if found {
		t.Fatal("Get below all seqs should miss")
	}
}

func TestGetTombstone(t *testing.T) {
	m := New(1 << 20)
	m.Add(1, keys.KindSet, []byte("k"), []byte("v"))
	m.Add(2, keys.KindDelete, []byte("k"), nil)
	_, found, deleted, _ := m.Get([]byte("k"), keys.MaxSeq)
	if !found || !deleted {
		t.Fatalf("tombstone: found=%v deleted=%v", found, deleted)
	}
	// Older snapshot still sees the value.
	v, found, deleted, _ := m.Get([]byte("k"), 1)
	if !found || deleted || string(v) != "v" {
		t.Fatalf("pre-delete snapshot = %q %v %v", v, found, deleted)
	}
}

func TestGetAbsent(t *testing.T) {
	m := New(1 << 20)
	m.Add(1, keys.KindSet, []byte("b"), []byte("v"))
	if _, found, _, _ := m.Get([]byte("a"), keys.MaxSeq); found {
		t.Fatal("absent key found (before)")
	}
	if _, found, _, _ := m.Get([]byte("c"), keys.MaxSeq); found {
		t.Fatal("absent key found (after)")
	}
}

func TestFullAndBudget(t *testing.T) {
	m := New(1000)
	if m.Full() {
		t.Fatal("empty memtable full")
	}
	m.Add(1, keys.KindSet, []byte("k"), make([]byte, 2000))
	if !m.Full() {
		t.Fatalf("oversized memtable not full: size=%d", m.ApproximateSize())
	}
	if m.Budget() != 1000 {
		t.Fatalf("Budget = %d", m.Budget())
	}
}

func TestIterSorted(t *testing.T) {
	m := New(1 << 20)
	for i := 99; i >= 0; i-- {
		m.Add(uint64(100-i), keys.KindSet, []byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	it := m.NewIter()
	n := 0
	var prev []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
			t.Fatal("iteration out of order")
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != 100 {
		t.Fatalf("iterated %d", n)
	}
}

func TestIterSeekGE(t *testing.T) {
	m := New(1 << 20)
	m.Add(1, keys.KindSet, []byte("aa"), nil)
	m.Add(2, keys.KindSet, []byte("cc"), nil)
	it := m.NewIter()
	it.SeekGE(keys.SearchKey([]byte("bb"), keys.MaxSeq))
	if !it.Valid() || !bytes.Equal(keys.UserKey(it.Key()), []byte("cc")) {
		t.Fatalf("SeekGE landed on %s", keys.String(it.Key()))
	}
}

func TestCountAndEmpty(t *testing.T) {
	m := New(1 << 20)
	if !m.Empty() {
		t.Fatal("new memtable not empty")
	}
	m.Add(1, keys.KindSet, []byte("a"), nil)
	m.Add(2, keys.KindDelete, []byte("a"), nil)
	if m.Empty() || m.Count() != 2 {
		t.Fatalf("Count = %d", m.Count())
	}
}

func TestSnapshotVisibilityProperty(t *testing.T) {
	// For any set of versions of one key, Get(key, snap) returns the
	// newest version with seq ≤ snap.
	f := func(seqsRaw []uint16, snapRaw uint16) bool {
		if len(seqsRaw) == 0 {
			return true
		}
		m := New(1 << 20)
		seen := map[uint64]bool{}
		var max uint64
		for _, s := range seqsRaw {
			seq := uint64(s) + 1
			if seen[seq] {
				continue
			}
			seen[seq] = true
			m.Add(seq, keys.KindSet, []byte("k"), []byte(fmt.Sprintf("v%d", seq)))
			if seq > max {
				max = seq
			}
		}
		snap := uint64(snapRaw)
		var want uint64
		for seq := range seen {
			if seq <= snap && seq > want {
				want = seq
			}
		}
		v, found, _, _ := m.Get([]byte("k"), snap)
		if want == 0 {
			return !found
		}
		return found && string(v) == fmt.Sprintf("v%d", want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
