// Package skiplist implements the concurrent skiplist underlying the
// memtable, modeled on RocksDB's InlineSkipList: lock-free CAS inserts,
// wait-free reads. Concurrent inserts are what make the engine's
// pipelined write path (paper Algorithm 2) able to apply batches from
// several memtable writers in parallel.
//
// Keys are internal keys (package keys) and are unique by construction
// (every write gets a fresh sequence number), so Insert never sees a
// duplicate.
package skiplist

import (
	"sync/atomic"

	"xpointdb/internal/keys"
)

const (
	maxHeight = 12
	// branching controls tower height distribution: a node reaches
	// level h+1 with probability 1/branching.
	branching = 4
)

type node struct {
	key   []byte
	value []byte
	// next holds one atomic forward pointer per level, length equals
	// the node's height.
	next []atomic.Pointer[node]
}

func newNode(key, value []byte, height int) *node {
	return &node{key: key, value: value, next: make([]atomic.Pointer[node], height)}
}

// SkipList is a concurrent ordered map from internal key to value.
// Create one with New.
type SkipList struct {
	head   *node
	height atomic.Int32 // current max tower height in use
	size   atomic.Int64 // approximate memory footprint in bytes
	count  atomic.Int64
	// rngState seeds a lock-free splitmix64 stream for tower heights.
	rngState atomic.Uint64
}

// New returns an empty skiplist.
func New() *SkipList {
	s := &SkipList{head: newNode(nil, nil, maxHeight)}
	s.height.Store(1)
	s.rngState.Store(0x9e3779b97f4a7c15)
	return s
}

// nodeOverhead approximates per-node bookkeeping for memory accounting.
const nodeOverhead = 64

// Insert adds an internal key and value. The key must not already be
// present. Safe for concurrent use with other Inserts and readers. The
// slices are retained; callers must not modify them afterwards.
func (s *SkipList) Insert(key, value []byte) {
	height := s.randomHeight()
	for {
		h := s.height.Load()
		if height <= int(h) || s.height.CompareAndSwap(h, int32(height)) {
			break
		}
	}

	x := newNode(key, value, height)
	for level := 0; level < height; level++ {
		for {
			prev, next := s.findSpliceForLevel(key, s.head, level)
			x.next[level].Store(next)
			if prev.next[level].CompareAndSwap(next, x) {
				break
			}
			// Lost a race at this level; re-search and retry.
		}
	}
	s.size.Add(int64(len(key)+len(value)) + nodeOverhead)
	s.count.Add(1)
}

// findSpliceForLevel walks level starting at start and returns the pair
// (prev, next) such that prev.key < key ≤ next.key at that level.
func (s *SkipList) findSpliceForLevel(key []byte, start *node, level int) (prev, next *node) {
	prev = start
	for {
		next = prev.next[level].Load()
		if next == nil || keys.Compare(next.key, key) >= 0 {
			return prev, next
		}
		prev = next
	}
}

// findGE returns the first node with key ≥ target, and the number of
// key comparisons performed (for the CPU cost model).
func (s *SkipList) findGE(target []byte) (*node, int) {
	cmps := 0
	x := s.head
	level := int(s.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			cmps++
			if keys.Compare(next.key, target) < 0 {
				x = next
				continue
			}
		}
		if level == 0 {
			return next, cmps
		}
		level--
	}
}

// findLT returns the last node with key < target (nil if none), and
// the comparison count.
func (s *SkipList) findLT(target []byte) (*node, int) {
	cmps := 0
	x := s.head
	level := int(s.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			cmps++
			if keys.Compare(next.key, target) < 0 {
				x = next
				continue
			}
		}
		if level == 0 {
			if x == s.head {
				return nil, cmps
			}
			return x, cmps
		}
		level--
	}
}

// findLast returns the last node in the list (nil if empty).
func (s *SkipList) findLast() *node {
	x := s.head
	level := int(s.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			if x == s.head {
				return nil
			}
			return x
		}
		level--
	}
}

// Get returns the value stored under the exact internal key, with ok
// reporting presence.
func (s *SkipList) Get(key []byte) (value []byte, ok bool) {
	n, _ := s.findGE(key)
	if n != nil && keys.Compare(n.key, key) == 0 {
		return n.value, true
	}
	return nil, false
}

// Empty reports whether the list has no entries.
func (s *SkipList) Empty() bool { return s.count.Load() == 0 }

// Count returns the number of entries.
func (s *SkipList) Count() int64 { return s.count.Load() }

// ApproximateSize returns the approximate memory footprint in bytes.
func (s *SkipList) ApproximateSize() int64 { return s.size.Load() }

func (s *SkipList) randomHeight() int {
	// splitmix64 on an atomic counter: thread-safe without locks.
	v := s.rngState.Add(0x9e3779b97f4a7c15)
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31

	h := 1
	for h < maxHeight && v%branching == 0 {
		h++
		v /= branching
	}
	return h
}

// Iterator walks the list in ascending internal-key order. It is valid
// to use concurrently with inserts; an iterator sees entries inserted
// before (and possibly during) the walk.
type Iterator struct {
	list *SkipList
	node *node
	// Cmps accumulates key comparisons performed by seeks, feeding
	// the CPU cost model.
	Cmps int
}

// NewIterator returns an iterator positioned before the first entry.
func (s *SkipList) NewIterator() *Iterator { return &Iterator{list: s} }

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.node != nil }

// Key returns the current internal key. Valid must be true.
func (it *Iterator) Key() []byte { return it.node.key }

// Value returns the current value. Valid must be true.
func (it *Iterator) Value() []byte { return it.node.value }

// Next advances to the next entry.
func (it *Iterator) Next() {
	it.node = it.node.next[0].Load()
}

// SeekToFirst positions at the first entry.
func (it *Iterator) SeekToFirst() {
	it.node = it.list.head.next[0].Load()
}

// SeekGE positions at the first entry with key ≥ target.
func (it *Iterator) SeekGE(target []byte) {
	n, cmps := it.list.findGE(target)
	it.node = n
	it.Cmps += cmps
}

// SeekLT positions at the last entry with key < target.
func (it *Iterator) SeekLT(target []byte) {
	n, cmps := it.list.findLT(target)
	it.node = n
	it.Cmps += cmps
}

// SeekToLast positions at the last entry.
func (it *Iterator) SeekToLast() {
	it.node = it.list.findLast()
}

// Prev moves to the previous entry. A singly-linked skiplist steps
// backward with an O(log n) re-seek, as in LevelDB.
func (it *Iterator) Prev() {
	if it.node == nil {
		return
	}
	it.SeekLT(it.node.key)
}
