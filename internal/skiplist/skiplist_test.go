package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"xpointdb/internal/keys"
)

func ik(user string, seq uint64) []byte {
	return keys.Make([]byte(user), seq, keys.KindSet)
}

func TestEmptyList(t *testing.T) {
	s := New()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("new list should be empty")
	}
	it := s.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("iterator valid on empty list")
	}
	if _, ok := s.Get(ik("a", 1)); ok {
		t.Fatal("Get on empty list returned ok")
	}
}

func TestInsertAndGet(t *testing.T) {
	s := New()
	s.Insert(ik("b", 2), []byte("vb"))
	s.Insert(ik("a", 1), []byte("va"))
	s.Insert(ik("c", 3), []byte("vc"))
	if v, ok := s.Get(ik("b", 2)); !ok || string(v) != "vb" {
		t.Fatalf("Get b = %q, %v", v, ok)
	}
	if _, ok := s.Get(ik("b", 3)); ok {
		t.Fatal("Get with wrong seq matched")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestIterationSorted(t *testing.T) {
	s := New()
	var want [][]byte
	for i := 0; i < 1000; i++ {
		k := ik(fmt.Sprintf("key-%05d", rand.Intn(100000)), uint64(i+1))
		want = append(want, k)
		s.Insert(k, []byte("v"))
	}
	sort.Slice(want, func(i, j int) bool { return keys.Compare(want[i], want[j]) < 0 })

	it := s.NewIterator()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), want[i]) {
			t.Fatalf("position %d: got %s want %s", i, keys.String(it.Key()), keys.String(want[i]))
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("iterated %d of %d", i, len(want))
	}
}

func TestSeekGE(t *testing.T) {
	s := New()
	for i := 0; i < 100; i += 10 {
		s.Insert(ik(fmt.Sprintf("k%02d", i), 1), []byte("v"))
	}
	it := s.NewIterator()
	it.SeekGE(ik("k15", keys.MaxSeq))
	if !it.Valid() || !bytes.Equal(keys.UserKey(it.Key()), []byte("k20")) {
		t.Fatalf("SeekGE(k15) = %s", keys.String(it.Key()))
	}
	it.SeekGE(ik("k99", 1))
	if it.Valid() {
		t.Fatal("SeekGE past end should be invalid")
	}
	it.SeekGE(ik("", 0))
	if !it.Valid() || !bytes.Equal(keys.UserKey(it.Key()), []byte("k00")) {
		t.Fatal("SeekGE to before-first failed")
	}
}

func TestVersionOrderNewestFirst(t *testing.T) {
	s := New()
	s.Insert(ik("k", 1), []byte("old"))
	s.Insert(ik("k", 5), []byte("new"))
	s.Insert(ik("k", 3), []byte("mid"))
	it := s.NewIterator()
	it.SeekGE(keys.SearchKey([]byte("k"), keys.MaxSeq))
	if !it.Valid() || string(it.Value()) != "new" {
		t.Fatalf("newest-first order broken: %q", it.Value())
	}
	it.SeekGE(keys.SearchKey([]byte("k"), 4))
	if !it.Valid() || string(it.Value()) != "mid" {
		t.Fatalf("snapshot seek broken: %q", it.Value())
	}
}

func TestApproximateSizeGrows(t *testing.T) {
	s := New()
	if s.ApproximateSize() != 0 {
		t.Fatal("empty list has nonzero size")
	}
	s.Insert(ik("key", 1), make([]byte, 1000))
	if s.ApproximateSize() < 1000 {
		t.Fatalf("size %d too small", s.ApproximateSize())
	}
}

func TestConcurrentInserts(t *testing.T) {
	s := New()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Insert(ik(fmt.Sprintf("w%d-%06d", w, i), uint64(w*per+i+1)), []byte("v"))
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count(), workers*per)
	}
	// Verify full sorted order and completeness.
	it := s.NewIterator()
	n := 0
	var prev []byte
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("order violated at %d", n)
		}
		prev = append(prev[:0], it.Key()...)
		n++
	}
	if n != workers*per {
		t.Fatalf("iterated %d, want %d", n, workers*per)
	}
}

func TestConcurrentInsertAndRead(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s.Insert(ik(fmt.Sprintf("w%d-%06d", w, i), uint64(w*2000+i+1)), []byte("v"))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Readers must never observe a broken structure.
		for i := 0; i < 200; i++ {
			it := s.NewIterator()
			var prev []byte
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
					t.Error("order violated during concurrent reads")
					return
				}
				prev = append(prev[:0], it.Key()...)
			}
		}
	}()
	wg.Wait()
}

func TestSortedInvariantProperty(t *testing.T) {
	f := func(users []string, seqBase uint16) bool {
		s := New()
		for i, u := range users {
			s.Insert(keys.Make([]byte(u), uint64(seqBase)+uint64(i)+1, keys.KindSet), nil)
		}
		it := s.NewIterator()
		var prev []byte
		count := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if prev != nil && keys.Compare(prev, it.Key()) >= 0 {
				return false
			}
			prev = append([]byte(nil), it.Key()...)
			count++
		}
		return count == len(users)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomHeightDistribution(t *testing.T) {
	s := New()
	counts := make([]int, maxHeight+1)
	for i := 0; i < 100000; i++ {
		counts[s.randomHeight()]++
	}
	if counts[1] < 60000 || counts[1] > 90000 {
		t.Fatalf("height-1 fraction out of range: %d", counts[1])
	}
	for h := 2; h <= 4; h++ {
		if counts[h] == 0 {
			t.Fatalf("no towers of height %d in 100k draws", h)
		}
		// Each level should be roughly 1/branching of the previous.
		ratio := float64(counts[h]) / float64(counts[h-1])
		if ratio < 0.1 || ratio > 0.5 {
			t.Fatalf("height %d/%d ratio %.3f outside [0.1, 0.5]", h, h-1, ratio)
		}
	}
}
