package skiplist

import (
	"bytes"
	"fmt"
	"testing"

	"xpointdb/internal/keys"
)

func TestSeekToLastAndPrev(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Insert(ik(fmt.Sprintf("k%03d", i), uint64(i+1)), []byte("v"))
	}
	it := s.NewIterator()
	it.SeekToLast()
	if !it.Valid() || !bytes.Equal(keys.UserKey(it.Key()), []byte("k099")) {
		t.Fatalf("SeekToLast = %s", keys.String(it.Key()))
	}
	for i := 98; i >= 0; i-- {
		it.Prev()
		if !it.Valid() || !bytes.Equal(keys.UserKey(it.Key()), []byte(fmt.Sprintf("k%03d", i))) {
			t.Fatalf("Prev at %d = %s", i, keys.String(it.Key()))
		}
	}
	it.Prev()
	if it.Valid() {
		t.Fatal("Prev before first valid")
	}
}

func TestSeekLT(t *testing.T) {
	s := New()
	for i := 0; i < 100; i += 10 {
		s.Insert(ik(fmt.Sprintf("k%02d", i), 1), []byte("v"))
	}
	it := s.NewIterator()
	it.SeekLT(ik("k55", keys.MaxSeq))
	if !it.Valid() || !bytes.Equal(keys.UserKey(it.Key()), []byte("k50")) {
		t.Fatalf("SeekLT(k55) = %s", keys.String(it.Key()))
	}
	it.SeekLT(ik("k00", keys.MaxSeq))
	if it.Valid() {
		t.Fatal("SeekLT before first valid")
	}
	it.SeekLT(ik("zzz", 1))
	if !it.Valid() || !bytes.Equal(keys.UserKey(it.Key()), []byte("k90")) {
		t.Fatalf("SeekLT(zzz) = %s", keys.String(it.Key()))
	}
}

func TestSeekToLastEmpty(t *testing.T) {
	s := New()
	it := s.NewIterator()
	it.SeekToLast()
	if it.Valid() {
		t.Fatal("SeekToLast on empty list valid")
	}
}

func TestForwardBackwardAgree(t *testing.T) {
	s := New()
	for i := 0; i < 500; i++ {
		s.Insert(ik(fmt.Sprintf("key-%06d", i*7%500), uint64(i+1)), nil)
	}
	var fwd [][]byte
	it := s.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
		fwd = append(fwd, append([]byte(nil), it.Key()...))
	}
	i := len(fwd) - 1
	for it.SeekToLast(); it.Valid(); it.Prev() {
		if i < 0 || !bytes.Equal(it.Key(), fwd[i]) {
			t.Fatalf("backward mismatch at %d", i)
		}
		i--
	}
	if i != -1 {
		t.Fatalf("backward scan saw %d fewer entries", i+1)
	}
}
