package sim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xpointdb/internal/clock"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := New(t0)
	k.Run(func() {
		k.Sleep(5 * time.Second)
	})
	if got := k.Elapsed(); got != 5*time.Second {
		t.Fatalf("elapsed = %v, want 5s", got)
	}
	if got := k.Now(); !got.Equal(t0.Add(5 * time.Second)) {
		t.Fatalf("Now = %v", got)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	k := New(t0)
	k.Run(func() {
		k.Sleep(0)
		k.Sleep(-time.Second)
	})
	if got := k.Elapsed(); got != 0 {
		t.Fatalf("elapsed = %v, want 0", got)
	}
}

func TestVirtualTimeIsFast(t *testing.T) {
	// A year of virtual time should simulate in well under a second.
	k := New(t0)
	wall := time.Now()
	k.Run(func() {
		for i := 0; i < 365; i++ {
			k.Sleep(24 * time.Hour)
		}
	})
	if got := k.Elapsed(); got != 365*24*time.Hour {
		t.Fatalf("elapsed = %v", got)
	}
	if w := time.Since(wall); w > 5*time.Second {
		t.Fatalf("simulation took %v of wall time", w)
	}
}

func TestParallelSleepersOverlap(t *testing.T) {
	// N processes each sleeping 1s concurrently => total virtual time 1s.
	k := New(t0)
	var wg sync.WaitGroup
	k.Run(func() {
		m := k.NewMutex()
		c := k.NewCond(m)
		remaining := 8
		for i := 0; i < 8; i++ {
			wg.Add(1)
			k.Go("sleeper", func() {
				defer wg.Done()
				k.Sleep(time.Second)
				m.Lock()
				remaining--
				if remaining == 0 {
					c.Broadcast()
				}
				m.Unlock()
			})
		}
		m.Lock()
		for remaining > 0 {
			c.Wait()
		}
		m.Unlock()
		wg.Wait()
	})
	if got := k.Elapsed(); got != time.Second {
		t.Fatalf("elapsed = %v, want 1s (sleeps must overlap)", got)
	}
}

func TestSequentialSleepersAccumulate(t *testing.T) {
	k := New(t0)
	k.Run(func() {
		for i := 0; i < 10; i++ {
			k.Sleep(100 * time.Millisecond)
		}
	})
	if got := k.Elapsed(); got != time.Second {
		t.Fatalf("elapsed = %v, want 1s", got)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	k := New(t0)
	var woken int32
	k.Run(func() {
		m := k.NewMutex()
		c := k.NewCond(m)
		ready := k.NewCond(m)
		waiting := 0
		for i := 0; i < 3; i++ {
			k.Go("waiter", func() {
				m.Lock()
				waiting++
				ready.Signal()
				c.Wait()
				atomic.AddInt32(&woken, 1)
				m.Unlock()
			})
		}
		m.Lock()
		for waiting < 3 {
			ready.Wait()
		}
		m.Unlock()

		k.Sleep(time.Millisecond)
		c.Signal()
		k.Sleep(time.Millisecond)
		if n := atomic.LoadInt32(&woken); n != 1 {
			t.Errorf("after one Signal, woken = %d, want 1", n)
		}
		c.Broadcast()
		k.Sleep(time.Millisecond)
		if n := atomic.LoadInt32(&woken); n != 3 {
			t.Errorf("after Broadcast, woken = %d, want 3", n)
		}
	})
}

func TestCondWaitReleasesTimeToSleepers(t *testing.T) {
	// main waits on a cond while a worker sleeps 2s then signals;
	// virtual time must advance to 2s (the cond waiter must not be
	// counted as runnable).
	k := New(t0)
	k.Run(func() {
		m := k.NewMutex()
		c := k.NewCond(m)
		done := false
		k.Go("worker", func() {
			k.Sleep(2 * time.Second)
			m.Lock()
			done = true
			c.Signal()
			m.Unlock()
		})
		m.Lock()
		for !done {
			c.Wait()
		}
		m.Unlock()
	})
	if got := k.Elapsed(); got != 2*time.Second {
		t.Fatalf("elapsed = %v, want 2s", got)
	}
}

func TestTimerOrdering(t *testing.T) {
	// Wakeups must happen in timestamp order regardless of creation order.
	k := New(t0)
	var order []int
	var mu sync.Mutex
	k.Run(func() {
		var wg sync.WaitGroup
		delays := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
		ids := []int{3, 1, 2}
		for i := range delays {
			wg.Add(1)
			d, id := delays[i], ids[i]
			k.Go("p", func() {
				defer wg.Done()
				k.Sleep(d)
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			})
		}
		// Park main until all finish: sleep longer than all of them.
		k.Sleep(100 * time.Millisecond)
		wg.Wait()
	})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wake order = %v, want [1 2 3]", order)
	}
}

func TestDeadlockPanics(t *testing.T) {
	k := New(t0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on deadlock")
		}
	}()
	k.Run(func() {
		m := k.NewMutex()
		c := k.NewCond(m)
		m.Lock()
		c.Wait() // nobody will ever signal
		m.Unlock()
	})
}

func TestOnIdleHookSuppressesPanic(t *testing.T) {
	// Main waits on a cond nobody signals; instead of panicking, the
	// OnIdle hook injects the signal (modelling an external event
	// source that is invisible to the kernel).
	k := New(t0)
	m := k.NewMutex()
	c := k.NewCond(m)
	done := false
	var calls int32
	k.OnIdle = func() {
		atomic.AddInt32(&calls, 1)
		m.Lock()
		done = true
		c.Signal()
		m.Unlock()
	}
	k.Run(func() {
		m.Lock()
		for !done {
			c.Wait()
		}
		m.Unlock()
	})
	if atomic.LoadInt32(&calls) == 0 {
		t.Fatal("OnIdle was never called")
	}
}

func TestGoRunsTrackedProcess(t *testing.T) {
	k := New(t0)
	var ran int32
	k.Run(func() {
		m := k.NewMutex()
		c := k.NewCond(m)
		done := false
		k.Go("child", func() {
			atomic.StoreInt32(&ran, 1)
			m.Lock()
			done = true
			c.Signal()
			m.Unlock()
		})
		m.Lock()
		for !done {
			c.Wait()
		}
		m.Unlock()
	})
	if ran != 1 {
		t.Fatal("child process did not run")
	}
}

func TestKernelImplementsClock(t *testing.T) {
	var _ clock.Clock = New(t0)
}

func TestManyEventsSameInstant(t *testing.T) {
	k := New(t0)
	var n int32
	k.Run(func() {
		var wg sync.WaitGroup
		for i := 0; i < 100; i++ {
			wg.Add(1)
			k.Go("p", func() {
				defer wg.Done()
				k.Sleep(time.Second) // all wake at the same instant
				atomic.AddInt32(&n, 1)
			})
		}
		k.Sleep(2 * time.Second)
		wg.Wait()
	})
	if n != 100 {
		t.Fatalf("woke %d, want 100", n)
	}
	if got := k.Elapsed(); got != 2*time.Second {
		t.Fatalf("elapsed = %v", got)
	}
}

// TestNestedSleepChains stresses interleaved sleeps from many processes
// with differing periods and checks total virtual time.
func TestNestedSleepChains(t *testing.T) {
	k := New(t0)
	k.Run(func() {
		var wg sync.WaitGroup
		for p := 1; p <= 5; p++ {
			wg.Add(1)
			period := time.Duration(p) * time.Millisecond
			k.Go("chain", func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					k.Sleep(period)
				}
			})
		}
		k.Sleep(600 * time.Millisecond) // longest chain: 5ms*100 = 500ms
		wg.Wait()
	})
	if got := k.Elapsed(); got != 600*time.Millisecond {
		t.Fatalf("elapsed = %v, want 600ms", got)
	}
}
