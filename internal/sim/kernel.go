// Package sim implements a process-oriented discrete-event simulation
// kernel that satisfies clock.Clock.
//
// Every goroutine participating in the simulation is a "process" that
// the kernel tracks. Virtual time advances only when every tracked
// process is blocked — either sleeping (Sleep) or waiting on a kernel
// condition variable (Cond.Wait). At that point the kernel jumps the
// clock to the earliest pending timer event and wakes its process(es).
// Processes therefore execute arbitrary amounts of Go code in zero
// virtual time; durations are charged explicitly via Sleep, which is
// how device models and CPU cost models express service times.
//
// Rules for code running under the kernel:
//
//   - Spawn concurrent work with Clock.Go, never with the go statement.
//   - Never call Sleep or Cond.Wait while holding a Mutex other than
//     the one associated with that Cond.
//   - Finish (or unblock) all processes before the function passed to
//     Run returns, or their remaining virtual work is abandoned.
//
// Scheduling of processes that are runnable at the same virtual instant
// is delegated to the Go scheduler, so event *ordering* within one
// instant is not deterministic; timer firing order is (ties broken by
// creation sequence). Experiments that need reproducibility should rely
// on seeded workloads and aggregate statistics.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"time"

	"xpointdb/internal/clock"
)

// Kernel is a virtual-time clock.Clock. Create one with New, start
// processes with Go, and drive the simulation with Run.
type Kernel struct {
	mu     sync.Mutex
	start  time.Time
	now    time.Duration // virtual time elapsed since start
	active int           // processes currently runnable
	events eventHeap
	seq    uint64 // tiebreaker so equal-time events fire in creation order

	mainDone bool
	runPanic interface{}    // panic from the main process, rethrown by Run
	procs    map[string]int // live process names -> count, for diagnostics

	// OnIdle, if non-nil, is invoked (with the kernel unlocked) when
	// the simulation would otherwise be stuck: no runnable process
	// and no pending event while the main process is still running.
	// If nil, the kernel panics with a process dump, since this state
	// is a virtual-time deadlock.
	OnIdle func()
}

var _ clock.Clock = (*Kernel)(nil)

type event struct {
	at  time.Duration
	seq uint64
	ch  chan struct{}
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New returns a kernel whose virtual clock starts at start.
func New(start time.Time) *Kernel {
	return &Kernel{start: start, procs: make(map[string]int)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Time {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.start.Add(k.now)
}

// Elapsed returns the virtual time elapsed since the kernel started.
func (k *Kernel) Elapsed() time.Duration {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.now
}

// Sleep blocks the calling process for d of virtual time. It must only
// be called from a process tracked by the kernel (one started by Go or
// Run).
func (k *Kernel) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	k.mu.Lock()
	ch := make(chan struct{})
	heap.Push(&k.events, event{at: k.now + d, seq: k.seq, ch: ch})
	k.seq++
	k.blockLocked()
	k.mu.Unlock()
	<-ch
}

// Go starts fn as a new tracked process.
func (k *Kernel) Go(name string, fn func()) {
	k.mu.Lock()
	k.active++
	k.procs[name]++
	k.mu.Unlock()
	go func() {
		defer k.exit(name)
		fn()
	}()
}

// Run executes main as the root process and returns when it does.
// Virtual time during the call advances per the simulation rules. A
// panic inside the main process (including a simulation deadlock) is
// rethrown on the caller's goroutine. Run must not be called
// concurrently with itself.
func (k *Kernel) Run(main func()) {
	k.mu.Lock()
	k.active++
	k.procs["main"]++
	k.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				k.mu.Lock()
				k.runPanic = r
				k.mu.Unlock()
			}
			k.mu.Lock()
			k.mainDone = true
			k.mu.Unlock()
			k.exit("main")
		}()
		main()
	}()
	<-done
	k.mu.Lock()
	r := k.runPanic
	k.runPanic = nil
	k.mu.Unlock()
	if r != nil {
		panic(r)
	}
}

func (k *Kernel) exit(name string) {
	k.mu.Lock()
	k.procs[name]--
	if k.procs[name] <= 0 {
		delete(k.procs, name)
	}
	k.active--
	k.advanceLocked()
	k.mu.Unlock()
}

// blockLocked marks the calling process as no longer runnable and, if
// that was the last runnable process, advances virtual time.
func (k *Kernel) blockLocked() {
	k.active--
	k.advanceLocked()
}

// wakeLocked marks one process runnable again and releases it.
func (k *Kernel) wakeLocked(ch chan struct{}) {
	k.active++
	close(ch)
}

// advanceLocked fires the earliest pending event(s) if no process is
// runnable. Called with k.mu held.
func (k *Kernel) advanceLocked() {
	if k.active > 0 {
		return
	}
	if len(k.events) == 0 {
		if k.mainDone {
			return // normal wind-down; leftover processes stay parked
		}
		if k.OnIdle != nil {
			f := k.OnIdle
			k.mu.Unlock()
			f()
			k.mu.Lock()
			return
		}
		// Release the kernel lock before panicking so deferred
		// cleanup (e.g. Run's exit) can still take it.
		msg := "sim: deadlock — no runnable process and no pending event; live processes: " + k.procDumpLocked()
		k.mu.Unlock()
		panic(msg)
	}
	t := k.events[0].at
	k.now = t
	for len(k.events) > 0 && k.events[0].at == t {
		e := heap.Pop(&k.events).(event)
		k.wakeLocked(e.ch)
	}
}

func (k *Kernel) procDumpLocked() string {
	names := make([]string, 0, len(k.procs))
	for n, c := range k.procs {
		names = append(names, fmt.Sprintf("%s×%d", n, c))
	}
	sort.Strings(names)
	return fmt.Sprint(names)
}

// NewMutex returns a mutex usable by simulation processes. It is a
// plain sync.Mutex: a process blocked on it is still counted as
// runnable, which is correct as long as holders never sleep or wait
// while holding it (the package-level discipline).
func (k *Kernel) NewMutex() clock.Mutex { return &sync.Mutex{} }

// NewCond returns a virtual-time-aware condition variable bound to m.
func (k *Kernel) NewCond(m clock.Mutex) clock.Cond {
	return &cond{k: k, m: m}
}

// cond is a kernel-aware condition variable. Wait parks the process in
// kernel bookkeeping (so virtual time can advance past it); Signal and
// Broadcast make parked processes runnable again at the current
// instant.
type cond struct {
	k       *Kernel
	m       clock.Mutex
	waiters []chan struct{}
}

func (c *cond) Wait() {
	ch := make(chan struct{})
	c.k.mu.Lock()
	c.waiters = append(c.waiters, ch)
	c.k.mu.Unlock()
	// Release the user mutex before parking so that signalers (who
	// hold it by convention) can run. A Signal arriving between the
	// append above and blockLocked below is safe: it increments
	// active first, so the pair nets to zero and <-ch returns
	// immediately.
	c.m.Unlock()
	c.k.mu.Lock()
	c.k.blockLocked()
	c.k.mu.Unlock()
	<-ch
	c.m.Lock()
}

func (c *cond) Signal() {
	c.k.mu.Lock()
	if len(c.waiters) > 0 {
		ch := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.k.wakeLocked(ch)
	}
	c.k.mu.Unlock()
}

func (c *cond) Broadcast() {
	c.k.mu.Lock()
	for _, ch := range c.waiters {
		c.k.wakeLocked(ch)
	}
	c.waiters = nil
	c.k.mu.Unlock()
}
