package sim

import (
	"testing"
	"time"

	"xpointdb/internal/clock"
)

// TestSemaphoreUnderVirtualTime models a device with 2 slots serving
// 100 µs operations: 6 concurrent operations must take exactly 3
// service times of virtual time.
func TestSemaphoreUnderVirtualTime(t *testing.T) {
	k := New(t0)
	sem := clock.NewSemaphore(k, 2)
	k.Run(func() {
		m := k.NewMutex()
		c := k.NewCond(m)
		left := 6
		for i := 0; i < 6; i++ {
			k.Go("op", func() {
				sem.Acquire()
				k.Sleep(100 * time.Microsecond)
				sem.Release()
				m.Lock()
				left--
				if left == 0 {
					c.Broadcast()
				}
				m.Unlock()
			})
		}
		m.Lock()
		for left > 0 {
			c.Wait()
		}
		m.Unlock()
	})
	if got := k.Elapsed(); got != 300*time.Microsecond {
		t.Fatalf("elapsed = %v, want 300µs (6 ops / 2 slots × 100µs)", got)
	}
}

// TestSemaphoreWaitersGaugeUnderSim checks queue-depth visibility.
func TestSemaphoreWaitersGaugeUnderSim(t *testing.T) {
	k := New(t0)
	sem := clock.NewSemaphore(k, 1)
	var peak int
	k.Run(func() {
		m := k.NewMutex()
		c := k.NewCond(m)
		left := 4
		for i := 0; i < 4; i++ {
			k.Go("op", func() {
				sem.Acquire()
				if w := sem.Waiters(); w > peak {
					peak = w
				}
				k.Sleep(time.Millisecond)
				sem.Release()
				m.Lock()
				left--
				if left == 0 {
					c.Broadcast()
				}
				m.Unlock()
			})
		}
		m.Lock()
		for left > 0 {
			c.Wait()
		}
		m.Unlock()
	})
	if peak == 0 {
		t.Fatal("no queueing observed with 4 ops on 1 slot")
	}
	if sem.Waiters() != 0 {
		t.Fatalf("waiters leaked: %d", sem.Waiters())
	}
}
