package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetMissThenHit(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Insert(1, 0, []byte("data"))
	v, ok := c.Get(1, 0)
	if !ok || string(v) != "data" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d hits, %d misses", h, m)
	}
}

func TestReplaceSameKey(t *testing.T) {
	c := New(1 << 20)
	c.Insert(1, 0, []byte("old"))
	c.Insert(1, 0, []byte("newer"))
	v, ok := c.Get(1, 0)
	if !ok || string(v) != "newer" {
		t.Fatalf("Get after replace = %q", v)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	c := New(16 * 1024) // 1 KiB per shard
	blob := make([]byte, 512)
	for i := 0; i < 1000; i++ {
		c.Insert(uint64(i), 0, blob)
	}
	if used := c.Used(); used > 16*1024 {
		t.Fatalf("Used = %d exceeds capacity", used)
	}
}

func TestLRUOrder(t *testing.T) {
	// One shard: capacity for exactly 2 entries; keys chosen to map
	// to the same shard would be fiddly, so use a big cache and
	// verify recency via a same-shard triple.
	c := New(numShards * 100)
	// Keys with identical fileNum land in the shard chosen by
	// offset; use offsets that collide mod numShards.
	k1, k2, k3 := uint64(0), uint64(numShards), uint64(2*numShards)
	blob := make([]byte, 40)
	c.Insert(7, k1, blob)
	c.Insert(7, k2, blob)
	c.Get(7, k1) // make k1 most recent
	c.Insert(7, k3, blob)
	if _, ok := c.Get(7, k1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(7, k2); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestOversizedInsertIgnored(t *testing.T) {
	c := New(1024)
	c.Insert(1, 0, make([]byte, 10*1024))
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("oversized entry cached")
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New(0)
	c.Insert(1, 0, []byte("x"))
	if _, ok := c.Get(1, 0); ok {
		t.Fatal("zero-capacity cache stored data")
	}
}

func TestEvictFile(t *testing.T) {
	c := New(1 << 20)
	for off := uint64(0); off < 10; off++ {
		c.Insert(5, off*4096, []byte("block"))
		c.Insert(6, off*4096, []byte("block"))
	}
	c.EvictFile(5)
	for off := uint64(0); off < 10; off++ {
		if _, ok := c.Get(5, off*4096); ok {
			t.Fatal("evicted file block still cached")
		}
		if _, ok := c.Get(6, off*4096); !ok {
			t.Fatal("unrelated file block evicted")
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := uint64(i % 100)
				c.Insert(key, uint64(w), []byte(fmt.Sprintf("v%d", i)))
				c.Get(key, uint64(w))
			}
		}(w)
	}
	wg.Wait()
}

func TestUsedAccounting(t *testing.T) {
	c := New(1 << 20)
	c.Insert(1, 0, make([]byte, 100))
	c.Insert(1, 4096, make([]byte, 200))
	if got := c.Used(); got != 300 {
		t.Fatalf("Used = %d, want 300", got)
	}
	c.Insert(1, 0, make([]byte, 50)) // replace shrinks
	if got := c.Used(); got != 250 {
		t.Fatalf("Used after replace = %d, want 250", got)
	}
}
