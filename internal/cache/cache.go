// Package cache implements the sharded LRU block cache. Together with
// the Bloom filters it stands in for both RocksDB's block cache and
// the OS page cache: in the simulation, every cache miss is a charged
// device read (the paper's configuration — 8 GB RAM against 100 GB of
// data — makes most reads go to the device, which is exactly the
// regime the block cache size knob lets experiments reproduce).
package cache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

const numShards = 16

// Cache is a fixed-capacity sharded LRU cache of data blocks keyed by
// (file number, block offset).
type Cache struct {
	shards [numShards]shard
	hits   atomic.Int64
	misses atomic.Int64
}

type blockKey struct {
	fileNum uint64
	offset  uint64
}

type entry struct {
	key  blockKey
	data []byte
}

type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	m        map[blockKey]*list.Element
	lru      *list.List // front = most recent
}

// New returns a cache holding at most capacity bytes of block data.
// A capacity ≤ 0 yields a cache that stores nothing.
func New(capacity int64) *Cache {
	c := &Cache{}
	per := capacity / numShards
	for i := range c.shards {
		c.shards[i] = shard{
			capacity: per,
			m:        make(map[blockKey]*list.Element),
			lru:      list.New(),
		}
	}
	return c
}

func (c *Cache) shard(k blockKey) *shard {
	h := k.fileNum*0x9e3779b97f4a7c15 + k.offset
	return &c.shards[h%numShards]
}

// Get returns the cached block, if present.
func (c *Cache) Get(fileNum, offset uint64) ([]byte, bool) {
	k := blockKey{fileNum, offset}
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.m[k]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*entry).data, true
}

// Insert adds (or replaces) a block, evicting LRU entries to fit. The
// data slice is retained; callers must treat it as immutable.
func (c *Cache) Insert(fileNum, offset uint64, data []byte) {
	k := blockKey{fileNum, offset}
	s := c.shard(k)
	size := int64(len(data))
	if size > s.capacity {
		return // would never fit
	}
	s.mu.Lock()
	if el, ok := s.m[k]; ok {
		old := el.Value.(*entry)
		s.used += size - int64(len(old.data))
		old.data = data
		s.lru.MoveToFront(el)
	} else {
		s.m[k] = s.lru.PushFront(&entry{key: k, data: data})
		s.used += size
	}
	for s.used > s.capacity {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.m, e.key)
		s.used -= int64(len(e.data))
	}
	s.mu.Unlock()
}

// EvictFile drops every cached block of fileNum (called when an SST is
// deleted after compaction).
func (c *Cache) EvictFile(fileNum uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, el := range s.m {
			if k.fileNum == fileNum {
				s.lru.Remove(el)
				s.used -= int64(len(el.Value.(*entry).data))
				delete(s.m, k)
			}
		}
		s.mu.Unlock()
	}
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// HitRate returns the fraction of Gets served from the cache (0 when
// the cache has never been consulted).
func (c *Cache) HitRate() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// String summarizes occupancy and hit rate for the stats reporter.
func (c *Cache) String() string {
	h, m := c.Stats()
	return fmt.Sprintf("used=%dB hits=%d misses=%d hit_rate=%.1f%%",
		c.Used(), h, m, 100*c.HitRate())
}

// Used returns the bytes currently cached.
func (c *Cache) Used() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}
