package bloom

import (
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"
)

func keyList(n int) [][]byte {
	ks := make([][]byte, n)
	for i := range ks {
		ks[i] = []byte(fmt.Sprintf("bloom-key-%08d", i))
	}
	return ks
}

func TestNoFalseNegatives(t *testing.T) {
	ks := keyList(5000)
	f := New(ks, 10)
	for _, k := range ks {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	check := func(raw [][]byte) bool {
		if len(raw) == 0 {
			return true
		}
		f := New(raw, 10)
		for _, k := range raw {
			if !f.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	ks := keyList(10000)
	f := New(ks, 10)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		k := []byte(fmt.Sprintf("absent-key-%08d", i))
		if f.MayContain(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key targets ~1%; allow generous slack.
	if rate > 0.03 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
	t.Logf("false positive rate: %.4f", rate)
}

func TestEmptyFilter(t *testing.T) {
	f := New(nil, 10)
	if f.MayContain([]byte("anything")) {
		// An empty filter has all bits clear: must reject.
		t.Fatal("empty filter claimed containment")
	}
}

func TestTinyFilterIsSafe(t *testing.T) {
	var f Filter
	if f.MayContain([]byte("x")) {
		t.Fatal("nil filter must reject (treated as no filter by caller)")
	}
	if (Filter{0xff}).MayContain([]byte("x")) {
		t.Fatal("1-byte filter is malformed; must reject")
	}
}

func TestReservedKEncodingIsPermissive(t *testing.T) {
	// k > 30 is a reserved encoding: must return true (may contain).
	f := Filter{0x00, 0x00, 31}
	if !f.MayContain([]byte("x")) {
		t.Fatal("reserved encoding must be permissive")
	}
}

func TestBitsPerKeyClamped(t *testing.T) {
	ks := keyList(100)
	f := New(ks, 0) // clamps to 1
	for _, k := range ks {
		if !f.MayContain(k) {
			t.Fatal("false negative with clamped bits/key")
		}
	}
}

func TestHashMatchesKnownAlgorithm(t *testing.T) {
	// Hash must be deterministic and spread: sanity-check stability
	// across lengths including the <4-byte tail cases.
	inputs := [][]byte{nil, {1}, {1, 2}, {1, 2, 3}, {1, 2, 3, 4}, {1, 2, 3, 4, 5}}
	seen := map[uint32]bool{}
	for _, in := range inputs {
		h := Hash(in)
		if seen[h] {
			t.Fatalf("hash collision among trivial inputs: %x", h)
		}
		seen[h] = true
		if h != Hash(in) {
			t.Fatal("hash not deterministic")
		}
	}
}

func TestHashLittleEndianChunks(t *testing.T) {
	// Verify the 4-byte chunk path actually consumes 4 bytes LE.
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b, 0xdeadbeef)
	binary.LittleEndian.PutUint32(b[4:], 0xcafebabe)
	if Hash(b) == Hash(b[:4]) {
		t.Fatal("8-byte input hashed same as its prefix")
	}
}
