// Package bloom implements the Bloom filter attached to each SST. The
// filter is what keeps Level-0 read amplification bearable: a negative
// probe lets the read path skip a table without touching the device.
// The implementation follows LevelDB's: k probes derived from one
// 32-bit hash by double hashing (delta rotation).
package bloom

import "encoding/binary"

// Filter is an immutable encoded Bloom filter: bit array followed by a
// trailing byte holding the probe count.
type Filter []byte

// New builds a filter over the given keys with bitsPerKey bits per key
// (10 is the customary default, ~1% false-positive rate).
func New(bloomKeys [][]byte, bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	// k = bitsPerKey * ln2, clamped like LevelDB.
	k := uint8(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	bits := len(bloomKeys) * bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nbytes := (bits + 7) / 8
	bits = nbytes * 8
	buf := make([]byte, nbytes+1)
	buf[nbytes] = k

	for _, key := range bloomKeys {
		h := Hash(key)
		delta := h>>17 | h<<15
		for i := uint8(0); i < k; i++ {
			pos := h % uint32(bits)
			buf[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return Filter(buf)
}

// MayContain reports whether key was possibly added to the filter. A
// false return is definitive.
func (f Filter) MayContain(key []byte) bool {
	if len(f) < 2 {
		return false
	}
	k := f[len(f)-1]
	if k > 30 {
		// Reserved encoding: treat as "may contain".
		return true
	}
	bits := uint32((len(f) - 1) * 8)
	h := Hash(key)
	delta := h>>17 | h<<15
	for i := uint8(0); i < k; i++ {
		pos := h % bits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// Hash is the 32-bit hash used for filter probes (LevelDB's
// Murmur-inspired hash).
func Hash(data []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(data))*m
	for len(data) >= 4 {
		h += binary.LittleEndian.Uint32(data)
		h *= m
		h ^= h >> 16
		data = data[4:]
	}
	switch len(data) {
	case 3:
		h += uint32(data[2]) << 16
		fallthrough
	case 2:
		h += uint32(data[1]) << 8
		fallthrough
	case 1:
		h += uint32(data[0])
		h *= m
		h ^= h >> 24
	}
	return h
}
