package sstable

import (
	"fmt"
	"hash/crc32"
)

// verifyChunkLen bounds the per-ReadAt transfer of the whole-file
// checksum pass, so pacing callbacks see steady progress instead of one
// file-sized read.
const verifyChunkLen = 64 << 10

// VerifyStats reports what one verification pass covered.
type VerifyStats struct {
	// Blocks is the number of blocks whose CRC was re-checked (data
	// blocks plus the filter and index blocks).
	Blocks int
	// Bytes is the total bytes read from the file, across both the
	// whole-file checksum stream and the per-block re-reads.
	Bytes int64
}

// Verify re-reads the entire table from the underlying file, bypassing
// the block cache. It recomputes the whole-file CRC-32C (compared
// against fileChecksum when fileChecksum != 0 — zero means no recorded
// digest, as with files from pre-checksum manifests) and then re-checks
// every block: footer decode, filter, index, and each data block the
// index references.
//
// pace, if non-nil, is called after every read with the byte count just
// transferred; returning an error aborts the pass with that error. The
// scrubber uses it to enforce its byte/s budget and to bail out when
// the DB is closing.
func (r *Reader) Verify(fileChecksum uint32, pace func(n int) error) (VerifyStats, error) {
	var st VerifyStats
	step := func(n int) error {
		st.Bytes += int64(n)
		if pace == nil {
			return nil
		}
		return pace(n)
	}

	// Pass 1: whole-file checksum, streamed in bounded chunks. This
	// covers every byte, including footer padding and block trailers
	// that the per-block pass below re-covers.
	var crc uint32
	buf := make([]byte, verifyChunkLen)
	for off := int64(0); off < r.size; {
		n := int64(len(buf))
		if r.size-off < n {
			n = r.size - off
		}
		if _, err := r.f.ReadAt(buf[:n], off); err != nil {
			return st, fmt.Errorf("sstable: verify read of %d at %d: %w", r.fileNum, off, err)
		}
		crc = crc32.Update(crc, crcTable, buf[:n])
		off += n
		if err := step(int(n)); err != nil {
			return st, err
		}
	}
	if fileChecksum != 0 && crc != fileChecksum {
		return st, &CorruptionError{
			FileNum: r.fileNum,
			Detail:  fmt.Sprintf("file checksum mismatch (computed %#x, manifest records %#x)", crc, fileChecksum),
		}
	}

	// Pass 2: per-block CRCs. The footer and metadata blocks are
	// re-read from the file rather than trusting the copies decoded at
	// open time — the media may have rotted since.
	filterHandle, indexHandle, err := readFooter(r.f, r.size, r.fileNum)
	if err != nil {
		return st, err
	}
	if err := step(footerLen); err != nil {
		return st, err
	}
	checkBlock := func(h blockHandle) ([]byte, error) {
		contents, err := r.readBlock(h)
		if err != nil {
			return nil, err
		}
		st.Blocks++
		if err := step(int(h.length) + blockTrailerLen); err != nil {
			return nil, err
		}
		return contents, nil
	}
	if filterHandle.length > 0 {
		if _, err := checkBlock(filterHandle); err != nil {
			return st, err
		}
	}
	index, err := checkBlock(indexHandle)
	if err != nil {
		return st, err
	}
	idx, err := newBlockIter(index)
	if err != nil {
		return st, &CorruptionError{
			FileNum: r.fileNum,
			Offset:  indexHandle.offset,
			Detail:  fmt.Sprintf("index block: %v", err),
		}
	}
	for idx.SeekToFirst(); idx.Valid(); idx.Next() {
		h, _, err := decodeHandle(idx.Value())
		if err != nil {
			return st, &CorruptionError{
				FileNum: r.fileNum,
				Offset:  indexHandle.offset,
				Detail:  fmt.Sprintf("index entry handle: %v", err),
			}
		}
		if _, err := checkBlock(h); err != nil {
			return st, err
		}
	}
	if err := idx.Error(); err != nil {
		return st, err
	}
	return st, nil
}
