package sstable

import (
	"fmt"
	"io"
	"testing"

	"xpointdb/internal/keys"
)

// windowFile serves a byte window of a table from memory, shifted by
// the window's file offset — the same shape the engine uses to feed a
// sub-compaction's DataWindow to a shared Reader. Reads outside the
// window error instead of returning zeros.
type windowFile struct {
	data []byte
	base int64
}

func (w *windowFile) ReadAt(p []byte, off int64) (int, error) {
	off -= w.base
	if off < 0 || off >= int64(len(w.data)) {
		return 0, io.EOF
	}
	n := copy(p, w.data[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (w *windowFile) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
func (w *windowFile) Close() error                { return nil }
func (w *windowFile) Sync() error                 { return nil }

// TestDataWindowCoversRange checks a windowed reader serves every key
// inside [start, end) — including the boundary-straddling block the
// window deliberately over-includes — for a sweep of range positions.
func TestDataWindowCoversRange(t *testing.T) {
	const n = 2000
	opts := DefaultBuilderOptions()
	opts.BlockSize = 512 // many blocks, so windows are real subsets
	r, fs := buildTable(t, n, nil, opts)

	user := func(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }

	cases := []struct{ lo, hi int }{
		{0, n},       // full range (nil bounds handled below)
		{0, 100},     // prefix
		{n - 50, n},  // suffix
		{700, 1400},  // interior
		{1234, 1235}, // single key
	}
	for _, tc := range cases {
		var startIK, endIK []byte
		if tc.lo > 0 {
			startIK = keys.SearchKey(user(tc.lo), keys.MaxSeq)
		}
		if tc.hi < n {
			endIK = keys.SearchKey(user(tc.hi), keys.MaxSeq)
		}
		off, length, err := r.DataWindow(startIK, endIK)
		if err != nil {
			t.Fatalf("[%d,%d): DataWindow: %v", tc.lo, tc.hi, err)
		}
		if length <= 0 {
			t.Fatalf("[%d,%d): empty window", tc.lo, tc.hi)
		}
		full, _ := fs.Open("t.sst")
		data := make([]byte, length)
		if _, err := full.ReadAt(data, off); err != nil {
			t.Fatalf("[%d,%d): read window: %v", tc.lo, tc.hi, err)
		}
		full.Close()

		wr := r.WithFile(&windowFile{data: data, base: off})
		it := wr.NewIter()
		if startIK != nil {
			it.SeekGE(startIK)
		} else {
			it.SeekToFirst()
		}
		i := tc.lo
		for ; it.Valid(); it.Next() {
			if endIK != nil && keys.Compare(it.Key(), endIK) >= 0 {
				break
			}
			if got, want := string(keys.UserKey(it.Key())), string(user(i)); got != want {
				t.Fatalf("[%d,%d): key %q, want %q", tc.lo, tc.hi, got, want)
			}
			if got, want := string(it.Value()), fmt.Sprintf("value-%06d", i); got != want {
				t.Fatalf("[%d,%d): value %q, want %q", tc.lo, tc.hi, got, want)
			}
			i++
		}
		if err := it.Close(); err != nil {
			t.Fatalf("[%d,%d): iter close: %v", tc.lo, tc.hi, err)
		}
		if i != tc.hi {
			t.Fatalf("[%d,%d): iterated to %d", tc.lo, tc.hi, i)
		}
	}
}

// TestDataWindowSmallerThanTable checks an interior window is actually
// a strict subset of the file (the point of windowed reads: no K×
// read amplification when a table is split across sub-compactions).
func TestDataWindowSmallerThanTable(t *testing.T) {
	opts := DefaultBuilderOptions()
	opts.BlockSize = 512
	r, _ := buildTable(t, 2000, nil, opts)

	startIK := keys.SearchKey([]byte("key-000900"), keys.MaxSeq)
	endIK := keys.SearchKey([]byte("key-001000"), keys.MaxSeq)
	off, length, err := r.DataWindow(startIK, endIK)
	if err != nil {
		t.Fatal(err)
	}
	if off == 0 {
		t.Fatal("interior window starts at file offset 0")
	}
	if length >= r.Size()/2 {
		t.Fatalf("window of 100/2000 keys spans %d of %d bytes", length, r.Size())
	}
}

// TestDataWindowDisjointFile checks a range entirely outside the table
// returns an empty window (the engine then skips the file).
func TestDataWindowDisjointFile(t *testing.T) {
	r, _ := buildTable(t, 100, nil, DefaultBuilderOptions())
	startIK := keys.SearchKey([]byte("zzz-after-everything"), keys.MaxSeq)
	_, length, err := r.DataWindow(startIK, nil)
	if err != nil {
		t.Fatal(err)
	}
	if length != 0 {
		t.Fatalf("window past the last key has %d bytes", length)
	}
}
