package sstable

import (
	"fmt"
	"io"
	"testing"

	"xpointdb/internal/keys"
)

// byteFile serves an SST image from memory, so each bit-flip trial gets
// an isolated, mutated copy without filesystem plumbing.
type byteFile struct{ data []byte }

func (f *byteFile) Write(p []byte) (int, error) { f.data = append(f.data, p...); return len(p), nil }
func (f *byteFile) Sync() error                 { return nil }
func (f *byteFile) Close() error                { return nil }
func (f *byteFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// TestEveryBitFlipDetected is the integrity layer's exhaustive ground
// truth: for EVERY single-bit flip of a small SST — data blocks, filter
// block, index block, footer, the padding bytes in between — reading
// the table either fails with a checksum error or returns exactly the
// original data, and any flip the read path cannot see (bytes no block
// CRC covers) is caught by the whole-file checksum. No flip anywhere
// may ever produce silently wrong bytes.
func TestEveryBitFlipDetected(t *testing.T) {
	const n = 24
	orig := &byteFile{}
	opts := DefaultBuilderOptions()
	opts.BlockSize = 128 // many small blocks: exercise index + cuts
	b := NewBuilder(orig, opts)
	for i := 0; i < n; i++ {
		if err := b.Add(ik(fmt.Sprintf("key-%06d", i), uint64(i+1)),
			[]byte(fmt.Sprintf("value-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	fileSum := b.Checksum()

	// Sanity: the pristine image reads clean and verifies.
	{
		r, err := NewReader(&byteFile{data: orig.data}, size, 1, nil)
		if err != nil {
			t.Fatalf("pristine NewReader: %v", err)
		}
		if _, err := r.Verify(fileSum, nil); err != nil {
			t.Fatalf("pristine Verify: %v", err)
		}
	}

	undetected := 0
	for bit := 0; bit < len(orig.data)*8; bit++ {
		img := make([]byte, len(orig.data))
		copy(img, orig.data)
		img[bit/8] ^= 1 << (bit % 8)

		r, err := NewReader(&byteFile{data: img}, size, 1, nil)
		if err != nil {
			if !IsCorruption(err) {
				t.Fatalf("bit %d: NewReader error is not a CorruptionError: %v", bit, err)
			}
			continue // detected at open (footer, index or filter damage)
		}
		sawError := false
		for i := 0; i < n; i++ {
			user := fmt.Sprintf("key-%06d", i)
			k, v, _, found, err := r.Get(keys.SearchKey([]byte(user), keys.MaxSeq))
			if err != nil {
				if !IsCorruption(err) {
					t.Fatalf("bit %d: Get %s error is not a CorruptionError: %v", bit, user, err)
				}
				sawError = true
				continue
			}
			// A successful read must be EXACTLY right — this is the
			// "never wrong data" half of the contract.
			if !found {
				t.Fatalf("bit %d: key %s silently missing", bit, user)
			}
			if got := string(keys.UserKey(k)); got != user {
				t.Fatalf("bit %d: Get %s returned key %q", bit, user, got)
			}
			if want := fmt.Sprintf("value-%06d", i); string(v) != want {
				t.Fatalf("bit %d: Get %s = %q, want %q", bit, user, v, want)
			}
		}
		if sawError {
			continue // detected on the read path
		}
		// Every point read came back intact: the flip landed in bytes
		// no queried block covers (bloom filter, unreached padding).
		// The whole-file checksum must still catch it.
		if _, err := r.Verify(fileSum, nil); err == nil {
			t.Fatalf("bit %d (byte %d): flip undetected by reads AND file checksum", bit, bit/8)
		} else if !IsCorruption(err) {
			t.Fatalf("bit %d: Verify error is not a CorruptionError: %v", bit, err)
		}
		undetected++
	}
	t.Logf("image %d bytes: %d flips invisible to point reads, all caught by Verify",
		len(orig.data), undetected)
}
