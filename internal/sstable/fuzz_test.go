package sstable

import (
	"encoding/binary"
	"fmt"
	"io"
	"testing"

	"xpointdb/internal/keys"
)

// fuzzFile adapts a byte slice to vfs.File.
type fuzzFile struct {
	buf []byte
}

func (f *fuzzFile) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *fuzzFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *fuzzFile) Sync() error  { return nil }
func (f *fuzzFile) Close() error { return nil }

// buildFuzzTable writes a small valid table and returns its bytes.
func buildFuzzTable(tb testing.TB, opts BuilderOptions, n int) []byte {
	f := &fuzzFile{}
	b := NewBuilder(f, opts)
	for i := 0; i < n; i++ {
		k := keys.Make([]byte(fmt.Sprintf("key%04d", i)), uint64(i+1), keys.KindSet)
		if err := b.Add(k, []byte(fmt.Sprintf("value%04d", i))); err != nil {
			tb.Fatalf("Add: %v", err)
		}
	}
	if _, err := b.Finish(); err != nil {
		tb.Fatalf("Finish: %v", err)
	}
	return f.buf
}

// validBlock builds one raw block image (as fed to newBlockIter).
func validBlock(n int) []byte {
	var b blockBuilder
	for i := 0; i < n; i++ {
		k := keys.Make([]byte(fmt.Sprintf("key%04d", i)), uint64(i+1), keys.KindSet)
		b.add(k, []byte("v"))
	}
	return append([]byte(nil), b.finish()...)
}

// FuzzBlockIter drives the block decoder and every iterator movement
// over arbitrary bytes: corruption must surface as Error()/invalid
// positioning, never as a panic or unbounded loop.
func FuzzBlockIter(f *testing.F) {
	f.Add(validBlock(1))
	f.Add(validBlock(50)) // spans several restart intervals
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte("garbage-not-a-block"))

	f.Fuzz(func(t *testing.T, data []byte) {
		it, err := newBlockIter(data)
		if err != nil {
			return
		}
		// Each decoded entry consumes ≥3 bytes, so entry counts are
		// bounded by the input; the caps guard against cursor bugs.
		limit := len(data) + 1
		for it.SeekToFirst(); it.Valid() && limit > 0; it.Next() {
			limit--
		}
		if limit <= 0 {
			t.Fatal("forward scan did not terminate")
		}
		it.SeekGE(keys.Make([]byte("key0010"), keys.MaxSeq, keys.KindSet))
		it.SeekGE(keys.Make(nil, 0, keys.KindSet))
		it.SeekLT(keys.Make([]byte("key0040"), keys.MaxSeq, keys.KindSet))
		limit = len(data) + 1
		for it.SeekToLast(); it.Valid() && limit > 0; it.Prev() {
			limit--
		}
		if limit <= 0 {
			t.Fatal("backward scan did not terminate")
		}
	})
}

// FuzzTableReader opens arbitrary bytes as a table; valid-enough
// inputs are additionally scanned and probed. No input may panic the
// reader.
func FuzzTableReader(f *testing.F) {
	f.Add(buildFuzzTable(f, BuilderOptions{BlockSize: 64, BloomBitsPerKey: 10}, 40))
	f.Add(buildFuzzTable(f, BuilderOptions{BlockSize: 4096, Compression: FlateCompression}, 120))
	f.Add(buildFuzzTable(f, BuilderOptions{BlockSize: 4096}, 0))
	f.Add([]byte("way too short"))
	// Valid magic, garbage handles.
	bad := make([]byte, footerLen)
	binary.LittleEndian.PutUint64(bad[footerLen-8:], tableMagic)
	for i := 0; i < 40; i++ {
		bad[i] = 0xff
	}
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(&fuzzFile{buf: data}, int64(len(data)), 1, nil)
		if err != nil {
			return
		}
		it := r.NewIter()
		limit := len(data) + 1
		for it.SeekToFirst(); it.Valid() && limit > 0; it.Next() {
			limit--
		}
		if limit <= 0 {
			t.Fatal("table scan did not terminate")
		}
		_ = it.Error()
		it.Close()
		probe := keys.Make([]byte("key0007"), 1000, keys.KindSet)
		_, _, _, _, _ = r.Get(probe)
		r.MayContain([]byte("key0007"))
	})
}
