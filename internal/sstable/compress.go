package sstable

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// flateCompress DEFLATEs contents, returning ok=false when the result
// saves less than 1/8 of the original size (LevelDB's rule: storing
// nearly-incompressible blocks raw avoids pointless decompression).
func flateCompress(contents []byte) ([]byte, bool) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, false
	}
	if _, err := w.Write(contents); err != nil {
		return nil, false
	}
	if err := w.Close(); err != nil {
		return nil, false
	}
	if buf.Len() >= len(contents)-len(contents)/8 {
		return nil, false
	}
	return buf.Bytes(), true
}

// maxBlockInflate caps a decompressed block's size. Blocks are built
// to a few KiB, so anything approaching this is corrupt or hostile
// input (a flate bomb) — fail instead of allocating unboundedly.
const maxBlockInflate = 64 << 20

// flateDecompress inflates a compressed block.
func flateDecompress(compressed []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(compressed))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, maxBlockInflate+1))
	if err != nil {
		return nil, fmt.Errorf("inflate: %w", err)
	}
	if len(out) > maxBlockInflate {
		return nil, fmt.Errorf("inflate: block exceeds %d bytes", maxBlockInflate)
	}
	return out, nil
}
