// Package sstable implements Sorted Sequence Table files: the on-disk
// format of the LSM tree. A table is a sequence of prefix-compressed
// data blocks followed by a Bloom filter block, an index block, and a
// fixed-size footer:
//
//	[data block 0][data block 1]...[filter block][index block][footer]
//
// Each block on disk is followed by a 5-byte trailer (compression type
// byte — always 0/none — and a CRC-32C). Within a block, entries are
// prefix-compressed with restart points every 16 entries, exactly as
// in LevelDB/RocksDB. The index block maps separator keys to data
// block handles. The Bloom filter covers the table's user keys.
package sstable

import (
	"encoding/binary"
	"fmt"

	"xpointdb/internal/keys"
)

// restartInterval is the number of entries between full (uncompressed)
// keys within a block.
const restartInterval = 16

// blockBuilder accumulates entries into one block.
type blockBuilder struct {
	buf      []byte
	restarts []uint32
	counter  int
	lastKey  []byte
}

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.counter = 0
	b.lastKey = b.lastKey[:0]
}

// add appends an entry. Keys must be added in ascending order.
func (b *blockBuilder) add(key, value []byte) {
	shared := 0
	if b.counter < restartInterval {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.counter = 0
	}
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(key)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, value...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.counter++
}

// finish appends the restart array and returns the block contents.
func (b *blockBuilder) finish() []byte {
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

func (b *blockBuilder) empty() bool { return len(b.buf) == 0 }

// estimatedSize returns the current size of the block if finished now.
func (b *blockBuilder) estimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4
}

// blockIter iterates over one decoded block.
type blockIter struct {
	data     []byte // entry region (restart array stripped)
	restarts []uint32
	off      int // offset of current entry within data
	nextOff  int
	key      []byte
	val      []byte
	valid    bool
	err      error
	// cmps counts key comparisons for the CPU cost model.
	cmps int
}

// newBlockIter parses the block contents (as produced by
// blockBuilder.finish, trailer already stripped).
func newBlockIter(contents []byte) (*blockIter, error) {
	if len(contents) < 4 {
		return nil, fmt.Errorf("sstable: block too short (%d bytes)", len(contents))
	}
	n := int(binary.LittleEndian.Uint32(contents[len(contents)-4:]))
	restartEnd := len(contents) - 4
	restartStart := restartEnd - 4*n
	if n <= 0 || restartStart < 0 {
		return nil, fmt.Errorf("sstable: bad restart count %d", n)
	}
	restarts := make([]uint32, n)
	for i := 0; i < n; i++ {
		restarts[i] = binary.LittleEndian.Uint32(contents[restartStart+4*i:])
	}
	return &blockIter{data: contents[:restartStart], restarts: restarts}, nil
}

// decodeAt decodes the entry at off, building the full key from prev.
func (it *blockIter) decodeAt(off int) bool {
	if off < 0 {
		it.corrupt(off)
		return false
	}
	if off >= len(it.data) {
		it.valid = false
		return false
	}
	p := it.data[off:]
	shared, n1 := binary.Uvarint(p)
	if n1 <= 0 {
		it.corrupt(off)
		return false
	}
	p = p[n1:]
	unshared, n2 := binary.Uvarint(p)
	if n2 <= 0 {
		it.corrupt(off)
		return false
	}
	p = p[n2:]
	vlen, n3 := binary.Uvarint(p)
	if n3 <= 0 {
		it.corrupt(off)
		return false
	}
	p = p[n3:]
	// Overflow-safe bounds checks: unshared+vlen can wrap uint64 on
	// hostile input, and each length must individually fit the
	// remaining data before any slicing or int conversion.
	if unshared > uint64(len(p)) || vlen > uint64(len(p))-unshared ||
		shared > uint64(len(it.key)) {
		it.corrupt(off)
		return false
	}
	it.key = append(it.key[:shared], p[:unshared]...)
	if len(it.key) < keys.TrailerLen {
		// Data and index blocks hold internal keys only; anything
		// shorter would panic the key comparator downstream.
		it.corrupt(off)
		return false
	}
	it.val = p[unshared : unshared+vlen]
	it.off = off
	it.nextOff = off + n1 + n2 + n3 + int(unshared) + int(vlen)
	it.valid = true
	return true
}

func (it *blockIter) corrupt(off int) {
	it.err = fmt.Errorf("sstable: corrupt block entry at offset %d", off)
	it.valid = false
}

// Valid reports whether the iterator is positioned at an entry.
func (it *blockIter) Valid() bool { return it.valid && it.err == nil }

// Key returns the current internal key.
func (it *blockIter) Key() []byte { return it.key }

// Value returns the current value.
func (it *blockIter) Value() []byte { return it.val }

// Error returns any decoding error.
func (it *blockIter) Error() error { return it.err }

// Close is a no-op (blocks are in-memory).
func (it *blockIter) Close() error { return it.err }

// SeekToFirst positions at the first entry.
func (it *blockIter) SeekToFirst() {
	it.key = it.key[:0]
	it.decodeAt(0)
}

// Next advances to the next entry.
func (it *blockIter) Next() {
	if !it.valid {
		return
	}
	it.decodeAt(it.nextOff)
}

// SeekToLast positions at the last entry.
func (it *blockIter) SeekToLast() {
	if len(it.restarts) == 0 {
		it.valid = false
		return
	}
	it.key = it.key[:0]
	if !it.decodeAt(int(it.restarts[len(it.restarts)-1])) {
		return
	}
	for it.nextOff < len(it.data) {
		if !it.decodeAt(it.nextOff) {
			return
		}
	}
}

// SeekLT positions at the last entry with key < target.
func (it *blockIter) SeekLT(target []byte) {
	// Binary search restarts for the last one with key < target, then
	// scan forward keeping the last entry still below target.
	lo, hi := 0, len(it.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		it.key = it.key[:0]
		if !it.decodeAt(int(it.restarts[mid])) {
			return
		}
		it.cmps++
		if keys.Compare(it.key, target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.key = it.key[:0]
	if !it.decodeAt(int(it.restarts[lo])) {
		return
	}
	it.cmps++
	if keys.Compare(it.key, target) >= 0 {
		// Even the first candidate is ≥ target: nothing before it.
		it.valid = false
		return
	}
	for it.nextOff < len(it.data) {
		if !it.decodeAt(it.nextOff) {
			return
		}
		it.cmps++
		if keys.Compare(it.key, target) >= 0 {
			// Step back to the entry ending where this one starts.
			cur := it.off
			it.key = it.key[:0]
			it.seekToRestartThenOffset(cur)
			return
		}
	}
}

// Prev moves to the previous entry (invalid at the first entry).
func (it *blockIter) Prev() {
	if !it.valid {
		return
	}
	if it.off == 0 {
		it.valid = false
		return
	}
	target := it.off
	it.key = it.key[:0]
	it.seekToRestartThenOffset(target)
}

// seekToRestartThenOffset positions at the entry that ENDS at target
// (i.e. whose nextOff == target) by decoding forward from the nearest
// restart at or before it. Callers must reset it.key first when the
// current key state does not correspond to the restart chain.
func (it *blockIter) seekToRestartThenOffset(target int) {
	// Find the last restart strictly before target (an entry at a
	// restart offset == target means the predecessor is in the
	// previous restart group... but restart offsets are entry
	// starts, so the predecessor of an entry AT a restart offset
	// still begins at or after the previous restart).
	lo, hi := 0, len(it.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(it.restarts[mid]) < target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if !it.decodeAt(int(it.restarts[lo])) {
		return
	}
	for it.nextOff < target {
		if !it.decodeAt(it.nextOff) {
			return
		}
	}
	// Entries are contiguous, so the loop ends exactly at the entry
	// whose nextOff == target.
}

// SeekGE positions at the first entry with key ≥ target using a binary
// search over restart points followed by a linear scan.
func (it *blockIter) SeekGE(target []byte) {
	// Binary search restart points for the last one with key < target.
	lo, hi := 0, len(it.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		it.key = it.key[:0]
		if !it.decodeAt(int(it.restarts[mid])) {
			return
		}
		it.cmps++
		if keys.Compare(it.key, target) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.key = it.key[:0]
	if !it.decodeAt(int(it.restarts[lo])) {
		return
	}
	for it.valid {
		it.cmps++
		if keys.Compare(it.key, target) >= 0 {
			return
		}
		it.decodeAt(it.nextOff)
	}
}

// Cmps returns and resets the comparison counter.
func (it *blockIter) Cmps() int {
	c := it.cmps
	it.cmps = 0
	return c
}
