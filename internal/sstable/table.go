package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"xpointdb/internal/bloom"
	"xpointdb/internal/cache"
	"xpointdb/internal/iterator"
	"xpointdb/internal/keys"
	"xpointdb/internal/vfs"
)

// CorruptionError reports a checksum or structural integrity failure in
// a table. It identifies the file, not just the failing offset, so
// events, logs, and the engine's quarantine/repair path can act on it.
type CorruptionError struct {
	// FileNum is the table's file number (NNNNNN.sst).
	FileNum uint64
	// Offset is the file offset of the damaged region (0 when the
	// failure is file-scoped, e.g. a whole-file checksum mismatch).
	Offset uint64
	// Detail describes the failure.
	Detail string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("sstable: file %d corrupt at offset %d: %s", e.FileNum, e.Offset, e.Detail)
}

// IsCorruption reports whether err wraps a CorruptionError.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// Compression selects the block compression codec.
type Compression byte

const (
	// NoCompression stores blocks raw.
	NoCompression Compression = 0
	// FlateCompression compresses blocks with DEFLATE (stdlib
	// compress/flate); a block is stored raw anyway when compression
	// saves less than 1/8 of its size, as in LevelDB.
	FlateCompression Compression = 1
)

const (
	// blockTrailerLen is the per-block on-disk trailer: compression
	// type (1 byte) + CRC-32C (4 bytes).
	blockTrailerLen = 5

	// footerLen is the fixed footer: two padded block handles
	// (filter, index: 2×10 bytes each) + magic.
	footerLen = 48

	tableMagic = 0x7870646273737431 // "xpdbsst1"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// blockHandle locates a block within the file.
type blockHandle struct {
	offset uint64
	length uint64 // excluding trailer
}

func (h blockHandle) encodeTo(dst []byte) int {
	n := binary.PutUvarint(dst, h.offset)
	n += binary.PutUvarint(dst[n:], h.length)
	return n
}

func decodeHandle(p []byte) (blockHandle, int, error) {
	off, n1 := binary.Uvarint(p)
	if n1 <= 0 {
		return blockHandle{}, 0, fmt.Errorf("sstable: bad handle offset")
	}
	length, n2 := binary.Uvarint(p[n1:])
	if n2 <= 0 {
		return blockHandle{}, 0, fmt.Errorf("sstable: bad handle length")
	}
	return blockHandle{offset: off, length: length}, n1 + n2, nil
}

// BuilderOptions configures table construction.
type BuilderOptions struct {
	// BlockSize is the uncompressed data block size target.
	BlockSize int
	// BloomBitsPerKey sizes the table's Bloom filter; 0 disables it.
	BloomBitsPerKey int
	// Compression selects the data block codec (default none).
	Compression Compression
}

// DefaultBuilderOptions mirrors RocksDB defaults: 4 KiB blocks,
// 10-bit Bloom filters.
func DefaultBuilderOptions() BuilderOptions {
	return BuilderOptions{BlockSize: 4096, BloomBitsPerKey: 10}
}

// Builder writes a table to a file. Entries must be added in ascending
// internal-key order. Call Finish, then sync/close the file.
type Builder struct {
	f    vfs.File
	opts BuilderOptions

	data   blockBuilder
	index  blockBuilder
	offset uint64

	pendingHandle blockHandle
	pendingKey    []byte // last key of the just-finished block
	havePending   bool

	filterKeys [][]byte // user keys for the Bloom filter
	numEntries int
	smallest   []byte
	largest    []byte
	fileCRC    uint32 // running CRC-32C over every byte written
	err        error
}

// NewBuilder returns a Builder writing to f.
func NewBuilder(f vfs.File, opts BuilderOptions) *Builder {
	if opts.BlockSize <= 0 {
		opts.BlockSize = 4096
	}
	return &Builder{f: f, opts: opts}
}

// Add appends an entry. Keys must arrive in strictly ascending order.
func (b *Builder) Add(ikey, value []byte) error {
	if b.err != nil {
		return b.err
	}
	if b.largest != nil && keys.Compare(ikey, b.largest) <= 0 {
		b.err = fmt.Errorf("sstable: keys out of order: %s then %s", keys.String(b.largest), keys.String(ikey))
		return b.err
	}
	if b.havePending {
		b.flushIndexEntry(ikey)
	}
	if b.smallest == nil {
		b.smallest = append([]byte(nil), ikey...)
	}
	b.largest = append(b.largest[:0], ikey...)
	if b.opts.BloomBitsPerKey > 0 {
		b.filterKeys = append(b.filterKeys, append([]byte(nil), keys.UserKey(ikey)...))
	}
	b.data.add(ikey, value)
	b.numEntries++
	if b.data.estimatedSize() >= b.opts.BlockSize {
		if err := b.finishDataBlock(); err != nil {
			return err
		}
	}
	return nil
}

// flushIndexEntry emits the index entry for the finished block using a
// separator key: the shortest key ≥ last key of the block and < the
// first key of the next block (or the last key itself if next is nil).
func (b *Builder) flushIndexEntry(next []byte) {
	sep := separator(b.pendingKey, next)
	var hbuf [20]byte
	n := b.pendingHandle.encodeTo(hbuf[:])
	b.index.add(sep, hbuf[:n])
	b.havePending = false
}

// separator returns a key k with prev ≤ k < next (internal-key order)
// that is as short as possible. With next == nil it returns prev.
func separator(prev, next []byte) []byte {
	if next == nil {
		return prev
	}
	// Shorten the user-key portion where possible.
	up, un := keys.UserKey(prev), keys.UserKey(next)
	n := len(up)
	if len(un) < n {
		n = len(un)
	}
	i := 0
	for i < n && up[i] == un[i] {
		i++
	}
	if i < n && up[i]+1 < un[i] {
		short := make([]byte, i+1)
		copy(short, up[:i])
		short[i] = up[i] + 1
		// Append a max trailer so the separator sorts before any
		// real entry with that user key.
		return keys.AppendTrailer(short, keys.MaxSeq, keys.Kind(0xff))
	}
	return prev
}

func (b *Builder) finishDataBlock() error {
	if b.data.empty() {
		return nil
	}
	contents := b.data.finish()
	h, err := b.writeDataBlock(contents)
	if err != nil {
		b.err = err
		return err
	}
	b.pendingHandle = h
	b.pendingKey = append(b.pendingKey[:0], b.data.lastKey...)
	b.havePending = true
	b.data.reset()
	return nil
}

// writeRawBlock stores contents uncompressed (used for filter and
// index blocks, and as the data-block fallback).
func (b *Builder) writeRawBlock(contents []byte) (blockHandle, error) {
	return b.writeBlock(contents, NoCompression)
}

// writeDataBlock applies the configured codec, falling back to raw
// storage when compression is not worthwhile.
func (b *Builder) writeDataBlock(contents []byte) (blockHandle, error) {
	if b.opts.Compression == FlateCompression {
		if compressed, ok := flateCompress(contents); ok {
			return b.writeBlock(compressed, FlateCompression)
		}
	}
	return b.writeBlock(contents, NoCompression)
}

func (b *Builder) writeBlock(contents []byte, codec Compression) (blockHandle, error) {
	h := blockHandle{offset: b.offset, length: uint64(len(contents))}
	var trailer [blockTrailerLen]byte
	trailer[0] = byte(codec)
	crc := crc32.Update(0, crcTable, contents)
	crc = crc32.Update(crc, crcTable, trailer[:1])
	binary.LittleEndian.PutUint32(trailer[1:], crc)
	if _, err := b.f.Write(contents); err != nil {
		return h, fmt.Errorf("sstable: write block: %w", err)
	}
	if _, err := b.f.Write(trailer[:]); err != nil {
		return h, fmt.Errorf("sstable: write trailer: %w", err)
	}
	b.fileCRC = crc32.Update(b.fileCRC, crcTable, contents)
	b.fileCRC = crc32.Update(b.fileCRC, crcTable, trailer[:])
	b.offset += uint64(len(contents)) + blockTrailerLen
	return h, nil
}

// Finish writes the filter and index blocks and the footer. It returns
// the total file size. The caller owns syncing and closing the file.
func (b *Builder) Finish() (int64, error) {
	if b.err != nil {
		return 0, b.err
	}
	if err := b.finishDataBlock(); err != nil {
		return 0, err
	}
	if b.havePending {
		b.flushIndexEntry(nil)
	}

	var filterHandle blockHandle
	if b.opts.BloomBitsPerKey > 0 && len(b.filterKeys) > 0 {
		f := bloom.New(b.filterKeys, b.opts.BloomBitsPerKey)
		h, err := b.writeRawBlock([]byte(f))
		if err != nil {
			return 0, err
		}
		filterHandle = h
	}
	indexContents := b.index.finish()
	indexHandle, err := b.writeRawBlock(indexContents)
	if err != nil {
		return 0, err
	}

	var footer [footerLen]byte
	filterHandle.encodeTo(footer[0:])
	indexHandle.encodeTo(footer[20:])
	binary.LittleEndian.PutUint64(footer[footerLen-8:], tableMagic)
	if _, err := b.f.Write(footer[:]); err != nil {
		return 0, fmt.Errorf("sstable: write footer: %w", err)
	}
	b.fileCRC = crc32.Update(b.fileCRC, crcTable, footer[:])
	b.offset += footerLen
	return int64(b.offset), nil
}

// Checksum returns the CRC-32C of every byte written to the file. It is
// the table's whole-file checksum, valid after Finish; the manifest
// records it so corruption anywhere in the file — including regions no
// block CRC covers, like footer padding — is detectable later.
func (b *Builder) Checksum() uint32 { return b.fileCRC }

// NumEntries returns the number of entries added so far.
func (b *Builder) NumEntries() int { return b.numEntries }

// EstimatedSize returns the current file size plus buffered data.
func (b *Builder) EstimatedSize() int64 {
	return int64(b.offset) + int64(b.data.estimatedSize())
}

// Smallest and Largest return copies of the bounding internal keys.
func (b *Builder) Smallest() []byte { return append([]byte(nil), b.smallest...) }

// Largest returns the largest internal key added.
func (b *Builder) Largest() []byte { return append([]byte(nil), b.largest...) }

// ---------------------------------------------------------------------
// Reader

// Reader provides random access into a finished table.
type Reader struct {
	f       vfs.File
	fileNum uint64
	size    int64
	cache   *cache.Cache

	index  []byte // decoded index block contents
	filter bloom.Filter
}

// NewReader opens a table of the given size, reading footer, index and
// filter eagerly (they are retained in memory, as RocksDB does with
// table metadata pinned in the table cache). c may be nil to disable
// block caching.
func NewReader(f vfs.File, size int64, fileNum uint64, c *cache.Cache) (*Reader, error) {
	filterHandle, indexHandle, err := readFooter(f, size, fileNum)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f, fileNum: fileNum, size: size, cache: c}
	r.index, err = r.readBlock(indexHandle)
	if err != nil {
		return nil, fmt.Errorf("sstable: read index of %d: %w", fileNum, err)
	}
	if filterHandle.length > 0 {
		fb, err := r.readBlock(filterHandle)
		if err != nil {
			return nil, fmt.Errorf("sstable: read filter of %d: %w", fileNum, err)
		}
		r.filter = bloom.Filter(fb)
	}
	return r, nil
}

// readFooter reads and decodes the fixed footer: magic check plus the
// filter and index block handles.
func readFooter(f vfs.File, size int64, fileNum uint64) (filterHandle, indexHandle blockHandle, err error) {
	if size < footerLen {
		return blockHandle{}, blockHandle{}, &CorruptionError{
			FileNum: fileNum,
			Detail:  fmt.Sprintf("file too small for footer (%d bytes)", size),
		}
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], size-footerLen); err != nil {
		return blockHandle{}, blockHandle{}, fmt.Errorf("sstable: read footer of %d: %w", fileNum, err)
	}
	if got := binary.LittleEndian.Uint64(footer[footerLen-8:]); got != tableMagic {
		return blockHandle{}, blockHandle{}, &CorruptionError{
			FileNum: fileNum,
			Offset:  uint64(size - 8),
			Detail:  fmt.Sprintf("bad magic %#x", got),
		}
	}
	filterHandle, _, err = decodeHandle(footer[0:20])
	if err != nil {
		return blockHandle{}, blockHandle{}, &CorruptionError{
			FileNum: fileNum,
			Offset:  uint64(size - footerLen),
			Detail:  fmt.Sprintf("footer filter handle: %v", err),
		}
	}
	indexHandle, _, err = decodeHandle(footer[20:40])
	if err != nil {
		return blockHandle{}, blockHandle{}, &CorruptionError{
			FileNum: fileNum,
			Offset:  uint64(size - footerLen + 20),
			Detail:  fmt.Sprintf("footer index handle: %v", err),
		}
	}
	return filterHandle, indexHandle, nil
}

// readBlock reads, verifies, and decompresses a block, bypassing the
// cache.
func (r *Reader) readBlock(h blockHandle) ([]byte, error) {
	// Validate the handle against the file size before allocating:
	// handles come from on-disk bytes (footer, index entries) and a
	// corrupt one must not trigger a huge allocation or an offset
	// overflow. Each comparison is individually overflow-safe.
	sz := uint64(r.size)
	if h.offset > sz || h.length > sz-h.offset ||
		blockTrailerLen > sz-h.offset-h.length {
		return nil, &CorruptionError{
			FileNum: r.fileNum,
			Offset:  h.offset,
			Detail:  fmt.Sprintf("block handle (%d,%d) exceeds file size %d", h.offset, h.length, r.size),
		}
	}
	buf := make([]byte, h.length+blockTrailerLen)
	if _, err := r.f.ReadAt(buf, int64(h.offset)); err != nil {
		return nil, err
	}
	contents, trailer := buf[:h.length], buf[h.length:]
	crc := crc32.Update(0, crcTable, contents)
	crc = crc32.Update(crc, crcTable, trailer[:1])
	if want := binary.LittleEndian.Uint32(trailer[1:]); crc != want {
		return nil, &CorruptionError{
			FileNum: r.fileNum,
			Offset:  h.offset,
			Detail:  fmt.Sprintf("block fails checksum (computed %#x, stored %#x)", crc, want),
		}
	}
	switch Compression(trailer[0]) {
	case NoCompression:
		return contents, nil
	case FlateCompression:
		out, err := flateDecompress(contents)
		if err != nil {
			return nil, &CorruptionError{
				FileNum: r.fileNum,
				Offset:  h.offset,
				Detail:  fmt.Sprintf("block decompression: %v", err),
			}
		}
		return out, nil
	}
	return nil, &CorruptionError{
		FileNum: r.fileNum,
		Offset:  h.offset,
		Detail:  fmt.Sprintf("block has unknown codec %d", trailer[0]),
	}
}

// getBlock returns block contents via the cache; hit reports whether
// the block came from the cache (always false with no cache attached).
func (r *Reader) getBlock(h blockHandle) (contents []byte, hit bool, err error) {
	if r.cache == nil {
		contents, err = r.readBlock(h)
		return contents, false, err
	}
	if v, ok := r.cache.Get(r.fileNum, h.offset); ok {
		return v, true, nil
	}
	contents, err = r.readBlock(h)
	if err != nil {
		return nil, false, err
	}
	r.cache.Insert(r.fileNum, h.offset, contents)
	return contents, false, nil
}

// MayContain consults the Bloom filter for userKey. Without a filter it
// returns true.
func (r *Reader) MayContain(userKey []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.filter.MayContain(userKey)
}

// ProbeStats reports the per-probe costs of one Get: key comparisons
// (CPU cost accounting) and block-cache traffic (per-operation
// PerfContext attribution).
type ProbeStats struct {
	Cmps        int
	CacheHits   int
	CacheMisses int
}

// Get returns the first entry with internal key ≥ ikey, if it exists in
// this table. found=false means the table holds no such entry. cmps
// reports the key comparisons performed (CPU cost accounting).
func (r *Reader) Get(ikey []byte) (key, value []byte, cmps int, found bool, err error) {
	var st ProbeStats
	key, value, found, err = r.GetStats(ikey, &st)
	return key, value, st.Cmps, found, err
}

// GetStats is Get with full per-probe cost attribution written to st
// (which must be non-nil; fields are incremented, not reset).
func (r *Reader) GetStats(ikey []byte, st *ProbeStats) (key, value []byte, found bool, err error) {
	idx, err := newBlockIter(r.index)
	if err != nil {
		return nil, nil, false, err
	}
	idx.SeekGE(ikey)
	st.Cmps += idx.Cmps()
	if !idx.Valid() {
		return nil, nil, false, idx.Error()
	}
	h, _, err := decodeHandle(idx.Value())
	if err != nil {
		return nil, nil, false, err
	}
	contents, hit, err := r.getBlock(h)
	if err != nil {
		return nil, nil, false, err
	}
	if hit {
		st.CacheHits++
	} else {
		st.CacheMisses++
	}
	data, err := newBlockIter(contents)
	if err != nil {
		return nil, nil, false, err
	}
	data.SeekGE(ikey)
	st.Cmps += data.Cmps()
	if !data.Valid() {
		return nil, nil, false, data.Error()
	}
	return data.Key(), data.Value(), true, nil
}

// Size returns the file size.
func (r *Reader) Size() int64 { return r.size }

// DataWindow returns the byte span [off, off+n) of the contiguous data
// blocks a forward scan over internal keys in [start, end) can touch
// (start inclusive, end exclusive; nil means unbounded). The span
// includes one block past the end boundary: a two-level iterator steps
// into the next block before its caller can see that the first key
// there is out of range. n == 0 means no block can hold a key in the
// range.
func (r *Reader) DataWindow(start, end []byte) (off, n int64, err error) {
	it, err := newBlockIter(r.index)
	if err != nil {
		return 0, 0, err
	}
	if start == nil {
		it.SeekToFirst()
	} else {
		it.SeekGE(start)
	}
	if !it.Valid() {
		return 0, 0, it.Error()
	}
	first, _, err := decodeHandle(it.Value())
	if err != nil {
		return 0, 0, err
	}
	last := first
	for it.Valid() {
		h, _, herr := decodeHandle(it.Value())
		if herr != nil {
			return 0, 0, herr
		}
		if h.offset >= last.offset {
			last = h
		}
		if end != nil && keys.Compare(it.Key(), end) >= 0 {
			// This block's separator reaches end, so the scan stops
			// inside it or at the first key of the block after it —
			// include that one block and stop.
			it.Next()
			if it.Valid() {
				if h2, _, e2 := decodeHandle(it.Value()); e2 == nil && h2.offset >= last.offset {
					last = h2
				}
			}
			break
		}
		it.Next()
	}
	if err := it.Error(); err != nil {
		return 0, 0, err
	}
	off = int64(first.offset)
	n = int64(last.offset+last.length+blockTrailerLen) - off
	return off, n, nil
}

// WithFile returns a Reader sharing r's parsed metadata (index and
// filter, already pinned in memory) but reading data blocks from f
// instead — used by compaction inputs whose data window was bulk-loaded
// into memory after the metadata was read from the real file.
func (r *Reader) WithFile(f vfs.File) *Reader {
	nr := *r
	nr.f = f
	return &nr
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// NewIter returns a two-level iterator over the whole table.
func (r *Reader) NewIter() iterator.Iterator {
	return &tableIter{r: r}
}

// tableIter is the classic two-level iterator: an index iterator
// selecting data blocks, and a data iterator within the current block.
type tableIter struct {
	r    *Reader
	idx  *blockIter
	data *blockIter
	err  error
}

func (t *tableIter) init() bool {
	if t.idx == nil {
		it, err := newBlockIter(t.r.index)
		if err != nil {
			t.err = err
			return false
		}
		t.idx = it
	}
	return true
}

// loadData opens the data block at the current index position.
func (t *tableIter) loadData() {
	t.data = nil
	if !t.idx.Valid() {
		return
	}
	h, _, err := decodeHandle(t.idx.Value())
	if err != nil {
		t.err = err
		return
	}
	contents, _, err := t.r.getBlock(h)
	if err != nil {
		t.err = err
		return
	}
	d, err := newBlockIter(contents)
	if err != nil {
		t.err = err
		return
	}
	t.data = d
}

// skipEmpty advances past exhausted data blocks.
func (t *tableIter) skipEmpty() {
	for t.err == nil && t.data != nil && !t.data.Valid() {
		if err := t.data.Error(); err != nil {
			t.err = err
			return
		}
		t.idx.Next()
		t.loadData()
		if t.data != nil {
			t.data.SeekToFirst()
		}
	}
}

// skipEmptyBackward steps back across exhausted data blocks.
func (t *tableIter) skipEmptyBackward() {
	for t.err == nil && t.data != nil && !t.data.Valid() {
		if err := t.data.Error(); err != nil {
			t.err = err
			return
		}
		t.idx.Prev()
		t.loadData()
		if t.data != nil {
			t.data.SeekToLast()
		}
	}
}

func (t *tableIter) Valid() bool {
	return t.err == nil && t.data != nil && t.data.Valid()
}

func (t *tableIter) SeekGE(target []byte) {
	if !t.init() {
		return
	}
	t.idx.SeekGE(target)
	t.loadData()
	if t.data != nil {
		t.data.SeekGE(target)
	}
	t.skipEmpty()
}

func (t *tableIter) SeekToFirst() {
	if !t.init() {
		return
	}
	t.idx.SeekToFirst()
	t.loadData()
	if t.data != nil {
		t.data.SeekToFirst()
	}
	t.skipEmpty()
}

func (t *tableIter) Next() {
	if !t.Valid() {
		return
	}
	t.data.Next()
	t.skipEmpty()
}

func (t *tableIter) SeekToLast() {
	if !t.init() {
		return
	}
	t.idx.SeekToLast()
	t.loadData()
	if t.data != nil {
		t.data.SeekToLast()
	}
	t.skipEmptyBackward()
}

func (t *tableIter) SeekLT(target []byte) {
	if !t.init() {
		return
	}
	// The block that may contain entries < target is the one whose
	// separator is ≥ target (same block SeekGE would search), or the
	// last block when target is past everything.
	t.idx.SeekGE(target)
	if !t.idx.Valid() {
		t.idx.SeekToLast()
	}
	t.loadData()
	if t.data != nil {
		t.data.SeekLT(target)
	}
	t.skipEmptyBackward()
}

func (t *tableIter) Prev() {
	if !t.Valid() {
		return
	}
	t.data.Prev()
	t.skipEmptyBackward()
}

func (t *tableIter) Key() []byte   { return t.data.Key() }
func (t *tableIter) Value() []byte { return t.data.Value() }
func (t *tableIter) Error() error  { return t.err }

// Close releases the iterator (the table's file stays open; the Reader
// owns it).
func (t *tableIter) Close() error { return t.err }

var _ iterator.Iterator = (*tableIter)(nil)
