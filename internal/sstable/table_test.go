package sstable

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"xpointdb/internal/cache"
	"xpointdb/internal/clock"
	"xpointdb/internal/keys"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

func newFS() *vfs.MemFS {
	return vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
}

func ik(user string, seq uint64) []byte {
	return keys.Make([]byte(user), seq, keys.KindSet)
}

// buildTable writes n sequential entries and returns an open Reader.
func buildTable(t *testing.T, n int, c *cache.Cache, opts BuilderOptions) (*Reader, *vfs.MemFS) {
	t.Helper()
	fs := newFS()
	f, err := fs.Create("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(f, opts)
	for i := 0; i < n; i++ {
		key := ik(fmt.Sprintf("key-%06d", i), uint64(i+1))
		if err := b.Add(key, []byte(fmt.Sprintf("value-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	size, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()

	rf, err := fs.Open("t.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(rf, size, 1, c)
	if err != nil {
		t.Fatal(err)
	}
	return r, fs
}

func TestBuildAndGetEveryKey(t *testing.T) {
	const n = 2000
	r, _ := buildTable(t, n, nil, DefaultBuilderOptions())
	for i := 0; i < n; i++ {
		user := fmt.Sprintf("key-%06d", i)
		k, v, _, found, err := r.Get(keys.SearchKey([]byte(user), keys.MaxSeq))
		if err != nil || !found {
			t.Fatalf("Get %s: found=%v err=%v", user, found, err)
		}
		if string(keys.UserKey(k)) != user {
			t.Fatalf("Get %s returned key %s", user, keys.String(k))
		}
		if want := fmt.Sprintf("value-%06d", i); string(v) != want {
			t.Fatalf("Get %s = %q", user, v)
		}
	}
}

func TestGetAbsentKeys(t *testing.T) {
	r, _ := buildTable(t, 100, nil, DefaultBuilderOptions())
	// A key beyond the last entry: not found.
	_, _, _, found, err := r.Get(keys.SearchKey([]byte("zzz"), keys.MaxSeq))
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("found a key past the table range")
	}
	// A key between entries: Get returns the NEXT entry; the caller
	// checks user-key equality.
	k, _, _, found, err := r.Get(keys.SearchKey([]byte("key-000050x"), keys.MaxSeq))
	if err != nil || !found {
		t.Fatalf("between-keys get: %v %v", found, err)
	}
	if string(keys.UserKey(k)) != "key-000051" {
		t.Fatalf("between-keys get landed on %s", keys.String(k))
	}
}

func TestIterFullScan(t *testing.T) {
	const n = 3000
	r, _ := buildTable(t, n, nil, DefaultBuilderOptions())
	it := r.NewIter()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		want := fmt.Sprintf("key-%06d", i)
		if string(keys.UserKey(it.Key())) != want {
			t.Fatalf("scan position %d = %s", i, keys.String(it.Key()))
		}
		i++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d of %d", i, n)
	}
}

func TestIterSeekGE(t *testing.T) {
	r, _ := buildTable(t, 1000, nil, DefaultBuilderOptions())
	it := r.NewIter()
	it.SeekGE(keys.SearchKey([]byte("key-000500"), keys.MaxSeq))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "key-000500" {
		t.Fatalf("SeekGE exact = %s", keys.String(it.Key()))
	}
	it.SeekGE(keys.SearchKey([]byte("key-0005005"), keys.MaxSeq))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "key-000501" {
		t.Fatalf("SeekGE between = %s", keys.String(it.Key()))
	}
	it.SeekGE(keys.SearchKey([]byte("zzz"), keys.MaxSeq))
	if it.Valid() {
		t.Fatal("SeekGE past end valid")
	}
}

func TestBloomFilterSkips(t *testing.T) {
	r, _ := buildTable(t, 1000, nil, DefaultBuilderOptions())
	for i := 0; i < 1000; i++ {
		if !r.MayContain([]byte(fmt.Sprintf("key-%06d", i))) {
			t.Fatal("bloom false negative")
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if r.MayContain([]byte(fmt.Sprintf("nope-%06d", i))) {
			fp++
		}
	}
	if fp > 50 {
		t.Fatalf("bloom false positive rate too high: %d/1000", fp)
	}
}

func TestNoBloomIsPermissive(t *testing.T) {
	opts := DefaultBuilderOptions()
	opts.BloomBitsPerKey = 0
	r, _ := buildTable(t, 10, nil, opts)
	if !r.MayContain([]byte("anything")) {
		t.Fatal("without a filter MayContain must be permissive")
	}
}

func TestBlockCacheUsed(t *testing.T) {
	c := cache.New(1 << 20)
	r, _ := buildTable(t, 2000, c, DefaultBuilderOptions())
	target := keys.SearchKey([]byte("key-001000"), keys.MaxSeq)
	if _, _, _, _, err := r.Get(target); err != nil {
		t.Fatal(err)
	}
	h0, m0 := c.Stats()
	if _, _, _, _, err := r.Get(target); err != nil {
		t.Fatal(err)
	}
	h1, _ := c.Stats()
	if h1 != h0+1 {
		t.Fatalf("second Get should hit cache: hits %d→%d (misses %d)", h0, h1, m0)
	}
}

func TestOutOfOrderAddRejected(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("x.sst")
	b := NewBuilder(f, DefaultBuilderOptions())
	if err := b.Add(ik("b", 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(ik("a", 1), nil); err == nil {
		t.Fatal("out-of-order key accepted")
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("c.sst")
	b := NewBuilder(f, DefaultBuilderOptions())
	for i := 0; i < 500; i++ {
		b.Add(ik(fmt.Sprintf("key-%06d", i), uint64(i+1)), []byte("v"))
	}
	size, _ := b.Finish()
	f.Sync()
	f.Close()

	// Corrupt a byte in the first data block.
	rf, _ := fs.Open("c.sst")
	raw := make([]byte, size)
	rf.ReadAt(raw, 0)
	rf.Close()
	raw[10] ^= 0xFF
	fs.Remove("c.sst")
	nf, _ := fs.Create("c.sst")
	nf.Write(raw)
	nf.Sync()

	r, err := NewReader(nf, size, 2, nil)
	if err != nil {
		// Index/footer corruption also acceptable detection point.
		return
	}
	_, _, _, _, err = r.Get(keys.SearchKey([]byte("key-000000"), keys.MaxSeq))
	if err == nil {
		t.Fatal("corrupt block not detected")
	}
}

func TestBadMagicRejected(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("m.sst")
	f.Write(bytes.Repeat([]byte{0}, 100))
	f.Sync()
	if _, err := NewReader(f, 100, 3, nil); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestEstimatedSizeMonotonic(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("e.sst")
	b := NewBuilder(f, DefaultBuilderOptions())
	prev := b.EstimatedSize()
	for i := 0; i < 100; i++ {
		b.Add(ik(fmt.Sprintf("key-%06d", i), uint64(i+1)), bytes.Repeat([]byte("v"), 200))
		if sz := b.EstimatedSize(); sz < prev {
			t.Fatalf("EstimatedSize shrank: %d < %d", sz, prev)
		} else {
			prev = sz
		}
	}
}

func TestSmallestLargest(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("s.sst")
	b := NewBuilder(f, DefaultBuilderOptions())
	b.Add(ik("aaa", 9), nil)
	b.Add(ik("mmm", 5), nil)
	b.Add(ik("zzz", 1), nil)
	b.Finish()
	if string(keys.UserKey(b.Smallest())) != "aaa" || string(keys.UserKey(b.Largest())) != "zzz" {
		t.Fatalf("bounds = %s .. %s", keys.String(b.Smallest()), keys.String(b.Largest()))
	}
}

// TestRoundTripProperty: arbitrary sorted key/value sets round-trip
// through build + scan.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw map[string]string) bool {
		if len(raw) == 0 {
			return true
		}
		users := make([]string, 0, len(raw))
		for k := range raw {
			users = append(users, k)
		}
		sort.Strings(users)

		fs := newFS()
		fl, _ := fs.Create("q.sst")
		b := NewBuilder(fl, DefaultBuilderOptions())
		for i, u := range users {
			if err := b.Add(keys.Make([]byte(u), uint64(i+1), keys.KindSet), []byte(raw[u])); err != nil {
				return false
			}
		}
		size, err := b.Finish()
		if err != nil {
			return false
		}
		fl.Sync()

		r, err := NewReader(fl, size, 9, nil)
		if err != nil {
			return false
		}
		it := r.NewIter()
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if string(keys.UserKey(it.Key())) != users[i] || string(it.Value()) != raw[users[i]] {
				return false
			}
			i++
		}
		return it.Error() == nil && i == len(users)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTinyBlockSizeManyBlocks(t *testing.T) {
	opts := BuilderOptions{BlockSize: 64, BloomBitsPerKey: 10}
	r, _ := buildTable(t, 500, nil, opts)
	it := r.NewIter()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		n++
	}
	if n != 500 {
		t.Fatalf("scanned %d with tiny blocks", n)
	}
	// Point lookups still work across many small blocks.
	_, _, _, found, err := r.Get(keys.SearchKey([]byte("key-000357"), keys.MaxSeq))
	if err != nil || !found {
		t.Fatalf("get with tiny blocks: %v %v", found, err)
	}
}
