package sstable

import (
	"fmt"
	"math/rand"
	"testing"

	"xpointdb/internal/keys"
)

func TestIterBackwardFullScan(t *testing.T) {
	const n = 3000
	r, _ := buildTable(t, n, nil, DefaultBuilderOptions())
	it := r.NewIter()
	i := n - 1
	for it.SeekToLast(); it.Valid(); it.Prev() {
		want := fmt.Sprintf("key-%06d", i)
		if string(keys.UserKey(it.Key())) != want {
			t.Fatalf("backward position %d = %s, want %s", i, keys.String(it.Key()), want)
		}
		if wantV := fmt.Sprintf("value-%06d", i); string(it.Value()) != wantV {
			t.Fatalf("backward value %d = %q", i, it.Value())
		}
		i--
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != -1 {
		t.Fatalf("backward scan stopped at %d", i)
	}
}

func TestIterSeekLT(t *testing.T) {
	r, _ := buildTable(t, 1000, nil, DefaultBuilderOptions())
	it := r.NewIter()
	it.SeekLT(keys.SearchKey([]byte("key-000500"), keys.MaxSeq))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "key-000499" {
		t.Fatalf("SeekLT(500) = %s", keys.String(it.Key()))
	}
	it.SeekLT(keys.SearchKey([]byte("zzz"), keys.MaxSeq))
	if !it.Valid() || string(keys.UserKey(it.Key())) != "key-000999" {
		t.Fatalf("SeekLT(zzz) = %s", keys.String(it.Key()))
	}
	it.SeekLT(keys.SearchKey([]byte("key-000000"), keys.MaxSeq))
	if it.Valid() {
		t.Fatal("SeekLT before first valid")
	}
}

func TestIterDirectionSwitches(t *testing.T) {
	r, _ := buildTable(t, 500, nil, DefaultBuilderOptions())
	it := r.NewIter()
	it.SeekGE(keys.SearchKey([]byte("key-000250"), keys.MaxSeq))
	if string(keys.UserKey(it.Key())) != "key-000250" {
		t.Fatalf("seek = %s", keys.String(it.Key()))
	}
	it.Next() // 251
	it.Prev() // 250
	if string(keys.UserKey(it.Key())) != "key-000250" {
		t.Fatalf("next-prev = %s", keys.String(it.Key()))
	}
	it.Prev() // 249
	if string(keys.UserKey(it.Key())) != "key-000249" {
		t.Fatalf("prev = %s", keys.String(it.Key()))
	}
	it.Next() // 250
	if string(keys.UserKey(it.Key())) != "key-000250" {
		t.Fatalf("prev-next = %s", keys.String(it.Key()))
	}
}

func TestIterBackwardTinyBlocks(t *testing.T) {
	// Tiny blocks force many block boundaries on the backward walk.
	opts := BuilderOptions{BlockSize: 64, BloomBitsPerKey: 10}
	const n = 700
	r, _ := buildTable(t, n, nil, opts)
	it := r.NewIter()
	i := n - 1
	for it.SeekToLast(); it.Valid(); it.Prev() {
		if string(keys.UserKey(it.Key())) != fmt.Sprintf("key-%06d", i) {
			t.Fatalf("tiny-block backward at %d = %s", i, keys.String(it.Key()))
		}
		i--
	}
	if i != -1 {
		t.Fatalf("stopped at %d", i)
	}
}

func TestIterRandomWalkMatchesIndex(t *testing.T) {
	const n = 400
	r, _ := buildTable(t, n, nil, BuilderOptions{BlockSize: 256, BloomBitsPerKey: 10})
	it := r.NewIter()
	rng := rand.New(rand.NewSource(7))
	pos := n / 2
	it.SeekGE(keys.SearchKey([]byte(fmt.Sprintf("key-%06d", pos)), keys.MaxSeq))
	for step := 0; step < 500; step++ {
		if rng.Intn(2) == 0 && pos < n-1 {
			it.Next()
			pos++
		} else if pos > 0 {
			it.Prev()
			pos--
		} else {
			continue
		}
		if !it.Valid() {
			t.Fatalf("step %d: invalid at pos %d", step, pos)
		}
		want := fmt.Sprintf("key-%06d", pos)
		if string(keys.UserKey(it.Key())) != want {
			t.Fatalf("step %d: %s, want %s", step, keys.String(it.Key()), want)
		}
	}
}
