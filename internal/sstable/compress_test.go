package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"xpointdb/internal/keys"
)

func TestFlateRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("compressible payload "), 200)
	c, ok := flateCompress(data)
	if !ok {
		t.Fatal("repetitive data should compress")
	}
	if len(c) >= len(data) {
		t.Fatalf("no savings: %d vs %d", len(c), len(data))
	}
	out, err := flateDecompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("round-trip mismatch")
	}
}

func TestFlateSkipsIncompressible(t *testing.T) {
	// High-entropy data: must be stored raw.
	data := make([]byte, 4096)
	x := uint64(88172645463325252)
	for i := range data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		data[i] = byte(x)
	}
	if _, ok := flateCompress(data); ok {
		t.Fatal("incompressible data claimed savings ≥ 1/8")
	}
}

func TestCompressedTableRoundTrip(t *testing.T) {
	opts := DefaultBuilderOptions()
	opts.Compression = FlateCompression
	const n = 2000
	r, _ := buildTable(t, n, nil, opts)

	// Every key readable by point lookup.
	for i := 0; i < n; i += 37 {
		user := fmt.Sprintf("key-%06d", i)
		k, v, _, found, err := r.Get(keys.SearchKey([]byte(user), keys.MaxSeq))
		if err != nil || !found {
			t.Fatalf("Get %s: %v %v", user, found, err)
		}
		if string(keys.UserKey(k)) != user || string(v) != fmt.Sprintf("value-%06d", i) {
			t.Fatalf("Get %s = %s %q", user, keys.String(k), v)
		}
	}
	// Full forward and backward scans.
	it := r.NewIter()
	cnt := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		cnt++
	}
	if cnt != n {
		t.Fatalf("forward scan %d", cnt)
	}
	cnt = 0
	for it.SeekToLast(); it.Valid(); it.Prev() {
		cnt++
	}
	if cnt != n {
		t.Fatalf("backward scan %d", cnt)
	}
}

func TestCompressionShrinksFile(t *testing.T) {
	build := func(c Compression) int64 {
		fs := newFS()
		f, _ := fs.Create("t.sst")
		b := NewBuilder(f, BuilderOptions{BlockSize: 4096, BloomBitsPerKey: 10, Compression: c})
		for i := 0; i < 1000; i++ {
			key := ik(fmt.Sprintf("key-%06d", i), uint64(i+1))
			b.Add(key, bytes.Repeat([]byte("abcdefgh"), 64)) // compressible values
		}
		size, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return size
	}
	raw := build(NoCompression)
	comp := build(FlateCompression)
	if comp >= raw {
		t.Fatalf("compression did not shrink: %d vs %d", comp, raw)
	}
	t.Logf("raw=%d compressed=%d (%.0f%%)", raw, comp, 100*float64(comp)/float64(raw))
}

func TestUnknownCodecRejected(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create("t.sst")
	b := NewBuilder(f, DefaultBuilderOptions())
	b.Add(ik("k", 1), []byte("v"))
	size, _ := b.Finish()
	f.Sync()

	// Corrupt the first block's codec byte AND fix up its CRC is
	// hard; instead just verify the reader rejects the mangled block
	// (either checksum or codec error is fine).
	raw := make([]byte, size)
	f.ReadAt(raw, 0)
	f.Close()
	fs.Remove("t.sst")
	nf, _ := fs.Create("t.sst")
	raw[len(raw)-footerLen-10] ^= 0x55 // somewhere in the index/trailer area
	nf.Write(raw)
	nf.Sync()
	if r, err := NewReader(nf, size, 1, nil); err == nil {
		if _, _, _, _, err := r.Get(keys.SearchKey([]byte("k"), keys.MaxSeq)); err == nil {
			it := r.NewIter()
			it.SeekToFirst()
			if it.Error() == nil && it.Valid() && string(it.Value()) == "v" {
				t.Skip("corruption landed in padding; acceptable")
			}
		}
	}
}
