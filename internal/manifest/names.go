package manifest

import (
	"fmt"
	"strconv"
	"strings"
)

// FileType classifies the files of a database directory.
type FileType int

// Database file types.
const (
	TypeUnknown FileType = iota
	TypeSST
	TypeWAL
	TypeManifest
	TypeCurrent
)

// SSTName returns the file name of SST number num.
func SSTName(num uint64) string { return fmt.Sprintf("%06d.sst", num) }

// WALName returns the file name of WAL number num.
func WALName(num uint64) string { return fmt.Sprintf("%06d.log", num) }

// ManifestName returns the file name of MANIFEST number num.
func ManifestName(num uint64) string { return fmt.Sprintf("MANIFEST-%06d", num) }

// CurrentName is the pointer file naming the live MANIFEST.
const CurrentName = "CURRENT"

// ParseName classifies a database file name, returning its type and
// number (0 for CURRENT).
func ParseName(name string) (FileType, uint64) {
	switch {
	case name == CurrentName:
		return TypeCurrent, 0
	case strings.HasPrefix(name, "MANIFEST-"):
		n, err := strconv.ParseUint(name[len("MANIFEST-"):], 10, 64)
		if err != nil {
			return TypeUnknown, 0
		}
		return TypeManifest, n
	case strings.HasSuffix(name, ".sst"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
		if err != nil {
			return TypeUnknown, 0
		}
		return TypeSST, n
	case strings.HasSuffix(name, ".log"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64)
		if err != nil {
			return TypeUnknown, 0
		}
		return TypeWAL, n
	}
	return TypeUnknown, 0
}
