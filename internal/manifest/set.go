package manifest

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"xpointdb/internal/vfs"
	"xpointdb/internal/wal"
)

// Set owns the current Version and the MANIFEST log. Manifest state
// (current version, allocator fields, the log) is not concurrency-safe
// by itself; the engine serializes access under its own mutex. The
// version/file reference counts and the zombie list are the exception:
// they are safe for concurrent use, because readers drop version
// references from arbitrary goroutines.
type Set struct {
	fs vfs.FS

	current *Version

	manifestNum  uint64
	manifestFile vfs.File
	manifestLog  *wal.Writer

	// zombieMu guards zombies. A file number is appended exactly once,
	// by the release of the last version referencing it.
	zombieMu sync.Mutex
	zombies  []uint64

	// NextFileNum is the next unallocated file number.
	NextFileNum uint64
	// LastSeq is the newest sequence number recorded durably.
	LastSeq uint64
	// LogNum is the WAL file number currently in use.
	LogNum uint64
}

// Create initializes a brand-new database directory: an empty version,
// MANIFEST-000001 and CURRENT.
func Create(fs vfs.FS) (*Set, error) {
	s := &Set{fs: fs, NextFileNum: 1}
	s.installCurrent(&Version{})
	s.manifestNum = s.AllocFileNum()
	f, err := fs.Create(ManifestName(s.manifestNum))
	if err != nil {
		return nil, fmt.Errorf("manifest: create: %w", err)
	}
	s.manifestFile = f
	s.manifestLog = wal.NewWriter(f)
	// Write a snapshot edit carrying the allocator state.
	next, last, log := s.NextFileNum, s.LastSeq, s.LogNum
	edit := &Edit{NextFileNum: &next, LastSeq: &last, LogNum: &log}
	if err := s.manifestLog.AddRecord(edit.Encode()); err != nil {
		return nil, err
	}
	if err := s.manifestLog.Sync(); err != nil {
		return nil, err
	}
	if err := s.setCurrent(s.manifestNum); err != nil {
		return nil, err
	}
	return s, nil
}

// Recover opens an existing database directory by replaying the
// MANIFEST named by CURRENT.
func Recover(fs vfs.FS) (*Set, error) {
	cf, err := fs.Open(CurrentName)
	if err != nil {
		return nil, fmt.Errorf("manifest: open CURRENT: %w", err)
	}
	defer cf.Close()
	buf := make([]byte, 64)
	n, err := cf.ReadAt(buf, 0)
	if n == 0 && err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("manifest: read CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(buf[:n]))
	typ, num := ParseName(name)
	if typ != TypeManifest {
		return nil, fmt.Errorf("manifest: CURRENT names %q, not a manifest", name)
	}

	s := &Set{fs: fs, NextFileNum: 1, manifestNum: num}
	s.installCurrent(&Version{})
	mf, err := fs.Open(name)
	if err != nil {
		return nil, fmt.Errorf("manifest: open %s: %w", name, err)
	}
	r := wal.NewReader(mf)
	for {
		rec, err := r.ReadRecord()
		if err == io.EOF {
			break
		}
		if err == wal.ErrCorrupt {
			// Torn tail of the manifest: stop at the last good edit.
			break
		}
		if err != nil {
			mf.Close()
			return nil, fmt.Errorf("manifest: replay %s: %w", name, err)
		}
		edit, err := DecodeEdit(rec)
		if err != nil {
			mf.Close()
			return nil, err
		}
		if err := s.applyMeta(edit); err != nil {
			mf.Close()
			return nil, err
		}
	}
	mf.Close()

	// Roll to a fresh manifest instead of appending past the old one's
	// tail (RocksDB behavior). Appending after a torn tail is a
	// correctness trap: replay stops at the first corruption, so edits
	// written beyond it would be silently dropped by the next
	// recovery. A fresh manifest with a full snapshot edit has no
	// tail to trip over, and makes the old file garbage.
	if err := s.rollManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// rollManifest creates a new MANIFEST holding one snapshot edit of the
// entire current state, points CURRENT at it, and removes the old
// file. On failure the old manifest remains CURRENT and intact.
func (s *Set) rollManifest() error {
	oldNum := s.manifestNum
	// The replayed NextFileNum may predate the old manifest's own
	// number (it is allocated before the snapshot edit is written);
	// never hand out a number at or below it.
	if s.NextFileNum <= oldNum {
		s.NextFileNum = oldNum + 1
	}
	newNum := s.AllocFileNum()
	f, err := s.fs.Create(ManifestName(newNum))
	if err != nil {
		return fmt.Errorf("manifest: roll: %w", err)
	}
	w := wal.NewWriter(f)
	next, last, log := s.NextFileNum, s.LastSeq, s.LogNum
	edit := &Edit{NextFileNum: &next, LastSeq: &last, LogNum: &log}
	for l := 0; l < NumLevels; l++ {
		for _, fm := range s.current.Files[l] {
			edit.Added = append(edit.Added, AddedFile{Level: l, Meta: fm})
			if fm.Quarantined() {
				edit.Quarantined = append(edit.Quarantined, QuarantinedFile{Level: l, Num: fm.Num})
			}
		}
	}
	if err := w.AddRecord(edit.Encode()); err != nil {
		f.Close()
		return fmt.Errorf("manifest: roll snapshot: %w", err)
	}
	if err := w.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("manifest: roll sync: %w", err)
	}
	if err := s.setCurrent(newNum); err != nil {
		f.Close()
		return err
	}
	s.manifestNum = newNum
	s.manifestFile = f
	s.manifestLog = w
	// Best effort: the old manifest is unreferenced now; the engine's
	// obsolete-file sweep also catches it.
	_ = s.fs.Remove(ManifestName(oldNum))
	return nil
}

// Roll switches to a fresh MANIFEST holding one snapshot edit of the
// entire current state and closes the superseded file's handle (the
// engine's error-recovery path uses this to abandon a manifest whose
// tail may hold a torn edit). On failure the old manifest remains
// CURRENT, open and intact, so the roll can be retried. Callers must
// serialize Roll against Append (the engine's manifestBusy flag).
func (s *Set) Roll() error {
	old := s.manifestFile
	if err := s.rollManifest(); err != nil {
		return err
	}
	if old != nil {
		// Best effort: the handle points at an already-unreferenced
		// file (possibly on a failing device).
		_ = old.Close()
	}
	return nil
}

// installCurrent makes nv the Set's current version. nv gains the
// Set's reference and one file reference per file BEFORE the previous
// current is unreferenced, so a file shared by both versions never
// transiently reaches zero references (a false zombie would delete a
// live SST).
func (s *Set) installCurrent(nv *Version) {
	nv.set = s
	for l := range nv.Files {
		for _, f := range nv.Files[l] {
			f.refs.Add(1)
		}
	}
	nv.Ref()
	old := s.current
	s.current = nv
	if old != nil {
		old.Unref()
	}
}

// noteZombie records that file num is no longer referenced by any
// version. Called by Version.release, possibly from a reader
// goroutine.
func (s *Set) noteZombie(num uint64) {
	s.zombieMu.Lock()
	s.zombies = append(s.zombies, num)
	s.zombieMu.Unlock()
}

// TakeZombies drains and returns the file numbers whose last version
// reference has dropped. Each number is returned exactly once; the
// caller owns their deletion.
func (s *Set) TakeZombies() []uint64 {
	s.zombieMu.Lock()
	z := s.zombies
	s.zombies = nil
	s.zombieMu.Unlock()
	return z
}

// applyMeta applies an edit's allocator fields and file changes to the
// in-memory state (used during replay and by LogAndApply).
func (s *Set) applyMeta(edit *Edit) error {
	nv, err := s.current.Apply(edit)
	if err != nil {
		return err
	}
	s.installCurrent(nv)
	if edit.NextFileNum != nil && *edit.NextFileNum > s.NextFileNum {
		s.NextFileNum = *edit.NextFileNum
	}
	if edit.LastSeq != nil && *edit.LastSeq > s.LastSeq {
		s.LastSeq = *edit.LastSeq
	}
	if edit.LogNum != nil && *edit.LogNum > s.LogNum {
		s.LogNum = *edit.LogNum
	}
	return nil
}

// LogAndApply durably appends edit to the MANIFEST and installs the
// resulting version as current. The edit is augmented with the current
// allocator state so that replay restores it.
//
// Concurrency note: the engine splits this into Prepare / Append /
// Install so that the manifest I/O happens outside the DB mutex
// (Prepare and Install are called under it; Append is serialized by
// the engine's manifestBusy flag).
func (s *Set) LogAndApply(edit *Edit) error {
	payload := s.Prepare(edit)
	if err := s.Append(payload); err != nil {
		return err
	}
	return s.Install(edit)
}

// Prepare augments edit with the allocator state and returns its
// encoded MANIFEST payload. Call under the engine mutex.
func (s *Set) Prepare(edit *Edit) []byte {
	next := s.NextFileNum
	if edit.NextFileNum == nil {
		edit.NextFileNum = &next
	}
	last := s.LastSeq
	if edit.LastSeq == nil {
		edit.LastSeq = &last
	}
	return edit.Encode()
}

// Append durably writes a prepared payload to the MANIFEST. Callers
// must serialize Append calls among themselves.
func (s *Set) Append(payload []byte) error {
	if err := s.manifestLog.AddRecord(payload); err != nil {
		return fmt.Errorf("manifest: append edit: %w", err)
	}
	if err := s.manifestLog.Sync(); err != nil {
		return fmt.Errorf("manifest: sync: %w", err)
	}
	return nil
}

// Install applies a previously appended edit to the in-memory state.
// Call under the engine mutex.
func (s *Set) Install(edit *Edit) error { return s.applyMeta(edit) }

// Current returns the live version.
func (s *Set) Current() *Version { return s.current }

// ManifestNum returns the file number of the live MANIFEST (for the
// obsolete-file sweep: any other manifest file is garbage).
func (s *Set) ManifestNum() uint64 { return s.manifestNum }

// AllocFileNum returns a fresh file number.
func (s *Set) AllocFileNum() uint64 {
	n := s.NextFileNum
	s.NextFileNum++
	return n
}

// MarkSeq advances LastSeq (called by the write path after commit).
func (s *Set) MarkSeq(seq uint64) {
	if seq > s.LastSeq {
		s.LastSeq = seq
	}
}

// setCurrent atomically points CURRENT at manifest num.
func (s *Set) setCurrent(num uint64) error {
	tmp := "CURRENT.tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(ManifestName(num) + "\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fs.Rename(tmp, CurrentName)
}

// Close releases the manifest file.
func (s *Set) Close() error {
	if s.manifestFile != nil {
		return s.manifestFile.Close()
	}
	return nil
}

// LiveFileNums returns the set of SST file numbers referenced by the
// current version. Runtime garbage collection is zombie-driven
// (TakeZombies); this remains for the open-time orphan sweep, which
// deletes directory leftovers from a crash before any reader exists.
func (s *Set) LiveFileNums() map[uint64]bool {
	live := make(map[uint64]bool)
	for l := 0; l < NumLevels; l++ {
		for _, f := range s.current.Files[l] {
			live[f.Num] = true
		}
	}
	return live
}
