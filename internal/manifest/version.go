// Package manifest maintains the LSM tree's file-level metadata: which
// SSTs exist at which level, their key ranges, and the MANIFEST log
// that makes this metadata durable. It mirrors the LevelDB/RocksDB
// design: every metadata change is a VersionEdit appended to the
// MANIFEST (which reuses the WAL record format); applying an edit to
// the current Version yields the next immutable Version; recovery
// replays the MANIFEST from scratch.
package manifest

import (
	"fmt"
	"sort"
	"sync/atomic"

	"xpointdb/internal/keys"
)

// NumLevels is the number of levels in the tree (L0..L6), matching
// RocksDB's default num_levels = 7.
const NumLevels = 7

// FileMeta describes one SST file.
type FileMeta struct {
	// Num is the file number (NNNNNN.sst).
	Num uint64
	// Size is the file size in bytes.
	Size int64
	// Smallest and Largest are the bounding internal keys.
	Smallest []byte
	Largest  []byte
	// Checksum is the CRC-32C of the file's full byte stream, computed
	// by the SST writer and persisted through the version edit. Zero
	// means no digest was recorded (files from pre-checksum manifests).
	Checksum uint32

	// quarantined marks a file in which corruption was detected; the
	// mark is persisted as its own edit record so it survives reopen,
	// and clears only when repair replaces (or drops) the file. It is
	// diagnostic state, not layout state: a quarantined file still
	// serves its intact blocks until repair completes.
	quarantined atomic.Bool

	// refs counts the versions currently holding this file. It is
	// owned by the version lifecycle: each version installed by a Set
	// adds one reference per file it contains, and releasing the last
	// reference to a version drops them. When a file's count reaches
	// zero it can no longer be reached by any reader and is reported
	// to the Set's zombie list for deletion.
	refs atomic.Int32
}

// Refs returns the number of versions referencing the file
// (tests/diagnostics).
func (f *FileMeta) Refs() int32 { return f.refs.Load() }

// Quarantined reports whether corruption has been detected in this file.
func (f *FileMeta) Quarantined() bool { return f.quarantined.Load() }

// MarkQuarantined flags the file as damaged. FileMetas are shared across
// versions, so the mark is visible to every version holding the file —
// the damage is a property of the file, not of one layout.
func (f *FileMeta) MarkQuarantined() { f.quarantined.Store(true) }

// ContainsUserKey reports whether the file's key range may contain
// userKey.
func (f *FileMeta) ContainsUserKey(userKey []byte) bool {
	return keys.CompareUserKeys(userKey, keys.UserKey(f.Smallest)) >= 0 &&
		keys.CompareUserKeys(userKey, keys.UserKey(f.Largest)) <= 0
}

// Version is an immutable snapshot of the file layout. Files[0] holds
// the Level-0 files ordered oldest→newest (ascending file number);
// levels 1+ are ordered by smallest key with disjoint ranges.
//
// Versions installed by a Set are refcounted: the Set itself holds one
// reference for the current version, and readers (the engine's
// SuperVersions, in-flight compactions) take additional references via
// Ref/Unref. A version's files cannot be deleted while any reference
// to a version containing them is live; when the last reference drops,
// files that no newer version carries are reported to the Set's zombie
// list, which is the sole trigger for SST deletion.
type Version struct {
	Files [NumLevels][]*FileMeta

	// refs counts live references (Set's current pointer + readers).
	refs atomic.Int32
	// set is the owning Set, for zombie reporting on release; nil for
	// free-standing versions built by tests, which are never
	// refcounted.
	set *Set
}

// Ref adds a reference to v. Callers must already hold a reference
// (or the Set's serialization) — Ref never resurrects a released
// version.
func (v *Version) Ref() { v.refs.Add(1) }

// Unref drops one reference; releasing the last one drops the file
// references this version holds and reports newly-unreferenced files
// as zombies. Safe to call from any goroutine.
func (v *Version) Unref() {
	n := v.refs.Add(-1)
	if n == 0 {
		v.release()
	} else if n < 0 {
		panic("manifest: Version refcount below zero")
	}
}

// Refs returns the live reference count (tests/diagnostics).
func (v *Version) Refs() int32 { return v.refs.Load() }

// release drops this version's file references. Files whose count
// reaches zero are unreachable by every current and pinned version and
// become zombies.
func (v *Version) release() {
	for l := range v.Files {
		for _, f := range v.Files[l] {
			n := f.refs.Add(-1)
			if n == 0 {
				if v.set != nil {
					v.set.noteZombie(f.Num)
				}
			} else if n < 0 {
				panic("manifest: FileMeta refcount below zero")
			}
		}
	}
}

// NumFiles returns the file count at level.
func (v *Version) NumFiles(level int) int { return len(v.Files[level]) }

// LevelBytes returns the total file bytes at level.
func (v *Version) LevelBytes(level int) int64 {
	var n int64
	for _, f := range v.Files[level] {
		n += f.Size
	}
	return n
}

// TotalFiles returns the file count across all levels.
func (v *Version) TotalFiles() int {
	n := 0
	for l := range v.Files {
		n += len(v.Files[l])
	}
	return n
}

// L0Newest returns the L0 files ordered newest→oldest, the order the
// read path must probe them in.
func (v *Version) L0Newest() []*FileMeta {
	src := v.Files[0]
	out := make([]*FileMeta, len(src))
	for i, f := range src {
		out[len(src)-1-i] = f
	}
	return out
}

// Overlaps returns the files at level whose user-key range intersects
// [smallest, largest]. For L0 every overlapping file is returned; for
// deeper levels the files are contiguous.
func (v *Version) Overlaps(level int, smallest, largest []byte) []*FileMeta {
	var out []*FileMeta
	for _, f := range v.Files[level] {
		if keys.CompareUserKeys(keys.UserKey(f.Largest), smallest) < 0 {
			continue
		}
		if largest != nil && keys.CompareUserKeys(keys.UserKey(f.Smallest), largest) > 0 {
			if level == 0 {
				continue
			}
			break
		}
		out = append(out, f)
	}
	return out
}

// FileForKey returns the single file at a sorted level (≥1) that may
// contain userKey, or nil. cmps counts binary-search comparisons for
// the CPU cost model.
func (v *Version) FileForKey(level int, userKey []byte) (f *FileMeta, cmps int) {
	files := v.Files[level]
	lo, hi := 0, len(files)
	for lo < hi {
		mid := (lo + hi) / 2
		cmps++
		if keys.CompareUserKeys(keys.UserKey(files[mid].Largest), userKey) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(files) {
		return nil, cmps
	}
	if keys.CompareUserKeys(userKey, keys.UserKey(files[lo].Smallest)) < 0 {
		return nil, cmps
	}
	return files[lo], cmps
}

// clone returns a mutable deep-ish copy (FileMeta values are shared;
// they are immutable once created).
func (v *Version) clone() *Version {
	nv := &Version{}
	for l := range v.Files {
		nv.Files[l] = append([]*FileMeta(nil), v.Files[l]...)
	}
	return nv
}

// Apply returns a new Version with edit applied.
func (v *Version) Apply(edit *Edit) (*Version, error) {
	nv := v.clone()
	for _, d := range edit.Deleted {
		files := nv.Files[d.Level]
		idx := -1
		for i, f := range files {
			if f.Num == d.Num {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("manifest: delete of absent file %d at L%d", d.Num, d.Level)
		}
		nv.Files[d.Level] = append(append([]*FileMeta(nil), files[:idx]...), files[idx+1:]...)
	}
	for _, a := range edit.Added {
		nv.Files[a.Level] = append(append([]*FileMeta(nil), nv.Files[a.Level]...), a.Meta)
	}
	for _, q := range edit.Quarantined {
		// Tolerate a mark for a file no longer at the level: a replayed
		// manifest may quarantine a file a later edit already removed.
		for _, f := range nv.Files[q.Level] {
			if f.Num == q.Num {
				f.MarkQuarantined()
				break
			}
		}
	}
	for l := range nv.Files {
		sortLevel(l, nv.Files[l])
	}
	if err := nv.checkInvariants(); err != nil {
		return nil, err
	}
	return nv, nil
}

func sortLevel(level int, files []*FileMeta) {
	if level == 0 {
		sort.Slice(files, func(i, j int) bool { return files[i].Num < files[j].Num })
		return
	}
	sort.Slice(files, func(i, j int) bool {
		return keys.Compare(files[i].Smallest, files[j].Smallest) < 0
	})
}

// checkInvariants verifies sorted levels have disjoint, ordered ranges.
func (v *Version) checkInvariants() error {
	for l := 1; l < NumLevels; l++ {
		files := v.Files[l]
		for i := 1; i < len(files); i++ {
			prev, cur := files[i-1], files[i]
			if keys.CompareUserKeys(keys.UserKey(prev.Largest), keys.UserKey(cur.Smallest)) >= 0 {
				return fmt.Errorf("manifest: L%d files %d and %d overlap: %s ≥ %s",
					l, prev.Num, cur.Num, keys.String(prev.Largest), keys.String(cur.Smallest))
			}
		}
	}
	return nil
}

// DebugString renders the layout for logs and tests.
func (v *Version) DebugString() string {
	s := ""
	for l := 0; l < NumLevels; l++ {
		if len(v.Files[l]) == 0 {
			continue
		}
		s += fmt.Sprintf("L%d:", l)
		for _, f := range v.Files[l] {
			s += fmt.Sprintf(" %d(%dB)", f.Num, f.Size)
		}
		s += "\n"
	}
	return s
}
