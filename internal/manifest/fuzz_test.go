package manifest

import (
	"bytes"
	"testing"
)

// editsEquivalent compares the decoder-visible fields of two edits.
// Byte-level comparison would be wrong: a legacy tag-4 added-file
// record re-encodes as tag-6, and out-of-range varints normalize on
// the uint32/int64 truncation the decoder applies.
func editsEquivalent(a, b *Edit) bool {
	u64eq := func(x, y *uint64) bool {
		if (x == nil) != (y == nil) {
			return false
		}
		return x == nil || *x == *y
	}
	if !u64eq(a.LogNum, b.LogNum) || !u64eq(a.NextFileNum, b.NextFileNum) || !u64eq(a.LastSeq, b.LastSeq) {
		return false
	}
	if len(a.Added) != len(b.Added) || len(a.Deleted) != len(b.Deleted) ||
		len(a.Quarantined) != len(b.Quarantined) {
		return false
	}
	for i := range a.Added {
		x, y := a.Added[i], b.Added[i]
		if x.Level != y.Level || x.Meta.Num != y.Meta.Num || x.Meta.Size != y.Meta.Size ||
			x.Meta.Checksum != y.Meta.Checksum ||
			!bytes.Equal(x.Meta.Smallest, y.Meta.Smallest) ||
			!bytes.Equal(x.Meta.Largest, y.Meta.Largest) {
			return false
		}
	}
	for i := range a.Deleted {
		if a.Deleted[i] != b.Deleted[i] {
			return false
		}
	}
	for i := range a.Quarantined {
		if a.Quarantined[i] != b.Quarantined[i] {
			return false
		}
	}
	return true
}

// FuzzDecodeEdit feeds arbitrary bytes to the MANIFEST edit decoder:
// it must never panic or loop, and any payload it accepts must
// round-trip — re-encoding the decoded edit and decoding again yields
// a semantically identical edit. This pins the compatibility contract
// between the legacy (tag 4) and checksummed (tag 6) added-file
// records: the decoder takes both, the encoder emits only tag 6.
func FuzzDecodeEdit(f *testing.F) {
	ln, nf, ls := uint64(7), uint64(42), uint64(100000)
	full := &Edit{
		LogNum: &ln, NextFileNum: &nf, LastSeq: &ls,
		Added: []AddedFile{{Level: 1, Meta: &FileMeta{
			Num: 9, Size: 4096, Checksum: 0xdeadbeef,
			Smallest: []byte("aaa"), Largest: []byte("zzz"),
		}}},
		Deleted:     []DeletedFile{{Level: 2, Num: 5}},
		Quarantined: []QuarantinedFile{{Level: 3, Num: 6}},
	}
	f.Add(full.Encode())
	f.Add((&Edit{}).Encode())
	f.Add([]byte{tagLogNum}) // truncated varint payload
	f.Add([]byte("garbage that is not an edit"))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEdit(data)
		if err != nil {
			return
		}
		enc := e.Encode()
		e2, err := DecodeEdit(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted edit failed: %v\ninput: %x\nre-encoded: %x", err, data, enc)
		}
		if !editsEquivalent(e, e2) {
			t.Fatalf("edit round-trip diverged\ninput: %x\nfirst: %+v\nsecond: %+v", data, e, e2)
		}
	})
}
