package manifest

import (
	"testing"

	"xpointdb/internal/clock"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

// TestVersionRefsDriveZombies verifies the reference-driven deletion
// protocol: a file deleted from the current version is not a zombie
// while an older version still holds it (a pinned reader), and becomes
// one exactly when that version's last reference drops.
func TestVersionRefsDriveZombies(t *testing.T) {
	fs := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	s, err := Create(fs)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	num := s.AllocFileNum()
	add := &Edit{Added: []AddedFile{{Level: 0, Meta: &FileMeta{
		Num: num, Size: 100, Smallest: []byte("a"), Largest: []byte("z"),
	}}}}
	if err := s.LogAndApply(add); err != nil {
		t.Fatalf("LogAndApply add: %v", err)
	}

	// A reader pins the version holding the file.
	pinned := s.Current()
	pinned.Ref()

	// Delete the file from the current version.
	del := &Edit{Deleted: []DeletedFile{{Level: 0, Num: num}}}
	if err := s.LogAndApply(del); err != nil {
		t.Fatalf("LogAndApply delete: %v", err)
	}

	if z := s.TakeZombies(); len(z) != 0 {
		t.Fatalf("TakeZombies = %v while a version still references file %d, want none", z, num)
	}

	// The pin drops: the file's last reference dies with it.
	pinned.Unref()
	z := s.TakeZombies()
	if len(z) != 1 || z[0] != num {
		t.Fatalf("TakeZombies after final Unref = %v, want [%d]", z, num)
	}
	// Exactly once: a second take finds nothing.
	if z := s.TakeZombies(); len(z) != 0 {
		t.Fatalf("second TakeZombies = %v, want none", z)
	}
}

// TestSharedFilesSurviveInstall checks that installing a new current
// version refs shared files before unreffing the old current, so a file
// carried from one version to the next never transits through zero.
func TestSharedFilesSurviveInstall(t *testing.T) {
	fs := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	s, err := Create(fs)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	keep := s.AllocFileNum()
	if err := s.LogAndApply(&Edit{Added: []AddedFile{{Level: 1, Meta: &FileMeta{
		Num: keep, Size: 100, Smallest: []byte("a"), Largest: []byte("m"),
	}}}}); err != nil {
		t.Fatalf("LogAndApply: %v", err)
	}

	// Several unrelated edits: "keep" is shared across every install.
	for i := 0; i < 3; i++ {
		n := s.AllocFileNum()
		if err := s.LogAndApply(&Edit{Added: []AddedFile{{Level: 0, Meta: &FileMeta{
			Num: n, Size: 10, Smallest: []byte("n"), Largest: []byte("z"),
		}}}}); err != nil {
			t.Fatalf("LogAndApply %d: %v", i, err)
		}
	}

	if z := s.TakeZombies(); len(z) != 0 {
		t.Fatalf("TakeZombies = %v, want none: no file was deleted", z)
	}
	var found bool
	for _, f := range s.Current().Files[1] {
		if f.Num == keep {
			found = true
			if r := f.Refs(); r < 1 {
				t.Fatalf("shared file refs = %d, want >= 1", r)
			}
		}
	}
	if !found {
		t.Fatalf("file %d missing from current version", keep)
	}
}
