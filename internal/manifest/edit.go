package manifest

import (
	"encoding/binary"
	"fmt"
)

// Edit is one atomic change to the DB metadata, appended to the
// MANIFEST. Nil pointer fields are "unchanged".
type Edit struct {
	// LogNum records the WAL file whose contents are fully reflected
	// in the tree (older logs are obsolete after this edit).
	LogNum *uint64
	// NextFileNum advances the file-number allocator.
	NextFileNum *uint64
	// LastSeq records the newest durable sequence number.
	LastSeq *uint64
	// Added and Deleted list SST changes.
	Added   []AddedFile
	Deleted []DeletedFile
	// Quarantined marks files in which corruption was detected; the
	// mark survives manifest replay so repair can resume after reopen.
	Quarantined []QuarantinedFile
}

// AddedFile places Meta at Level.
type AddedFile struct {
	Level int
	Meta  *FileMeta
}

// DeletedFile removes file Num from Level.
type DeletedFile struct {
	Level int
	Num   uint64
}

// QuarantinedFile marks file Num at Level as damaged.
type QuarantinedFile struct {
	Level int
	Num   uint64
}

// Field tags of the MANIFEST record encoding.
const (
	tagLogNum      = 1
	tagNextFileNum = 2
	tagLastSeq     = 3
	tagAddedFile   = 4 // legacy: added file without a file checksum
	tagDeletedFile = 5
	// tagAddedFileChecksum supersedes tagAddedFile: same fields plus the
	// whole-file CRC-32C. The encoder always emits this form; the
	// decoder accepts both so pre-checksum manifests still replay.
	tagAddedFileChecksum = 6
	tagQuarantinedFile   = 7
)

// Encode serializes the edit as a MANIFEST record payload.
func (e *Edit) Encode() []byte {
	var b []byte
	put := func(tag int, v uint64) {
		b = binary.AppendUvarint(b, uint64(tag))
		b = binary.AppendUvarint(b, v)
	}
	if e.LogNum != nil {
		put(tagLogNum, *e.LogNum)
	}
	if e.NextFileNum != nil {
		put(tagNextFileNum, *e.NextFileNum)
	}
	if e.LastSeq != nil {
		put(tagLastSeq, *e.LastSeq)
	}
	for _, a := range e.Added {
		b = binary.AppendUvarint(b, tagAddedFileChecksum)
		b = binary.AppendUvarint(b, uint64(a.Level))
		b = binary.AppendUvarint(b, a.Meta.Num)
		b = binary.AppendUvarint(b, uint64(a.Meta.Size))
		b = binary.AppendUvarint(b, uint64(a.Meta.Checksum))
		b = appendBytes(b, a.Meta.Smallest)
		b = appendBytes(b, a.Meta.Largest)
	}
	for _, d := range e.Deleted {
		b = binary.AppendUvarint(b, tagDeletedFile)
		b = binary.AppendUvarint(b, uint64(d.Level))
		b = binary.AppendUvarint(b, d.Num)
	}
	for _, q := range e.Quarantined {
		b = binary.AppendUvarint(b, tagQuarantinedFile)
		b = binary.AppendUvarint(b, uint64(q.Level))
		b = binary.AppendUvarint(b, q.Num)
	}
	return b
}

// DecodeEdit parses a MANIFEST record payload.
func DecodeEdit(p []byte) (*Edit, error) {
	e := &Edit{}
	d := decoder{p: p}
	for !d.done() {
		tag := d.uvarint()
		switch tag {
		case tagLogNum:
			v := d.uvarint()
			e.LogNum = &v
		case tagNextFileNum:
			v := d.uvarint()
			e.NextFileNum = &v
		case tagLastSeq:
			v := d.uvarint()
			e.LastSeq = &v
		case tagAddedFile, tagAddedFileChecksum:
			level := int(d.uvarint())
			meta := &FileMeta{
				Num:  d.uvarint(),
				Size: int64(d.uvarint()),
			}
			if tag == tagAddedFileChecksum {
				meta.Checksum = uint32(d.uvarint())
			}
			meta.Smallest = d.bytes()
			meta.Largest = d.bytes()
			if level < 0 || level >= NumLevels {
				return nil, fmt.Errorf("manifest: added file at invalid level %d", level)
			}
			e.Added = append(e.Added, AddedFile{Level: level, Meta: meta})
		case tagQuarantinedFile:
			level := int(d.uvarint())
			num := d.uvarint()
			if level < 0 || level >= NumLevels {
				return nil, fmt.Errorf("manifest: quarantined file at invalid level %d", level)
			}
			e.Quarantined = append(e.Quarantined, QuarantinedFile{Level: level, Num: num})
		case tagDeletedFile:
			level := int(d.uvarint())
			num := d.uvarint()
			if level < 0 || level >= NumLevels {
				return nil, fmt.Errorf("manifest: deleted file at invalid level %d", level)
			}
			e.Deleted = append(e.Deleted, DeletedFile{Level: level, Num: num})
		default:
			return nil, fmt.Errorf("manifest: unknown edit tag %d", tag)
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	return e, nil
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

type decoder struct {
	p   []byte
	err error
}

func (d *decoder) done() bool { return len(d.p) == 0 || d.err != nil }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		d.err = fmt.Errorf("manifest: truncated varint")
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.p)) < n {
		d.err = fmt.Errorf("manifest: truncated bytes field")
		return nil
	}
	out := make([]byte, n)
	copy(out, d.p[:n])
	d.p = d.p[n:]
	return out
}
