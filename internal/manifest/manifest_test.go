package manifest

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"xpointdb/internal/clock"
	"xpointdb/internal/keys"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

func newFS() *vfs.MemFS {
	return vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
}

func fm(num uint64, lo, hi string) *FileMeta {
	return &FileMeta{
		Num:      num,
		Size:     1000,
		Smallest: keys.Make([]byte(lo), 1, keys.KindSet),
		Largest:  keys.Make([]byte(hi), 1, keys.KindSet),
	}
}

func TestEditEncodeDecodeRoundTrip(t *testing.T) {
	log, next, seq := uint64(7), uint64(42), uint64(999)
	e := &Edit{
		LogNum:      &log,
		NextFileNum: &next,
		LastSeq:     &seq,
		Added: []AddedFile{
			{Level: 0, Meta: fm(10, "a", "m")},
			{Level: 3, Meta: fm(11, "n", "z")},
		},
		Deleted: []DeletedFile{{Level: 1, Num: 5}},
	}
	got, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got.LogNum != 7 || *got.NextFileNum != 42 || *got.LastSeq != 999 {
		t.Fatalf("scalars = %d %d %d", *got.LogNum, *got.NextFileNum, *got.LastSeq)
	}
	if len(got.Added) != 2 || got.Added[1].Level != 3 || got.Added[1].Meta.Num != 11 {
		t.Fatalf("added = %+v", got.Added)
	}
	if !bytes.Equal(got.Added[0].Meta.Smallest, e.Added[0].Meta.Smallest) {
		t.Fatal("smallest key corrupted")
	}
	if len(got.Deleted) != 1 || got.Deleted[0].Num != 5 {
		t.Fatalf("deleted = %+v", got.Deleted)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeEdit([]byte{0xFF, 0xFF}); err == nil {
		t.Fatal("garbage tag accepted")
	}
	// Added file at invalid level.
	bad := (&Edit{Added: []AddedFile{{Level: 0, Meta: fm(1, "a", "b")}}}).Encode()
	bad[1] = 99 // level byte
	if _, err := DecodeEdit(bad); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestEditRoundTripProperty(t *testing.T) {
	f := func(nums []uint64, levels []uint8) bool {
		e := &Edit{}
		n := len(nums)
		if len(levels) < n {
			n = len(levels)
		}
		for i := 0; i < n; i++ {
			lvl := int(levels[i]) % NumLevels
			e.Added = append(e.Added, AddedFile{Level: lvl, Meta: fm(nums[i], fmt.Sprintf("k%d", i), fmt.Sprintf("k%d~", i))})
		}
		got, err := DecodeEdit(e.Encode())
		if err != nil || len(got.Added) != n {
			return false
		}
		for i := range got.Added {
			if got.Added[i].Meta.Num != e.Added[i].Meta.Num || got.Added[i].Level != e.Added[i].Level {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionApplyAddDelete(t *testing.T) {
	v := &Version{}
	v1, err := v.Apply(&Edit{Added: []AddedFile{
		{Level: 0, Meta: fm(3, "a", "f")},
		{Level: 0, Meta: fm(1, "c", "k")},
		{Level: 1, Meta: fm(2, "a", "f")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// L0 ordered by file number ascending.
	if v1.Files[0][0].Num != 1 || v1.Files[0][1].Num != 3 {
		t.Fatalf("L0 order: %v", v1.DebugString())
	}
	// Original version untouched.
	if v.TotalFiles() != 0 {
		t.Fatal("Apply mutated the receiver")
	}

	v2, err := v1.Apply(&Edit{Deleted: []DeletedFile{{Level: 0, Num: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if v2.NumFiles(0) != 1 || v2.Files[0][0].Num != 1 {
		t.Fatalf("delete failed: %v", v2.DebugString())
	}
}

func TestApplyDeleteAbsentFails(t *testing.T) {
	v := &Version{}
	if _, err := v.Apply(&Edit{Deleted: []DeletedFile{{Level: 2, Num: 9}}}); err == nil {
		t.Fatal("deleting absent file accepted")
	}
}

func TestApplyOverlapInvariant(t *testing.T) {
	v := &Version{}
	_, err := v.Apply(&Edit{Added: []AddedFile{
		{Level: 1, Meta: fm(1, "a", "m")},
		{Level: 1, Meta: fm(2, "k", "z")}, // overlaps at L1: invalid
	}})
	if err == nil {
		t.Fatal("overlapping L1 files accepted")
	}
	// Overlap at L0 is fine.
	if _, err := v.Apply(&Edit{Added: []AddedFile{
		{Level: 0, Meta: fm(1, "a", "m")},
		{Level: 0, Meta: fm(2, "k", "z")},
	}}); err != nil {
		t.Fatalf("overlapping L0 rejected: %v", err)
	}
}

func TestL0NewestOrder(t *testing.T) {
	v := &Version{}
	v1, _ := v.Apply(&Edit{Added: []AddedFile{
		{Level: 0, Meta: fm(5, "a", "b")},
		{Level: 0, Meta: fm(9, "a", "b")},
		{Level: 0, Meta: fm(2, "a", "b")},
	}})
	newest := v1.L0Newest()
	if newest[0].Num != 9 || newest[2].Num != 2 {
		t.Fatalf("L0Newest order: %d %d %d", newest[0].Num, newest[1].Num, newest[2].Num)
	}
}

func TestOverlaps(t *testing.T) {
	v := &Version{}
	v1, _ := v.Apply(&Edit{Added: []AddedFile{
		{Level: 1, Meta: fm(1, "a", "c")},
		{Level: 1, Meta: fm(2, "e", "g")},
		{Level: 1, Meta: fm(3, "i", "k")},
	}})
	got := v1.Overlaps(1, []byte("b"), []byte("f"))
	if len(got) != 2 || got[0].Num != 1 || got[1].Num != 2 {
		t.Fatalf("Overlaps = %v", got)
	}
	if got := v1.Overlaps(1, []byte("x"), []byte("z")); len(got) != 0 {
		t.Fatalf("no-overlap case returned %v", got)
	}
	if got := v1.Overlaps(1, []byte("a"), nil); len(got) != 3 {
		t.Fatalf("nil-largest should overlap all: %v", got)
	}
}

func TestFileForKey(t *testing.T) {
	v := &Version{}
	v1, _ := v.Apply(&Edit{Added: []AddedFile{
		{Level: 2, Meta: fm(1, "c", "f")},
		{Level: 2, Meta: fm(2, "j", "n")},
	}})
	if f, _ := v1.FileForKey(2, []byte("k")); f == nil || f.Num != 2 {
		t.Fatalf("FileForKey(k) = %v", f)
	}
	if f, _ := v1.FileForKey(2, []byte("a")); f != nil {
		t.Fatal("key before first file matched")
	}
	if f, _ := v1.FileForKey(2, []byte("h")); f != nil {
		t.Fatal("key in gap matched")
	}
	if f, _ := v1.FileForKey(2, []byte("z")); f != nil {
		t.Fatal("key after last file matched")
	}
	if f, _ := v1.FileForKey(3, []byte("k")); f != nil {
		t.Fatal("empty level matched")
	}
}

func TestSetCreateRecover(t *testing.T) {
	fs := newFS()
	s, err := Create(fs)
	if err != nil {
		t.Fatal(err)
	}
	n1 := s.AllocFileNum()
	if err := s.LogAndApply(&Edit{Added: []AddedFile{{Level: 0, Meta: fm(n1, "a", "m")}}}); err != nil {
		t.Fatal(err)
	}
	n2 := s.AllocFileNum()
	if err := s.LogAndApply(&Edit{
		Added:   []AddedFile{{Level: 1, Meta: fm(n2, "a", "m")}},
		Deleted: []DeletedFile{{Level: 0, Num: n1}},
	}); err != nil {
		t.Fatal(err)
	}
	s.MarkSeq(777)
	seq := uint64(777)
	if err := s.LogAndApply(&Edit{LastSeq: &seq}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Current().NumFiles(0) != 0 || r.Current().NumFiles(1) != 1 {
		t.Fatalf("recovered layout:\n%s", r.Current().DebugString())
	}
	if r.Current().Files[1][0].Num != n2 {
		t.Fatalf("recovered file num %d, want %d", r.Current().Files[1][0].Num, n2)
	}
	if r.LastSeq != 777 {
		t.Fatalf("recovered LastSeq = %d", r.LastSeq)
	}
	if r.NextFileNum <= n2 {
		t.Fatalf("recovered NextFileNum = %d not past %d", r.NextFileNum, n2)
	}
}

func TestRecoverContinuesAppending(t *testing.T) {
	fs := newFS()
	s, _ := Create(fs)
	n1 := s.AllocFileNum()
	s.LogAndApply(&Edit{Added: []AddedFile{{Level: 0, Meta: fm(n1, "a", "b")}}})
	s.Close()

	r, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	n2 := r.AllocFileNum()
	if err := r.LogAndApply(&Edit{Added: []AddedFile{{Level: 0, Meta: fm(n2, "c", "d")}}}); err != nil {
		t.Fatalf("append after recover: %v", err)
	}
	r.Close()

	r2, err := Recover(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Current().NumFiles(0) != 2 {
		t.Fatalf("second recovery sees %d L0 files, want 2", r2.Current().NumFiles(0))
	}
}

func TestLiveFileNums(t *testing.T) {
	fs := newFS()
	s, _ := Create(fs)
	n := s.AllocFileNum()
	s.LogAndApply(&Edit{Added: []AddedFile{{Level: 0, Meta: fm(n, "a", "b")}}})
	live := s.LiveFileNums()
	if !live[n] || len(live) != 1 {
		t.Fatalf("live = %v", live)
	}
	s.Close()
}

func TestParseName(t *testing.T) {
	cases := []struct {
		name string
		typ  FileType
		num  uint64
	}{
		{"000042.sst", TypeSST, 42},
		{"000007.log", TypeWAL, 7},
		{"MANIFEST-000001", TypeManifest, 1},
		{"CURRENT", TypeCurrent, 0},
		{"garbage", TypeUnknown, 0},
		{"x.sst", TypeUnknown, 0},
		{"MANIFEST-abc", TypeUnknown, 0},
	}
	for _, c := range cases {
		typ, num := ParseName(c.name)
		if typ != c.typ || num != c.num {
			t.Errorf("ParseName(%q) = %v, %d", c.name, typ, num)
		}
	}
	// Round-trip of the generators.
	if SSTName(42) != "000042.sst" || WALName(7) != "000007.log" || ManifestName(1) != "MANIFEST-000001" {
		t.Fatal("name generators changed format")
	}
}

func TestContainsUserKey(t *testing.T) {
	f := fm(1, "c", "f")
	for _, c := range []struct {
		k  string
		in bool
	}{{"c", true}, {"d", true}, {"f", true}, {"b", false}, {"g", false}} {
		if got := f.ContainsUserKey([]byte(c.k)); got != c.in {
			t.Errorf("ContainsUserKey(%q) = %v", c.k, got)
		}
	}
}
