// Package workload is the db_bench equivalent: key/value generators
// and concurrent mixed-ratio runners driving a DB (or a raw device)
// under either clock. Workloads follow the paper's methodology:
// randomreadrandomwrite key choice, 1 KB values, configurable
// read/write ratio and parallelism, fixed duration.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/histogram"
)

// KV is the operation surface the runner drives.
type KV interface {
	Get(key []byte) ([]byte, error)
	Put(key, value []byte) error
}

// Config parameterizes one run.
type Config struct {
	// Workers is the number of concurrent client processes (the
	// paper's "parallel processes/threads").
	Workers int
	// ReadRatio is the fraction of operations that are reads; the
	// paper's "insertion ratio" is 1 − ReadRatio.
	ReadRatio float64
	// Duration is how long the measured phase runs.
	Duration time.Duration
	// KeySpace is the number of distinct keys addressed.
	KeySpace int
	// ValueSize is the value payload size (paper: 1 KB).
	ValueSize int
	// Seed makes runs reproducible.
	Seed int64
	// Burst, if non-nil, periodically switches the mix to the burst
	// ratio (case study A's "flash of crowd": 25 s per minute at
	// read:write 1:9).
	Burst *BurstConfig
	// ReadWorkers/WriteWorkers, when either is non-zero, replace the
	// ratio-mixed worker pool with dedicated pools: ReadWorkers
	// processes issue only Gets while WriteWorkers processes issue
	// only Puts (Workers and ReadRatio are ignored). This is the
	// read-while-writing mix used to isolate read-path latency under
	// concurrent write load (dbbench -benchmarks mixed).
	ReadWorkers  int
	WriteWorkers int
	// Shards and HotShardSkew shape key choice for sharded stores.
	// With Shards > 1 and HotShardSkew > 1, workers first draw a shard
	// index from a Zipf distribution with parameter HotShardSkew
	// (shard 0 hottest), then a uniform key within that shard's
	// contiguous slice of the keyspace — the hot-shard workload that
	// separates a shared stall budget from per-store ones. Zero values
	// keep the uniform generator.
	Shards       int
	HotShardSkew float64
}

// BurstConfig describes periodic write bursts.
type BurstConfig struct {
	// Period is the cycle length (paper: 60 s).
	Period time.Duration
	// BurstLen is the burst duration within each cycle (paper: 25 s).
	BurstLen time.Duration
	// BurstReadRatio is the read fraction during the burst (paper:
	// 0.1).
	BurstReadRatio float64
}

// Result aggregates a run's measurements.
type Result struct {
	Duration   time.Duration
	Reads      int64
	Writes     int64
	ReadMisses int64
	Errors     int64

	ReadLat  *histogram.Histogram
	WriteLat *histogram.Histogram

	// Series is the per-second operation count over the run.
	Series *histogram.TimeSeries
}

// Ops returns total operations performed.
func (r *Result) Ops() int64 { return r.Reads + r.Writes }

// Throughput returns overall operations/second.
func (r *Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops()) / r.Duration.Seconds()
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("%.1f kop/s (reads=%d writes=%d misses=%d) read[p50=%v p90=%v p99=%v] write[p50=%v p90=%v p99=%v]",
		r.Throughput()/1000, r.Reads, r.Writes, r.ReadMisses,
		r.ReadLat.Percentile(50), r.ReadLat.Percentile(90), r.ReadLat.Percentile(99),
		r.WriteLat.Percentile(50), r.WriteLat.Percentile(90), r.WriteLat.Percentile(99))
}

// Key returns the i-th key of the key space (16-byte fixed width).
func Key(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }

// Value returns a deterministic pseudo-random value of n bytes for key
// index i, so correctness checks need no stored copy.
func Value(i, n int) []byte {
	v := make([]byte, n)
	x := uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for j := range v {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v[j] = byte(x)
	}
	return v
}

// Preload writes keys [0, n) sequentially so a read-mostly run finds
// its working set. Call from inside the clock's Run context.
func Preload(db KV, n, valueSize int) error {
	for i := 0; i < n; i++ {
		if err := db.Put(Key(i), Value(i, valueSize)); err != nil {
			return fmt.Errorf("workload: preload key %d: %w", i, err)
		}
	}
	return nil
}

// Run drives db with cfg.Workers concurrent workers for cfg.Duration
// and returns aggregated results. It must be called from a process of
// clk (inside sim.Kernel.Run for virtual time).
func Run(clk clock.Clock, db KV, cfg Config) *Result {
	dedicated := cfg.ReadWorkers > 0 || cfg.WriteWorkers > 0
	if dedicated {
		cfg.Workers = cfg.ReadWorkers + cfg.WriteWorkers
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 1024
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 100000
	}

	start := clk.Now()
	end := start.Add(cfg.Duration)
	res := &Result{
		ReadLat:  &histogram.Histogram{},
		WriteLat: &histogram.Histogram{},
		Series:   histogram.NewTimeSeries(start, time.Second),
	}

	type workerStats struct {
		reads, writes, misses, errs int64
		readLat, writeLat           histogram.Histogram
	}
	stats := make([]workerStats, cfg.Workers)

	m := clk.NewMutex()
	c := clk.NewCond(m)
	remaining := cfg.Workers

	for w := 0; w < cfg.Workers; w++ {
		w := w
		clk.Go(fmt.Sprintf("workload-%d", w), func() {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			st := &stats[w]
			// rand.Zipf is not safe for concurrent use: one per worker.
			var zipf *rand.Zipf
			if cfg.Shards > 1 && cfg.HotShardSkew > 1 {
				zipf = rand.NewZipf(rng, cfg.HotShardSkew, 1, uint64(cfg.Shards-1))
			}
			for {
				now := clk.Now()
				if !now.Before(end) {
					break
				}
				readRatio := cfg.ReadRatio
				if dedicated {
					if w < cfg.ReadWorkers {
						readRatio = 1
					} else {
						readRatio = 0
					}
				}
				if b := cfg.Burst; b != nil {
					phase := now.Sub(start) % b.Period
					if phase < b.BurstLen {
						readRatio = b.BurstReadRatio
					}
				}
				i := rng.Intn(cfg.KeySpace)
				if zipf != nil {
					s := int(zipf.Uint64())
					lo := cfg.KeySpace * s / cfg.Shards
					hi := cfg.KeySpace * (s + 1) / cfg.Shards
					if hi > lo {
						i = lo + rng.Intn(hi-lo)
					}
				}
				if rng.Float64() < readRatio {
					t0 := clk.Now()
					_, err := db.Get(Key(i))
					st.readLat.Record(clk.Now().Sub(t0))
					st.reads++
					if err != nil {
						if isNotFound(err) {
							st.misses++
						} else {
							st.errs++
						}
					}
				} else {
					t0 := clk.Now()
					err := db.Put(Key(i), Value(i, cfg.ValueSize))
					st.writeLat.Record(clk.Now().Sub(t0))
					st.writes++
					if err != nil {
						st.errs++
					}
				}
				res.Series.Record(clk.Now(), 1)
			}
			m.Lock()
			remaining--
			if remaining == 0 {
				c.Broadcast()
			}
			m.Unlock()
		})
	}

	m.Lock()
	for remaining > 0 {
		c.Wait()
	}
	m.Unlock()

	res.Duration = clk.Now().Sub(start)
	for i := range stats {
		st := &stats[i]
		res.Reads += st.reads
		res.Writes += st.writes
		res.ReadMisses += st.misses
		res.Errors += st.errs
		res.ReadLat.Merge(&st.readLat)
		res.WriteLat.Merge(&st.writeLat)
	}
	return res
}

// notFounder matches the engine's ErrNotFound without importing it
// (keeps this package reusable against any KV).
func isNotFound(err error) bool {
	return err != nil && err.Error() == "engine: key not found"
}

// RawDevice is the op surface of a raw block device, for the Figure 1
// baseline.
type RawDevice interface {
	Read(n int)
	Write(n int)
}

// RunRaw drives 4 KiB random reads/writes directly against a device,
// reproducing the paper's Intel Open Storage Toolkit baseline.
func RunRaw(clk clock.Clock, dev RawDevice, workers int, readRatio float64, duration time.Duration, seed int64) *Result {
	start := clk.Now()
	end := start.Add(duration)
	res := &Result{
		ReadLat:  &histogram.Histogram{},
		WriteLat: &histogram.Histogram{},
		Series:   histogram.NewTimeSeries(start, time.Second),
	}

	type rawStats struct {
		reads, writes     int64
		readLat, writeLat histogram.Histogram
	}
	stats := make([]rawStats, workers)

	m := clk.NewMutex()
	c := clk.NewCond(m)
	remaining := workers
	for w := 0; w < workers; w++ {
		w := w
		clk.Go(fmt.Sprintf("raw-%d", w), func() {
			rng := rand.New(rand.NewSource(seed + int64(w)*104729))
			st := &stats[w]
			for clk.Now().Before(end) {
				t0 := clk.Now()
				if rng.Float64() < readRatio {
					dev.Read(4096)
					st.readLat.Record(clk.Now().Sub(t0))
					st.reads++
				} else {
					dev.Write(4096)
					st.writeLat.Record(clk.Now().Sub(t0))
					st.writes++
				}
				res.Series.Record(clk.Now(), 1)
			}
			m.Lock()
			remaining--
			if remaining == 0 {
				c.Broadcast()
			}
			m.Unlock()
		})
	}
	m.Lock()
	for remaining > 0 {
		c.Wait()
	}
	m.Unlock()

	res.Duration = clk.Now().Sub(start)
	for i := range stats {
		st := &stats[i]
		res.Reads += st.reads
		res.Writes += st.writes
		res.ReadLat.Merge(&st.readLat)
		res.WriteLat.Merge(&st.writeLat)
	}
	return res
}
