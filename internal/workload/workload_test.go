package workload

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/sim"
)

// mapKV is a trivial thread-safe KV for driving the runner.
type mapKV struct {
	mu sync.Mutex
	m  map[string][]byte
	// missEvery makes every n-th Get miss, to exercise miss counting.
	gets      int
	missEvery int
}

var errNotFound = errors.New("engine: key not found")

func (kv *mapKV) Get(key []byte) ([]byte, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.gets++
	if kv.missEvery > 0 && kv.gets%kv.missEvery == 0 {
		return nil, errNotFound
	}
	if v, ok := kv.m[string(key)]; ok {
		return v, nil
	}
	return nil, errNotFound
}

func (kv *mapKV) Put(key, value []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.m[string(key)] = value
	return nil
}

func newMapKV() *mapKV { return &mapKV{m: make(map[string][]byte)} }

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestKeyValueGenerators(t *testing.T) {
	if string(Key(42)) != "user000000000042" {
		t.Fatalf("Key(42) = %q", Key(42))
	}
	if len(Key(1)) != 16 {
		t.Fatalf("key length %d", len(Key(1)))
	}
	v1 := Value(7, 1024)
	v2 := Value(7, 1024)
	if !bytes.Equal(v1, v2) {
		t.Fatal("Value not deterministic")
	}
	if bytes.Equal(Value(7, 64), Value(8, 64)) {
		t.Fatal("distinct keys share values")
	}
	if len(v1) != 1024 {
		t.Fatalf("value length %d", len(v1))
	}
}

func TestPreloadWritesAllKeys(t *testing.T) {
	kv := newMapKV()
	if err := Preload(kv, 100, 64); err != nil {
		t.Fatal(err)
	}
	if len(kv.m) != 100 {
		t.Fatalf("preloaded %d keys", len(kv.m))
	}
	if !bytes.Equal(kv.m[string(Key(7))], Value(7, 64)) {
		t.Fatal("preloaded value mismatch")
	}
}

func TestRunMixUnderSim(t *testing.T) {
	// Under the sim clock the driven KV must charge virtual time per
	// op (a zero-cost KV would spin forever at one instant); timedKV
	// charges 1 ms per operation.
	k := sim.New(t0)
	kv := &timedKV{k: k, inner: newMapKV()}
	var res *Result
	k.Run(func() {
		Preload(kv.inner, 1000, 64)
		res = Run(k, kv, Config{
			Workers:   4,
			ReadRatio: 0.7,
			Duration:  2 * time.Second,
			KeySpace:  1000,
			ValueSize: 64,
			Seed:      1,
		})
	})
	// 4 workers × 2s / 1ms = ~8000 ops.
	if res.Ops() < 7000 || res.Ops() > 9000 {
		t.Fatalf("ops = %d, want ≈8000", res.Ops())
	}
	if res.Duration < 2*time.Second {
		t.Fatalf("run duration %v < configured", res.Duration)
	}
}

func TestRunMixRealClock(t *testing.T) {
	kv := newMapKV()
	Preload(kv, 500, 64)
	res := Run(clock.Real{}, kv, Config{
		Workers:   4,
		ReadRatio: 0.5,
		Duration:  50 * time.Millisecond,
		KeySpace:  500,
		ValueSize: 64,
		Seed:      2,
	})
	if res.Ops() == 0 {
		t.Fatal("no operations performed")
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("mix skewed: reads=%d writes=%d", res.Reads, res.Writes)
	}
	frac := float64(res.Reads) / float64(res.Ops())
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("read fraction %.2f far from 0.5", frac)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if res.ReadLat.Count() != res.Reads || res.WriteLat.Count() != res.Writes {
		t.Fatal("latency histograms don't match op counts")
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestReadRatioZeroAndOne(t *testing.T) {
	kv := newMapKV()
	Preload(kv, 100, 16)
	res := Run(clock.Real{}, kv, Config{
		Workers: 2, ReadRatio: 0, Duration: 20 * time.Millisecond,
		KeySpace: 100, ValueSize: 16, Seed: 3,
	})
	if res.Reads != 0 || res.Writes == 0 {
		t.Fatalf("write-only run: reads=%d writes=%d", res.Reads, res.Writes)
	}
	res = Run(clock.Real{}, kv, Config{
		Workers: 2, ReadRatio: 1, Duration: 20 * time.Millisecond,
		KeySpace: 100, ValueSize: 16, Seed: 4,
	})
	if res.Writes != 0 || res.Reads == 0 {
		t.Fatalf("read-only run: reads=%d writes=%d", res.Reads, res.Writes)
	}
}

func TestMissCounting(t *testing.T) {
	kv := newMapKV()
	kv.missEvery = 2
	Preload(kv, 100, 16)
	res := Run(clock.Real{}, kv, Config{
		Workers: 1, ReadRatio: 1, Duration: 20 * time.Millisecond,
		KeySpace: 100, ValueSize: 16, Seed: 5,
	})
	if res.ReadMisses == 0 {
		t.Fatal("misses not counted")
	}
	if res.Errors != 0 {
		t.Fatal("not-found counted as error")
	}
}

func TestBurstChangesRatioOverTime(t *testing.T) {
	// Under the sim clock with a time-charging KV we can verify the
	// burst schedule precisely. Use a KV that charges 1ms per op.
	k := sim.New(t0)
	kv := &timedKV{k: k, inner: newMapKV()}
	var res *Result
	k.Run(func() {
		res = Run(k, kv, Config{
			Workers:   1,
			ReadRatio: 1.0, // outside bursts: all reads
			Duration:  4 * time.Second,
			KeySpace:  100,
			ValueSize: 16,
			Seed:      6,
			Burst: &BurstConfig{
				Period:         2 * time.Second,
				BurstLen:       time.Second,
				BurstReadRatio: 0, // inside bursts: all writes
			},
		})
	})
	if res.Writes == 0 || res.Reads == 0 {
		t.Fatalf("burst never switched the mix: reads=%d writes=%d", res.Reads, res.Writes)
	}
	// Bursts cover half the run.
	wfrac := float64(res.Writes) / float64(res.Ops())
	if wfrac < 0.3 || wfrac > 0.7 {
		t.Fatalf("write fraction %.2f, want ≈0.5", wfrac)
	}
}

type timedKV struct {
	k     *sim.Kernel
	inner *mapKV
}

func (t *timedKV) Get(key []byte) ([]byte, error) {
	t.k.Sleep(time.Millisecond)
	return t.inner.Get(key)
}

func (t *timedKV) Put(key, value []byte) error {
	t.k.Sleep(time.Millisecond)
	return t.inner.Put(key, value)
}

func TestRunRawCountsOps(t *testing.T) {
	k := sim.New(t0)
	dev := &fakeDev{k: k}
	var res *Result
	k.Run(func() {
		res = RunRaw(k, dev, 4, 0.5, time.Second, 7)
	})
	if res.Ops() == 0 {
		t.Fatal("raw run did nothing")
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatalf("raw mix: %d/%d", res.Reads, res.Writes)
	}
	// 4 workers × (1s / 100µs) = ~40000 ops expected.
	if res.Ops() < 30000 || res.Ops() > 50000 {
		t.Fatalf("raw ops = %d, want ≈40000", res.Ops())
	}
}

type fakeDev struct{ k *sim.Kernel }

func (d *fakeDev) Read(n int)  { d.k.Sleep(100 * time.Microsecond) }
func (d *fakeDev) Write(n int) { d.k.Sleep(100 * time.Microsecond) }
