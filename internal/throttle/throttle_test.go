package throttle

import (
	"testing"
	"time"

	"xpointdb/internal/sim"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNoDelayWhenClear(t *testing.T) {
	k := sim.New(t0)
	c := New(k, Config{Mode: ModeAlgorithm1})
	k.Run(func() {
		for i := 0; i < 100; i++ {
			if d := c.Delay(1024); d != 0 {
				t.Errorf("delay %v while clear", d)
			}
		}
	})
	if k.Elapsed() != 0 {
		t.Fatalf("time advanced while clear: %v", k.Elapsed())
	}
}

func TestModeNoneNeverDelays(t *testing.T) {
	k := sim.New(t0)
	c := New(k, Config{Mode: ModeNone})
	c.SetState(StateDelayed)
	k.Run(func() {
		if d := c.Delay(1 << 20); d != 0 {
			t.Errorf("ModeNone delayed %v", d)
		}
	})
}

func TestDelayedWritesPayRefillInterval(t *testing.T) {
	// With a small batch and default 16 MiB/s rate, Algorithm 1's
	// DELAYWRITE returns exactly refill_interval for back-to-back
	// writes (the regime of Analysis #1).
	k := sim.New(t0)
	c := New(k, Config{Mode: ModeAlgorithm1})
	c.SetState(StateDelayed)
	var total time.Duration
	k.Run(func() {
		for i := 0; i < 10; i++ {
			total += c.Delay(1024)
		}
	})
	if total == 0 {
		t.Fatal("no delay applied while delayed")
	}
	// Average per-op delay should be near the refill interval scaled
	// by how many ops one refill pays for (16 MiB/s × 1024 µs ≈ 16
	// KiB per refill ⇒ most 1 KiB ops ride free, ~1/16 pay 1024 µs).
	if total > 15*RefillInterval {
		t.Fatalf("delays too large: %v", total)
	}
}

func TestAnalysis1ThroughputCollapse(t *testing.T) {
	// Reproduce the paper's Analysis #1: once throttling engages with
	// a collapsed rate, application throughput falls to roughly
	// t/(refill+t)·λs regardless of device speed.
	k := sim.New(t0)
	c := New(k, Config{Mode: ModeAlgorithm1, DelayedWriteRate: 16 << 20})
	c.SetState(StateDelayed)
	// Decay the rate as a lagging compaction would.
	for i := 0; i < 60; i++ {
		c.AdjustRate(true)
	}
	if c.Rate() > 1<<20+1 {
		t.Fatalf("rate should clamp at the floor, got %.0f", c.Rate())
	}

	var ops int
	k.Run(func() {
		end := t0.Add(2 * time.Second)
		for k.Now().Before(end) {
			c.Delay(1024)                  // throttle
			k.Sleep(15 * time.Microsecond) // the op itself (t)
			ops++
		}
	})
	opsPerSec := float64(ops) / 2
	// With rate = 1 MiB/s and 1 KiB writes: one refill (1024 µs)
	// covers ~1 op, so each op waits ~1 ms ⇒ ~1 kop/s per thread.
	if opsPerSec < 500 || opsPerSec > 2500 {
		t.Fatalf("throttled throughput = %.0f op/s, want ≈1000", opsPerSec)
	}
	t.Logf("throttled single-thread throughput: %.0f op/s", opsPerSec)
}

func TestAdjustRateBounds(t *testing.T) {
	k := sim.New(t0)
	c := New(k, Config{Mode: ModeAlgorithm1, DelayedWriteRate: 16 << 20})
	for i := 0; i < 1000; i++ {
		c.AdjustRate(true)
	}
	if c.Rate() < 1<<20 {
		t.Fatalf("rate below floor: %f", c.Rate())
	}
	for i := 0; i < 10000; i++ {
		c.AdjustRate(false)
	}
	if c.Rate() > 1<<30 {
		t.Fatalf("rate above ceiling: %f", c.Rate())
	}
}

func TestRateRestoredWhenStallEnds(t *testing.T) {
	k := sim.New(t0)
	c := New(k, Config{Mode: ModeAlgorithm1, DelayedWriteRate: 16 << 20})
	c.SetState(StateDelayed)
	for i := 0; i < 20; i++ {
		c.AdjustRate(true)
	}
	low := c.Rate()
	if low >= 16<<20 {
		t.Fatal("rate did not decay")
	}
	c.SetState(StateClear)
	if c.Rate() != 16<<20 {
		t.Fatalf("rate not restored: %f", c.Rate())
	}
}

func TestTwoStageFloorInStage1(t *testing.T) {
	k := sim.New(t0)
	floor := float64(8 << 20)
	c := New(k, Config{Mode: ModeTwoStage, DelayedWriteRate: 16 << 20, FloorRate: floor})
	// Decay the adaptive rate far below the floor.
	c.SetState(StateDelayed)
	for i := 0; i < 60; i++ {
		c.AdjustRate(true)
	}

	// Stage 1 (StateDelayed): delays computed at ≥ floor rate.
	var stage1 time.Duration
	k.Run(func() {
		for i := 0; i < 200; i++ {
			stage1 += c.Delay(4096)
		}
	})

	// Stage 2 (StateAggressive): full Algorithm 1 at the decayed rate.
	k2 := sim.New(t0)
	c2 := New(k2, Config{Mode: ModeTwoStage, DelayedWriteRate: 16 << 20, FloorRate: floor})
	c2.SetState(StateAggressive)
	for i := 0; i < 60; i++ {
		c2.AdjustRate(true)
	}
	var stage2 time.Duration
	k2.Run(func() {
		for i := 0; i < 200; i++ {
			stage2 += c2.Delay(4096)
		}
	})
	if stage1 >= stage2 {
		t.Fatalf("stage1 (%v) should throttle less than stage2 (%v)", stage1, stage2)
	}
}

func TestStoppedStateDoesNotDelay(t *testing.T) {
	// Stops are handled by the engine blocking writes; the controller
	// itself must not add token delays on top.
	k := sim.New(t0)
	c := New(k, Config{Mode: ModeAlgorithm1})
	c.SetState(StateStopped)
	k.Run(func() {
		if d := c.Delay(1024); d != 0 {
			t.Errorf("delay during stop: %v", d)
		}
	})
}

func TestStatsAccumulate(t *testing.T) {
	k := sim.New(t0)
	c := New(k, Config{Mode: ModeAlgorithm1, DelayedWriteRate: 1 << 20})
	c.SetState(StateDelayed)
	k.Run(func() {
		for i := 0; i < 50; i++ {
			c.Delay(64 << 10)
		}
	})
	total, ops, _ := c.Stats()
	if total == 0 || ops == 0 {
		t.Fatalf("stats empty: %v %d", total, ops)
	}
}

func TestLargeWritePaysProportionalDelay(t *testing.T) {
	k := sim.New(t0)
	c := New(k, Config{Mode: ModeAlgorithm1, DelayedWriteRate: 1 << 20})
	c.SetState(StateDelayed)
	var d time.Duration
	k.Run(func() {
		c.Delay(1024)        // consume any initial credit
		d = c.Delay(4 << 20) // 4 MiB at 1 MiB/s ≈ 4 s
	})
	if d < 2*time.Second || d > 6*time.Second {
		t.Fatalf("large write delay = %v, want ≈4s", d)
	}
}
