// Package throttle implements RocksDB's write controller as described
// by the paper's Algorithm 1 (WRITE CONTROL PROCESS), plus the paper's
// case-study-A "two-stage throttling" variant.
//
// The controller is a token bucket refilled at delayed_write_rate with
// a minimum injected delay of refill_interval (1024 µs). When the
// engine reports that compaction is falling behind, the rate is
// multiplied by Dec = 0.8; when it is keeping up, by Inc = 1.25. The
// paper's Analysis #1 shows the consequence: once throttling engages,
// application throughput collapses to roughly
//
//	λa = t/(refill_interval + t) · λs
//
// independent of how fast the device is — the bottleneck the paper
// calls out on 3D XPoint.
package throttle

import (
	"fmt"
	"sync"
	"time"

	"xpointdb/internal/clock"
)

// Algorithm 1 constants.
const (
	// Dec and Inc are the multiplicative rate adjustments.
	Dec = 0.8
	Inc = 1.25
	// RefillInterval is the minimum injected delay period.
	RefillInterval = 1024 * time.Microsecond
)

// Mode selects the throttling policy.
type Mode int

const (
	// ModeNone disables write delays entirely (stops still apply).
	ModeNone Mode = iota
	// ModeAlgorithm1 is the paper's Algorithm 1 (RocksDB default).
	ModeAlgorithm1
	// ModeTwoStage is case study A: a gentle fixed-floor stage
	// between the slowdown threshold and the midpoint
	// (slowdown+stop)/2, then full Algorithm 1 beyond it.
	ModeTwoStage
)

// State is the engine-computed stall condition.
type State int

const (
	// StateClear means no stall condition holds.
	StateClear State = iota
	// StateDelayed means the slowdown threshold is exceeded
	// (Algorithm 1 delays apply).
	StateDelayed
	// StateAggressive is two-stage mode's second stage (beyond the
	// midpoint); identical to StateDelayed under ModeAlgorithm1.
	StateAggressive
	// StateStopped means writes must block entirely (the engine
	// handles the blocking; the controller only records it).
	StateStopped
)

// String names the state for logs and the event stream.
func (s State) String() string {
	switch s {
	case StateClear:
		return "clear"
	case StateDelayed:
		return "delayed"
	case StateAggressive:
		return "aggressive"
	case StateStopped:
		return "stopped"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Controller computes per-write delays. It is safe for concurrent use.
type Controller struct {
	clk  clock.Clock
	mode Mode

	mu    sync.Mutex
	state State
	// sources holds the per-source stall states when the controller is
	// shared across shards (SetSourceState); state is their max
	// severity. Nil until a source other than 0 reports.
	sources map[int]State
	// rate is the current delayed_write_rate in bytes/second.
	rate float64
	// initialRate restores rate when a stall episode ends.
	initialRate float64
	// floorRate is stage 1's "maximum acceptable" lower bound on the
	// delayed write rate (two-stage mode).
	floorRate float64
	minRate   float64
	maxRate   float64

	lastRefill  time.Time
	creditBytes float64

	// totals for instrumentation
	totalDelay  time.Duration
	delayedOps  int64
	adjustments int64

	// rateChanged observes AdjustRate steps (set once at New).
	rateChanged func(oldRate, newRate float64, behind bool)
}

// Config parameterizes the controller.
type Config struct {
	// Mode selects the policy (default ModeAlgorithm1).
	Mode Mode
	// DelayedWriteRate is the starting delayed_write_rate in
	// bytes/second (RocksDB default 16 MiB/s).
	DelayedWriteRate float64
	// FloorRate bounds stage-1 throttling in two-stage mode
	// (default: DelayedWriteRate).
	FloorRate float64
	// RateChanged, if non-nil, observes every AdjustRate step with the
	// pre- and post-clamp rates. It is called without the controller
	// lock held and must not call back into the controller.
	RateChanged func(oldRate, newRate float64, behind bool)
}

// New returns a controller charging delays to clk.
func New(clk clock.Clock, cfg Config) *Controller {
	if cfg.DelayedWriteRate <= 0 {
		cfg.DelayedWriteRate = 16 << 20
	}
	if cfg.FloorRate <= 0 {
		cfg.FloorRate = cfg.DelayedWriteRate
	}
	return &Controller{
		clk:         clk,
		mode:        cfg.Mode,
		state:       StateClear,
		rate:        cfg.DelayedWriteRate,
		initialRate: cfg.DelayedWriteRate,
		floorRate:   cfg.FloorRate,
		minRate:     1 << 20, // 1 MiB/s lower clamp
		maxRate:     1 << 30, // 1 GiB/s upper clamp
		lastRefill:  clk.Now(),
		rateChanged: cfg.RateChanged,
	}
}

// SetState installs the stall condition computed by the engine. For a
// controller shared by several shards it is shorthand for source 0.
func (c *Controller) SetState(s State) { c.SetSourceState(0, s) }

// SetSourceState installs the stall condition reported by one source
// (shard). The controller's effective state is the maximum severity
// across all sources, so a shared controller delays writers globally
// while any shard is under pressure, and only clears — restoring the
// starting rate — once every shard is clear.
func (c *Controller) SetSourceState(src int, s State) {
	c.mu.Lock()
	if c.sources == nil {
		if src == 0 {
			// Single-source fast path: no map needed.
			c.applyStateLocked(s)
			c.mu.Unlock()
			return
		}
		c.sources = map[int]State{0: c.state}
	}
	c.sources[src] = s
	merged := StateClear
	for _, st := range c.sources {
		if st > merged {
			merged = st
		}
	}
	c.applyStateLocked(merged)
	c.mu.Unlock()
}

func (c *Controller) applyStateLocked(s State) {
	if c.state != StateClear && s == StateClear {
		// Episode over: restore the starting rate so the next
		// episode does not inherit a collapsed rate.
		c.rate = c.initialRate
		c.creditBytes = 0
	}
	c.state = s
}

// CurrentState returns the installed stall condition.
func (c *Controller) CurrentState() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// AdjustRate applies Algorithm 1's multiplicative update: behind=true
// (compaction processed fewer bytes than estimated, Prev ≤ Esti)
// decreases the rate by Dec; otherwise increases by Inc.
func (c *Controller) AdjustRate(behind bool) {
	c.mu.Lock()
	oldRate := c.rate
	if behind {
		c.rate *= Dec
	} else {
		c.rate *= Inc
	}
	if c.rate < c.minRate {
		c.rate = c.minRate
	}
	if c.rate > c.maxRate {
		c.rate = c.maxRate
	}
	newRate := c.rate
	c.adjustments++
	c.mu.Unlock()
	if c.rateChanged != nil {
		c.rateChanged(oldRate, newRate, behind)
	}
}

// Rate returns the current delayed_write_rate in bytes/second.
func (c *Controller) Rate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rate
}

// Delay blocks the calling writer for the injected delay owed by a
// write of numBytes, per Algorithm 1's DELAYWRITE, and returns the
// delay applied.
func (c *Controller) Delay(numBytes int) time.Duration {
	c.mu.Lock()
	effRate := c.rate
	switch {
	case c.state == StateClear, c.state == StateStopped, c.mode == ModeNone:
		c.mu.Unlock()
		return 0
	case c.mode == ModeTwoStage && c.state == StateDelayed:
		// Stage 1: slight throttling — rate never drops below the
		// configured floor.
		if effRate < c.floorRate {
			effRate = c.floorRate
		}
	}

	now := c.clk.Now()
	d := c.delayLocked(now, float64(numBytes), effRate)
	if d > 0 {
		c.totalDelay += d
		c.delayedOps++
	}
	c.mu.Unlock()
	if d > 0 {
		c.clk.Sleep(d)
	}
	return d
}

// delayLocked is DELAYWRITE(num_bytes) from Algorithm 1.
func (c *Controller) delayLocked(now time.Time, numBytes, rate float64) time.Duration {
	timeSlice := now.Sub(c.lastRefill)
	bytesRefilled := timeSlice.Seconds()*rate + c.creditBytes
	if bytesRefilled >= numBytes {
		if timeSlice > RefillInterval {
			// Fully paid for; consume credit and proceed.
			c.creditBytes = bytesRefilled - numBytes
			// Cap hoarded credit at one refill interval's worth so
			// idle periods don't buy unlimited burst.
			if max := RefillInterval.Seconds() * rate; c.creditBytes > max {
				c.creditBytes = max
			}
			c.lastRefill = now
			return 0
		}
	}
	singleRefill := RefillInterval.Seconds() * rate
	c.lastRefill = now
	if bytesRefilled+singleRefill > numBytes {
		c.creditBytes = bytesRefilled + singleRefill - numBytes
		return RefillInterval
	}
	c.creditBytes = 0
	return time.Duration(numBytes / rate * float64(time.Second))
}

// Stats reports cumulative delay totals.
func (c *Controller) Stats() (total time.Duration, delayedOps, adjustments int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalDelay, c.delayedOps, c.adjustments
}
