package iterator

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"xpointdb/internal/keys"
)

func collectBackward(t *testing.T, it Iterator) []string {
	t.Helper()
	var out []string
	for it.SeekToLast(); it.Valid(); it.Prev() {
		out = append(out, fmt.Sprintf("%s=%s", keys.UserKey(it.Key()), it.Value()))
	}
	if err := it.Error(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return out
}

func TestMergingBackwardScan(t *testing.T) {
	a := newFake("a:1:1", "c:1:3", "e:1:5")
	b := newFake("b:1:2", "d:1:4", "f:1:6")
	m := NewMerging(a, b)
	got := collectBackward(t, m)
	want := "[f=6 e=5 d=4 c=3 b=2 a=1]"
	if fmt.Sprint(got) != want {
		t.Fatalf("backward = %v", got)
	}
}

func TestMergingSeekLT(t *testing.T) {
	a := newFake("a:1:1", "e:1:5")
	b := newFake("c:1:3", "g:1:7")
	m := NewMerging(a, b)
	m.SeekLT(keys.SearchKey([]byte("f"), keys.MaxSeq))
	if !m.Valid() || string(keys.UserKey(m.Key())) != "e" {
		t.Fatalf("SeekLT(f) = %s", keys.String(m.Key()))
	}
	m.SeekLT(keys.SearchKey([]byte("a"), keys.MaxSeq))
	if m.Valid() {
		t.Fatal("SeekLT before first should be invalid")
	}
}

func TestMergingDirectionSwitch(t *testing.T) {
	a := newFake("a:1:1", "c:1:3", "e:1:5")
	b := newFake("b:1:2", "d:1:4")
	m := NewMerging(a, b)

	m.SeekToFirst() // a
	m.Next()        // b
	m.Next()        // c
	m.Prev()        // back to b — switch to backward
	if !m.Valid() || string(keys.UserKey(m.Key())) != "b" {
		t.Fatalf("after fwd-fwd-prev: %s", keys.String(m.Key()))
	}
	m.Next() // c — switch to forward again
	if !m.Valid() || string(keys.UserKey(m.Key())) != "c" {
		t.Fatalf("after prev-next: %s", keys.String(m.Key()))
	}
	m.Prev() // b
	m.Prev() // a
	if !m.Valid() || string(keys.UserKey(m.Key())) != "a" {
		t.Fatalf("after double prev: %s", keys.String(m.Key()))
	}
	m.Prev()
	if m.Valid() {
		t.Fatal("Prev before first should be invalid")
	}
}

func TestMergingBackwardMatchesReference(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		mk := func(vals []uint16, child int) (*fakeIter, [][]byte) {
			sorted := append([]uint16(nil), vals...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			it := &fakeIter{idx: -1}
			var ks [][]byte
			seen := map[uint16]bool{}
			for _, v := range sorted {
				if seen[v] {
					continue
				}
				seen[v] = true
				k := keys.Make([]byte(fmt.Sprintf("%05d-%d", v, child)), 1, keys.KindSet)
				it.keys = append(it.keys, k)
				it.vals = append(it.vals, nil)
				ks = append(ks, k)
			}
			return it, ks
		}
		a, ka := mk(xs, 0)
		b, kb := mk(ys, 1)
		all := append(append([][]byte{}, ka...), kb...)
		sort.Slice(all, func(i, j int) bool { return keys.Compare(all[i], all[j]) < 0 })

		m := NewMerging(a, b)
		i := len(all) - 1
		for m.SeekToLast(); m.Valid(); m.Prev() {
			if i < 0 || keys.Compare(m.Key(), all[i]) != 0 {
				return false
			}
			i--
		}
		return i == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatBackwardScan(t *testing.T) {
	c := concatOver([]*fakeIter{
		newFake("a:1:1", "b:1:2"),
		newFake("c:1:3"),
		newFake("d:1:4", "e:1:5"),
	})
	got := collectBackward(t, c)
	if fmt.Sprint(got) != "[e=5 d=4 c=3 b=2 a=1]" {
		t.Fatalf("backward concat = %v", got)
	}
}

func TestConcatSeekLT(t *testing.T) {
	c := concatOver([]*fakeIter{
		newFake("a:1:1"),
		newFake("c:1:3"),
		newFake("e:1:5"),
	})
	c.SeekLT(keys.SearchKey([]byte("d"), keys.MaxSeq))
	if !c.Valid() || string(keys.UserKey(c.Key())) != "c" {
		t.Fatalf("SeekLT(d) = %s", keys.String(c.Key()))
	}
	// Target past everything: last entry.
	c.SeekLT(keys.SearchKey([]byte("z"), keys.MaxSeq))
	if !c.Valid() || string(keys.UserKey(c.Key())) != "e" {
		t.Fatalf("SeekLT(z) = %s", keys.String(c.Key()))
	}
	// Target before everything: invalid.
	c.SeekLT(keys.SearchKey([]byte("a"), keys.MaxSeq))
	if c.Valid() {
		t.Fatal("SeekLT before first valid")
	}
}

func TestConcatPrevAcrossEmptyChild(t *testing.T) {
	c := concatOver([]*fakeIter{
		newFake("a:1:1"),
		newFake(),
		newFake("z:1:9"),
	})
	c.SeekToLast()
	if !c.Valid() || string(keys.UserKey(c.Key())) != "z" {
		t.Fatalf("SeekToLast = %s", keys.String(c.Key()))
	}
	c.Prev()
	if !c.Valid() || string(keys.UserKey(c.Key())) != "a" {
		t.Fatalf("Prev across empty child = %s", keys.String(c.Key()))
	}
	c.Prev()
	if c.Valid() {
		t.Fatal("Prev past first valid")
	}
}
