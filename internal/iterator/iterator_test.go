package iterator

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"xpointdb/internal/keys"
)

// fakeIter is an in-memory Iterator over pre-sorted internal keys.
type fakeIter struct {
	keys   [][]byte
	vals   [][]byte
	idx    int
	err    error
	closed bool
}

func newFake(pairs ...string) *fakeIter {
	// pairs are "user:seq:value" triples, must be pre-sorted.
	f := &fakeIter{idx: -1}
	for _, p := range pairs {
		var user, val string
		var seq uint64
		fmt.Sscanf(p, "%s", &user)
		parts := bytes.SplitN([]byte(p), []byte(":"), 3)
		user = string(parts[0])
		fmt.Sscanf(string(parts[1]), "%d", &seq)
		val = string(parts[2])
		f.keys = append(f.keys, keys.Make([]byte(user), seq, keys.KindSet))
		f.vals = append(f.vals, []byte(val))
	}
	return f
}

func (f *fakeIter) Valid() bool { return f.err == nil && f.idx >= 0 && f.idx < len(f.keys) }
func (f *fakeIter) SeekGE(target []byte) {
	f.idx = sort.Search(len(f.keys), func(i int) bool { return keys.Compare(f.keys[i], target) >= 0 })
}
func (f *fakeIter) SeekLT(target []byte) {
	f.idx = sort.Search(len(f.keys), func(i int) bool { return keys.Compare(f.keys[i], target) >= 0 }) - 1
}
func (f *fakeIter) SeekToFirst() { f.idx = 0 }
func (f *fakeIter) SeekToLast()  { f.idx = len(f.keys) - 1 }
func (f *fakeIter) Next()        { f.idx++ }
func (f *fakeIter) Prev()        { f.idx-- }
func (f *fakeIter) Key() []byte  { return f.keys[f.idx] }
func (f *fakeIter) Value() []byte {
	return f.vals[f.idx]
}
func (f *fakeIter) Error() error { return f.err }
func (f *fakeIter) Close() error { f.closed = true; return f.err }

func collect(t *testing.T, it Iterator) []string {
	t.Helper()
	var out []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		out = append(out, fmt.Sprintf("%s=%s", keys.UserKey(it.Key()), it.Value()))
	}
	if err := it.Error(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return out
}

func TestMergingInterleaves(t *testing.T) {
	a := newFake("a:1:1", "c:1:3", "e:1:5")
	b := newFake("b:1:2", "d:1:4", "f:1:6")
	m := NewMerging(a, b)
	got := collect(t, m)
	want := []string{"a=1", "b=2", "c=3", "d=4", "e=5", "f=6"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged = %v", got)
	}
}

func TestMergingSameUserKeyNewestFirst(t *testing.T) {
	a := newFake("k:5:new")
	b := newFake("k:2:old")
	m := NewMerging(a, b)
	m.SeekToFirst()
	if !m.Valid() || string(m.Value()) != "new" {
		t.Fatalf("first = %q", m.Value())
	}
	m.Next()
	if !m.Valid() || string(m.Value()) != "old" {
		t.Fatalf("second = %q", m.Value())
	}
}

func TestMergingSeekGE(t *testing.T) {
	a := newFake("a:1:1", "e:1:5")
	b := newFake("c:1:3", "g:1:7")
	m := NewMerging(a, b)
	m.SeekGE(keys.SearchKey([]byte("d"), keys.MaxSeq))
	if !m.Valid() || string(keys.UserKey(m.Key())) != "e" {
		t.Fatalf("SeekGE(d) = %s", keys.String(m.Key()))
	}
}

func TestMergingEmptyChildren(t *testing.T) {
	m := NewMerging(newFake(), newFake("a:1:1"), newFake())
	got := collect(t, m)
	if len(got) != 1 || got[0] != "a=1" {
		t.Fatalf("got %v", got)
	}
	empty := NewMerging()
	empty.SeekToFirst()
	if empty.Valid() {
		t.Fatal("empty merge valid")
	}
}

func TestMergingPropagatesErrors(t *testing.T) {
	bad := newFake("a:1:1")
	bad.err = errors.New("boom")
	m := NewMerging(bad)
	m.SeekToFirst()
	if m.Valid() {
		t.Fatal("valid despite child error")
	}
	if m.Error() == nil {
		t.Fatal("error swallowed")
	}
}

func TestMergingCloseClosesChildren(t *testing.T) {
	a, b := newFake("a:1:1"), newFake("b:1:2")
	m := NewMerging(a, b)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if !a.closed || !b.closed {
		t.Fatal("children not closed")
	}
}

func TestMergingAgainstReferenceMerge(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		mk := func(vals []uint16, child int) (*fakeIter, [][]byte) {
			sorted := append([]uint16(nil), vals...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			it := &fakeIter{idx: -1}
			var ks [][]byte
			seen := map[uint16]bool{}
			for _, v := range sorted {
				if seen[v] {
					continue
				}
				seen[v] = true
				k := keys.Make([]byte(fmt.Sprintf("%05d-%d", v, child)), 1, keys.KindSet)
				it.keys = append(it.keys, k)
				it.vals = append(it.vals, nil)
				ks = append(ks, k)
			}
			return it, ks
		}
		a, ka := mk(xs, 0)
		b, kb := mk(ys, 1)
		all := append(append([][]byte{}, ka...), kb...)
		sort.Slice(all, func(i, j int) bool { return keys.Compare(all[i], all[j]) < 0 })

		m := NewMerging(a, b)
		i := 0
		for m.SeekToFirst(); m.Valid(); m.Next() {
			if i >= len(all) || !bytes.Equal(m.Key(), all[i]) {
				return false
			}
			i++
		}
		return i == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------

func concatOver(children []*fakeIter) *Concat {
	return NewConcat(len(children),
		func(i int) (Iterator, error) { return children[i], nil },
		func(i int, target []byte) bool {
			ks := children[i].keys
			if len(ks) == 0 {
				return false
			}
			return keys.Compare(ks[len(ks)-1], target) >= 0
		})
}

func TestConcatScans(t *testing.T) {
	c := concatOver([]*fakeIter{
		newFake("a:1:1", "b:1:2"),
		newFake("c:1:3"),
		newFake("d:1:4", "e:1:5"),
	})
	got := collect(t, c)
	if fmt.Sprint(got) != "[a=1 b=2 c=3 d=4 e=5]" {
		t.Fatalf("concat = %v", got)
	}
}

func TestConcatSkipsToRightChild(t *testing.T) {
	opened := 0
	children := []*fakeIter{newFake("a:1:1"), newFake("c:1:3"), newFake("e:1:5")}
	c := NewConcat(3,
		func(i int) (Iterator, error) { opened++; return children[i], nil },
		func(i int, target []byte) bool {
			ks := children[i].keys
			return keys.Compare(ks[len(ks)-1], target) >= 0
		})
	c.SeekGE(keys.SearchKey([]byte("d"), keys.MaxSeq))
	if !c.Valid() || string(keys.UserKey(c.Key())) != "e" {
		t.Fatalf("SeekGE(d) = %s", keys.String(c.Key()))
	}
	if opened != 1 {
		t.Fatalf("opened %d children, want 1 (lazy)", opened)
	}
}

func TestConcatEmptyMiddleChild(t *testing.T) {
	c := concatOver([]*fakeIter{newFake("a:1:1"), newFake(), newFake("z:1:9")})
	got := collect(t, c)
	if fmt.Sprint(got) != "[a=1 z=9]" {
		t.Fatalf("got %v", got)
	}
}

func TestConcatOpenErrorSurfaces(t *testing.T) {
	c := NewConcat(1,
		func(i int) (Iterator, error) { return nil, errors.New("open failed") },
		func(i int, target []byte) bool { return true })
	c.SeekToFirst()
	if c.Valid() || c.Error() == nil {
		t.Fatal("open error not surfaced")
	}
}

func TestConcatSeekPastEverything(t *testing.T) {
	c := concatOver([]*fakeIter{newFake("a:1:1")})
	c.SeekGE(keys.SearchKey([]byte("z"), keys.MaxSeq))
	if c.Valid() {
		t.Fatal("seek past end valid")
	}
}
