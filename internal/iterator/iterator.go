// Package iterator defines the forward iterator contract shared by
// memtables, SST blocks/tables, levels, and the DB, plus the merging
// and concatenating combinators the read path is assembled from.
package iterator

import "xpointdb/internal/keys"

// Iterator walks entries in internal-key order, forward and backward.
//
// The Key and Value slices are only valid until the next call that
// moves the iterator. An iterator starts unpositioned; call one of the
// Seek methods first.
type Iterator interface {
	// Valid reports whether the iterator is positioned at an entry.
	Valid() bool
	// SeekGE positions at the first entry with internal key ≥ target.
	SeekGE(target []byte)
	// SeekLT positions at the last entry with internal key < target.
	SeekLT(target []byte)
	// SeekToFirst positions at the first entry.
	SeekToFirst()
	// SeekToLast positions at the last entry.
	SeekToLast()
	// Next advances to the next entry. Valid must be true.
	Next()
	// Prev moves to the previous entry. Valid must be true.
	Prev()
	// Key returns the current internal key.
	Key() []byte
	// Value returns the current value.
	Value() []byte
	// Error returns the first error encountered, if any.
	Error() error
	// Close releases resources. The iterator is unusable afterwards.
	Close() error
}

// Merging merges n child iterators into one ordered stream. Ties on
// identical internal keys cannot occur (sequence numbers are unique),
// but the implementation breaks them by child index for determinism.
//
// It uses a simple loser-free linear scan over children, which for the
// small fan-ins of an LSM read path (≤ a dozen children) is both
// faster and simpler than a heap.
type Merging struct {
	children []Iterator
	current  int // index of the winning child, -1 if exhausted
	// forward records the direction the children are aligned for:
	// true = every child is at its first entry ≥ the merge position,
	// false = at its last entry ≤ it. Switching direction re-seeks
	// the non-winning children, as in LevelDB.
	forward bool
	err     error
}

// NewMerging returns a merging iterator over children. The merging
// iterator owns the children and closes them on Close.
func NewMerging(children ...Iterator) *Merging {
	return &Merging{children: children, current: -1, forward: true}
}

// findSmallest scans children for the smallest current key.
func (m *Merging) findSmallest() {
	m.current = -1
	for i, it := range m.children {
		if err := it.Error(); err != nil && m.err == nil {
			m.err = err
		}
		if !it.Valid() {
			continue
		}
		if m.current < 0 || keys.Compare(it.Key(), m.children[m.current].Key()) < 0 {
			m.current = i
		}
	}
}

// findLargest scans children for the largest current key.
func (m *Merging) findLargest() {
	m.current = -1
	for i, it := range m.children {
		if err := it.Error(); err != nil && m.err == nil {
			m.err = err
		}
		if !it.Valid() {
			continue
		}
		if m.current < 0 || keys.Compare(it.Key(), m.children[m.current].Key()) > 0 {
			m.current = i
		}
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (m *Merging) Valid() bool { return m.current >= 0 && m.err == nil }

// SeekGE positions every child at target and picks the smallest.
func (m *Merging) SeekGE(target []byte) {
	for _, it := range m.children {
		it.SeekGE(target)
	}
	m.forward = true
	m.findSmallest()
}

// SeekLT positions every child before target and picks the largest.
func (m *Merging) SeekLT(target []byte) {
	for _, it := range m.children {
		it.SeekLT(target)
	}
	m.forward = false
	m.findLargest()
}

// SeekToFirst positions every child at its first entry.
func (m *Merging) SeekToFirst() {
	for _, it := range m.children {
		it.SeekToFirst()
	}
	m.forward = true
	m.findSmallest()
}

// SeekToLast positions every child at its last entry.
func (m *Merging) SeekToLast() {
	for _, it := range m.children {
		it.SeekToLast()
	}
	m.forward = false
	m.findLargest()
}

// Next advances the winning child and re-picks. If the children were
// aligned backward, they are first re-aligned forward around the
// current key (internal keys are unique, so exactly the current child
// sits AT the key and is stepped past it).
func (m *Merging) Next() {
	if m.current < 0 {
		return
	}
	if !m.forward {
		key := append([]byte(nil), m.children[m.current].Key()...)
		for i, it := range m.children {
			if i == m.current {
				continue
			}
			it.SeekGE(key)
			if it.Valid() && keys.Compare(it.Key(), key) == 0 {
				it.Next()
			}
		}
		m.forward = true
	}
	m.children[m.current].Next()
	m.findSmallest()
}

// Prev steps the merge backward, re-aligning children if they were
// aligned forward.
func (m *Merging) Prev() {
	if m.current < 0 {
		return
	}
	if m.forward {
		key := append([]byte(nil), m.children[m.current].Key()...)
		for i, it := range m.children {
			if i == m.current {
				continue
			}
			it.SeekLT(key)
		}
		m.forward = false
	}
	m.children[m.current].Prev()
	m.findLargest()
}

// Key returns the current internal key.
func (m *Merging) Key() []byte { return m.children[m.current].Key() }

// Value returns the current value.
func (m *Merging) Value() []byte { return m.children[m.current].Value() }

// Error returns the first child error encountered.
func (m *Merging) Error() error { return m.err }

// Close closes all children, returning the first error.
func (m *Merging) Close() error {
	var first error
	for _, it := range m.children {
		if err := it.Close(); err != nil && first == nil {
			first = err
		}
	}
	if first == nil {
		first = m.err
	}
	return first
}

var _ Iterator = (*Merging)(nil)

// Concat chains iterators whose key ranges are disjoint and ordered
// (the files of one L1+ level). Children are opened lazily via the
// open callback so that a scan touching one file does not open them
// all.
type Concat struct {
	n       int
	open    func(i int) (Iterator, error)
	boundGE func(i int, target []byte) bool // does child i possibly contain ≥ target?

	idx  int // current child index
	cur  Iterator
	err  error
	done bool
}

// NewConcat returns a concatenating iterator over n ordered, disjoint
// children. open(i) opens child i; boundGE(i, target) must report
// whether child i's largest key is ≥ target (used to skip children on
// SeekGE).
func NewConcat(n int, open func(i int) (Iterator, error), boundGE func(i int, target []byte) bool) *Concat {
	return &Concat{n: n, open: open, boundGE: boundGE, idx: -1}
}

func (c *Concat) setChild(i int) bool {
	if c.cur != nil {
		if err := c.cur.Close(); err != nil && c.err == nil {
			c.err = err
		}
		c.cur = nil
	}
	if i >= c.n {
		c.done = true
		c.idx = c.n
		return false
	}
	it, err := c.open(i)
	if err != nil {
		c.err = err
		c.done = true
		return false
	}
	c.cur, c.idx = it, i
	return true
}

// skipForward advances across empty/exhausted children.
func (c *Concat) skipForward() {
	for c.cur != nil && !c.cur.Valid() {
		if err := c.cur.Error(); err != nil && c.err == nil {
			c.err = err
			return
		}
		if !c.setChild(c.idx + 1) {
			return
		}
		c.cur.SeekToFirst()
	}
}

// skipBackward steps back across empty/exhausted children.
func (c *Concat) skipBackward() {
	for c.cur != nil && !c.cur.Valid() {
		if err := c.cur.Error(); err != nil && c.err == nil {
			c.err = err
			return
		}
		if c.idx <= 0 {
			if c.cur != nil {
				if err := c.cur.Close(); err != nil && c.err == nil {
					c.err = err
				}
				c.cur = nil
			}
			c.idx = -1
			return
		}
		if !c.setChild(c.idx - 1) {
			return
		}
		c.cur.SeekToLast()
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (c *Concat) Valid() bool { return c.err == nil && c.cur != nil && c.cur.Valid() }

// SeekGE positions at the first entry ≥ target across all children.
func (c *Concat) SeekGE(target []byte) {
	// Find the first child that can contain target.
	i := 0
	for i < c.n && !c.boundGE(i, target) {
		i++
	}
	if !c.setChild(i) {
		return
	}
	c.cur.SeekGE(target)
	c.skipForward()
}

// SeekToFirst positions at the first entry of the first child.
func (c *Concat) SeekToFirst() {
	if !c.setChild(0) {
		return
	}
	c.cur.SeekToFirst()
	c.skipForward()
}

// Next advances, rolling over to the next child as needed.
func (c *Concat) Next() {
	if !c.Valid() {
		return
	}
	c.cur.Next()
	c.skipForward()
}

// SeekToLast positions at the last entry of the last child.
func (c *Concat) SeekToLast() {
	if c.n == 0 {
		return
	}
	if !c.setChild(c.n - 1) {
		return
	}
	c.done = false
	c.cur.SeekToLast()
	c.skipBackward()
}

// SeekLT positions at the last entry < target across all children.
func (c *Concat) SeekLT(target []byte) {
	// Entries < target live in the first child whose bound is ≥
	// target (the one SeekGE would search) and every child before it.
	i := 0
	for i < c.n && !c.boundGE(i, target) {
		i++
	}
	if i >= c.n {
		// All children are entirely < target.
		c.SeekToLast()
		return
	}
	if !c.setChild(i) {
		return
	}
	c.done = false
	c.cur.SeekLT(target)
	c.skipBackward()
}

// Prev steps backward, rolling to earlier children as needed.
func (c *Concat) Prev() {
	if !c.Valid() {
		return
	}
	c.cur.Prev()
	c.skipBackward()
}

// Key returns the current internal key.
func (c *Concat) Key() []byte { return c.cur.Key() }

// Value returns the current value.
func (c *Concat) Value() []byte { return c.cur.Value() }

// Error returns the first error encountered.
func (c *Concat) Error() error { return c.err }

// Close closes the open child.
func (c *Concat) Close() error {
	if c.cur != nil {
		if err := c.cur.Close(); err != nil && c.err == nil {
			c.err = err
		}
		c.cur = nil
	}
	return c.err
}

var _ Iterator = (*Concat)(nil)
