package faultfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/events"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

func newTestFS(t *testing.T, seed int64) (*FS, *vfs.MemFS) {
	t.Helper()
	mem := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	f, err := New(mem, seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f, mem
}

func writeFile(t *testing.T, fs vfs.FS, name string, data []byte, sync bool) {
	t.Helper()
	h, err := fs.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if _, err := h.Write(data); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if sync {
		if err := h.Sync(); err != nil {
			t.Fatalf("sync %s: %v", name, err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close %s: %v", name, err)
	}
}

func readFile(t *testing.T, fs vfs.FS, name string) []byte {
	t.Helper()
	size, err := fs.Size(name)
	if err != nil {
		t.Fatalf("size %s: %v", name, err)
	}
	h, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer h.Close()
	data := make([]byte, size)
	if size > 0 {
		if _, err := h.ReadAt(data, 0); err != nil && err != io.EOF {
			t.Fatalf("read %s: %v", name, err)
		}
	}
	return data
}

func TestRuleByOpAndPath(t *testing.T) {
	f, _ := newTestFS(t, 1)
	r := f.AddRule(Rule{Ops: []Op{OpCreate}, Path: "*.log"})

	if _, err := f.Create("000001.log"); !errors.Is(err, ErrInjected) {
		t.Fatalf("create .log: want ErrInjected, got %v", err)
	}
	if _, err := f.Create("000002.sst"); err != nil {
		t.Fatalf("create .sst should pass: %v", err)
	}
	// Other ops on matching paths are untouched.
	writeFile(t, f, "000003.sst", []byte("x"), true)
	if got := r.Fired(); got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
}

func TestRuleCountAndAfter(t *testing.T) {
	f, _ := newTestFS(t, 1)
	f.AddRule(Rule{Ops: []Op{OpCreate}, After: 1, Count: 2})

	var errs []error
	for i := 0; i < 4; i++ {
		_, err := f.Create("f")
		errs = append(errs, err)
	}
	want := []bool{false, true, true, false} // skip 1, fire 2, exhausted
	for i, e := range errs {
		if (e != nil) != want[i] {
			t.Fatalf("create #%d: err=%v, want injected=%v", i, e, want[i])
		}
	}
}

func TestRuleProbSeeded(t *testing.T) {
	// With a fixed seed the fire pattern is reproducible and the rate
	// is roughly Prob.
	fired := func(seed int64) (int, string) {
		f, _ := newTestFS(t, seed)
		f.AddRule(Rule{Ops: []Op{OpCreate}, Prob: 0.3})
		n, pattern := 0, make([]byte, 0, 100)
		for i := 0; i < 100; i++ {
			if _, err := f.Create("f"); err != nil {
				n++
				pattern = append(pattern, '1')
			} else {
				pattern = append(pattern, '0')
			}
		}
		return n, string(pattern)
	}
	n1, p1 := fired(42)
	n2, p2 := fired(42)
	if p1 != p2 {
		t.Fatalf("same seed produced different fire patterns")
	}
	if n1 != n2 || n1 < 10 || n1 > 60 {
		t.Fatalf("fire count %d implausible for p=0.3 over 100 ops", n1)
	}
	_, p3 := fired(43)
	if p1 == p3 {
		t.Fatalf("different seeds produced identical fire patterns")
	}
}

func TestCustomError(t *testing.T) {
	f, _ := newTestFS(t, 1)
	sentinel := errors.New("disk on fire")
	f.AddRule(Rule{Ops: []Op{OpSync}, Fault: Fault{Err: sentinel}})
	h, err := f.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); !errors.Is(err, sentinel) {
		t.Fatalf("sync: want sentinel, got %v", err)
	}
}

func TestLatencyOnly(t *testing.T) {
	f, _ := newTestFS(t, 1)
	f.AddRule(Rule{Ops: []Op{OpWrite}, Fault: Fault{Latency: 10 * time.Millisecond}})
	h, err := f.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := h.Write([]byte("hello")); err != nil {
		t.Fatalf("latency-only fault must not fail the op: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("write returned after %v, want ≥10ms of injected latency", d)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	h.Close()
	if got := readFile(t, f, "f"); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("data = %q", got)
	}
}

func TestTornWrite(t *testing.T) {
	f, mem := newTestFS(t, 7)
	f.AddRule(Rule{Ops: []Op{OpWrite}, Count: 1, Fault: Fault{Torn: true}})
	h, err := f.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abcdefgh"), 64)
	if _, err := h.Write(payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: want ErrInjected, got %v", err)
	}
	h.Close()
	// The inner fs holds a strict prefix of the payload.
	size, err := mem.Size("f")
	if err != nil {
		t.Fatal(err)
	}
	if size >= int64(len(payload)) {
		t.Fatalf("torn write persisted %d bytes, want < %d", size, len(payload))
	}
	got := readFile(t, mem, "f")
	if !bytes.Equal(got, payload[:size]) {
		t.Fatalf("persisted bytes are not a prefix of the payload")
	}
	// The shadow agrees, so snapshots see the torn state.
	snap := f.Snapshot()
	if snap.TotalBytes("f") != size {
		t.Fatalf("shadow bytes %d != inner size %d", snap.TotalBytes("f"), size)
	}
}

func TestSnapshotMaterializeClean(t *testing.T) {
	f, _ := newTestFS(t, 1)
	writeFile(t, f, "a", []byte("durable"), true)
	h, err := f.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("synced-part")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("-volatile")); err != nil {
		t.Fatal(err)
	}
	h.Close()

	snap := f.Snapshot()
	dev := storage.New(clock.Real{}, storage.Null())
	out, err := snap.Materialize(dev, rand.New(rand.NewSource(1)), CrashOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, out, "a"); !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("a = %q", got)
	}
	if got := readFile(t, out, "b"); !bytes.Equal(got, []byte("synced-part")) {
		t.Fatalf("clean crash must drop unsynced tail; b = %q", got)
	}
}

func TestSnapshotMaterializePartialAndTorn(t *testing.T) {
	f, _ := newTestFS(t, 1)
	synced := bytes.Repeat([]byte("S"), 100)
	dirty := bytes.Repeat([]byte("D"), 100)
	h, err := f.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	h.Write(synced)
	h.Sync()
	h.Write(dirty)
	h.Close()
	snap := f.Snapshot()

	for seed := int64(0); seed < 20; seed++ {
		dev := storage.New(clock.Real{}, storage.Null())
		out, err := snap.Materialize(dev, rand.New(rand.NewSource(seed)),
			CrashOpts{KeepUnsynced: true, Torn: true})
		if err != nil {
			t.Fatal(err)
		}
		got := readFile(t, out, "f")
		if len(got) < 100 || len(got) > 200 {
			t.Fatalf("seed %d: surviving size %d outside [100,200]", seed, len(got))
		}
		// Synced prefix is sacrosanct — bit flips may only touch the
		// surviving unsynced region.
		if !bytes.Equal(got[:100], synced) {
			t.Fatalf("seed %d: synced prefix corrupted", seed)
		}
	}
}

func TestArmCrashFreezesState(t *testing.T) {
	f, _ := newTestFS(t, 1)
	writeFile(t, f, "before", []byte("old"), true)
	f.ArmCrash(2) // capture at the start of the 2nd op from now
	if f.Crashed() {
		t.Fatal("crashed before reaching the armed op")
	}
	writeFile(t, f, "after", []byte("new"), true) // create+write+sync+close ≥ 2 ops
	if !f.Crashed() {
		t.Fatal("armed crash did not trigger")
	}
	snap := f.CrashSnapshot()
	if snap == nil {
		t.Fatal("nil crash snapshot")
	}
	// "after" had not been durably written when the snapshot fired:
	// at most its create (op 1) and part of the write happened.
	if snap.SyncedBytes("after") != 0 {
		t.Fatalf("after synced=%d in crash snapshot, want 0", snap.SyncedBytes("after"))
	}
	if snap.SyncedBytes("before") != 3 {
		t.Fatalf("before synced=%d, want 3", snap.SyncedBytes("before"))
	}
	// Later ops must not mutate the frozen snapshot.
	writeFile(t, f, "before", []byte("overwritten-much-longer"), true)
	if snap.SyncedBytes("before") != 3 {
		t.Fatal("crash snapshot mutated by post-crash ops")
	}
}

func TestEagerHydration(t *testing.T) {
	mem := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	writeFile(t, mem, "preexisting", []byte("hello"), true)
	f, err := New(mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Never opened through the wrapper, yet present and fully synced
	// in a snapshot.
	snap := f.Snapshot()
	if snap.SyncedBytes("preexisting") != 5 {
		t.Fatalf("preexisting synced=%d, want 5", snap.SyncedBytes("preexisting"))
	}
	dev := storage.New(clock.Real{}, storage.Null())
	out, err := snap.Materialize(dev, rand.New(rand.NewSource(1)), CrashOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, out, "preexisting"); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("preexisting = %q", got)
	}
}

func TestRenameMovesShadow(t *testing.T) {
	f, _ := newTestFS(t, 1)
	writeFile(t, f, "tmp", []byte("payload"), true)
	if err := f.Rename("tmp", "final"); err != nil {
		t.Fatal(err)
	}
	snap := f.Snapshot()
	if snap.SyncedBytes("final") != 7 {
		t.Fatalf("final synced=%d, want 7", snap.SyncedBytes("final"))
	}
	if snap.TotalBytes("tmp") != 0 {
		t.Fatal("old name still present in snapshot")
	}
	if err := f.Remove("final"); err != nil {
		t.Fatal(err)
	}
	if n := len(f.Snapshot().Files()); n != 0 {
		t.Fatalf("files after remove = %d, want 0", n)
	}
}

func TestTraceEvents(t *testing.T) {
	f, _ := newTestFS(t, 1)
	buf := &events.Buffer{}
	f.SetTrace(buf)
	f.AddRule(Rule{Ops: []Op{OpSync}, Count: 1})
	writeFile(t, f, "f", []byte("x"), false)
	h, _ := f.Open("f")
	if err := h.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected sync failure, got %v", err)
	}
	h.Close()

	var syncEv *events.FSOp
	var writes int
	for _, e := range buf.Events() {
		if e.Kind != events.KindFSOp {
			t.Fatalf("unexpected kind %q", e.Kind)
		}
		switch e.FSOp.Op {
		case "sync":
			syncEv = e.FSOp
		case "write":
			writes++
			if e.FSOp.Bytes != 1 {
				t.Fatalf("write bytes = %d", e.FSOp.Bytes)
			}
		}
	}
	if writes != 1 {
		t.Fatalf("traced %d writes, want 1", writes)
	}
	if syncEv == nil || !syncEv.Injected || syncEv.Error == "" {
		t.Fatalf("sync event missing injection marker: %+v", syncEv)
	}
}

func TestSyncAdvancesWatermark(t *testing.T) {
	f, _ := newTestFS(t, 1)
	h, err := f.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("1234"))
	if s := f.Snapshot(); s.SyncedBytes("f") != 0 {
		t.Fatalf("pre-sync synced=%d", s.SyncedBytes("f"))
	}
	h.Sync()
	if s := f.Snapshot(); s.SyncedBytes("f") != 4 {
		t.Fatalf("post-sync synced=%d, want 4", s.SyncedBytes("f"))
	}
	h.Write([]byte("56"))
	if s := f.Snapshot(); s.SyncedBytes("f") != 4 || s.TotalBytes("f") != 6 {
		t.Fatalf("after more writes: synced=%d total=%d", s.SyncedBytes("f"), s.TotalBytes("f"))
	}
	h.Close()
}
