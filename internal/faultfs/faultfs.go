// Package faultfs is a programmable fault-injection filesystem: it
// wraps any vfs.FS and perturbs the storage layer the way real devices
// and kernels fail — injected errors on any operation (selected by
// path glob, probability, or trigger count), torn writes that persist
// only a prefix of the payload, added per-operation latency charged to
// the engine clock, and crash snapshots that capture the exact on-disk
// state (synced prefixes plus, optionally, partially surviving and
// bit-flipped unsynced tails) at an arbitrary operation boundary.
//
// The wrapper maintains a shadow of every file: the bytes written
// through it and the prefix known durable (advanced only by a
// successful Sync). A Snapshot is a deep copy of that shadow, and
// Materialize turns one into a fresh vfs.MemFS image "as the disk
// would look after the crash" — the generalization of
// vfs.MemFS.CrashClone that the crash-consistency torture harness
// (internal/torture) reopens engines from.
//
// All randomness (probabilistic rules, torn-write lengths) comes from
// a caller-provided seed, so a run is reproducible given the same seed
// and operation interleaving. Every operation can also be traced as an
// events.KindFSOp event, composing with the engine's event log.
//
// faultfs is test infrastructure: the shadow keeps file contents in
// memory and New reads every pre-existing file eagerly, so wrap
// small/simulated filesystems, not multi-gigabyte OS directories.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"path"
	"sort"
	"sync"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/events"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

// Op identifies one filesystem operation class for rule matching.
type Op uint8

// The operation classes rules can target.
const (
	OpCreate Op = iota
	OpOpen
	OpRemove
	OpRename
	OpList
	OpSize
	OpWrite
	OpReadAt
	OpSync
	OpClose
)

var opNames = [...]string{
	OpCreate: "create", OpOpen: "open", OpRemove: "remove",
	OpRename: "rename", OpList: "list", OpSize: "size",
	OpWrite: "write", OpReadAt: "read_at", OpSync: "sync",
	OpClose: "close",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ErrInjected is the default error returned by a firing fault rule.
var ErrInjected = errors.New("faultfs: injected fault")

// Fault is what happens when a rule fires.
//
// A zero Fault fails the operation with ErrInjected. Latency alone
// (Err nil, Torn false) delays the operation without failing it. Torn
// applies to OpWrite: a seeded-random strict prefix of the payload is
// written through before the error is returned, modeling a torn
// (partial-sector) write.
type Fault struct {
	// Err is returned to the caller; nil with Torn or a zero Latency
	// means ErrInjected.
	Err error
	// Torn makes a failing write persist a random prefix first.
	Torn bool
	// Bitrot applies to OpReadAt: the read SUCCEEDS but one
	// seeded-random bit of the returned buffer is flipped, restricted
	// to bytes the file had synced — the silent media-error model
	// (acknowledged-durable data rots), as opposed to Torn, which
	// corrupts only the unsynced crash tail. The underlying file is
	// untouched: rot is per-read, so a retry after the rule heals sees
	// clean bytes, modeling a transient controller/DMA error; a rule
	// with no transient bounds models a rotten region. Bitrot ignores
	// Err and Torn.
	Bitrot bool
	// Latency delays the operation on the filesystem's clock.
	Latency time.Duration
}

// Rule selects operations and applies a Fault to them. Fields combine
// conjunctively; zero values mean "no constraint".
//
// FailNTimes and HealAfter make a rule transient: it injects faults for
// a bounded episode and then heals permanently, modeling a device
// brown-out (a loose cable, a controller reset, a full-then-trimmed
// disk) rather than a dead one. Healed rules never fire again, which is
// what lets the engine's background-error recovery prove it can return
// to service without a reopen.
type Rule struct {
	// Ops lists the operation classes the rule targets (nil = all).
	Ops []Op
	// Path is a path.Match glob the file name must match ("" = all).
	// Rename matches the old name.
	Path string
	// After skips the first After matching operations.
	After int64
	// Count caps how many times the rule fires (0 = unlimited).
	Count int64
	// Prob fires the rule with this probability per eligible
	// operation (0 or ≥1 = always).
	Prob float64
	// FailNTimes, when > 0, makes the rule fire deterministically
	// (ignoring Prob) on its first FailNTimes eligible operations and
	// then heal permanently. Unlike Count — which caps fires but
	// leaves a probabilistic rule armed forever — a FailNTimes rule is
	// guaranteed healthy once its budget is consumed.
	FailNTimes int64
	// HealAfter, when > 0, heals the rule this long (on the wrapper's
	// clock) after its first eligible operation: operations inside the
	// window fault per the other selectors, later ones pass.
	HealAfter time.Duration
	// Fault is applied when the rule fires.
	Fault Fault

	matched    int64
	fired      int64
	healed     bool
	firstMatch time.Time
	fs         *FS
}

// Matched returns how many operations matched the rule's selectors
// (including ones skipped by After/Count/Prob).
func (r *Rule) Matched() int64 {
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	return r.matched
}

// Fired returns how many times the rule's fault was applied.
func (r *Rule) Fired() int64 {
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	return r.fired
}

// Healed reports whether a transient rule (FailNTimes or HealAfter set)
// has permanently stopped firing. Rules without transient bounds never
// heal.
func (r *Rule) Healed() bool {
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	if !r.healed && r.HealAfter > 0 && !r.firstMatch.IsZero() &&
		r.fs.clk.Now().Sub(r.firstMatch) >= r.HealAfter {
		// The heal deadline may pass without another matching
		// operation to observe it; report it anyway.
		r.healed = true
	}
	return r.healed
}

// shadow is the wrapper's record of one file: everything written
// through the wrapper and the prefix known durable.
type shadow struct {
	data   []byte
	synced int
}

// FS wraps an inner vfs.FS with fault injection, op tracing, and crash
// snapshot capture. Create one with New; it implements vfs.FS.
type FS struct {
	inner vfs.FS
	clk   clock.Clock
	trace events.Listener

	mu      sync.Mutex
	rng     *rand.Rand
	rules   []*Rule
	shadows map[string]*shadow
	ops     int64
	inject  int64
	crashAt int64 // capture a snapshot when ops reaches this (>0)
	snap    *Snapshot

	// Capacity quota. quota < 0 means unlimited (the default); used is
	// the sum of shadow byte lengths, maintained incrementally at every
	// shadow mutation. When a quota is set, Write/Create/Sync are
	// metered against it and fail with an error wrapping vfs.ErrNoSpace
	// once the budget is exhausted — SetQuota below current usage
	// models an externally filled disk (everything fails until space is
	// freed or the quota grows back).
	quota  int64
	used   int64
	enospc int64 // operations failed by the quota
}

var _ vfs.FS = (*FS)(nil)

// New wraps inner, seeding all randomized decisions from seed. Files
// already present on inner are read eagerly into the shadow and marked
// fully synced (wrapping a filesystem at rest: everything on disk is
// durable).
func New(inner vfs.FS, seed int64) (*FS, error) {
	f := &FS{
		inner:   inner,
		clk:     clock.Real{},
		rng:     rand.New(rand.NewSource(seed)),
		shadows: make(map[string]*shadow),
		quota:   -1,
	}
	names, err := inner.List()
	if err != nil {
		return nil, fmt.Errorf("faultfs: list inner: %w", err)
	}
	for _, name := range names {
		size, err := inner.Size(name)
		if err != nil {
			return nil, fmt.Errorf("faultfs: size %s: %w", name, err)
		}
		data := make([]byte, size)
		if size > 0 {
			h, err := inner.Open(name)
			if err != nil {
				return nil, fmt.Errorf("faultfs: hydrate %s: %w", name, err)
			}
			_, rerr := h.ReadAt(data, 0)
			h.Close()
			if rerr != nil {
				return nil, fmt.Errorf("faultfs: hydrate %s: %w", name, rerr)
			}
		}
		f.shadows[name] = &shadow{data: data, synced: len(data)}
		f.used += int64(size)
	}
	return f, nil
}

// ErrNoSpace is the quota's disk-full error. It wraps vfs.ErrNoSpace,
// so errors.Is(err, vfs.ErrNoSpace) identifies injected capacity
// exhaustion exactly like a real ENOSPC.
var ErrNoSpace = fmt.Errorf("faultfs: disk full: %w", vfs.ErrNoSpace)

// SetQuota installs (or adjusts at runtime) the capacity budget in
// bytes; negative means unlimited. Shrinking the quota below current
// usage makes every subsequent Write/Create/Sync fail with ErrNoSpace
// until files are removed or the quota grows — the squeeze/release
// primitive the ENOSPC torture mode is built on.
func (f *FS) SetQuota(bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.quota = bytes
}

// Quota returns the current byte budget (negative = unlimited).
func (f *FS) Quota() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.quota
}

// DiskUsed returns the bytes currently consumed (the sum of all file
// lengths as written through the wrapper).
func (f *FS) DiskUsed() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.used
}

// EnospcCount returns how many operations the quota has failed.
func (f *FS) EnospcCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.enospc
}

// chargeQuota meters one operation against the byte budget: add is the
// bytes the operation would append (0 for Create/Sync, which only
// probe for headroom). It returns ErrNoSpace when the budget cannot
// cover it. A full disk fails creates outright (no inode headroom),
// and a disk squeezed below usage fails syncs too — dirty pages have
// nowhere to go, which is how kernels surface ENOSPC on fsync.
func (f *FS) chargeQuota(op Op, add int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.quota < 0 {
		return nil
	}
	over := false
	switch op {
	case OpWrite:
		over = f.used+int64(add) > f.quota
	case OpCreate:
		over = f.used >= f.quota
	default: // OpSync
		over = f.used > f.quota
	}
	if over {
		f.enospc++
		return ErrNoSpace
	}
	return nil
}

// SetClock installs the clock used for injected latency and trace
// timestamps (default: the real clock). Call before use.
func (f *FS) SetClock(clk clock.Clock) { f.clk = clk }

// SetTrace installs a listener receiving one events.KindFSOp event per
// operation. Call before use.
func (f *FS) SetTrace(l events.Listener) { f.trace = l }

// AddRule registers a fault rule and returns it for counter queries.
// Rules are evaluated in registration order; the first one that fires
// wins for a given operation.
func (f *FS) AddRule(r Rule) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	r.fs = f
	rp := &r
	f.rules = append(f.rules, rp)
	return rp
}

// ClearRules removes all fault rules.
func (f *FS) ClearRules() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// OpCount returns the number of operations observed so far.
func (f *FS) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// InjectedCount returns the number of operations a fault was applied
// to.
func (f *FS) InjectedCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inject
}

// ArmCrash schedules a crash snapshot to be captured automatically at
// the start of the afterOps-th operation from now (before that
// operation's effects apply). Re-arming discards a previously captured
// snapshot.
func (f *FS) ArmCrash(afterOps int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = f.ops + afterOps
	f.snap = nil
}

// ForceCrash captures the crash snapshot immediately if none has been
// captured yet, and returns it.
func (f *FS) ForceCrash() *Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.snap == nil {
		f.snap = f.snapshotLocked()
	}
	return f.snap
}

// Crashed reports whether the armed crash snapshot has been captured.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snap != nil
}

// CrashSnapshot returns the captured crash snapshot, or nil if the
// crash point has not been reached.
func (f *FS) CrashSnapshot() *Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snap
}

// Snapshot captures the current shadow state without arming or
// consuming the crash trigger.
func (f *FS) Snapshot() *Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshotLocked()
}

func (f *FS) snapshotLocked() *Snapshot {
	s := &Snapshot{files: make(map[string]shadow, len(f.shadows))}
	for name, sh := range f.shadows {
		s.files[name] = shadow{data: append([]byte(nil), sh.data...), synced: sh.synced}
	}
	return s
}

// begin counts the operation, captures an armed crash snapshot at the
// boundary, and evaluates rules, returning the fault to apply (nil for
// none).
func (f *FS) begin(op Op, name string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.crashAt > 0 && f.snap == nil && f.ops >= f.crashAt {
		f.snap = f.snapshotLocked()
	}
	for _, r := range f.rules {
		if len(r.Ops) > 0 {
			hit := false
			for _, o := range r.Ops {
				if o == op {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		if r.Path != "" {
			if ok, _ := path.Match(r.Path, name); !ok {
				continue
			}
		}
		r.matched++
		if r.matched <= r.After {
			continue
		}
		if r.healed {
			continue
		}
		if r.HealAfter > 0 {
			now := f.clk.Now()
			if r.firstMatch.IsZero() {
				r.firstMatch = now
			} else if now.Sub(r.firstMatch) >= r.HealAfter {
				r.healed = true
				continue
			}
		}
		if r.FailNTimes > 0 {
			if r.fired >= r.FailNTimes {
				r.healed = true
				continue
			}
			// Deterministic transient episode: Prob does not apply.
		} else {
			if r.Count > 0 && r.fired >= r.Count {
				continue
			}
			if r.Prob > 0 && r.Prob < 1 && f.rng.Float64() >= r.Prob {
				continue
			}
		}
		r.fired++
		if r.FailNTimes > 0 && r.fired >= r.FailNTimes {
			// Budget consumed: healed from the next operation on.
			r.healed = true
		}
		f.inject++
		ft := r.Fault
		return &ft
	}
	return nil
}

// faultErr resolves the error a firing fault reports, or nil for a
// latency-only fault.
func faultErr(ft *Fault) error {
	if ft.Err != nil {
		return ft.Err
	}
	if ft.Torn || ft.Latency == 0 {
		return ErrInjected
	}
	return nil // latency only
}

// applyLatency sleeps the fault's injected delay on the engine clock.
func (f *FS) applyLatency(ft *Fault) {
	if ft != nil && ft.Latency > 0 {
		f.clk.Sleep(ft.Latency)
	}
}

// emit traces one completed operation.
func (f *FS) emit(op Op, name string, bytes int, start time.Time, err error, injected bool) {
	if f.trace == nil {
		return
	}
	now := f.clk.Now()
	e := &events.FSOp{
		Op:         op.String(),
		Path:       name,
		Bytes:      bytes,
		DurationUS: now.Sub(start).Microseconds(),
		Injected:   injected,
	}
	if err != nil {
		e.Error = err.Error()
	}
	f.trace.Emit(events.Event{TS: now, Kind: events.KindFSOp, FSOp: e})
}

// now returns a trace timestamp, skipping the clock read when tracing
// is off.
func (f *FS) now() time.Time {
	if f.trace == nil {
		return time.Time{}
	}
	return f.clk.Now()
}

// ---------------------------------------------------------------------
// vfs.FS implementation

// Create creates (truncating) name, resetting its shadow.
func (f *FS) Create(name string) (vfs.File, error) {
	start := f.now()
	ft := f.begin(OpCreate, name)
	f.applyLatency(ft)
	if ft != nil {
		if err := faultErr(ft); err != nil {
			f.emit(OpCreate, name, 0, start, err, true)
			return nil, err
		}
	}
	if err := f.chargeQuota(OpCreate, 0); err != nil {
		f.emit(OpCreate, name, 0, start, err, true)
		return nil, err
	}
	h, err := f.inner.Create(name)
	if err == nil {
		f.mu.Lock()
		if old, ok := f.shadows[name]; ok {
			f.used -= int64(len(old.data)) // truncation frees the old bytes
		}
		f.shadows[name] = &shadow{}
		f.mu.Unlock()
	}
	f.emit(OpCreate, name, 0, start, err, ft != nil)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, name: name, inner: h}, nil
}

// Open opens name for reading (and appending, per the vfs contract).
func (f *FS) Open(name string) (vfs.File, error) {
	start := f.now()
	ft := f.begin(OpOpen, name)
	f.applyLatency(ft)
	if ft != nil {
		if err := faultErr(ft); err != nil {
			f.emit(OpOpen, name, 0, start, err, true)
			return nil, err
		}
	}
	h, err := f.inner.Open(name)
	f.emit(OpOpen, name, 0, start, err, ft != nil)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, name: name, inner: h}, nil
}

// Remove deletes name.
func (f *FS) Remove(name string) error {
	start := f.now()
	ft := f.begin(OpRemove, name)
	f.applyLatency(ft)
	if ft != nil {
		if err := faultErr(ft); err != nil {
			f.emit(OpRemove, name, 0, start, err, true)
			return err
		}
	}
	err := f.inner.Remove(name)
	if err == nil {
		f.mu.Lock()
		if sh, ok := f.shadows[name]; ok {
			f.used -= int64(len(sh.data))
		}
		delete(f.shadows, name)
		f.mu.Unlock()
	}
	f.emit(OpRemove, name, 0, start, err, ft != nil)
	return err
}

// Rename atomically renames oldname to newname. The rename is treated
// as durable immediately (directory metadata journaling), matching
// vfs.MemFS semantics.
func (f *FS) Rename(oldname, newname string) error {
	start := f.now()
	ft := f.begin(OpRename, oldname)
	f.applyLatency(ft)
	if ft != nil {
		if err := faultErr(ft); err != nil {
			f.emit(OpRename, oldname, 0, start, err, true)
			return err
		}
	}
	err := f.inner.Rename(oldname, newname)
	if err == nil {
		f.mu.Lock()
		if sh, ok := f.shadows[oldname]; ok {
			if tgt, ok := f.shadows[newname]; ok {
				f.used -= int64(len(tgt.data)) // replaced target freed
			}
			delete(f.shadows, oldname)
			f.shadows[newname] = sh
		}
		f.mu.Unlock()
	}
	f.emit(OpRename, oldname, 0, start, err, ft != nil)
	return err
}

// List returns the inner filesystem's file names.
func (f *FS) List() ([]string, error) {
	start := f.now()
	ft := f.begin(OpList, "")
	f.applyLatency(ft)
	if ft != nil {
		if err := faultErr(ft); err != nil {
			f.emit(OpList, "", 0, start, err, true)
			return nil, err
		}
	}
	names, err := f.inner.List()
	f.emit(OpList, "", 0, start, err, ft != nil)
	return names, err
}

// Size returns the size of name.
func (f *FS) Size(name string) (int64, error) {
	start := f.now()
	ft := f.begin(OpSize, name)
	f.applyLatency(ft)
	if ft != nil {
		if err := faultErr(ft); err != nil {
			f.emit(OpSize, name, 0, start, err, true)
			return 0, err
		}
	}
	n, err := f.inner.Size(name)
	f.emit(OpSize, name, 0, start, err, ft != nil)
	return n, err
}

// ---------------------------------------------------------------------
// file handle

// file is a wrapped handle. Appends through it are recorded in the
// shadow; per-file append/sync callers are assumed serialized (as the
// engine guarantees for WAL, SST, and MANIFEST files).
type file struct {
	fs    *FS
	name  string
	inner vfs.File
}

func (h *file) Write(p []byte) (int, error) {
	start := h.fs.now()
	ft := h.fs.begin(OpWrite, h.name)
	h.fs.applyLatency(ft)
	if ft != nil {
		if err := faultErr(ft); err != nil {
			if ft.Torn && len(p) > 0 {
				// Persist a strict prefix, then fail: a torn write.
				h.fs.mu.Lock()
				k := h.fs.rng.Intn(len(p))
				h.fs.mu.Unlock()
				if k > 0 {
					if n, werr := h.inner.Write(p[:k]); werr == nil && n > 0 {
						h.fs.record(h.name, p[:n])
					}
				}
			}
			h.fs.emit(OpWrite, h.name, len(p), start, err, true)
			return 0, err
		}
	}
	if err := h.fs.chargeQuota(OpWrite, len(p)); err != nil {
		h.fs.emit(OpWrite, h.name, len(p), start, err, true)
		return 0, err
	}
	n, err := h.inner.Write(p)
	if n > 0 {
		h.fs.record(h.name, p[:n])
	}
	h.fs.emit(OpWrite, h.name, len(p), start, err, ft != nil)
	return n, err
}

// record appends written bytes to the shadow.
func (f *FS) record(name string, p []byte) {
	f.mu.Lock()
	sh, ok := f.shadows[name]
	if !ok {
		sh = &shadow{}
		f.shadows[name] = sh
	}
	sh.data = append(sh.data, p...)
	f.used += int64(len(p))
	f.mu.Unlock()
}

func (h *file) ReadAt(p []byte, off int64) (int, error) {
	start := h.fs.now()
	ft := h.fs.begin(OpReadAt, h.name)
	h.fs.applyLatency(ft)
	if ft != nil && !ft.Bitrot {
		if err := faultErr(ft); err != nil {
			h.fs.emit(OpReadAt, h.name, len(p), start, err, true)
			return 0, err
		}
	}
	n, err := h.inner.ReadAt(p, off)
	if ft != nil && ft.Bitrot && n > 0 {
		h.fs.bitrot(h.name, p[:n], off)
	}
	h.fs.emit(OpReadAt, h.name, len(p), start, err, ft != nil)
	return n, err
}

// bitrot flips one seeded-random bit of the buffer just read, within
// the portion of [off, off+len(p)) the file had synced. Synced bytes
// are exactly the ones a media error can silently rot: unsynced bytes
// are already covered by the crash model (Materialize's torn tail). A
// read window holding no synced bytes is returned intact.
func (f *FS) bitrot(name string, p []byte, off int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	syncedEnd := int64(0)
	if sh, ok := f.shadows[name]; ok {
		syncedEnd = int64(sh.synced)
	}
	n := syncedEnd - off
	if n > int64(len(p)) {
		n = int64(len(p))
	}
	if n <= 0 {
		return
	}
	bit := f.rng.Intn(int(n) * 8)
	p[bit/8] ^= 1 << (bit % 8)
}

func (h *file) Sync() error {
	start := h.fs.now()
	ft := h.fs.begin(OpSync, h.name)
	// Capture the durable watermark before the inner sync: bytes
	// appended concurrently with the sync are conservatively treated
	// as still volatile.
	h.fs.mu.Lock()
	mark := 0
	if sh, ok := h.fs.shadows[h.name]; ok {
		mark = len(sh.data)
	}
	h.fs.mu.Unlock()
	h.fs.applyLatency(ft)
	if ft != nil {
		if err := faultErr(ft); err != nil {
			// Failed sync: nothing new promised durable.
			h.fs.emit(OpSync, h.name, 0, start, err, true)
			return err
		}
	}
	if err := h.fs.chargeQuota(OpSync, 0); err != nil {
		h.fs.emit(OpSync, h.name, 0, start, err, true)
		return err
	}
	err := h.inner.Sync()
	if err == nil {
		h.fs.mu.Lock()
		if sh, ok := h.fs.shadows[h.name]; ok && mark > sh.synced {
			sh.synced = mark
		}
		h.fs.mu.Unlock()
	}
	h.fs.emit(OpSync, h.name, 0, start, err, ft != nil)
	return err
}

func (h *file) Close() error {
	start := h.fs.now()
	ft := h.fs.begin(OpClose, h.name)
	h.fs.applyLatency(ft)
	if ft != nil {
		if err := faultErr(ft); err != nil {
			h.fs.emit(OpClose, h.name, 0, start, err, true)
			return err
		}
	}
	err := h.inner.Close()
	h.fs.emit(OpClose, h.name, 0, start, err, ft != nil)
	return err
}

// ---------------------------------------------------------------------
// Snapshot

// Snapshot is a point-in-time copy of the shadow state: per file, the
// bytes written and the prefix known durable. It is immutable.
type Snapshot struct {
	files map[string]shadow
}

// Files returns the snapshot's file names, sorted.
func (s *Snapshot) Files() []string {
	names := make([]string, 0, len(s.files))
	for n := range s.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SyncedBytes returns the durable prefix length of name.
func (s *Snapshot) SyncedBytes(name string) int64 {
	return int64(s.files[name].synced)
}

// TotalBytes returns the written length of name (durable or not).
func (s *Snapshot) TotalBytes(name string) int64 {
	return int64(len(s.files[name].data))
}

// CrashOpts selects how much of the unsynced data survives in a
// materialized crash image.
type CrashOpts struct {
	// KeepUnsynced keeps a seeded-random prefix of each file's
	// unsynced tail (a crash racing the device's write-back). False
	// drops every unsynced byte, matching vfs.MemFS.CrashClone.
	KeepUnsynced bool
	// Torn flips random bits inside the surviving unsynced region,
	// modeling a torn sector. Synced bytes are never corrupted: a
	// completed fsync is the device's durability promise.
	Torn bool
}

// Materialize builds the post-crash filesystem image: a fresh
// vfs.MemFS on dev holding, for every file, its synced prefix plus
// whatever unsynced tail opts and rng decide survived. Files are
// processed in sorted-name order so a fixed rng seed yields a fixed
// image.
func (s *Snapshot) Materialize(dev *storage.Device, rng *rand.Rand, opts CrashOpts) (*vfs.MemFS, error) {
	out := vfs.NewMem(dev)
	for _, name := range s.Files() {
		sh := s.files[name]
		keep := sh.synced
		if opts.KeepUnsynced && len(sh.data) > sh.synced {
			keep += rng.Intn(len(sh.data) - sh.synced + 1)
		}
		data := append([]byte(nil), sh.data[:keep]...)
		if opts.Torn && keep > sh.synced {
			flips := 1 + rng.Intn(4)
			for i := 0; i < flips; i++ {
				pos := sh.synced + rng.Intn(keep-sh.synced)
				data[pos] ^= 1 << uint(rng.Intn(8))
			}
		}
		h, err := out.Create(name)
		if err != nil {
			return nil, fmt.Errorf("faultfs: materialize %s: %w", name, err)
		}
		if len(data) > 0 {
			if _, err := h.Write(data); err != nil {
				h.Close()
				return nil, fmt.Errorf("faultfs: materialize %s: %w", name, err)
			}
		}
		if err := h.Sync(); err != nil {
			h.Close()
			return nil, fmt.Errorf("faultfs: materialize %s: %w", name, err)
		}
		h.Close()
	}
	return out, nil
}
