package faultfs

import (
	"errors"
	"testing"
	"time"
)

// TestFailNTimesHeals: a FailNTimes rule fires deterministically on
// exactly its first N eligible operations, then heals permanently.
func TestFailNTimesHeals(t *testing.T) {
	f, _ := newTestFS(t, 1)
	rule := f.AddRule(Rule{Ops: []Op{OpCreate}, Path: "*.log", FailNTimes: 3})

	for i := 0; i < 3; i++ {
		if _, err := f.Create("a.log"); !errors.Is(err, ErrInjected) {
			t.Fatalf("create %d = %v, want ErrInjected", i, err)
		}
		if i < 2 && rule.Healed() {
			t.Fatalf("rule healed after %d fires, budget is 3", i+1)
		}
	}
	if !rule.Healed() {
		t.Fatal("rule not healed after consuming FailNTimes budget")
	}
	for i := 0; i < 5; i++ {
		h, err := f.Create("a.log")
		if err != nil {
			t.Fatalf("create after heal = %v, want nil", err)
		}
		h.Close()
	}
	if got := rule.Fired(); got != 3 {
		t.Fatalf("rule fired %d times, want exactly 3", got)
	}
}

// TestFailNTimesIgnoresProb: the transient episode is deterministic —
// every eligible op inside the budget faults even with a tiny Prob.
func TestFailNTimesIgnoresProb(t *testing.T) {
	f, _ := newTestFS(t, 2)
	f.AddRule(Rule{Ops: []Op{OpSync}, FailNTimes: 2, Prob: 0.000001})

	h, err := f.Create("x")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer h.Close()
	for i := 0; i < 2; i++ {
		if err := h.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d = %v, want ErrInjected despite Prob", i, err)
		}
	}
	if err := h.Sync(); err != nil {
		t.Fatalf("sync after heal = %v, want nil", err)
	}
}

// TestFailNTimesRespectsAfter: the failure episode starts only once
// After matching operations have passed.
func TestFailNTimesRespectsAfter(t *testing.T) {
	f, _ := newTestFS(t, 3)
	f.AddRule(Rule{Ops: []Op{OpRemove}, After: 2, FailNTimes: 1})

	for i := 0; i < 2; i++ {
		writeFile(t, f, "victim", []byte("x"), true)
		if err := f.Remove("victim"); err != nil {
			t.Fatalf("remove %d (inside After window) = %v, want nil", i, err)
		}
	}
	writeFile(t, f, "victim", []byte("x"), true)
	if err := f.Remove("victim"); !errors.Is(err, ErrInjected) {
		t.Fatalf("remove past After = %v, want ErrInjected", err)
	}
	if err := f.Remove("victim"); err != nil {
		t.Fatalf("remove after heal = %v, want nil", err)
	}
}

// TestHealAfterWindow: a HealAfter rule faults inside its time window
// (opened by the first eligible operation) and passes afterwards.
func TestHealAfterWindow(t *testing.T) {
	f, _ := newTestFS(t, 4)
	rule := f.AddRule(Rule{Ops: []Op{OpCreate}, Path: "*.sst", HealAfter: 30 * time.Millisecond})

	if _, err := f.Create("000001.sst"); !errors.Is(err, ErrInjected) {
		t.Fatalf("create inside window = %v, want ErrInjected", err)
	}
	if rule.Healed() {
		t.Fatal("rule healed immediately")
	}
	time.Sleep(40 * time.Millisecond)
	h, err := f.Create("000002.sst")
	if err != nil {
		t.Fatalf("create after HealAfter = %v, want nil", err)
	}
	h.Close()
	if !rule.Healed() {
		t.Fatal("rule not healed after the window passed")
	}
}

// TestHealedReportsWithoutTraffic: Healed must observe the deadline
// even when no further matching operation arrives to advance the rule.
func TestHealedReportsWithoutTraffic(t *testing.T) {
	f, _ := newTestFS(t, 5)
	rule := f.AddRule(Rule{Ops: []Op{OpSync}, HealAfter: 10 * time.Millisecond})

	h, err := f.Create("x")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer h.Close()
	if err := h.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
	time.Sleep(20 * time.Millisecond)
	if !rule.Healed() {
		t.Fatal("Healed() = false after the deadline with no traffic")
	}
	if err := h.Sync(); err != nil {
		t.Fatalf("sync after heal = %v, want nil", err)
	}
}

// TestHealAfterWithProb: a probabilistic brown-out — some ops inside
// the window fault, none after it.
func TestHealAfterWithProb(t *testing.T) {
	f, _ := newTestFS(t, 6)
	f.AddRule(Rule{Ops: []Op{OpSync}, Prob: 0.5, HealAfter: 25 * time.Millisecond})

	h, err := f.Create("x")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer h.Close()
	for i := 0; i < 40; i++ {
		_ = h.Sync() // may or may not fault inside the window
	}
	time.Sleep(30 * time.Millisecond)
	for i := 0; i < 20; i++ {
		if err := h.Sync(); err != nil {
			t.Fatalf("sync %d after heal = %v, want nil", i, err)
		}
	}
}

// TestPermanentRuleNeverHeals: without transient bounds Healed stays
// false and the rule keeps firing.
func TestPermanentRuleNeverHeals(t *testing.T) {
	f, _ := newTestFS(t, 7)
	rule := f.AddRule(Rule{Ops: []Op{OpCreate}})
	for i := 0; i < 10; i++ {
		if _, err := f.Create("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("create %d = %v, want ErrInjected", i, err)
		}
	}
	if rule.Healed() {
		t.Fatal("permanent rule reported healed")
	}
}
