// Package bgpool provides a priority-ordered token pool shared by the
// background (flush/compaction) workers of several engine shards.
//
// Each shard still runs its own worker goroutines — they know their
// shard's state and hold its locks — but a worker must acquire a pool
// token before executing a job, so total background concurrency across
// the whole sharded store is bounded by the pool size. When a token
// frees up it goes to the highest-priority waiter, which lets the
// sharded layer schedule across shards by L0 pressure: a shard with a
// full L0 (stall risk) outranks a shard doing routine leveling, and
// flushes outrank compactions (a stuck flush blocks that shard's
// writes entirely).
//
// The pool is built on clock.Mutex/Cond so waiters park correctly
// under both the real and the simulated clock (same pattern as
// clock.Semaphore).
package bgpool

import "xpointdb/internal/clock"

// Pool is a priority token pool. The zero value is not usable; create
// one with New.
type Pool struct {
	m     clock.Mutex
	c     clock.Cond
	slots int
	avail int

	// waiters maps ticket → priority for processes blocked in Acquire.
	// Ties break by ticket order (FIFO) so equal-priority shards make
	// progress fairly.
	waiters map[uint64]float64
	next    uint64

	grants int64
}

// New returns a pool with n tokens on clk.
func New(clk clock.Clock, n int) *Pool {
	if n <= 0 {
		panic("bgpool: pool size must be positive")
	}
	m := clk.NewMutex()
	return &Pool{m: m, c: clk.NewCond(m), slots: n, avail: n, waiters: make(map[uint64]float64)}
}

// Acquire takes one token, blocking until one is available and no
// higher-priority waiter is queued. Higher prio wins; ties go to the
// earlier arrival.
func (p *Pool) Acquire(prio float64) {
	p.m.Lock()
	id := p.next
	p.next++
	p.waiters[id] = prio
	for !(p.avail > 0 && p.topLocked() == id) {
		p.c.Wait()
	}
	delete(p.waiters, id)
	p.avail--
	p.grants++
	if p.avail > 0 && len(p.waiters) > 0 {
		// More tokens remain; let the next-ranked waiter re-check.
		p.c.Broadcast()
	}
	p.m.Unlock()
}

// Release returns one token and wakes the waiters so the best-ranked
// one can claim it.
func (p *Pool) Release() {
	p.m.Lock()
	p.avail++
	if p.avail > p.slots {
		p.m.Unlock()
		panic("bgpool: Release without Acquire")
	}
	if len(p.waiters) > 0 {
		p.c.Broadcast()
	}
	p.m.Unlock()
}

// topLocked returns the ticket of the best-ranked waiter: highest
// priority, earliest ticket on ties. Caller holds p.m with at least
// one waiter present.
func (p *Pool) topLocked() uint64 {
	var bestID uint64
	bestPrio := 0.0
	first := true
	for id, prio := range p.waiters {
		if first || prio > bestPrio || (prio == bestPrio && id < bestID) {
			bestID, bestPrio, first = id, prio, false
		}
	}
	return bestID
}

// Size reports the pool's token count.
func (p *Pool) Size() int {
	p.m.Lock()
	defer p.m.Unlock()
	return p.slots
}

// Stats reports instantaneous and cumulative pool state: tokens
// currently held, processes blocked in Acquire, and total grants.
func (p *Pool) Stats() (busy, waiting int, grants int64) {
	p.m.Lock()
	defer p.m.Unlock()
	return p.slots - p.avail, len(p.waiters), p.grants
}
