// Package bgpool provides a priority-ordered token pool shared by the
// background (flush/compaction) workers of several engine shards.
//
// Each shard still runs its own worker goroutines — they know their
// shard's state and hold its locks — but a worker must acquire a pool
// token before executing a job, so total background concurrency across
// the whole sharded store is bounded by the pool size. When a token
// frees up it goes to the highest-priority waiter, which lets the
// sharded layer schedule across shards by L0 pressure: a shard with a
// full L0 (stall risk) outranks a shard doing routine leveling, and
// flushes outrank compactions (a stuck flush blocks that shard's
// writes entirely).
//
// A job that can use extra parallelism (a K-way sub-compaction fan-out)
// holds one blocking-acquired token and draws up to K−1 more with
// TryAcquireN, which never blocks and never takes a token away from a
// strictly-higher-priority waiter — so fanning a compaction out can
// soak up idle slots but can never starve a queued flush.
//
// The pool is built on clock.Mutex/Cond so waiters park correctly
// under both the real and the simulated clock (same pattern as
// clock.Semaphore).
package bgpool

import "xpointdb/internal/clock"

// waiter is one process blocked in Acquire.
type waiter struct {
	prio float64
	tag  int
}

// Pool is a priority token pool. The zero value is not usable; create
// one with New.
type Pool struct {
	m     clock.Mutex
	c     clock.Cond
	slots int
	avail int

	// waiters maps ticket → waiter for processes blocked in Acquire.
	// Ties break by ticket order (FIFO) so equal-priority shards make
	// progress fairly.
	waiters map[uint64]waiter
	next    uint64

	grants int64
	// tagGrants attributes grants (blocking and try) to the caller's
	// tag — the sharded layer passes the shard index, making per-shard
	// scheduling wins observable.
	tagGrants map[int]int64
}

// New returns a pool with n tokens on clk.
func New(clk clock.Clock, n int) *Pool {
	if n <= 0 {
		panic("bgpool: pool size must be positive")
	}
	m := clk.NewMutex()
	return &Pool{
		m: m, c: clk.NewCond(m), slots: n, avail: n,
		waiters:   make(map[uint64]waiter),
		tagGrants: make(map[int]int64),
	}
}

// Acquire takes one token, blocking until one is available and no
// higher-priority waiter is queued. Higher prio wins; ties go to the
// earlier arrival. Grants are attributed to tag 0.
func (p *Pool) Acquire(prio float64) { p.AcquireTag(prio, 0) }

// AcquireTag is Acquire with the grant attributed to tag (shard index
// in a sharded store).
func (p *Pool) AcquireTag(prio float64, tag int) {
	p.m.Lock()
	id := p.next
	p.next++
	p.waiters[id] = waiter{prio: prio, tag: tag}
	for !(p.avail > 0 && p.topLocked() == id) {
		p.c.Wait()
	}
	delete(p.waiters, id)
	p.avail--
	p.grants++
	p.tagGrants[tag]++
	if p.avail > 0 && len(p.waiters) > 0 {
		// More tokens remain; let the next-ranked waiter re-check.
		p.c.Broadcast()
	}
	p.m.Unlock()
}

// TryAcquireN takes up to n extra tokens without blocking and returns
// how many it got (0..n). A token is only taken while one is free AND
// no queued waiter outranks prio — a waiting flush (strictly higher
// priority) always keeps its claim on the next free token, so fan-out
// can use idle capacity but never starve the queue. Equal-priority
// waiters do not block the draw: the caller already holds a token for
// this job, and finishing it sooner returns all tokens earlier.
func (p *Pool) TryAcquireN(prio float64, n, tag int) int {
	if n <= 0 {
		return 0
	}
	p.m.Lock()
	defer p.m.Unlock()
	for _, w := range p.waiters {
		if w.prio > prio {
			return 0
		}
	}
	got := n
	if got > p.avail {
		got = p.avail
	}
	p.avail -= got
	p.grants += int64(got)
	p.tagGrants[tag] += int64(got)
	return got
}

// Release returns one token and wakes the waiters so the best-ranked
// one can claim it.
func (p *Pool) Release() { p.ReleaseN(1) }

// ReleaseN returns n tokens at once (the fan-out extras of one job).
func (p *Pool) ReleaseN(n int) {
	if n <= 0 {
		return
	}
	p.m.Lock()
	p.avail += n
	if p.avail > p.slots {
		p.m.Unlock()
		panic("bgpool: Release without Acquire")
	}
	if len(p.waiters) > 0 {
		p.c.Broadcast()
	}
	p.m.Unlock()
}

// topLocked returns the ticket of the best-ranked waiter: highest
// priority, earliest ticket on ties. Caller holds p.m with at least
// one waiter present.
func (p *Pool) topLocked() uint64 {
	var bestID uint64
	bestPrio := 0.0
	first := true
	for id, w := range p.waiters {
		if first || w.prio > bestPrio || (w.prio == bestPrio && id < bestID) {
			bestID, bestPrio, first = id, w.prio, false
		}
	}
	return bestID
}

// Size reports the pool's token count.
func (p *Pool) Size() int {
	p.m.Lock()
	defer p.m.Unlock()
	return p.slots
}

// Stats reports instantaneous and cumulative pool state: tokens
// currently held, processes blocked in Acquire, and total grants.
func (p *Pool) Stats() (busy, waiting int, grants int64) {
	p.m.Lock()
	defer p.m.Unlock()
	return p.slots - p.avail, len(p.waiters), p.grants
}

// TagStats reports one tag's slice of the pool: processes currently
// blocked in Acquire under the tag, and cumulative grants to it.
func (p *Pool) TagStats(tag int) (waiting int, grants int64) {
	p.m.Lock()
	defer p.m.Unlock()
	for _, w := range p.waiters {
		if w.tag == tag {
			waiting++
		}
	}
	return waiting, p.tagGrants[tag]
}
