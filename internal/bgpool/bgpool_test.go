package bgpool

import (
	"sync"
	"testing"
	"time"

	"xpointdb/internal/clock"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := New(clock.Real{}, 2)
	var mu sync.Mutex
	cur, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Acquire(1)
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			p.Release()
		}()
	}
	wg.Wait()
	if peak > 2 {
		t.Fatalf("peak concurrency %d, want <= 2", peak)
	}
	busy, waiting, grants := p.Stats()
	if busy != 0 || waiting != 0 {
		t.Fatalf("pool not drained: busy=%d waiting=%d", busy, waiting)
	}
	if grants != 16 {
		t.Fatalf("grants = %d, want 16", grants)
	}
}

// TestPoolPriorityOrder parks several waiters behind a held token and
// checks that release order follows priority, not arrival order.
func TestPoolPriorityOrder(t *testing.T) {
	p := New(clock.Real{}, 1)
	p.Acquire(0) // hold the only token

	var mu sync.Mutex
	var order []float64
	prios := []float64{1, 5, 3, 4, 2}
	var wg sync.WaitGroup
	for i, prio := range prios {
		wg.Add(1)
		go func(prio float64) {
			defer wg.Done()
			p.Acquire(prio)
			mu.Lock()
			order = append(order, prio)
			mu.Unlock()
			p.Release()
		}(prio)
		// Let each waiter park before the next arrives so arrival
		// order is deterministic.
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, waiting, _ := p.Stats()
			if waiting == i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never parked (waiting=%d)", i, waiting)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// All five parked; release the held token and let them drain.
	_, waiting, _ := p.Stats()
	if waiting != 5 {
		t.Fatalf("waiting = %d, want 5", waiting)
	}
	p.Release()
	wg.Wait()
	want := []float64{5, 4, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("release order %v, want %v", order, want)
		}
	}
}
