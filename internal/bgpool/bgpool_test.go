package bgpool

import (
	"sync"
	"testing"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/sim"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	p := New(clock.Real{}, 2)
	var mu sync.Mutex
	cur, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Acquire(1)
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			p.Release()
		}()
	}
	wg.Wait()
	if peak > 2 {
		t.Fatalf("peak concurrency %d, want <= 2", peak)
	}
	busy, waiting, grants := p.Stats()
	if busy != 0 || waiting != 0 {
		t.Fatalf("pool not drained: busy=%d waiting=%d", busy, waiting)
	}
	if grants != 16 {
		t.Fatalf("grants = %d, want 16", grants)
	}
}

// parkWaiters spawns one goroutine per priority, making sure each has
// parked in Acquire before the next arrives (so ticket order matches
// the slice order), and returns a drain-order recorder.
func parkWaiters(t *testing.T, p *Pool, prios []float64) (order *[]float64, wg *sync.WaitGroup) {
	t.Helper()
	var mu sync.Mutex
	order = new([]float64)
	wg = new(sync.WaitGroup)
	for i, prio := range prios {
		wg.Add(1)
		go func(prio float64) {
			defer wg.Done()
			p.Acquire(prio)
			mu.Lock()
			*order = append(*order, prio)
			mu.Unlock()
			p.Release()
		}(prio)
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, waiting, _ := p.Stats()
			if waiting == i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never parked (waiting=%d)", i, waiting)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	return order, wg
}

// TestPoolPriorityOrder parks several waiters behind a held token and
// checks that release order follows priority, not arrival order.
func TestPoolPriorityOrder(t *testing.T) {
	p := New(clock.Real{}, 1)
	p.Acquire(0) // hold the only token

	var mu sync.Mutex
	var order []float64
	prios := []float64{1, 5, 3, 4, 2}
	var wg sync.WaitGroup
	for i, prio := range prios {
		wg.Add(1)
		go func(prio float64) {
			defer wg.Done()
			p.Acquire(prio)
			mu.Lock()
			order = append(order, prio)
			mu.Unlock()
			p.Release()
		}(prio)
		// Let each waiter park before the next arrives so arrival
		// order is deterministic.
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, waiting, _ := p.Stats()
			if waiting == i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never parked (waiting=%d)", i, waiting)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// All five parked; release the held token and let them drain.
	_, waiting, _ := p.Stats()
	if waiting != 5 {
		t.Fatalf("waiting = %d, want 5", waiting)
	}
	p.Release()
	wg.Wait()
	want := []float64{5, 4, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("release order %v, want %v", order, want)
		}
	}
}

// TestPoolFIFOTieBreak checks that equal-priority waiters drain in
// arrival order (ticket FIFO), so no shard starves under a tie.
func TestPoolFIFOTieBreak(t *testing.T) {
	p := New(clock.Real{}, 1)
	p.Acquire(0) // hold the only token

	// Mixed: the two 5s must drain in arrival order relative to each
	// other, likewise the three 2s.
	order, wg := parkWaiters(t, p, []float64{2, 5, 2, 5, 2})
	p.Release()
	wg.Wait()

	want := []float64{5, 5, 2, 2, 2}
	for i := range want {
		if (*order)[i] != want[i] {
			t.Fatalf("drain order %v, want %v", *order, want)
		}
	}
}

// TestTryAcquireN covers the non-blocking fan-out path: partial
// grants, refusal when a strictly-higher-priority waiter is parked,
// and indifference to equal-priority waiters.
func TestTryAcquireN(t *testing.T) {
	p := New(clock.Real{}, 4)

	// Free pool: asking for more than available grants what's there.
	if got := p.TryAcquireN(1, 6, 7); got != 4 {
		t.Fatalf("TryAcquireN on free pool = %d, want 4", got)
	}
	busy, _, _ := p.Stats()
	if busy != 4 {
		t.Fatalf("busy = %d after taking all tokens, want 4", busy)
	}

	// A waiter with strictly higher priority parks; try-acquire at the
	// lower priority must get nothing even after tokens free up.
	done := make(chan struct{})
	go func() {
		p.Acquire(10)
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, waiting, _ := p.Stats()
		if waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("high-priority waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	p.ReleaseN(2) // waiter takes one, one token left over
	<-done
	busy, waiting, _ := p.Stats()
	if busy != 3 || waiting != 0 {
		t.Fatalf("busy=%d waiting=%d after waiter drained, want 3/0", busy, waiting)
	}
	// (waiter still holds its token; it never releases in this test.)

	// An equal-priority phantom: TryAcquireN(prio >= top waiter prio)
	// may take the spare token.
	if got := p.TryAcquireN(10, 1, 7); got != 1 {
		t.Fatalf("TryAcquireN with no higher waiter = %d, want 1", got)
	}
	// Pool is full again; a strictly higher waiter parks.
	blocked := make(chan struct{})
	go func() {
		p.Acquire(20)
		close(blocked)
	}()
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, w, _ := p.Stats()
		if w == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	p.ReleaseN(1)
	// The freed token must go to the parked 20, not a try at 15.
	if got := p.TryAcquireN(15, 1, 7); got != 0 {
		t.Fatalf("TryAcquireN below parked waiter = %d, want 0", got)
	}
	<-blocked
	p.ReleaseN(4) // 10-holder's token + try's token + 20's token + earlier spare... drain all
	busy, waiting, _ = p.Stats()
	if busy != 0 || waiting != 0 {
		t.Fatalf("pool not drained: busy=%d waiting=%d", busy, waiting)
	}
}

// TestTagStats checks grant attribution per tag for both the blocking
// and the try paths.
func TestTagStats(t *testing.T) {
	p := New(clock.Real{}, 4)
	p.AcquireTag(1, 3)
	p.AcquireTag(1, 3)
	if n := p.TryAcquireN(1, 2, 5); n != 2 {
		t.Fatalf("TryAcquireN = %d, want 2", n)
	}
	if _, g := p.TagStats(3); g != 2 {
		t.Fatalf("tag 3 grants = %d, want 2", g)
	}
	if _, g := p.TagStats(5); g != 2 {
		t.Fatalf("tag 5 grants = %d, want 2", g)
	}
	if _, g := p.TagStats(9); g != 0 {
		t.Fatalf("tag 9 grants = %d, want 0", g)
	}
	p.ReleaseN(4)
	_, _, grants := p.Stats()
	if grants != 4 {
		t.Fatalf("total grants = %d, want 4", grants)
	}
}

// TestReleaseNOverflowPanics pins the bookkeeping guard: returning more
// tokens than were taken is a caller bug and must fail loudly.
func TestReleaseNOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ReleaseN past pool size did not panic")
		}
	}()
	p := New(clock.Real{}, 2)
	p.ReleaseN(1)
}

// TestPoolSimClock runs the priority machinery under the simulated
// kernel: waiters park in virtual time, so the drain order is fully
// deterministic (no real-time polling needed).
func TestPoolSimClock(t *testing.T) {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	var order []float64
	var mu sync.Mutex
	k.Run(func() {
		p := New(k, 1)
		p.Acquire(0) // hold the only token
		prios := []float64{1, 5, 3}
		for i, prio := range prios {
			prio := prio
			delay := time.Duration(i+1) * time.Millisecond
			k.Go("waiter", func() {
				k.Sleep(delay) // staggered arrivals in virtual time
				p.Acquire(prio)
				mu.Lock()
				order = append(order, prio)
				mu.Unlock()
				p.Release()
			})
		}
		// All three are parked once virtual time passes their arrivals.
		k.Sleep(10 * time.Millisecond)
		if _, waiting, _ := p.Stats(); waiting != 3 {
			t.Errorf("waiting = %d, want 3", waiting)
		}
		p.Release()
		// Drain: each waiter releases as soon as it records its slot.
		for {
			busy, waiting, _ := p.Stats()
			if busy == 0 && waiting == 0 {
				break
			}
			k.Sleep(time.Millisecond)
		}
	})
	want := []float64{5, 3, 1}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("drained %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order %v, want %v", order, want)
		}
	}
}
