package engine

import (
	"errors"
	"fmt"
	"syscall"

	"xpointdb/internal/events"
	"xpointdb/internal/vfs"
)

// This file is the engine's error-severity layer, modeled on RocksDB's
// ErrorHandler: every background failure (WAL append/sync, WAL
// rotation, MANIFEST append/install, flush, compaction) is classified
// into a Severity that decides what the failure costs — a soft error
// keeps the DB writable while the failing work retries in place, a
// hard error latches writes but is automatically recoverable, a
// fatal/unrecoverable error latches until the process reopens the DB.
// The recovery side lives in recovery.go.

// Severity ranks a background error by how much of the DB it takes
// down and whether the engine can heal without a reopen.
type Severity int

const (
	// SeverityNone is the healthy state (no error).
	SeverityNone Severity = iota
	// SeveritySoft errors leave the DB writable: the failing
	// background operation (flush, compaction, WAL-rotation create)
	// retries in place and nothing acknowledged is at risk. Writes
	// may briefly stall if the failure backs up the immutable queue.
	SeveritySoft
	// SeverityHard errors latch writes (fail-fast) because the
	// durability contract cannot be honored, but reads keep working
	// and the resource is retryable: the recovery worker re-probes it
	// and clears the latch without a reopen.
	SeverityHard
	// SeverityFatal errors latch writes with no automatic recovery;
	// in-memory and on-disk state may have diverged, so only a reopen
	// (which replays durable state) is safe.
	SeverityFatal
	// SeverityUnrecoverable marks corruption-class failures: even a
	// reopen may not restore the affected data.
	SeverityUnrecoverable
)

// String returns the RocksDB-style severity name.
func (s Severity) String() string {
	switch s {
	case SeverityNone:
		return "none"
	case SeveritySoft:
		return "soft"
	case SeverityHard:
		return "hard"
	case SeverityFatal:
		return "fatal"
	case SeverityUnrecoverable:
		return "unrecoverable"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Recoverable reports whether the recovery worker can heal this
// severity without a reopen.
func (s Severity) Recoverable() bool {
	return s == SeveritySoft || s == SeverityHard
}

// Health is the DB's coarse condition, derived from the latched error
// state; see DB.Health.
type Health int

const (
	// Healthy: no background error, reads and writes served.
	Healthy Health = iota
	// Degraded: writable, but a soft error is being retried or a
	// recovery attempt is in flight.
	Degraded
	// ReadOnly: a hard error is latched — writes fail fast, reads are
	// served, recovery (automatic or Resume) may clear it.
	ReadOnly
	// Fatal: a fatal/unrecoverable error is latched; only a reopen
	// helps.
	Fatal
)

// String returns the health name used in events and stats reports.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case ReadOnly:
		return "read-only"
	case Fatal:
		return "fatal"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// Severity sentinels for errors.Is: a latched *BackgroundError matches
// ErrBackground always, and exactly one of these by its severity.
var (
	// ErrSoftError matches background errors classified SeveritySoft.
	ErrSoftError = errors.New("engine: soft background error")
	// ErrHardError matches background errors classified SeverityHard.
	ErrHardError = errors.New("engine: hard background error")
	// ErrFatalError matches background errors classified
	// SeverityFatal or SeverityUnrecoverable.
	ErrFatalError = errors.New("engine: fatal background error")
)

// BackgroundError is a classified background failure. The latched
// error returned by writes (and BackgroundError()) is one of these;
// errors.Is matches ErrBackground, the severity sentinels above, and
// the underlying cause chain.
type BackgroundError struct {
	// Op names the failing path (see the op* constants).
	Op string
	// Severity is the classification from the op→severity table.
	Severity Severity
	// Err is the underlying failure.
	Err error
}

// Error renders op, severity and cause.
func (e *BackgroundError) Error() string {
	return fmt.Sprintf("engine: background error (%s, %s): %v", e.Op, e.Severity, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *BackgroundError) Unwrap() error { return e.Err }

// Is matches the ErrBackground umbrella and the severity sentinels.
func (e *BackgroundError) Is(target error) bool {
	switch target {
	case ErrBackground:
		return true
	case ErrSoftError:
		return e.Severity == SeveritySoft
	case ErrHardError:
		return e.Severity == SeverityHard
	case ErrFatalError:
		return e.Severity >= SeverityFatal
	}
	return false
}

// The background operation names used for classification, events and
// logs. They predate this layer (PR 2's latch used the same strings),
// so the event stream stays stable.
const (
	opWALAppend       = "wal-append"
	opWALSync         = "wal-sync"
	opWALRotateSync   = "wal-rotate-sync"
	opWALRotateCreate = "wal-rotate-create"
	opManifestAppend  = "manifest-append"
	opManifestInstall = "manifest-install"
	opFlush           = "flush"
	opCompaction      = "compaction"
	opCorruption      = "corruption"
	opSpaceStall      = "space-stall"
)

// ErrMaxSpaceReached is latched by the space-stall watchdog when the
// space-budget ladder has held writers stopped for SpaceStallTimeout
// with no transition: the budget is exhausted and no background job can
// reserve the headroom to reclaim anything, so waiting longer cannot
// help (RocksDB's "Max allowed space was reached"). It wraps
// vfs.ErrNoSpace so it classifies and recovers exactly like a device
// ENOSPC: hard latch, wait-for-space recovery, healed by a budget raise
// or a delete.
var ErrMaxSpaceReached = fmt.Errorf("engine: max allowed space reached: %w", vfs.ErrNoSpace)

// classifySeverity is the op→severity table. The reasoning per row:
//
//	wal-append        hard   a failed append may leave a torn record
//	                         that ends replay early; the log is
//	                         poisoned but a fresh WAL + memtable flush
//	                         restores service.
//	wal-sync          hard   acknowledged-unsynced bytes may be lost;
//	                         same recovery as wal-append.
//	wal-rotate-sync   hard   the outgoing log's acked tail may not be
//	                         durable; same recovery.
//	wal-rotate-create soft   the old WAL is intact and still open;
//	                         writes continue and the rotation retries.
//	manifest-append   hard   the MANIFEST tail may hold a torn edit;
//	                         rolling to a fresh MANIFEST (full
//	                         snapshot) heals it.
//	manifest-install  fatal  the durable append succeeded but the
//	                         in-memory apply failed: disk and memory
//	                         have diverged; only replaying the disk
//	                         (reopen) is safe.
//	flush             soft   the immutable stays queued and the flush
//	                         worker retries; nothing acked is lost.
//	                         EXCEPT disk-full: hard — see below.
//	compaction        soft   inputs remain live; the picker retries.
//	                         EXCEPT disk-full: hard — see below.
//	space-stall       hard   the space-stall watchdog's latch: the
//	                         budget ladder held writers stopped past
//	                         SpaceStallTimeout with nothing reclaimable
//	                         in flight. Always ErrMaxSpaceReached
//	                         (disk-full class), so it recovers via the
//	                         wait-for-space path.
//	corruption        hard   a checksum failure in a live SST: writes
//	                         latch while the recovery worker
//	                         quarantines the file and repairs by
//	                         re-compaction (or declares precise data
//	                         loss); reads of undamaged ranges keep
//	                         working throughout.
//
// Disk-full (ENOSPC) on the hard rows stays hard: space can be freed,
// and the recovery worker's backoff keeps probing until it is. On the
// flush and compaction rows disk-full ESCALATES to hard (RocksDB's
// ErrorHandler does the same for SstFileManager-managed ENOSPC):
// retrying in place cannot succeed until space frees, and while the
// retry loop spins the write path stalls on the full immutable queue
// or L0 with no error to fail fast on — an unbounded invisible hang.
// Latching hands the situation to the recovery worker's wait-for-space
// path: writers fail fast with ErrBackground, reads keep serving, and
// when the probe finds headroom the queued immutables drain and the
// latch clears on the same handle. (The rotate-create row stays soft
// even when disk-full: the old WAL is intact and the NEXT write retries
// the rotation synchronously, so the writer already gets an error.)
// Unknown ops classify as unrecoverable — the conservative latch.
func classifySeverity(op string, err error) Severity {
	switch op {
	case opFlush, opCompaction:
		if isDiskFull(err) {
			return SeverityHard
		}
		return SeveritySoft
	case opWALRotateCreate:
		return SeveritySoft
	case opWALAppend, opWALSync, opWALRotateSync, opManifestAppend, opCorruption, opSpaceStall:
		return SeverityHard
	case opManifestInstall:
		return SeverityFatal
	}
	return SeverityUnrecoverable
}

// isDiskFull reports an out-of-space failure: a real ENOSPC from the
// OS vfs or an injected vfs.ErrNoSpace (the faultfs capacity quota).
// Both classify identically, so the wait-for-space recovery path is
// exercised by tests exactly as a full device would drive it.
func isDiskFull(err error) bool {
	return errors.Is(err, vfs.ErrNoSpace) || errors.Is(err, syscall.ENOSPC)
}

// recoveryCategory groups ops by which repair recoverOnce applies.
type recoveryCategory int

const (
	catNone       recoveryCategory = iota
	catWAL                         // swap in a fresh WAL, flush the memtables it covered
	catManifest                    // roll the MANIFEST to a fresh snapshot file
	catCorruption                  // quarantine the damaged SST, repair or declare loss
	catSpace                       // wait for disk space, then drain the immutable queue
)

func categoryOf(op string) recoveryCategory {
	switch op {
	case opWALAppend, opWALSync, opWALRotateSync:
		return catWAL
	case opManifestAppend:
		return catManifest
	case opCorruption:
		return catCorruption
	case opFlush, opCompaction, opSpaceStall:
		// Only disk-full flush/compaction failures latch (everything
		// else on those ops is soft and never reaches recovery).
		// space-stall is the watchdog's budget-exhaustion latch.
		return catSpace
	}
	return catNone
}

// healthLocked derives the DB's condition from the error-handler
// state. Callers hold db.mu.
func (db *DB) healthLocked() Health {
	switch {
	case db.bgErr != nil && db.bgSeverity >= SeverityFatal:
		return Fatal
	case db.bgErr != nil:
		return ReadOnly
	case len(db.softErrs) > 0 || db.recovering:
		return Degraded
	default:
		return Healthy
	}
}

// Health returns the DB's current condition: Healthy, Degraded (soft
// error retrying or recovery in flight), ReadOnly (hard error latched,
// reads still served) or Fatal (reopen required).
func (db *DB) Health() Health {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.healthLocked()
}

// setBackgroundErrorLocked classifies and records err for op. Soft
// severities do not latch: the DB stays writable (health Degraded)
// while the failing operation retries in place. Hard and worse latch
// db.bgErr — writes fail fast — and, for recoverable severities, the
// recovery worker engages. First latch wins; a later, strictly more
// severe failure escalates the severity in place. Callers hold db.mu.
func (db *DB) setBackgroundErrorLocked(op string, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, ErrBackground) {
		// Already a latched error echoing back through a caller
		// (e.g. a flush failing because commitEdit saw the latch);
		// classifying it again would double-count.
		return
	}
	sev := classifySeverity(op, err)
	if isDiskFull(err) {
		db.metrics.EnospcErrors.Add(1)
	}
	if sev == SeveritySoft {
		db.noteSoftErrorLocked(op, err)
		return
	}
	if db.bgErr != nil {
		if sev > db.bgSeverity {
			// Escalate (e.g. manifest-install failing during
			// recovery from a wal-sync latch).
			db.bgErr = &BackgroundError{Op: op, Severity: sev, Err: err}
			db.bgSeverity = sev
			db.opts.logf("background error escalated (%s, %s): %v", op, sev, err)
			db.emitBackgroundError(op, sev, err)
		}
		return
	}
	db.bgErr = &BackgroundError{Op: op, Severity: sev, Err: err}
	db.bgSeverity = sev
	db.metrics.HardErrors.Add(1)
	db.opts.logf("background error latched (%s, %s): %v", op, sev, err)
	db.emitBackgroundError(op, sev, err)
	// Wake writers and workers so they observe the latch, and the
	// recovery worker so it engages.
	db.bgCond.Broadcast()
	db.recoveryCond.Broadcast()
}

// relatchLocked replaces the latched error's classification during a
// recovery attempt: the newest failure names the resource the next
// attempt must repair first (a manifest append failing while
// recovering from a WAL error means the manifest now has the torn
// tail). Severity never decreases. Callers hold db.mu.
func (db *DB) relatchLocked(op string, err error) {
	if err == nil || errors.Is(err, ErrBackground) {
		return
	}
	sev := classifySeverity(op, err)
	if sev < db.bgSeverity {
		sev = db.bgSeverity
	}
	db.bgErr = &BackgroundError{Op: op, Severity: sev, Err: err}
	db.bgSeverity = sev
	db.opts.logf("background error re-latched during recovery (%s, %s): %v", op, sev, err)
	db.emitBackgroundError(op, sev, err)
}

// noteSoftErrorLocked records a retrying-in-place failure. The op's
// entry is cleared by clearSoftErrorLocked when a later attempt
// succeeds; while any entry is live the DB reports Degraded. Callers
// hold db.mu.
func (db *DB) noteSoftErrorLocked(op string, err error) {
	if err == nil || errors.Is(err, ErrBackground) {
		// A latch echo (the op failed because it observed db.bgErr,
		// which may have cleared since): not a new soft failure.
		return
	}
	if op == opWALRotateCreate {
		// No background worker retries a failed WAL pre-create: the
		// outgoing WAL stays open and intact, and the next write
		// retries the rotation synchronously. Record the event but do
		// not hold the DB in Degraded — there is no in-flight retry
		// whose completion could ever clear it if writes stop.
		db.metrics.SoftErrors.Add(1)
		db.opts.logf("soft background error (%s, next write retries): %v", op, err)
		db.emitBackgroundError(op, SeveritySoft, err)
		return
	}
	if db.softErrs == nil {
		db.softErrs = make(map[string]error)
	}
	if _, active := db.softErrs[op]; !active {
		db.metrics.SoftErrors.Add(1)
		db.opts.logf("soft background error (%s, retrying): %v", op, err)
		db.emitBackgroundError(op, SeveritySoft, err)
	}
	db.softErrs[op] = err
}

// clearSoftErrorLocked marks op healthy again. Callers hold db.mu.
func (db *DB) clearSoftErrorLocked(op string) {
	delete(db.softErrs, op)
}

// emitBackgroundError records the moment an error was classified.
func (db *DB) emitBackgroundError(op string, sev Severity, err error) {
	if db.ev == nil {
		return
	}
	db.ev.Emit(events.Event{
		TS:      db.clk.Now(),
		Kind:    events.KindBackgroundError,
		BGError: &events.BGError{Op: op, Error: err.Error(), Severity: sev.String()},
	})
}
