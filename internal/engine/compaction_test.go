package engine

import (
	"math/rand"
	"testing"
	"time"

	"xpointdb/internal/events"
	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
)

// waitForLevel blocks until level holds want files (background
// compaction runs asynchronously after the trigger).
func waitForLevel(t *testing.T, db *DB, level, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for db.NumLevelFiles(level) != want {
		if time.Now().After(deadline) {
			t.Fatalf("L%d never reached %d files:\n%s", level, want, db.DebugLayout())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTrivialMoveZeroIO pins the acceptance criterion for trivial
// moves: a single L0 file with no next-level overlap is re-linked to
// L1 by a pure manifest edit — the data bytes are never read or
// rewritten.
func TestTrivialMoveZeroIO(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.L0CompactionTrigger = 1 // one flushed file immediately triggers
	})
	defer db.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// The single L0 file has nothing below it: the picker must choose a
	// trivial move into L1.
	waitForLevel(t, db, 0, 0)
	waitForLevel(t, db, 1, 1)

	m := db.Metrics()
	if got := m.TrivialMoves.Load(); got == 0 {
		t.Fatalf("TrivialMoves = 0 after L0→L1 move:\n%s", db.DebugLayout())
	}
	if r, w := m.CompactionBytesRead.Load(), m.CompactionBytesWritten.Load(); r != 0 || w != 0 {
		t.Fatalf("trivial move did data I/O: read=%d written=%d", r, w)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d after trivial move: %v", i, err)
		}
	}
}

// TestSubcompactionsCorrectness runs a manual full compaction with the
// K-way fan-out enabled and checks both that the fan-out actually
// happened and that every key survives the multi-range atomic install.
func TestSubcompactionsCorrectness(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.MemtableSize = 16 << 10
		o.TargetFileSize = 16 << 10
		o.BaseLevelBytes = 1 << 30 // background size-compactions stay out
		o.L0CompactionTrigger = 100
		o.MaxSubcompactions = 4
	})
	defer db.Close()

	// Sequential fill: each flushed L0 file covers a distinct key range,
	// giving the splitter distinct file boundaries to cut at.
	const n = 3000
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatalf("CompactRange: %v", err)
	}
	if l0 := db.NumLevelFiles(0); l0 != 0 {
		t.Fatalf("L0 still has %d files:\n%s", l0, db.DebugLayout())
	}
	if got := db.Metrics().Subcompactions.Load(); got < 2 {
		t.Fatalf("Subcompactions = %d, want >= 2 (fan-out never engaged):\n%s",
			got, db.DebugLayout())
	}
	for i := 0; i < n; i++ {
		v, err := db.Get(testKey(i))
		if err != nil {
			t.Fatalf("Get %d after sub-compacted CompactRange: %v", i, err)
		}
		if string(v) != string(testValue(i)) {
			t.Fatalf("Get %d = %q, want %q", i, v, testValue(i))
		}
	}
}

// TestSubcompactionsMatchSingleLane compacts the same dataset with the
// fan-out on and off and checks the resulting trees agree key-for-key
// (including deletes landing inside sub-range interiors).
func TestSubcompactionsMatchSingleLane(t *testing.T) {
	build := func(maxSub int) *DB {
		db, _ := newTestDB(t, func(o *Options) {
			o.MemtableSize = 16 << 10
			o.TargetFileSize = 16 << 10
			o.BaseLevelBytes = 1 << 30
			o.L0CompactionTrigger = 100
			o.MaxSubcompactions = maxSub
		})
		for i := 0; i < 2000; i++ {
			if err := db.Put(testKey(i), testValue(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2000; i += 3 {
			if err := db.Delete(testKey(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.CompactRange(nil, nil); err != nil {
			t.Fatal(err)
		}
		return db
	}
	one := build(1)
	defer one.Close()
	four := build(4)
	defer four.Close()

	for i := 0; i < 2000; i++ {
		v1, err1 := one.Get(testKey(i))
		v4, err4 := four.Get(testKey(i))
		if (err1 == nil) != (err4 == nil) {
			t.Fatalf("key %d: single-lane err=%v, fan-out err=%v", i, err1, err4)
		}
		if err1 == nil && string(v1) != string(v4) {
			t.Fatalf("key %d: single-lane %q, fan-out %q", i, v1, v4)
		}
	}
}

// fileMetaForRange builds a FileMeta spanning [lo, hi] user keys.
func fileMetaForRange(num uint64, lo, hi string) *manifest.FileMeta {
	return &manifest.FileMeta{
		Num:      num,
		Size:     1 << 20,
		Smallest: keys.Make([]byte(lo), 1, keys.KindSet),
		Largest:  keys.Make([]byte(hi), 1, keys.KindSet),
	}
}

// TestSplitSubranges pins the splitter's contract: ranges are disjoint
// and ascending, cuts happen only at participating files' smallest
// keys, every file lands in every range it overlaps, and the range
// count respects MaxSubcompactions.
func TestSplitSubranges(t *testing.T) {
	inputs := []*manifest.FileMeta{
		fileMetaForRange(1, "a", "d"),
		fileMetaForRange(2, "e", "h"),
		fileMetaForRange(3, "i", "l"),
	}
	overlaps := []*manifest.FileMeta{
		fileMetaForRange(4, "a", "f"),
		fileMetaForRange(5, "g", "m"),
	}
	c := &compaction{level: 1, outputLevel: 2, inputs: inputs, overlaps: overlaps}

	for _, maxSub := range []int{1, 2, 4, 8} {
		subs := splitSubranges(c, maxSub)
		if len(subs) == 0 {
			t.Fatalf("maxSub=%d: no subranges", maxSub)
		}
		if len(subs) > maxSub {
			t.Fatalf("maxSub=%d: %d subranges", maxSub, len(subs))
		}
		// First range starts open, last ends open, boundaries chain.
		if subs[0].start != nil || subs[len(subs)-1].end != nil {
			t.Fatalf("maxSub=%d: outer bounds not open: %+v", maxSub, subs)
		}
		seen := map[uint64]int{}
		for i, s := range subs {
			if i > 0 {
				if string(subs[i-1].end) != string(s.start) {
					t.Fatalf("maxSub=%d: gap between ranges %d and %d", maxSub, i-1, i)
				}
			}
			if len(s.inputs) == 0 {
				t.Fatalf("maxSub=%d: empty range %d kept", maxSub, i)
			}
			for _, f := range s.inputs {
				seen[f.Num]++
				// The file must genuinely overlap [start, end).
				if s.end != nil && string(keys.UserKey(f.Smallest)) >= string(s.end) {
					t.Fatalf("maxSub=%d: file %d below range %d", maxSub, f.Num, i)
				}
				if s.start != nil && string(keys.UserKey(f.Largest)) < string(s.start) {
					t.Fatalf("maxSub=%d: file %d above range %d", maxSub, f.Num, i)
				}
			}
		}
		// Every participating file appears somewhere.
		for _, f := range append(append([]*manifest.FileMeta{}, inputs...), overlaps...) {
			if seen[f.Num] == 0 {
				t.Fatalf("maxSub=%d: file %d in no range", maxSub, f.Num)
			}
		}
		// maxSub=1 degenerates to the single full-range pass.
		if maxSub == 1 && len(subs) != 1 {
			t.Fatalf("maxSub=1 produced %d ranges", len(subs))
		}
	}
}

// TestSplitSubrangesKeyDisjointness feeds every sub-range boundary a
// probe key and checks exactly one range claims each user key — the
// invariant that keeps all versions of a key in one merge loop.
func TestSplitSubrangesKeyDisjointness(t *testing.T) {
	c := &compaction{
		level:       1,
		outputLevel: 2,
		inputs: []*manifest.FileMeta{
			fileMetaForRange(1, "b", "f"),
			fileMetaForRange(2, "g", "k"),
			fileMetaForRange(3, "l", "p"),
			fileMetaForRange(4, "q", "v"),
		},
	}
	subs := splitSubranges(c, 4)
	if len(subs) < 2 {
		t.Fatalf("expected a real split, got %d ranges", len(subs))
	}
	for _, probe := range []string{"a", "b", "g", "h", "l", "q", "z"} {
		claims := 0
		for _, s := range subs {
			if s.start != nil && probe < string(s.start) {
				continue
			}
			if s.end != nil && probe >= string(s.end) {
				continue
			}
			claims++
		}
		if claims != 1 {
			t.Fatalf("key %q claimed by %d ranges, want exactly 1", probe, claims)
		}
	}
}

// TestPickerCursorSurvivesFileChange pins the round-robin fix: the
// cursor is a key, not an index, so it keeps rotating correctly while
// the level's file set changes underneath it.
func TestPickerCursorSurvivesFileChange(t *testing.T) {
	opts := DefaultOptions(nil)
	p := newCompactionPicker(&opts)

	files := []*manifest.FileMeta{
		fileMetaForRange(1, "a", "c"),
		fileMetaForRange(2, "d", "f"),
		fileMetaForRange(3, "g", "i"),
	}
	v := &manifest.Version{}
	v.Files[1] = files

	if got := p.nextAtLevel(v, 1); got != files[0] {
		t.Fatalf("fresh cursor picked file %d, want 1", got.Num)
	}
	p.noteCompacted(&compaction{level: 1, inputs: files[0:1]})
	if got := p.nextAtLevel(v, 1); got != files[1] {
		t.Fatalf("after compacting file 1, picked %d, want 2", got.Num)
	}

	// File 2 disappears (compacted away); the key cursor still lands on
	// the next file past it instead of indexing a stale slot.
	p.noteCompacted(&compaction{level: 1, inputs: files[1:2]})
	v2 := &manifest.Version{}
	v2.Files[1] = []*manifest.FileMeta{files[0], files[2]}
	if got := p.nextAtLevel(v2, 1); got != files[2] {
		t.Fatalf("after file 2 vanished, picked %d, want 3", got.Num)
	}

	// Past the end: wraps to the first file.
	p.noteCompacted(&compaction{level: 1, inputs: files[2:3]})
	if got := p.nextAtLevel(v2, 1); got != files[0] {
		t.Fatalf("wrap-around picked %d, want 1", got.Num)
	}
}

// TestCompactionDeferredEvent squeezes the space budget so a triggered
// L0 compaction cannot reserve its projected output: the job must
// defer (never fail), emit a compaction_deferred event, and complete
// once the operator grows the budget.
func TestCompactionDeferredEvent(t *testing.T) {
	var buf events.Buffer
	db, _ := newTestDB(t, func(o *Options) {
		// The default 64 KiB memtable holds a whole 100-key batch, so
		// each Flush lands exactly one L0 file and the trigger fires
		// only at the third — after the squeeze below is in place.
		o.BaseLevelBytes = 1 << 30
		o.L0CompactionTrigger = 3
		o.MaxAllowedSpace = 1 << 30
		o.EventListener = &buf
		o.EventSinkQueue = -1
	})
	defer db.Close()

	// Incompressible values keep the flushed SST sizes close to the
	// memtable bytes, so the budget arithmetic below holds.
	rng := rand.New(rand.NewSource(42))
	val := func() []byte {
		v := make([]byte, 100)
		rng.Read(v)
		return v
	}
	fill := func(base int) {
		for i := 0; i < 100; i++ {
			if err := db.Put(testKey(base+i), val()); err != nil {
				t.Fatal(err)
			}
		}
	}
	fill(0)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	fill(100)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Third batch: leave the flush just enough headroom, so the flush
	// lands its L0 file but the compaction it triggers (projected ≈ the
	// three files' bytes) overruns and defers.
	fill(200)
	sm := db.SpaceManager()
	if sm == nil {
		t.Fatal("SpaceManager() = nil with MaxAllowedSpace set")
	}
	// Settle pending obsolete-file deletion first: a stale WAL still
	// counted in Used() here would be freed later and hand the
	// compaction exactly the headroom this squeeze is denying it.
	db.deleteObsoleteFiles()
	sm.SetBudget(sm.Used() + sm.Reserved() + 20<<10)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && db.Metrics().SpaceDeferrals.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if db.Metrics().SpaceDeferrals.Load() == 0 {
		t.Fatalf("compaction over budget did not defer:\n%s", db.DebugLayout())
	}
	db.SyncEvents()
	found := false
	for _, e := range buf.Events() {
		if e.Kind == events.KindCompactionDeferred {
			found = true
			if e.Compaction == nil || e.Compaction.BytesRead <= 0 {
				t.Fatalf("deferred event missing projected bytes: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("no compaction_deferred event emitted")
	}

	// Budget grows; the deferred job resumes and drains L0.
	sm.SetBudget(1 << 30)
	waitForLevel(t, db, 0, 0)
	if db.Metrics().Compactions.Load() == 0 {
		t.Fatal("compaction never completed after budget raise")
	}
}
