package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// TestRandomOpsAgainstModel applies a long random sequence of puts,
// deletes, batched writes, flush-inducing fills, and reopens, checking
// the DB against an in-memory reference model after each phase. The DB
// runs on a faultfs so crash phases can exercise progressively nastier
// crash images: clean (synced data only), partial-sync (a random
// prefix of unsynced data survives), and torn (surviving unsynced
// bytes are bit-flipped). With SyncWAL=true every acknowledged write
// is synced, so the model must survive all three modes unchanged.
func TestRandomOpsAgainstModel(t *testing.T) {
	newFFS := func(inner *vfs.MemFS, seed int64) *faultfs.FS {
		t.Helper()
		ffs, err := faultfs.New(inner, seed)
		if err != nil {
			t.Fatalf("faultfs.New: %v", err)
		}
		return ffs
	}
	mem := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	fs := newFFS(mem, 12345)
	opts := DefaultOptions(fs)
	opts.MemtableSize = 32 << 10 // frequent flushes
	opts.TargetFileSize = 32 << 10
	opts.BaseLevelBytes = 64 << 10
	opts.ThrottleMode = throttle.ModeNone
	opts.SyncWAL = true
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(12345))

	checkAll := func(phase string) {
		t.Helper()
		// Point reads for every model key plus some absent keys.
		for k, want := range model {
			v, err := db.Get([]byte(k))
			if err != nil {
				t.Fatalf("%s: Get(%q) = %v\n%s", phase, k, err, db.DebugLayout())
			}
			if string(v) != want {
				t.Fatalf("%s: Get(%q) = %q, want %q", phase, k, v, want)
			}
		}
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("absent-%d", rng.Intn(1000))
			if _, err := db.Get([]byte(k)); err != ErrNotFound {
				t.Fatalf("%s: absent key %q: %v", phase, k, err)
			}
		}
		// Full scan must equal the sorted model.
		var want []string
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		it, err := db.NewIter()
		if err != nil {
			t.Fatalf("%s: NewIter: %v", phase, err)
		}
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if i >= len(want) {
				t.Fatalf("%s: scan has extra key %q", phase, it.Key())
			}
			if string(it.Key()) != want[i] {
				t.Fatalf("%s: scan[%d] = %q, want %q", phase, i, it.Key(), want[i])
			}
			if string(it.Value()) != model[want[i]] {
				t.Fatalf("%s: scan value for %q = %q", phase, it.Key(), it.Value())
			}
			i++
		}
		it.Close()
		if i != len(want) {
			t.Fatalf("%s: scan saw %d keys, model has %d", phase, i, len(want))
		}
	}

	key := func() string { return fmt.Sprintf("key-%04d", rng.Intn(400)) }

	for phase := 0; phase < 6; phase++ {
		for op := 0; op < 800; op++ {
			switch rng.Intn(10) {
			case 0, 1: // delete
				k := key()
				if err := db.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(model, k)
			case 2: // batch of mixed ops
				var b batch.Batch
				n := rng.Intn(10) + 1
				type rec struct {
					k, v string
					del  bool
				}
				var recs []rec
				for j := 0; j < n; j++ {
					k := key()
					if rng.Intn(4) == 0 {
						b.Delete([]byte(k))
						recs = append(recs, rec{k: k, del: true})
					} else {
						v := fmt.Sprintf("batch-%d-%d", phase, op)
						b.Put([]byte(k), []byte(v))
						recs = append(recs, rec{k: k, v: v})
					}
				}
				if err := db.Apply(&b, true); err != nil {
					t.Fatal(err)
				}
				for _, r := range recs {
					if r.del {
						delete(model, r.k)
					} else {
						model[r.k] = r.v
					}
				}
			default: // put
				k := key()
				v := fmt.Sprintf("v-%d-%d-%060d", phase, op, rng.Intn(1000))
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
		}
		checkAll(fmt.Sprintf("phase %d", phase))

		// Every other phase: crash and reopen. Each crash phase uses a
		// harsher materialization mode; acknowledged data is synced
		// (SyncWAL=true), so even torn unsynced bytes must not change
		// what the model observes.
		if phase%2 == 1 {
			var mode faultfs.CrashOpts
			var modeName string
			switch phase {
			case 1:
				mode, modeName = faultfs.CrashOpts{}, "clean"
			case 3:
				mode, modeName = faultfs.CrashOpts{KeepUnsynced: true}, "partial-sync"
			default:
				mode, modeName = faultfs.CrashOpts{KeepUnsynced: true, Torn: true}, "torn"
			}
			snap := fs.ForceCrash()
			_ = db.Close() // post-crash close may report the frozen fs
			dev := storage.New(clock.Real{}, storage.Null())
			img, err := snap.Materialize(dev, rng, mode)
			if err != nil {
				t.Fatalf("phase %d: materialize %s crash: %v", phase, modeName, err)
			}
			fs = newFFS(img, 12345+int64(phase))
			opts := DefaultOptions(fs)
			opts.MemtableSize = 32 << 10
			opts.TargetFileSize = 32 << 10
			opts.BaseLevelBytes = 64 << 10
			opts.ThrottleMode = throttle.ModeNone
			opts.SyncWAL = true
			db, err = Open(opts)
			if err != nil {
				t.Fatalf("reopen after %s crash: %v", modeName, err)
			}
			checkAll(fmt.Sprintf("phase %d post-crash (%s)", phase, modeName))
		}
	}
	db.Close()
}
