package engine

import (
	"io"
	"time"

	"xpointdb/internal/bgpool"
	"xpointdb/internal/cache"
	"xpointdb/internal/clock"
	"xpointdb/internal/costmodel"
	"xpointdb/internal/events"
	"xpointdb/internal/sstable"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// Options configures a DB. The zero value is not usable; start from
// DefaultOptions. Field defaults track RocksDB 5.17's, scaled per
// DESIGN.md so a ~hundreds-of-MB simulated dataset exhibits the same
// LSM dynamics as the paper's 100 GB one.
type Options struct {
	// FS is the data filesystem (required).
	FS vfs.FS
	// WALFS, if non-nil, holds the write-ahead log on a different
	// filesystem/device — the paper's case study C places it on NVM.
	WALFS vfs.FS
	// Clock drives all timing; nil means the real clock.
	Clock clock.Clock
	// CostModel charges virtual CPU time for in-memory work under
	// the simulation kernel. Nil charges nothing.
	CostModel *costmodel.Model

	// MemtableSize is the mutable memtable byte budget. A flushed
	// memtable becomes one Level-0 file, so this is also the L0 file
	// size knob that Figures 8/9/10/12 sweep.
	MemtableSize int64
	// MaxImmutables bounds the queue of flushed-but-unwritten
	// memtables (RocksDB max_write_buffer_number − 1).
	MaxImmutables int

	// L0CompactionTrigger starts L0→L1 compaction at this many L0
	// files (RocksDB default 4).
	L0CompactionTrigger int
	// L0SlowdownTrigger engages write throttling (RocksDB 20).
	L0SlowdownTrigger int
	// L0StopTrigger blocks writes entirely (RocksDB 36 — the paper's
	// "36 by default" Level-0 file limit).
	L0StopTrigger int

	// TargetFileSize is the output SST size at L1+.
	TargetFileSize int64
	// BaseLevelBytes is the L1 size target; each deeper level is
	// LevelMultiplier× larger.
	BaseLevelBytes int64
	// LevelMultiplier is the per-level size ratio (default 10).
	LevelMultiplier int

	// BlockSize is the SST data block size (default 4 KiB).
	BlockSize int
	// BloomBitsPerKey sizes the per-table Bloom filters; 0 disables
	// them (default 10).
	BloomBitsPerKey int
	// Compression selects the SST data block codec (default none;
	// the paper's experiments also run without compression so block
	// reads have deterministic size).
	Compression sstable.Compression
	// BlockCacheSize is the block cache capacity in bytes.
	BlockCacheSize int64
	// BlockCache, if non-nil, is an externally owned block cache shared
	// with other engine instances (shards of a ShardedDB). When set,
	// BlockCacheSize is ignored and the engine neither sizes nor owns
	// the cache. Sharers must carry distinct CacheIDs.
	BlockCache *cache.Cache
	// CacheID disambiguates this engine's file numbers inside a shared
	// BlockCache. Cache keys are (file number, offset); independent
	// engines allocate the same small sequential file numbers, so a
	// shared cache would alias their blocks. The ID is OR-ed into the
	// high bits of the file number used for cache keying (use
	// uint64(shard+1)<<48; file numbers stay far below 2^48). Zero
	// means no salting — correct whenever the cache is not shared.
	CacheID uint64

	// Controller, if non-nil, is an externally owned write controller
	// shared with other shards: one token bucket, one delayed-write
	// rate, a global stall budget. The engine then reports its stall
	// state under StallSource instead of owning the controller, and
	// the owner is responsible for Config.RateChanged wiring.
	Controller *throttle.Controller
	// StallSource identifies this engine to a shared Controller
	// (SetSourceState). Ignored when Controller is nil.
	StallSource int

	// BGPool, if non-nil, gates flush/compaction job execution behind
	// a token pool shared across shards: each background job acquires
	// a token (priority-ordered by stall risk — flushes over
	// compactions, L0 pressure breaking ties) before running and
	// releases it after. Nil leaves the engine's own two dedicated
	// workers ungated, exactly the single-DB behavior.
	BGPool *bgpool.Pool

	// MaxSubcompactions splits one compaction job into up to this many
	// disjoint key-range sub-compactions executed concurrently, each
	// producing its own output files, all installed by one atomic
	// version edit (RocksDB's max_subcompactions). Parallel merge loops
	// exploit the device's internal parallelism — the paper's central
	// underutilization finding for PCIe flash and XPoint — so L0 drains
	// faster and write stalls shorten. Under a shared BGPool the extra
	// lanes are drawn non-blockingly and never starve a queued flush.
	// 0 or 1 disables splitting (the single-merge-loop behavior).
	MaxSubcompactions int
	// CompactionRateBytesPerSec bounds compaction I/O (input reads +
	// output writes) to this many bytes per second of engine-clock
	// time, pacing background traffic against foreground reads and
	// writes (RocksDB's rate_limiter). 0 means unlimited.
	CompactionRateBytesPerSec int64
	// CompactionPacer, if non-nil, is an externally owned pacer shared
	// with other shards: all sharers' compaction I/O draws from one
	// budget. When nil and CompactionRateBytesPerSec > 0, the engine
	// creates a private one.
	CompactionPacer *costmodel.Pacer

	// ShardTag, when nonzero, stamps every event this engine emits
	// with Shard=ShardTag (1-based; 0 = unsharded) so a shared event
	// stream can attribute flushes, stalls, etc. to a shard.
	ShardTag int

	// DisableWAL skips the write-ahead log entirely (Figure 17).
	DisableWAL bool
	// SyncWAL makes every commit group fsync the WAL before being
	// acknowledged. The default (false) matches RocksDB's benchmark
	// configuration and the paper's description: WAL appends go to
	// the write buffer and are flushed to the device asynchronously
	// (at memtable rotation). Durability-critical callers set this
	// or pass sync=true to Apply.
	SyncWAL bool

	// PipelinedWrites enables the paper's Algorithm 2: after the
	// group leader finishes the WAL append, every writer in the
	// group applies its own batch to the memtable concurrently.
	// Disabled, the leader applies all batches itself.
	PipelinedWrites bool
	// MaxBatchGroupBytes caps how much a leader batches into one WAL
	// record.
	MaxBatchGroupBytes int64

	// ThrottleMode selects the write controller policy (Algorithm 1,
	// two-stage, or none).
	ThrottleMode throttle.Mode
	// DelayedWriteRate is the controller's starting rate, bytes/s.
	DelayedWriteRate float64
	// TwoStageFloorRate bounds stage-1 throttling in two-stage mode.
	TwoStageFloorRate float64

	// AdaptiveL0 enables case study B: the engine watches the
	// read/write mix and retunes MemtableSize so Level-0 converges
	// to many small files under write-heavy load (fast inserts) or
	// few large files under read-heavy load (fewer files to probe).
	AdaptiveL0 bool
	// AdaptiveL0Aggregate is the assumed-constant aggregate Level-0
	// volume V; file size flips between V/AdaptiveL0ManyFiles and
	// V/AdaptiveL0FewFiles.
	AdaptiveL0Aggregate int64
	// AdaptiveL0ManyFiles and AdaptiveL0FewFiles are the two target
	// file counts (paper: 24 and 6).
	AdaptiveL0ManyFiles int
	AdaptiveL0FewFiles  int
	// AdaptiveWindow is the sampling window for the read/write ratio.
	AdaptiveWindow time.Duration
	// AdaptiveWriteIntensive is the write fraction above which the
	// workload is tagged write-intensive (paper: 25%).
	AdaptiveWriteIntensive float64

	// EventListener, if non-nil, receives the structured event stream
	// (flush, compaction, stall-condition and rate changes, WAL
	// syncs). Use events.NewEventLog for a JSON-lines file sink.
	// Listeners are called from engine paths — sometimes with engine
	// locks held — and must be concurrency-safe and non-blocking.
	EventListener events.Listener

	// EventSinkQueue sizes the bounded queue between engine emitters
	// and the EventListener. At the default (0 → 4096) the listener is
	// called from a dedicated drain goroutine, so a slow or blocking
	// sink can no longer stall the emitting engine path; if the queue
	// fills, events are dropped for the listener (counted in
	// Metrics.EventsDropped) while still reaching the ops-plane replay
	// ring and SSE subscribers. Set negative to call the listener
	// synchronously from the emitting goroutine — for tests and
	// oracles that must observe an event the moment the operation that
	// caused it returns.
	EventSinkQueue int

	// ObsAddr, when non-empty, serves the HTTP ops plane on this
	// address (e.g. "127.0.0.1:8639", or ":0" for an ephemeral port —
	// read the bound address back with DB.ObsAddr): /metrics in
	// Prometheus text format, /events as SSE with recent-event replay,
	// /stats, /healthz, /debug/pprof, and a live dashboard on /.
	ObsAddr string

	// SlowOpThreshold, when positive, promotes every Get or Apply
	// whose end-to-end latency reaches the threshold into a slow_op
	// event carrying the operation's full PerfContext stage breakdown
	// (stage timing is collected for every op while set, as if
	// CollectPerf were on). Zero disables slow-op tracing.
	SlowOpThreshold time.Duration

	// CollectPerf enables per-operation stage timing on every Get and
	// Apply, aggregated into the Metrics Stage* histograms, even when
	// the caller does not pass a PerfContext. Off by default: stage
	// timing adds a few clock reads per operation.
	CollectPerf bool

	// ScrubBytesPerSec paces the background scrubber, which continuously
	// re-reads live SSTs — bypassing the block cache — and verifies the
	// whole-file checksum plus every block CRC. Default 8 MiB/s; the
	// budget covers all scrub I/O, so foreground impact stays bounded.
	ScrubBytesPerSec int64
	// DisableScrub turns the background scrubber off. Corruption is
	// then detected only when a read, compaction, or paranoid check
	// happens to touch a damaged block.
	DisableScrub bool
	// ParanoidFileChecks re-reads and fully verifies every flush and
	// compaction output before its version edit installs (RocksDB's
	// paranoid_file_checks). Off by default: it re-reads every written
	// byte.
	ParanoidFileChecks bool

	// MaxAllowedSpace caps the bytes of live SST/WAL/MANIFEST files
	// the engine may hold on disk (RocksDB's SstFileManager
	// max_allowed_space). Zero means unlimited. Approaching the budget
	// escalates the write controller (delayed, then stopped — reads
	// keep serving) before any real write can fail for space, and
	// flush/compaction jobs whose projected output would overrun the
	// budget are deferred until reclamation frees headroom.
	MaxAllowedSpace int64
	// FreeSpaceThreshold is the fraction of MaxAllowedSpace that must
	// remain free before the degradation ladder engages: below it
	// writes are delayed, below half of it they are stopped. Default
	// 0.1. Ignored when MaxAllowedSpace is zero.
	FreeSpaceThreshold float64
	// SpaceManager, if non-nil, is an externally owned space budget
	// shared with other shards (like Controller/BGPool): every sharer
	// charges its live bytes against one MaxAllowedSpace, so a hot
	// shard consumes headroom visible to all of them. When nil and
	// MaxAllowedSpace > 0, the engine creates a private one.
	SpaceManager *SpaceManager
	// SpaceStallTimeout bounds how long writers may sit stopped on the
	// space ladder with no state change before the engine latches a
	// hard ErrMaxSpaceReached instead of stalling forever. A stopped
	// ladder with nothing reclaimable is a standstill — flushes and
	// compactions cannot reserve headroom, so no background job will
	// ever free the space the writers are waiting for. The latch turns
	// that silent hang into the ordinary disk-full error path: stalled
	// writers fail fast with ErrBackground, reads keep serving, and
	// wait-for-space recovery heals the moment a budget raise or a
	// delete frees headroom (RocksDB surfaces the same condition as a
	// max_allowed_space background error). Default 10s; negative
	// disables the watchdog.
	SpaceStallTimeout time.Duration

	// DisableAutoRecovery turns off the background recovery worker:
	// hard background errors stay latched until a manual Resume (or a
	// reopen), matching the pre-recovery engine. Soft-error in-place
	// retries are unaffected.
	DisableAutoRecovery bool
	// RecoveryBaseBackoff is the delay before the second automatic
	// recovery attempt; each further attempt doubles it up to
	// RecoveryMaxBackoff (default 5ms).
	RecoveryBaseBackoff time.Duration
	// RecoveryMaxBackoff caps the exponential recovery backoff
	// (default 500ms).
	RecoveryMaxBackoff time.Duration
	// MaxRecoveryAttempts bounds automatic recovery attempts per
	// latched error; past it the worker gives up (the error stays
	// clearable via Resume). Default 12.
	MaxRecoveryAttempts int

	// StatsDumpInterval, when positive, starts a background worker
	// that writes DB.StatsReport to StatsWriter (or the Logger) every
	// interval of engine-clock time — RocksDB's periodic stats dump.
	StatsDumpInterval time.Duration
	// StatsWriter receives periodic stats dumps. When nil, dumps go
	// to Logger; when both are nil, no dumps are produced.
	StatsWriter io.Writer

	// Logger, if non-nil, receives debug events.
	Logger func(format string, args ...interface{})
}

// DefaultOptions returns the scaled-RocksDB defaults. fs is the data
// filesystem.
func DefaultOptions(fs vfs.FS) Options {
	return Options{
		FS:                  fs,
		RecoveryBaseBackoff: 5 * time.Millisecond,
		RecoveryMaxBackoff:  500 * time.Millisecond,
		MaxRecoveryAttempts: 12,
		SpaceStallTimeout:   10 * time.Second,
		MemtableSize:        4 << 20,
		MaxImmutables:       1,
		L0CompactionTrigger: 4,
		L0SlowdownTrigger:   20,
		L0StopTrigger:       36,
		TargetFileSize:      4 << 20,
		BaseLevelBytes:      16 << 20,
		LevelMultiplier:     10,
		BlockSize:           4096,
		BloomBitsPerKey:     10,
		BlockCacheSize:      8 << 20,
		SyncWAL:             false,
		PipelinedWrites:     true,
		MaxBatchGroupBytes:  1 << 20,
		ThrottleMode:        throttle.ModeAlgorithm1,
		DelayedWriteRate:    16 << 20,
		ScrubBytesPerSec:    8 << 20,

		AdaptiveL0Aggregate:    96 << 20,
		AdaptiveL0ManyFiles:    24,
		AdaptiveL0FewFiles:     6,
		AdaptiveWindow:         2 * time.Second,
		AdaptiveWriteIntensive: 0.25,
	}
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	d := DefaultOptions(o.FS)
	if o.Clock == nil {
		o.Clock = clock.Real{}
	}
	if o.MemtableSize <= 0 {
		o.MemtableSize = d.MemtableSize
	}
	if o.MaxImmutables <= 0 {
		o.MaxImmutables = d.MaxImmutables
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = d.L0CompactionTrigger
	}
	if o.L0SlowdownTrigger <= 0 {
		o.L0SlowdownTrigger = d.L0SlowdownTrigger
	}
	if o.L0StopTrigger <= 0 {
		o.L0StopTrigger = d.L0StopTrigger
	}
	if o.TargetFileSize <= 0 {
		o.TargetFileSize = o.MemtableSize
	}
	if o.BaseLevelBytes <= 0 {
		o.BaseLevelBytes = 4 * o.MemtableSize
	}
	if o.LevelMultiplier <= 0 {
		o.LevelMultiplier = d.LevelMultiplier
	}
	if o.BlockSize <= 0 {
		o.BlockSize = d.BlockSize
	}
	if o.BlockCacheSize < 0 {
		o.BlockCacheSize = 0
	}
	if o.MaxBatchGroupBytes <= 0 {
		o.MaxBatchGroupBytes = d.MaxBatchGroupBytes
	}
	if o.MaxSubcompactions <= 0 {
		o.MaxSubcompactions = 1
	}
	if o.CompactionRateBytesPerSec < 0 {
		o.CompactionRateBytesPerSec = 0
	}
	if o.DelayedWriteRate <= 0 {
		o.DelayedWriteRate = d.DelayedWriteRate
	}
	if o.AdaptiveL0Aggregate <= 0 {
		o.AdaptiveL0Aggregate = d.AdaptiveL0Aggregate
	}
	if o.AdaptiveL0ManyFiles <= 0 {
		o.AdaptiveL0ManyFiles = d.AdaptiveL0ManyFiles
	}
	if o.AdaptiveL0FewFiles <= 0 {
		o.AdaptiveL0FewFiles = d.AdaptiveL0FewFiles
	}
	if o.AdaptiveWindow <= 0 {
		o.AdaptiveWindow = d.AdaptiveWindow
	}
	if o.AdaptiveWriteIntensive <= 0 {
		o.AdaptiveWriteIntensive = d.AdaptiveWriteIntensive
	}
	if o.RecoveryBaseBackoff <= 0 {
		o.RecoveryBaseBackoff = d.RecoveryBaseBackoff
	}
	if o.RecoveryMaxBackoff <= 0 {
		o.RecoveryMaxBackoff = d.RecoveryMaxBackoff
	}
	if o.RecoveryMaxBackoff < o.RecoveryBaseBackoff {
		o.RecoveryMaxBackoff = o.RecoveryBaseBackoff
	}
	if o.MaxRecoveryAttempts <= 0 {
		o.MaxRecoveryAttempts = d.MaxRecoveryAttempts
	}
	if o.ScrubBytesPerSec <= 0 {
		o.ScrubBytesPerSec = d.ScrubBytesPerSec
	}
	if o.FreeSpaceThreshold <= 0 {
		o.FreeSpaceThreshold = 0.1
	}
	if o.SpaceStallTimeout == 0 {
		o.SpaceStallTimeout = d.SpaceStallTimeout
	}
	return o
}

func (o *Options) logf(format string, args ...interface{}) {
	if o.Logger != nil {
		o.Logger(format, args...)
	}
}
