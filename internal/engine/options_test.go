package engine

import (
	"testing"

	"xpointdb/internal/clock"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

func TestOpenRequiresFS(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without FS succeeded")
	}
}

func TestWithDefaultsFillsZeroFields(t *testing.T) {
	fs := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	o := Options{FS: fs}.withDefaults()
	if o.Clock == nil {
		t.Fatal("Clock not defaulted")
	}
	if o.MemtableSize <= 0 || o.L0CompactionTrigger <= 0 || o.L0SlowdownTrigger <= 0 || o.L0StopTrigger <= 0 {
		t.Fatalf("LSM sizing not defaulted: %+v", o)
	}
	if o.TargetFileSize != o.MemtableSize {
		t.Fatalf("TargetFileSize default should track MemtableSize: %d vs %d", o.TargetFileSize, o.MemtableSize)
	}
	if o.BaseLevelBytes != 4*o.MemtableSize {
		t.Fatalf("BaseLevelBytes default = %d", o.BaseLevelBytes)
	}
	if o.MaxBatchGroupBytes <= 0 || o.DelayedWriteRate <= 0 {
		t.Fatal("write-path knobs not defaulted")
	}
}

func TestDefaultsMatchRocksDBTriggers(t *testing.T) {
	fs := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	d := DefaultOptions(fs)
	// The paper's reference configuration.
	if d.L0CompactionTrigger != 4 || d.L0SlowdownTrigger != 20 || d.L0StopTrigger != 36 {
		t.Fatalf("L0 triggers = %d/%d/%d, want RocksDB's 4/20/36",
			d.L0CompactionTrigger, d.L0SlowdownTrigger, d.L0StopTrigger)
	}
	if d.DelayedWriteRate != 16<<20 {
		t.Fatalf("delayed write rate = %f, want 16 MiB/s", d.DelayedWriteRate)
	}
	if d.SyncWAL {
		t.Fatal("SyncWAL must default false (db_bench/paper configuration)")
	}
	if !d.PipelinedWrites {
		t.Fatal("pipelined writes (Algorithm 2) should be the default")
	}
}

func TestOpenOnExistingEmptyDirIsFresh(t *testing.T) {
	fs := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	db, err := Open(DefaultOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Second open recovers the (empty) database.
	db2, err := Open(DefaultOptions(fs))
	if err != nil {
		t.Fatalf("reopen empty db: %v", err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("missing")); err != ErrNotFound {
		t.Fatalf("Get on empty reopened db: %v", err)
	}
}
