package engine

import (
	"errors"
	"fmt"

	"xpointdb/internal/events"
	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
	"xpointdb/internal/sstable"
	"xpointdb/internal/vfs"
)

// Corruption quarantine & repair (the recovery side of the integrity
// tentpole; detection lives in sstable block/file checksums and the
// scrubber). A checksum failure in a LIVE SST latches opCorruption
// (hard), and the recovery worker lands here:
//
//  1. Quarantine — durably mark the file in the MANIFEST (tag 7) so the
//     damage survives restarts and re-detection resumes repair after a
//     crash. A quarantined file keeps serving its intact blocks: block
//     checksums guarantee a read either returns verified bytes or an
//     error, so excluding the whole file would only widen the outage.
//  2. Salvage — re-compact the damaged file (plus its next-level
//     overlaps) one level down. Undamaged blocks carry every key they
//     hold into fresh, fully-checksummed outputs; if the corruption was
//     transient (a bitrotted read, not bitrotted media) the rewrite
//     recovers everything.
//  3. Data loss — if the salvage read keeps failing on the same media,
//     drop the unreadable file from the version and report the precise
//     affected user-key range in a data_loss event. Reads outside the
//     range are untouched; inside it, older versions from deeper levels
//     may resurface. This is the honest endpoint RocksDB reaches with
//     best_efforts_recovery: bounded, named loss instead of a
//     permanently wedged DB.
//
// Every path out of recoverCorruption except a genuine I/O failure
// returns nil so the latch clears: the damaged file is then either
// repaired or gone, and a *different* damaged file re-latches on its
// next detection — each cycle removes one damaged file, so repeated
// corruption converges instead of wedging the recovery worker.

// maybeReportCorruption routes err into the quarantine/repair machinery
// if it is (or wraps) an SST checksum failure. Detection is counted for
// every corruption; the hard latch engages only when the damaged file
// is live in the current version — a paranoid check failing on a
// not-yet-installed flush or compaction output stays a soft, retryable
// build failure, and a file already compacted away needs nothing.
func (db *DB) maybeReportCorruption(err error) {
	var ce *sstable.CorruptionError
	if !errors.As(err, &ce) {
		return
	}
	db.metrics.CorruptionsDetected.Add(1)
	db.mu.Lock()
	defer db.mu.Unlock()
	if level, _ := db.fileLevelLocked(ce.FileNum); level < 0 {
		return
	}
	db.setBackgroundErrorLocked(opCorruption, err)
}

// fileLevelLocked locates file num in the current version, returning
// (-1, nil) when no live level references it. Callers hold db.mu.
func (db *DB) fileLevelLocked(num uint64) (int, *manifest.FileMeta) {
	v := db.vs.Current()
	for l := 0; l < manifest.NumLevels; l++ {
		for _, f := range v.Files[l] {
			if f.Num == num {
				return l, f
			}
		}
	}
	return -1, nil
}

// paranoidVerify re-reads a just-built, just-synced SST end to end —
// file checksum plus every block checksum — before its version edit can
// install it (Options.ParanoidFileChecks; RocksDB's paranoid_file_checks).
// The reader borrows the caller's still-open handle, so it is NOT
// closed here. A failure aborts the flush/compaction, which retries
// from its still-live inputs — damaged output never becomes durable
// state.
func (db *DB) paranoidVerify(f vfs.File, size int64, num uint64, sum uint32) error {
	r, err := sstable.NewReader(f, size, num, nil)
	if err != nil {
		return fmt.Errorf("engine: paranoid check of sst %d: %w", num, err)
	}
	if _, err := r.Verify(sum, nil); err != nil {
		return fmt.Errorf("engine: paranoid check of sst %d: %w", num, err)
	}
	return nil
}

// salvageTries is how many times recovery re-attempts the repair
// compaction before concluding the corruption is persistent (on-media,
// not a transient read fault) and declaring data loss.
const salvageTries = 2

// recoverCorruption is the recovery procedure for a latched corruption
// error: quarantine, salvage by re-compaction, or bounded data loss.
// Called from recoverOnce with db.recovering set and db.mu not held; a
// nil return clears the latch.
func (db *DB) recoverCorruption(be *BackgroundError) error {
	var ce *sstable.CorruptionError
	if !errors.As(be.Err, &ce) {
		return fmt.Errorf("engine: corruption latch without file identity: %w", be.Err)
	}

	db.mu.Lock()
	if !db.quiesceForRecoveryLocked() {
		db.mu.Unlock()
		return ErrClosed
	}
	level, meta := db.fileLevelLocked(ce.FileNum)
	db.mu.Unlock()
	if meta == nil {
		// The damaged file left the version since the latch (a normal
		// compaction consumed it before idling): nothing to repair.
		return nil
	}

	if !meta.Quarantined() {
		if err := db.quarantineFile(level, meta, ce); err != nil {
			return err
		}
	}

	// Salvage: the repair read verifies every block it merges, so a
	// success proves the outputs hold everything recoverable. A repeat
	// corruption failure may name a different file than the original
	// (an overlap rotted too) — the loss declaration drops whichever
	// file the last read actually failed on; the original re-latches on
	// its next detection and repairs against the now-smaller overlap
	// set, so multi-file damage converges one file per cycle.
	lastCorrupt := ce
	for try := 0; try < salvageTries; try++ {
		err := db.repairCompaction(level, meta)
		if err == nil {
			db.metrics.CorruptionsRepaired.Add(1)
			db.opts.logf("repaired corruption: sst %d (L%d) re-compacted", meta.Num, level)
			db.emitIntegrity(events.KindRepair, &events.Integrity{
				FileNum:  meta.Num,
				Level:    level,
				Smallest: string(keys.UserKey(meta.Smallest)),
				Largest:  string(keys.UserKey(meta.Largest)),
				Detail:   lastCorrupt.Detail,
			})
			return nil
		}
		var again *sstable.CorruptionError
		if !errors.As(err, &again) {
			// A non-corruption failure (create, sync, manifest append):
			// genuinely transient — let the recovery loop back off and
			// re-enter with the quarantine mark already durable.
			return err
		}
		lastCorrupt = again
	}
	return db.declareDataLoss(lastCorrupt)
}

// quarantineFile durably marks meta as quarantined via a tag-7 version
// edit committed with the recovery bypass (the latch is still set).
func (db *DB) quarantineFile(level int, meta *manifest.FileMeta, ce *sstable.CorruptionError) error {
	edit := &manifest.Edit{
		Quarantined: []manifest.QuarantinedFile{{Level: level, Num: meta.Num}},
	}
	if err := db.commitEditWith(edit, true); err != nil {
		return err
	}
	db.metrics.FilesQuarantined.Add(1)
	db.opts.logf("quarantined sst %d (L%d): %s", meta.Num, level, ce.Detail)
	db.emitIntegrity(events.KindQuarantine, &events.Integrity{
		FileNum:  meta.Num,
		Level:    level,
		Smallest: string(keys.UserKey(meta.Smallest)),
		Largest:  string(keys.UserKey(meta.Largest)),
		Detail:   ce.Detail,
	})
	return nil
}

// repairCompaction re-compacts the quarantined file one level down,
// reusing the normal compaction machinery on the recovery goroutine
// (the background workers idle while the latch is set). For a Level-0
// file ALL of L0 joins the input set — moving one L0 file below an
// overlapping older sibling would let the sibling's stale values win
// the newest-first L0 probe. For a bottom-level file the rewrite stays
// in place (outputs at the same level, no overlaps).
func (db *DB) repairCompaction(level int, meta *manifest.FileMeta) error {
	db.mu.Lock()
	c := db.picker.pickRepair(db.vs.Current(), level, meta, db.liveSnapshotSeqs())
	// Exclude a concurrent manual CompactRange for the duration (the
	// background compactor is already idling on the latch).
	db.compacting = true
	db.mu.Unlock()

	err := db.executePickedCompaction(c)

	db.mu.Lock()
	db.compacting = false
	db.bgCond.Broadcast()
	db.mu.Unlock()
	if err == nil {
		db.deleteObsoleteFiles()
	}
	return err
}

// declareDataLoss drops the unreadable file from the version and
// reports the precise affected user-key range. Returning nil clears the
// latch: the DB resumes with bounded, named loss instead of wedging.
func (db *DB) declareDataLoss(ce *sstable.CorruptionError) error {
	db.mu.Lock()
	level, meta := db.fileLevelLocked(ce.FileNum)
	db.mu.Unlock()
	if meta == nil {
		return nil
	}
	edit := &manifest.Edit{
		Deleted: []manifest.DeletedFile{{Level: level, Num: meta.Num}},
	}
	if err := db.commitEditWith(edit, true); err != nil {
		return err
	}
	db.metrics.DataLossEvents.Add(1)
	small := string(keys.UserKey(meta.Smallest))
	large := string(keys.UserKey(meta.Largest))
	db.opts.logf("DATA LOSS: dropped unreadable sst %d (L%d); keys [%q, %q] affected: %s",
		meta.Num, level, small, large, ce.Detail)
	db.emitIntegrity(events.KindDataLoss, &events.Integrity{
		FileNum:  meta.Num,
		Level:    level,
		Smallest: small,
		Largest:  large,
		Detail:   ce.Detail,
	})
	db.deleteObsoleteFiles()
	return nil
}
