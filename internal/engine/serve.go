package engine

import (
	"fmt"

	"xpointdb/internal/events"
	"xpointdb/internal/obs"
)

// wireEventHub decides how emitted events reach the configured
// listener and the ops plane, and installs the result as db.ev. Three
// shapes:
//
//   - No listener, no ObsAddr: db.ev stays nil, emission is free.
//   - Async sink (EventSinkQueue >= 0, the default): an obs.Hub sits
//     between the engine and the listener. Emitters never block — the
//     hub hands events to a dedicated drain goroutine through a
//     bounded queue, dropping (and counting in Metrics.EventsDropped)
//     under sustained backpressure. The same hub feeds /events SSE
//     subscribers when the ops server is on.
//   - Synchronous sink (EventSinkQueue < 0): the listener is invoked
//     inline from the emitting goroutine, exactly as before the hub
//     existed — for tests and oracles that assert on events mid-run.
//     If ObsAddr is also set, a hub with no sink rides alongside via
//     events.Tee so SSE still works.
//
// Called from Open before openOrRecover so recovery-time events flow
// through the same path.
func (db *DB) wireEventHub() {
	listener := db.opts.EventListener
	async := listener != nil && db.opts.EventSinkQueue >= 0
	needHub := async || db.opts.ObsAddr != ""
	if !needHub {
		return // db.ev already holds the (possibly nil) raw listener
	}
	hcfg := obs.HubConfig{SinkQueue: db.opts.EventSinkQueue}
	if async {
		hcfg.Sink = listener
		hcfg.OnSinkDrop = func() { db.metrics.EventsDropped.Add(1) }
	}
	db.hub = obs.NewHub(hcfg)
	if listener != nil && !async {
		db.ev = events.Tee(listener, db.hub)
	} else {
		db.ev = db.hub
	}
}

// startObsServer binds and serves the HTTP ops plane when
// Options.ObsAddr is set. Called at the tail of Open, after the
// background workers are running, so no handler can observe a
// half-open DB.
func (db *DB) startObsServer() error {
	if db.opts.ObsAddr == "" {
		return nil
	}
	srv, err := obs.Serve(db.opts.ObsAddr, obs.Config{
		MetricsText: db.WritePrometheus,
		StatsText:   db.StatsReport,
		Health: func() (bool, string) {
			h := db.Health()
			return h == Healthy, h.String()
		},
		Hub: db.hub,
	})
	if err != nil {
		return fmt.Errorf("engine: ops server: %w", err)
	}
	db.obsSrv = srv
	return nil
}

// ObsAddr returns the bound address of the HTTP ops server ("" when
// Options.ObsAddr was empty). With ObsAddr ":0" this is how callers
// discover the ephemeral port.
func (db *DB) ObsAddr() string {
	if db.obsSrv == nil {
		return ""
	}
	return db.obsSrv.Addr()
}

// SyncEvents blocks until every event emitted so far has been
// delivered to the configured EventListener. Only meaningful with the
// async sink (EventSinkQueue >= 0); a no-op otherwise. Tests that
// assert on the listener's contents mid-run call this first.
func (db *DB) SyncEvents() {
	if db.hub != nil {
		db.hub.Sync()
	}
}

// closeObs tears down the ops plane at the tail of Close. Order
// matters: closing the hub first closes every SSE subscriber channel,
// which unblocks the /events handlers, so the server's graceful
// shutdown completes immediately instead of waiting out its timeout.
func (db *DB) closeObs() {
	if db.hub != nil {
		db.hub.Close()
	}
	if db.obsSrv != nil {
		_ = db.obsSrv.Close()
	}
}
