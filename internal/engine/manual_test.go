package engine

import (
	"strings"
	"testing"
)

func TestCompactRangePushesDataDown(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.MemtableSize = 16 << 10
		o.TargetFileSize = 32 << 10
		o.BaseLevelBytes = 1 << 30 // keep background size-compactions out of the way
		o.L0CompactionTrigger = 100
	})
	defer db.Close()

	const n = 1500
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatalf("CompactRange: %v", err)
	}
	if l0 := db.NumLevelFiles(0); l0 != 0 {
		t.Fatalf("L0 still has %d files after full CompactRange:\n%s", l0, db.DebugLayout())
	}
	deep := 0
	for l := 1; l < 7; l++ {
		deep += db.NumLevelFiles(l)
	}
	if deep == 0 {
		t.Fatalf("no files below L0:\n%s", db.DebugLayout())
	}
	for i := 0; i < n; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d after CompactRange: %v", i, err)
		}
	}
}

func TestCompactRangePartial(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.MemtableSize = 16 << 10
		o.L0CompactionTrigger = 100
	})
	defer db.Close()
	for i := 0; i < 600; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Compact only a sub-range; data outside it must stay readable.
	if err := db.CompactRange(testKey(100), testKey(200)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i += 7 {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
	}
}

func TestCompactRangeDropsTombstones(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.MemtableSize = 16 << 10
		o.L0CompactionTrigger = 100
	})
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Put(testKey(i), testValue(i))
	}
	for i := 0; i < 500; i++ {
		db.Delete(testKey(i))
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatal(err)
	}
	// Everything deleted and fully compacted: tree should be tiny
	// (tombstones elided at the base level).
	var total int64
	for l := 0; l < 7; l++ {
		total += db.LevelBytes(l)
	}
	if total > 64<<10 {
		t.Fatalf("tree still holds %d bytes of deleted data:\n%s", total, db.DebugLayout())
	}
	for i := 0; i < 500; i += 17 {
		if _, err := db.Get(testKey(i)); err != ErrNotFound {
			t.Fatalf("deleted key %d: %v", i, err)
		}
	}
}

func TestStatsRendering(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	for i := 0; i < 300; i++ {
		db.Put(testKey(i), testValue(i))
	}
	db.Get(testKey(1))
	s := db.Stats()
	for _, want := range []string{"LSM state", "memtable:", "flushes:", "get:", "waiting writers"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Stats missing %q:\n%s", want, s)
		}
	}
}
