package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"xpointdb/internal/vfs"
)

// TestIteratorOutlivesCompaction is the regression test for the core
// SuperVersion guarantee: an open iterator pins the version it was
// built from, so a manual compaction that rewrites every input SST
// cannot delete files out from under the scan — and the zombies it
// produces are reclaimed only once the iterator closes.
func TestIteratorOutlivesCompaction(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	it, err := db.NewIter()
	if err != nil {
		t.Fatalf("NewIter: %v", err)
	}

	// Overwrite everything and force a full rewrite of the tree while
	// the iterator is open. The old SSTs become unreachable from the
	// current version but stay pinned by the iterator.
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), []byte("new-"+string(testValue(i)))); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	if err := db.CompactRange(nil, nil); err != nil {
		t.Fatalf("CompactRange: %v", err)
	}

	if pinned := db.metrics.PinnedVersions.Current(); pinned < 2 {
		t.Fatalf("PinnedVersions = %d while iterator holds an old version, want >= 2", pinned)
	}

	// The scan must still see its snapshot: the original values, all
	// of them, with no vanished-file errors.
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if got, want := string(it.Key()), string(testKey(i)); got != want {
			t.Fatalf("key %d = %q, want %q", i, got, want)
		}
		if got, want := string(it.Value()), string(testValue(i)); got != want {
			t.Fatalf("value %d = %q, want %q", i, got, want)
		}
		i++
	}
	if err := it.Error(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	if i != n {
		t.Fatalf("scanned %d keys, want %d", i, n)
	}

	before := db.metrics.ZombieFilesDeleted.Load()
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Closing the iterator dropped the last reference on the old
	// version; its files are swept synchronously by releaseSV.
	if after := db.metrics.ZombieFilesDeleted.Load(); after <= before {
		t.Fatalf("ZombieFilesDeleted %d -> %d: closing the pinning iterator reclaimed nothing", before, after)
	}
}

// TestCloseDetectsLeakedIterator checks the leak accounting asserted at
// Close: an unclosed iterator (a leaked SuperVersion pin) turns into a
// Close error naming it.
func TestCloseDetectsLeakedIterator(t *testing.T) {
	db, _ := newTestDB(t, nil)
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatalf("NewIter: %v", err)
	}
	_ = it // leaked on purpose

	err = db.Close()
	if err == nil || !strings.Contains(err.Error(), "1 iterator(s)") {
		t.Fatalf("Close with leaked iterator = %v, want leak error", err)
	}
}

func TestCloseDetectsLeakedSnapshot(t *testing.T) {
	db, _ := newTestDB(t, nil)
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	_ = db.NewSnapshot() // leaked on purpose

	err := db.Close()
	if err == nil || !strings.Contains(err.Error(), "1 snapshot(s)") {
		t.Fatalf("Close with leaked snapshot = %v, want leak error", err)
	}
}

func TestCloseCleanWithEverythingReleased(t *testing.T) {
	db, _ := newTestDB(t, nil)
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatalf("NewIter: %v", err)
	}
	s := db.NewSnapshot()
	s.Release()
	if err := it.Close(); err != nil {
		t.Fatalf("iter Close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestConcurrentReadsNeverSeeVanishedFiles is the tier-2 regression for
// the race the SuperVersion refactor eliminates: with reads, scans,
// flushes and manual compactions hammering the tree concurrently, no
// read may ever surface vfs.ErrNotExist — the error the old read path
// retried around when the obsolete-file sweep deleted an SST between
// version lookup and table open.
func TestConcurrentReadsNeverSeeVanishedFiles(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.SyncWAL = false // keep the write side fast; durability is not under test
	})
	defer db.Close()

	const keys = 400
	for i := 0; i < keys; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}

	checkErr := func(op string, err error) {
		if err == nil || err == ErrNotFound || errors.Is(err, ErrClosed) {
			return
		}
		if errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("%s observed a vanished SST: %v", op, err)
			return
		}
		t.Errorf("%s: %v", op, err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers keep churning the key space so flushes have material.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := testKey(i % keys)
			err := db.Put(k, []byte(fmt.Sprintf("gen-%d", i)))
			if err != nil && !errors.Is(err, ErrClosed) {
				checkErr("Put", err)
				return
			}
		}
	}()

	// Point readers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := db.Get(testKey((i*7 + g) % keys))
				checkErr("Get", err)
			}
		}(g)
	}

	// Scanners.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it, err := db.NewIter()
				if err != nil {
					checkErr("NewIter", err)
					return
				}
				for it.SeekToFirst(); it.Valid(); it.Next() {
				}
				checkErr("scan", it.Error())
				checkErr("iter close", it.Close())
			}
		}()
	}

	// Flush/compaction churn — the file-deletion side of the race —
	// bounds the run: readers and writers stop after its last round.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 8; i++ {
			if err := db.Flush(); err != nil && !errors.Is(err, ErrClosed) {
				checkErr("Flush", err)
				return
			}
			if err := db.CompactRange(nil, nil); err != nil && !errors.Is(err, ErrClosed) {
				checkErr("CompactRange", err)
				return
			}
		}
	}()

	<-churnDone
	close(stop)
	wg.Wait()
}
