package engine

import "sort"

// Snapshot pins a point-in-time view of the database: reads through it
// see exactly the writes committed before NewSnapshot returned.
// Compaction retains the newest version of every key at each live
// snapshot boundary, so snapshot reads stay correct while background
// work proceeds. Release it when done — a forgotten snapshot pins
// obsolete versions forever.
type Snapshot struct {
	db  *DB
	seq uint64
}

// NewSnapshot captures the current visible state.
func (db *DB) NewSnapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &Snapshot{db: db, seq: db.visibleSeq.Load()}
	db.snapshots[s] = s.seq
	return s
}

// Seq exposes the snapshot's sequence number (for tests/tools).
func (s *Snapshot) Seq() uint64 { return s.seq }

// Release unpins the snapshot. Safe to call more than once.
func (s *Snapshot) Release() {
	s.db.mu.Lock()
	delete(s.db.snapshots, s)
	s.db.mu.Unlock()
}

// Get reads key as of the snapshot.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	db := s.db
	start := db.clk.Now()
	v, err := db.getAt(key, s.seq, nil)
	now := db.clk.Now()
	db.metrics.GetLatency.Record(now.Sub(start))
	db.metrics.Ops.Record(now, 1)
	return v, err
}

// NewIter returns an iterator over the snapshot's view.
func (s *Snapshot) NewIter() (*Iter, error) {
	return s.db.newIterAt(s.seq)
}

// liveSnapshotSeqsLocked returns the live snapshot sequence numbers in
// ascending order. Called with db.mu held.
func (db *DB) liveSnapshotSeqsLocked() []uint64 {
	if len(db.snapshots) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(db.snapshots))
	for _, seq := range db.snapshots {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stripeOf returns the index of the version stripe seq falls into,
// given ascending snapshot boundaries: stripe i covers
// (snaps[i-1], snaps[i]], with a final stripe above the last boundary.
// Compaction may collapse versions within one stripe but must keep the
// newest version in each occupied stripe (see runCompaction).
func stripeOf(snaps []uint64, seq uint64) int {
	return sort.Search(len(snaps), func(i int) bool { return snaps[i] >= seq })
}
