package engine

import "sort"

// Snapshot pins a point-in-time view of the database: reads through it
// see exactly the writes committed before NewSnapshot returned.
// Compaction retains the newest version of every key at each live
// snapshot boundary, so snapshot reads stay correct while background
// work proceeds. Release it when done — db.Close reports forgotten
// snapshots as leaks.
type Snapshot struct {
	db  *DB
	seq uint64
}

// NewSnapshot captures the current visible state. It never touches
// db.mu: registration takes only snapsMu, so snapshot acquisition does
// not contend with the write queue or background installs.
//
// Correctness against a racing compaction pick hinges on two
// orderings. First, visibleSeq is loaded INSIDE snapsMu. Second, a
// pick reads the version BEFORE it reads the snapshot list (which
// locks snapsMu). So if a pick's read of the list misses this
// registration, this critical section ran after the pick's — meaning
// the sequence below was loaded after the pick read its version, and
// is therefore ≥ every sequence in that compaction's input files
// (file contents were visible before the version existed). Such a
// snapshot sees all the compaction's entries, and the newest version
// of each key — which the merge always keeps — is exactly what it
// needs. Snapshots the pick did observe get their stripe boundaries.
func (db *DB) NewSnapshot() *Snapshot {
	db.snapsMu.Lock()
	s := &Snapshot{db: db, seq: db.visibleSeq.Load()}
	db.snapshots[s] = s.seq
	db.snapsMu.Unlock()
	return s
}

// Seq exposes the snapshot's sequence number (for tests/tools).
func (s *Snapshot) Seq() uint64 { return s.seq }

// Release unpins the snapshot. Safe to call more than once.
func (s *Snapshot) Release() {
	s.db.snapsMu.Lock()
	delete(s.db.snapshots, s)
	s.db.snapsMu.Unlock()
}

// Get reads key as of the snapshot. The SuperVersion pinned inside
// getAt may be newer than the snapshot — that is fine: newer bundles
// hold a superset of the data, and sequence filtering hides everything
// committed after s.seq.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	db := s.db
	start := db.clk.Now()
	v, err := db.getAt(key, s.seq, nil)
	now := db.clk.Now()
	db.metrics.GetLatency.Record(now.Sub(start))
	db.metrics.Ops.Record(now, 1)
	return v, err
}

// NewIter returns an iterator over the snapshot's view.
func (s *Snapshot) NewIter() (*Iter, error) {
	return s.db.newIterAt(s.seq)
}

// liveSnapshotSeqs returns the live snapshot sequence numbers in
// ascending order. Takes snapsMu; callers may hold db.mu (lock order
// db.mu → snapsMu) but do not need to.
func (db *DB) liveSnapshotSeqs() []uint64 {
	db.snapsMu.Lock()
	defer db.snapsMu.Unlock()
	if len(db.snapshots) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(db.snapshots))
	for _, seq := range db.snapshots {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stripeOf returns the index of the version stripe seq falls into,
// given ascending snapshot boundaries: stripe i covers
// (snaps[i-1], snaps[i]], with a final stripe above the last boundary.
// Compaction may collapse versions within one stripe but must keep the
// newest version in each occupied stripe (see runCompaction).
func stripeOf(snaps []uint64, seq uint64) int {
	return sort.Search(len(snaps), func(i int) bool { return snaps[i] >= seq })
}
