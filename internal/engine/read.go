package engine

import (
	"bytes"
	"time"

	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
	"xpointdb/internal/memtable"
	"xpointdb/internal/sstable"
)

// Get returns the value stored under key, or ErrNotFound. The lookup
// order is the LSM read path the paper analyzes: memtable, immutable
// memtables (newest first), every overlapping Level-0 file from newest
// to oldest, then one file per deeper level — with Bloom filters and
// the block cache short-circuiting device reads.
func (db *DB) Get(key []byte) ([]byte, error) {
	return db.GetWithPerf(key, nil)
}

// GetWithPerf is Get with a per-operation stage breakdown accumulated
// into pc. A nil pc collects nothing unless Options.CollectPerf is
// set, in which case the engine times the lookup internally; either
// way the per-op deltas feed the Metrics Stage* histograms.
func (db *DB) GetWithPerf(key []byte, pc *PerfContext) ([]byte, error) {
	var before PerfContext
	if pc == nil {
		if db.opts.CollectPerf || db.opts.SlowOpThreshold > 0 {
			pc = &PerfContext{}
		}
	} else {
		before = *pc
	}
	start := db.clk.Now()
	v, err := db.get(key, pc)
	now := db.clk.Now()
	lat := now.Sub(start)
	db.metrics.GetLatency.Record(lat)
	db.metrics.Ops.Record(now, 1)
	db.windowReads.Add(1)
	if pc != nil {
		d := pc.diff(&before)
		db.metrics.recordReadPerf(&d)
		if t := db.opts.SlowOpThreshold; t > 0 && lat >= t {
			db.emitSlowOp("get", lat, 0, &d)
		}
	} else if t := db.opts.SlowOpThreshold; t > 0 && lat >= t {
		db.emitSlowOp("get", lat, 0, nil)
	}
	return v, err
}

func (db *DB) get(key []byte, pc *PerfContext) ([]byte, error) {
	// The snapshot sequence is loaded BEFORE the SuperVersion is
	// pinned. Any bundle current at pin time holds every write visible
	// at a sequence loaded earlier (newer bundles are supersets), so
	// this order can never miss committed data; the reverse order
	// could read a sequence the pinned bundle predates.
	snap := db.visibleSeq.Load()
	return db.getAt(key, snap, pc)
}

// getAt reads key as of sequence snapshot snap against a pinned
// SuperVersion: one atomic load + ref, no db.mu. The pin keeps every
// SST the version references alive (deletion is reference-driven), so
// the lookup can never observe a vanished file — the ErrNotExist
// retry loop that used to paper over that race is gone.
func (db *DB) getAt(key []byte, snap uint64, pc *PerfContext) ([]byte, error) {
	sv := db.acquireSV()
	if sv == nil {
		return nil, ErrClosed
	}
	defer db.releaseSV(sv)
	mem, imms, ver := sv.mem, sv.imms, sv.ver

	// 1. Mutable memtable.
	var t0 time.Time
	if pc != nil {
		t0 = db.clk.Now()
	}
	if val, ok, err := db.getFromMem(mem, key, snap, &db.metrics.GetHitMemtable); ok {
		if pc != nil {
			pc.MemtableProbe += db.clk.Now().Sub(t0)
		}
		return val, err
	}
	if pc != nil {
		now := db.clk.Now()
		pc.MemtableProbe += now.Sub(t0)
		t0 = now
	}
	// 2. Immutable memtables, newest first.
	for i := len(imms) - 1; i >= 0; i-- {
		if val, ok, err := db.getFromMem(imms[i].mem, key, snap, &db.metrics.GetHitImmutable); ok {
			if pc != nil {
				pc.ImmutableProbe += db.clk.Now().Sub(t0)
			}
			return val, err
		}
	}
	if pc != nil && len(imms) > 0 {
		pc.ImmutableProbe += db.clk.Now().Sub(t0)
	}
	// 3. The tree.
	return db.getFromVersion(ver, key, snap, pc)
}

// getFromMem probes one memtable. ok=true means the search terminated
// here (hit or tombstone).
func (db *DB) getFromMem(mem *memtable.Memtable, key []byte, snap uint64, hitCounter interface{ Add(int64) int64 }) ([]byte, bool, error) {
	val, found, deleted, cmps := mem.Get(key, snap)
	if db.cost != nil {
		db.cost.ChargeCompares(db.clk, cmps)
	}
	if !found {
		return nil, false, nil
	}
	hitCounter.Add(1)
	if deleted {
		return nil, true, ErrNotFound
	}
	return val, true, nil
}

// getFromVersion searches the on-disk tree.
func (db *DB) getFromVersion(v *manifest.Version, key []byte, snap uint64, pc *PerfContext) ([]byte, error) {
	search := keys.SearchKey(key, snap)

	// Level 0: files may overlap; probe every covering file newest
	// first. This loop is the read amplification of Finding #2 — its
	// cost scales with the number of Level-0 files.
	for _, f := range v.L0Newest() {
		if !f.ContainsUserKey(key) {
			continue
		}
		var t0 time.Time
		if pc != nil {
			pc.L0Probes++
			t0 = db.clk.Now()
		}
		val, ok, err := db.probeTable(f, key, search, &db.metrics.GetHitL0, pc)
		if pc != nil {
			pc.L0ProbeTime += db.clk.Now().Sub(t0)
		}
		db.metrics.L0TablesProbed.Add(1)
		if err != nil {
			return nil, err
		}
		if ok {
			if val == nil {
				return nil, ErrNotFound
			}
			return val, nil
		}
	}

	// Levels 1+: at most one file per level can contain the key.
	for l := 1; l < manifest.NumLevels; l++ {
		f, cmps := v.FileForKey(l, key)
		if db.cost != nil {
			db.cost.ChargeCompares(db.clk, cmps)
		}
		if f == nil {
			continue
		}
		var t0 time.Time
		if pc != nil {
			pc.DeepProbes++
			t0 = db.clk.Now()
		}
		val, ok, err := db.probeTable(f, key, search, &db.metrics.GetHitDeep, pc)
		if pc != nil {
			pc.DeepProbeTime += db.clk.Now().Sub(t0)
		}
		if err != nil {
			return nil, err
		}
		if ok {
			if val == nil {
				return nil, ErrNotFound
			}
			return val, nil
		}
	}
	db.metrics.GetMisses.Add(1)
	return nil, ErrNotFound
}

// probeTable searches one SST. ok=true terminates the search; a nil
// value with ok=true is a tombstone.
func (db *DB) probeTable(f *manifest.FileMeta, key, search []byte, hitCounter interface{ Add(int64) int64 }, pc *PerfContext) (val []byte, ok bool, err error) {
	r, err := db.tables.get(f)
	if err != nil {
		// Opening the table may itself hit corruption (footer, index or
		// filter block damage).
		db.maybeReportCorruption(err)
		return nil, false, err
	}
	if db.cost != nil {
		db.cost.ChargeBloom(db.clk, 1)
	}
	if pc != nil {
		pc.BloomChecks++
	}
	if !r.MayContain(key) {
		db.metrics.BloomSkips.Add(1)
		if pc != nil {
			pc.BloomSkips++
		}
		return nil, false, nil
	}
	if db.cost != nil {
		db.cost.ChargeTableProbe(db.clk)
	}
	var st sstable.ProbeStats
	var t0 time.Time
	if pc != nil {
		t0 = db.clk.Now()
	}
	ikey, value, found, err := r.GetStats(search, &st)
	if pc != nil {
		// Block reads only happen on cache misses, so the probe time
		// on a miss approximates the device read portion.
		if st.CacheMisses > 0 {
			pc.BlockReadTime += db.clk.Now().Sub(t0)
		}
		pc.BlockCacheHits += st.CacheHits
		pc.BlockCacheMisses += st.CacheMisses
	}
	if db.cost != nil {
		db.cost.ChargeCompares(db.clk, st.Cmps)
	}
	if err != nil {
		// A checksum failure detected on the read path: the read still
		// fails (never serve unverified bytes), but the damage also
		// routes to the quarantine/repair machinery.
		db.maybeReportCorruption(err)
		return nil, false, err
	}
	if !found {
		return nil, false, nil
	}
	if !bytes.Equal(keys.UserKey(ikey), key) {
		return nil, false, nil
	}
	hitCounter.Add(1)
	if _, kind := keys.Trailer(ikey); kind == keys.KindDelete {
		return nil, true, nil // tombstone
	}
	return value, true, nil
}

// Has reports whether key exists.
func (db *DB) Has(key []byte) (bool, error) {
	_, err := db.Get(key)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}
