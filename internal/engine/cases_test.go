package engine

import (
	"testing"
	"time"

	"xpointdb/internal/costmodel"
	"xpointdb/internal/sim"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
	"xpointdb/internal/workload"
)

// simEnv builds a simulated DB environment for engine-level tests.
type simEnv struct {
	k   *sim.Kernel
	dev *storage.Device
	fs  *vfs.MemFS
	o   Options
}

func newSimEnv(profile storage.Profile, tweak func(*Options)) *simEnv {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	dev := storage.New(k, profile)
	fs := vfs.NewMem(dev)
	o := DefaultOptions(fs)
	o.Clock = k
	o.CostModel = costmodel.Default()
	o.MemtableSize = 256 << 10
	o.TargetFileSize = 256 << 10
	o.BaseLevelBytes = 512 << 10
	if tweak != nil {
		tweak(&o)
	}
	return &simEnv{k: k, dev: dev, fs: fs, o: o}
}

// TestThrottleEngagesUnderWritePressure drives heavy writes on a
// bandwidth-starved device and verifies Algorithm 1 kicks in: stall
// delay accumulates and the write controller leaves the clear state.
func TestThrottleEngagesUnderWritePressure(t *testing.T) {
	prof := storage.XPoint().Scaled(64) // very slow background bandwidth
	env := newSimEnv(prof, func(o *Options) {
		o.L0SlowdownTrigger = 6
		o.L0StopTrigger = 12
	})
	var delayed int64
	env.k.Run(func() {
		db, err := Open(env.o)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		defer db.Close()
		res := workload.Run(env.k, db, workload.Config{
			Workers:   4,
			ReadRatio: 0.05,
			Duration:  8 * time.Second,
			KeySpace:  20000,
			ValueSize: 1024,
			Seed:      11,
		})
		if res.Errors > 0 {
			t.Errorf("workload errors: %d", res.Errors)
		}
		delayed = db.Metrics().StallDelayTotal.Load()
	})
	if delayed == 0 {
		t.Fatal("no throttle delay accumulated under heavy writes")
	}
}

// TestTwoStageKeepsHigherFloor compares worst-second throughput of the
// two throttle modes under the same bursty load (case study A).
func TestTwoStageKeepsHigherFloor(t *testing.T) {
	if raceEnabled {
		t.Skip("minute-scale simulated workload is too slow under the race detector")
	}
	run := func(mode throttle.Mode) float64 {
		env := newSimEnv(storage.XPoint().Scaled(64), func(o *Options) {
			o.ThrottleMode = mode
			o.TwoStageFloorRate = o.DelayedWriteRate / 2
			// A distant stop threshold keeps the comparison inside
			// the throttling regime: if L0 blows past the two-stage
			// midpoint (or the stop line), both controllers behave
			// identically and the comparison is vacuous.
			o.L0SlowdownTrigger = 6
			o.L0StopTrigger = 400
		})
		var min float64
		env.k.Run(func() {
			db, err := Open(env.o)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			defer db.Close()
			res := workload.Run(env.k, db, workload.Config{
				Workers:   4,
				ReadRatio: 0.5,
				Duration:  30 * time.Second,
				KeySpace:  20000,
				ValueSize: 1024,
				Seed:      5,
				Burst: &workload.BurstConfig{
					Period:         10 * time.Second,
					BurstLen:       4 * time.Second,
					BurstReadRatio: 0.05,
				},
			})
			min = res.Series.MinRate(2*time.Second, 29*time.Second)
		})
		return min
	}
	a1 := run(throttle.ModeAlgorithm1)
	ts := run(throttle.ModeTwoStage)
	t.Logf("worst-second: algorithm1=%.0f op/s, two-stage=%.0f op/s", a1, ts)
	// End-to-end the two controllers interleave with stop stalls and
	// compaction scheduling, so this asserts non-inferiority of the
	// worst second (the precise stage-1-floor > decayed-rate property
	// is asserted in the throttle unit tests, and the near-stop
	// removal is Figure 18's experiment).
	if ts < a1*0.75 {
		t.Fatalf("two-stage floor (%.0f) clearly below algorithm1 (%.0f)", ts, a1)
	}
}

// TestAdaptiveL0AdjustsBudget verifies case study B's controller moves
// the memtable budget with the observed mix.
func TestAdaptiveL0AdjustsBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("minute-scale simulated workload is too slow under the race detector")
	}
	env := newSimEnv(storage.XPoint(), func(o *Options) {
		o.AdaptiveL0 = true
		o.AdaptiveL0Aggregate = 24 << 20
		o.AdaptiveWindow = time.Second
	})
	env.k.Run(func() {
		db, err := Open(env.o)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		defer db.Close()
		// Write-heavy phase → small memtables (aggregate/24 = 1 MiB).
		workload.Run(env.k, db, workload.Config{
			Workers: 2, ReadRatio: 0.05, Duration: 3 * time.Second,
			KeySpace: 5000, ValueSize: 1024, Seed: 1,
		})
		if got := db.MemtableBudget(); got != (24<<20)/24 {
			t.Errorf("write-heavy budget = %d, want %d", got, (24<<20)/24)
		}
		// Read-heavy phase → large memtables (aggregate/6 = 4 MiB).
		workload.Run(env.k, db, workload.Config{
			Workers: 2, ReadRatio: 0.95, Duration: 3 * time.Second,
			KeySpace: 5000, ValueSize: 1024, Seed: 2,
		})
		if got := db.MemtableBudget(); got != (24<<20)/6 {
			t.Errorf("read-heavy budget = %d, want %d", got, (24<<20)/6)
		}
	})
}

// TestWALDeviceIsolation (case study C): WAL traffic goes to the WAL
// device; SST traffic goes to the data device.
func TestWALDeviceIsolation(t *testing.T) {
	env := newSimEnv(storage.XPoint(), nil)
	walDev := storage.New(env.k, storage.NVM())
	env.o.WALFS = vfs.NewMem(walDev)
	env.k.Run(func() {
		db, err := Open(env.o)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		defer db.Close()
		for i := 0; i < 2000; i++ {
			if err := db.Put(workload.Key(i), workload.Value(i, 1024)); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	})
	if walDev.Stats().Writes == 0 {
		t.Fatal("WAL device idle")
	}
	if env.dev.Stats().Writes == 0 {
		t.Fatal("data device idle (flushes should land there)")
	}
}

// TestWaitingWritersGaugeRises: with many concurrent writers the
// time-weighted queue depth must be visible (Figure 16's metric).
func TestWaitingWritersGaugeRises(t *testing.T) {
	env := newSimEnv(storage.SATAFlash(), nil)
	var mean float64
	env.k.Run(func() {
		db, err := Open(env.o)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		defer db.Close()
		workload.Run(env.k, db, workload.Config{
			Workers: 16, ReadRatio: 0.5, Duration: 3 * time.Second,
			KeySpace: 5000, ValueSize: 1024, Seed: 9,
		})
		mean = db.Metrics().WaitingWriters.Mean()
	})
	if mean <= 0 {
		t.Fatalf("waiting-writers mean = %f", mean)
	}
}

// TestFasterDeviceQueuesMoreWriters reproduces Finding #3's mechanism:
// at equal thread counts, the faster device (quicker reads → higher
// write arrival pressure) accumulates at least as many waiting writers.
func TestFasterDeviceQueuesMoreWriters(t *testing.T) {
	if raceEnabled {
		t.Skip("minute-scale simulated workload is too slow under the race detector")
	}
	run := func(p storage.Profile) float64 {
		env := newSimEnv(p, nil)
		var mean float64
		env.k.Run(func() {
			db, err := Open(env.o)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			defer db.Close()
			if err := workload.Preload(db, 5000, 1024); err != nil {
				t.Errorf("preload: %v", err)
				return
			}
			workload.Run(env.k, db, workload.Config{
				Workers: 32, ReadRatio: 0.5, Duration: 4 * time.Second,
				KeySpace: 5000, ValueSize: 1024, Seed: 13,
			})
			mean = db.Metrics().WaitingWriters.Mean()
		})
		return mean
	}
	sata := run(storage.SATAFlash())
	xp := run(storage.XPoint())
	t.Logf("mean waiting writers: sata=%.2f xpoint=%.2f", sata, xp)
	if xp < sata {
		t.Fatalf("xpoint queued fewer writers (%.2f) than sata (%.2f)", xp, sata)
	}
}

// TestStopStallBlocksAndRecovers: with a tiny stop threshold, writes
// must stall (recording stop episodes) and still complete.
func TestStopStallBlocksAndRecovers(t *testing.T) {
	env := newSimEnv(storage.XPoint().Scaled(64), func(o *Options) {
		o.L0CompactionTrigger = 2
		o.L0SlowdownTrigger = 3
		o.L0StopTrigger = 4
		o.ThrottleMode = throttle.ModeNone // isolate the stop path
	})
	var stops int64
	env.k.Run(func() {
		db, err := Open(env.o)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		defer db.Close()
		for i := 0; i < 8000; i++ {
			if err := db.Put(workload.Key(i), workload.Value(i, 1024)); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
		}
		stops = db.Metrics().StallStops.Load()
	})
	if stops == 0 {
		t.Fatal("no stop stalls recorded despite tiny thresholds")
	}
}

// TestMemtableBudgetChangeTakesEffect: SetMemtableBudget applies at the
// next switch.
func TestMemtableBudgetChangeTakesEffect(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	db.SetMemtableBudget(32 << 10)
	// Fill past the new budget; the memtable must switch at ~32 KiB.
	for i := 0; i < 2000; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitForFlush(t, db)
	if f := db.Metrics().Flushes.Load(); f < 2 {
		t.Fatalf("expected several small flushes, got %d", f)
	}
}

// TestManualFlush: Flush rotates the memtable and drains immutables.
func TestManualFlush(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	if err := db.Flush(); err != nil {
		t.Fatalf("flush of empty db: %v", err)
	}
	if db.Metrics().Flushes.Load() != 0 {
		t.Fatal("empty flush wrote a file")
	}
	for i := 0; i < 50; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if db.Metrics().Flushes.Load() != 1 {
		t.Fatalf("flushes = %d, want 1", db.Metrics().Flushes.Load())
	}
	if db.NumLevelFiles(0) == 0 {
		t.Fatal("no L0 file after manual flush")
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d after flush: %v", i, err)
		}
	}
}

// TestManualFlushConcurrentWithWrites: Flush in the middle of a write
// storm must not lose or duplicate anything.
func TestManualFlushConcurrentWithWrites(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 1500; i++ {
			if err := db.Put(testKey(i), testValue(i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 5; i++ {
		if err := db.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
	}
}

// TestCompressedDB: the whole engine works with flate-compressed SSTs.
func TestCompressedDB(t *testing.T) {
	db, fs := newTestDB(t, func(o *Options) {
		o.Compression = 1 // sstable.FlateCompression
	})
	const n = 2000
	for i := 0; i < n; i++ {
		// Compressible values.
		v := append(testValue(i), make([]byte, 200)...)
		if err := db.Put(testKey(i), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := db.Get(testKey(i))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if len(v) != len(testValue(i))+200 {
			t.Fatalf("value %d truncated", i)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery over compressed tables.
	opts := DefaultOptions(fs)
	opts.MemtableSize = 64 << 10
	opts.Compression = 1
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get(testKey(n / 2)); err != nil {
		t.Fatalf("Get after reopen: %v", err)
	}
}

// TestMetricsReadPathCounters: hits land in the right bucket.
func TestMetricsReadPathCounters(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	db.Put([]byte("memkey"), []byte("v"))
	if _, err := db.Get([]byte("memkey")); err != nil {
		t.Fatal(err)
	}
	if db.Metrics().GetHitMemtable.Load() != 1 {
		t.Fatal("memtable hit not counted")
	}
	if _, err := db.Get([]byte("absent")); err != ErrNotFound {
		t.Fatal(err)
	}
	if db.Metrics().GetMisses.Load() != 1 {
		t.Fatal("miss not counted")
	}
}
