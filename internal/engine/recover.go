package engine

import (
	"errors"
	"fmt"
	"io"

	"xpointdb/internal/batch"
	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
	"xpointdb/internal/memtable"
	"xpointdb/internal/vfs"
	"xpointdb/internal/wal"
)

// replayLogInto applies every batch in a WAL file to mem, skipping
// batches at or below baseSeq (already durable in SSTs). It returns
// the highest sequence number applied. A torn tail (wal.ErrCorrupt)
// ends the replay cleanly, matching the crash-recovery contract: only
// fully synced records are promised.
func replayLogInto(f vfs.File, mem *memtable.Memtable, baseSeq uint64) (uint64, error) {
	r := wal.NewReader(f)
	maxSeq := baseSeq
	for {
		rec, err := r.ReadRecord()
		if errors.Is(err, io.EOF) || errors.Is(err, wal.ErrCorrupt) {
			return maxSeq, nil
		}
		if err != nil {
			return maxSeq, err
		}
		b, err := batch.FromRepr(rec)
		if err != nil {
			// A decodable-record/corrupt-batch combination means
			// real corruption, not a torn tail.
			return maxSeq, fmt.Errorf("engine: corrupt batch in wal: %w", err)
		}
		seq := b.Sequence()
		applyErr := b.Iterate(func(kind keys.Kind, key, value []byte) error {
			if seq > baseSeq {
				mem.Add(seq, kind, key, value)
			}
			seq++
			return nil
		})
		if applyErr != nil {
			return maxSeq, applyErr
		}
		if seq-1 > maxSeq {
			maxSeq = seq - 1
		}
	}
}

// flushMemToL0 writes mem as one Level-0 SST and commits the edit.
// Used by recovery, before background workers exist. editExtra, if
// non-nil, is merged into the committed edit.
func (db *DB) flushMemToL0(mem *memtable.Memtable, editExtra *manifest.Edit) error {
	num := db.vs.AllocFileNum()
	db.emitFlushBegin("recovery", 0, mem.ApproximateSize(), 0)
	start := db.clk.Now()
	meta, err := db.buildTable(num, newMemIter(mem))
	if err != nil {
		db.emitFlushEnd("recovery", 0, num, 0, 0, db.clk.Now().Sub(start), err)
		return err
	}
	edit := &manifest.Edit{Added: []manifest.AddedFile{{Level: 0, Meta: meta}}}
	if editExtra != nil {
		edit.LogNum = editExtra.LogNum
		edit.Added = append(edit.Added, editExtra.Added...)
		edit.Deleted = append(edit.Deleted, editExtra.Deleted...)
	}
	seq := db.vs.LastSeq
	edit.LastSeq = &seq
	err = db.vs.LogAndApply(edit)
	db.emitFlushEnd("recovery", 0, num, meta.Size,
		db.vs.Current().NumFiles(0), db.clk.Now().Sub(start), err)
	return err
}
