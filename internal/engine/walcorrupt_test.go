package engine

import (
	"errors"
	"strings"
	"testing"

	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// corruptByte flips one bit of name at offset off. MemFS files are
// append-only, so this copies, mutates, and rewrites the file.
func corruptByte(t *testing.T, fs *vfs.MemFS, name string, off int64) {
	t.Helper()
	sz, err := fs.Size(name)
	if err != nil {
		t.Fatalf("size %s: %v", name, err)
	}
	if off < 0 {
		off += sz
	}
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	data := make([]byte, sz)
	if _, err := f.ReadAt(data, 0); err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	f.Close()
	data[off] ^= 0x40
	if err := fs.Remove(name); err != nil {
		t.Fatalf("remove %s: %v", name, err)
	}
	w, err := fs.Create(name)
	if err != nil {
		t.Fatalf("recreate %s: %v", name, err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatalf("rewrite %s: %v", name, err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync %s: %v", name, err)
	}
	w.Close()
}

func findLog(t *testing.T, fs *vfs.MemFS) string {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	var logs []string
	for _, n := range names {
		if strings.HasSuffix(n, ".log") {
			logs = append(logs, n)
		}
	}
	if len(logs) != 1 {
		t.Fatalf("want exactly one WAL, got %v", logs)
	}
	return logs[0]
}

func reopenTestDB(t *testing.T, fs *vfs.MemFS) *DB {
	t.Helper()
	opts := DefaultOptions(fs)
	opts.MemtableSize = 64 << 10
	opts.ThrottleMode = throttle.ModeNone
	opts.SyncWAL = true
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return db
}

// TestWALTailCorruptionRecovery: a bit flip in the last WAL record —
// the classic torn-tail shape — must truncate replay at that record,
// losing only the final batch, and leave a fully writable DB.
func TestWALTailCorruptionRecovery(t *testing.T) {
	db, fs := newTestDB(t, nil)
	const n = 50
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	corruptByte(t, fs, findLog(t, fs), -2)

	db2 := reopenTestDB(t, fs)
	for i := 0; i < n-1; i++ {
		v, err := db2.Get(testKey(i))
		if err != nil || string(v) != string(testValue(i)) {
			t.Fatalf("Get(key%d) after tail corruption = (%q, %v)", i, v, err)
		}
	}
	if _, err := db2.Get(testKey(n - 1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(key%d) = %v, want ErrNotFound (record was corrupt)", n-1, err)
	}

	// The recovered DB accepts and persists new writes.
	if err := db2.Put([]byte("fresh"), []byte("value")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if err := db2.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	db3 := reopenTestDB(t, fs)
	defer db3.Close()
	if v, err := db3.Get([]byte("fresh")); err != nil || string(v) != "value" {
		t.Fatalf("Get(fresh) after second reopen = (%q, %v)", v, err)
	}
	if v, err := db3.Get(testKey(0)); err != nil || string(v) != string(testValue(0)) {
		t.Fatalf("Get(key0) after second reopen = (%q, %v)", v, err)
	}
}

// TestWALMidRecordCorruption: corruption in the middle of the log stops
// replay at the damaged record. Everything before it survives, nothing
// after it does — the recovered state is a clean prefix, never a state
// with holes.
func TestWALMidRecordCorruption(t *testing.T) {
	db, fs := newTestDB(t, nil)
	const n = 50
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	name := findLog(t, fs)
	sz, err := fs.Size(name)
	if err != nil {
		t.Fatalf("size: %v", err)
	}
	corruptByte(t, fs, name, sz/2)

	db2 := reopenTestDB(t, fs)
	defer db2.Close()

	present := 0
	for i := 0; i < n; i++ {
		_, err := db2.Get(testKey(i))
		switch {
		case err == nil:
			if present != i {
				t.Fatalf("key%d present but key%d missing: recovered state has a hole", i, present)
			}
			present++
		case errors.Is(err, ErrNotFound):
			// prefix ended; all subsequent keys must also be missing,
			// which the present != i check above enforces.
		default:
			t.Fatalf("Get(key%d): %v", i, err)
		}
	}
	if present == 0 || present == n {
		t.Fatalf("recovered %d/%d keys; mid-log corruption should lose a strict suffix", present, n)
	}
	if err := db2.Put([]byte("fresh"), []byte("value")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
}
