package engine

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/events"
	"xpointdb/internal/obs"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

// TestPrometheusGolden renders the full /metrics exposition of a DB
// that has done real work and runs it through the strict parser: every
// family well-formed, every histogram's bucket invariants intact, and
// the counters the report audit cares about all present exactly once.
func TestPrometheusGolden(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	for i := 0; i < 2000; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	for i := 0; i < 500; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("get: %v", err)
		}
	}

	var buf bytes.Buffer
	db.WritePrometheus(&buf)
	fams, err := obs.ParsePromText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	byName := map[string]*obs.PromFamily{}
	for _, f := range fams {
		if _, dup := byName[f.Name]; dup {
			t.Errorf("family %s declared twice", f.Name)
		}
		byName[f.Name] = f
	}

	// The audit list: every engine counter surfaced in Report() must
	// appear in the exposition, including the integrity set.
	mustHave := []string{
		"xpointdb_ops_total", "xpointdb_write_ops_total",
		"xpointdb_get_latency_seconds", "xpointdb_write_latency_seconds",
		"xpointdb_flush_latency_seconds", "xpointdb_compaction_latency_seconds",
		"xpointdb_wal_sync_latency_seconds",
		"xpointdb_flushes_total", "xpointdb_compactions_total",
		"xpointdb_stall_delay_seconds_total", "xpointdb_stall_stops_total",
		"xpointdb_level_files", "xpointdb_level_compactions_total",
		"xpointdb_level_written_bytes_total",
		"xpointdb_scrub_passes_total", "xpointdb_scrubbed_bytes_total",
		"xpointdb_corruptions_detected_total", "xpointdb_files_quarantined_total",
		"xpointdb_corruptions_repaired_total", "xpointdb_data_loss_events_total",
		"xpointdb_slow_ops_total", "xpointdb_events_dropped_total",
		"xpointdb_health", "xpointdb_uptime_seconds",
		"xpointdb_space_used_bytes", "xpointdb_space_reserved_bytes",
		"xpointdb_space_budget_bytes", "xpointdb_enospc_errors_total",
		"xpointdb_space_deferrals_total", "xpointdb_space_waits_total",
		"xpointdb_space_recoveries_total",
	}
	for _, name := range mustHave {
		if _, ok := byName[name]; !ok {
			t.Errorf("family %s missing from exposition", name)
		}
	}

	// Spot-check values against the live counters.
	s := db.Metrics().Snapshot()
	if got := byName["xpointdb_flushes_total"].Samples[0].Value; got != float64(s.Flushes) {
		t.Errorf("flushes_total = %v, metrics say %d", got, s.Flushes)
	}
	gl := byName["xpointdb_get_latency_seconds"]
	var count float64
	for _, smp := range gl.Samples {
		if strings.HasSuffix(smp.Name, "_count") {
			count = smp.Value
		}
	}
	if count != float64(s.Gets) {
		t.Errorf("get_latency count = %v, metrics say %d", count, s.Gets)
	}
}

// TestSlowOpTracing: with a threshold of 1ns every op is slow, and
// each promoted event must carry the full stage breakdown even though
// CollectPerf is off.
func TestSlowOpTracing(t *testing.T) {
	buf := &events.Buffer{}
	db, _ := newTestDB(t, func(o *Options) {
		o.EventListener = buf
		o.EventSinkQueue = -1
		o.SlowOpThreshold = time.Nanosecond
	})
	defer db.Close()

	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := db.Get([]byte("k")); err != nil {
		t.Fatalf("get: %v", err)
	}

	var sawGet, sawWrite bool
	for _, e := range buf.Events() {
		if e.Kind != events.KindSlowOp {
			continue
		}
		so := e.SlowOp
		if so.ThresholdUS != 0 {
			t.Errorf("1ns threshold rounds to %dµs, want 0", so.ThresholdUS)
		}
		if len(so.Stages) == 0 {
			t.Errorf("slow_op %q has no stage breakdown", so.Op)
		}
		switch so.Op {
		case "get":
			sawGet = true
		case "write":
			sawWrite = true
			if so.Batch != 1 {
				t.Errorf("write slow_op batch = %d, want 1", so.Batch)
			}
		}
	}
	if !sawGet || !sawWrite {
		t.Fatalf("missing slow_op events: get=%v write=%v", sawGet, sawWrite)
	}
	if db.Metrics().SlowOps.Load() < 2 {
		t.Errorf("SlowOps = %d, want >= 2", db.Metrics().SlowOps.Load())
	}
}

// TestSyncEventsBarrier: with the async sink (the default), SyncEvents
// must make everything emitted so far visible to the listener without
// closing the DB.
func TestSyncEventsBarrier(t *testing.T) {
	buf := &events.Buffer{}
	db, _ := newTestDB(t, func(o *Options) { o.EventListener = buf })
	defer db.Close()

	for i := 0; i < 500; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	db.SyncEvents()
	var sawFlush bool
	for _, e := range buf.Events() {
		if e.Kind == events.KindFlushEnd {
			sawFlush = true
		}
	}
	if !sawFlush {
		t.Fatalf("flush_end not visible to async sink after SyncEvents (%d events)", buf.Len())
	}
}

// blockingSink blocks every Emit until released — the pathological
// JSON-lines sink (full disk, hung NFS) the bounded queue exists for.
type blockingSink struct {
	release chan struct{}
	n       int64
	mu      sync.Mutex
}

func (b *blockingSink) Emit(events.Event) {
	<-b.release
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// TestEventSinkBackpressureDrops: a wedged sink must never block the
// write path; overflow is counted in Metrics.EventsDropped.
func TestEventSinkBackpressureDrops(t *testing.T) {
	sink := &blockingSink{release: make(chan struct{})}
	db, _ := newTestDB(t, func(o *Options) {
		o.EventListener = sink
		o.EventSinkQueue = 2
		o.SlowOpThreshold = time.Nanosecond // every op emits an event
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if err := db.Put(testKey(i), testValue(i)); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("write path blocked on a wedged event sink")
	}
	if db.Metrics().EventsDropped.Load() == 0 {
		t.Error("no drops counted despite a wedged sink and a queue of 2")
	}
	close(sink.release) // un-wedge so Close can drain
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestObsPlaneUnderLoad is the race-mode hammer: a live HTTP ops
// server, concurrent /metrics scrapes (each response strictly parsed),
// /events subscribers churning connect/disconnect, and StatsReport
// calls — all against a DB running a mixed workload.
func TestObsPlaneUnderLoad(t *testing.T) {
	buf := &events.Buffer{}
	db, _ := newTestDB(t, func(o *Options) {
		o.ObsAddr = "127.0.0.1:0"
		o.EventListener = buf
		o.SlowOpThreshold = time.Nanosecond // constant event traffic
	})
	addr := db.ObsAddr()
	if addr == "" {
		t.Fatal("ObsAddr empty with ObsAddr option set")
	}
	base := "http://" + addr

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Mixed workload.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := testKey((i*7 + w*1000) % 3000)
				if i%2 == 0 {
					if err := db.Put(k, testValue(i)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				} else if _, err := db.Get(k); err != nil && err != ErrNotFound {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}

	// Scrapers: every response must parse.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					t.Errorf("GET /metrics: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if _, err := obs.ParsePromText(bytes.NewReader(body)); err != nil {
					t.Errorf("scrape does not parse: %v", err)
					return
				}
			}
		}()
	}

	// SSE churn: connect, read a little, disconnect.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			req, _ := http.NewRequest("GET", base+"/events", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("GET /events: %v", err)
				return
			}
			b := make([]byte, 4096)
			_, _ = resp.Body.Read(b)
			resp.Body.Close()
		}
	}()

	// Stats and health pollers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = db.StatsReport()
			_ = db.LevelStats().String()
			resp, err := http.Get(base + "/healthz")
			if err != nil {
				t.Errorf("GET /healthz: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("healthz = %d", resp.StatusCode)
				return
			}
		}
	}()

	time.Sleep(1 * time.Second)
	close(stop)
	wg.Wait()

	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// After Close the server must be down and the sink fully drained.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("ops server still answering after Close")
	}
	var slow int
	for _, e := range buf.Events() {
		if e.Kind == events.KindSlowOp {
			slow++
		}
	}
	if slow == 0 {
		t.Error("no slow_op events reached the async sink")
	}
}

// TestObsAddrConflict: a second DB asking for the same port must fail
// Open cleanly (no leaked workers, no leaked hub goroutine).
func TestObsAddrConflict(t *testing.T) {
	db1, _ := newTestDB(t, func(o *Options) { o.ObsAddr = "127.0.0.1:0" })
	defer db1.Close()

	var second *DB
	_, err := func() (*DB, error) {
		db2, err := openSecondOnAddr(db1.ObsAddr())
		second = db2
		return db2, err
	}()
	if err == nil {
		second.Close()
		t.Fatal("Open succeeded with a conflicting ObsAddr")
	}
	if !strings.Contains(err.Error(), "ops server") {
		t.Errorf("error %q does not mention the ops server", err)
	}
}

func openSecondOnAddr(addr string) (*DB, error) {
	dev := storage.New(clock.Real{}, storage.Null())
	opts := DefaultOptions(vfs.NewMem(dev))
	opts.ObsAddr = addr // already bound by the first DB
	return Open(opts)
}
