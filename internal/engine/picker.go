package engine

import (
	"bytes"
	"sort"

	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
)

// compactionPicker is the compaction POLICY: given a version (and the
// live snapshots), decide what to compact next and in what shape —
// which files, whether the job is a pure trivial move, and how the key
// range splits into parallel sub-ranges. It never does I/O and never
// looks at db state beyond what is passed in, so policy changes stay
// local to this file (KV-Tandem's policy/mechanism split). All methods
// are called with db.mu held; picked compactions carry a reference on
// their base version.
type compactionPicker struct {
	opts *Options

	// cursor[l] is the largest user key of the last finished level-l
	// compaction; the next level-l pick resumes strictly after it,
	// wrapping to the start when nothing follows (RocksDB's
	// per-level compact cursor). Key-based, not index-based: file
	// slices change under a stored index, which can re-pick the same
	// file while its neighbors starve.
	cursor [manifest.NumLevels][]byte
}

func newCompactionPicker(opts *Options) *compactionPicker {
	return &compactionPicker{opts: opts}
}

// subrange is one disjoint slice of a compaction's user-key space:
// keys in [start, end), nil meaning unbounded. inputs are the
// participating files that can hold keys in the range (a wide file
// appears in several subranges; each reads only its window of it).
type subrange struct {
	start, end []byte
	inputs     []*manifest.FileMeta
}

// pick selects the most urgent compaction against v, or nil. The
// returned compaction has its shape (trivial move / sub-ranges)
// resolved and base referenced.
func (p *compactionPicker) pick(v *manifest.Version, snaps []uint64) *compaction {
	// Level-0: file-count triggered (the paper's central pressure
	// source — L0 files accumulate per flush and are merged into L1).
	if v.NumFiles(0) >= p.opts.L0CompactionTrigger {
		inputs := append([]*manifest.FileMeta(nil), v.Files[0]...)
		smallest, largest := keyRangeOf(inputs)
		c := &compaction{
			level:       0,
			outputLevel: 1,
			score:       float64(v.NumFiles(0)) / float64(p.opts.L0CompactionTrigger),
			inputs:      inputs,
			overlaps:    v.Overlaps(1, smallest, largest),
			base:        v,
			snaps:       snaps,
		}
		// Pin the base version for the whole run: a concurrent flush
		// install may drop the current version, and with it the last
		// reference to the input files, while the merge is reading them.
		c.base.Ref()
		return p.finalize(c)
	}

	// Deeper levels: size triggered, worst score first.
	bestLevel, bestScore := -1, 1.0
	for l := 1; l < manifest.NumLevels-1; l++ {
		if v.NumFiles(l) == 0 {
			continue
		}
		score := float64(v.LevelBytes(l)) / float64(levelTargetBytes(p.opts, l))
		if score > bestScore {
			bestScore, bestLevel = score, l
		}
	}
	if bestLevel < 0 {
		return nil
	}
	in := p.nextAtLevel(v, bestLevel)
	smallest, largest := keyRangeOf([]*manifest.FileMeta{in})
	c := &compaction{
		level:       bestLevel,
		outputLevel: bestLevel + 1,
		score:       bestScore,
		inputs:      []*manifest.FileMeta{in},
		overlaps:    v.Overlaps(bestLevel+1, smallest, largest),
		base:        v,
		snaps:       snaps,
	}
	c.base.Ref() // see the L0 pick above
	return p.finalize(c)
}

// nextAtLevel returns the round-robin choice at a level ≥ 1: the first
// file whose largest user key sorts strictly after the cursor, wrapping
// to the first file when the cursor is past everything. Files at these
// levels are sorted and disjoint, so this resumes exactly after the
// last compacted range no matter how the slice shifted since.
func (p *compactionPicker) nextAtLevel(v *manifest.Version, level int) *manifest.FileMeta {
	files := v.Files[level]
	cur := p.cursor[level]
	if cur != nil {
		for _, f := range files {
			if keys.CompareUserKeys(keys.UserKey(f.Largest), cur) > 0 {
				return f
			}
		}
	}
	return files[0]
}

// pickRange builds a compaction over the level's files intersecting
// the user-key range [start, limit] (manual CompactRange). Returns nil
// when the level holds nothing in range.
func (p *compactionPicker) pickRange(v *manifest.Version, level int, start, limit []byte, snaps []uint64) *compaction {
	var inputs []*manifest.FileMeta
	if level == 0 {
		// L0 files overlap each other: take them all, as the L0 pick
		// does, so no older version of a key is left above a newer one.
		for _, f := range v.Files[0] {
			if rangesOverlap(keys.UserKey(f.Smallest), keys.UserKey(f.Largest), start, limit) {
				inputs = append([]*manifest.FileMeta(nil), v.Files[0]...)
				break
			}
		}
	} else {
		for _, f := range v.Files[level] {
			if rangesOverlap(keys.UserKey(f.Smallest), keys.UserKey(f.Largest), start, limit) {
				inputs = append(inputs, f)
			}
		}
	}
	if len(inputs) == 0 {
		return nil
	}
	smallest, largest := keyRangeOf(inputs)
	c := &compaction{
		level:       level,
		outputLevel: level + 1,
		score:       1.0,
		inputs:      inputs,
		overlaps:    v.Overlaps(level+1, smallest, largest),
		base:        v,
		snaps:       snaps,
	}
	c.base.Ref()
	return p.finalize(c)
}

// pickRepair builds the salvage compaction for one quarantined file:
// rewrite it (plus anything its key range shadows) so readable entries
// survive and damaged blocks are dropped. Repair runs exactly as the
// recovery worker shaped it before the picker existed: single range,
// never a trivial move (a damaged file must be rewritten, not
// relocated), recovery bypass at install.
func (p *compactionPicker) pickRepair(v *manifest.Version, level int, f *manifest.FileMeta, snaps []uint64) *compaction {
	c := &compaction{
		level:    level,
		score:    1.0,
		base:     v,
		snaps:    snaps,
		recovery: true,
	}
	if level == 0 {
		// L0 files overlap arbitrarily; rewriting one in isolation
		// could surface older versions. Take all of L0 into L1.
		c.outputLevel = 1
		c.inputs = append([]*manifest.FileMeta(nil), v.Files[0]...)
		smallest, largest := keyRangeOf(c.inputs)
		c.overlaps = v.Overlaps(1, smallest, largest)
	} else if level == manifest.NumLevels-1 {
		// Bottom level: rewrite in place.
		c.outputLevel = level
		c.inputs = []*manifest.FileMeta{f}
	} else {
		c.outputLevel = level + 1
		c.inputs = []*manifest.FileMeta{f}
		smallest, largest := keyRangeOf(c.inputs)
		c.overlaps = v.Overlaps(level+1, smallest, largest)
	}
	c.base.Ref()
	// Deliberately not finalized: no trivial move, no splitting —
	// salvage reads damaged files and must keep the drop-bad-blocks
	// merge loop in one deterministic pass.
	return c
}

// noteCompacted records a finished level-l job so the next pick at
// that level resumes strictly after it. Called under db.mu only when
// the job installed successfully; a failed job retries the same range.
func (p *compactionPicker) noteCompacted(c *compaction) {
	if c.level < 1 || len(c.inputs) == 0 {
		return
	}
	_, largest := keyRangeOf(c.inputs)
	p.cursor[c.level] = append([]byte(nil), largest...)
}

// finalize resolves the picked compaction's execution shape: a trivial
// move when no merging is needed, otherwise up to MaxSubcompactions
// disjoint key sub-ranges.
func (p *compactionPicker) finalize(c *compaction) *compaction {
	if p.isTrivialMove(c) {
		c.trivialMove = true
		return c
	}
	c.subs = splitSubranges(c, p.opts.MaxSubcompactions)
	return c
}

// isTrivialMove reports whether c can be executed as a pure manifest
// edit: the inputs land in the output level byte-for-byte unchanged.
// Requires zero output-level overlap (nothing to merge with) and a
// real level change. Dropping deletes or shadowed versions is an
// optimization, not an obligation, so skipping the rewrite is always
// correct — the keys' relative order and visibility are unchanged.
func (p *compactionPicker) isTrivialMove(c *compaction) bool {
	if c.recovery || len(c.overlaps) > 0 || c.outputLevel == c.level || len(c.inputs) == 0 {
		return false
	}
	if c.level == 0 && len(c.inputs) > 1 {
		// L0 files may overlap each other; moving several into L1
		// together could break L1's disjointness invariant.
		return false
	}
	for _, f := range c.inputs {
		if f.Quarantined() {
			// A damaged file must be rewritten, not relocated.
			return false
		}
	}
	return true
}

// splitSubranges partitions the compaction's user-key space into at
// most maxSub disjoint [start, end) sub-ranges, splitting only at
// participating files' smallest user keys. Splitting at file
// boundaries keeps every version of one user key in exactly one
// sub-range (files never split a user key across themselves — the
// engine's own output invariant), so each sub-merge sees all versions
// of every key it owns and snapshot-stripe logic stays local.
func splitSubranges(c *compaction, maxSub int) []subrange {
	all := make([]*manifest.FileMeta, 0, len(c.inputs)+len(c.overlaps))
	all = append(all, c.inputs...)
	all = append(all, c.overlaps...)
	if maxSub <= 1 || len(all) <= 1 {
		return []subrange{{inputs: all}}
	}

	// Candidate split points: each file's smallest user key, minus the
	// global minimum (a split there would leave an empty first range).
	globalMin, _ := keyRangeOf(all)
	seen := make(map[string]bool, len(all))
	cands := make([][]byte, 0, len(all))
	for _, f := range all {
		k := keys.UserKey(f.Smallest)
		if bytes.Equal(k, globalMin) || seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		cands = append(cands, k)
	}
	sort.Slice(cands, func(i, j int) bool { return bytes.Compare(cands[i], cands[j]) < 0 })

	k := maxSub
	if k > len(cands)+1 {
		k = len(cands) + 1
	}
	if k <= 1 {
		return []subrange{{inputs: all}}
	}
	bounds := make([][]byte, 0, k-1)
	for j := 1; j < k; j++ {
		// Evenly spaced over the candidates; floor(j·m/k) is strictly
		// increasing for k ≤ m+1, so the bounds are distinct.
		bounds = append(bounds, cands[j*len(cands)/k])
	}

	subs := make([]subrange, 0, k)
	for i := 0; i < k; i++ {
		var s, e []byte
		if i > 0 {
			s = bounds[i-1]
		}
		if i < k-1 {
			e = bounds[i]
		}
		var in []*manifest.FileMeta
		for _, f := range all {
			if e != nil && keys.CompareUserKeys(keys.UserKey(f.Smallest), e) >= 0 {
				continue
			}
			if s != nil && keys.CompareUserKeys(keys.UserKey(f.Largest), s) < 0 {
				continue
			}
			in = append(in, f)
		}
		if len(in) == 0 {
			continue
		}
		subs = append(subs, subrange{start: s, end: e, inputs: in})
	}
	return subs
}

// rangesOverlap reports whether user-key ranges [as, al] and [bs, bl]
// intersect; nil bs/bl mean unbounded on that side.
func rangesOverlap(as, al, bs, bl []byte) bool {
	if bl != nil && bytes.Compare(as, bl) > 0 {
		return false
	}
	if bs != nil && bytes.Compare(al, bs) < 0 {
		return false
	}
	return true
}

// levelTargetBytes returns the size target for a level ≥ 1 given opts
// (the picker-side twin of DB.targetLevelBytes).
func levelTargetBytes(opts *Options, level int) int64 {
	t := opts.BaseLevelBytes
	for l := 1; l < level; l++ {
		t *= int64(opts.LevelMultiplier)
	}
	return t
}
