package engine

import (
	"fmt"
	"testing"
	"time"
)

func TestSnapshotIsolatesReads(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	db.Put([]byte("k"), []byte("v1"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("v2"))
	db.Put([]byte("new"), []byte("x"))

	v, err := snap.Get([]byte("k"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("snapshot Get = %q, %v", v, err)
	}
	if _, err := snap.Get([]byte("new")); err != ErrNotFound {
		t.Fatalf("snapshot sees later key: %v", err)
	}
	// Live reads see the new state.
	v, err = db.Get([]byte("k"))
	if err != nil || string(v) != "v2" {
		t.Fatalf("live Get = %q, %v", v, err)
	}
}

func TestSnapshotSeesThroughDelete(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	db.Put([]byte("k"), []byte("alive"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Delete([]byte("k"))

	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Fatalf("live read after delete: %v", err)
	}
	v, err := snap.Get([]byte("k"))
	if err != nil || string(v) != "alive" {
		t.Fatalf("snapshot read after delete = %q, %v", v, err)
	}
}

func TestSnapshotSurvivesFlushAndCompaction(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.MemtableSize = 16 << 10
		o.TargetFileSize = 32 << 10
		o.BaseLevelBytes = 64 << 10
	})
	defer db.Close()

	const key = "pinned"
	db.Put([]byte(key), []byte("old-version"))
	snap := db.NewSnapshot()
	defer snap.Release()

	// Overwrite the key many times and churn enough data to drive
	// flushes and compactions that would normally collapse versions.
	for round := 0; round < 5; round++ {
		db.Put([]byte(key), []byte(fmt.Sprintf("new-%d", round)))
		for i := 0; i < 1200; i++ {
			if err := db.Put(testKey(i), testValue(i+round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Wait for compactions to run.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && db.Metrics().Compactions.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if db.Metrics().Compactions.Load() == 0 {
		t.Fatal("no compaction ran; test needs churn")
	}

	v, err := snap.Get([]byte(key))
	if err != nil || string(v) != "old-version" {
		t.Fatalf("snapshot version lost through compaction: %q, %v\n%s", v, err, db.DebugLayout())
	}
	v, err = db.Get([]byte(key))
	if err != nil || string(v) != "new-4" {
		t.Fatalf("live version = %q, %v", v, err)
	}
}

func TestSnapshotIterConsistent(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put(testKey(i), testValue(i))
	}
	snap := db.NewSnapshot()
	defer snap.Release()
	for i := 0; i < 100; i++ {
		db.Put(testKey(i), []byte("mutated"))
	}
	db.Put(testKey(200), []byte("extra"))

	it, err := snap.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Value()) != string(testValue(n)) {
			t.Fatalf("snapshot iter value[%d] = %q", n, it.Value())
		}
		n++
	}
	if n != 100 {
		t.Fatalf("snapshot iter saw %d keys, want 100", n)
	}
}

func TestReleasedSnapshotVersionsCollapse(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	db.Put([]byte("k"), []byte("v1"))
	snap := db.NewSnapshot()
	snap.Release()
	db.snapsMu.Lock()
	n := len(db.snapshots)
	db.snapsMu.Unlock()
	if n != 0 {
		t.Fatalf("snapshot still registered after release: %d", n)
	}
	// Double release is safe.
	snap.Release()
}

func TestStripeOf(t *testing.T) {
	snaps := []uint64{10, 20, 30}
	cases := []struct {
		seq    uint64
		stripe int
	}{
		{1, 0}, {10, 0}, {11, 1}, {20, 1}, {25, 2}, {30, 2}, {31, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := stripeOf(snaps, c.seq); got != c.stripe {
			t.Errorf("stripeOf(%d) = %d, want %d", c.seq, got, c.stripe)
		}
	}
	if got := stripeOf(nil, 5); got != 0 {
		t.Errorf("stripeOf with no snaps = %d", got)
	}
}

func TestManySnapshotsManyVersions(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.MemtableSize = 8 << 10
	})
	defer db.Close()

	var snaps []*Snapshot
	for i := 0; i < 10; i++ {
		db.Put([]byte("versioned"), []byte(fmt.Sprintf("v%d", i)))
		snaps = append(snaps, db.NewSnapshot())
		// Churn to force flushes between versions.
		for j := 0; j < 200; j++ {
			db.Put(testKey(j), testValue(i*200+j))
		}
	}
	waitForFlush(t, db)
	for i, s := range snaps {
		v, err := s.Get([]byte("versioned"))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("snapshot %d sees %q, %v", i, v, err)
		}
	}
	for _, s := range snaps {
		s.Release()
	}
}
