package engine

import (
	"errors"
	"testing"

	"xpointdb/internal/clock"
	"xpointdb/internal/events"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// newFaultTestDB opens a DB on a faultfs-wrapped MemFS so tests can
// inject storage failures after open.
func newFaultTestDB(t *testing.T, tweak func(*Options)) (*DB, *faultfs.FS) {
	t.Helper()
	dev := storage.New(clock.Real{}, storage.Null())
	ffs, err := faultfs.New(vfs.NewMem(dev), 1)
	if err != nil {
		t.Fatalf("faultfs.New: %v", err)
	}
	opts := DefaultOptions(ffs)
	opts.MemtableSize = 64 << 10
	opts.ThrottleMode = throttle.ModeNone
	opts.SyncWAL = true
	// Most latch tests assert that the error STAYS latched; recovery
	// tests opt back in via tweak.
	opts.DisableAutoRecovery = true
	if tweak != nil {
		tweak(&opts)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db, ffs
}

// TestWALSyncFailureLatches is the regression test for the sync-error
// audit: a failed WAL sync must fail the requesting write AND latch a
// background error so subsequent writes fail fast, rather than
// acknowledging data the log cannot promise durable.
func TestWALSyncFailureLatches(t *testing.T) {
	buf := &events.Buffer{}
	db, ffs := newFaultTestDB(t, func(o *Options) { o.EventListener = buf; o.EventSinkQueue = -1 })
	defer db.Close()

	if err := db.Put(testKey(0), testValue(0)); err != nil {
		t.Fatalf("healthy Put: %v", err)
	}
	ffs.AddRule(faultfs.Rule{Ops: []faultfs.Op{faultfs.OpSync}, Path: "*.log", Count: 1})

	err := db.Put(testKey(1), testValue(1))
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Put during sync fault = %v, want injected error", err)
	}
	// The latch must reject the next write fast — the fault rule is
	// exhausted (Count 1), so only the latch can fail this.
	err = db.Put(testKey(2), testValue(2))
	if !errors.Is(err, ErrBackground) {
		t.Fatalf("Put after sync fault = %v, want ErrBackground", err)
	}
	if db.BackgroundError() == nil {
		t.Fatal("BackgroundError() = nil after latched WAL sync failure")
	}
	if err := db.Flush(); !errors.Is(err, ErrBackground) {
		t.Fatalf("Flush after latch = %v, want ErrBackground", err)
	}

	// Reads still serve the pre-failure state.
	if v, err := db.Get(testKey(0)); err != nil || string(v) != string(testValue(0)) {
		t.Fatalf("Get(key0) after latch = (%q, %v)", v, err)
	}
	// The failed and rejected writes were never acknowledged.
	for i := 1; i <= 2; i++ {
		if _, err := db.Get(testKey(i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(key%d) = %v, want ErrNotFound (write was never acked)", i, err)
		}
	}

	// The latch moment is in the event stream.
	found := false
	for _, e := range buf.Events() {
		if e.Kind == events.KindBackgroundError && e.BGError.Op == "wal-sync" {
			found = true
		}
	}
	if !found {
		t.Fatal("no background_error event with op=wal-sync emitted")
	}
}

// TestRotationSyncFailureLatches covers the audited path where the WAL
// rotation syncs the outgoing log: that sync's error used to be
// computed and dropped; it must latch.
func TestRotationSyncFailureLatches(t *testing.T) {
	// SyncWAL=false so the per-commit path never syncs: the only sync
	// of the outgoing log happens inside the rotation.
	db, ffs := newFaultTestDB(t, func(o *Options) {
		o.SyncWAL = false
		o.MemtableSize = 8 << 10
	})
	defer db.Close()

	ffs.AddRule(faultfs.Rule{Ops: []faultfs.Op{faultfs.OpSync}, Path: "*.log", Count: 1})

	// Fill until the memtable rotates (hitting the faulted sync) or
	// the latch rejects the write.
	var sawLatch bool
	for i := 0; i < 10000; i++ {
		err := db.Put(testKey(i), testValue(i))
		if err == nil {
			continue
		}
		if errors.Is(err, ErrBackground) || errors.Is(err, faultfs.ErrInjected) {
			sawLatch = true
			break
		}
		t.Fatalf("Put %d: unexpected error %v", i, err)
	}
	if !sawLatch {
		t.Fatal("10000 puts never triggered the rotation sync fault")
	}
	if db.BackgroundError() == nil {
		t.Fatal("BackgroundError() = nil after rotation sync failure")
	}
	if err := db.Put([]byte("after"), []byte("x")); !errors.Is(err, ErrBackground) {
		t.Fatalf("Put after rotation sync failure = %v, want ErrBackground", err)
	}
}

// TestManifestAppendFailureLatches covers the MANIFEST append/sync
// path: a version edit that cannot be made durable must latch, not
// retry into a log whose tail may hold a torn edit.
func TestManifestAppendFailureLatches(t *testing.T) {
	db, ffs := newFaultTestDB(t, nil)
	defer db.Close()

	for i := 0; i < 50; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	ffs.AddRule(faultfs.Rule{Ops: []faultfs.Op{faultfs.OpSync}, Path: "MANIFEST-*", Count: 1})

	// Force a flush: its commitEdit hits the faulted MANIFEST sync.
	// Flush surfaces the latch either as its own error or via the
	// idled flush worker.
	if err := db.Flush(); err == nil {
		t.Fatal("Flush with faulted MANIFEST sync succeeded")
	}
	if db.BackgroundError() == nil {
		t.Fatal("BackgroundError() = nil after MANIFEST sync failure")
	}
	if err := db.Put([]byte("after"), []byte("x")); !errors.Is(err, ErrBackground) {
		t.Fatalf("Put after MANIFEST failure = %v, want ErrBackground", err)
	}
	// Pre-failure data still reads.
	if v, err := db.Get(testKey(0)); err != nil || string(v) != string(testValue(0)) {
		t.Fatalf("Get(key0) after latch = (%q, %v)", v, err)
	}
}

// TestBackgroundErrorClearsOnReopen: the latch is per-instance; a
// reopen recovers to the last durable state and accepts writes again.
func TestBackgroundErrorClearsOnReopen(t *testing.T) {
	db, ffs := newFaultTestDB(t, nil)

	if err := db.Put(testKey(0), testValue(0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	rule := ffs.AddRule(faultfs.Rule{Ops: []faultfs.Op{faultfs.OpSync}, Path: "*.log", Count: 1})
	if err := db.Put(testKey(1), testValue(1)); err == nil {
		t.Fatal("Put with faulted sync succeeded")
	}
	if rule.Fired() != 1 {
		t.Fatalf("rule fired %d times, want 1", rule.Fired())
	}
	_ = db.Close()

	// Reopen from the crash image (synced state only).
	dev := storage.New(clock.Real{}, storage.Null())
	img, err := ffs.Snapshot().Materialize(dev, nil, faultfs.CrashOpts{})
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	opts := DefaultOptions(img)
	opts.ThrottleMode = throttle.ModeNone
	opts.SyncWAL = true
	db2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if db2.BackgroundError() != nil {
		t.Fatalf("fresh instance has background error: %v", db2.BackgroundError())
	}
	if v, err := db2.Get(testKey(0)); err != nil || string(v) != string(testValue(0)) {
		t.Fatalf("Get(key0) after reopen = (%q, %v)", v, err)
	}
	if err := db2.Put(testKey(2), testValue(2)); err != nil {
		t.Fatalf("Put after reopen: %v", err)
	}
}
