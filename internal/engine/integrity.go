package engine

import (
	"fmt"

	"xpointdb/internal/manifest"
)

// On-demand integrity checks (RocksDB's DB::VerifyChecksum and the
// check_consistency repair-tool pass). Both pin one SuperVersion for
// the scan, so the file set is a consistent snapshot and nothing in it
// can be deleted mid-check.

// VerifyChecksum streams every SST in the current version end to end,
// checking the whole-file checksum recorded in the manifest and every
// block's trailer CRC. It reads the device directly (the block cache is
// bypassed), so it detects media corruption even for blocks the cache
// has been serving from intact pre-damage copies. The first failure is
// returned — and simultaneously routed into the quarantine/repair
// machinery, exactly as if a query had tripped over it.
func (db *DB) VerifyChecksum() error {
	sv := db.acquireSV()
	if sv == nil {
		return ErrClosed
	}
	defer db.releaseSV(sv)
	for l := 0; l < manifest.NumLevels; l++ {
		for _, f := range sv.ver.Files[l] {
			r, err := db.tables.get(f)
			if err != nil {
				db.maybeReportCorruption(err)
				return err
			}
			if _, err := r.Verify(f.Checksum, nil); err != nil {
				db.maybeReportCorruption(err)
				return fmt.Errorf("engine: verify sst %d (L%d): %w", f.Num, l, err)
			}
		}
	}
	return nil
}

// CheckConsistency cross-checks the manifest's metadata against on-disk
// reality: every live SST must exist and have exactly the size its
// FileMeta records. It is the cheap (metadata-only) companion to
// VerifyChecksum — O(files) stat calls, no data reads — and catches
// truncation, missing files and size drift that checksumming a partial
// file would misreport as bit corruption.
func (db *DB) CheckConsistency() error {
	sv := db.acquireSV()
	if sv == nil {
		return ErrClosed
	}
	defer db.releaseSV(sv)
	for l := 0; l < manifest.NumLevels; l++ {
		for _, f := range sv.ver.Files[l] {
			name := manifest.SSTName(f.Num)
			size, err := db.fs.Size(name)
			if err != nil {
				return fmt.Errorf("engine: consistency: sst %d (L%d): %w", f.Num, l, err)
			}
			if size != f.Size {
				return fmt.Errorf("engine: consistency: sst %d (L%d): manifest records %d bytes, disk has %d",
					f.Num, l, f.Size, size)
			}
		}
	}
	return nil
}
