package engine

import (
	"bytes"

	"xpointdb/internal/iterator"
	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
	"xpointdb/internal/memtable"
	"xpointdb/internal/sstable"
)

// memIter adapts memtable.Iter to iterator.Iterator.
type memIter struct {
	it *memtable.Iter
}

func newMemIter(m *memtable.Memtable) *memIter { return &memIter{it: m.NewIter()} }

func (m *memIter) Valid() bool          { return m.it.Valid() }
func (m *memIter) SeekGE(target []byte) { m.it.SeekGE(target) }
func (m *memIter) SeekLT(target []byte) { m.it.SeekLT(target) }
func (m *memIter) SeekToFirst()         { m.it.SeekToFirst() }
func (m *memIter) SeekToLast()          { m.it.SeekToLast() }
func (m *memIter) Next()                { m.it.Next() }
func (m *memIter) Prev()                { m.it.Prev() }
func (m *memIter) Key() []byte          { return m.it.Key() }
func (m *memIter) Value() []byte        { return m.it.Value() }
func (m *memIter) Error() error         { return nil }
func (m *memIter) Close() error         { return nil }

var _ iterator.Iterator = (*memIter)(nil)

// Iter is a bidirectional iterator over the database's user keys at a
// fixed sequence snapshot, merging memtables and all levels and
// resolving versions and tombstones. It pins the SuperVersion it was
// built from for its whole lifetime, so a scan can outlive any number
// of flushes and compactions without losing an SST mid-iteration;
// Close releases the pin (a leaked iterator is reported by db.Close).
type Iter struct {
	db     *DB
	sv     *superVersion
	merged *iterator.Merging
	snap   uint64
	closed bool

	key     []byte
	value   []byte
	valid   bool
	forward bool
	err     error
}

// NewIter returns an iterator over the current database state. It
// observes a consistent snapshot: writes committed after creation are
// invisible.
func (db *DB) NewIter() (*Iter, error) {
	return db.newIterAt(db.visibleSeq.Load())
}

// newIterAt returns an iterator pinned to sequence snapshot snap. The
// SuperVersion acquired here is held until Close: its version refs
// every SST the scan may touch, so none can be deleted underneath it.
func (db *DB) newIterAt(snap uint64) (*Iter, error) {
	sv := db.acquireSV()
	if sv == nil {
		return nil, ErrClosed
	}

	var children []iterator.Iterator
	fail := func(err error) (*Iter, error) {
		for _, c := range children {
			_ = c.Close()
		}
		db.releaseSV(sv)
		return nil, err
	}
	children = append(children, newMemIter(sv.mem))
	for i := len(sv.imms) - 1; i >= 0; i-- {
		children = append(children, newMemIter(sv.imms[i].mem))
	}
	// L0: one iterator per file.
	for _, f := range sv.ver.L0Newest() {
		r, err := db.tables.get(f)
		if err != nil {
			return fail(err)
		}
		children = append(children, r.NewIter())
	}
	// L1+: one concat iterator per level. Readers are resolved eagerly
	// while the pin already protects them; the pin — not the handles —
	// is what keeps the files on disk until Close.
	for l := 1; l < manifest.NumLevels; l++ {
		files := sv.ver.Files[l]
		if len(files) == 0 {
			continue
		}
		readers := make([]*sstable.Reader, len(files))
		for i, f := range files {
			r, err := db.tables.get(f)
			if err != nil {
				return fail(err)
			}
			readers[i] = r
		}
		children = append(children, iterator.NewConcat(
			len(readers),
			func(i int) (iterator.Iterator, error) { return readers[i].NewIter(), nil },
			func(i int, target []byte) bool {
				return keys.Compare(files[i].Largest, target) >= 0
			},
		))
	}

	db.openIters.Add(1)
	return &Iter{
		db:     db,
		sv:     sv,
		merged: iterator.NewMerging(children...),
		snap:   snap,
	}, nil
}

// findNextVisible advances the underlying merged stream to the next
// visible, live user key at or after the current position.
func (it *Iter) findNextVisible() {
	it.valid = false
	for it.merged.Valid() {
		ikey := it.merged.Key()
		seq, kind := keys.Trailer(ikey)
		userKey := keys.UserKey(ikey)

		if seq > it.snap {
			// Not visible at this snapshot; try the next version of
			// the same (or a later) key.
			it.merged.Next()
			continue
		}
		if kind == keys.KindDelete {
			// Deleted: skip every remaining version of this key.
			it.skipUserKey(userKey)
			continue
		}
		// Newest visible version and it is a Set: emit.
		it.key = append(it.key[:0], userKey...)
		it.value = append(it.value[:0], it.merged.Value()...)
		it.valid = true
		return
	}
	it.err = it.merged.Error()
}

// skipUserKey advances past every remaining entry of userKey.
func (it *Iter) skipUserKey(userKey []byte) {
	skip := append([]byte(nil), userKey...)
	for it.merged.Valid() && bytes.Equal(keys.UserKey(it.merged.Key()), skip) {
		it.merged.Next()
	}
}

// findPrevVisible scans the merged stream backward for the previous
// live, visible user key. Moving backward, the versions of one user
// key arrive oldest→newest (internal order holds newest first), so the
// scan keeps overwriting the saved state for the current key group and
// decides — emit or skip — when the group ends.
func (it *Iter) findPrevVisible() {
	it.valid = false
	var (
		haveGroup bool
		groupKey  []byte
		groupKind keys.Kind
		groupVal  []byte
	)
	emit := func() bool {
		if haveGroup && groupKind == keys.KindSet {
			it.key = append(it.key[:0], groupKey...)
			it.value = append(it.value[:0], groupVal...)
			it.valid = true
			return true
		}
		return false
	}
	for it.merged.Valid() {
		ikey := it.merged.Key()
		seq, kind := keys.Trailer(ikey)
		userKey := keys.UserKey(ikey)

		if haveGroup && !bytes.Equal(userKey, groupKey) {
			if emit() {
				// merged stays at an entry of the next-smaller
				// user key; the following Prev resumes there.
				return
			}
			haveGroup = false
			continue // reprocess this entry as a new group
		}
		if seq <= it.snap {
			groupKey = append(groupKey[:0], userKey...)
			groupKind = kind
			groupVal = append(groupVal[:0], it.merged.Value()...)
			haveGroup = true
		}
		it.merged.Prev()
	}
	if !emit() {
		it.err = it.merged.Error()
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool { return it.valid && it.err == nil }

// SeekGE positions at the first user key ≥ key.
func (it *Iter) SeekGE(key []byte) {
	it.merged.SeekGE(keys.SearchKey(key, it.snap))
	it.forward = true
	it.findNextVisible()
}

// SeekLT positions at the last user key < key.
func (it *Iter) SeekLT(key []byte) {
	// SearchKey(key, MaxSeq) sorts before every entry of key, so
	// SeekLT on it lands strictly inside the previous user key.
	it.merged.SeekLT(keys.SearchKey(key, keys.MaxSeq))
	it.forward = false
	it.findPrevVisible()
}

// SeekToFirst positions at the first user key.
func (it *Iter) SeekToFirst() {
	it.merged.SeekToFirst()
	it.forward = true
	it.findNextVisible()
}

// SeekToLast positions at the last user key.
func (it *Iter) SeekToLast() {
	it.merged.SeekToLast()
	it.forward = false
	it.findPrevVisible()
}

// Next advances to the next user key.
func (it *Iter) Next() {
	if !it.Valid() {
		return
	}
	if !it.forward {
		// The stream sits before the current key after a backward
		// scan; jump past every version of the current key first.
		it.merged.SeekGE(keys.Make(it.key, 0, keys.KindDelete))
		it.forward = true
	}
	it.skipUserKey(it.key)
	it.findNextVisible()
}

// Prev moves to the previous user key.
func (it *Iter) Prev() {
	if !it.Valid() {
		return
	}
	if it.forward {
		// The stream sits at (or within) the current key after a
		// forward scan; jump before every version of it first.
		it.merged.SeekLT(keys.SearchKey(it.key, keys.MaxSeq))
		it.forward = false
	}
	it.findPrevVisible()
}

// Key returns the current user key (valid until the next move).
func (it *Iter) Key() []byte { return it.key }

// Value returns the current value (valid until the next move).
func (it *Iter) Value() []byte { return it.value }

// Error returns the first error encountered.
func (it *Iter) Error() error { return it.err }

// Close releases the iterator and its SuperVersion pin. Safe to call
// more than once. The pin is dropped only after the child iterators
// are closed — it is what keeps their tables alive.
func (it *Iter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	err := it.merged.Close()
	it.db.releaseSV(it.sv)
	it.db.openIters.Add(-1)
	return err
}
