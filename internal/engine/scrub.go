package engine

import (
	"errors"
	"time"

	"xpointdb/internal/events"
	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
)

// Background scrubber: a rate-limited worker that continuously cycles
// over every live SST verifying the whole file against its manifest
// checksum and every block against its trailer CRC. The read path only
// ever touches blocks a query needs — and the block cache means it may
// not touch the device at all — so latent media corruption in cold data
// would otherwise sit undetected until the worst moment (a compaction
// or a user read long after the damage). The scrub bounds that
// detection latency at roughly total-bytes / ScrubBytesPerSec, and
// detections route into the same quarantine/repair machinery as
// read-path failures (repair.go).

const (
	// scrubIdleDelay separates scrub passes (and precedes the first
	// one), keeping the scrubber out of the way of short-lived DBs and
	// letting the device breathe between cycles.
	scrubIdleDelay = time.Second
	// scrubQuantum slices pacing sleeps so Close is noticed promptly.
	scrubQuantum = 5 * time.Millisecond
)

// errScrubAborted aborts an in-flight Verify when the DB closes or a
// background error latches mid-pass; it is never surfaced.
var errScrubAborted = errors.New("engine: scrub pass aborted")

// scrubWorker is the background integrity process, started by Open
// unless Options.DisableScrub.
func (db *DB) scrubWorker() {
	for {
		if db.sleepRecoveryBackoff(scrubIdleDelay) {
			break // closed
		}
		db.mu.Lock()
		closed, latched := db.closed, db.bgErr != nil
		db.mu.Unlock()
		if closed {
			break
		}
		if latched {
			// Recovery owns the tree while an error is latched; scrub
			// reads would only contend with the repair.
			continue
		}
		db.runScrubPass()
	}
	db.mu.Lock()
	db.liveWorkers--
	db.bgCond.Broadcast()
	db.mu.Unlock()
}

// runScrubPass verifies every SST live at the start of the pass. Files
// are pinned one at a time — each gets a fresh SuperVersion ref for the
// duration of its verify, so a multi-second pass never holds old
// versions (and their whole file sets) alive. Files compacted away
// between the snapshot and their turn are simply skipped. The pass
// aborts at the first corruption: the detection latches the error and
// recovery repairs the tree, after which the next pass re-verifies.
func (db *DB) runScrubPass() {
	pass := int(db.metrics.ScrubPasses.Load()) + 1
	sv := db.acquireSV()
	if sv == nil {
		return
	}
	var nums []uint64
	for l := 0; l < manifest.NumLevels; l++ {
		for _, f := range sv.ver.Files[l] {
			nums = append(nums, f.Num)
		}
	}
	db.releaseSV(sv)
	db.emitScrub(events.KindScrubBegin, &events.Scrub{Pass: pass, Files: len(nums)})
	passStart := db.clk.Now()

	var scanned int64
	corruptions := 0
	for _, num := range nums {
		sv := db.acquireSV()
		if sv == nil {
			return
		}
		var meta *manifest.FileMeta
		var level int
	find:
		for l := 0; l < manifest.NumLevels; l++ {
			for _, f := range sv.ver.Files[l] {
				if f.Num == num {
					meta, level = f, l
					break find
				}
			}
		}
		if meta == nil {
			db.releaseSV(sv)
			continue
		}
		st, err := db.scrubFile(meta)
		db.releaseSV(sv)
		scanned += st
		if err == nil {
			continue
		}
		if errors.Is(err, errScrubAborted) {
			return
		}
		corruptions++
		db.emitIntegrity(events.KindScrubCorruption, &events.Integrity{
			FileNum:  meta.Num,
			Level:    level,
			Smallest: string(keys.UserKey(meta.Smallest)),
			Largest:  string(keys.UserKey(meta.Largest)),
			Detail:   err.Error(),
		})
		db.maybeReportCorruption(err)
		break
	}

	db.metrics.ScrubPasses.Add(1)
	db.metrics.ScrubPassLatency.Record(db.clk.Now().Sub(passStart))
	db.emitScrub(events.KindScrubComplete, &events.Scrub{
		Pass: pass, Files: len(nums), Bytes: scanned, Corruptions: corruptions,
	})
}

// scrubFile verifies one pinned SST through the table cache's reader.
// Verify bypasses the block cache, so damage on media is caught even
// when every query so far was served from cached (pre-damage) copies.
// Returns the bytes scanned (even on failure) for pass accounting.
func (db *DB) scrubFile(meta *manifest.FileMeta) (int64, error) {
	r, err := db.tables.get(meta)
	if err != nil {
		return 0, err
	}
	st, err := r.Verify(meta.Checksum, db.scrubPace)
	return st.Bytes, err
}

// scrubPace is the Verify pacing hook: it accounts the scanned bytes
// and sleeps n/ScrubBytesPerSec, erroring with errScrubAborted when the
// DB closes or an error latches mid-file. The owed time accumulates in
// scrubDebt and is slept only in whole quanta: per-block calls owe well
// under a millisecond each, and on a real clock that many tiny sleeps
// overshoot enough (scheduler granularity, CPU contention) to throttle
// the scrub to a small fraction of its budget.
func (db *DB) scrubPace(n int) error {
	db.metrics.ScrubbedBytes.Add(int64(n))
	db.scrubDebt += time.Duration(float64(n) / float64(db.opts.ScrubBytesPerSec) * float64(time.Second))
	for db.scrubDebt >= scrubQuantum {
		db.mu.Lock()
		stop := db.closed || db.bgErr != nil
		db.mu.Unlock()
		if stop {
			return errScrubAborted
		}
		db.clk.Sleep(scrubQuantum)
		db.scrubDebt -= scrubQuantum
	}
	return nil
}
