package engine

import (
	"fmt"
	"testing"
	"time"

	"xpointdb/internal/costmodel"
	"xpointdb/internal/sim"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
	"xpointdb/internal/workload"
)

// TestSimulatedMixedWorkload reproduces the figure-1 deadlock: 8
// concurrent workers, 1:1 mix, XPoint profile, virtual time.
func TestSimulatedMixedWorkload(t *testing.T) {
	if raceEnabled {
		t.Skip("minute-scale simulated workload is too slow under the race detector")
	}
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	dev := storage.New(k, storage.XPoint())
	fs := vfs.NewMem(dev)
	opts := DefaultOptions(fs)
	opts.Clock = k
	opts.CostModel = costmodel.Default()
	opts.MemtableSize = 2 << 20
	opts.TargetFileSize = 2 << 20
	opts.BaseLevelBytes = 8 << 20

	var db *DB
	k.OnIdle = func() {
		if db != nil {
			fmt.Printf("DEADLOCK STATE: L0=%d imms=%d stall=%v writers=%d pendingGroups=%d flushing=%v compacting=%v manifestBusy=%v closed=%v\n",
				db.vs.Current().NumFiles(0), len(db.imms), db.stallState,
				len(db.writers), len(db.pendingGroups), db.flushing, db.compacting,
				db.manifestBusy, db.closed)
			fmt.Printf("layout:\n%s", db.vs.Current().DebugString())
		}
		panic("deadlock (state dumped)")
	}
	opts.Logger = func(format string, args ...interface{}) {
		if testing.Verbose() {
			fmt.Printf("engine: "+format+"\n", args...)
		}
	}

	k.Run(func() {
		var err error
		db, err = Open(opts)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if err := workload.Preload(db, 20000, 1024); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		res := workload.Run(k, db, workload.Config{
			Workers:   8,
			ReadRatio: 0.5,
			Duration:  5 * time.Second,
			KeySpace:  20000,
			ValueSize: 1024,
			Seed:      7,
		})
		t.Logf("result: %s", res)
		if err := db.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
}
