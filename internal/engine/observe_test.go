package engine

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/costmodel"
	"xpointdb/internal/events"
	"xpointdb/internal/sim"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// TestGaugeZeroValue checks that an uninitialized Gauge (no clock) is
// usable like a zero-value Histogram instead of panicking on the nil
// clock.
func TestGaugeZeroValue(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(2)
	g.Add(-1)
	if got := g.Current(); got != 4 {
		t.Errorf("Current = %d, want 4", got)
	}
	if got := g.Max(); got != 5 {
		t.Errorf("Max = %d, want 5", got)
	}
	if got := g.Mean(); got != 0 {
		t.Errorf("Mean = %v, want 0 (no time base)", got)
	}
}

// TestMetricsSnapshotRace hammers the engine with concurrent writers
// and readers while another goroutine takes snapshots and renders
// reports; run under -race this is the data-race check for the whole
// metrics surface.
func TestMetricsSnapshotRace(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.CollectPerf = true
	})
	defer db.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("w%d-%06d", w, i))
				if err := db.Put(key, testValue(i)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				_, _ = db.Get(key)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s := db.Metrics().Snapshot()
			if s.Writes < 0 {
				t.Errorf("negative write count: %d", s.Writes)
			}
			_ = db.Metrics().Report()
			_ = db.StatsReport()
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestEventStreamBurst drives a burst of writes through a tiny
// memtable under the simulation kernel and checks the emitted event
// stream: flush begin/end pairs with their trigger, WAL syncs,
// compactions, stall-condition transitions with causes, and Algorithm
// 1 rate steps with the paper's 0.8×/1.25× factors.
func TestEventStreamBurst(t *testing.T) {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	dev := storage.New(k, storage.XPoint())
	fs := vfs.NewMem(dev)
	var buf events.Buffer

	k.Run(func() {
		opts := DefaultOptions(fs)
		opts.Clock = k
		opts.CostModel = costmodel.Default()
		opts.MemtableSize = 8 << 10
		opts.TargetFileSize = 8 << 10
		opts.BaseLevelBytes = 32 << 10
		opts.SyncWAL = true
		opts.ThrottleMode = throttle.ModeAlgorithm1
		opts.L0SlowdownTrigger = 2 // stall engages after two flushes
		opts.L0CompactionTrigger = 4
		opts.EventListener = &buf
		opts.EventSinkQueue = -1 // deterministic inline delivery for the golden log

		db, err := Open(opts)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		for i := 0; i < 1500; i++ {
			if err := db.Put(testKey(i), testValue(i)); err != nil {
				t.Errorf("Put %d: %v", i, err)
				return
			}
		}
		if err := db.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})

	evs := buf.Events()
	counts := map[events.Kind]int{}
	for i, e := range evs {
		counts[e.Kind]++
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
		if e.TS.IsZero() {
			t.Fatalf("event %d has zero timestamp", i)
		}
	}
	for _, k := range []events.Kind{
		events.KindFlushBegin, events.KindFlushEnd,
		events.KindCompactionBegin, events.KindCompactionEnd,
		events.KindStallChange, events.KindRateChange, events.KindWALSync,
	} {
		if counts[k] == 0 {
			t.Errorf("no %s events emitted (stream: %d events)", k, len(evs))
		}
	}
	if counts[events.KindFlushBegin] != counts[events.KindFlushEnd] {
		t.Errorf("flush begin/end mismatch: %d vs %d",
			counts[events.KindFlushBegin], counts[events.KindFlushEnd])
	}
	if counts[events.KindCompactionBegin] != counts[events.KindCompactionEnd] {
		t.Errorf("compaction begin/end mismatch: %d vs %d",
			counts[events.KindCompactionBegin], counts[events.KindCompactionEnd])
	}

	sawDelayed, sawDec := false, false
	for _, e := range evs {
		switch e.Kind {
		case events.KindFlushBegin:
			if e.Flush.Reason != "memtable-full" {
				t.Errorf("flush reason = %q, want memtable-full", e.Flush.Reason)
			}
			if e.Flush.Bytes <= 0 {
				t.Errorf("flush begin with no bytes: %+v", e.Flush)
			}
		case events.KindFlushEnd:
			if e.Flush.Error == "" && (e.Flush.OutputFile == 0 || e.Flush.Bytes <= 0) {
				t.Errorf("flush end missing output: %+v", e.Flush)
			}
		case events.KindCompactionEnd:
			// A trivial move re-links its inputs with zero data I/O;
			// only a merging compaction must report written bytes.
			if e.Compaction.Error == "" && !e.Compaction.TrivialMove && e.Compaction.BytesWritten <= 0 {
				t.Errorf("compaction end wrote nothing: %+v", e.Compaction)
			}
			if e.Compaction.TrivialMove && (e.Compaction.BytesRead != 0 || e.Compaction.BytesWritten != 0) {
				t.Errorf("trivial move did data I/O: %+v", e.Compaction)
			}
			if e.Compaction.Score <= 0 {
				t.Errorf("compaction without pick score: %+v", e.Compaction)
			}
		case events.KindStallChange:
			if e.Stall.From == e.Stall.To {
				t.Errorf("stall non-transition: %+v", e.Stall)
			}
			if e.Stall.To == "delayed" {
				sawDelayed = true
				if e.Stall.L0Files < 2 {
					t.Errorf("delayed stall with L0=%d below trigger", e.Stall.L0Files)
				}
			}
		case events.KindRateChange:
			r := e.Rate
			if r.Factor != throttle.Dec && r.Factor != throttle.Inc {
				t.Errorf("rate factor %v, want %v or %v", r.Factor, throttle.Dec, throttle.Inc)
			}
			if r.Behind != (r.Factor == throttle.Dec) {
				t.Errorf("rate behind=%v inconsistent with factor %v", r.Behind, r.Factor)
			}
			if r.Behind {
				sawDec = true
			}
			// NewRate is OldRate×Factor unless the controller clamps.
			want := r.OldRate * r.Factor
			if want < 1<<20 {
				want = 1 << 20
			}
			if want > 1<<30 {
				want = 1 << 30
			}
			if diff := r.NewRate - want; diff > 1 || diff < -1 {
				t.Errorf("rate step %v -> %v, want %v (factor %v)", r.OldRate, r.NewRate, want, r.Factor)
			}
		case events.KindWALSync:
			if e.WALSync.Error == "" && e.WALSync.WALNum == 0 {
				t.Errorf("wal sync without log number: %+v", e.WALSync)
			}
		}
	}
	if !sawDelayed {
		t.Error("no transition into the delayed stall state")
	}
	if !sawDec {
		t.Error("no Algorithm 1 Dec (×0.8) rate step observed")
	}
}

// TestPerfStageCoverage checks the ISSUE acceptance bound: under the
// simulation kernel (where mutex waits cost no virtual time), the
// per-stage sums must attribute the end-to-end Write and Get latency
// histograms to within 10%.
func TestPerfStageCoverage(t *testing.T) {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	dev := storage.New(k, storage.XPoint())
	fs := vfs.NewMem(dev)
	var m *Metrics

	k.Run(func() {
		opts := DefaultOptions(fs)
		opts.Clock = k
		opts.CostModel = costmodel.Default()
		opts.MemtableSize = 32 << 10
		opts.TargetFileSize = 32 << 10
		opts.BaseLevelBytes = 128 << 10
		opts.SyncWAL = true
		opts.CollectPerf = true

		db, err := Open(opts)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		const n = 2000
		for i := 0; i < n; i++ {
			if err := db.Put(testKey(i), testValue(i)); err != nil {
				t.Errorf("Put %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 500; i++ {
			if _, err := db.Get(testKey(i * 3 % n)); err != nil {
				t.Errorf("Get %d: %v", i, err)
				return
			}
		}
		m = db.Metrics()
		if err := db.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})

	if m.PerfWriteOps.Load() == 0 || m.PerfReadOps.Load() == 0 {
		t.Fatalf("CollectPerf aggregated no ops: writes=%d reads=%d",
			m.PerfWriteOps.Load(), m.PerfReadOps.Load())
	}
	checkCoverage := func(name string, e2e, stages time.Duration) {
		t.Helper()
		if e2e <= 0 {
			t.Fatalf("%s: no end-to-end time recorded", name)
		}
		ratio := float64(stages) / float64(e2e)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: stage sum %v covers %.1f%% of end-to-end %v, want within 10%%",
				name, stages, 100*ratio, e2e)
		}
	}
	checkCoverage("write", m.WriteLatency.Sum(), m.writeStageSum())
	checkCoverage("read", m.GetLatency.Sum(), m.readStageSum())
}

// TestPerfContextExplicit exercises the caller-supplied accumulating
// PerfContext path of GetWithPerf/ApplyWithPerf.
func TestPerfContextExplicit(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()

	var wpc PerfContext
	var b1, b2 batch.Batch
	b1.Put([]byte("a"), []byte("1"))
	b2.Put([]byte("b"), []byte("2"))
	if err := db.ApplyWithPerf(&b1, true, &wpc); err != nil {
		t.Fatalf("ApplyWithPerf: %v", err)
	}
	afterOne := wpc
	if err := db.ApplyWithPerf(&b2, true, &wpc); err != nil {
		t.Fatalf("ApplyWithPerf: %v", err)
	}
	if wpc.WriteStages() < afterOne.WriteStages() {
		t.Errorf("write PerfContext did not accumulate: %v then %v",
			afterOne.WriteStages(), wpc.WriteStages())
	}
	if db.Metrics().PerfWriteOps.Load() != 2 {
		t.Errorf("PerfWriteOps = %d, want 2", db.Metrics().PerfWriteOps.Load())
	}

	if err := db.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var rpc PerfContext
	if _, err := db.GetWithPerf([]byte("a"), &rpc); err != nil {
		t.Fatalf("GetWithPerf: %v", err)
	}
	if rpc.BloomChecks == 0 && rpc.L0Probes == 0 {
		t.Errorf("flushed read probed nothing: %+v", rpc)
	}
	if rpc.String() == "" {
		t.Error("PerfContext.String is empty")
	}
	if db.Metrics().PerfReadOps.Load() != 1 {
		t.Errorf("PerfReadOps = %d, want 1", db.Metrics().PerfReadOps.Load())
	}
}

// syncWriter is a concurrency-safe io.Writer for the stats worker to
// dump into.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestStatsWorkerPeriodicDump runs the periodic reporter under the
// simulation kernel: an idle stretch of virtual time must produce the
// expected number of dumps, and Close must stop the worker.
func TestStatsWorkerPeriodicDump(t *testing.T) {
	k := sim.New(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	dev := storage.New(k, storage.Null())
	fs := vfs.NewMem(dev)
	var out syncWriter

	k.Run(func() {
		opts := DefaultOptions(fs)
		opts.Clock = k
		opts.StatsDumpInterval = time.Second
		opts.StatsWriter = &out
		db, err := Open(opts)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		for i := 0; i < 50; i++ {
			if err := db.Put(testKey(i), testValue(i)); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
		k.Sleep(3500 * time.Millisecond)
		if err := db.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})

	dumps := strings.Count(out.String(), "--- stats @ ")
	if dumps < 3 {
		t.Errorf("got %d periodic dumps over 3.5s of virtual time, want >= 3\n%s", dumps, out.String())
	}
	if !strings.Contains(out.String(), "** Engine stats") {
		t.Errorf("dump missing metrics report:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "controller     :") {
		t.Errorf("dump missing controller line:\n%s", out.String())
	}
}

// TestMetricsReportContents sanity-checks the one-shot report text.
func TestMetricsReportContents(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) { o.CollectPerf = true })
	defer db.Close()

	for i := 0; i < 200; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	rep := db.Metrics().Report()
	for _, want := range []string{"gets", "writes", "write stages", "read stages", "flush"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	full := db.StatsReport()
	for _, want := range []string{"lsm", "controller", "block cache"} {
		if !strings.Contains(full, want) {
			t.Errorf("stats report missing %q:\n%s", want, full)
		}
	}
}
