package engine

import (
	"bytes"
	"fmt"

	"xpointdb/internal/iterator"
	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
	"xpointdb/internal/sstable"
	"xpointdb/internal/vfs"
)

// compactionStats summarizes one compaction job for events and
// metrics; partial values are reported when the job fails mid-way.
type compactionStats struct {
	read    int64
	written int64
	outputs int
	entries int64
	// subs is how many sub-compactions the job ran (0 for a trivial
	// move, 1 for an unsplit merge).
	subs int
}

// subResult collects one sub-compaction's products for the job-level
// rollup and the all-or-nothing install.
type subResult struct {
	outputs []*manifest.FileMeta
	outNums []uint64
	read    int64
	written int64
	entries int64
	err     error
}

// runCompactionJob is the compaction MECHANISM: execute a picked
// compaction — as a pure manifest edit for a trivial move, otherwise
// as up to MaxSubcompactions concurrent bounded merge loops — and
// install ONE atomic version edit for the whole job, so a crash at any
// point leaves either the old version or the new one, never a mix.
// Called without db.mu; the caller holds db.compacting.
func (db *DB) runCompactionJob(c *compaction) (stats compactionStats, err error) {
	if c.trivialMove {
		return db.runTrivialMove(c)
	}
	subs := c.subs
	if len(subs) == 0 {
		all := make([]*manifest.FileMeta, 0, len(c.inputs)+len(c.overlaps))
		all = append(all, c.inputs...)
		all = append(all, c.overlaps...)
		subs = []subrange{{inputs: all}}
	}
	stats.subs = len(subs)

	// Extra lanes come from the shared pool non-blockingly: idle slots
	// speed the job up, but a queued flush (strictly higher priority)
	// keeps its claim on every free token. Without a pool the job owns
	// the machine's parallelism question alone and fans out fully.
	lanes := 1
	if len(subs) > 1 {
		lanes = len(subs)
		if db.opts.BGPool != nil {
			db.mu.Lock()
			prio := db.compactPriorityLocked(c.score)
			db.mu.Unlock()
			extra := db.opts.BGPool.TryAcquireN(prio, len(subs)-1, db.opts.StallSource)
			if extra > 0 {
				defer db.opts.BGPool.ReleaseN(extra)
			}
			lanes = 1 + extra
		}
	}

	results := make([]subResult, len(subs))
	if lanes == 1 {
		for i := range subs {
			db.runSubcompaction(c, subs[i], &results[i])
			if results[i].err != nil {
				break // later subs never ran; nothing of theirs to clean
			}
		}
	} else {
		// The caller's goroutine is one lane; the rest are spawned via
		// the engine clock so the fan-out works under the sim kernel.
		// Lanes dispense sub-range indices from a shared counter and
		// stop claiming new ones after the first failure (in-flight
		// subs finish; their outputs are cleaned up below).
		m := db.clk.NewMutex()
		done := db.clk.NewCond(m)
		next, running, failed := 0, lanes, false
		lane := func() {
			m.Lock()
			for !failed && next < len(subs) {
				i := next
				next++
				m.Unlock()
				db.runSubcompaction(c, subs[i], &results[i])
				m.Lock()
				if results[i].err != nil {
					failed = true
				}
			}
			running--
			if running == 0 {
				done.Broadcast()
			}
			m.Unlock()
		}
		for i := 1; i < lanes; i++ {
			db.clk.Go("subcompact", lane)
		}
		lane()
		m.Lock()
		for running > 0 {
			done.Wait()
		}
		m.Unlock()
	}

	var outNums []uint64
	var firstErr error
	for i := range results {
		r := &results[i]
		stats.read += r.read
		stats.written += r.written
		stats.outputs += len(r.outputs)
		stats.entries += r.entries
		outNums = append(outNums, r.outNums...)
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	if len(subs) > 1 {
		db.metrics.Subcompactions.Add(int64(len(subs)))
	}

	// Outputs never installed in a version have no reference protecting
	// them — on failure they are removed here, unless a manifest-install
	// error is latched (the durable manifest may already name them; see
	// canDeleteFailedOutputLocked).
	cleanup := func() {
		db.mu.Lock()
		del := db.canDeleteFailedOutputLocked()
		db.mu.Unlock()
		if !del {
			return
		}
		for _, n := range outNums {
			_ = db.spaceRemove(db.fs, manifest.SSTName(n))
		}
	}
	if firstErr != nil {
		cleanup()
		return stats, firstErr
	}

	// One edit for the whole job: every input (and shadowed
	// output-level file) out, every sub-compaction's outputs in.
	// Sub-ranges are disjoint in user-key space and results are rolled
	// up in range order, so the output-level invariants hold.
	edit := &manifest.Edit{}
	for _, f := range c.inputs {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: c.level, Num: f.Num})
	}
	for _, f := range c.overlaps {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: c.outputLevel, Num: f.Num})
	}
	for i := range results {
		for _, f := range results[i].outputs {
			edit.Added = append(edit.Added, manifest.AddedFile{Level: c.outputLevel, Meta: f})
		}
	}
	if err := db.commitEditWith(edit, c.recovery); err != nil {
		cleanup()
		return stats, err
	}
	db.metrics.CompactionBytesRead.Add(stats.read)
	db.metrics.CompactionBytesWritten.Add(stats.written)
	db.metrics.CompactionEntriesMerged.Add(stats.entries)
	db.opts.logf("compacted L%d→L%d: %d in (%d B), %d out (%d B), %d sub(s)",
		c.level, c.outputLevel, len(c.inputs)+len(c.overlaps), stats.read,
		stats.outputs, stats.written, len(subs))
	return stats, nil
}

// runTrivialMove relocates c's inputs to the output level with a pure
// manifest edit: same FileMeta (same refcount identity, same on-disk
// bytes), zero data I/O. Correct because nothing at the output level
// overlaps the inputs — no keys to merge, no versions to collapse —
// and dropping tombstones or shadowed versions is an optimization a
// later rewrite still gets to make.
func (db *DB) runTrivialMove(c *compaction) (stats compactionStats, err error) {
	edit := &manifest.Edit{}
	var moved int64
	for _, f := range c.inputs {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: c.level, Num: f.Num})
		edit.Added = append(edit.Added, manifest.AddedFile{Level: c.outputLevel, Meta: f})
		moved += f.Size
	}
	if err := db.commitEditWith(edit, c.recovery); err != nil {
		return stats, err
	}
	stats.outputs = len(c.inputs)
	db.metrics.TrivialMoves.Add(int64(len(c.inputs)))
	db.opts.logf("moved L%d→L%d: %d file(s), %d B (trivial, no I/O)",
		c.level, c.outputLevel, len(c.inputs), moved)
	return stats, nil
}

// runSubcompaction merges one sub-range of the job's inputs into new
// files at c.outputLevel, writing products into res. It is the
// pre-split merge loop bounded to user keys in [sub.start, sub.end):
// inputs are bulk-read (only the byte window the bounds can touch),
// outputs cut at user-key boundaries, snapshot stripes and tombstone
// elision per key. It installs nothing — the job-level edit does.
// Safe to run concurrently with other sub-compactions: shared state is
// touched only under db.mu (file-number allocation) or via atomics.
func (db *DB) runSubcompaction(c *compaction, sub subrange, res *subResult) {
	var startIK, endIK []byte
	if sub.start != nil {
		startIK = keys.SearchKey(sub.start, keys.MaxSeq)
	}
	if sub.end != nil {
		endIK = keys.SearchKey(sub.end, keys.MaxSeq)
	}

	// Inputs are read with one sequential bulk read per file
	// (compaction readahead): the device is charged a streaming
	// transfer instead of a random 4 KiB read per block, matching
	// how real compactions read. Bounded sub-ranges fetch only the
	// data-block window their bounds can touch.
	iters := make([]iterator.Iterator, 0, len(sub.inputs))
	for _, f := range sub.inputs {
		var (
			r    *sstable.Reader
			n    int64
			oerr error
		)
		if startIK == nil && endIK == nil {
			r, oerr = db.openCompactionInput(f)
			n = f.Size
		} else {
			r, n, oerr = db.openCompactionInputWindow(f, startIK, endIK)
		}
		if oerr != nil {
			res.err = oerr
			return
		}
		if r == nil {
			continue // no block of f intersects the range
		}
		db.pacer.Wait(db.clk, n)
		res.read += n
		iters = append(iters, r.NewIter())
	}
	if len(iters) == 0 {
		return
	}
	merged := iterator.NewMerging(iters...)
	defer merged.Close()

	var (
		builder     *sstable.Builder
		builderFile vfs.File
		curNum      uint64
		entries     int
		lastUserKey []byte
		haveLast    bool
	)
	defer func() {
		if res.err != nil && builder != nil {
			_ = builderFile.Close()
		}
	}()

	finishOutput := func() error {
		if builder == nil {
			return nil
		}
		size, ferr := builder.Finish()
		if ferr != nil {
			return ferr
		}
		if err := builderFile.Sync(); err != nil {
			return err
		}
		if db.opts.ParanoidFileChecks {
			if err := db.paranoidVerify(builderFile, size, curNum, builder.Checksum()); err != nil {
				return err
			}
		}
		if err := builderFile.Close(); err != nil {
			return err
		}
		db.spaceTrack(manifest.SSTName(curNum), size)
		db.pacer.Wait(db.clk, size)
		res.outputs = append(res.outputs, &manifest.FileMeta{
			Num:      curNum,
			Size:     size,
			Smallest: builder.Smallest(),
			Largest:  builder.Largest(),
			Checksum: builder.Checksum(),
		})
		res.written += size
		builder = nil
		return nil
	}

	// prevStripe is the snapshot stripe of the newest retained (or
	// elided-tombstone) version of lastUserKey; -1 when no version of
	// the current key has been seen yet.
	prevStripe := -1
	if startIK != nil {
		merged.SeekGE(startIK)
	} else {
		merged.SeekToFirst()
	}
	for ; merged.Valid(); merged.Next() {
		ikey := merged.Key()
		userKey := keys.UserKey(ikey)
		if sub.end != nil && keys.CompareUserKeys(userKey, sub.end) >= 0 {
			break // the rest of the key space belongs to the next sub
		}
		entries++
		if db.cost != nil && entries%compactChargeBatch == 0 {
			db.cost.ChargeCompactEntries(db.clk, compactChargeBatch)
		}

		if !haveLast || !bytes.Equal(userKey, lastUserKey) {
			// Output files may only be cut at user-key boundaries:
			// L1+ files must be disjoint in user-key space, and
			// snapshots can retain several versions of one key, so
			// cutting on size alone could strand versions of the
			// same key in adjacent files — an invalid version edit.
			if builder != nil && builder.EstimatedSize() >= db.opts.TargetFileSize {
				if err := finishOutput(); err != nil {
					res.err = err
					return
				}
			}
			lastUserKey = append(lastUserKey[:0], userKey...)
			haveLast = true
			prevStripe = -1
		}

		// Keep the newest version of the key within each snapshot
		// stripe; versions shadowed by a newer one in the same
		// stripe are invisible to every snapshot and can go.
		seq, kind := keys.Trailer(ikey)
		stripe := stripeOf(c.snaps, seq)
		if stripe == prevStripe {
			continue
		}
		prevStripe = stripe

		if kind == keys.KindDelete && stripe == 0 && db.isBaseLevel(c, userKey) {
			// Tombstone in the lowest stripe with nothing
			// underneath: elide. It still counts as the stripe's
			// retained version (older same-stripe versions stay
			// dropped), which preserves its delete semantics.
			continue
		}

		if builder == nil {
			db.mu.Lock()
			curNum = db.vs.AllocFileNum()
			db.mu.Unlock()
			res.outNums = append(res.outNums, curNum)
			f, cerr := db.fs.Create(manifest.SSTName(curNum))
			if cerr != nil {
				res.err = fmt.Errorf("engine: create compaction output: %w", cerr)
				return
			}
			builderFile = f
			builder = sstable.NewBuilder(f, sstable.BuilderOptions{
				BlockSize:       db.opts.BlockSize,
				BloomBitsPerKey: db.opts.BloomBitsPerKey,
				Compression:     db.opts.Compression,
			})
		}
		if err := builder.Add(ikey, merged.Value()); err != nil {
			res.err = err
			return
		}
	}
	if err := merged.Error(); err != nil {
		res.err = err
		return
	}
	if err := finishOutput(); err != nil {
		res.err = err
		return
	}
	if db.cost != nil {
		db.cost.ChargeCompactEntries(db.clk, entries%compactChargeBatch)
	}
	res.entries = int64(entries)
}
