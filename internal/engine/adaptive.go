package engine

// Case study B: dynamic Level-0 management. The paper's observation
// (Finding #2 / Analysis #2) is that, for a fixed aggregate Level-0
// volume V, fewer/larger L0 files favor reads (fewer tables to probe)
// while more/smaller files favor writes (shallower memtable inserts,
// shorter flushes). The adaptive worker measures the read/write mix
// over a sliding window and retunes the memtable budget — and with it
// the L0 file size — between V/ManyFiles (write-intensive) and
// V/FewFiles (read-intensive).

// adaptiveWorker runs while the DB is open, re-evaluating each window.
func (db *DB) adaptiveWorker() {
	defer func() {
		db.mu.Lock()
		db.liveWorkers--
		db.bgCond.Broadcast()
		db.mu.Unlock()
	}()
	for {
		db.clk.Sleep(db.opts.AdaptiveWindow)
		db.mu.Lock()
		closed := db.closed
		db.mu.Unlock()
		if closed {
			return
		}

		reads := db.windowReads.Swap(0)
		writes := db.windowWrites.Swap(0)
		total := reads + writes
		if total == 0 {
			continue
		}
		writeFrac := float64(writes) / float64(total)

		var target int64
		if writeFrac > db.opts.AdaptiveWriteIntensive {
			// Write-intensive: many small files.
			target = db.opts.AdaptiveL0Aggregate / int64(db.opts.AdaptiveL0ManyFiles)
		} else {
			// Read-intensive: few large files.
			target = db.opts.AdaptiveL0Aggregate / int64(db.opts.AdaptiveL0FewFiles)
		}
		if target != db.MemtableBudget() {
			db.opts.logf("adaptive L0: writeFrac=%.2f -> memtable budget %d", writeFrac, target)
			db.SetMemtableBudget(target)
		}
	}
}
