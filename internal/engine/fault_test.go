package engine

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/storage"
	"xpointdb/internal/vfs"
)

// faultFS wraps a vfs.FS and fails Create while tripped. It targets
// the background workers' error paths: flush and compaction must park,
// retry, and eventually succeed without losing data.
type faultFS struct {
	vfs.FS
	failCreates atomic.Bool
	creates     atomic.Int64
	failed      atomic.Int64
}

var errInjected = errors.New("injected create failure")

func (f *faultFS) Create(name string) (vfs.File, error) {
	f.creates.Add(1)
	if f.failCreates.Load() {
		f.failed.Add(1)
		return nil, errInjected
	}
	return f.FS.Create(name)
}

func TestFlushRetriesAfterTransientFault(t *testing.T) {
	inner := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	ffs := &faultFS{FS: inner}
	opts := DefaultOptions(ffs)
	opts.MemtableSize = 32 << 10
	opts.TargetFileSize = 32 << 10
	opts.SyncWAL = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Trip the fault, then write enough to force a rotation+flush.
	ffs.failCreates.Store(true)
	// Rotation creates a new WAL, which will also fail — so writes
	// stall. Write on a side goroutine while the fault is tripped.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 800; i++ {
			if err := db.Put(testKey(i), testValue(i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	// Give the system a moment to hit the fault, then clear it.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && ffs.failed.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	ffs.failCreates.Store(false)

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, errInjected) {
			t.Fatalf("writer failed: %v", err)
		}
		if err != nil {
			// The rotation that raced the fault surfaced the error
			// to one writer; everything after the clear must work.
			if err := db.Put([]byte("post-fault"), []byte("v")); err != nil {
				t.Fatalf("put after clearing fault: %v", err)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writes hung after fault cleared")
	}

	// All successfully acknowledged keys must be readable.
	if _, err := db.Get(testKey(0)); err != nil {
		t.Fatalf("Get after fault: %v", err)
	}
	if ffs.failed.Load() == 0 {
		t.Skip("fault window missed (timing); nothing injected")
	}
}

func TestCompactionRetriesAfterTransientFault(t *testing.T) {
	inner := vfs.NewMem(storage.New(clock.Real{}, storage.Null()))
	ffs := &faultFS{FS: inner}
	opts := DefaultOptions(ffs)
	opts.MemtableSize = 16 << 10
	opts.TargetFileSize = 16 << 10
	opts.BaseLevelBytes = 32 << 10
	opts.SyncWAL = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Build L0 pressure with the fault off so flushes succeed, then
	// trip it while compactions run.
	for i := 0; i < 1000; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.failCreates.Store(true)
	for i := 1000; i < 1100; i++ {
		db.Put(testKey(i), testValue(i)) // may fail while tripped; ok
		if i == 1020 {
			ffs.failCreates.Store(false)
		}
	}
	ffs.failCreates.Store(false)
	// Re-put the fault-window keys now that writes work again.
	for i := 1000; i < 1100; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("put after fault cleared: %v", err)
		}
	}

	// The tree must converge: compactions succeed after the fault.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if db.Metrics().Compactions.Load() > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if db.Metrics().Compactions.Load() == 0 {
		t.Fatalf("no compaction succeeded after fault cleared; layout:\n%s", db.DebugLayout())
	}
	for i := 0; i < 1100; i += 13 {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d after fault: %v", i, err)
		}
	}
}
