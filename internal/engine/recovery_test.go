package engine

import (
	"errors"
	"fmt"
	"runtime"
	"syscall"
	"testing"
	"time"

	"xpointdb/internal/events"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/vfs"
)

// waitHealthy polls until the DB reports Healthy (latch cleared, no
// soft errors, no recovery in flight) or the deadline passes. The
// fault tests run on the real clock, so polling is the only option.
func waitHealthy(t *testing.T, db *DB, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if db.Health() == Healthy {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("DB did not return to Healthy within %v: health=%v bgErr=%v",
		timeout, db.Health(), db.BackgroundError())
}

// hasRecoveryEvent reports whether buf holds a recovery event of the
// given kind, optionally filtered on the Manual flag.
func hasRecoveryEvent(buf *events.Buffer, kind events.Kind, manual bool) bool {
	for _, e := range buf.Events() {
		if e.Kind == kind && e.Recovery != nil && e.Recovery.Manual == manual {
			return true
		}
	}
	return false
}

// TestSeverityClassification pins the op→severity table: a silent
// change here changes which failures latch writes, so every row is
// spelled out.
func TestSeverityClassification(t *testing.T) {
	cause := errors.New("io fault")
	full := fmt.Errorf("write: %w", vfs.ErrNoSpace)
	cases := []struct {
		op   string
		err  error
		want Severity
	}{
		{opFlush, cause, SeveritySoft},
		{opCompaction, cause, SeveritySoft},
		{opWALRotateCreate, cause, SeveritySoft},
		{opWALAppend, cause, SeverityHard},
		{opWALSync, cause, SeverityHard},
		{opWALRotateSync, cause, SeverityHard},
		{opManifestAppend, cause, SeverityHard},
		{opManifestInstall, cause, SeverityFatal},
		{"some-new-op", cause, SeverityUnrecoverable},
		// Disk-full escalates flush/compaction to hard (retrying in
		// place cannot succeed until space frees, and the stalled write
		// path needs a latch to fail fast on); rotate-create stays soft
		// because the writer already surfaces the error synchronously.
		{opFlush, full, SeverityHard},
		{opCompaction, full, SeverityHard},
		{opWALRotateCreate, full, SeveritySoft},
		{opFlush, fmt.Errorf("sst: %w", syscall.ENOSPC), SeverityHard},
	}
	for _, c := range cases {
		if got := classifySeverity(c.op, c.err); got != c.want {
			t.Errorf("classifySeverity(%q, %v) = %v, want %v", c.op, c.err, got, c.want)
		}
	}
	if !SeveritySoft.Recoverable() || !SeverityHard.Recoverable() {
		t.Error("soft/hard must be Recoverable")
	}
	if SeverityFatal.Recoverable() || SeverityUnrecoverable.Recoverable() {
		t.Error("fatal/unrecoverable must not be Recoverable")
	}
}

// TestBackgroundErrorSentinels pins the errors.Is contract: a latched
// error matches ErrBackground plus exactly one severity sentinel, and
// unwraps to its cause.
func TestBackgroundErrorSentinels(t *testing.T) {
	cause := errors.New("device went away")
	hard := &BackgroundError{Op: opWALSync, Severity: SeverityHard, Err: cause}
	if !errors.Is(hard, ErrBackground) {
		t.Error("hard error does not match ErrBackground")
	}
	if !errors.Is(hard, ErrHardError) {
		t.Error("hard error does not match ErrHardError")
	}
	if errors.Is(hard, ErrSoftError) || errors.Is(hard, ErrFatalError) {
		t.Error("hard error matches a foreign severity sentinel")
	}
	if !errors.Is(hard, cause) {
		t.Error("hard error does not unwrap to its cause")
	}

	fatal := &BackgroundError{Op: opManifestInstall, Severity: SeverityFatal, Err: cause}
	if !errors.Is(fatal, ErrBackground) || !errors.Is(fatal, ErrFatalError) {
		t.Error("fatal error must match ErrBackground and ErrFatalError")
	}
	if errors.Is(fatal, ErrHardError) {
		t.Error("fatal error matches ErrHardError")
	}
	unrec := &BackgroundError{Op: "x", Severity: SeverityUnrecoverable, Err: cause}
	if !errors.Is(unrec, ErrFatalError) {
		t.Error("unrecoverable error must match ErrFatalError")
	}
}

// TestAutoRecoveryWALSync is the tentpole's end-to-end case: a
// transient WAL sync fault latches a hard error, the recovery worker
// rotates to a fresh WAL and flushes the poisoned log's memtable, and
// the DB returns to Healthy and writable WITHOUT a reopen. Every
// previously acknowledged write must still read back.
func TestAutoRecoveryWALSync(t *testing.T) {
	buf := &events.Buffer{}
	db, ffs := newFaultTestDB(t, func(o *Options) {
		o.DisableAutoRecovery = false
		o.RecoveryBaseBackoff = time.Millisecond
		o.EventListener = buf
		o.EventSinkQueue = -1 // asserted mid-run
	})
	defer db.Close()

	const acked = 20
	for i := 0; i < acked; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	ffs.AddRule(faultfs.Rule{
		Ops: []faultfs.Op{faultfs.OpSync}, Path: "*.log", FailNTimes: 1,
	})
	if err := db.Put(testKey(acked), testValue(acked)); err == nil {
		t.Fatal("Put during WAL sync fault succeeded")
	}

	waitHealthy(t, db, 10*time.Second)

	// Writable again on the same handle.
	if err := db.Put(testKey(acked+1), testValue(acked+1)); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	// Everything acknowledged survives; the failed write was never
	// acked and must not reappear as a zombie.
	for i := 0; i < acked; i++ {
		if v, err := db.Get(testKey(i)); err != nil || string(v) != string(testValue(i)) {
			t.Fatalf("Get(key%d) after recovery = (%q, %v)", i, v, err)
		}
	}
	if _, err := db.Get(testKey(acked)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed write reappeared after recovery: Get = %v, want ErrNotFound", err)
	}

	if !hasRecoveryEvent(buf, events.KindRecoveryBegin, false) {
		t.Error("no automatic error_recovery_begin event")
	}
	if !hasRecoveryEvent(buf, events.KindRecoverySuccess, false) {
		t.Error("no automatic error_recovery_success event")
	}
	if got := db.Metrics().RecoverySuccesses.Load(); got < 1 {
		t.Errorf("RecoverySuccesses = %d, want >= 1", got)
	}
}

// TestAutoRecoveryManifestAppend: a transient MANIFEST sync fault
// during flush latches hard; recovery rolls to a fresh MANIFEST
// (abandoning the possibly-torn tail) and drains the stuck immutable.
func TestAutoRecoveryManifestAppend(t *testing.T) {
	buf := &events.Buffer{}
	db, ffs := newFaultTestDB(t, func(o *Options) {
		o.DisableAutoRecovery = false
		o.RecoveryBaseBackoff = time.Millisecond
		o.EventListener = buf
		o.EventSinkQueue = -1 // asserted mid-run
	})
	defer db.Close()

	const acked = 50
	for i := 0; i < acked; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	ffs.AddRule(faultfs.Rule{
		Ops: []faultfs.Op{faultfs.OpSync}, Path: "MANIFEST-*", FailNTimes: 1,
	})
	// Flush may return the latched error, or nil if the recovery
	// worker wins the race and drains the immutable before Flush
	// wakes; the latch itself is asserted via the HardErrors counter.
	_ = db.Flush()

	waitHealthy(t, db, 10*time.Second)
	if got := db.Metrics().HardErrors.Load(); got < 1 {
		t.Fatalf("HardErrors = %d, want >= 1 (MANIFEST fault never latched)", got)
	}

	if err := db.Put(testKey(acked), testValue(acked)); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
	for i := 0; i <= acked; i++ {
		if v, err := db.Get(testKey(i)); err != nil || string(v) != string(testValue(i)) {
			t.Fatalf("Get(key%d) after recovery = (%q, %v)", i, v, err)
		}
	}
	if !hasRecoveryEvent(buf, events.KindRecoverySuccess, false) {
		t.Error("no automatic error_recovery_success event")
	}
}

// TestResumeAfterHeal: with auto-recovery disabled, the latch persists
// until a manual Resume, which succeeds once the fault has healed.
func TestResumeAfterHeal(t *testing.T) {
	buf := &events.Buffer{}
	db, ffs := newFaultTestDB(t, func(o *Options) { o.EventListener = buf; o.EventSinkQueue = -1 })
	defer db.Close()

	if err := db.Put(testKey(0), testValue(0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	ffs.AddRule(faultfs.Rule{
		Ops: []faultfs.Op{faultfs.OpSync}, Path: "*.log", FailNTimes: 1,
	})
	if err := db.Put(testKey(1), testValue(1)); err == nil {
		t.Fatal("Put during sync fault succeeded")
	}

	bg := db.BackgroundError()
	if !errors.Is(bg, ErrBackground) || !errors.Is(bg, ErrHardError) {
		t.Fatalf("latched error %v does not match ErrBackground+ErrHardError", bg)
	}
	if errors.Is(bg, ErrFatalError) {
		t.Fatalf("latched error %v wrongly matches ErrFatalError", bg)
	}
	if h := db.Health(); h != ReadOnly {
		t.Fatalf("Health = %v while hard error latched, want %v", h, ReadOnly)
	}

	if err := db.Resume(); err != nil {
		t.Fatalf("Resume after fault healed: %v", err)
	}
	if h := db.Health(); h != Healthy {
		t.Fatalf("Health after Resume = %v, want %v", h, Healthy)
	}
	if err := db.Put(testKey(2), testValue(2)); err != nil {
		t.Fatalf("Put after Resume: %v", err)
	}
	if v, err := db.Get(testKey(0)); err != nil || string(v) != string(testValue(0)) {
		t.Fatalf("Get(key0) after Resume = (%q, %v)", v, err)
	}
	if _, err := db.Get(testKey(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unacked write visible after Resume: %v", err)
	}

	if !hasRecoveryEvent(buf, events.KindRecoveryBegin, true) {
		t.Error("no manual error_recovery_begin event")
	}
	if !hasRecoveryEvent(buf, events.KindRecoverySuccess, true) {
		t.Error("no manual error_recovery_success event")
	}
}

// TestResumeWhileFaultPersists: Resume must return the (still) latched
// error while the underlying fault persists, then succeed once the
// rules are cleared.
func TestResumeWhileFaultPersists(t *testing.T) {
	db, ffs := newFaultTestDB(t, nil)
	defer db.Close()

	if err := db.Put(testKey(0), testValue(0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// One transient sync fault to latch, plus a persistent create
	// fault so the recovery probe (fresh WAL creation) keeps failing.
	ffs.AddRule(faultfs.Rule{
		Ops: []faultfs.Op{faultfs.OpSync}, Path: "*.log", FailNTimes: 1,
	})
	ffs.AddRule(faultfs.Rule{
		Ops: []faultfs.Op{faultfs.OpCreate}, Path: "*.log",
	})
	if err := db.Put(testKey(1), testValue(1)); err == nil {
		t.Fatal("Put during sync fault succeeded")
	}

	err := db.Resume()
	if err == nil {
		t.Fatal("Resume succeeded while the WAL-create fault persists")
	}
	if !errors.Is(err, ErrBackground) || !errors.Is(err, ErrHardError) {
		t.Fatalf("Resume error %v does not match ErrBackground+ErrHardError", err)
	}
	if db.BackgroundError() == nil {
		t.Fatal("latch cleared by a failed Resume")
	}
	if h := db.Health(); h != ReadOnly {
		t.Fatalf("Health after failed Resume = %v, want %v", h, ReadOnly)
	}

	ffs.ClearRules()
	if err := db.Resume(); err != nil {
		t.Fatalf("Resume after clearing faults: %v", err)
	}
	if err := db.Put(testKey(2), testValue(2)); err != nil {
		t.Fatalf("Put after successful Resume: %v", err)
	}
}

// TestRecoveryGiveup: the auto worker stops after MaxRecoveryAttempts
// against a persistent fault (latch intact, giveup recorded), and a
// later manual Resume still heals the DB.
func TestRecoveryGiveup(t *testing.T) {
	buf := &events.Buffer{}
	db, ffs := newFaultTestDB(t, func(o *Options) {
		o.DisableAutoRecovery = false
		o.RecoveryBaseBackoff = time.Millisecond
		o.RecoveryMaxBackoff = 2 * time.Millisecond
		o.MaxRecoveryAttempts = 3
		o.EventListener = buf
		o.EventSinkQueue = -1 // asserted mid-run
	})
	defer db.Close()

	if err := db.Put(testKey(0), testValue(0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	ffs.AddRule(faultfs.Rule{
		Ops: []faultfs.Op{faultfs.OpSync}, Path: "*.log", FailNTimes: 1,
	})
	ffs.AddRule(faultfs.Rule{
		Ops: []faultfs.Op{faultfs.OpCreate}, Path: "*.log",
	})
	if err := db.Put(testKey(1), testValue(1)); err == nil {
		t.Fatal("Put during sync fault succeeded")
	}

	deadline := time.Now().Add(10 * time.Second)
	for db.Metrics().RecoveryGiveups.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := db.Metrics().RecoveryGiveups.Load(); got != 1 {
		t.Fatalf("RecoveryGiveups = %d, want 1", got)
	}
	if got := db.Metrics().RecoveryAttempts.Load(); got < 3 {
		t.Errorf("RecoveryAttempts = %d, want >= 3", got)
	}
	if db.BackgroundError() == nil {
		t.Fatal("latch cleared despite giveup")
	}
	if !hasRecoveryEvent(buf, events.KindRecoveryGiveup, false) {
		t.Error("no error_recovery_giveup event")
	}

	// Manual Resume remains available after giveup.
	ffs.ClearRules()
	if err := db.Resume(); err != nil {
		t.Fatalf("Resume after giveup: %v", err)
	}
	waitHealthy(t, db, 10*time.Second)
	if err := db.Put(testKey(2), testValue(2)); err != nil {
		t.Fatalf("Put after post-giveup Resume: %v", err)
	}
}

// TestCloseWhileLatched is the satellite regression test: Close must
// neither deadlock nor leak goroutines when called while a background
// error is latched, the flush worker is parked on a queued immutable,
// and (in the auto case) the recovery worker is mid-backoff against a
// persistent fault.
func TestCloseWhileLatched(t *testing.T) {
	for _, auto := range []bool{false, true} {
		t.Run(fmt.Sprintf("auto=%v", auto), func(t *testing.T) {
			before := runtime.NumGoroutine()

			db, ffs := newFaultTestDB(t, func(o *Options) {
				o.DisableAutoRecovery = !auto
				o.RecoveryBaseBackoff = time.Millisecond
				o.RecoveryMaxBackoff = 50 * time.Millisecond
			})
			for i := 0; i < 50; i++ {
				if err := db.Put(testKey(i), testValue(i)); err != nil {
					t.Fatalf("Put %d: %v", i, err)
				}
			}
			// Latch via the MANIFEST so the immutable from the failed
			// flush stays queued and the flush worker parks on the
			// latch; the persistent create rule keeps recovery failing.
			ffs.AddRule(faultfs.Rule{
				Ops: []faultfs.Op{faultfs.OpSync}, Path: "MANIFEST-*", FailNTimes: 1,
			})
			ffs.AddRule(faultfs.Rule{
				Ops: []faultfs.Op{faultfs.OpCreate}, Path: "MANIFEST-*",
			})
			if err := db.Flush(); err == nil {
				t.Fatal("Flush with faulted MANIFEST succeeded")
			}
			if db.BackgroundError() == nil {
				t.Fatal("no latched error before Close")
			}

			done := make(chan error, 1)
			go func() { done <- db.Close() }()
			select {
			case err := <-done:
				if err != nil && !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("Close: %v", err)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("Close deadlocked while background error latched")
			}

			// All workers (flush, compaction, stats, recovery) must be
			// gone; allow the runtime a moment to reap them.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if runtime.NumGoroutine() <= before+2 {
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			t.Fatalf("goroutine leak after Close: before=%d after=%d",
				before, runtime.NumGoroutine())
		})
	}
}
