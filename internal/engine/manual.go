package engine

import (
	"fmt"
	"strings"
	"time"

	"xpointdb/internal/manifest"
)

// CompactRange compacts every level holding data overlapping the user
// key range [start, end] down the tree, level by level, until each
// overlapping run has been pushed one level deeper. A nil start or end
// means "from the beginning" / "to the end". Like RocksDB's
// CompactRange it first flushes the memtable, then walks levels top
// down; it returns when the requested compactions have completed.
func (db *DB) CompactRange(start, end []byte) error {
	if err := db.Flush(); err != nil {
		return err
	}
	for level := 0; level < manifest.NumLevels-1; level++ {
		if err := db.compactLevelRange(level, start, end); err != nil {
			return err
		}
	}
	return nil
}

// compactLevelRange merges the files of one level overlapping the
// range into the next level, reusing the background worker's machinery
// but running on the caller's goroutine. It serializes with the
// background compactor via the compacting flag. The pick goes through
// the picker like every other compaction, so manual jobs get trivial
// moves and sub-compaction splitting too.
func (db *DB) compactLevelRange(level int, start, end []byte) error {
	db.mu.Lock()
	for db.compacting && !db.closed {
		db.bgCond.Wait()
	}
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	c := db.picker.pickRange(db.vs.Current(), level, start, end, db.liveSnapshotSeqs())
	if c == nil {
		db.mu.Unlock()
		return nil
	}
	db.compacting = true
	db.mu.Unlock()

	err := db.executePickedCompaction(c)

	db.mu.Lock()
	db.compacting = false
	db.bgCond.Broadcast()
	db.mu.Unlock()
	if err == nil {
		db.deleteObsoleteFiles()
	}
	return err
}

// Stats renders a human-readable status report, in the spirit of
// RocksDB's GetProperty("rocksdb.stats").
func (db *DB) Stats() string {
	db.mu.Lock()
	v := db.vs.Current()
	memSize := db.mem.ApproximateSize()
	memBudget := db.memBudget
	imms := len(db.imms)
	stall := db.stallState
	db.mu.Unlock()

	m := db.metrics
	var b strings.Builder
	fmt.Fprintf(&b, "** LSM state **\n")
	fmt.Fprintf(&b, "memtable: %d/%d bytes, %d immutable(s) pending, stall=%v\n", memSize, memBudget, imms, stall)
	for l := 0; l < manifest.NumLevels; l++ {
		if v.NumFiles(l) == 0 {
			continue
		}
		fmt.Fprintf(&b, "L%d: %3d files %12d bytes\n", l, v.NumFiles(l), v.LevelBytes(l))
	}
	fmt.Fprintf(&b, "** Background **\n")
	fmt.Fprintf(&b, "flushes: %d (%d bytes)   compactions: %d (read %d, wrote %d bytes, %d entries)\n",
		m.Flushes.Load(), m.FlushBytes.Load(), m.Compactions.Load(),
		m.CompactionBytesRead.Load(), m.CompactionBytesWritten.Load(), m.CompactionEntriesMerged.Load())
	fmt.Fprintf(&b, "stalls: delay=%v stop=%v in %d episodes; delayed_write_rate=%.1f MB/s\n",
		time.Duration(m.StallDelayTotal.Load()).Round(time.Microsecond),
		time.Duration(m.StallStopTotal.Load()).Round(time.Microsecond),
		m.StallStops.Load(), db.controller.Rate()/(1<<20))
	fmt.Fprintf(&b, "** Reads **\n")
	fmt.Fprintf(&b, "get: %s\n", m.GetLatency.String())
	fmt.Fprintf(&b, "hits: mem=%d imm=%d L0=%d deep=%d miss=%d; L0 probes=%d bloom skips=%d\n",
		m.GetHitMemtable.Load(), m.GetHitImmutable.Load(), m.GetHitL0.Load(),
		m.GetHitDeep.Load(), m.GetMisses.Load(), m.L0TablesProbed.Load(), m.BloomSkips.Load())
	fmt.Fprintf(&b, "** Writes **\n")
	fmt.Fprintf(&b, "write: %s\n", m.WriteLatency.String())
	fmt.Fprintf(&b, "wal:   %s\n", m.WALLatency.String())
	fmt.Fprintf(&b, "waiting writers: mean %.2f max %d\n", m.WaitingWriters.Mean(), m.WaitingWriters.Max())
	return b.String()
}
