package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/storage"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
)

// TestSpaceManagerAccounting pins the byte bookkeeping: track, grow,
// re-track (size update, not double-count) and untrack must keep Used
// exact, and an unlimited manager never leaves StateClear.
func TestSpaceManagerAccounting(t *testing.T) {
	sm := NewSpaceManager(0, 0)
	sm.TrackFile("s0/000001.sst", 100)
	sm.TrackFile("s0/000002.log", 50)
	if got := sm.Used(); got != 150 {
		t.Fatalf("Used = %d, want 150", got)
	}
	sm.GrowFile("s0/000002.log", 25)
	if got := sm.Used(); got != 175 {
		t.Fatalf("Used after grow = %d, want 175", got)
	}
	// Re-tracking a known file replaces its size (seeding after reopen,
	// or a manifest roll re-stating the file) — it must not add.
	sm.TrackFile("s0/000001.sst", 120)
	if got := sm.Used(); got != 195 {
		t.Fatalf("Used after re-track = %d, want 195", got)
	}
	sm.UntrackFile("s0/000001.sst")
	sm.UntrackFile("s0/000001.sst") // double-untrack is a no-op
	if got := sm.Used(); got != 75 {
		t.Fatalf("Used after untrack = %d, want 75", got)
	}
	if s := sm.State(); s != throttle.StateClear {
		t.Fatalf("unlimited manager state = %v, want Clear", s)
	}
	if !sm.TryReserve(1 << 40) {
		t.Fatal("unlimited manager refused a reservation")
	}
	sm.Release(1 << 40)
}

// TestSpaceManagerLadder pins the two-stage degradation math: with
// budget b and threshold t, free ≤ b·t delays and free ≤ b·t/2 stops,
// reservations counting as consumed. Subscribers hear every transition.
func TestSpaceManagerLadder(t *testing.T) {
	// budget 1000, threshold 0.1: slow line at free=100, stop at free=50.
	sm := NewSpaceManager(1000, 0.1)
	var mu sync.Mutex
	var seen []throttle.State
	sm.subscribe(func(s throttle.State) {
		mu.Lock()
		seen = append(seen, s)
		mu.Unlock()
	})

	sm.TrackFile("f", 850) // free 150
	if s := sm.State(); s != throttle.StateClear {
		t.Fatalf("free=150: state %v, want Clear", s)
	}
	sm.GrowFile("f", 50) // free 100 — exactly the slow line
	if s := sm.State(); s != throttle.StateDelayed {
		t.Fatalf("free=100: state %v, want Delayed", s)
	}
	if !sm.TryReserve(50) { // free 50 — exactly the stop line
		t.Fatal("reservation within budget refused")
	}
	if s := sm.State(); s != throttle.StateStopped {
		t.Fatalf("free=50 (with reservation): state %v, want Stopped", s)
	}
	// A reservation that would overrun the budget defers.
	if sm.TryReserve(51) {
		t.Fatal("over-budget reservation accepted")
	}
	sm.Release(50)
	if s := sm.State(); s != throttle.StateDelayed {
		t.Fatalf("after release: state %v, want Delayed", s)
	}
	sm.SetBudget(10000) // budget raise clears the stall immediately
	if s := sm.State(); s != throttle.StateClear {
		t.Fatalf("after budget raise: state %v, want Clear", s)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []throttle.State{throttle.StateDelayed, throttle.StateStopped,
		throttle.StateDelayed, throttle.StateClear}
	if len(seen) != len(want) {
		t.Fatalf("subscriber saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("subscriber transition %d = %v, want %v (all: %v)", i, seen[i], want[i], seen)
		}
	}
}

// TestFlushDeferralOverBudget exercises the deferred-not-failed policy:
// a flush whose projected output cannot fit the space budget parks
// (SpaceDeferrals counts it) and completes once the budget grows — no
// error, no data loss.
func TestFlushDeferralOverBudget(t *testing.T) {
	db, _ := newFaultTestDB(t, func(o *Options) {
		o.MemtableSize = 16 << 10
		// Sized so the workload's WAL bytes leave less free space than
		// the flush's projected output (deferral) while staying above
		// the ladder's slow line (writes keep flowing): used ≈ 16 KiB of
		// WAL, free ≈ 48 KiB, projected ≈ 16 KiB fits — so overshoot
		// with reservations is what trips it; simplest is to shrink the
		// budget below usage right before the flush instead.
		o.MaxAllowedSpace = 1 << 30
	})
	defer db.Close()

	const n = 120
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	sm := db.SpaceManager()
	if sm == nil {
		t.Fatal("SpaceManager() = nil with MaxAllowedSpace set")
	}
	// Squeeze the budget to exactly current consumption: any projected
	// flush output now overruns it, so the manual flush must defer.
	sm.SetBudget(sm.Used() + sm.Reserved())

	flushDone := make(chan error, 1)
	go func() { flushDone <- db.Flush() }()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && db.Metrics().SpaceDeferrals.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if db.Metrics().SpaceDeferrals.Load() == 0 {
		t.Fatal("flush over budget did not defer")
	}
	select {
	case err := <-flushDone:
		t.Fatalf("deferred flush returned early: %v", err)
	default:
	}

	// Reads serve throughout the deferral.
	if _, err := db.Get(testKey(0)); err != nil {
		t.Fatalf("Get during deferral: %v", err)
	}

	sm.SetBudget(1 << 30) // operator grows the budget; the job resumes
	select {
	case err := <-flushDone:
		if err != nil {
			t.Fatalf("flush after budget raise: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deferred flush did not complete after budget raise")
	}
	if db.Metrics().Flushes.Load() == 0 {
		t.Fatal("no flush recorded after budget raise")
	}
	for i := 0; i < n; i += 7 {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d after deferral: %v", i, err)
		}
	}
}

// TestWaitForSpaceRecovery is the tentpole's squeeze/release case at
// unit scale: the filesystem quota drops below current usage, a write
// latches a disk-full hard error, reads keep serving, and once the
// quota releases the recovery worker's wait-for-space path returns the
// SAME handle to Healthy with every acknowledged write intact.
func TestWaitForSpaceRecovery(t *testing.T) {
	db, ffs := newFaultTestDB(t, func(o *Options) {
		o.DisableAutoRecovery = false
		o.RecoveryBaseBackoff = time.Millisecond
		o.RecoveryMaxBackoff = 5 * time.Millisecond
		o.MaxRecoveryAttempts = 1 << 20 // the squeeze outlasts any small budget
	})
	defer db.Close()

	const acked = 50
	for i := 0; i < acked; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}

	ffs.SetQuota(ffs.DiskUsed()) // full: syncs still pass, appends fail
	err := db.Put(testKey(acked), testValue(acked))
	if err == nil {
		t.Fatal("Put on a full disk succeeded")
	}
	if !errors.Is(err, vfs.ErrNoSpace) && !errors.Is(err, ErrBackground) {
		t.Fatalf("Put on full disk = %v, want disk-full or latched error", err)
	}

	// Reads never block on space.
	for i := 0; i < acked; i += 11 {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d during squeeze: %v", i, err)
		}
	}

	// Hold the squeeze long enough for recovery to probe and fail —
	// that is the wait-for-space loop in action.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && db.Metrics().SpaceWaits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if db.Metrics().SpaceWaits.Load() == 0 {
		t.Fatal("no failed space probe recorded while the quota held")
	}

	ffs.SetQuota(-1) // operator frees space
	waitHealthy(t, db, 10*time.Second)
	if db.Metrics().SpaceRecoveries.Load() == 0 {
		t.Fatal("no space recovery recorded after release")
	}
	if db.Metrics().EnospcErrors.Load() == 0 {
		t.Fatal("no ENOSPC error counted across the squeeze")
	}

	// Same handle, fully writable again; nothing acked was lost.
	for i := 0; i < acked; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d after recovery: %v", i, err)
		}
	}
	if err := db.Put([]byte("post-squeeze"), []byte("v")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
}

// TestSpaceRecoveryGiveupBounded pins the honest-failure half of the
// contract: when space never frees, automatic recovery stops after
// MaxRecoveryAttempts (bounded, no silent infinite retry), writes keep
// failing fast, reads keep serving — and a manual Resume after the
// space returns heals the same handle.
func TestSpaceRecoveryGiveupBounded(t *testing.T) {
	db, ffs := newFaultTestDB(t, func(o *Options) {
		o.DisableAutoRecovery = false
		o.RecoveryBaseBackoff = time.Millisecond
		o.RecoveryMaxBackoff = 2 * time.Millisecond
		o.MaxRecoveryAttempts = 4
	})
	defer db.Close()

	const acked = 30
	for i := 0; i < acked; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}

	ffs.SetQuota(ffs.DiskUsed())
	if err := db.Put(testKey(acked), testValue(acked)); err == nil {
		t.Fatal("Put on a full disk succeeded")
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && db.Metrics().RecoveryGiveups.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if db.Metrics().RecoveryGiveups.Load() == 0 {
		t.Fatalf("recovery did not give up; attempts=%d",
			db.Metrics().RecoveryAttempts.Load())
	}
	if got := db.Metrics().RecoveryAttempts.Load(); got > 4 {
		t.Fatalf("recovery attempts = %d, want ≤ MaxRecoveryAttempts (4)", got)
	}
	if db.Health() == Healthy {
		t.Fatal("Health = Healthy with the quota still squeezed")
	}
	// Post-giveup: writes fail fast with the latched error, reads serve.
	if err := db.Put([]byte("poison"), []byte("v")); !errors.Is(err, ErrBackground) {
		t.Fatalf("Put after giveup = %v, want latched background error", err)
	}
	if _, err := db.Get(testKey(0)); err != nil {
		t.Fatalf("Get after giveup: %v", err)
	}

	ffs.SetQuota(-1)
	if err := db.Resume(); err != nil {
		t.Fatalf("Resume after release: %v", err)
	}
	waitHealthy(t, db, 10*time.Second)
	for i := 0; i < acked; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d after Resume: %v", i, err)
		}
	}
	if err := db.Put([]byte("post-resume"), []byte("v")); err != nil {
		t.Fatalf("Put after Resume: %v", err)
	}
}

// TestCloseDuringSpaceWait pins Close() against the space poller: with
// the quota squeezed and recovery mid-backoff (probes failing forever),
// Close must return promptly — the backoff sleeps in quanta and every
// wait loop checks db.closed.
func TestCloseDuringSpaceWait(t *testing.T) {
	db, ffs := newFaultTestDB(t, func(o *Options) {
		o.DisableAutoRecovery = false
		o.RecoveryBaseBackoff = 5 * time.Millisecond
		o.RecoveryMaxBackoff = 50 * time.Millisecond
		o.MaxRecoveryAttempts = 1 << 20 // never give up: Close interrupts the loop
	})

	for i := 0; i < 30; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	ffs.SetQuota(ffs.DiskUsed())
	if err := db.Put([]byte("poison"), []byte("v")); err == nil {
		t.Fatal("Put on a full disk succeeded")
	}
	// Let the recovery worker engage (first probe fails, backoff arms).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && db.Metrics().SpaceWaits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	done := make(chan error, 1)
	go func() { done <- db.Close() }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrBackground) {
			t.Fatalf("Close during space wait: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung while the space poller was waiting")
	}
}

// TestCloseDuringSpaceDeferral pins Close() against a deferred flush:
// a flush parked waiting for budget headroom must notice the close and
// abandon the reservation attempt instead of blocking Close forever.
func TestCloseDuringSpaceDeferral(t *testing.T) {
	db, _ := newFaultTestDB(t, func(o *Options) {
		o.MemtableSize = 16 << 10
		o.MaxAllowedSpace = 1 << 30
	})

	for i := 0; i < 120; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	sm := db.SpaceManager()
	sm.SetBudget(sm.Used() + sm.Reserved())
	// Rotate the memtable so the flush worker picks it up and defers.
	go db.Flush() //nolint:errcheck — interrupted by Close below

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && db.Metrics().SpaceDeferrals.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if db.Metrics().SpaceDeferrals.Load() == 0 {
		t.Fatal("flush did not defer under the squeezed budget")
	}

	done := make(chan error, 1)
	go func() { done <- db.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close during deferral: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung while a flush was deferred on space")
	}
}

// TestFaultFSQuota pins the injection primitive itself: SetQuota meters
// Write/Create/Sync, DiskUsed tracks shadow bytes, EnospcCount counts
// refusals, and the error chain matches vfs.ErrNoSpace.
func TestFaultFSQuota(t *testing.T) {
	ffs := newQuotaFS(t)
	f, err := ffs.Create("a.dat")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := ffs.DiskUsed(); got != 100 {
		t.Fatalf("DiskUsed = %d, want 100", got)
	}

	ffs.SetQuota(120)
	if _, err := f.Write(make([]byte, 50)); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("over-quota Write = %v, want ErrNoSpace", err)
	}
	if _, err := f.Write(make([]byte, 20)); err != nil {
		t.Fatalf("within-quota Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync at exactly quota: %v", err)
	}
	// used == quota: creates need headroom, so they fail.
	if _, err := ffs.Create("b.dat"); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("Create at quota = %v, want ErrNoSpace", err)
	}

	// Squeeze below usage: even Sync fails (dirty pages have nowhere
	// to go), until a remove frees bytes.
	ffs.SetQuota(60)
	if err := f.Sync(); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("Sync under squeeze = %v, want ErrNoSpace", err)
	}
	if ffs.EnospcCount() < 3 {
		t.Fatalf("EnospcCount = %d, want ≥ 3", ffs.EnospcCount())
	}
	f.Close()
	if err := ffs.Remove("a.dat"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if got := ffs.DiskUsed(); got != 0 {
		t.Fatalf("DiskUsed after remove = %d, want 0", got)
	}
	g, err := ffs.Create("c.dat")
	if err != nil {
		t.Fatalf("Create after free: %v", err)
	}
	if _, err := g.Write(make([]byte, 60)); err != nil {
		t.Fatalf("Write after free: %v", err)
	}
	g.Close()
	ffs.SetQuota(-1)
	h, err := ffs.Create("d.dat")
	if err != nil {
		t.Fatalf("Create after unlimited: %v", err)
	}
	if _, err := h.Write(make([]byte, 1<<20)); err != nil {
		t.Fatalf("Write after unlimited: %v", err)
	}
	h.Close()
}

// TestSpaceStallWatchdog pins the bounded-stall contract: a space
// ladder held Stopped past SpaceStallTimeout with nothing reclaimable
// must latch ErrMaxSpaceReached (hard, disk-full class) — turning the
// silent permanent write stall into fail-fast errors — while reads keep
// serving, and a budget raise must heal the latch through wait-for-
// space recovery with nothing acknowledged lost.
func TestSpaceStallWatchdog(t *testing.T) {
	db, _ := newFaultTestDB(t, func(o *Options) {
		o.MaxAllowedSpace = 1 << 30
		o.SpaceStallTimeout = 50 * time.Millisecond
		o.DisableAutoRecovery = false
		o.RecoveryBaseBackoff = time.Millisecond
		o.RecoveryMaxBackoff = 5 * time.Millisecond
		o.MaxRecoveryAttempts = 1 << 20 // the test heals by raising the budget
	})
	defer db.Close()

	const acked = 40
	for i := 0; i < acked; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}

	// Exhaust the budget: the ladder goes Stopped and STAYS there —
	// nothing in the engine can free tracked bytes, so without the
	// watchdog this stall would never end.
	sm := db.SpaceManager()
	sm.SetBudget(sm.Used() + sm.Reserved())

	// A stalled writer must come back with the watchdog's latch, not
	// hang forever.
	errc := make(chan error, 1)
	go func() { errc <- db.Put(testKey(acked), testValue(acked)) }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Put under an exhausted budget succeeded")
		}
		if !errors.Is(err, ErrBackground) && !errors.Is(err, vfs.ErrNoSpace) {
			t.Fatalf("stalled Put = %v, want latched disk-full error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled Put never returned: space-stall watchdog did not fire")
	}
	if !errors.Is(db.BackgroundError(), vfs.ErrNoSpace) {
		t.Fatalf("latched error = %v, want ErrMaxSpaceReached (disk-full class)",
			db.BackgroundError())
	}

	// Reads keep serving under the latch.
	for i := 0; i < acked; i += 7 {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d under latch: %v", i, err)
		}
	}
	// Recovery polls but cannot heal while the budget binds: the probe
	// reports the ladder still Stopped.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && db.Metrics().SpaceWaits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if db.Metrics().SpaceWaits.Load() == 0 {
		t.Fatal("no failed space probe recorded while the budget held")
	}

	// The operator raises the budget: recovery heals on its own.
	sm.SetBudget(1 << 30)
	waitHealthy(t, db, 10*time.Second)
	if db.Metrics().SpaceRecoveries.Load() == 0 {
		t.Fatal("no space recovery recorded after the budget raise")
	}
	for i := 0; i < acked; i++ {
		if _, err := db.Get(testKey(i)); err != nil {
			t.Fatalf("Get %d after heal: %v", i, err)
		}
	}
	if err := db.Put(testKey(acked+1), testValue(acked+1)); err != nil {
		t.Fatalf("Put after heal: %v", err)
	}
}

func newQuotaFS(t *testing.T) *faultfs.FS {
	t.Helper()
	ffs, err := faultfs.New(vfs.NewMem(storage.New(clock.Real{}, storage.Null())), 1)
	if err != nil {
		t.Fatalf("faultfs.New: %v", err)
	}
	return ffs
}
