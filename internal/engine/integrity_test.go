package engine

import (
	"errors"
	"testing"
	"time"

	"xpointdb/internal/events"
	"xpointdb/internal/faultfs"
	"xpointdb/internal/manifest"
	"xpointdb/internal/sstable"
)

// fillAndFlush writes n keys and flushes them into at least one SST.
func fillAndFlush(t *testing.T, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// liveSSTName returns the name of one live SST.
func liveSSTName(t *testing.T, db *DB) string {
	t.Helper()
	db.mu.Lock()
	defer db.mu.Unlock()
	v := db.vs.Current()
	for l := 0; l < manifest.NumLevels; l++ {
		for _, f := range v.Files[l] {
			return manifest.SSTName(f.Num)
		}
	}
	t.Fatal("no live SSTs")
	return ""
}

// TestVerifyChecksumCatchesCachedCorruption is the tentpole acceptance
// check: after the block cache has served a key from an SST, silent
// media corruption of that SST is invisible to the read path (the cache
// keeps returning the intact pre-damage copy) but VerifyChecksum —
// which streams the device directly — must detect it and latch the
// corruption for quarantine/repair.
func TestVerifyChecksumCatchesCachedCorruption(t *testing.T) {
	db, fs := newTestDB(t, func(o *Options) {
		o.DisableScrub = true
		o.DisableAutoRecovery = true // assert the latch itself
	})
	defer db.Close()
	fillAndFlush(t, db, 200)

	// Pull a key through the SST so its block lands in the cache.
	if _, err := db.Get(testKey(7)); err != nil {
		t.Fatalf("Get before corruption: %v", err)
	}
	if err := db.VerifyChecksum(); err != nil {
		t.Fatalf("VerifyChecksum on healthy DB: %v", err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency on healthy DB: %v", err)
	}

	// Silent bitrot in the first data block.
	name := liveSSTName(t, db)
	if err := fs.CorruptBit(name, 3); err != nil {
		t.Fatalf("CorruptBit: %v", err)
	}

	// The cache still serves the pre-damage block: the read path cannot
	// see the rot.
	if v, err := db.Get(testKey(7)); err != nil || string(v) != string(testValue(7)) {
		t.Fatalf("cached Get after corruption = %q, %v; want clean value", v, err)
	}

	err := db.VerifyChecksum()
	if !sstable.IsCorruption(err) {
		t.Fatalf("VerifyChecksum after corruption = %v, want corruption error", err)
	}
	if got := db.metrics.CorruptionsDetected.Load(); got == 0 {
		t.Fatal("CorruptionsDetected = 0 after VerifyChecksum failure")
	}
	// The damaged file is live, so the detection must latch for repair.
	if bg := db.BackgroundError(); !errors.Is(bg, ErrHardError) {
		t.Fatalf("BackgroundError = %v, want hard corruption latch", bg)
	}
}

// TestReadPathCorruptionRepairs exercises the full transient-corruption
// cycle: a bitrotted device read fails the block checksum, the read
// errors (never wrong data), the file is quarantined, and the repair
// compaction — whose re-read sees clean bytes — salvages everything.
func TestReadPathCorruptionRepairs(t *testing.T) {
	buf := &events.Buffer{}
	db, ffs := newFaultTestDB(t, func(o *Options) {
		o.DisableAutoRecovery = false
		o.DisableScrub = true
		o.EventListener = buf
		o.EventSinkQueue = -1 // asserted mid-run
		o.RecoveryBaseBackoff = time.Millisecond
		o.RecoveryMaxBackoff = 10 * time.Millisecond
	})
	defer db.Close()
	fillAndFlush(t, db, 200)

	// One bitrotted SST read; every retry sees clean bytes.
	ffs.AddRule(faultfs.Rule{
		Ops: []faultfs.Op{faultfs.OpReadAt}, Path: "*.sst", FailNTimes: 1,
		Fault: faultfs.Fault{Bitrot: true},
	})

	// The uncached read hits the rotted block: it must error, not
	// return damaged bytes.
	v, err := db.Get(testKey(42))
	if err == nil {
		if string(v) != string(testValue(42)) {
			t.Fatalf("Get served wrong bytes under bitrot: %q", v)
		}
		// The flipped bit landed outside the probed block: detection
		// will not trigger, nothing further to assert.
		t.Skip("bitrot landed outside the probed read")
	}
	if !sstable.IsCorruption(err) && !errors.Is(err, ErrBackground) {
		t.Fatalf("Get under bitrot = %v, want corruption", err)
	}

	waitHealthy(t, db, 10*time.Second)
	if got := db.metrics.CorruptionsRepaired.Load(); got == 0 {
		t.Fatalf("CorruptionsRepaired = 0 after recovery (quarantined=%d, dataloss=%d)",
			db.metrics.FilesQuarantined.Load(), db.metrics.DataLossEvents.Load())
	}

	// Everything must still be readable and correct post-repair.
	for i := 0; i < 200; i++ {
		v, err := db.Get(testKey(i))
		if err != nil || string(v) != string(testValue(i)) {
			t.Fatalf("Get %d after repair = %q, %v", i, v, err)
		}
	}
	requireEventKinds(t, buf, events.KindQuarantine, events.KindRepair)
}

// TestScrubDetectsPersistentCorruption: the scrubber finds silent media
// damage in a cold file with no reads at all; persistent corruption
// cannot be salvaged (every re-read fails), so recovery drops the file
// and reports the precise lost key range in a data_loss event.
func TestScrubDetectsPersistentCorruption(t *testing.T) {
	buf := &events.Buffer{}
	db, fs := newTestDB(t, func(o *Options) {
		o.EventListener = buf
		o.EventSinkQueue = -1 // asserted mid-run
		o.RecoveryBaseBackoff = time.Millisecond
		o.RecoveryMaxBackoff = 10 * time.Millisecond
	})
	defer db.Close()
	fillAndFlush(t, db, 200)

	name := liveSSTName(t, db)
	if err := fs.CorruptBit(name, 3); err != nil {
		t.Fatalf("CorruptBit: %v", err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for db.metrics.DataLossEvents.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scrub never detected the corruption (passes=%d, detected=%d)",
				db.metrics.ScrubPasses.Load(), db.metrics.CorruptionsDetected.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitHealthy(t, db, 10*time.Second)

	// The data_loss event names the affected range; keys outside any
	// lost range must still read correctly.
	lost := lostRanges(buf)
	if len(lost) == 0 {
		t.Fatal("DataLossEvents > 0 but no data_loss event in buffer")
	}
	for i := 0; i < 200; i++ {
		k := testKey(i)
		v, err := db.Get(k)
		if inLostRange(lost, string(k)) {
			continue // any non-crash outcome is acceptable inside the range
		}
		if err != nil || string(v) != string(testValue(i)) {
			t.Fatalf("Get %d outside lost range = %q, %v", i, v, err)
		}
	}
	requireEventKinds(t, buf, events.KindScrubCorruption, events.KindQuarantine, events.KindDataLoss)

	// The DB must remain fully usable: writes, flushes and reads.
	for i := 200; i < 250; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatalf("Put after data loss: %v", err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush after data loss: %v", err)
	}
}

// TestScrubCompletesCleanPass: on a healthy DB the scrubber finishes
// passes and accounts the verified bytes.
func TestScrubCompletesCleanPass(t *testing.T) {
	buf := &events.Buffer{}
	db, _ := newTestDB(t, func(o *Options) {
		o.EventListener = buf
		o.EventSinkQueue = -1 // asserted mid-run
		o.ScrubBytesPerSec = 64 << 20
	})
	defer db.Close()
	fillAndFlush(t, db, 200)

	deadline := time.Now().Add(30 * time.Second)
	for db.metrics.ScrubPasses.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no scrub pass completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if db.metrics.ScrubbedBytes.Load() == 0 {
		t.Fatal("scrub pass completed but ScrubbedBytes = 0")
	}
	if db.metrics.CorruptionsDetected.Load() != 0 {
		t.Fatal("clean DB reported corruption")
	}
	requireEventKinds(t, buf, events.KindScrubBegin, events.KindScrubComplete)
}

// TestParanoidFileChecks verifies flush outputs end-to-end before
// install when the option is set, and that a clean build passes.
func TestParanoidFileChecks(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.ParanoidFileChecks = true
		o.DisableScrub = true
	})
	defer db.Close()
	fillAndFlush(t, db, 200)
	for i := 0; i < 200; i++ {
		if v, err := db.Get(testKey(i)); err != nil || string(v) != string(testValue(i)) {
			t.Fatalf("Get %d = %q, %v", i, v, err)
		}
	}
	if err := db.VerifyChecksum(); err != nil {
		t.Fatalf("VerifyChecksum: %v", err)
	}
}

// TestCheckConsistencyCatchesSizeDrift: a live SST whose on-disk size
// disagrees with the manifest is a consistency failure.
func TestCheckConsistencyCatchesSizeDrift(t *testing.T) {
	db, fs := newTestDB(t, func(o *Options) { o.DisableScrub = true })
	defer db.Close()
	fillAndFlush(t, db, 200)

	name := liveSSTName(t, db)
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := f.Write([]byte("trailing garbage")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	f.Close()

	if err := db.CheckConsistency(); err == nil {
		t.Fatal("CheckConsistency passed despite size drift")
	}
}

// requireEventKinds fails unless every kind appears in the buffer.
func requireEventKinds(t *testing.T, buf *events.Buffer, kinds ...events.Kind) {
	t.Helper()
	seen := map[events.Kind]bool{}
	for _, e := range buf.Events() {
		seen[e.Kind] = true
	}
	for _, k := range kinds {
		if !seen[k] {
			t.Errorf("event %q missing from stream", k)
		}
	}
}

// lostRanges extracts the [smallest, largest] user-key ranges from
// data_loss events.
func lostRanges(buf *events.Buffer) [][2]string {
	var out [][2]string
	for _, e := range buf.Events() {
		if e.Kind == events.KindDataLoss && e.Integrity != nil {
			out = append(out, [2]string{e.Integrity.Smallest, e.Integrity.Largest})
		}
	}
	return out
}

func inLostRange(ranges [][2]string, key string) bool {
	for _, r := range ranges {
		if key >= r[0] && key <= r[1] {
			return true
		}
	}
	return false
}
