package engine

import (
	"sync/atomic"

	"xpointdb/internal/manifest"
	"xpointdb/internal/memtable"
)

// superVersion is the RocksDB-style read-path bundle: an immutable,
// refcounted snapshot of {mutable memtable, immutable memtables,
// version} that the write path swaps atomically on every memtable
// rotation, flush install and compaction install. Readers (Get, Has,
// iterators, snapshots reads) pin the current bundle with one atomic
// load + ref and hold it for their lifetime — no db.mu on the read hot
// path, and no SST referenced by the pinned version can be deleted
// while the pin is held (deletion is purely reference-driven; see
// manifest.Version and sweepZombies).
//
// The memtable pointers are shared with the live engine state: the
// mutable memtable is a concurrent skiplist, so a bundle installed
// before a write commits still exposes that write once visibleSeq
// covers it. Every newer bundle holds a superset of the committed data
// (rotation keeps the old memtable as an immutable, a flush replaces
// an immutable with its Level-0 file, compaction preserves data), so a
// reader that loads its snapshot sequence BEFORE pinning can never
// miss a write visible at that sequence.
type superVersion struct {
	db   *DB
	mem  *memtable.Memtable
	imms []flushedMem
	ver  *manifest.Version
	// seq is the visible sequence at install time (diagnostics; reads
	// load visibleSeq themselves, before pinning).
	seq uint64

	refs atomic.Int32
}

// tryRef attempts to pin sv. It fails only when the refcount already
// hit zero — which can only happen after an installer swapped the
// DB's pointer away from sv, so the caller's reload observes a newer
// bundle.
func (sv *superVersion) tryRef() bool {
	for {
		r := sv.refs.Load()
		if r < 1 {
			return false
		}
		if sv.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// unref drops one reference and reports whether it was the final one.
// The final release drops the bundle's version reference, which may
// push newly unreachable SSTs onto the zombie list; the caller decides
// when to sweep (installers run under db.mu and defer it, readers
// sweep immediately via releaseSV).
func (sv *superVersion) unref() bool {
	n := sv.refs.Add(-1)
	if n > 0 {
		return false
	}
	if n < 0 {
		panic("engine: SuperVersion refcount below zero")
	}
	sv.ver.Unref()
	sv.db.metrics.PinnedVersions.Add(-1)
	return true
}

// acquireSV pins the current SuperVersion for a read. Returns nil when
// the DB is closed (the pointer is swapped to nil during Close). The
// retry loop is bounded: installers swap the pointer BEFORE unreffing
// the old bundle, so every tryRef failure means the reload sees a
// strictly newer install.
func (db *DB) acquireSV() *superVersion {
	for {
		sv := db.sv.Load()
		if sv == nil {
			return nil
		}
		if sv.tryRef() {
			return sv
		}
	}
}

// releaseSV drops a reader's pin. A final release means the pinned
// version just died and may have produced zombies; the reader's
// goroutine sweeps them here, off db.mu — paying for the GC its pin
// deferred.
func (db *DB) releaseSV(sv *superVersion) {
	if sv.unref() {
		db.sweepZombies()
	}
}

// installSuperVersionLocked publishes a new SuperVersion built from
// the current {mem, imms, version}. Callers hold db.mu (Open calls it
// before any concurrency exists). The new bundle is swapped in BEFORE
// the old one is unreffed so the reader acquire loop stays bounded.
// Zombies emitted by the old bundle's final release are NOT swept here
// (no I/O under db.mu); the caller's next deleteObsoleteFiles — or the
// last reader's releaseSV — collects them.
func (db *DB) installSuperVersionLocked(reason string) {
	ver := db.vs.Current()
	ver.Ref()
	sv := &superVersion{
		db:   db,
		mem:  db.mem,
		imms: append([]flushedMem(nil), db.imms...),
		ver:  ver,
		seq:  db.visibleSeq.Load(),
	}
	sv.refs.Store(1)
	db.metrics.PinnedVersions.Add(1)
	db.metrics.SuperVersionInstalls.Add(1)
	old := db.sv.Swap(sv)
	if old != nil {
		old.unref()
	}
	db.emitSuperVersionInstall(reason, len(sv.imms), ver.NumFiles(0))
}

// sweepZombies deletes every SST whose last version reference has
// dropped. This is the sole trigger for SST deletion at runtime: a
// file number reaches the zombie list exactly once, when no current or
// pinned version can reach it, so eviction may close the table reader
// outright. Safe to call from any goroutine WITHOUT db.mu (the zombie
// list has its own lock).
func (db *DB) sweepZombies() {
	zombies := db.vs.TakeZombies()
	if len(zombies) == 0 {
		return
	}
	for _, num := range zombies {
		db.tables.evict(num)
		_ = db.spaceRemove(db.fs, manifest.SSTName(num))
	}
	db.metrics.ZombieFilesDeleted.Add(int64(len(zombies)))
	db.emitObsoleteGC(zombies)
}

// canDeleteFailedOutputLocked reports whether the partial output of a
// failed flush or compaction may be removed from disk. It may NOT be
// when a manifest-install failure is latched: the edit naming the file
// was durably appended before the in-memory install diverged, so the
// next open's manifest replay will reference the file and must find
// it. Every other failure mode (build error, append failure) leaves
// the file unnamed by any durable manifest state. Callers hold db.mu.
func (db *DB) canDeleteFailedOutputLocked() bool {
	if db.bgErr == nil {
		return true
	}
	be, ok := db.bgErr.(*BackgroundError)
	return ok && be.Op != opManifestInstall
}
