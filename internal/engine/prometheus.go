package engine

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"xpointdb/internal/histogram"
)

// WritePrometheus writes every engine counter, gauge and histogram to
// w in the Prometheus text exposition format (version 0.0.4), under
// the xpointdb_ prefix with durations in seconds — the /metrics body
// of the ops plane. The output is validated structurally by the obs
// package's ParsePromText in the golden tests.
func (db *DB) WritePrometheus(w io.Writer) {
	m := db.metrics
	s := m.Snapshot()

	pw := promWriter{w: w}

	pw.gauge("xpointdb_uptime_seconds", "Engine-clock seconds since open.",
		s.Uptime.Seconds())
	health := db.Health()
	healthy := 0.0
	if health == Healthy {
		healthy = 1
	}
	pw.gaugeL("xpointdb_health", "1 when healthy; the state label carries the detail.",
		fmt.Sprintf(`state="%s"`, health), healthy)

	// Operation counts and end-to-end latency distributions.
	pw.counter("xpointdb_ops_total", "Operations served (gets + write calls).",
		float64(s.Gets+s.Writes))
	pw.counter("xpointdb_write_ops_total", "Write (Apply) calls committed.",
		float64(s.Writes))
	pw.histogram("xpointdb_get_latency_seconds", "End-to-end Get latency.",
		&m.GetLatency)
	pw.histogram("xpointdb_write_latency_seconds", "End-to-end Apply latency, including throttling and stalls.",
		&m.WriteLatency)
	pw.histogram("xpointdb_wal_group_latency_seconds", "WAL append+sync latency per commit group.",
		&m.WALLatency)

	// Background-stage latency distributions.
	pw.histogram("xpointdb_flush_latency_seconds", "Memtable flush duration (build + install).",
		&m.FlushLatency)
	pw.histogram("xpointdb_compaction_latency_seconds", "Compaction duration (read, merge, write, install).",
		&m.CompactionLatency)
	pw.histogram("xpointdb_wal_sync_latency_seconds", "WAL fsync duration.",
		&m.WALSyncLatency)
	pw.histogram("xpointdb_scrub_pass_latency_seconds", "Background scrub full-pass duration.",
		&m.ScrubPassLatency)

	// Per-operation stage breakdowns, one family with path/stage labels.
	pw.beginHistogramFamily("xpointdb_stage_seconds",
		"Per-operation stage latency from PerfContext (only ops that exercised the stage).")
	for _, st := range []struct {
		path, stage string
		h           *histogram.Histogram
	}{
		{"write", "throttle", &m.StageThrottleDelay},
		{"write", "queue", &m.StageQueueWait},
		{"write", "stall", &m.StageWriteStall},
		{"write", "wal_append", &m.StageWALAppend},
		{"write", "wal_sync", &m.StageWALSync},
		{"write", "mem_insert", &m.StageMemInsert},
		{"get", "mem_probe", &m.StageMemProbe},
		{"get", "imm_probe", &m.StageImmProbe},
		{"get", "l0_probe", &m.StageL0Probe},
		{"get", "deep_probe", &m.StageDeepProbe},
		{"get", "block_read", &m.StageBlockRead},
	} {
		pw.histogramSeries("xpointdb_stage_seconds",
			fmt.Sprintf(`path="%s",stage="%s"`, st.path, st.stage), st.h)
	}
	pw.counter("xpointdb_perf_write_ops_total", "Writes with stage timing collected.",
		float64(s.PerfWriteOps))
	pw.counter("xpointdb_perf_read_ops_total", "Gets with stage timing collected.",
		float64(s.PerfReadOps))

	// Stalls and the write queue.
	pw.counter("xpointdb_stall_delay_seconds_total", "Foreground seconds spent in controller delays.",
		s.StallDelayTotal.Seconds())
	pw.counter("xpointdb_stall_stop_seconds_total", "Foreground seconds blocked on stop conditions.",
		s.StallStopTotal.Seconds())
	pw.counter("xpointdb_stall_stops_total", "Stop-stall episodes.", float64(s.StallStops))
	pw.gauge("xpointdb_waiting_writers", "Current write-queue depth.",
		float64(m.WaitingWriters.Current()))

	// Background work.
	pw.counter("xpointdb_flushes_total", "Completed memtable flushes.", float64(s.Flushes))
	pw.counter("xpointdb_flush_bytes_total", "Bytes written to Level 0 by flushes.",
		float64(s.FlushBytes))
	pw.counter("xpointdb_compactions_total", "Completed compactions.", float64(s.Compactions))
	pw.counter("xpointdb_compaction_read_bytes_total", "Compaction input bytes read.",
		float64(s.CompactionBytesRead))
	pw.counter("xpointdb_compaction_written_bytes_total", "Compaction output bytes written.",
		float64(s.CompactionBytesWritten))
	pw.counter("xpointdb_compaction_entries_merged_total", "Entries merged by compactions.",
		float64(s.CompactionEntriesMerged))
	pw.counter("xpointdb_compaction_trivial_moves_total", "Input files moved down a level without any data I/O.",
		float64(s.TrivialMoves))
	pw.counter("xpointdb_compaction_subcompactions_total", "Sub-compaction ranges executed by parallelized jobs.",
		float64(s.Subcompactions))
	if pool := db.opts.BGPool; pool != nil {
		busy, waiting, grants := pool.Stats()
		pw.gauge("xpointdb_bgpool_busy", "Background tokens currently held (all shards).",
			float64(busy))
		pw.gauge("xpointdb_bgpool_size", "Configured background token-pool size.",
			float64(pool.Size()))
		pw.gauge("xpointdb_bgpool_waiting", "Background jobs waiting for a token (all shards).",
			float64(waiting))
		pw.counter("xpointdb_bgpool_grants_total", "Tokens granted since open (all shards).",
			float64(grants))
		shardWaiting, shardGrants := pool.TagStats(db.opts.StallSource)
		pw.gauge("xpointdb_bgpool_shard_waiting", "Background jobs from this shard waiting for a token.",
			float64(shardWaiting))
		pw.counter("xpointdb_bgpool_shard_grants_total", "Tokens granted to this shard since open.",
			float64(shardGrants))
	}

	// The per-level stats table, each column one labelled family.
	ls := db.LevelStats()
	pw.beginGaugeFamily("xpointdb_level_files", "Current SST files in the level.")
	for _, l := range ls.Levels {
		pw.sampleL("xpointdb_level_files", levelLabel(l.Level), float64(l.Files))
	}
	pw.beginGaugeFamily("xpointdb_level_bytes", "Current SST bytes in the level.")
	for _, l := range ls.Levels {
		pw.sampleL("xpointdb_level_bytes", levelLabel(l.Level), float64(l.Bytes))
	}
	pw.beginGaugeFamily("xpointdb_level_score", "Compaction urgency (>=1 wants compaction).")
	for _, l := range ls.Levels {
		pw.sampleL("xpointdb_level_score", levelLabel(l.Level), l.Score)
	}
	pw.beginCounterFamily("xpointdb_level_compactions_total",
		"Jobs writing into the level (flushes for level 0).")
	for _, l := range ls.Levels {
		pw.sampleL("xpointdb_level_compactions_total", levelLabel(l.Level), float64(l.Compactions))
	}
	pw.beginCounterFamily("xpointdb_level_ingested_bytes_total",
		"Bytes arriving into the level from above.")
	for _, l := range ls.Levels {
		pw.sampleL("xpointdb_level_ingested_bytes_total", levelLabel(l.Level), float64(l.BytesIngested))
	}
	pw.beginCounterFamily("xpointdb_level_read_bytes_total",
		"Compaction input bytes read for jobs into the level.")
	for _, l := range ls.Levels {
		pw.sampleL("xpointdb_level_read_bytes_total", levelLabel(l.Level), float64(l.BytesRead))
	}
	pw.beginCounterFamily("xpointdb_level_written_bytes_total",
		"Bytes written into the level by flush/compaction.")
	for _, l := range ls.Levels {
		pw.sampleL("xpointdb_level_written_bytes_total", levelLabel(l.Level), float64(l.BytesWritten))
	}
	pw.beginCounterFamily("xpointdb_level_compaction_seconds_total",
		"Flush/compaction seconds spent writing into the level.")
	for _, l := range ls.Levels {
		pw.sampleL("xpointdb_level_compaction_seconds_total", levelLabel(l.Level),
			l.CompactionTime.Seconds())
	}

	// SuperVersion lifecycle.
	pw.counter("xpointdb_superversion_installs_total", "Read-path bundle swaps.",
		float64(s.SuperVersionInstalls))
	pw.counter("xpointdb_zombie_files_deleted_total", "SSTs reclaimed by the reference-driven sweep.",
		float64(s.ZombieFilesDeleted))
	pw.gauge("xpointdb_pinned_versions", "Versions alive (current + pinned by readers).",
		float64(s.PinnedVersions))

	// Read-path shape.
	pw.beginCounterFamily("xpointdb_get_hits_total", "Gets resolved, by where the key was found.")
	for _, h := range []struct {
		where string
		v     int64
	}{
		{"memtable", s.GetHitMemtable},
		{"immutable", s.GetHitImmutable},
		{"l0", s.GetHitL0},
		{"deep", s.GetHitDeep},
	} {
		pw.sampleL("xpointdb_get_hits_total", fmt.Sprintf(`where="%s"`, h.where), float64(h.v))
	}
	pw.counter("xpointdb_get_misses_total", "Gets that found nothing.", float64(s.GetMisses))
	pw.counter("xpointdb_l0_tables_probed_total", "Level-0 SST probes (read amplification).",
		float64(s.L0TablesProbed))
	pw.counter("xpointdb_bloom_skips_total", "SST probes short-circuited by a Bloom filter.",
		float64(s.BloomSkips))
	pw.counter("xpointdb_block_cache_perf_hits_total", "Block cache hits observed via PerfContext.",
		float64(s.PerfBlockCacheHits))
	pw.counter("xpointdb_block_cache_perf_misses_total", "Block cache misses observed via PerfContext.",
		float64(s.PerfBlockCacheMisses))

	// WAL.
	pw.counter("xpointdb_wal_syncs_total", "WAL fsyncs.", float64(s.WALSyncs))
	pw.counter("xpointdb_wal_sync_bytes_total", "Bytes made durable by WAL fsyncs.",
		float64(s.WALSyncBytes))

	// Errors and recovery.
	pw.counter("xpointdb_soft_errors_total", "Soft background-error episodes.", float64(s.SoftErrors))
	pw.counter("xpointdb_hard_errors_total", "Hard background-error latches.", float64(s.HardErrors))
	pw.counter("xpointdb_recovery_attempts_total", "Background-error recovery attempts.",
		float64(s.RecoveryAttempts))
	pw.counter("xpointdb_recovery_successes_total", "Recoveries that cleared the latch.",
		float64(s.RecoverySuccesses))
	pw.counter("xpointdb_recovery_giveups_total", "Recoveries that exhausted the budget.",
		float64(s.RecoveryGiveups))

	// Space accounting. The byte gauges are only meaningful with a
	// SpaceManager attached, but the families are always emitted so
	// dashboards and the golden parser see a stable metric set (budget
	// reads 0 when no budget is configured).
	var spaceUsed, spaceReserved, spaceBudget int64
	if db.space != nil {
		spaceUsed = db.space.Used()
		spaceReserved = db.space.Reserved()
		spaceBudget = db.space.Budget()
	}
	pw.gauge("xpointdb_space_used_bytes", "Live engine file bytes (SSTs, WALs, MANIFEST).",
		float64(spaceUsed))
	pw.gauge("xpointdb_space_reserved_bytes", "Bytes reserved for in-flight flushes and compactions.",
		float64(spaceReserved))
	pw.gauge("xpointdb_space_budget_bytes", "Configured space budget (0 = unlimited).",
		float64(spaceBudget))
	pw.counter("xpointdb_enospc_errors_total", "Disk-full errors hit by background work.",
		float64(s.EnospcErrors))
	pw.counter("xpointdb_space_deferrals_total", "Flush/compaction jobs deferred for lack of budget headroom.",
		float64(s.SpaceDeferrals))
	pw.counter("xpointdb_space_waits_total", "Wait-for-space probes that still found the disk full.",
		float64(s.SpaceWaits))
	pw.counter("xpointdb_space_recoveries_total", "Recoveries completed after a disk-full latch.",
		float64(s.SpaceRecoveries))

	// Integrity.
	pw.counter("xpointdb_scrub_passes_total", "Completed scrub passes.", float64(s.ScrubPasses))
	pw.counter("xpointdb_scrubbed_bytes_total", "Bytes read and verified by the scrubber.",
		float64(s.ScrubbedBytes))
	pw.counter("xpointdb_corruptions_detected_total", "Checksum failures observed.",
		float64(s.CorruptionsDetected))
	pw.counter("xpointdb_files_quarantined_total", "Files marked damaged in the manifest.",
		float64(s.FilesQuarantined))
	pw.counter("xpointdb_corruptions_repaired_total", "Quarantined files repaired with zero loss.",
		float64(s.CorruptionsRepaired))
	pw.counter("xpointdb_data_loss_events_total", "Files dropped with declared data loss.",
		float64(s.DataLossEvents))

	// Ops plane itself.
	pw.counter("xpointdb_slow_ops_total", "Operations promoted to slow_op trace events.",
		float64(s.SlowOps))
	pw.counter("xpointdb_events_dropped_total", "Events dropped by the bounded sink queue.",
		float64(s.EventsDropped))
}

func levelLabel(l int) string { return fmt.Sprintf(`level="%d"`, l) }

// promWriter emits one family at a time. It exists to keep the HELP/
// TYPE header and sample lines together and the float formatting in
// one place.
type promWriter struct {
	w io.Writer
}

func (p *promWriter) header(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) counter(name, help string, v float64) {
	p.header(name, help, "counter")
	fmt.Fprintf(p.w, "%s %s\n", name, promFloat(v))
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	fmt.Fprintf(p.w, "%s %s\n", name, promFloat(v))
}

func (p *promWriter) gaugeL(name, help, labels string, v float64) {
	p.header(name, help, "gauge")
	p.sampleL(name, labels, v)
}

func (p *promWriter) beginGaugeFamily(name, help string)   { p.header(name, help, "gauge") }
func (p *promWriter) beginCounterFamily(name, help string) { p.header(name, help, "counter") }
func (p *promWriter) beginHistogramFamily(name, help string) {
	p.header(name, help, "histogram")
}

func (p *promWriter) sampleL(name, labels string, v float64) {
	fmt.Fprintf(p.w, "%s{%s} %s\n", name, labels, promFloat(v))
}

// histogram writes one unlabelled histogram family.
func (p *promWriter) histogram(name, help string, h *histogram.Histogram) {
	p.header(name, help, "histogram")
	p.histogramSeries(name, "", h)
}

// histogramSeries writes the _bucket/_sum/_count series for one
// histogram under the given (possibly empty) label set. Buckets are
// cumulative with le in seconds, ending at +Inf; an empty histogram
// still writes a zero +Inf bucket so the family stays structurally
// valid.
func (p *promWriter) histogramSeries(name, labels string, h *histogram.Histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	buckets, count, sum := h.Export()
	if len(buckets) == 0 {
		fmt.Fprintf(p.w, "%s_bucket{%s%sle=\"+Inf\"} 0\n", name, labels, sep)
	}
	for _, b := range buckets {
		le := "+Inf"
		if b.UpperBound != math.MaxInt64 {
			le = promFloat(float64(b.UpperBound) / 1e9)
		}
		fmt.Fprintf(p.w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, le, b.Count)
	}
	if labels == "" {
		fmt.Fprintf(p.w, "%s_sum %s\n", name, promFloat(sum.Seconds()))
		fmt.Fprintf(p.w, "%s_count %d\n", name, count)
	} else {
		fmt.Fprintf(p.w, "%s_sum{%s} %s\n", name, labels, promFloat(sum.Seconds()))
		fmt.Fprintf(p.w, "%s_count{%s} %d\n", name, labels, count)
	}
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
