package engine

import (
	"fmt"
	"io"

	"xpointdb/internal/manifest"
	"xpointdb/internal/sstable"
	"xpointdb/internal/vfs"
)

// openCompactionInput opens an SST for a sequential compaction scan:
// the whole file is fetched with one streaming read (the device pays a
// single base latency plus size/bandwidth — compaction readahead), and
// all further block accesses are free memory reads. Point lookups do
// NOT use this path; they pay per-block random reads. The compaction
// holds a reference on its base version for the whole run, so the
// input files cannot be deleted between pick and open.
func (db *DB) openCompactionInput(meta *manifest.FileMeta) (*sstable.Reader, error) {
	f, err := db.fs.Open(manifest.SSTName(meta.Num))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := make([]byte, meta.Size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("engine: bulk read %d: %w", meta.Num, err)
	}
	// No block cache: compaction scans must not evict hot read blocks.
	return sstable.NewReader(preloaded{data: data}, meta.Size, meta.Num, nil)
}

// openCompactionInputWindow opens an SST for a sub-compaction scan
// bounded to the internal keys in [startIK, endIK) (nil = unbounded):
// the table metadata (footer/index/filter) is read from the real file,
// the index is walked to find the byte window of data blocks the
// bounded scan can touch, and only that window is fetched with one
// streaming read. A nil reader with nil error means no block of the
// file intersects the range. read reports the bytes fetched.
func (db *DB) openCompactionInputWindow(meta *manifest.FileMeta, startIK, endIK []byte) (r *sstable.Reader, read int64, err error) {
	f, err := db.fs.Open(manifest.SSTName(meta.Num))
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	base, err := sstable.NewReader(f, meta.Size, meta.Num, nil)
	if err != nil {
		return nil, 0, err
	}
	off, n, err := base.DataWindow(startIK, endIK)
	if err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return nil, 0, nil
	}
	data := make([]byte, n)
	if _, err := f.ReadAt(data, off); err != nil && err != io.EOF {
		return nil, 0, fmt.Errorf("engine: bulk read window %d: %w", meta.Num, err)
	}
	// The returned reader serves every data-block read from the window;
	// the real file is closed before the merge starts, so a bounds
	// mistake surfaces as an EOF read error, never a device read.
	return base.WithFile(preloaded{data: data, base: off}), n, nil
}

// preloaded adapts an in-memory byte slice to vfs.File for readers
// over bulk-fetched file images. base is the file offset the slice
// starts at (non-zero for windowed sub-compaction reads).
type preloaded struct {
	data []byte
	base int64
}

func (p preloaded) ReadAt(b []byte, off int64) (int, error) {
	off -= p.base
	if off < 0 || off > int64(len(p.data)) {
		return 0, io.EOF
	}
	n := copy(b, p.data[off:])
	if n < len(b) {
		return n, io.EOF
	}
	return n, nil
}

func (p preloaded) Write([]byte) (int, error) {
	return 0, fmt.Errorf("engine: preloaded file is read-only")
}
func (p preloaded) Sync() error  { return fmt.Errorf("engine: preloaded file is read-only") }
func (p preloaded) Close() error { return nil }

var _ vfs.File = preloaded{}
