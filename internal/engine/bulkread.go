package engine

import (
	"fmt"
	"io"

	"xpointdb/internal/manifest"
	"xpointdb/internal/sstable"
	"xpointdb/internal/vfs"
)

// openCompactionInput opens an SST for a sequential compaction scan:
// the whole file is fetched with one streaming read (the device pays a
// single base latency plus size/bandwidth — compaction readahead), and
// all further block accesses are free memory reads. Point lookups do
// NOT use this path; they pay per-block random reads. The compaction
// holds a reference on its base version for the whole run, so the
// input files cannot be deleted between pick and open.
func (db *DB) openCompactionInput(meta *manifest.FileMeta) (*sstable.Reader, error) {
	f, err := db.fs.Open(manifest.SSTName(meta.Num))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := make([]byte, meta.Size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("engine: bulk read %d: %w", meta.Num, err)
	}
	// No block cache: compaction scans must not evict hot read blocks.
	return sstable.NewReader(preloaded{data: data}, meta.Size, meta.Num, nil)
}

// preloaded adapts an in-memory byte slice to vfs.File for readers
// over bulk-fetched file images.
type preloaded struct{ data []byte }

func (p preloaded) ReadAt(b []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(p.data)) {
		return 0, io.EOF
	}
	n := copy(b, p.data[off:])
	if n < len(b) {
		return n, io.EOF
	}
	return n, nil
}

func (p preloaded) Write([]byte) (int, error) {
	return 0, fmt.Errorf("engine: preloaded file is read-only")
}
func (p preloaded) Sync() error  { return fmt.Errorf("engine: preloaded file is read-only") }
func (p preloaded) Close() error { return nil }

var _ vfs.File = preloaded{}
