package engine

import (
	"errors"
	"fmt"
	"time"

	"xpointdb/internal/events"
	"xpointdb/internal/manifest"
	"xpointdb/internal/memtable"
	"xpointdb/internal/wal"
)

// Automatic background-error recovery (RocksDB's ErrorHandler
// auto-resume). A hard-severity latch names a single damaged resource
// — a poisoned WAL or a MANIFEST with a possibly-torn tail — and both
// have a repair that needs no reopen: swap in a fresh WAL, or roll to
// a fresh MANIFEST holding a full snapshot. Either way the repair must
// end by draining every queued immutable memtable to Level 0 BEFORE
// the latch clears: acked writes covered by an abandoned log exist
// only in memory, and if new writes could be synced-acked in the fresh
// log first, a crash could persist a suffix of the acked history while
// losing its prefix.
//
// The recovery worker re-tries the repair with exponential backoff up
// to Options.MaxRecoveryAttempts, then gives up and leaves the latch
// to a manual Resume. All attempts — automatic and manual — run under
// db.recovering, which excludes concurrent attempts and is waited on
// by Close.

// recoveryQuantum bounds each slice of a recovery backoff sleep so a
// concurrent Close is noticed promptly (clock.Cond has no timed wait;
// statsQuantum uses the same pattern).
const recoveryQuantum = 5 * time.Millisecond

// needsRecoveryLocked reports whether an automatic attempt should
// start: a hard (retryable) error is latched, the automatic budget is
// not exhausted, and no attempt is already in flight. Callers hold
// db.mu.
func (db *DB) needsRecoveryLocked() bool {
	return db.bgErr != nil && db.bgSeverity == SeverityHard &&
		!db.recoveryGaveUp && !db.recovering
}

// recoveryWorker is the background auto-resume process, started by
// Open unless Options.DisableAutoRecovery.
func (db *DB) recoveryWorker() {
	db.mu.Lock()
	for {
		for !db.closed && !db.needsRecoveryLocked() {
			db.recoveryCond.Wait()
		}
		if db.closed {
			break
		}
		be := db.bgErr.(*BackgroundError)
		db.recovering = true
		db.mu.Unlock()

		db.emitRecovery(events.KindRecoveryBegin, &events.Recovery{
			Op: be.Op, Severity: be.Severity.String(),
		})
		db.runRecoveryLoop()

		db.mu.Lock()
		db.recovering = false
		db.bgCond.Broadcast()
	}
	db.liveWorkers--
	db.bgCond.Broadcast()
	db.mu.Unlock()
}

// runRecoveryLoop drives automatic attempts for the latched error
// until it clears, the budget is exhausted, the severity escalates
// beyond repair, or the DB closes. Called with db.recovering set and
// db.mu not held.
func (db *DB) runRecoveryLoop() {
	backoff := db.opts.RecoveryBaseBackoff
	for attempt := 1; ; attempt++ {
		db.mu.Lock()
		if db.closed || db.bgErr == nil {
			db.mu.Unlock()
			return
		}
		be, ok := db.bgErr.(*BackgroundError)
		if !ok || be.Severity != SeverityHard {
			// Escalated mid-recovery (e.g. manifest-install): no
			// repair applies anymore.
			db.mu.Unlock()
			return
		}
		db.mu.Unlock()

		db.metrics.RecoveryAttempts.Add(1)
		db.emitRecovery(events.KindRecoveryAttempt, &events.Recovery{
			Op: be.Op, Severity: be.Severity.String(), Attempt: attempt,
		})
		err := db.recoverOnce(be)
		if err == nil {
			db.metrics.RecoverySuccesses.Add(1)
			db.opts.logf("background error recovered (%s) after %d attempt(s)", be.Op, attempt)
			db.emitRecovery(events.KindRecoverySuccess, &events.Recovery{
				Op: be.Op, Attempt: attempt, Health: db.Health().String(),
			})
			return
		}
		if errors.Is(err, ErrClosed) {
			return
		}
		db.opts.logf("recovery attempt %d (%s) failed: %v", attempt, be.Op, err)
		if attempt >= db.opts.MaxRecoveryAttempts {
			db.metrics.RecoveryGiveups.Add(1)
			db.mu.Lock()
			db.recoveryGaveUp = true
			db.mu.Unlock()
			db.opts.logf("automatic recovery gave up after %d attempts (%s); Resume() can retry", attempt, be.Op)
			db.emitRecovery(events.KindRecoveryGiveup, &events.Recovery{
				Op: be.Op, Attempt: attempt, Error: err.Error(),
			})
			return
		}
		if db.sleepRecoveryBackoff(backoff) {
			return
		}
		backoff *= 2
		if backoff > db.opts.RecoveryMaxBackoff {
			backoff = db.opts.RecoveryMaxBackoff
		}
	}
}

// sleepRecoveryBackoff sleeps d in recoveryQuantum slices, returning
// true early if the DB closed (a plain Sleep could stall Close by a
// full backoff).
func (db *DB) sleepRecoveryBackoff(d time.Duration) bool {
	for d > 0 {
		db.mu.Lock()
		closed := db.closed
		db.mu.Unlock()
		if closed {
			return true
		}
		step := d
		if step > recoveryQuantum {
			step = recoveryQuantum
		}
		db.clk.Sleep(step)
		d -= step
	}
	return false
}

// recoverOnce executes one repair attempt for the latched error and,
// on success, clears the latch so writers resume. The caller holds
// db.recovering, so no second attempt runs concurrently; writers fail
// fast and the flush/compaction workers idle while the latch is set.
func (db *DB) recoverOnce(be *BackgroundError) error {
	diskFull := isDiskFull(be.Err)
	if diskFull {
		// Wait-for-space: a disk-full latch is healed by headroom, not
		// by retrying the repair into the same wall. Reclaim whatever
		// the engine can free on its own (obsolete WALs, zombie SSTs,
		// stale manifests), then probe for space; a failed probe aborts
		// this attempt so the loop polls with its capped backoff
		// instead of burning a doomed WAL-swap/manifest-roll.
		if err := db.waitForSpaceOnce(); err != nil {
			db.metrics.SpaceWaits.Add(1)
			return err
		}
	}
	var err error
	switch categoryOf(be.Op) {
	case catWAL:
		err = db.recoverWAL()
	case catManifest:
		err = db.recoverManifest()
	case catCorruption:
		err = db.recoverCorruption(be)
	case catSpace:
		err = db.recoverSpace()
	default:
		return fmt.Errorf("engine: no recovery procedure for %q", be.Op)
	}
	if err != nil {
		return err
	}
	if diskFull {
		db.metrics.SpaceRecoveries.Add(1)
	}

	db.mu.Lock()
	// Quiescence before the repair plus fail-fast writers during it
	// mean nothing could have latched concurrently: the only way the
	// latch changed is the repair failing, and it reported success.
	db.bgErr = nil
	db.bgSeverity = SeverityNone
	db.recoveryGaveUp = false
	db.updateStallStateLocked()
	db.bgCond.Broadcast()
	db.mu.Unlock()
	db.deleteObsoleteFiles()
	return nil
}

// quiesceForRecoveryLocked waits until the write path and background
// workers are between operations: no queued writers (under the latch
// they fail fast, so the queue drains), no in-flight commit groups, no
// flush or compaction mid-run, and no obsolete-file sweep reading
// version-set state. Recovery may then swap WAL handles and mutate the
// manifest without racing anything. Returns false if the DB closed
// while waiting. Callers hold db.mu.
func (db *DB) quiesceForRecoveryLocked() bool {
	for !db.closed && (len(db.writers) > 0 || len(db.pendingGroups) > 0 ||
		db.flushing || db.compacting || db.sweeps > 0) {
		db.bgCond.Wait()
	}
	return !db.closed
}

// recoverWAL repairs a poisoned write-ahead log: it creates a
// replacement WAL (the recovery probe — if the device is still failing
// the attempt dies here), swaps it in, rotates the current memtable
// behind it, and drains the immutable queue before the caller clears
// the latch. The abandoned log's handle is closed; the file itself
// stays until the post-recovery sweep, by which time its contents are
// covered by SSTs.
func (db *DB) recoverWAL() error {
	db.mu.Lock()
	if !db.quiesceForRecoveryLocked() {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.opts.DisableWAL {
		db.mu.Unlock()
		return db.recoveryDrainImms()
	}
	newNum := db.vs.AllocFileNum()
	oldNum := db.walNum
	db.mu.Unlock()

	newFile, err := db.walFS.Create(manifest.WALName(newNum))
	if err != nil {
		return fmt.Errorf("engine: recovery wal probe: %w", err)
	}
	db.spaceTrack(manifest.WALName(newNum), 0)

	db.mu.Lock()
	oldFile := db.walFile
	db.walFile = newFile
	db.walWriter = wal.NewWriter(newFile)
	db.walNum = newNum
	if !db.mem.Empty() {
		// The mutable memtable's writes live only in the dead log;
		// queue it so the drain below makes them durable in SSTs.
		db.imms = append(db.imms, flushedMem{
			mem: db.mem, walNum: oldNum, maxSeq: db.lastSeq, reason: "recovery",
		})
		db.mem = memtable.New(db.memBudget)
		db.installSuperVersionLocked("recovery")
	}
	db.mu.Unlock()
	if oldFile != nil {
		_ = oldFile.Close()
	}
	return db.recoveryDrainImms()
}

// recoverManifest abandons a MANIFEST whose tail may hold a torn edit:
// it rolls to a fresh manifest holding one full-snapshot edit (nothing
// to replay past), then drains the immutable queue so the latch clears
// with every acked write durable.
func (db *DB) recoverManifest() error {
	db.mu.Lock()
	if !db.quiesceForRecoveryLocked() {
		db.mu.Unlock()
		return ErrClosed
	}
	for db.manifestBusy {
		db.bgCond.Wait()
		if db.closed {
			db.mu.Unlock()
			return ErrClosed
		}
	}
	db.manifestBusy = true
	db.mu.Unlock()

	// Roll mutates only version-set state; every other mutator is
	// either quiesced or excluded by manifestBusy.
	err := db.vs.Roll()
	if err == nil && db.space != nil {
		name := manifest.ManifestName(db.vs.ManifestNum())
		if size, serr := db.fs.Size(name); serr == nil {
			db.spaceTrack(name, size)
		}
	}

	db.mu.Lock()
	db.manifestBusy = false
	db.bgCond.Broadcast()
	db.mu.Unlock()
	if err != nil {
		return err
	}
	return db.recoveryDrainImms()
}

// recoverSpace heals a disk-full flush/compaction latch. The WAL and
// MANIFEST are intact — the latch exists only because SST output could
// not be written — so once waitForSpaceOnce has verified headroom (the
// probe ran before this was called), the repair is simply to drain the
// immutable queue the latch interrupted. Compaction needs no explicit
// redo: its inputs are still live and the picker re-selects them once
// the latch clears.
func (db *DB) recoverSpace() error {
	db.mu.Lock()
	if !db.quiesceForRecoveryLocked() {
		db.mu.Unlock()
		return ErrClosed
	}
	db.mu.Unlock()
	return db.recoveryDrainImms()
}

// recoveryDrainImms flushes every queued immutable memtable to Level 0,
// committing the edits with the recovery bypass. When it returns nil,
// every acknowledged write is durable in SSTs — the precondition for
// clearing the latch.
func (db *DB) recoveryDrainImms() error {
	for {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			return ErrClosed
		}
		if len(db.imms) == 0 {
			db.mu.Unlock()
			return nil
		}
		fm := db.imms[0]
		num := db.vs.AllocFileNum()
		logNum := db.walNum
		if len(db.imms) > 1 {
			logNum = db.imms[1].walNum
		}
		queued := len(db.imms)
		db.mu.Unlock()

		db.emitFlushBegin(fm.reason, fm.walNum, fm.mem.ApproximateSize(), queued)
		flushStart := db.clk.Now()
		meta, err := db.buildTable(num, newMemIter(fm.mem))
		if err == nil {
			seq := fm.maxSeq
			err = db.commitEditWith(&manifest.Edit{
				LogNum:  &logNum,
				LastSeq: &seq,
				Added:   []manifest.AddedFile{{Level: 0, Meta: meta}},
			}, true)
		}

		db.mu.Lock()
		l0Files := db.vs.Current().NumFiles(0)
		if err != nil {
			del := db.canDeleteFailedOutputLocked()
			db.mu.Unlock()
			db.emitFlushEnd(fm.reason, fm.walNum, num, 0, l0Files,
				db.clk.Now().Sub(flushStart), err)
			if del {
				_ = db.spaceRemove(db.fs, manifest.SSTName(num))
			}
			return err
		}
		db.imms = db.imms[1:]
		db.installSuperVersionLocked("recovery")
		db.metrics.Flushes.Add(1)
		db.metrics.FlushBytes.Add(meta.Size)
		db.bgCond.Broadcast()
		db.mu.Unlock()
		flushDur := db.clk.Now().Sub(flushStart)
		db.metrics.FlushLatency.Record(flushDur)
		db.metrics.Levels[0].recordCompaction(fm.mem.ApproximateSize(), 0, meta.Size, flushDur)
		db.emitFlushEnd(fm.reason, fm.walNum, num, meta.Size, l0Files, flushDur, nil)
	}
}

// Resume manually retries recovery from a latched background error —
// RocksDB's DB::Resume. It returns nil once the DB is healthy (also
// when it already was, or a concurrent automatic attempt wins the
// race), the latched error itself when its severity is not
// recoverable, and the latched error after a failed attempt (the latch
// stays set for a later Resume).
func (db *DB) Resume() error {
	db.mu.Lock()
	for {
		if db.closed {
			db.mu.Unlock()
			return ErrClosed
		}
		if db.bgErr == nil {
			db.mu.Unlock()
			return nil
		}
		if !db.recovering {
			break
		}
		// An attempt is mid-flight; wait for its verdict.
		db.bgCond.Wait()
	}
	be, ok := db.bgErr.(*BackgroundError)
	if !ok || !be.Severity.Recoverable() {
		err := db.bgErr
		db.mu.Unlock()
		return err
	}
	db.recovering = true
	db.mu.Unlock()

	db.metrics.RecoveryAttempts.Add(1)
	db.emitRecovery(events.KindRecoveryBegin, &events.Recovery{
		Op: be.Op, Severity: be.Severity.String(), Manual: true,
	})
	db.emitRecovery(events.KindRecoveryAttempt, &events.Recovery{
		Op: be.Op, Severity: be.Severity.String(), Attempt: 1, Manual: true,
	})
	err := db.recoverOnce(be)

	db.mu.Lock()
	db.recovering = false
	latched := db.bgErr
	db.bgCond.Broadcast()
	// If this manual attempt failed with automatic budget remaining,
	// the worker takes over again.
	db.recoveryCond.Broadcast()
	db.mu.Unlock()

	if err == nil {
		db.metrics.RecoverySuccesses.Add(1)
		db.emitRecovery(events.KindRecoverySuccess, &events.Recovery{
			Op: be.Op, Attempt: 1, Manual: true, Health: db.Health().String(),
		})
		return nil
	}
	db.emitRecovery(events.KindRecoveryGiveup, &events.Recovery{
		Op: be.Op, Attempt: 1, Manual: true, Error: err.Error(),
	})
	if latched != nil {
		return latched
	}
	return err
}
