package engine

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"xpointdb/internal/batch"
	"xpointdb/internal/clock"
	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
	"xpointdb/internal/memtable"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
	"xpointdb/internal/wal"
)

// The write path implements RocksDB's single write queue with batch
// groups, and the paper's Algorithm 2 (PIPELINED WRITE PROCESS): the
// writer at the head of the queue becomes the group leader, performs
// the combined WAL append for the whole group, then — in pipelined
// mode — promotes every group member to "memtable writer" so the
// memtable inserts proceed concurrently (the skiplist insert is CAS
// based) while the next group's leader is already writing the WAL.
//
// This queue is where the paper's Finding #3 lives: on a fast device
// reads complete quickly, write arrival pressure rises, and writers
// accumulate waiting for the leader's flush — the waiting-thread gauge
// (Figure 16) and the 32-thread write tail latency (Figure 15) are
// measured here.

type writerState int

const (
	stateQueued writerState = iota
	stateLeader
	stateMemWriter // pipelined: apply own batch to the memtable
	stateDone
)

// writer is one queued Apply call. flush marks a memtable-rotation
// request travelling through the queue instead of a batch.
type writer struct {
	batch *batch.Batch
	sync  bool
	flush bool
	state writerState
	err   error
	cv    clock.Cond
	group *commitGroup
	perf  *PerfContext // nil unless stage timing is on for this op
}

// commitGroup is a leader-collected set of writers committed as one
// WAL record.
type commitGroup struct {
	members []*writer
	mem     *memtable.Memtable
	lastSeq uint64
	pending atomic.Int32
	done    bool
	err     error
}

// Put inserts a key/value pair.
func (db *DB) Put(key, value []byte) error {
	var b batch.Batch
	b.Put(key, value)
	return db.Apply(&b, db.opts.SyncWAL)
}

// Delete removes a key.
func (db *DB) Delete(key []byte) error {
	var b batch.Batch
	b.Delete(key)
	return db.Apply(&b, db.opts.SyncWAL)
}

// Apply commits a batch atomically. syncWAL requests a WAL sync before
// acknowledging.
func (db *DB) Apply(b *batch.Batch, syncWAL bool) error {
	return db.ApplyWithPerf(b, syncWAL, nil)
}

// ApplyWithPerf is Apply with a per-operation stage breakdown
// accumulated into pc. A nil pc collects nothing unless
// Options.CollectPerf is set, in which case the engine times the
// operation internally; either way the per-op deltas feed the Metrics
// Stage* histograms. Group followers attribute the leader's WAL work
// done on their behalf to WriteQueueWait.
func (db *DB) ApplyWithPerf(b *batch.Batch, syncWAL bool, pc *PerfContext) error {
	if b.Empty() {
		return nil
	}
	var before PerfContext
	if pc == nil {
		if db.opts.CollectPerf || db.opts.SlowOpThreshold > 0 {
			pc = &PerfContext{}
		}
	} else {
		before = *pc
	}
	start := db.clk.Now()

	// Algorithm 1 throttling: each writer pays its injected delay
	// before joining the queue.
	if d := db.controller.Delay(b.Size()); d > 0 {
		db.metrics.StallDelayTotal.Add(int64(d))
		if pc != nil {
			pc.ThrottleDelay += d
		}
	}

	w := &writer{batch: b, sync: syncWAL, perf: pc}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.bgErr != nil {
		// Latched background error: fail fast instead of queueing a
		// write whose durability the engine can no longer promise.
		err := db.bgErr
		db.mu.Unlock()
		return err
	}
	w.cv = db.clk.NewCond(db.mu)
	db.writers = append(db.writers, w)
	db.metrics.WaitingWriters.Add(1)
	var qStart time.Time
	if pc != nil {
		qStart = db.clk.Now()
	}
	for w.state == stateQueued && db.writers[0] != w {
		w.cv.Wait()
	}
	if pc != nil {
		pc.WriteQueueWait += db.clk.Now().Sub(qStart)
	}
	db.metrics.WaitingWriters.Add(-1)

	switch w.state {
	case stateDone:
		db.mu.Unlock()
	case stateMemWriter:
		db.mu.Unlock()
		var t0 time.Time
		if pc != nil {
			t0 = db.clk.Now()
		}
		db.applyBatchToMem(w.group.mem, w.batch)
		if pc != nil {
			pc.MemtableInsert += db.clk.Now().Sub(t0)
		}
		db.memberDone(w.group)
	default:
		// Head of queue: become leader. leaderCommit releases db.mu.
		w.state = stateLeader
		db.leaderCommit(w)
	}

	lat := db.clk.Now().Sub(start)
	db.metrics.WriteLatency.Record(lat)
	now := db.clk.Now()
	db.metrics.Ops.Record(now, int64(b.Count()))
	db.metrics.WriteOps.Record(now, int64(b.Count()))
	db.windowWrites.Add(int64(b.Count()))
	if pc != nil {
		d := pc.diff(&before)
		db.metrics.recordWritePerf(&d)
		if t := db.opts.SlowOpThreshold; t > 0 && lat >= t {
			db.emitSlowOp("write", lat, int(b.Count()), &d)
		}
	} else if t := db.opts.SlowOpThreshold; t > 0 && lat >= t {
		db.emitSlowOp("write", lat, int(b.Count()), nil)
	}
	return w.err
}

// Flush rotates the current memtable (if non-empty) and blocks until
// every immutable memtable has been written to Level 0. Like RocksDB's
// manual flush, the rotation itself rides the write queue so it cannot
// race concurrent commits.
func (db *DB) Flush() error {
	w := &writer{flush: true}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.bgErr != nil {
		err := db.bgErr
		db.mu.Unlock()
		return err
	}
	w.cv = db.clk.NewCond(db.mu)
	db.writers = append(db.writers, w)
	for w.state == stateQueued && db.writers[0] != w {
		w.cv.Wait()
	}
	if w.state == stateQueued {
		// Head of queue: perform the rotation.
		w.state = stateLeader
		if !db.mem.Empty() {
			w.err = db.rotateMemtableLocked("manual")
		}
		db.popGroupLocked([]*writer{w})
	}
	// Wait for the flush worker to drain the immutables.
	for w.err == nil && !db.closed && db.bgErr == nil && (len(db.imms) > 0 || db.flushing) {
		db.bgCond.Wait()
	}
	if w.err == nil && db.bgErr != nil {
		// The flush worker idles while a background error is latched;
		// the immutables will not drain.
		w.err = db.bgErr
	}
	db.mu.Unlock()
	return w.err
}

// leaderCommit runs the commit protocol for the group led by w. Called
// with db.mu held; returns with it released.
func (db *DB) leaderCommit(leader *writer) {
	pc := leader.perf
	var roomStart time.Time
	if pc != nil {
		roomStart = db.clk.Now()
	}
	if err := db.makeRoomForWrite(); err != nil {
		// Fail the entire queue head; no seqs were assigned.
		leader.err = err
		db.popGroupLocked([]*writer{leader})
		db.mu.Unlock()
		return
	}
	if pc != nil {
		pc.WriteStall += db.clk.Now().Sub(roomStart)
	}

	// Collect the batch group: a contiguous queue prefix. Flush
	// markers never join a group; they run the queue head alone.
	group := &commitGroup{mem: db.mem}
	var groupBytes int64
	syncNeeded := false
	for _, cand := range db.writers {
		if cand.flush {
			break
		}
		sz := int64(cand.batch.Size())
		if len(group.members) > 0 && groupBytes+sz > db.opts.MaxBatchGroupBytes {
			break
		}
		group.members = append(group.members, cand)
		groupBytes += sz
		if cand.sync {
			syncNeeded = true
		}
		cand.group = group
	}

	// Assign sequence numbers.
	seq := db.lastSeq
	for _, m := range group.members {
		m.batch.SetSequence(seq + 1)
		seq += uint64(m.batch.Count())
	}
	db.lastSeq = seq
	group.lastSeq = seq
	db.pendingGroups = append(db.pendingGroups, group)
	walNum := db.walNum
	db.mu.Unlock()

	// WAL append for the whole group — serialized because the group
	// still occupies the queue head. Matching RocksDB's default (and
	// the paper's setup), the append is buffered — it costs CPU time
	// via the cost model — and only syncs to the device when a
	// writer asked for it (Options.SyncWAL or Apply(sync=true)).
	var walErr error
	walOp := opWALAppend
	if !db.opts.DisableWAL {
		walStart := db.clk.Now()
		rep := db.combinedRepr(group)
		walErr = db.walWriter.AddRecord(rep)
		if walErr == nil && db.space != nil {
			// Charge the appended record to the live WAL (record framing
			// is a few bytes per block, ignored). Guarded so the hot path
			// pays nothing when space accounting is off.
			db.spaceGrow(manifest.WALName(walNum), int64(len(rep)))
		}
		if db.cost != nil {
			db.cost.ChargeWALAppend(db.clk, len(rep))
		}
		appendDone := db.clk.Now()
		if pc != nil {
			pc.WALAppend += appendDone.Sub(walStart)
		}
		walEnd := appendDone
		if walErr == nil && syncNeeded {
			walOp = opWALSync
			pending := db.walWriter.Pending()
			walErr = db.walWriter.Sync()
			walEnd = db.clk.Now()
			if pc != nil {
				pc.WALSync += walEnd.Sub(appendDone)
			}
			if walErr == nil {
				db.metrics.WALSyncs.Add(1)
				db.metrics.WALSyncBytes.Add(pending)
				db.metrics.WALSyncLatency.Record(walEnd.Sub(appendDone))
			}
			db.emitWALSync(walNum, pending, walEnd.Sub(appendDone), walErr)
		}
		db.metrics.WALLatency.Record(walEnd.Sub(walStart))
	}

	db.mu.Lock()
	// Release the queue head so the next leader's WAL write can
	// overlap with this group's memtable phase (Algorithm 2).
	db.popGroupLocked(group.members)

	if walErr != nil {
		// Both failures poison the log for everyone after this group:
		// a failed append may leave a torn record that ends replay
		// early, and a failed sync means acknowledged-but-unsynced
		// data may already be lost. Latch so later writes fail fast
		// instead of appending after the damage.
		db.setBackgroundErrorLocked(walOp, walErr)
		group.err = walErr
		for _, m := range group.members {
			m.err = walErr
			if m != leader {
				m.state = stateDone
				m.cv.Signal()
			}
		}
		group.done = true
		db.advanceVisibleLocked()
		db.mu.Unlock()
		return
	}

	if db.opts.PipelinedWrites {
		group.pending.Store(int32(len(group.members)))
		for _, m := range group.members {
			if m != leader {
				m.state = stateMemWriter
				m.cv.Signal()
			}
		}
		db.mu.Unlock()
		var t0 time.Time
		if pc != nil {
			t0 = db.clk.Now()
		}
		db.applyBatchToMem(group.mem, leader.batch)
		if pc != nil {
			pc.MemtableInsert += db.clk.Now().Sub(t0)
		}
		db.memberDone(group)
		return
	}

	// Non-pipelined: the leader applies every batch itself.
	db.mu.Unlock()
	var t0 time.Time
	if pc != nil {
		t0 = db.clk.Now()
	}
	for _, m := range group.members {
		db.applyBatchToMem(group.mem, m.batch)
	}
	if pc != nil {
		pc.MemtableInsert += db.clk.Now().Sub(t0)
	}
	db.mu.Lock()
	for _, m := range group.members {
		if m != leader {
			m.state = stateDone
			m.cv.Signal()
		}
	}
	group.done = true
	db.advanceVisibleLocked()
	db.mu.Unlock()
}

// popGroupLocked removes the group's writers from the queue head and
// wakes the next head.
func (db *DB) popGroupLocked(members []*writer) {
	db.writers = db.writers[len(members):]
	if len(db.writers) > 0 {
		db.writers[0].cv.Signal()
	} else {
		db.bgCond.Broadcast() // Close may be waiting for drain
	}
}

// memberDone records one completed memtable application; the last
// member finalizes the group.
func (db *DB) memberDone(group *commitGroup) {
	if group.pending.Add(-1) != 0 {
		return
	}
	db.mu.Lock()
	group.done = true
	db.advanceVisibleLocked()
	db.mu.Unlock()
}

// advanceVisibleLocked publishes sequence numbers of every completed
// group prefix, preserving commit order.
func (db *DB) advanceVisibleLocked() {
	n := 0
	for n < len(db.pendingGroups) && db.pendingGroups[n].done {
		db.visibleSeq.Store(db.pendingGroups[n].lastSeq)
		n++
	}
	if n > 0 {
		db.pendingGroups = db.pendingGroups[n:]
		db.bgCond.Broadcast() // memtable switch / Close may be waiting
	}
}

// combinedRepr builds the WAL payload for a group.
func (db *DB) combinedRepr(group *commitGroup) []byte {
	if len(group.members) == 1 {
		return group.members[0].batch.Repr()
	}
	var combined batch.Batch
	combined.SetSequence(group.members[0].batch.Sequence())
	for _, m := range group.members {
		combined.Append(m.batch)
	}
	return combined.Repr()
}

// applyBatchToMem inserts a batch into mem, charging modeled CPU time.
func (db *DB) applyBatchToMem(mem *memtable.Memtable, b *batch.Batch) {
	seq := b.Sequence()
	totalCmps := 0
	_ = b.Iterate(func(kind keys.Kind, key, value []byte) error {
		mem.Add(seq, kind, key, value)
		seq++
		// Approximate skiplist insert comparisons: ~2·log2(N).
		totalCmps += 2 * bits.Len64(uint64(mem.Count()))
		return nil
	})
	if db.cost != nil {
		db.cost.ChargeMemInsert(db.clk, totalCmps)
	}
}

// makeRoomForWrite ensures the mutable memtable can accept the next
// group: it blocks on stop conditions, switches full memtables, and
// rotates the WAL. Called with db.mu held by the group leader; the
// lock may be dropped and retaken, and is held on return.
func (db *DB) makeRoomForWrite() error {
	for {
		switch {
		case db.closed:
			return ErrClosed

		case db.bgErr != nil:
			// Fail instead of waiting on background work (flush and
			// compaction idle while the error is latched).
			return db.bgErr

		case db.stallState == throttle.StateStopped:
			// L0 reached the stop threshold: block until compaction
			// clears it (the near-stop situation of case study A).
			db.waitStalledLocked()

		case db.mem.ApproximateSize() < db.memBudget:
			return nil

		case len(db.imms) >= db.opts.MaxImmutables:
			// All write buffers full and flush hasn't caught up.
			db.bgCond.Broadcast()
			db.waitStalledLocked()

		default:
			if err := db.rotateMemtableLocked("memtable-full"); err != nil {
				return err
			}
		}
	}
}

// rotateMemtableLocked switches the mutable memtable to immutable and
// opens a fresh WAL. reason names the trigger ("memtable-full",
// "manual") and travels with the immutable to the flush events. Called
// with db.mu held by the queue head; the lock is dropped around I/O
// and held on return. On failure the old WAL stays intact and open, so
// writes can proceed and the rotation can be retried.
func (db *DB) rotateMemtableLocked(reason string) error {
	// Wait out in-flight memtable writers and a full immutable queue.
	for len(db.pendingGroups) > 0 {
		db.bgCond.Wait()
	}
	for len(db.imms) >= db.opts.MaxImmutables {
		if db.bgErr != nil {
			// The flush worker idles while a background error is
			// latched; the immutable queue will never drain.
			return db.bgErr
		}
		db.bgCond.Broadcast() // make sure the flush worker is awake
		db.bgCond.Wait()
		if db.closed {
			return ErrClosed
		}
	}
	var newNum uint64
	if !db.opts.DisableWAL {
		newNum = db.vs.AllocFileNum()
	}
	oldWALFile := db.walFile
	oldWAL := db.walWriter
	oldWALNum := db.walNum
	db.mu.Unlock()

	var newFile vfs.File
	var err error
	if !db.opts.DisableWAL {
		// Create the replacement BEFORE touching the old log: a
		// failed create must leave the previous WAL usable.
		newFile, err = db.walFS.Create(manifest.WALName(newNum))
	}
	var serr error
	if err == nil && oldWAL != nil {
		// Make the rotated memtable's log durable.
		pending := oldWAL.Pending()
		t0 := db.clk.Now()
		serr = oldWAL.Sync()
		syncDur := db.clk.Now().Sub(t0)
		if serr == nil {
			db.metrics.WALSyncs.Add(1)
			db.metrics.WALSyncBytes.Add(pending)
			db.metrics.WALSyncLatency.Record(syncDur)
		}
		db.emitWALSync(oldWALNum, pending, syncDur, serr)
		_ = oldWALFile.Close()
	}
	if serr != nil && newFile != nil {
		// The rotation is aborted; release the unused replacement.
		_ = newFile.Close()
	}

	db.mu.Lock()
	if err != nil {
		// Transient, retriable, old WAL intact: a soft error — writes
		// keep flowing into the current memtable and the next rotation
		// attempt retries the create.
		db.setBackgroundErrorLocked(opWALRotateCreate, err)
		return fmt.Errorf("engine: rotate wal: %w", err)
	}
	db.clearSoftErrorLocked(opWALRotateCreate)
	if serr != nil {
		// The old log's unsynced tail — already acknowledged to
		// writers — may not be durable. Unlike a failed create (a
		// transient, retriable condition with the old WAL intact),
		// this breaks the durability contract: latch it.
		db.setBackgroundErrorLocked(opWALRotateSync, serr)
		return fmt.Errorf("engine: rotate wal: sync old log: %w", serr)
	}
	if !db.opts.DisableWAL {
		db.walFile = newFile
		db.walWriter = wal.NewWriter(newFile)
		db.walNum = newNum
	}
	db.imms = append(db.imms, flushedMem{mem: db.mem, walNum: oldWALNum, maxSeq: db.lastSeq, reason: reason})
	db.mem = memtable.New(db.memBudget)
	db.installSuperVersionLocked("rotation")
	db.bgCond.Broadcast() // wake the flush worker
	return nil
}

// waitStalledLocked blocks the leader on bgCond while recording stop
// stall time.
func (db *DB) waitStalledLocked() {
	t0 := db.clk.Now()
	db.metrics.StallStops.Add(1)
	db.bgCond.Wait()
	db.metrics.StallStopTotal.Add(int64(db.clk.Now().Sub(t0)))
}
