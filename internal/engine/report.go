package engine

import (
	"fmt"
	"strings"
	"time"

	"xpointdb/internal/histogram"
	"xpointdb/internal/manifest"
)

// MetricsSnapshot is a consistent plain-value copy of the engine's
// counters, safe to hold, compare and serialize while the engine keeps
// running. Histogram-backed fields are summarized (count, mean, p99).
type MetricsSnapshot struct {
	Uptime time.Duration

	Gets      int64
	GetMean   time.Duration
	GetP99    time.Duration
	Writes    int64
	WriteMean time.Duration
	WriteP99  time.Duration
	WALMean   time.Duration

	WaitingWritersMean float64
	WaitingWritersMax  int64

	StallDelayTotal time.Duration
	StallStopTotal  time.Duration
	StallStops      int64

	Flushes                 int64
	FlushBytes              int64
	Compactions             int64
	CompactionBytesRead     int64
	CompactionBytesWritten  int64
	CompactionEntriesMerged int64
	TrivialMoves            int64
	Subcompactions          int64

	SuperVersionInstalls int64
	ZombieFilesDeleted   int64
	PinnedVersions       int64
	PinnedVersionsMax    int64

	GetHitMemtable  int64
	GetHitImmutable int64
	GetHitL0        int64
	GetHitDeep      int64
	GetMisses       int64
	L0TablesProbed  int64
	BloomSkips      int64

	WALSyncs     int64
	WALSyncBytes int64

	SoftErrors        int64
	HardErrors        int64
	RecoveryAttempts  int64
	RecoverySuccesses int64
	RecoveryGiveups   int64

	ScrubbedBytes       int64
	ScrubPasses         int64
	CorruptionsDetected int64
	FilesQuarantined    int64
	CorruptionsRepaired int64
	DataLossEvents      int64

	EnospcErrors    int64
	SpaceDeferrals  int64
	SpaceWaits      int64
	SpaceRecoveries int64

	FlushMean      time.Duration
	FlushP99       time.Duration
	CompactionMean time.Duration
	CompactionP99  time.Duration
	WALSyncMean    time.Duration
	WALSyncP99     time.Duration
	ScrubPassMean  time.Duration

	SlowOps       int64
	EventsDropped int64

	PerfWriteOps         int64
	PerfReadOps          int64
	PerfBlockCacheHits   int64
	PerfBlockCacheMisses int64
}

// Snapshot captures the current counter values. It is safe to call
// concurrently with live operations.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Uptime: m.clk.Now().Sub(m.start),

		Gets:      m.GetLatency.Count(),
		GetMean:   m.GetLatency.Mean(),
		GetP99:    m.GetLatency.Percentile(99),
		Writes:    m.WriteLatency.Count(),
		WriteMean: m.WriteLatency.Mean(),
		WriteP99:  m.WriteLatency.Percentile(99),
		WALMean:   m.WALLatency.Mean(),

		WaitingWritersMean: m.WaitingWriters.Mean(),
		WaitingWritersMax:  m.WaitingWriters.Max(),

		StallDelayTotal: time.Duration(m.StallDelayTotal.Load()),
		StallStopTotal:  time.Duration(m.StallStopTotal.Load()),
		StallStops:      m.StallStops.Load(),

		Flushes:                 m.Flushes.Load(),
		FlushBytes:              m.FlushBytes.Load(),
		Compactions:             m.Compactions.Load(),
		CompactionBytesRead:     m.CompactionBytesRead.Load(),
		CompactionBytesWritten:  m.CompactionBytesWritten.Load(),
		CompactionEntriesMerged: m.CompactionEntriesMerged.Load(),
		TrivialMoves:            m.TrivialMoves.Load(),
		Subcompactions:          m.Subcompactions.Load(),

		SuperVersionInstalls: m.SuperVersionInstalls.Load(),
		ZombieFilesDeleted:   m.ZombieFilesDeleted.Load(),
		PinnedVersions:       m.PinnedVersions.Current(),
		PinnedVersionsMax:    m.PinnedVersions.Max(),

		GetHitMemtable:  m.GetHitMemtable.Load(),
		GetHitImmutable: m.GetHitImmutable.Load(),
		GetHitL0:        m.GetHitL0.Load(),
		GetHitDeep:      m.GetHitDeep.Load(),
		GetMisses:       m.GetMisses.Load(),
		L0TablesProbed:  m.L0TablesProbed.Load(),
		BloomSkips:      m.BloomSkips.Load(),

		WALSyncs:     m.WALSyncs.Load(),
		WALSyncBytes: m.WALSyncBytes.Load(),

		SoftErrors:        m.SoftErrors.Load(),
		HardErrors:        m.HardErrors.Load(),
		RecoveryAttempts:  m.RecoveryAttempts.Load(),
		RecoverySuccesses: m.RecoverySuccesses.Load(),
		RecoveryGiveups:   m.RecoveryGiveups.Load(),

		ScrubbedBytes:       m.ScrubbedBytes.Load(),
		ScrubPasses:         m.ScrubPasses.Load(),
		CorruptionsDetected: m.CorruptionsDetected.Load(),
		FilesQuarantined:    m.FilesQuarantined.Load(),
		CorruptionsRepaired: m.CorruptionsRepaired.Load(),
		DataLossEvents:      m.DataLossEvents.Load(),

		EnospcErrors:    m.EnospcErrors.Load(),
		SpaceDeferrals:  m.SpaceDeferrals.Load(),
		SpaceWaits:      m.SpaceWaits.Load(),
		SpaceRecoveries: m.SpaceRecoveries.Load(),

		FlushMean:      m.FlushLatency.Mean(),
		FlushP99:       m.FlushLatency.Percentile(99),
		CompactionMean: m.CompactionLatency.Mean(),
		CompactionP99:  m.CompactionLatency.Percentile(99),
		WALSyncMean:    m.WALSyncLatency.Mean(),
		WALSyncP99:     m.WALSyncLatency.Percentile(99),
		ScrubPassMean:  m.ScrubPassLatency.Mean(),

		SlowOps:       m.SlowOps.Load(),
		EventsDropped: m.EventsDropped.Load(),

		PerfWriteOps:         m.PerfWriteOps.Load(),
		PerfReadOps:          m.PerfReadOps.Load(),
		PerfBlockCacheHits:   m.PerfBlockCacheHits.Load(),
		PerfBlockCacheMisses: m.PerfBlockCacheMisses.Load(),
	}
}

// Report renders a human-readable statistics dump, RocksDB
// DB-stats-style. String returns the same text.
func (m *Metrics) Report() string {
	s := m.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "** Engine stats (uptime %v) **\n", s.Uptime.Round(time.Millisecond))
	fmt.Fprintf(&b, "gets           : %d (mean %v, p99 %v)\n", s.Gets, s.GetMean, s.GetP99)
	fmt.Fprintf(&b, "writes         : %d (mean %v, p99 %v)\n", s.Writes, s.WriteMean, s.WriteP99)
	fmt.Fprintf(&b, "wal            : group latency mean %v, %d syncs (%d B; sync mean %v, p99 %v)\n",
		s.WALMean, s.WALSyncs, s.WALSyncBytes, s.WALSyncMean, s.WALSyncP99)
	fmt.Fprintf(&b, "stalls         : delay %v, stop %v in %d episodes\n",
		s.StallDelayTotal.Round(time.Microsecond), s.StallStopTotal.Round(time.Microsecond), s.StallStops)
	fmt.Fprintf(&b, "waiting writers: mean %.2f, max %d\n", s.WaitingWritersMean, s.WaitingWritersMax)
	fmt.Fprintf(&b, "flush          : %d (%d B; mean %v, p99 %v)\n",
		s.Flushes, s.FlushBytes, s.FlushMean, s.FlushP99)
	fmt.Fprintf(&b, "compaction     : %d (read %d B, wrote %d B, merged %d entries; mean %v, p99 %v)\n",
		s.Compactions, s.CompactionBytesRead, s.CompactionBytesWritten, s.CompactionEntriesMerged,
		s.CompactionMean, s.CompactionP99)
	fmt.Fprintf(&b, "compaction mech: %d trivial moves, %d sub-compactions\n",
		s.TrivialMoves, s.Subcompactions)
	fmt.Fprintf(&b, "superversion   : %d installs, %d pinned (max %d), %d zombie SSTs deleted\n",
		s.SuperVersionInstalls, s.PinnedVersions, s.PinnedVersionsMax, s.ZombieFilesDeleted)
	fmt.Fprintf(&b, "read path      : mem %d, imm %d, L0 %d, deep %d, miss %d; L0 probes %d, bloom skips %d\n",
		s.GetHitMemtable, s.GetHitImmutable, s.GetHitL0, s.GetHitDeep, s.GetMisses,
		s.L0TablesProbed, s.BloomSkips)
	fmt.Fprintf(&b, "bg errors      : %d soft, %d hard; recovery %d attempts, %d recovered, %d gave up\n",
		s.SoftErrors, s.HardErrors, s.RecoveryAttempts, s.RecoverySuccesses, s.RecoveryGiveups)
	fmt.Fprintf(&b, "scrub          : %d passes (mean %v), %d B verified\n",
		s.ScrubPasses, s.ScrubPassMean, s.ScrubbedBytes)
	fmt.Fprintf(&b, "integrity      : %d corruptions detected, %d quarantined, %d repaired, %d data-loss events\n",
		s.CorruptionsDetected, s.FilesQuarantined, s.CorruptionsRepaired, s.DataLossEvents)
	if s.EnospcErrors > 0 || s.SpaceDeferrals > 0 || s.SpaceWaits > 0 || s.SpaceRecoveries > 0 {
		fmt.Fprintf(&b, "space events   : %d ENOSPC errors, %d deferred jobs, %d full probes, %d recoveries\n",
			s.EnospcErrors, s.SpaceDeferrals, s.SpaceWaits, s.SpaceRecoveries)
	}
	if s.SlowOps > 0 || s.EventsDropped > 0 {
		fmt.Fprintf(&b, "ops plane      : %d slow ops traced, %d events dropped\n",
			s.SlowOps, s.EventsDropped)
	}

	if s.PerfWriteOps > 0 {
		e2e := m.WriteLatency.Sum()
		fmt.Fprintf(&b, "write stages   : %s (%d ops, %.1f%% of end-to-end)\n",
			stageLine(e2e, []stage{
				{"throttle", &m.StageThrottleDelay},
				{"queue", &m.StageQueueWait},
				{"stall", &m.StageWriteStall},
				{"wal_append", &m.StageWALAppend},
				{"wal_sync", &m.StageWALSync},
				{"mem_insert", &m.StageMemInsert},
			}), s.PerfWriteOps, 100*coverage(e2e, m.writeStageSum()))
	}
	if s.PerfReadOps > 0 {
		e2e := m.GetLatency.Sum()
		fmt.Fprintf(&b, "read stages    : %s (%d ops, %.1f%% of end-to-end)\n",
			stageLine(e2e, []stage{
				{"mem", &m.StageMemProbe},
				{"imm", &m.StageImmProbe},
				{"l0", &m.StageL0Probe},
				{"deep", &m.StageDeepProbe},
			}), s.PerfReadOps, 100*coverage(e2e, m.readStageSum()))
		fmt.Fprintf(&b, "block reads    : %v on cache misses (%d hits, %d misses via perf)\n",
			m.StageBlockRead.Sum(), m.PerfBlockCacheHits.Load(), m.PerfBlockCacheMisses.Load())
	}
	return b.String()
}

// String returns Report.
func (m *Metrics) String() string { return m.Report() }

// writeStageSum is the total time attributed to write stages.
func (m *Metrics) writeStageSum() time.Duration {
	return m.StageThrottleDelay.Sum() + m.StageQueueWait.Sum() + m.StageWriteStall.Sum() +
		m.StageWALAppend.Sum() + m.StageWALSync.Sum() + m.StageMemInsert.Sum()
}

// readStageSum is the total time attributed to read stages.
func (m *Metrics) readStageSum() time.Duration {
	return m.StageMemProbe.Sum() + m.StageImmProbe.Sum() +
		m.StageL0Probe.Sum() + m.StageDeepProbe.Sum()
}

type stage struct {
	name string
	h    *histogram.Histogram
}

// stageLine formats each stage as its share of the end-to-end total.
func stageLine(e2e time.Duration, stages []stage) string {
	var parts []string
	for _, st := range stages {
		sum := st.h.Sum()
		if sum == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.1f%%", st.name, 100*coverage(e2e, sum)))
	}
	if len(parts) == 0 {
		return "(all stages zero)"
	}
	return strings.Join(parts, ", ")
}

func coverage(total, part time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// StatsReport extends Metrics.Report with engine state the metrics
// cannot see: the LSM shape, block cache occupancy and the write
// controller's current state and rate.
func (db *DB) StatsReport() string {
	var b strings.Builder
	b.WriteString(db.metrics.Report())

	db.mu.Lock()
	v := db.vs.Current()
	var lsm []string
	for l := 0; l < manifest.NumLevels; l++ {
		if n := v.NumFiles(l); n > 0 {
			lsm = append(lsm, fmt.Sprintf("L%d %d files (%d B)", l, n, v.LevelBytes(l)))
		}
	}
	imms := len(db.imms)
	stall := db.stallState
	health := db.healthLocked()
	bg := db.bgErr
	db.mu.Unlock()

	if len(lsm) == 0 {
		lsm = []string{"empty"}
	}
	if bg != nil {
		fmt.Fprintf(&b, "health         : %v (%v)\n", health, bg)
	} else {
		fmt.Fprintf(&b, "health         : %v\n", health)
	}
	fmt.Fprintf(&b, "lsm            : %s; immutables %d\n", strings.Join(lsm, ", "), imms)
	if db.space != nil {
		fmt.Fprintf(&b, "space          : used %d B, reserved %d B, budget %d B (state %v)\n",
			db.space.Used(), db.space.Reserved(), db.space.Budget(), db.space.State())
	}
	total, delayed, adjustments := db.controller.Stats()
	fmt.Fprintf(&b, "controller     : state %v, rate %.1f MB/s (%d delayed ops %v total, %d rate steps)\n",
		stall, db.controller.Rate()/(1<<20), delayed, total.Round(time.Microsecond), adjustments)
	if pool := db.opts.BGPool; pool != nil {
		busy, waiting, grants := pool.Stats()
		shardWaiting, shardGrants := pool.TagStats(db.opts.StallSource)
		fmt.Fprintf(&b, "bg pool        : %d/%d busy, %d waiting, %d grants (this shard: %d waiting, %d grants)\n",
			busy, pool.Size(), waiting, grants, shardWaiting, shardGrants)
	}
	if db.blocks != nil {
		fmt.Fprintf(&b, "block cache    : %s\n", db.blocks)
	}
	b.WriteString("** Per-level compaction stats **\n")
	b.WriteString(db.LevelStats().String())
	return b.String()
}

// statsQuantum bounds how long a pending Close can wait on the stats
// worker under the real clock (under simulation the kernel jumps to
// the next tick immediately, so the quantum costs nothing).
const statsQuantum = 200 * time.Millisecond

// statsWorker periodically writes StatsReport to Options.StatsWriter
// (or the debug logger) every StatsDumpInterval of engine-clock time.
func (db *DB) statsWorker() {
	interval := db.opts.StatsDumpInterval
	var sinceDump time.Duration
	for {
		db.mu.Lock()
		if db.closed {
			db.liveWorkers--
			db.bgCond.Broadcast()
			db.mu.Unlock()
			return
		}
		db.mu.Unlock()

		step := interval - sinceDump
		if step > statsQuantum {
			step = statsQuantum
		}
		db.clk.Sleep(step)
		sinceDump += step
		if sinceDump < interval {
			continue
		}
		sinceDump = 0

		db.mu.Lock()
		closed := db.closed
		db.mu.Unlock()
		if closed {
			continue // exit via the check at loop top
		}
		report := db.StatsReport()
		if w := db.opts.StatsWriter; w != nil {
			fmt.Fprintf(w, "--- stats @ %v ---\n%s", db.clk.Now().Format("15:04:05.000"), report)
		} else {
			db.opts.logf("stats dump:\n%s", report)
		}
	}
}
