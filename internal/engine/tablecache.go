package engine

import (
	"xpointdb/internal/cache"
	"xpointdb/internal/clock"
	"xpointdb/internal/manifest"
	"xpointdb/internal/sstable"
	"xpointdb/internal/vfs"
)

// tableCache keeps every live SST's Reader open (footer, index and
// filter pinned in memory, as RocksDB's table cache does with
// max_open_files = -1). Concurrent first-opens of the same file are
// coalesced; the wait uses the engine clock's Cond so it parks
// correctly under the simulation kernel.
type tableCache struct {
	fs     vfs.FS
	blocks *cache.Cache // may be nil
	// salt is OR-ed into the file number used for block-cache keys
	// (Options.CacheID). Shards sharing one cache allocate the same
	// small file numbers; the salt keeps their blocks from aliasing.
	salt uint64

	mu      clock.Mutex
	cond    clock.Cond
	readers map[uint64]*sstable.Reader
	loading map[uint64]bool
}

func newTableCache(clk clock.Clock, fs vfs.FS, blocks *cache.Cache, salt uint64) *tableCache {
	mu := clk.NewMutex()
	return &tableCache{
		fs:      fs,
		blocks:  blocks,
		salt:    salt,
		mu:      mu,
		cond:    clk.NewCond(mu),
		readers: make(map[uint64]*sstable.Reader),
		loading: make(map[uint64]bool),
	}
}

// get returns the Reader for file meta, opening it on first use.
func (tc *tableCache) get(meta *manifest.FileMeta) (*sstable.Reader, error) {
	tc.mu.Lock()
	for {
		if r, ok := tc.readers[meta.Num]; ok {
			tc.mu.Unlock()
			return r, nil
		}
		if !tc.loading[meta.Num] {
			tc.loading[meta.Num] = true
			break
		}
		tc.cond.Wait()
	}
	tc.mu.Unlock()

	f, err := tc.fs.Open(manifest.SSTName(meta.Num))
	var r *sstable.Reader
	if err == nil {
		r, err = sstable.NewReader(f, meta.Size, tc.salt|meta.Num, tc.blocks)
		if err != nil {
			f.Close()
		}
	}

	tc.mu.Lock()
	delete(tc.loading, meta.Num)
	if err == nil {
		tc.readers[meta.Num] = r
	}
	tc.cond.Broadcast()
	tc.mu.Unlock()
	return r, err
}

// evict closes and forgets the reader for num and drops its cached
// blocks. Eviction happens only when the file's last version reference
// died (zombie sweep), so no reader snapshot can still be probing it —
// every Get and iterator pins a SuperVersion whose version refs the
// files it may touch.
func (tc *tableCache) evict(num uint64) {
	tc.mu.Lock()
	r := tc.readers[num]
	delete(tc.readers, num)
	tc.mu.Unlock()
	if r != nil {
		r.Close()
	}
	if tc.blocks != nil {
		tc.blocks.EvictFile(tc.salt | num)
	}
}

// close closes every open reader.
func (tc *tableCache) close() {
	tc.mu.Lock()
	readers := tc.readers
	tc.readers = make(map[uint64]*sstable.Reader)
	tc.mu.Unlock()
	for _, r := range readers {
		r.Close()
	}
}
