//go:build race

package engine

// raceEnabled reports whether the race detector is compiled in; the
// minute-scale simulated workloads skip themselves under it (they
// would blow the package test timeout) while every targeted
// concurrency test still runs.
const raceEnabled = true
