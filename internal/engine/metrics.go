package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/histogram"
)

// Metrics aggregates the engine's instrumentation. All members are
// safe for concurrent use; read them live or via Snapshot.
type Metrics struct {
	clk   clock.Clock
	start time.Time

	// GetLatency and WriteLatency are end-to-end operation latencies
	// as the engine observed them (including queueing and stalls) —
	// the histograms behind Figures 6/7/10/12/14/15/17/20.
	GetLatency   histogram.Histogram
	WriteLatency histogram.Histogram
	// WALLatency isolates the WAL append+sync portion of commits.
	WALLatency histogram.Histogram

	// Ops and WriteOps drive the throughput timelines (Figs 4/5/18).
	Ops      *histogram.TimeSeries
	WriteOps *histogram.TimeSeries

	// WaitingWriters tracks the write-queue depth over time (Fig 16).
	WaitingWriters Gauge

	// Stall accounting.
	StallDelayTotal atomic.Int64 // ns spent in controller delays
	StallStopTotal  atomic.Int64 // ns spent blocked on stop conditions
	StallStops      atomic.Int64 // number of stop episodes

	// Background work.
	Flushes                 atomic.Int64
	FlushBytes              atomic.Int64
	Compactions             atomic.Int64
	CompactionBytesRead     atomic.Int64
	CompactionBytesWritten  atomic.Int64
	CompactionEntriesMerged atomic.Int64

	// Read-path shape counters.
	GetHitMemtable  atomic.Int64
	GetHitImmutable atomic.Int64
	GetHitL0        atomic.Int64
	GetHitDeep      atomic.Int64
	GetMisses       atomic.Int64
	L0TablesProbed  atomic.Int64
	BloomSkips      atomic.Int64
}

func newMetrics(clk clock.Clock) *Metrics {
	m := &Metrics{clk: clk, start: clk.Now()}
	m.Ops = histogram.NewTimeSeries(m.start, time.Second)
	m.WriteOps = histogram.NewTimeSeries(m.start, time.Second)
	m.WaitingWriters.init(clk)
	return m
}

// Start returns when metric collection began.
func (m *Metrics) Start() time.Time { return m.start }

// Gauge is a time-weighted level gauge: it integrates the level over
// time exactly at each change, so Mean needs no sampler.
type Gauge struct {
	clk clock.Clock

	mu       sync.Mutex
	start    time.Time
	cur      int64
	integral time.Duration // cur-weighted elapsed time, in level·ns
	last     time.Time
	max      int64
}

func (g *Gauge) init(clk clock.Clock) {
	g.clk = clk
	g.start = clk.Now()
	g.last = g.start
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	now := g.clk.Now()
	g.mu.Lock()
	g.integral += time.Duration(g.cur) * now.Sub(g.last)
	g.cur += delta
	if g.cur > g.max {
		g.max = g.cur
	}
	g.last = now
	g.mu.Unlock()
}

// Current returns the instantaneous level.
func (g *Gauge) Current() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur
}

// Mean returns the time-weighted mean level since the gauge started.
func (g *Gauge) Mean() float64 {
	now := g.clk.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	integral := g.integral + time.Duration(g.cur)*now.Sub(g.last)
	total := now.Sub(g.start)
	if total <= 0 {
		return 0
	}
	return float64(integral) / float64(total)
}

// Max returns the maximum level observed.
func (g *Gauge) Max() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}
