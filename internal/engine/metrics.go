package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"xpointdb/internal/clock"
	"xpointdb/internal/histogram"
	"xpointdb/internal/manifest"
)

// Metrics aggregates the engine's instrumentation. All members are
// safe for concurrent use; read them live or via Snapshot.
type Metrics struct {
	clk   clock.Clock
	start time.Time

	// GetLatency and WriteLatency are end-to-end operation latencies
	// as the engine observed them (including queueing and stalls) —
	// the histograms behind Figures 6/7/10/12/14/15/17/20.
	GetLatency   histogram.Histogram
	WriteLatency histogram.Histogram
	// WALLatency isolates the WAL append+sync portion of commits.
	WALLatency histogram.Histogram

	// Ops and WriteOps drive the throughput timelines (Figs 4/5/18).
	Ops      *histogram.TimeSeries
	WriteOps *histogram.TimeSeries

	// WaitingWriters tracks the write-queue depth over time (Fig 16).
	WaitingWriters Gauge

	// Stall accounting.
	StallDelayTotal atomic.Int64 // ns spent in controller delays
	StallStopTotal  atomic.Int64 // ns spent blocked on stop conditions
	StallStops      atomic.Int64 // number of stop episodes

	// Background work.
	Flushes                 atomic.Int64
	FlushBytes              atomic.Int64
	Compactions             atomic.Int64
	CompactionBytesRead     atomic.Int64
	CompactionBytesWritten  atomic.Int64
	CompactionEntriesMerged atomic.Int64
	// TrivialMoves counts files relocated to their output level by a
	// pure manifest edit — zero data read or written.
	TrivialMoves atomic.Int64
	// Subcompactions counts key-range sub-compaction merge loops run by
	// split jobs (jobs that did not split are not counted here).
	Subcompactions atomic.Int64

	// SuperVersion lifecycle. SuperVersionInstalls counts read-path
	// bundle swaps (rotation, flush, version-edit, recovery, open).
	// PinnedVersions gauges how many versions are alive at once — the
	// current bundle plus every bundle pinned by an open iterator or an
	// in-flight read. ZombieFilesDeleted counts SSTs reclaimed by the
	// reference-driven sweep.
	SuperVersionInstalls atomic.Int64
	ZombieFilesDeleted   atomic.Int64
	PinnedVersions       Gauge

	// Read-path shape counters.
	GetHitMemtable  atomic.Int64
	GetHitImmutable atomic.Int64
	GetHitL0        atomic.Int64
	GetHitDeep      atomic.Int64
	GetMisses       atomic.Int64
	L0TablesProbed  atomic.Int64
	BloomSkips      atomic.Int64

	// WAL accounting (mirrors wal.Writer across rotations).
	WALSyncs     atomic.Int64
	WALSyncBytes atomic.Int64

	// Error-handler accounting (errorhandler.go, recovery.go).
	// SoftErrors counts soft-error episodes (retrying in place);
	// HardErrors counts latch events. RecoveryAttempts counts every
	// automatic or manual recovery try; successes clear the latch,
	// giveups exhaust the automatic budget.
	SoftErrors        atomic.Int64
	HardErrors        atomic.Int64
	RecoveryAttempts  atomic.Int64
	RecoverySuccesses atomic.Int64
	RecoveryGiveups   atomic.Int64

	// Integrity accounting (scrub.go, integrity.go, repair.go).
	// ScrubbedBytes counts bytes the background scrubber read and
	// verified; ScrubPasses counts completed full cycles over the live
	// file set. CorruptionsDetected counts every checksum failure
	// observed (read path, scrub, paranoid verify, or explicit
	// verification — re-detections of the same damage each count).
	// FilesQuarantined counts files marked damaged in the manifest;
	// CorruptionsRepaired counts quarantined files replaced by a repair
	// compaction with zero loss; DataLossEvents counts files dropped
	// with a data_loss event after salvage failed.
	ScrubbedBytes       atomic.Int64
	ScrubPasses         atomic.Int64
	CorruptionsDetected atomic.Int64
	FilesQuarantined    atomic.Int64
	CorruptionsRepaired atomic.Int64
	DataLossEvents      atomic.Int64

	// Space accounting (space.go, recovery.go). EnospcErrors counts
	// disk-full errors latched or noted by the error handler;
	// SpaceDeferrals counts flush/compaction jobs that deferred for lack
	// of budget headroom (each deferral episode counts once, however
	// long it waits); SpaceWaits counts wait-for-space probes that still
	// found the disk full (each burns one recovery attempt);
	// SpaceRecoveries counts recoveries completed after a disk-full
	// latch — acked data survived a full disk.
	EnospcErrors    atomic.Int64
	SpaceDeferrals  atomic.Int64
	SpaceWaits      atomic.Int64
	SpaceRecoveries atomic.Int64

	// Background-stage latency histograms: one sample per completed
	// flush, per compaction, per WAL fsync, and per full scrub pass.
	// Full distributions (not just sums) because background-work tail
	// latency is what turns into foreground stalls — the paper's
	// throttling case studies are exactly about flush/compaction
	// episodes that straggle.
	FlushLatency      histogram.Histogram
	CompactionLatency histogram.Histogram
	WALSyncLatency    histogram.Histogram
	ScrubPassLatency  histogram.Histogram

	// SlowOps counts operations promoted into slow_op trace events
	// (end-to-end latency over Options.SlowOpThreshold).
	SlowOps atomic.Int64
	// EventsDropped counts events lost to ops-plane backpressure: the
	// bounded sink queue was full, so the event reached subscribers
	// and the replay ring but not the JSON-lines sink.
	EventsDropped atomic.Int64

	// Levels holds the per-level compaction/I-O counters behind the
	// RocksDB-style level stats table (levelstats.go).
	Levels [manifest.NumLevels]LevelCounters

	// Per-stage latency histograms, populated from PerfContext when
	// Options.CollectPerf is on (or a caller passes a context in).
	// Only operations that exercised a stage are recorded in that
	// stage's histogram, so Sum()s attribute end-to-end latency and
	// Mean()s describe the stage when it occurs. PerfOps counts the
	// operations aggregated.
	PerfWriteOps       atomic.Int64
	StageThrottleDelay histogram.Histogram
	StageQueueWait     histogram.Histogram
	StageWriteStall    histogram.Histogram
	StageWALAppend     histogram.Histogram
	StageWALSync       histogram.Histogram
	StageMemInsert     histogram.Histogram

	PerfReadOps    atomic.Int64
	StageMemProbe  histogram.Histogram
	StageImmProbe  histogram.Histogram
	StageL0Probe   histogram.Histogram
	StageDeepProbe histogram.Histogram
	StageBlockRead histogram.Histogram

	PerfBlockCacheHits   atomic.Int64
	PerfBlockCacheMisses atomic.Int64
}

func newMetrics(clk clock.Clock) *Metrics {
	m := &Metrics{clk: clk, start: clk.Now()}
	m.Ops = histogram.NewTimeSeries(m.start, time.Second)
	m.WriteOps = histogram.NewTimeSeries(m.start, time.Second)
	m.WaitingWriters.init(clk)
	m.PinnedVersions.init(clk)
	return m
}

// Start returns when metric collection began.
func (m *Metrics) Start() time.Time { return m.start }

// recordWritePerf folds one write operation's stage breakdown into the
// stage histograms. Zero stages are skipped (see the field comments).
func (m *Metrics) recordWritePerf(pc *PerfContext) {
	m.PerfWriteOps.Add(1)
	if pc.ThrottleDelay > 0 {
		m.StageThrottleDelay.Record(pc.ThrottleDelay)
	}
	if pc.WriteQueueWait > 0 {
		m.StageQueueWait.Record(pc.WriteQueueWait)
	}
	if pc.WriteStall > 0 {
		m.StageWriteStall.Record(pc.WriteStall)
	}
	if pc.WALAppend > 0 {
		m.StageWALAppend.Record(pc.WALAppend)
	}
	if pc.WALSync > 0 {
		m.StageWALSync.Record(pc.WALSync)
	}
	if pc.MemtableInsert > 0 {
		m.StageMemInsert.Record(pc.MemtableInsert)
	}
}

// recordReadPerf folds one read operation's stage breakdown into the
// stage histograms.
func (m *Metrics) recordReadPerf(pc *PerfContext) {
	m.PerfReadOps.Add(1)
	if pc.MemtableProbe > 0 {
		m.StageMemProbe.Record(pc.MemtableProbe)
	}
	if pc.ImmutableProbe > 0 {
		m.StageImmProbe.Record(pc.ImmutableProbe)
	}
	if pc.L0ProbeTime > 0 {
		m.StageL0Probe.Record(pc.L0ProbeTime)
	}
	if pc.DeepProbeTime > 0 {
		m.StageDeepProbe.Record(pc.DeepProbeTime)
	}
	if pc.BlockReadTime > 0 {
		m.StageBlockRead.Record(pc.BlockReadTime)
	}
	if pc.BlockCacheHits > 0 {
		m.PerfBlockCacheHits.Add(int64(pc.BlockCacheHits))
	}
	if pc.BlockCacheMisses > 0 {
		m.PerfBlockCacheMisses.Add(int64(pc.BlockCacheMisses))
	}
}

// LevelCounters aggregates the compaction I/O attributed to one LSM
// level — the level each flush or compaction *writes into* (RocksDB's
// per-level stats table convention: a L3→L4 compaction is charged to
// L4). All fields are cumulative since open.
type LevelCounters struct {
	// Compactions counts completed jobs into the level: flushes for
	// Level 0, compactions for deeper levels.
	Compactions atomic.Int64
	// BytesIngested counts bytes arriving from above: the memtable
	// bytes flushed (L0) or the upper-level input bytes read (L1+).
	// Write-amp for the level is BytesWritten / BytesIngested.
	BytesIngested atomic.Int64
	// BytesRead counts all compaction input bytes read for jobs into
	// this level (upper-level inputs plus this level's overlaps).
	BytesRead atomic.Int64
	// BytesWritten counts output bytes written into the level.
	BytesWritten atomic.Int64
	// Micros is total flush/compaction wall (or virtual) time for jobs
	// into the level.
	Micros atomic.Int64
}

// recordCompaction folds one completed job into the level's counters.
func (lc *LevelCounters) recordCompaction(ingested, read, written int64, d time.Duration) {
	lc.Compactions.Add(1)
	lc.BytesIngested.Add(ingested)
	lc.BytesRead.Add(read)
	lc.BytesWritten.Add(written)
	lc.Micros.Add(d.Microseconds())
}

// Gauge is a time-weighted level gauge: it integrates the level over
// time exactly at each change, so Mean needs no sampler.
//
// The zero value is usable, like Histogram's: without init (no clock)
// it degrades to a plain level/max gauge — Add, Current and Max work,
// and Mean reports 0 because there is no time base to weight by.
type Gauge struct {
	clk clock.Clock

	mu       sync.Mutex
	start    time.Time
	cur      int64
	integral time.Duration // cur-weighted elapsed time, in level·ns
	last     time.Time
	max      int64
}

func (g *Gauge) init(clk clock.Clock) {
	g.clk = clk
	g.start = clk.Now()
	g.last = g.start
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	var now time.Time
	if g.clk != nil {
		now = g.clk.Now()
	}
	g.mu.Lock()
	if g.clk != nil {
		g.integral += time.Duration(g.cur) * now.Sub(g.last)
		g.last = now
	}
	g.cur += delta
	if g.cur > g.max {
		g.max = g.cur
	}
	g.mu.Unlock()
}

// Current returns the instantaneous level.
func (g *Gauge) Current() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur
}

// Mean returns the time-weighted mean level since the gauge started,
// or 0 for a zero-value gauge (no clock to integrate against).
func (g *Gauge) Mean() float64 {
	if g.clk == nil {
		return 0
	}
	now := g.clk.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	integral := g.integral + time.Duration(g.cur)*now.Sub(g.last)
	total := now.Sub(g.start)
	if total <= 0 {
		return 0
	}
	return float64(integral) / float64(total)
}

// Max returns the maximum level observed.
func (g *Gauge) Max() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}
