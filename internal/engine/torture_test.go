package engine_test

import (
	"flag"
	"testing"

	"xpointdb/internal/torture"
)

var (
	tortureIters = flag.Int("torture.iters", 12,
		"crash-consistency torture iterations (make tier3 runs 50+)")
	tortureSeed = flag.Int64("torture.seed", 1,
		"base seed; iteration i runs with seed+i")
	tortureOps = flag.Int("torture.ops", 0,
		"ops per iteration (0 = harness default)")
)

// TestTortureCrashRecovery runs the seeded crash-consistency torture
// harness: random workload, fault injection, crash at a random
// filesystem-op boundary, reopen, verify the durability contract
// against the oracle. On failure it prints the exact seed to repro
// with `go run ./cmd/torture -seed N`.
func TestTortureCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("torture harness skipped in -short mode")
	}
	for i := 0; i < *tortureIters; i++ {
		seed := *tortureSeed + int64(i)
		cfg := torture.Config{Seed: seed, Ops: *tortureOps}
		if testing.Verbose() {
			cfg.Logf = t.Logf
		}
		if err := torture.Run(cfg); err != nil {
			t.Fatalf("%v\n\nreproduce with: go run ./cmd/torture -seed %d", err, seed)
		}
	}
}

// TestTortureTransientRecovery runs the transient-fault torture mode:
// the same seeded workload machinery, but every injected fault heals
// (FailNTimes/HealAfter) and the engine's recovery worker must return
// the SAME handle to Healthy with zero acked-write loss — no reopen.
// On failure, reproduce with `go run ./cmd/torture -seed N -transient`.
func TestTortureTransientRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("torture harness skipped in -short mode")
	}
	for i := 0; i < *tortureIters; i++ {
		seed := *tortureSeed + int64(i)
		cfg := torture.Config{Seed: seed, Ops: *tortureOps, Transient: true}
		if testing.Verbose() {
			cfg.Logf = t.Logf
		}
		if err := torture.Run(cfg); err != nil {
			t.Fatalf("%v\n\nreproduce with: go run ./cmd/torture -seed %d -transient", err, seed)
		}
	}
}

// TestTortureEnospcRecovery runs the full-disk torture mode: the
// filesystem quota squeezes below current usage at random points (and
// releases on a timer — the out-of-band operator freeing space), and
// the engine must keep every acknowledged write, keep serving reads
// throughout, and return the SAME handle to Healthy via wait-for-space
// recovery. A final never-released squeeze must produce an honest,
// bounded giveup — not a hang — and a manual Resume after release must
// heal. On failure, reproduce with `go run ./cmd/torture -seed N
// -enospc`.
func TestTortureEnospcRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("torture harness skipped in -short mode")
	}
	for i := 0; i < *tortureIters; i++ {
		seed := *tortureSeed + int64(i)
		cfg := torture.Config{Seed: seed, Ops: *tortureOps, Enospc: true}
		if testing.Verbose() {
			cfg.Logf = t.Logf
		}
		if err := torture.Run(cfg); err != nil {
			t.Fatalf("%v\n\nreproduce with: go run ./cmd/torture -seed %d -enospc", err, seed)
		}
	}
}

// TestTortureBitrotRecovery runs the silent-corruption torture mode:
// seeded bit flips on SST reads (transient hiccups or persistent media
// rot), and the integrity machinery must never serve silently wrong
// bytes — every corruption is detected by a checksum and either
// repaired or declared as bounded data loss, after which the same
// handle returns to Healthy and keeps accepting writes. On failure,
// reproduce with `go run ./cmd/torture -seed N -bitrot`.
func TestTortureBitrotRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("torture harness skipped in -short mode")
	}
	for i := 0; i < *tortureIters; i++ {
		seed := *tortureSeed + int64(i)
		cfg := torture.Config{Seed: seed, Ops: *tortureOps, Bitrot: true}
		if testing.Verbose() {
			cfg.Logf = t.Logf
		}
		if err := torture.Run(cfg); err != nil {
			t.Fatalf("%v\n\nreproduce with: go run ./cmd/torture -seed %d -bitrot", err, seed)
		}
	}
}
