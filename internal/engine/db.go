// Package engine implements the LSM-tree key-value store under test:
// a from-scratch reproduction of the RocksDB design points analyzed by
// the paper — memtable + WAL write path with batch groups and
// pipelined writes (Algorithm 2), Level-0 accumulation with
// slowdown/stop thresholds and the Algorithm 1 write controller,
// background flush and compaction, Bloom filters and a block cache —
// instrumented so every figure of the paper can be regenerated.
//
// Locking discipline. Three tiers of state, three disciplines:
//
//   - Write-side and background state — the write queue, memtable
//     rotation, the version set's manifest fields, worker flags — is
//     protected by db.mu (a clock.Mutex). db.mu is never held across
//     I/O or any clock.Sleep; condition variables created from the
//     engine clock are used for every cross-process wait, so the
//     engine runs unchanged under the real clock or the simulation
//     kernel.
//
//   - The read hot path takes NO engine lock. Get, Has and iterator
//     construction pin the current SuperVersion (superversion.go) with
//     one atomic load + ref and read the immutable bundle
//     {mem, imms, version}; the pin also keeps every SST the version
//     references alive, because SST deletion is reference-driven (a
//     file dies only when its last version reference drops — see
//     internal/manifest and sweepZombies). Installers mutate engine
//     state under db.mu, then publish a fresh SuperVersion with an
//     atomic swap; readers and writers never contend on a lock.
//
//   - Snapshot registration uses its own snapsMu (never nested inside
//     by anything that also wants db.mu to be taken afterwards; the
//     only nesting is db.mu → snapsMu in compaction picks). Loading
//     visibleSeq inside snapsMu gives compaction the ordering proof it
//     needs — see NewSnapshot.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xpointdb/internal/cache"
	"xpointdb/internal/clock"
	"xpointdb/internal/costmodel"
	"xpointdb/internal/events"
	"xpointdb/internal/manifest"
	"xpointdb/internal/memtable"
	"xpointdb/internal/obs"
	"xpointdb/internal/throttle"
	"xpointdb/internal/vfs"
	"xpointdb/internal/wal"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("engine: database is closed")

// ErrNotFound is returned by Get when the key does not exist.
var ErrNotFound = errors.New("engine: key not found")

// ErrBackground wraps a latched background error. Once a WAL sync or
// MANIFEST write fails, the DB cannot honor its durability contract
// for further writes, so every subsequent write fails fast with an
// error matching this (RocksDB's background-error semantics) instead
// of acknowledging data that may not survive a crash. Reads still
// work; reopening the DB recovers to the last durable state.
var ErrBackground = errors.New("engine: background error")

// flushedMem is an immutable memtable queued for flushing, together
// with the WAL file that covers it and the sequence watermark at its
// rotation: once this memtable is flushed, every sequence ≤ maxSeq is
// durable in SSTs (rotation waits for in-flight groups, so no later
// memtable holds earlier sequences). The watermark becomes the
// MANIFEST's LastSeq, which recovery uses both to skip already-flushed
// WAL batches and to restore read visibility.
type flushedMem struct {
	mem    *memtable.Memtable
	walNum uint64
	maxSeq uint64
	reason string // rotation trigger, reported in flush events
}

// DB is the key-value store.
type DB struct {
	opts       Options
	clk        clock.Clock
	fs         vfs.FS
	walFS      vfs.FS
	cost       *costmodel.Model
	metrics    *Metrics
	controller *throttle.Controller
	blocks     *cache.Cache
	tables     *tableCache
	ev         events.Listener // nil when event logging is off
	hub        *obs.Hub        // event fan-out hub (nil without sink/ops plane)
	obsSrv     *obs.Server     // HTTP ops plane (nil unless Options.ObsAddr)

	// space is the disk budget accountant (space.go); nil when no
	// MaxAllowedSpace and no shared SpaceManager were configured.
	// spaceSub is this DB's ladder subscription id.
	space    *SpaceManager
	spaceSub int

	mu     clock.Mutex
	bgCond clock.Cond // broadcast on any background state change
	// recoveryCond wakes only the recovery worker (latch set, Resume
	// finished, close). A dedicated cond keeps the idle worker out of
	// the hot-path bgCond broadcast storm.
	recoveryCond clock.Cond

	mem  *memtable.Memtable
	imms []flushedMem

	// sv is the current SuperVersion (superversion.go): the read
	// path's atomically swapped {mem, imms, version} bundle. nil once
	// Close has retired it. Installers write it under db.mu; readers
	// pin it lock-free via acquireSV.
	sv atomic.Pointer[superVersion]

	// openIters counts live iterators, each holding a SuperVersion
	// pin; Close reports a leak error when any remain.
	openIters atomic.Int64

	walWriter *wal.Writer
	walFile   vfs.File
	walNum    uint64

	vs           *manifest.Set
	manifestBusy bool

	// write queue state (write.go)
	writers       []*writer
	pendingGroups []*commitGroup

	lastSeq    uint64 // newest assigned sequence number (under mu)
	visibleSeq atomic.Uint64

	flushing   bool
	compacting bool
	// picker is the compaction policy (picker.go): pick shape and
	// cursor state live there; the engine owns only the mechanism.
	picker *compactionPicker
	// pacer rate-limits compaction I/O against foreground traffic;
	// nil = unlimited. Shared across shards when injected via options.
	pacer      *costmodel.Pacer
	stallState throttle.State
	// spaceState is the space-budget degradation-ladder state (space.go),
	// max-merged with the L0 state in updateStallStateLocked. Updated by
	// the SpaceManager subscription under db.mu. spaceStopEpoch counts
	// ladder transitions; a space-stall watchdog armed on an entry into
	// Stopped only fires if the epoch it captured is still current.
	spaceState     throttle.State
	spaceStopEpoch uint64
	closed     bool
	liveWorkers   int
	memBudget     int64 // current memtable size target (adaptive L0)

	// scrubDebt is the scrubber's accumulated pacing time owed; only
	// the scrub worker touches it (scrub.go).
	scrubDebt time.Duration

	// Error-handler state (errorhandler.go, recovery.go). bgErr is the
	// latched background error (nil = healthy); once latched it is
	// always a *BackgroundError and bgSeverity mirrors its severity.
	// softErrs holds soft failures currently retrying in place, by op.
	// recovering is true while an automatic or manual recovery attempt
	// runs (Close waits on it); recoveryGaveUp means the automatic
	// budget is exhausted — the latch stays recoverable via Resume.
	bgErr          error
	bgSeverity     Severity
	softErrs       map[string]error
	recovering     bool
	recoveryGaveUp bool
	// sweeps counts in-flight deleteObsoleteFiles calls; recovery
	// quiesces on it before mutating version-set state outside db.mu.
	sweeps int

	// snapsMu guards snapshots, which maps live snapshots to their
	// pinned sequence numbers; compaction preserves versions at these
	// boundaries. A dedicated mutex keeps snapshot acquisition off
	// db.mu (lock order where both are held: db.mu → snapsMu).
	snapsMu   sync.Mutex
	snapshots map[*Snapshot]uint64

	// adaptive L0 window counters (atomics; adaptive.go)
	windowReads  atomic.Int64
	windowWrites atomic.Int64
}

// Open opens (creating if necessary) a database on opts.FS.
func Open(opts Options) (*DB, error) {
	if opts.FS == nil {
		return nil, errors.New("engine: Options.FS is required")
	}
	opts = opts.withDefaults()
	clk := opts.Clock

	db := &DB{
		opts:      opts,
		clk:       clk,
		fs:        opts.FS,
		walFS:     opts.WALFS,
		cost:      opts.CostModel,
		metrics:   newMetrics(clk),
		ev:        opts.EventListener,
		memBudget: opts.MemtableSize,
		snapshots: make(map[*Snapshot]uint64),
	}
	if db.walFS == nil {
		db.walFS = db.fs
	}
	if opts.BlockCache != nil {
		db.blocks = opts.BlockCache // shared, externally owned
	} else if opts.BlockCacheSize > 0 {
		db.blocks = cache.New(opts.BlockCacheSize)
	}
	db.tables = newTableCache(clk, db.fs, db.blocks, opts.CacheID)
	db.wireEventHub() // may replace db.ev with the hub (serve.go)
	if opts.ShardTag != 0 && db.ev != nil {
		inner, tag := db.ev, opts.ShardTag
		db.ev = events.Func(func(e events.Event) {
			e.Shard = tag
			inner.Emit(e)
		})
	}
	if opts.Controller != nil {
		// Shared, externally owned: the owner wired RateChanged.
		db.controller = opts.Controller
	} else {
		tcfg := throttle.Config{
			Mode:             opts.ThrottleMode,
			DelayedWriteRate: opts.DelayedWriteRate,
			FloorRate:        opts.TwoStageFloorRate,
		}
		if db.ev != nil {
			// Surface every Algorithm 1 Dec/Inc step in the event stream.
			tcfg.RateChanged = db.emitRateChange
		}
		db.controller = throttle.New(clk, tcfg)
	}
	if opts.SpaceManager != nil {
		// Shared, externally owned: one budget across every sharer.
		db.space = opts.SpaceManager
	} else if opts.MaxAllowedSpace > 0 {
		db.space = NewSpaceManager(opts.MaxAllowedSpace, opts.FreeSpaceThreshold)
	}
	db.picker = newCompactionPicker(&db.opts)
	if opts.CompactionPacer != nil {
		// Shared, externally owned: one compaction I/O budget across
		// every sharer.
		db.pacer = opts.CompactionPacer
	} else {
		db.pacer = costmodel.NewPacer(opts.CompactionRateBytesPerSec)
	}
	db.mu = clk.NewMutex()
	db.bgCond = clk.NewCond(db.mu)
	db.recoveryCond = clk.NewCond(db.mu)

	if err := db.openOrRecover(); err != nil {
		if db.hub != nil {
			db.hub.Close()
		}
		return nil, err
	}

	db.mu.Lock()
	db.liveWorkers = 2
	db.mu.Unlock()
	clk.Go("flush-worker", db.flushWorker)
	clk.Go("compact-worker", db.compactWorker)
	if opts.AdaptiveL0 {
		db.mu.Lock()
		db.liveWorkers++
		db.mu.Unlock()
		clk.Go("adaptive-l0", db.adaptiveWorker)
	}
	if opts.StatsDumpInterval > 0 && (opts.StatsWriter != nil || opts.Logger != nil) {
		db.mu.Lock()
		db.liveWorkers++
		db.mu.Unlock()
		clk.Go("stats-worker", db.statsWorker)
	}
	if !opts.DisableAutoRecovery {
		db.mu.Lock()
		db.liveWorkers++
		db.mu.Unlock()
		clk.Go("recovery-worker", db.recoveryWorker)
	}
	if !opts.DisableScrub {
		db.mu.Lock()
		db.liveWorkers++
		db.mu.Unlock()
		clk.Go("scrub-worker", db.scrubWorker)
	}

	if db.space != nil {
		db.seedSpaceAccounting()
		db.spaceSub = db.space.subscribe(db.spaceStateChanged)
	}

	db.mu.Lock()
	if db.space != nil {
		db.spaceState = db.space.State()
	}
	db.updateStallStateLocked()
	db.mu.Unlock()

	if err := db.startObsServer(); err != nil {
		_ = db.Close()
		return nil, err
	}
	return db, nil
}

// openOrRecover builds the initial state: fresh DB or manifest + WAL
// replay.
func (db *DB) openOrRecover() error {
	names, err := db.fs.List()
	if err != nil {
		return fmt.Errorf("engine: list db dir: %w", err)
	}
	hasCurrent := false
	for _, n := range names {
		if n == manifest.CurrentName {
			hasCurrent = true
			break
		}
	}

	if hasCurrent {
		db.vs, err = manifest.Recover(db.fs)
		if err != nil {
			return err
		}
		if err := db.replayWALs(); err != nil {
			return err
		}
	} else {
		db.vs, err = manifest.Create(db.fs)
		if err != nil {
			return err
		}
	}
	db.lastSeq = db.vs.LastSeq
	db.visibleSeq.Store(db.lastSeq)
	db.mem = memtable.New(db.memBudget)
	if err := db.newWALLocked(); err != nil {
		return err
	}
	db.sweepOrphansAtOpen()
	// Publish the initial SuperVersion. No lock needed: background
	// workers and readers do not exist yet.
	db.installSuperVersionLocked("open")
	return nil
}

// sweepOrphansAtOpen removes directory leftovers a crash or failed
// background job left behind: SSTs no version references (partial
// flush/compaction outputs, files whose deleting edit was replayed)
// and superseded manifests. Runtime SST deletion is reference-driven
// and never rescans the directory, so this one-shot scan — after
// recovery, before any worker or reader exists — is the only place
// unknown files are reaped, and it is race-free by construction.
func (db *DB) sweepOrphansAtOpen() {
	// Manifest replay unrefs every intermediate version; drop those
	// replay-era zombie notes — the live-set scan below covers their
	// files, along with ones no edit ever named.
	db.vs.TakeZombies()
	names, err := db.fs.List()
	if err != nil {
		return
	}
	live := db.vs.LiveFileNums()
	manifestNum := db.vs.ManifestNum()
	for _, n := range names {
		switch t, num := manifest.ParseName(n); {
		case t == manifest.TypeSST && !live[num]:
			_ = db.fs.Remove(n)
		case t == manifest.TypeManifest && num != manifestNum:
			_ = db.fs.Remove(n)
		}
	}
}

// newWALLocked rotates to a fresh WAL file. Despite the name it is
// called during open (no lock needed) and from the switch path, which
// must NOT hold db.mu (file creation charges the device).
func (db *DB) newWALLocked() error {
	if db.opts.DisableWAL {
		return nil
	}
	num := db.vs.AllocFileNum()
	f, err := db.walFS.Create(manifest.WALName(num))
	if err != nil {
		return fmt.Errorf("engine: create wal: %w", err)
	}
	db.walFile = f
	db.walWriter = wal.NewWriter(f)
	db.walNum = num
	db.spaceTrack(manifest.WALName(num), 0)
	return nil
}

// replayWALs re-applies every surviving WAL in file-number order.
func (db *DB) replayWALs() error {
	names, err := db.walFS.List()
	if err != nil {
		return err
	}
	type lognum struct {
		name string
		num  uint64
	}
	var logs []lognum
	for _, n := range names {
		if t, num := manifest.ParseName(n); t == manifest.TypeWAL && num >= db.vs.LogNum {
			logs = append(logs, lognum{n, num})
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i].num < logs[j].num })

	mem := memtable.New(db.memBudget)
	maxSeq := db.vs.LastSeq
	for _, lg := range logs {
		f, err := db.walFS.Open(lg.name)
		if err != nil {
			return err
		}
		seq, err := replayLogInto(f, mem, db.vs.LastSeq)
		f.Close()
		if err != nil {
			return fmt.Errorf("engine: replay %s: %w", lg.name, err)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	db.vs.MarkSeq(maxSeq)
	if !mem.Empty() {
		// Flush the recovered memtable straight to L0 so recovery
		// leaves no WAL dependencies behind.
		if err := db.flushMemToL0(mem, nil); err != nil {
			return err
		}
	}
	// Old logs are now fully covered by SSTs; note it and clean up.
	logNum := db.vs.NextFileNum
	if err := db.vs.LogAndApply(&manifest.Edit{LogNum: &logNum}); err != nil {
		return err
	}
	for _, lg := range logs {
		_ = db.walFS.Remove(lg.name)
	}
	return nil
}

// Close stops background work and releases all files. Pending writes
// must have completed; new operations fail with ErrClosed.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	// Wait for the write queue to drain.
	for len(db.writers) > 0 || len(db.pendingGroups) > 0 {
		db.bgCond.Wait()
	}
	db.closed = true
	db.bgCond.Broadcast()
	db.recoveryCond.Broadcast()
	// Wait for the counted workers AND any in-flight recovery attempt:
	// a manual Resume runs outside liveWorkers but still swaps WAL and
	// manifest handles that the teardown below is about to close.
	for db.liveWorkers > 0 || db.recovering {
		db.bgCond.Wait()
	}
	bg := db.bgErr
	db.mu.Unlock()

	// Retire the SuperVersion: acquireSV now returns nil, so new reads
	// fail with ErrClosed. If no reader leaked a pin, this is the final
	// reference and the last version unpins; sweep what falls out.
	var err error
	if old := db.sv.Swap(nil); old != nil {
		old.unref()
	}
	db.sweepZombies()
	db.snapsMu.Lock()
	leakedSnaps := len(db.snapshots)
	db.snapsMu.Unlock()
	if leakedIters := db.openIters.Load(); leakedIters > 0 || leakedSnaps > 0 {
		err = fmt.Errorf("engine: close: %d iterator(s) and %d snapshot(s) never closed (leaked SuperVersion pins)",
			leakedIters, leakedSnaps)
	}

	if db.walFile != nil {
		if bg == nil {
			// The final sync covers acknowledged-but-unsynced writes;
			// its failure must be reported, not swallowed — the
			// caller would otherwise believe the data durable.
			if serr := db.walWriter.Sync(); serr != nil && err == nil {
				err = fmt.Errorf("engine: close: wal sync: %w", serr)
			}
		}
		_ = db.walFile.Close()
	}
	db.tables.close()
	if cerr := db.vs.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if db.opts.Controller != nil {
		// Shared controller: withdraw this shard's stall vote so a
		// closed shard can't keep the global budget throttled.
		db.controller.SetSourceState(db.opts.StallSource, throttle.StateClear)
	}
	if db.space != nil {
		// Drop the ladder subscription: a shared SpaceManager outlives
		// this engine and must not call back into a closed DB. The
		// tracked file bytes stay — the files are still on disk.
		db.space.unsubscribe(db.spaceSub)
	}
	// Tear down the ops plane last: every background worker has exited,
	// so the event stream is complete; closing the hub drains the sink
	// fully before the HTTP server stops answering.
	db.closeObs()
	return err
}

// BackgroundError returns the latched background error, or nil while
// the DB is healthy.
func (db *DB) BackgroundError() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.bgErr
}

// Metrics returns the engine's live instrumentation.
func (db *DB) Metrics() *Metrics { return db.metrics }

// Controller exposes the write controller (for experiment inspection).
func (db *DB) Controller() *throttle.Controller { return db.controller }

// SpaceManager exposes the space budget manager, or nil when no budget
// is configured.
func (db *DB) SpaceManager() *SpaceManager { return db.space }

// NumLevelFiles returns the file count at the given level.
func (db *DB) NumLevelFiles(level int) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.vs.Current().NumFiles(level)
}

// LevelBytes returns total SST bytes at the given level.
func (db *DB) LevelBytes(level int) int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.vs.Current().LevelBytes(level)
}

// DebugLayout renders the LSM layout.
func (db *DB) DebugLayout() string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.vs.Current().DebugString()
}

// MemtableBudget returns the current memtable size target.
func (db *DB) MemtableBudget() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.memBudget
}

// SetMemtableBudget adjusts the memtable size target; it takes effect
// at the next memtable switch (used by adaptive L0 management).
func (db *DB) SetMemtableBudget(n int64) {
	if n <= 0 {
		return
	}
	db.mu.Lock()
	db.memBudget = n
	db.mu.Unlock()
}

// updateStallStateLocked recomputes the stall condition from Level-0
// pressure and the space-budget ladder (the max of the two severities)
// and installs it in the controller. Callers hold db.mu.
func (db *DB) updateStallStateLocked() {
	l0 := db.vs.Current().NumFiles(0)
	var s throttle.State
	mid := (db.opts.L0SlowdownTrigger + db.opts.L0StopTrigger) / 2
	switch {
	case l0 >= db.opts.L0StopTrigger:
		s = throttle.StateStopped
	case db.opts.ThrottleMode == throttle.ModeTwoStage && l0 >= mid:
		s = throttle.StateAggressive
	case l0 >= db.opts.L0SlowdownTrigger:
		s = throttle.StateDelayed
	default:
		s = throttle.StateClear
	}
	if db.spaceState > s {
		// Approaching the space budget escalates exactly like L0 depth:
		// delayed, then stopped — reads keep serving either way.
		s = db.spaceState
	}
	if s != db.stallState {
		db.opts.logf("stall state %v -> %v (L0=%d)", db.stallState, s, l0)
		old := db.stallState
		db.stallState = s
		db.controller.SetSourceState(db.opts.StallSource, s)
		db.emitStallChangeLocked(old, s, l0)
		if s != throttle.StateStopped {
			// Unblock writers waiting on a stop condition.
			db.bgCond.Broadcast()
		}
	}
}

// deleteObsoleteFiles garbage-collects everything no reference can
// reach: zombie SSTs, WALs older than the live log, and superseded
// manifests. SST deletion is purely reference-driven — the zombie list
// (emitted when the last reference to a version drops) is consumed
// here and in releaseSV; the directory is never rescanned for SSTs at
// runtime, so there is no listing/live-set race to reason about. WALs
// and manifests are not refcounted and still use a directory scan
// (listed BEFORE the live numbers are snapshotted, so files created
// later cannot appear in the listing). Call WITHOUT db.mu held.
func (db *DB) deleteObsoleteFiles() {
	db.mu.Lock()
	db.sweeps++
	db.mu.Unlock()
	defer func() {
		db.mu.Lock()
		db.sweeps--
		if db.recovering {
			db.bgCond.Broadcast() // recovery is quiescing on sweeps
		}
		db.mu.Unlock()
	}()

	db.sweepZombies()

	names, err := db.fs.List()
	if err != nil {
		return
	}
	walNames, err := db.walFS.List()
	if err != nil {
		return
	}

	db.mu.Lock()
	logNum := db.vs.LogNum
	curWAL := db.walNum
	manifestNum := db.vs.ManifestNum()
	db.mu.Unlock()

	for _, n := range names {
		if t, num := manifest.ParseName(n); t == manifest.TypeManifest && num != manifestNum {
			// Recovery rolls to a fresh manifest; superseded ones
			// linger only if the post-roll Remove failed.
			_ = db.spaceRemove(db.fs, n)
		}
	}
	for _, n := range walNames {
		if t, num := manifest.ParseName(n); t == manifest.TypeWAL && num < logNum && num != curWAL {
			_ = db.spaceRemove(db.walFS, n)
		}
	}
}
