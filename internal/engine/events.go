package engine

import (
	"time"

	"xpointdb/internal/events"
	"xpointdb/internal/throttle"
)

// Event emission. Every helper is a no-op when the DB was opened
// without an EventListener; the listener must not block on the engine
// clock (emitters sometimes hold db.mu).

func (db *DB) emitFlushBegin(reason string, walNum uint64, bytes int64, immutables int) {
	if db.ev == nil {
		return
	}
	db.ev.Emit(events.Event{
		TS:   db.clk.Now(),
		Kind: events.KindFlushBegin,
		Flush: &events.Flush{
			Reason:     reason,
			WALNum:     walNum,
			Bytes:      bytes,
			Immutables: immutables,
		},
	})
}

func (db *DB) emitFlushEnd(reason string, walNum, outputFile uint64, bytes int64, l0Files int, d time.Duration, err error) {
	if db.ev == nil {
		return
	}
	f := &events.Flush{
		Reason:     reason,
		WALNum:     walNum,
		OutputFile: outputFile,
		Bytes:      bytes,
		L0Files:    l0Files,
		DurationUS: d.Microseconds(),
	}
	if err != nil {
		f.Error = err.Error()
	}
	db.ev.Emit(events.Event{TS: db.clk.Now(), Kind: events.KindFlushEnd, Flush: f})
}

func (db *DB) emitCompactionBegin(c *compaction, inputBytes int64) {
	if db.ev == nil {
		return
	}
	db.ev.Emit(events.Event{
		TS:   db.clk.Now(),
		Kind: events.KindCompactionBegin,
		Compaction: &events.Compaction{
			Level:        c.level,
			OutputLevel:  c.outputLevel,
			Score:        c.score,
			InputFiles:   len(c.inputs),
			OverlapFiles: len(c.overlaps),
			BytesRead:    inputBytes,
		},
	})
}

func (db *DB) emitCompactionEnd(c *compaction, stats compactionStats, d time.Duration, err error) {
	if db.ev == nil {
		return
	}
	ce := &events.Compaction{
		Level:          c.level,
		OutputLevel:    c.outputLevel,
		Score:          c.score,
		InputFiles:     len(c.inputs),
		OverlapFiles:   len(c.overlaps),
		OutputFiles:    stats.outputs,
		BytesRead:      stats.read,
		BytesWritten:   stats.written,
		Entries:        stats.entries,
		Subcompactions: stats.subs,
		TrivialMove:    c.trivialMove,
		DurationUS:     d.Microseconds(),
	}
	if err != nil {
		ce.Error = err.Error()
	}
	db.ev.Emit(events.Event{TS: db.clk.Now(), Kind: events.KindCompactionEnd, Compaction: ce})
}

// emitCompactionDeferred records a compaction the space budget deferred
// (the job retries once reclamation or a budget raise frees headroom).
// projected is the reserved-headroom estimate that did not fit.
func (db *DB) emitCompactionDeferred(c *compaction, projected int64) {
	if db.ev == nil {
		return
	}
	db.ev.Emit(events.Event{
		TS:   db.clk.Now(),
		Kind: events.KindCompactionDeferred,
		Compaction: &events.Compaction{
			Level:        c.level,
			OutputLevel:  c.outputLevel,
			Score:        c.score,
			InputFiles:   len(c.inputs),
			OverlapFiles: len(c.overlaps),
			BytesRead:    projected,
		},
	})
}

// emitStallChangeLocked records a stall-condition transition with its
// cause. Called with db.mu held (the transition and its inputs must be
// captured atomically); the listener only appends to its own buffer.
func (db *DB) emitStallChangeLocked(from, to throttle.State, l0Files int) {
	if db.ev == nil {
		return
	}
	db.ev.Emit(events.Event{
		TS:   db.clk.Now(),
		Kind: events.KindStallChange,
		Stall: &events.Stall{
			From:       from.String(),
			To:         to.String(),
			L0Files:    l0Files,
			Immutables: len(db.imms),
			Rate:       db.controller.Rate(),
		},
	})
}

// emitRateChange observes one Algorithm 1 Dec/Inc step (wired as the
// controller's RateChanged callback).
func (db *DB) emitRateChange(oldRate, newRate float64, behind bool) {
	if db.ev == nil {
		return
	}
	factor := throttle.Inc
	if behind {
		factor = throttle.Dec
	}
	db.ev.Emit(events.Event{
		TS:   db.clk.Now(),
		Kind: events.KindRateChange,
		Rate: &events.Rate{OldRate: oldRate, NewRate: newRate, Factor: factor, Behind: behind},
	})
}

func (db *DB) emitWALSync(walNum uint64, bytes int64, d time.Duration, err error) {
	if db.ev == nil {
		return
	}
	ws := &events.WALSync{WALNum: walNum, Bytes: bytes, DurationUS: d.Microseconds()}
	if err != nil {
		ws.Error = err.Error()
	}
	db.ev.Emit(events.Event{TS: db.clk.Now(), Kind: events.KindWALSync, WALSync: ws})
}

// emitRecovery records one recovery lifecycle moment (begin, attempt,
// success, giveup); see errorhandler.go/recovery.go for the emitters'
// call sites.
func (db *DB) emitRecovery(kind events.Kind, rec *events.Recovery) {
	if db.ev == nil {
		return
	}
	db.ev.Emit(events.Event{TS: db.clk.Now(), Kind: kind, Recovery: rec})
}

// emitSuperVersionInstall records one read-path bundle swap. Callers
// may hold db.mu; the listener only appends to its own buffer.
func (db *DB) emitSuperVersionInstall(reason string, immutables, l0Files int) {
	if db.ev == nil {
		return
	}
	db.ev.Emit(events.Event{
		TS:   db.clk.Now(),
		Kind: events.KindSuperVersionInstall,
		SuperVersion: &events.SuperVersion{
			Reason:     reason,
			Immutables: immutables,
			L0Files:    l0Files,
		},
	})
}

// emitScrub records one scrubber pass boundary (begin/complete); see
// scrub.go for the worker.
func (db *DB) emitScrub(kind events.Kind, s *events.Scrub) {
	if db.ev == nil {
		return
	}
	db.ev.Emit(events.Event{TS: db.clk.Now(), Kind: kind, Scrub: s})
}

// emitIntegrity records one corruption-handling step on a file: scrub
// detection, quarantine, repair, or data loss (repair.go, scrub.go).
func (db *DB) emitIntegrity(kind events.Kind, in *events.Integrity) {
	if db.ev == nil {
		return
	}
	db.ev.Emit(events.Event{TS: db.clk.Now(), Kind: kind, Integrity: in})
}

// emitSlowOp promotes one operation whose end-to-end latency met
// Options.SlowOpThreshold into a slow_op trace event, carrying its
// PerfContext stage breakdown (d may be nil when stage collection was
// unavailable). Called after the operation completed, no locks held.
func (db *DB) emitSlowOp(op string, lat time.Duration, batch int, d *PerfContext) {
	db.metrics.SlowOps.Add(1)
	if db.ev == nil {
		return
	}
	so := &events.SlowOp{
		Op:          op,
		LatencyUS:   lat.Microseconds(),
		ThresholdUS: db.opts.SlowOpThreshold.Microseconds(),
		Batch:       batch,
	}
	if d != nil {
		stages := map[string]time.Duration{
			"throttle":   d.ThrottleDelay,
			"queue":      d.WriteQueueWait,
			"stall":      d.WriteStall,
			"wal_append": d.WALAppend,
			"wal_sync":   d.WALSync,
			"mem_insert": d.MemtableInsert,
			"mem_probe":  d.MemtableProbe,
			"imm_probe":  d.ImmutableProbe,
			"l0_probe":   d.L0ProbeTime,
			"deep_probe": d.DeepProbeTime,
			"block_read": d.BlockReadTime,
		}
		for name, v := range stages {
			if v <= 0 {
				continue
			}
			if so.Stages == nil {
				so.Stages = make(map[string]int64, 4)
			}
			so.Stages[name] = v.Microseconds()
		}
	}
	db.ev.Emit(events.Event{TS: db.clk.Now(), Kind: events.KindSlowOp, SlowOp: so})
}

// emitObsoleteGC records one zombie sweep: SSTs whose last version
// reference died and were deleted from disk.
func (db *DB) emitObsoleteGC(files []uint64) {
	if db.ev == nil {
		return
	}
	db.ev.Emit(events.Event{
		TS:   db.clk.Now(),
		Kind: events.KindObsoleteGC,
		ObsoleteGC: &events.ObsoleteGC{
			Count: len(files),
			Files: append([]uint64(nil), files...),
		},
	})
}
