package engine

import (
	"bytes"

	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
)

// compaction describes one picked compaction: the policy's output
// (picker.go), executed by the job runner (compactionjob.go).
type compaction struct {
	level       int // input level
	outputLevel int
	score       float64              // urgency at pick time (1.0 = at trigger)
	inputs      []*manifest.FileMeta // files at level
	overlaps    []*manifest.FileMeta // files at outputLevel
	// base is the version the pick was made against; used for
	// tombstone elision checks.
	base *manifest.Version
	// snaps holds the live snapshot boundaries (ascending) at pick
	// time; the merge keeps the newest version per stripe.
	snaps []uint64
	// recovery marks a repair compaction run by the recovery worker
	// while the corruption latch is set: its version edit commits with
	// the fail-fast bypass.
	recovery bool

	// trivialMove marks a job with nothing to merge: the inputs are
	// relocated to the output level by a pure manifest edit, no I/O.
	trivialMove bool
	// subs are the disjoint key sub-ranges the merge splits into
	// (always at least one when trivialMove is false).
	subs []subrange
}

// targetLevelBytes returns the size target for a level ≥ 1.
func (db *DB) targetLevelBytes(level int) int64 {
	return levelTargetBytes(&db.opts, level)
}

// pickCompactionLocked asks the picker for the most urgent compaction,
// or nil. Called with db.mu held.
func (db *DB) pickCompactionLocked() *compaction {
	return db.picker.pick(db.vs.Current(), db.liveSnapshotSeqs())
}

func keyRangeOf(files []*manifest.FileMeta) (smallest, largest []byte) {
	for _, f := range files {
		us, ul := keys.UserKey(f.Smallest), keys.UserKey(f.Largest)
		if smallest == nil || bytes.Compare(us, smallest) < 0 {
			smallest = us
		}
		if largest == nil || bytes.Compare(ul, largest) > 0 {
			largest = ul
		}
	}
	return smallest, largest
}

// compactWorker is the background compaction scheduler loop: pick by
// policy, price the job by stall risk for the shared pool, reserve
// space, then hand the picked compaction to the job runner. A single
// worker per shard admits one job at a time; the job itself may fan
// out into sub-compactions with extra pool tokens.
func (db *DB) compactWorker() {
	db.mu.Lock()
	for {
		var c *compaction
		for !db.closed {
			// Idle while a background error is latched: no version
			// edit can be committed, so compaction work is wasted.
			// Also idle while another compaction holds the flag (a
			// manual CompactRange or a repair run releases db.mu
			// mid-compaction): picking from the still-current version
			// would select the same inputs and double-delete them at
			// install ("delete of absent file").
			if db.bgErr == nil && !db.compacting {
				if c = db.pickCompactionLocked(); c != nil {
					break
				}
				// The tree no longer wants a compaction: a soft-error
				// note from a failed attempt is stale — there is
				// nothing left to retry.
				db.clearSoftErrorLocked(opCompaction)
			}
			db.bgCond.Wait()
		}
		if db.closed {
			break
		}
		if db.opts.BGPool != nil {
			// Shared pool: take a token before running. The pick made
			// above proves work exists and prices the priority, but it
			// can go stale while we wait for a token — drop it and
			// re-pick once the token is held.
			prio := db.compactPriorityLocked(c.score)
			db.mu.Unlock()
			db.opts.BGPool.AcquireTag(prio, db.opts.StallSource)
			db.mu.Lock()
			c.base.Unref()
			c = nil
			if db.closed || db.bgErr != nil {
				db.opts.BGPool.Release()
				if db.closed {
					break
				}
				continue
			}
			if db.compacting {
				// A manual or repair compaction started while we
				// waited for the token; re-enter the wait loop.
				db.opts.BGPool.Release()
				continue
			}
			if c = db.pickCompactionLocked(); c == nil {
				db.opts.BGPool.Release()
				continue
			}
		}
		var reservedSpace int64
		if db.space != nil && !c.trivialMove {
			// Reserve headroom for the projected output (bounded by the
			// input bytes; obsolete inputs are only freed after install).
			// Over budget the job defers, never fails. TryReserve runs
			// without db.mu — a ladder change notifies back into it — so
			// the world must be re-checked before committing to the pick.
			// A trivial move writes no bytes and skips the reservation.
			for _, f := range c.inputs {
				reservedSpace += f.Size
			}
			for _, f := range c.overlaps {
				reservedSpace += f.Size
			}
			db.mu.Unlock()
			ok := db.space.TryReserve(reservedSpace)
			db.mu.Lock()
			stale := db.closed || db.bgErr != nil || db.compacting
			if !ok || stale {
				deferred := c
				c.base.Unref()
				db.mu.Unlock()
				if ok {
					db.space.Release(reservedSpace)
				} else {
					db.metrics.SpaceDeferrals.Add(1)
					db.emitCompactionDeferred(deferred, reservedSpace)
					db.opts.logf("compaction deferred: %d B projected output over space budget", reservedSpace)
				}
				db.releaseBGToken()
				if !ok && !stale {
					db.clk.Sleep(flushRetryBackoff)
				}
				db.mu.Lock()
				continue
			}
		}
		db.compacting = true
		db.mu.Unlock()

		err := db.executePickedCompaction(c)
		if reservedSpace > 0 {
			// Outputs are tracked as used bytes now (or were removed);
			// the reservation would double-count them.
			db.space.Release(reservedSpace)
		}

		if err != nil {
			// A checksum failure in a live input is not retryable in
			// place — the file is damaged. Route it to the
			// quarantine/repair path (latches the corruption error)
			// before the generic soft-error note below.
			db.maybeReportCorruption(err)
		}

		db.mu.Lock()
		db.compacting = false
		if err != nil {
			db.opts.logf("compaction L%d→L%d failed: %v", c.level, c.outputLevel, err)
			if db.bgErr == nil {
				// Inputs are still live and the pick retries: a soft
				// error — except disk-full, which classifies hard so
				// the recovery worker's wait-for-space path owns it
				// (see classifySeverity). (Manifest failures latch
				// inside commitEdit; the bgErr guard avoids
				// double-classifying them.)
				db.setBackgroundErrorLocked(opCompaction, err)
			}
			// Wake anyone quiescing on db.compacting (error recovery).
			db.bgCond.Broadcast()
			// Timed backoff; see flushWorker for the livelock note.
			// The token goes back first so the backoff can't starve
			// other shards' jobs.
			db.mu.Unlock()
			db.releaseBGToken()
			db.clk.Sleep(flushRetryBackoff)
			db.mu.Lock()
		} else {
			db.clearSoftErrorLocked(opCompaction)
			db.bgCond.Broadcast()
		}
		db.mu.Unlock()

		if err == nil {
			db.releaseBGToken()
			// Rate feedback for Algorithm 1: compaction that leaves
			// L0 above the slowdown line is "behind" (Prev ≤ Esti).
			if db.stallActive() {
				db.mu.Lock()
				behind := db.vs.Current().NumFiles(0) >= db.opts.L0SlowdownTrigger
				db.mu.Unlock()
				db.controller.AdjustRate(behind)
			}
			db.deleteObsoleteFiles()
		}
		db.mu.Lock()
	}
	db.liveWorkers--
	db.bgCond.Broadcast()
	db.mu.Unlock()
}

// executePickedCompaction runs a picked compaction on the caller's
// goroutine — events, timing, the job itself, success metrics, cursor
// advance, and the base unref. The caller must have set db.compacting
// and must not hold db.mu. Shared by the background worker, manual
// CompactRange, and the repair path.
func (db *DB) executePickedCompaction(c *compaction) error {
	var inputBytes, upperBytes int64
	for _, f := range c.inputs {
		upperBytes += f.Size
	}
	inputBytes = upperBytes
	for _, f := range c.overlaps {
		inputBytes += f.Size
	}
	db.emitCompactionBegin(c, inputBytes)
	compStart := db.clk.Now()

	stats, err := db.runCompactionJob(c)
	compDur := db.clk.Now().Sub(compStart)
	db.emitCompactionEnd(c, stats, compDur, err)
	c.base.Unref()

	if err == nil {
		db.metrics.Compactions.Add(1)
		db.metrics.CompactionLatency.Record(compDur)
		db.metrics.Levels[c.outputLevel].recordCompaction(
			upperBytes, stats.read, stats.written, compDur)
		db.mu.Lock()
		db.picker.noteCompacted(c)
		db.mu.Unlock()
	}
	return err
}

// isBaseLevel reports whether no level deeper than the compaction's
// output overlaps userKey, so a tombstone can be dropped.
func (db *DB) isBaseLevel(c *compaction, userKey []byte) bool {
	for l := c.outputLevel + 1; l < manifest.NumLevels; l++ {
		for _, f := range c.base.Files[l] {
			if f.ContainsUserKey(userKey) {
				return false
			}
		}
	}
	return true
}
