package engine

import (
	"bytes"
	"fmt"

	"xpointdb/internal/iterator"
	"xpointdb/internal/keys"
	"xpointdb/internal/manifest"
	"xpointdb/internal/sstable"
	"xpointdb/internal/vfs"
)

// compaction describes one picked compaction.
type compaction struct {
	level       int // input level
	outputLevel int
	score       float64              // urgency at pick time (1.0 = at trigger)
	inputs      []*manifest.FileMeta // files at level
	overlaps    []*manifest.FileMeta // files at outputLevel
	// base is the version the pick was made against; used for
	// tombstone elision checks.
	base *manifest.Version
	// snaps holds the live snapshot boundaries (ascending) at pick
	// time; the merge keeps the newest version per stripe.
	snaps []uint64
	// recovery marks a repair compaction run by the recovery worker
	// while the corruption latch is set: its version edit commits with
	// the fail-fast bypass.
	recovery bool
}

// targetLevelBytes returns the size target for a level ≥ 1.
func (db *DB) targetLevelBytes(level int) int64 {
	t := db.opts.BaseLevelBytes
	for l := 1; l < level; l++ {
		t *= int64(db.opts.LevelMultiplier)
	}
	return t
}

// pickCompactionLocked selects the most urgent compaction, or nil.
// Called with db.mu held.
func (db *DB) pickCompactionLocked() *compaction {
	v := db.vs.Current()

	// Level-0: file-count triggered (the paper's central pressure
	// source — L0 files accumulate per flush and are merged into L1).
	if v.NumFiles(0) >= db.opts.L0CompactionTrigger {
		inputs := append([]*manifest.FileMeta(nil), v.Files[0]...)
		smallest, largest := keyRangeOf(inputs)
		c := &compaction{
			level:       0,
			outputLevel: 1,
			score:       float64(v.NumFiles(0)) / float64(db.opts.L0CompactionTrigger),
			inputs:      inputs,
			overlaps:    v.Overlaps(1, smallest, largest),
			base:        v,
			snaps:       db.liveSnapshotSeqs(),
		}
		// Pin the base version for the whole run: a concurrent flush
		// install may drop the current version, and with it the last
		// reference to the input files, while the merge is reading them.
		c.base.Ref()
		return c
	}

	// Deeper levels: size triggered, worst score first.
	bestLevel, bestScore := -1, 1.0
	for l := 1; l < manifest.NumLevels-1; l++ {
		if v.NumFiles(l) == 0 {
			continue
		}
		score := float64(v.LevelBytes(l)) / float64(db.targetLevelBytes(l))
		if score > bestScore {
			bestScore, bestLevel = score, l
		}
	}
	if bestLevel < 0 {
		return nil
	}
	files := v.Files[bestLevel]
	idx := db.compactCursor[bestLevel] % len(files)
	db.compactCursor[bestLevel]++
	in := files[idx]
	smallest, largest := keyRangeOf([]*manifest.FileMeta{in})
	c := &compaction{
		level:       bestLevel,
		outputLevel: bestLevel + 1,
		score:       bestScore,
		inputs:      []*manifest.FileMeta{in},
		overlaps:    v.Overlaps(bestLevel+1, smallest, largest),
		base:        v,
		snaps:       db.liveSnapshotSeqs(),
	}
	c.base.Ref() // see the L0 pick above
	return c
}

func keyRangeOf(files []*manifest.FileMeta) (smallest, largest []byte) {
	for _, f := range files {
		us, ul := keys.UserKey(f.Smallest), keys.UserKey(f.Largest)
		if smallest == nil || bytes.Compare(us, smallest) < 0 {
			smallest = us
		}
		if largest == nil || bytes.Compare(ul, largest) > 0 {
			largest = ul
		}
	}
	return smallest, largest
}

// compactWorker is the background compaction process (RocksDB's
// low-priority pool, concurrency 1 in this reproduction).
func (db *DB) compactWorker() {
	db.mu.Lock()
	for {
		var c *compaction
		for !db.closed {
			// Idle while a background error is latched: no version
			// edit can be committed, so compaction work is wasted.
			// Also idle while another compaction holds the flag (a
			// manual CompactRange or a repair run releases db.mu
			// mid-compaction): picking from the still-current version
			// would select the same inputs and double-delete them at
			// install ("delete of absent file").
			if db.bgErr == nil && !db.compacting {
				if c = db.pickCompactionLocked(); c != nil {
					break
				}
				// The tree no longer wants a compaction: a soft-error
				// note from a failed attempt is stale — there is
				// nothing left to retry.
				db.clearSoftErrorLocked(opCompaction)
			}
			db.bgCond.Wait()
		}
		if db.closed {
			break
		}
		if db.opts.BGPool != nil {
			// Shared pool: take a token before running. The pick made
			// above proves work exists and prices the priority, but it
			// can go stale while we wait for a token — drop it and
			// re-pick once the token is held.
			prio := db.compactPriorityLocked()
			db.mu.Unlock()
			db.opts.BGPool.Acquire(prio)
			db.mu.Lock()
			c.base.Unref()
			c = nil
			if db.closed || db.bgErr != nil {
				db.opts.BGPool.Release()
				if db.closed {
					break
				}
				continue
			}
			if db.compacting {
				// A manual or repair compaction started while we
				// waited for the token; re-enter the wait loop.
				db.opts.BGPool.Release()
				continue
			}
			if c = db.pickCompactionLocked(); c == nil {
				db.opts.BGPool.Release()
				continue
			}
		}
		var reservedSpace int64
		if db.space != nil {
			// Reserve headroom for the projected output (bounded by the
			// input bytes; obsolete inputs are only freed after install).
			// Over budget the job defers, never fails. TryReserve runs
			// without db.mu — a ladder change notifies back into it — so
			// the world must be re-checked before committing to the pick.
			for _, f := range c.inputs {
				reservedSpace += f.Size
			}
			for _, f := range c.overlaps {
				reservedSpace += f.Size
			}
			db.mu.Unlock()
			ok := db.space.TryReserve(reservedSpace)
			db.mu.Lock()
			stale := db.closed || db.bgErr != nil || db.compacting
			if !ok || stale {
				c.base.Unref()
				db.mu.Unlock()
				if ok {
					db.space.Release(reservedSpace)
				} else {
					db.metrics.SpaceDeferrals.Add(1)
					db.opts.logf("compaction deferred: %d B projected output over space budget", reservedSpace)
				}
				db.releaseBGToken()
				if !ok && !stale {
					db.clk.Sleep(flushRetryBackoff)
				}
				db.mu.Lock()
				continue
			}
		}
		db.compacting = true
		db.mu.Unlock()

		var inputBytes, upperBytes int64
		for _, f := range c.inputs {
			upperBytes += f.Size
		}
		inputBytes = upperBytes
		for _, f := range c.overlaps {
			inputBytes += f.Size
		}
		db.emitCompactionBegin(c, inputBytes)
		compStart := db.clk.Now()

		stats, err := db.runCompaction(c)
		if reservedSpace > 0 {
			// Outputs are tracked as used bytes now (or were removed);
			// the reservation would double-count them.
			db.space.Release(reservedSpace)
		}
		compDur := db.clk.Now().Sub(compStart)
		db.emitCompactionEnd(c, stats.read, stats.written, stats.outputs,
			stats.entries, compDur, err)
		c.base.Unref()

		if err != nil {
			// A checksum failure in a live input is not retryable in
			// place — the file is damaged. Route it to the
			// quarantine/repair path (latches the corruption error)
			// before the generic soft-error note below.
			db.maybeReportCorruption(err)
		}

		db.mu.Lock()
		db.compacting = false
		if err != nil {
			db.opts.logf("compaction L%d→L%d failed: %v", c.level, c.outputLevel, err)
			if db.bgErr == nil {
				// Inputs are still live and the pick retries: a soft
				// error — except disk-full, which classifies hard so
				// the recovery worker's wait-for-space path owns it
				// (see classifySeverity). (Manifest failures latch
				// inside commitEdit; the bgErr guard avoids
				// double-classifying them.)
				db.setBackgroundErrorLocked(opCompaction, err)
			}
			// Wake anyone quiescing on db.compacting (error recovery).
			db.bgCond.Broadcast()
			// Timed backoff; see flushWorker for the livelock note.
			// The token goes back first so the backoff can't starve
			// other shards' jobs.
			db.mu.Unlock()
			db.releaseBGToken()
			db.clk.Sleep(flushRetryBackoff)
			db.mu.Lock()
		} else {
			db.clearSoftErrorLocked(opCompaction)
			db.metrics.Compactions.Add(1)
			db.metrics.CompactionLatency.Record(compDur)
			db.metrics.Levels[c.outputLevel].recordCompaction(
				upperBytes, stats.read, stats.written, compDur)
			db.bgCond.Broadcast()
		}
		db.mu.Unlock()

		if err == nil {
			db.releaseBGToken()
			// Rate feedback for Algorithm 1: compaction that leaves
			// L0 above the slowdown line is "behind" (Prev ≤ Esti).
			if db.stallActive() {
				db.mu.Lock()
				behind := db.vs.Current().NumFiles(0) >= db.opts.L0SlowdownTrigger
				db.mu.Unlock()
				db.controller.AdjustRate(behind)
			}
			db.deleteObsoleteFiles()
		}
		db.mu.Lock()
	}
	db.liveWorkers--
	db.bgCond.Broadcast()
	db.mu.Unlock()
}

// compactionStats summarizes one compaction run for events and
// metrics; partial values are reported when the run fails mid-way.
type compactionStats struct {
	read    int64
	written int64
	outputs int
	entries int64
}

// runCompaction merges c's inputs into new files at c.outputLevel and
// commits the edit. Called without db.mu.
func (db *DB) runCompaction(c *compaction) (stats compactionStats, err error) {
	all := make([]*manifest.FileMeta, 0, len(c.inputs)+len(c.overlaps))
	all = append(all, c.inputs...)
	all = append(all, c.overlaps...)

	// Inputs are read with one sequential bulk read per file
	// (compaction readahead): the device is charged a streaming
	// transfer instead of a random 4 KiB read per block, matching
	// how real compactions read.
	var readBytes int64
	iters := make([]iterator.Iterator, 0, len(all))
	for _, f := range all {
		r, err := db.openCompactionInput(f)
		if err != nil {
			return stats, err
		}
		iters = append(iters, r.NewIter())
		readBytes += f.Size
	}
	stats.read = readBytes
	merged := iterator.NewMerging(iters...)
	defer merged.Close()

	var outNums []uint64

	var (
		outputs     []*manifest.FileMeta
		builder     *sstable.Builder
		builderFile vfs.File
		curNum      uint64
		entries     int
		lastUserKey []byte
		haveLast    bool
		writtenByte int64
	)

	// Outputs never installed in a version have no reference protecting
	// them — on failure they are removed here, unless a manifest-install
	// error is latched (the durable manifest may already name them; see
	// canDeleteFailedOutputLocked).
	defer func() {
		if err == nil {
			return
		}
		if builder != nil {
			_ = builderFile.Close()
		}
		db.mu.Lock()
		del := db.canDeleteFailedOutputLocked()
		db.mu.Unlock()
		if !del {
			return
		}
		for _, n := range outNums {
			_ = db.spaceRemove(db.fs, manifest.SSTName(n))
		}
	}()

	finishOutput := func() error {
		if builder == nil {
			return nil
		}
		size, ferr := builder.Finish()
		if ferr != nil {
			return ferr
		}
		if err := builderFile.Sync(); err != nil {
			return err
		}
		if db.opts.ParanoidFileChecks {
			if err := db.paranoidVerify(builderFile, size, curNum, builder.Checksum()); err != nil {
				return err
			}
		}
		if err := builderFile.Close(); err != nil {
			return err
		}
		db.spaceTrack(manifest.SSTName(curNum), size)
		outputs = append(outputs, &manifest.FileMeta{
			Num:      curNum,
			Size:     size,
			Smallest: builder.Smallest(),
			Largest:  builder.Largest(),
			Checksum: builder.Checksum(),
		})
		writtenByte += size
		builder = nil
		return nil
	}

	// prevStripe is the snapshot stripe of the newest retained (or
	// elided-tombstone) version of lastUserKey; -1 when no version of
	// the current key has been seen yet.
	prevStripe := -1
	for merged.SeekToFirst(); merged.Valid(); merged.Next() {
		ikey := merged.Key()
		userKey := keys.UserKey(ikey)
		entries++
		if db.cost != nil && entries%compactChargeBatch == 0 {
			db.cost.ChargeCompactEntries(db.clk, compactChargeBatch)
		}

		if !haveLast || !bytes.Equal(userKey, lastUserKey) {
			// Output files may only be cut at user-key boundaries:
			// L1+ files must be disjoint in user-key space, and
			// snapshots can retain several versions of one key, so
			// cutting on size alone could strand versions of the
			// same key in adjacent files — an invalid version edit.
			if builder != nil && builder.EstimatedSize() >= db.opts.TargetFileSize {
				if err := finishOutput(); err != nil {
					return stats, err
				}
			}
			lastUserKey = append(lastUserKey[:0], userKey...)
			haveLast = true
			prevStripe = -1
		}

		// Keep the newest version of the key within each snapshot
		// stripe; versions shadowed by a newer one in the same
		// stripe are invisible to every snapshot and can go.
		seq, kind := keys.Trailer(ikey)
		stripe := stripeOf(c.snaps, seq)
		if stripe == prevStripe {
			continue
		}
		prevStripe = stripe

		if kind == keys.KindDelete && stripe == 0 && db.isBaseLevel(c, userKey) {
			// Tombstone in the lowest stripe with nothing
			// underneath: elide. It still counts as the stripe's
			// retained version (older same-stripe versions stay
			// dropped), which preserves its delete semantics.
			continue
		}

		if builder == nil {
			db.mu.Lock()
			curNum = db.vs.AllocFileNum()
			db.mu.Unlock()
			outNums = append(outNums, curNum)
			f, cerr := db.fs.Create(manifest.SSTName(curNum))
			if cerr != nil {
				return stats, fmt.Errorf("engine: create compaction output: %w", cerr)
			}
			builderFile = f
			builder = sstable.NewBuilder(f, sstable.BuilderOptions{
				BlockSize:       db.opts.BlockSize,
				BloomBitsPerKey: db.opts.BloomBitsPerKey,
				Compression:     db.opts.Compression,
			})
		}
		if err := builder.Add(ikey, merged.Value()); err != nil {
			return stats, err
		}
	}
	if err := merged.Error(); err != nil {
		return stats, err
	}
	if err := finishOutput(); err != nil {
		return stats, err
	}
	if db.cost != nil {
		db.cost.ChargeCompactEntries(db.clk, entries%compactChargeBatch)
	}

	edit := &manifest.Edit{}
	for _, f := range c.inputs {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: c.level, Num: f.Num})
	}
	for _, f := range c.overlaps {
		edit.Deleted = append(edit.Deleted, manifest.DeletedFile{Level: c.outputLevel, Num: f.Num})
	}
	for _, f := range outputs {
		edit.Added = append(edit.Added, manifest.AddedFile{Level: c.outputLevel, Meta: f})
	}
	stats.written = writtenByte
	stats.outputs = len(outputs)
	stats.entries = int64(entries)
	if err := db.commitEditWith(edit, c.recovery); err != nil {
		return stats, err
	}
	db.metrics.CompactionBytesRead.Add(readBytes)
	db.metrics.CompactionBytesWritten.Add(writtenByte)
	db.metrics.CompactionEntriesMerged.Add(int64(entries))
	db.opts.logf("compacted L%d→L%d: %d in (%d B), %d out (%d B)",
		c.level, c.outputLevel, len(all), readBytes, len(outputs), writtenByte)
	return stats, nil
}

// isBaseLevel reports whether no level deeper than the compaction's
// output overlaps userKey, so a tombstone can be dropped.
func (db *DB) isBaseLevel(c *compaction, userKey []byte) bool {
	for l := c.outputLevel + 1; l < manifest.NumLevels; l++ {
		for _, f := range c.base.Files[l] {
			if f.ContainsUserKey(userKey) {
				return false
			}
		}
	}
	return true
}
