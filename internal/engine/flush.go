package engine

import (
	"fmt"
	"time"

	"xpointdb/internal/iterator"
	"xpointdb/internal/manifest"
	"xpointdb/internal/sstable"
	"xpointdb/internal/throttle"
)

// flushWorker is the background process that turns immutable memtables
// into Level-0 SSTs (RocksDB's high-priority flush pool).
func (db *DB) flushWorker() {
	db.mu.Lock()
	for {
		// Idle while a background error is latched: retrying a flush
		// against a failed MANIFEST or WAL only multiplies damage.
		for !db.closed && (len(db.imms) == 0 || db.bgErr != nil) {
			if len(db.imms) == 0 {
				// Nothing left to retry: a soft-error note from a
				// failed attempt is stale (error recovery may have
				// drained the queue itself while this worker idled).
				db.clearSoftErrorLocked(opFlush)
			}
			db.bgCond.Wait()
		}
		if db.closed {
			// Unflushed immutables remain covered by their WALs and
			// are recovered on the next open.
			break
		}
		var reservedSpace int64
		if db.space != nil {
			// Reserve headroom for the projected L0 output before taking
			// any shared resource: over budget the job defers — it does
			// not fail — until reclamation or a budget raise makes room.
			projected := db.imms[0].mem.ApproximateSize()
			db.mu.Unlock()
			ok := db.reserveSpace(projected, "flush")
			db.mu.Lock()
			if !ok {
				continue // closing; the wait loop re-checks
			}
			reservedSpace = projected
			if db.closed || len(db.imms) == 0 || db.bgErr != nil {
				// Release without db.mu: a ladder-state change notifies
				// subscribers, which re-take db.mu.
				db.mu.Unlock()
				db.space.Release(reservedSpace)
				db.mu.Lock()
				continue
			}
		}
		if db.opts.BGPool != nil {
			// Shared pool: take a token before running the job. Drop
			// db.mu while blocked (the pool parks on its own cond), and
			// re-check the world afterwards — the queue may have been
			// drained by error recovery, or the DB closed.
			prio := db.flushPriorityLocked()
			db.mu.Unlock()
			db.opts.BGPool.AcquireTag(prio, db.opts.StallSource)
			db.mu.Lock()
			if db.closed || len(db.imms) == 0 || db.bgErr != nil {
				db.opts.BGPool.Release()
				if reservedSpace > 0 {
					db.mu.Unlock()
					db.space.Release(reservedSpace)
					db.mu.Lock()
				}
				continue
			}
		}
		fm := db.imms[0]
		num := db.vs.AllocFileNum()
		db.flushing = true
		queued := len(db.imms)
		db.mu.Unlock()

		memBytes := fm.mem.ApproximateSize()
		db.emitFlushBegin(fm.reason, fm.walNum, memBytes, queued)
		flushStart := db.clk.Now()

		meta, err := db.buildTable(num, newMemIter(fm.mem))
		if err == nil {
			// The new L0 file supersedes fm's WAL; logs strictly
			// older than the next surviving memtable's WAL can go.
			db.mu.Lock()
			logNum := db.walNum
			if len(db.imms) > 1 {
				logNum = db.imms[1].walNum
			}
			db.mu.Unlock()
			seq := fm.maxSeq
			edit := &manifest.Edit{
				LogNum:  &logNum,
				LastSeq: &seq,
				Added:   []manifest.AddedFile{{Level: 0, Meta: meta}},
			}
			err = db.commitEdit(edit)
		}
		if reservedSpace > 0 {
			// The output is now tracked as used bytes (or was removed);
			// holding the reservation longer would double-count it.
			db.space.Release(reservedSpace)
		}

		db.mu.Lock()
		db.flushing = false
		l0Files := db.vs.Current().NumFiles(0)
		if err != nil {
			db.opts.logf("flush failed: %v", err)
			if db.bgErr == nil {
				// The SST build failed but WAL and MANIFEST are fine.
				// Classification decides the cost: transient I/O is a
				// soft error — the immutable stays queued and the retry
				// below usually heals it — while disk-full latches hard
				// so writers fail fast and the recovery worker's
				// wait-for-space path owns reclamation (retrying an SST
				// build into a full disk can never succeed, and the
				// stalled write leader has nothing to fail on).
				// (Manifest failures latched inside commitEdit; the
				// bgErr guard avoids double-classifying them.)
				db.setBackgroundErrorLocked(opFlush, err)
			}
			delOutput := db.canDeleteFailedOutputLocked()
			// Wake anyone quiescing on db.flushing (error recovery).
			db.bgCond.Broadcast()
			db.mu.Unlock()
			db.emitFlushEnd(fm.reason, fm.walNum, num, 0, l0Files,
				db.clk.Now().Sub(flushStart), err)
			if delOutput {
				// The output was never installed in any version, so no
				// reference protects it; remove it directly.
				_ = db.spaceRemove(db.fs, manifest.SSTName(num))
			}
			// Give the token back before backing off: a sleeping
			// worker must not starve other shards' jobs.
			db.releaseBGToken()
			// Leave the immutable queued and retry after a timed
			// backoff. (An untimed cond wait here can livelock with
			// a write leader stalled on the full immutable queue:
			// each would wait for the other's signal.)
			db.clk.Sleep(flushRetryBackoff)
		} else {
			db.clearSoftErrorLocked(opFlush)
			db.imms = db.imms[1:]
			db.installSuperVersionLocked("flush")
			db.metrics.Flushes.Add(1)
			db.metrics.FlushBytes.Add(meta.Size)
			// Algorithm 1 rate feedback: a completed flush grew L0;
			// if the tree is in a stall zone, compaction is behind.
			behind := l0Files >= db.opts.L0SlowdownTrigger
			db.bgCond.Broadcast()
			db.mu.Unlock()
			flushDur := db.clk.Now().Sub(flushStart)
			db.metrics.FlushLatency.Record(flushDur)
			db.metrics.Levels[0].recordCompaction(memBytes, 0, meta.Size, flushDur)
			db.emitFlushEnd(fm.reason, fm.walNum, num, meta.Size, l0Files, flushDur, nil)
			if db.stallActive() {
				db.controller.AdjustRate(behind)
			}
			db.releaseBGToken()
			db.deleteObsoleteFiles()
		}
		db.mu.Lock()
	}
	db.liveWorkers--
	db.bgCond.Broadcast()
	db.mu.Unlock()
}

// compactChargeBatch is how many merged entries of CPU cost are
// charged at a time during flush and compaction.
const compactChargeBatch = 128

// flushRetryBackoff paces background retries after flush or compaction
// failures (transient filesystem errors).
const flushRetryBackoff = 10 * time.Millisecond

// flushPriorityBias ranks every flush above every compaction in a
// shared background pool: an unflushed immutable queue stops that
// shard's writes outright, which is strictly worse than any amount of
// L0 accumulation.
const flushPriorityBias = 1 << 20

// flushPriorityLocked scores a pending flush for the shared pool:
// flushes always outrank compactions, and among flushes, deeper
// immutable queues and fuller L0s (closer to this shard's stop
// trigger) go first. Caller holds db.mu.
func (db *DB) flushPriorityLocked() float64 {
	l0 := db.vs.Current().NumFiles(0)
	return flushPriorityBias + float64(len(db.imms))*100 +
		float64(l0)/float64(db.opts.L0StopTrigger)*100
}

// compactPriorityLocked scores a pending compaction for the shared
// pool by stall risk: L0 pressure relative to this shard's slowdown
// trigger dominates — the pool drains the shard closest to stalling
// first — and the picked job's own score breaks ties between shards at
// equal L0 pressure (a deeply over-target level beats routine
// leveling). The score term stays ≪ one L0 file's worth of pressure,
// so it can order jobs but never outrank real stall risk. Caller holds
// db.mu.
func (db *DB) compactPriorityLocked(score float64) float64 {
	l0 := db.vs.Current().NumFiles(0)
	tie := score
	if tie > 4 {
		tie = 4
	}
	return float64(l0)/float64(db.opts.L0SlowdownTrigger)*100 + tie
}

// releaseBGToken returns the shared-pool token, if pools are in use.
func (db *DB) releaseBGToken() {
	if db.opts.BGPool != nil {
		db.opts.BGPool.Release()
	}
}

// stallActive reports whether any throttling state is in force.
func (db *DB) stallActive() bool {
	s := db.controller.CurrentState()
	return s == throttle.StateDelayed || s == throttle.StateAggressive
}

// buildTable writes all entries of src into SST file num. Called
// without db.mu.
func (db *DB) buildTable(num uint64, src iterator.Iterator) (*manifest.FileMeta, error) {
	name := manifest.SSTName(num)
	f, err := db.fs.Create(name)
	if err != nil {
		return nil, fmt.Errorf("engine: create %s: %w", name, err)
	}
	b := sstable.NewBuilder(f, sstable.BuilderOptions{
		BlockSize:       db.opts.BlockSize,
		BloomBitsPerKey: db.opts.BloomBitsPerKey,
		Compression:     db.opts.Compression,
	})
	entries := 0
	for src.SeekToFirst(); src.Valid(); src.Next() {
		if err := b.Add(src.Key(), src.Value()); err != nil {
			f.Close()
			return nil, err
		}
		entries++
		// Charge merge CPU as we go so the flush occupies virtual
		// time while it runs, not as a lump at the end.
		if db.cost != nil && entries%compactChargeBatch == 0 {
			db.cost.ChargeCompactEntries(db.clk, compactChargeBatch)
		}
	}
	if err := src.Error(); err != nil {
		f.Close()
		return nil, err
	}
	size, err := b.Finish()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if db.opts.ParanoidFileChecks {
		if err := db.paranoidVerify(f, size, num, b.Checksum()); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	db.spaceTrack(name, size)
	if db.cost != nil {
		db.cost.ChargeCompactEntries(db.clk, entries%compactChargeBatch)
	}
	return &manifest.FileMeta{
		Num:      num,
		Size:     size,
		Smallest: b.Smallest(),
		Largest:  b.Largest(),
		Checksum: b.Checksum(),
	}, nil
}

// commitEdit durably applies a version edit: manifest I/O outside
// db.mu, serialized by manifestBusy. Called without db.mu.
func (db *DB) commitEdit(edit *manifest.Edit) error {
	return db.commitEditWith(edit, false)
}

// commitEditWith is commitEdit with a recovery bypass: the recovery
// worker must commit edits (re-flushed memtables) while the latch is
// still set, so recovery=true skips the fail-fast check and, on append
// failure, re-latches under the manifest classification instead — the
// torn tail has moved to the MANIFEST, so the next recovery attempt
// must roll it before anything else.
func (db *DB) commitEditWith(edit *manifest.Edit, recovery bool) error {
	db.mu.Lock()
	for db.manifestBusy && (recovery || db.bgErr == nil) {
		db.bgCond.Wait()
	}
	if !recovery && db.bgErr != nil {
		err := db.bgErr
		db.mu.Unlock()
		return err
	}
	db.manifestBusy = true
	payload := db.vs.Prepare(edit)
	db.mu.Unlock()

	err := db.vs.Append(payload)
	if err == nil {
		// Charge the appended edit to the live MANIFEST (stable while
		// manifestBusy is held; record framing is a few bytes, ignored).
		db.spaceGrow(manifest.ManifestName(db.vs.ManifestNum()), int64(len(payload)))
	}

	db.mu.Lock()
	db.manifestBusy = false
	if err != nil {
		// A failed MANIFEST append (write or sync) may leave a torn
		// edit at the log's tail; appending more edits after it would
		// put them beyond a corruption that ends recovery replay.
		// Latch: the version state on disk is frozen until recovered.
		if recovery {
			db.relatchLocked(opManifestAppend, err)
		} else {
			db.setBackgroundErrorLocked(opManifestAppend, err)
		}
	} else {
		if err = db.vs.Install(edit); err != nil {
			// In-memory apply failed after the durable append — the
			// disk and memory states have diverged.
			db.setBackgroundErrorLocked(opManifestInstall, err)
		} else {
			db.installSuperVersionLocked("version-edit")
		}
	}
	db.updateStallStateLocked()
	db.bgCond.Broadcast()
	db.mu.Unlock()
	return err
}
