package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestIterBackwardScan(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	const n = 2500 // spans several SSTs and the memtable
	for i := 0; i < n; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete(testKey(100))
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := n - 1
	for it.SeekToLast(); it.Valid(); it.Prev() {
		if i == 100 {
			i-- // deleted
		}
		if string(it.Key()) != string(testKey(i)) {
			t.Fatalf("backward[%d] = %q, want %q", i, it.Key(), testKey(i))
		}
		if string(it.Value()) != string(testValue(i)) {
			t.Fatalf("backward value[%d] = %q", i, it.Value())
		}
		i--
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != -1 {
		t.Fatalf("backward scan stopped at %d", i)
	}
}

func TestIterBackwardSeesNewestVersion(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	// Many versions of the same key across flushes.
	for i := 0; i < 300; i++ {
		if err := db.Put([]byte("multi"), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Put([]byte("aaa"), []byte("first"))
	db.Put([]byte("zzz"), []byte("last"))
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.SeekToLast()
	if !it.Valid() || string(it.Key()) != "zzz" {
		t.Fatalf("last = %q", it.Key())
	}
	it.Prev()
	if !it.Valid() || string(it.Key()) != "multi" {
		t.Fatalf("prev = %q", it.Key())
	}
	if string(it.Value()) != string(testValue(299)) {
		t.Fatalf("backward iteration returned stale version: %q", it.Value())
	}
	it.Prev()
	if !it.Valid() || string(it.Key()) != "aaa" {
		t.Fatalf("prev-prev = %q", it.Key())
	}
	it.Prev()
	if it.Valid() {
		t.Fatal("iterated past first key")
	}
}

func TestIterSeekLTAndDirectionSwitch(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	for i := 0; i < 100; i += 2 {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	it.SeekLT(testKey(31))
	if !it.Valid() || string(it.Key()) != string(testKey(30)) {
		t.Fatalf("SeekLT(31) = %q", it.Key())
	}
	it.Next() // direction switch backward→forward
	if !it.Valid() || string(it.Key()) != string(testKey(32)) {
		t.Fatalf("SeekLT then Next = %q", it.Key())
	}
	it.Prev() // forward→backward
	if !it.Valid() || string(it.Key()) != string(testKey(30)) {
		t.Fatalf("Next then Prev = %q", it.Key())
	}
	it.Prev()
	if !it.Valid() || string(it.Key()) != string(testKey(28)) {
		t.Fatalf("second Prev = %q", it.Key())
	}
}

func TestIterBackwardSkipsDeletedRuns(t *testing.T) {
	db, _ := newTestDB(t, nil)
	defer db.Close()
	for i := 0; i < 50; i++ {
		if err := db.Put(testKey(i), testValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a contiguous run in the middle.
	for i := 10; i < 40; i++ {
		if err := db.Delete(testKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.SeekLT(testKey(45))
	if !it.Valid() || string(it.Key()) != string(testKey(44)) {
		t.Fatalf("SeekLT(45) = %q", it.Key())
	}
	for i := 0; i < 5; i++ { // 44,43,42,41,40
		it.Prev()
	}
	if !it.Valid() || string(it.Key()) != string(testKey(9)) {
		t.Fatalf("Prev across tombstone run = %q, want key 9", it.Key())
	}
}

func TestIterRandomBidirectionalAgainstModel(t *testing.T) {
	db, _ := newTestDB(t, func(o *Options) {
		o.MemtableSize = 16 << 10
	})
	defer db.Close()
	rng := rand.New(rand.NewSource(99))
	model := map[string]string{}
	for i := 0; i < 1200; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(300))
		if rng.Intn(5) == 0 {
			db.Delete([]byte(k))
			delete(model, k)
		} else {
			v := fmt.Sprintf("v%d", i)
			db.Put([]byte(k), []byte(v))
			model[k] = v
		}
	}
	var sorted []string
	for k := range model {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	if len(sorted) == 0 {
		t.Skip("model drained")
	}

	it, err := db.NewIter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	pos := len(sorted) / 2
	it.SeekGE([]byte(sorted[pos]))
	for step := 0; step < 800; step++ {
		if !it.Valid() {
			t.Fatalf("step %d: invalid at model pos %d (%s)", step, pos, sorted[pos])
		}
		if string(it.Key()) != sorted[pos] {
			t.Fatalf("step %d: key %q, model %q", step, it.Key(), sorted[pos])
		}
		if string(it.Value()) != model[sorted[pos]] {
			t.Fatalf("step %d: value %q, model %q", step, it.Value(), model[sorted[pos]])
		}
		if rng.Intn(2) == 0 && pos < len(sorted)-1 {
			it.Next()
			pos++
		} else if pos > 0 {
			it.Prev()
			pos--
		} else {
			it.Next()
			pos++
		}
	}
}
