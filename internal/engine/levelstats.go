package engine

import (
	"fmt"
	"strings"
	"time"

	"xpointdb/internal/manifest"
)

// LevelStats is one row of the per-level stats table — the RocksDB
// "compaction stats" breakdown the paper's per-device figures are
// built from: where the files and bytes sit, how urgent each level is,
// and how much I/O compaction into the level has cost so far.
type LevelStats struct {
	// Level is the LSM level (0 = freshest).
	Level int
	// Files and Bytes describe the level's current shape.
	Files int
	Bytes int64
	// Score is the compaction urgency as the picker computes it:
	// L0 file count over the compaction trigger for Level 0, level
	// bytes over the level's byte target for deeper levels. ≥1 means
	// the level wants compaction.
	Score float64
	// Compactions counts completed jobs into the level (flushes for
	// L0).
	Compactions int64
	// BytesIngested, BytesRead and BytesWritten are the cumulative
	// compaction I/O into the level (see LevelCounters).
	BytesIngested int64
	BytesRead     int64
	BytesWritten  int64
	// WriteAmp is BytesWritten / BytesIngested — how many bytes the
	// level writes per byte arriving from above (RocksDB's per-level
	// W-Amp column). 0 when nothing has been ingested.
	WriteAmp float64
	// CompactionTime is total flush/compaction wall (or virtual) time
	// spent writing into the level.
	CompactionTime time.Duration
}

// LevelStatsSnapshot is the full table plus the Level-0 stall
// attribution: how close L0 currently is to the slowdown and stop
// triggers, and how much total stall the controller has charged — the
// paper's "36 by default" Level-0 wall made continuously observable.
type LevelStatsSnapshot struct {
	Levels []LevelStats

	// L0SlowdownTrigger and L0StopTrigger echo the configured stall
	// walls for dashboards (L0 score is relative to the compaction
	// trigger, not these).
	L0SlowdownTrigger int
	L0StopTrigger     int
	// StallDelay and StallStop are the cumulative foreground time the
	// write controller charged against those walls (all levels stall
	// through L0, so they belong to this table).
	StallDelay time.Duration
	StallStop  time.Duration
}

// LevelStats captures the per-level table. It takes db.mu briefly to
// pin a consistent version; counters are cumulative since open.
func (db *DB) LevelStats() LevelStatsSnapshot {
	db.mu.Lock()
	v := db.vs.Current()
	type shape struct {
		files int
		bytes int64
	}
	var shapes [manifest.NumLevels]shape
	var targets [manifest.NumLevels]int64
	for l := 0; l < manifest.NumLevels; l++ {
		shapes[l] = shape{v.NumFiles(l), v.LevelBytes(l)}
		if l > 0 {
			targets[l] = db.targetLevelBytes(l)
		}
	}
	l0Trigger := db.opts.L0CompactionTrigger
	snap := LevelStatsSnapshot{
		L0SlowdownTrigger: db.opts.L0SlowdownTrigger,
		L0StopTrigger:     db.opts.L0StopTrigger,
	}
	db.mu.Unlock()

	snap.StallDelay = time.Duration(db.metrics.StallDelayTotal.Load())
	snap.StallStop = time.Duration(db.metrics.StallStopTotal.Load())
	for l := 0; l < manifest.NumLevels; l++ {
		lc := &db.metrics.Levels[l]
		ls := LevelStats{
			Level:          l,
			Files:          shapes[l].files,
			Bytes:          shapes[l].bytes,
			Compactions:    lc.Compactions.Load(),
			BytesIngested:  lc.BytesIngested.Load(),
			BytesRead:      lc.BytesRead.Load(),
			BytesWritten:   lc.BytesWritten.Load(),
			CompactionTime: time.Duration(lc.Micros.Load()) * time.Microsecond,
		}
		if l == 0 {
			ls.Score = float64(ls.Files) / float64(l0Trigger)
		} else if targets[l] > 0 {
			ls.Score = float64(ls.Bytes) / float64(targets[l])
		}
		if ls.BytesIngested > 0 {
			ls.WriteAmp = float64(ls.BytesWritten) / float64(ls.BytesIngested)
		}
		snap.Levels = append(snap.Levels, ls)
	}
	return snap
}

// String renders the snapshot as an aligned table, RocksDB
// "compaction stats" style. Levels with no files and no history are
// elided; the Sum row aggregates everything.
func (s LevelStatsSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %6s %12s %6s %6s %12s %12s %12s %6s %10s\n",
		"level", "files", "bytes", "score", "comps", "ingest", "read", "written", "w-amp", "comp-time")
	var sum LevelStats
	for _, ls := range s.Levels {
		sum.Files += ls.Files
		sum.Bytes += ls.Bytes
		sum.Compactions += ls.Compactions
		sum.BytesIngested += ls.BytesIngested
		sum.BytesRead += ls.BytesRead
		sum.BytesWritten += ls.BytesWritten
		sum.CompactionTime += ls.CompactionTime
		if ls.Files == 0 && ls.Compactions == 0 {
			continue
		}
		fmt.Fprintf(&b, "L%-4d %6d %12d %6.2f %6d %12d %12d %12d %6.2f %10v\n",
			ls.Level, ls.Files, ls.Bytes, ls.Score, ls.Compactions,
			ls.BytesIngested, ls.BytesRead, ls.BytesWritten, ls.WriteAmp,
			ls.CompactionTime.Round(time.Millisecond))
	}
	if sum.BytesIngested > 0 {
		sum.WriteAmp = float64(sum.BytesWritten) / float64(sum.BytesIngested)
	}
	fmt.Fprintf(&b, "%-5s %6d %12d %6s %6d %12d %12d %12d %6.2f %10v\n",
		"Sum", sum.Files, sum.Bytes, "", sum.Compactions,
		sum.BytesIngested, sum.BytesRead, sum.BytesWritten, sum.WriteAmp,
		sum.CompactionTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "L0 stall walls: slowdown %d files, stop %d files; stalls so far: delay %v, stop %v\n",
		s.L0SlowdownTrigger, s.L0StopTrigger,
		s.StallDelay.Round(time.Microsecond), s.StallStop.Round(time.Microsecond))
	return b.String()
}
